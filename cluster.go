package npf

import (
	"npf/internal/chaos"
	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/kv"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/trace"
)

// Cluster is a convenience wrapper bundling an engine, a fabric, and host
// construction — the few lines every simulation starts with. Configure it
// with functional options:
//
//	cluster := npf.NewCluster(npf.WithSeed(42), npf.WithFabric(npf.EthernetFabric()))
type Cluster struct {
	Eng *Engine
	Net *Network
	// Tracer is non-nil when the cluster was built with WithTracing or
	// WithChaos; it is wired through every host built afterwards.
	Tracer *Tracer
	// Sampler is non-nil when the cluster was built with WithSampling; it
	// snapshots all metrics every interval of virtual time.
	Sampler *Sampler
	// KV is non-nil when the cluster was built with WithKV: a sharded,
	// replicated key-value service deployed across the fabric.
	KV *KVService

	injector *chaos.Injector
}

// NewCluster creates an engine and fabric in one call. Defaults: seed 1,
// Ethernet fabric, no tracing, no chaos.
func NewCluster(opts ...ClusterOption) *Cluster {
	cfg := clusterConfig{seed: 1, fabric: EthernetFabric()}
	for _, o := range opts {
		o.applyCluster(&cfg)
	}
	eng := sim.NewEngine(cfg.seed)
	c := &Cluster{Eng: eng, Net: fabric.New(eng, cfg.fabric)}
	if cfg.trace || cfg.plan != nil {
		c.Tracer = trace.New(eng)
	}
	if cfg.sampleEvery > 0 {
		c.Sampler = c.Tracer.StartSampler(cfg.sampleEvery)
	}
	if cfg.plan != nil {
		// Arm now; hosts and devices created later register themselves with
		// the injector's live target set before the engine runs.
		c.injector = chaos.Arm(cfg.plan, chaos.Targets{Eng: eng, Net: c.Net, Tracer: c.Tracer})
	}
	if cfg.kv != nil {
		c.KV = kv.New(eng, c.Net, c.Tracer, *cfg.kv)
		if ij := c.injector; ij != nil {
			ij.T.Devs = append(ij.T.Devs, c.KV.Devices()...)
			ij.T.HCAs = append(ij.T.HCAs, c.KV.HCAs()...)
			ij.T.Drivers = append(ij.T.Drivers, c.KV.Drivers()...)
			ij.T.Groups = append(ij.T.Groups, c.KV.Groups()...)
			ij.T.Spaces = append(ij.T.Spaces, c.KV.Spaces()...)
			ij.T.Spaces = append(ij.T.Spaces, c.KV.NetSpaces()...)
		}
	}
	return c
}

// NewClusterSeed creates a cluster from positional parameters.
//
// Deprecated: use NewCluster(WithSeed(seed), WithFabric(cfg)).
func NewClusterSeed(seed int64, cfg FabricConfig) *Cluster {
	return NewCluster(WithSeed(seed), WithFabric(cfg))
}

// Injector returns the armed chaos injector, or nil when the cluster was
// built without WithChaos.
func (c *Cluster) Injector() *chaos.Injector { return c.injector }

// Host is one machine: memory, an NPF driver, and optionally a NIC and/or
// an HCA.
type Host struct {
	Name    string
	Machine *Machine
	Driver  *Driver
	NIC     *Device
	HCA     *HCA

	cluster *Cluster
}

// NewHost adds a machine and an NPF driver. Defaults: 8 GiB of RAM,
// DefaultDriverConfig(); override with WithRAM and WithDriverConfig.
func (c *Cluster) NewHost(name string, opts ...HostOption) *Host {
	cfg := hostConfig{ram: 8 << 30, driver: core.DefaultConfig()}
	for _, o := range opts {
		o.applyHost(&cfg)
	}
	h := &Host{
		Name:    name,
		Machine: mem.NewMachine(c.Eng, cfg.ram),
		Driver:  core.NewDriver(c.Eng, cfg.driver),
		cluster: c,
	}
	h.Machine.SetTracer(c.Tracer)
	h.Driver.SetTracer(c.Tracer)
	if c.injector != nil {
		c.injector.T.Drivers = append(c.injector.T.Drivers, h.Driver)
	}
	return h
}

// NewHostRAM adds a host from positional parameters.
//
// Deprecated: use NewHost(name, WithRAM(ramBytes)).
func (c *Cluster) NewHostRAM(name string, ramBytes int64) *Host {
	return c.NewHost(name, WithRAM(ramBytes))
}

// AttachNIC gives the host an Ethernet NIC wired to its driver.
func (h *Host) AttachNIC() *Device {
	h.NIC = nic.NewDevice(h.cluster.Eng, h.cluster.Net, nic.DefaultConfig())
	h.NIC.SetTracer(h.cluster.Tracer)
	h.Driver.AttachDevice(h.NIC)
	if ij := h.cluster.injector; ij != nil {
		ij.T.Devs = append(ij.T.Devs, h.NIC)
	}
	return h.NIC
}

// AttachHCA gives the host an InfiniBand adapter wired to its driver.
func (h *Host) AttachHCA() *HCA {
	h.HCA = rc.NewHCA(h.cluster.Eng, h.cluster.Net, rc.DefaultConfig())
	h.HCA.SetTracer(h.cluster.Tracer)
	h.Driver.AttachHCA(h.HCA)
	if ij := h.cluster.injector; ij != nil {
		ij.T.HCAs = append(ij.T.HCAs, h.HCA)
	}
	return h.HCA
}

// NewProcess creates an IOuser address space, optionally inside a memory
// cgroup. Cgroup'd spaces become visible to cluster-level chaos plans
// (MemoryPressure waves target registered groups).
func (h *Host) NewProcess(name string, cgroup *MemGroup) *AddressSpace {
	as := h.Machine.NewAddressSpace(name, cgroup)
	if ij := h.cluster.injector; ij != nil {
		ij.T.Spaces = append(ij.T.Spaces, as)
		if cgroup != nil {
			ij.T.Groups = append(ij.T.Groups, cgroup)
		}
	}
	return as
}

// OpenChannel creates a direct I/O channel for as on the host's NIC and —
// for non-pinned policies — enables on-demand paging through the host
// driver. Defaults: the address space's name, a 256-entry ring,
// PolicyBackup; override with WithChannelName, WithRingSize, WithPolicy.
// A WithChaos plan passed here is armed against this channel's device,
// driver, and address space only:
//
//	ch := host.OpenChannel(as, npf.WithRingSize(256), npf.WithPolicy(npf.PolicyBackup), npf.WithChaos(plan))
func (h *Host) OpenChannel(as *AddressSpace, opts ...ChannelOption) *Channel {
	cfg := channelConfig{name: as.Name, ringSize: 256, policy: PolicyBackup}
	for _, o := range opts {
		o.applyChannel(&cfg)
	}
	if h.NIC == nil {
		h.AttachNIC()
	}
	ch := h.NIC.NewChannel(cfg.name, as, cfg.ringSize, cfg.policy, cfg.ringSize)
	if cfg.policy != PolicyPinned {
		h.Driver.EnableODP(ch)
	}
	if cfg.plan != nil {
		if h.cluster.Tracer == nil {
			h.cluster.Tracer = trace.New(h.cluster.Eng)
		}
		chaos.Arm(cfg.plan, chaos.Targets{
			Eng:     h.cluster.Eng,
			Net:     h.cluster.Net,
			Devs:    []*Device{h.NIC},
			Drivers: []*Driver{h.Driver},
			Spaces:  []*AddressSpace{as},
			Tracer:  h.cluster.Tracer,
		})
	}
	return ch
}

// OpenChannelRing creates a channel from positional parameters.
//
// Deprecated: use OpenChannel(as, WithChannelName(name), WithRingSize(ringSize), WithPolicy(policy)).
func (h *Host) OpenChannelRing(name string, as *AddressSpace, ringSize int, policy FaultPolicy) *Channel {
	return h.OpenChannel(as, WithChannelName(name), WithRingSize(ringSize), WithPolicy(policy))
}

// OpenQP creates an ODP-enabled queue pair for as on the host's HCA.
func (h *Host) OpenQP(as *AddressSpace) *QP {
	if h.HCA == nil {
		h.AttachHCA()
	}
	qp := h.HCA.NewQP(as)
	h.Driver.EnableODPQP(qp)
	return qp
}

// OpenPinnedQP creates a queue pair whose memory the caller pins and
// registers explicitly (no ODP).
func (h *Host) OpenPinnedQP(as *AddressSpace) *QP {
	if h.HCA == nil {
		h.AttachHCA()
	}
	return h.HCA.NewQP(as)
}
