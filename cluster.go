package npf

import (
	"fmt"

	"npf/internal/chaos"
	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/kv"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/topo"
	"npf/internal/trace"
)

// Cluster is a convenience wrapper bundling an engine, a fabric, and host
// construction — the few lines every simulation starts with. Configure it
// with functional options:
//
//	cluster := npf.NewCluster(npf.WithSeed(42), npf.WithFabric(npf.EthernetFabric()))
type Cluster struct {
	// Eng is the cluster's engine — with WithEngines(n>1), partition 0's
	// engine, where chaos plans and the KV server tier live.
	Eng *Engine
	Net *Network
	// Group is non-nil when the cluster was built with WithEngines(n>1):
	// the conservative-lookahead PDES group the partitions run under. Use
	// Run/RunUntil (or Group.Run directly) to drive a partitioned cluster;
	// Eng.Run would advance partition 0 alone.
	Group *EngineGroup
	// Tracer is non-nil when the cluster was built with WithTracing or
	// WithChaos; it is wired through every host built afterwards. On a
	// partitioned cluster it is partition 0's tracer — each partition owns
	// one (Tracers), since a tracer may only be driven by its own engine.
	Tracer *Tracer
	// Tracers holds one tracer per partition when tracing is on
	// (Tracers[0] == Tracer); a single-engine cluster has just the one.
	Tracers []*Tracer
	// Sampler is non-nil when the cluster was built with WithSampling; it
	// snapshots all metrics every interval of virtual time. On a
	// partitioned cluster it samples partition 0's tracer.
	Sampler *Sampler
	// KV is non-nil when the cluster was built with WithKV: a sharded,
	// replicated key-value service deployed across the fabric.
	KV *KVService
	// Swarm is non-nil when the cluster was built with WithSwarm: a
	// scale-out sweep (O(10^3) hosts, O(10^5..10^6) logical clients) over
	// the cluster's fabric. It starts automatically on Run; read
	// Swarm.Result() afterwards.
	Swarm *ClusterSweep

	injector *chaos.Injector
	nextPart int
}

// NewCluster creates an engine and fabric in one call. Defaults: seed 1,
// Ethernet fabric, one sequential engine, no tracing, no chaos.
func NewCluster(opts ...ClusterOption) *Cluster {
	cfg := clusterConfig{seed: 1, fabric: EthernetFabric()}
	for _, o := range opts {
		o.applyCluster(&cfg)
	}
	c := &Cluster{}
	if cfg.engines > 1 {
		c.Group = sim.NewGroup(cfg.seed, cfg.engines, cfg.fabric.Lookahead())
		c.Group.SetThreads(cfg.engines)
		c.Eng = c.Group.Engine(0)
		c.Net = fabric.NewOnGroup(c.Group, cfg.fabric)
	} else {
		c.Eng = sim.NewEngine(cfg.seed)
		c.Net = fabric.New(c.Eng, cfg.fabric)
	}
	if cfg.trace || cfg.plan != nil {
		for _, e := range c.engines() {
			c.Tracers = append(c.Tracers, trace.New(e))
		}
		c.Tracer = c.Tracers[0]
	}
	if cfg.sampleEvery > 0 {
		c.Sampler = c.Tracer.StartSampler(cfg.sampleEvery)
	}
	if cfg.plan != nil {
		// Arm now; hosts and devices created later register themselves with
		// the injector's live target set before the engine runs. The plan is
		// armed on (and its activations run on) partition 0's engine, so on
		// a partitioned cluster only partition-0 components may join it.
		c.injector = chaos.Arm(cfg.plan, chaos.Targets{Eng: c.Eng, Net: c.Net, Tracer: c.Tracer})
	}
	if cfg.kv != nil {
		kcfg := *cfg.kv
		if c.Group != nil && len(c.Tracers) > 1 {
			kcfg.ClientTracer = c.Tracers[1]
		}
		c.KV = kv.New(c.Eng, c.Net, c.Tracer, kcfg)
		if ij := c.injector; ij != nil {
			if c.Group != nil {
				// Partitioned: the client tier lives on partition 1, out of
				// the injector's reach — register the server tier only.
				ij.T.Devs = append(ij.T.Devs, c.KV.ServerDevices()...)
				ij.T.HCAs = append(ij.T.HCAs, c.KV.ServerHCAs()...)
				ij.T.Drivers = append(ij.T.Drivers, c.KV.ServerDrivers()...)
			} else {
				ij.T.Devs = append(ij.T.Devs, c.KV.Devices()...)
				ij.T.HCAs = append(ij.T.HCAs, c.KV.HCAs()...)
				ij.T.Drivers = append(ij.T.Drivers, c.KV.Drivers()...)
			}
			// Shard groups, value arenas, and transport buffers are all
			// server-tier state regardless of partitioning.
			ij.T.Groups = append(ij.T.Groups, c.KV.Groups()...)
			ij.T.Spaces = append(ij.T.Spaces, c.KV.Spaces()...)
			ij.T.Spaces = append(ij.T.Spaces, c.KV.NetSpaces()...)
		}
	}
	if cfg.swarm != nil {
		s, err := topo.New(c.Eng, c.Net, *cfg.swarm)
		if err != nil {
			panic("npf: WithSwarm: " + err.Error())
		}
		c.Swarm = s
	}
	return c
}

// engines lists every engine: the group's partitions, or the single one.
func (c *Cluster) engines() []*Engine {
	if c.Group != nil {
		return c.Group.Engines()
	}
	return []*Engine{c.Eng}
}

// EngineFor returns partition part's engine — the engine to schedule work
// against a host placed there. On a single-engine cluster every partition
// maps to the one engine.
func (c *Cluster) EngineFor(part int) *Engine {
	if c.Group != nil {
		return c.Group.Engine(part)
	}
	return c.Eng
}

// tracerFor returns the partition's tracer (nil when tracing is off).
func (c *Cluster) tracerFor(part int) *Tracer {
	if len(c.Tracers) == 0 {
		return nil
	}
	if c.Group != nil {
		return c.Tracers[part]
	}
	return c.Tracer
}

// Run drives the whole cluster — every partition — to quiescence and
// returns the final virtual time. A WithSwarm sweep is started first.
func (c *Cluster) Run() Time {
	if c.Swarm != nil {
		c.Swarm.Start()
	}
	if c.Group != nil {
		return c.Group.Run()
	}
	return c.Eng.Run()
}

// RunUntil drives the whole cluster to the horizon (or quiescence,
// whichever comes first) and returns the final virtual time. A WithSwarm
// sweep is started first.
func (c *Cluster) RunUntil(until Time) Time {
	if c.Swarm != nil {
		c.Swarm.Start()
	}
	if c.Group != nil {
		return c.Group.RunUntil(until)
	}
	return c.Eng.RunUntil(until)
}

// Digest condenses every partition's trace into one value; same-seed runs
// produce identical digests for any engine/thread count. Zero when the
// cluster was built without tracing.
func (c *Cluster) Digest() uint64 {
	if len(c.Tracers) == 0 {
		return 0
	}
	if len(c.Tracers) == 1 {
		return c.Tracer.Digest()
	}
	return trace.DigestAll(c.Tracers)
}

// NewClusterSeed creates a cluster from positional parameters.
//
// Deprecated: use NewCluster(WithSeed(seed), WithFabric(cfg)).
func NewClusterSeed(seed int64, cfg FabricConfig) *Cluster {
	return NewCluster(WithSeed(seed), WithFabric(cfg))
}

// Injector returns the armed chaos injector, or nil when the cluster was
// built without WithChaos.
func (c *Cluster) Injector() *chaos.Injector { return c.injector }

// Host is one machine: memory, an NPF driver, and optionally a NIC and/or
// an HCA.
type Host struct {
	Name string
	// Eng is the engine the host's components live on: its partition's
	// engine under WithEngines, the cluster engine otherwise. Schedule any
	// work touching this host (sends, chaos callbacks, stops) here.
	Eng *Engine
	// Part is the host's PDES partition (0 on a single-engine cluster).
	Part    int
	Machine *Machine
	Driver  *Driver
	NIC     *Device
	HCA     *HCA

	cluster *Cluster
}

// NewHost adds a machine and an NPF driver. Defaults: 8 GiB of RAM,
// DefaultDriverConfig(); override with WithRAM and WithDriverConfig. On a
// partitioned cluster the host lands on the next partition round-robin
// unless WithPartition pins it; everything the host builds afterwards
// lives on that partition's engine and tracer. A misconfigured host (e.g.
// WithPartition out of range) panics; use TryNewHost to get the error.
func (c *Cluster) NewHost(name string, opts ...HostOption) *Host {
	h, err := c.TryNewHost(name, opts...)
	if err != nil {
		panic("npf: " + err.Error())
	}
	return h
}

// TryNewHost is NewHost returning configuration errors instead of
// panicking. In particular, WithPartition(p) with p outside the cluster's
// engine range is reported here, at construction — not as a late index
// panic when the partitioned run first touches the host.
func (c *Cluster) TryNewHost(name string, opts ...HostOption) (*Host, error) {
	cfg := hostConfig{ram: 8 << 30, driver: core.DefaultConfig(), part: -1}
	for _, o := range opts {
		o.applyHost(&cfg)
	}
	part := cfg.part
	if cfg.partSet {
		// Validate the explicit pin against the real engine count. On a
		// single-engine cluster any in-range-looking value is documented as
		// ignored, but a negative pin is a bug everywhere.
		if part < 0 {
			return nil, fmt.Errorf("host %q: WithPartition(%d) is negative", name, part)
		}
		if c.Group != nil && part >= c.Group.Parts() {
			return nil, fmt.Errorf("host %q: WithPartition(%d) out of range: cluster has %d engines",
				name, part, c.Group.Parts())
		}
	}
	if c.Group == nil {
		part = 0
	} else if part < 0 {
		part = c.nextPart % c.Group.Parts()
		c.nextPart++
	}
	eng := c.EngineFor(part)
	tr := c.tracerFor(part)
	h := &Host{
		Name:    name,
		Eng:     eng,
		Part:    part,
		Machine: mem.NewMachine(eng, cfg.ram),
		Driver:  core.NewDriver(eng, cfg.driver),
		cluster: c,
	}
	h.Machine.SetTracer(tr)
	h.Driver.SetTracer(tr)
	// Cluster-level chaos activations run on partition 0; hosts elsewhere
	// are out of the injector's reach and must stay unregistered.
	if c.injector != nil && part == 0 {
		c.injector.T.Drivers = append(c.injector.T.Drivers, h.Driver)
	}
	return h, nil
}

// HostTemplate is a reusable recipe for batch host construction: a name
// pattern plus the options every host built from it shares. Templates are
// values — define one per role (server, client, ...) and stamp out fleets:
//
//	tmpl := npf.HostTemplate{NamePattern: "srv-%03d", Options: []npf.HostOption{npf.WithRAM(32 << 30)}}
//	servers, err := cluster.TryNewHosts(tmpl, 100)
type HostTemplate struct {
	// NamePattern is a fmt pattern receiving the host's index within the
	// batch (default "host-%03d").
	NamePattern string
	// Options apply to every host built from the template, in order,
	// before any per-call extras.
	Options []HostOption
}

// NewHosts adds n hosts in one call, named "host-000".., all built with
// the same options — the batch form of NewHost. On a partitioned cluster
// the batch round-robins across partitions unless WithPartition pins it
// (placement is identical to n NewHost calls in a loop). Use TryNewHosts
// with a HostTemplate to control naming or collect errors.
func (c *Cluster) NewHosts(n int, opts ...HostOption) []*Host {
	hosts, err := c.TryNewHosts(HostTemplate{Options: opts}, n)
	if err != nil {
		panic("npf: " + err.Error())
	}
	return hosts
}

// TryNewHosts builds n hosts from a template. Construction is in index
// order (host i's RNG splits before host i+1's), so a batch is
// byte-equivalent to the loop it replaces. The first configuration error
// aborts the batch.
func (c *Cluster) TryNewHosts(t HostTemplate, n int) ([]*Host, error) {
	if n < 0 {
		return nil, fmt.Errorf("TryNewHosts: negative count %d", n)
	}
	pattern := t.NamePattern
	if pattern == "" {
		pattern = "host-%03d"
	}
	hosts := make([]*Host, 0, n)
	for i := 0; i < n; i++ {
		h, err := c.TryNewHost(fmt.Sprintf(pattern, i), t.Options...)
		if err != nil {
			return nil, err
		}
		hosts = append(hosts, h)
	}
	return hosts, nil
}

// NewHostRAM adds a host from positional parameters.
//
// Deprecated: use NewHost(name, WithRAM(ramBytes)).
func (c *Cluster) NewHostRAM(name string, ramBytes int64) *Host {
	return c.NewHost(name, WithRAM(ramBytes))
}

// AttachNIC gives the host an Ethernet NIC wired to its driver.
func (h *Host) AttachNIC() *Device {
	h.NIC = nic.NewDevice(h.Eng, h.cluster.Net, nic.DefaultConfig())
	h.NIC.SetTracer(h.cluster.tracerFor(h.Part))
	h.Driver.AttachDevice(h.NIC)
	if ij := h.cluster.injector; ij != nil && h.Part == 0 {
		ij.T.Devs = append(ij.T.Devs, h.NIC)
	}
	return h.NIC
}

// AttachHCA gives the host an InfiniBand adapter wired to its driver.
func (h *Host) AttachHCA() *HCA {
	h.HCA = rc.NewHCA(h.Eng, h.cluster.Net, rc.DefaultConfig())
	h.HCA.SetTracer(h.cluster.tracerFor(h.Part))
	h.Driver.AttachHCA(h.HCA)
	if ij := h.cluster.injector; ij != nil && h.Part == 0 {
		ij.T.HCAs = append(ij.T.HCAs, h.HCA)
	}
	return h.HCA
}

// NewProcess creates an IOuser address space, optionally inside a memory
// cgroup. Cgroup'd spaces become visible to cluster-level chaos plans
// (MemoryPressure waves target registered groups).
func (h *Host) NewProcess(name string, cgroup *MemGroup) *AddressSpace {
	as := h.Machine.NewAddressSpace(name, cgroup)
	if ij := h.cluster.injector; ij != nil && h.Part == 0 {
		ij.T.Spaces = append(ij.T.Spaces, as)
		if cgroup != nil {
			ij.T.Groups = append(ij.T.Groups, cgroup)
		}
	}
	return as
}

// OpenChannel creates a direct I/O channel for as on the host's NIC and —
// for non-pinned policies — enables on-demand paging through the host
// driver. Defaults: the address space's name, a 256-entry ring,
// PolicyBackup; override with WithChannelName, WithRingSize, WithPolicy.
// A WithChaos plan passed here is armed against this channel's device,
// driver, and address space only:
//
//	ch := host.OpenChannel(as, npf.WithRingSize(256), npf.WithPolicy(npf.PolicyBackup), npf.WithChaos(plan))
func (h *Host) OpenChannel(as *AddressSpace, opts ...ChannelOption) *Channel {
	cfg := channelConfig{name: as.Name, ringSize: 256, policy: PolicyBackup}
	for _, o := range opts {
		o.applyChannel(&cfg)
	}
	if h.NIC == nil {
		h.AttachNIC()
	}
	ch := h.NIC.NewChannel(cfg.name, as, cfg.ringSize, cfg.policy, cfg.ringSize)
	if cfg.policy != PolicyPinned {
		h.Driver.EnableODP(ch)
	}
	if cfg.plan != nil {
		if h.cluster.Tracer == nil {
			for _, e := range h.cluster.engines() {
				h.cluster.Tracers = append(h.cluster.Tracers, trace.New(e))
			}
			h.cluster.Tracer = h.cluster.Tracers[0]
		}
		// A per-channel plan targets this host only, so it arms on the
		// host's own engine — on a partitioned cluster its activations run
		// on the host's partition, wherever that is.
		chaos.Arm(cfg.plan, chaos.Targets{
			Eng:     h.Eng,
			Net:     h.cluster.Net,
			Devs:    []*Device{h.NIC},
			Drivers: []*Driver{h.Driver},
			Spaces:  []*AddressSpace{as},
			Tracer:  h.cluster.tracerFor(h.Part),
		})
	}
	return ch
}

// OpenChannelRing creates a channel from positional parameters.
//
// Deprecated: use OpenChannel(as, WithChannelName(name), WithRingSize(ringSize), WithPolicy(policy)).
func (h *Host) OpenChannelRing(name string, as *AddressSpace, ringSize int, policy FaultPolicy) *Channel {
	return h.OpenChannel(as, WithChannelName(name), WithRingSize(ringSize), WithPolicy(policy))
}

// OpenQP creates an ODP-enabled queue pair for as on the host's HCA.
func (h *Host) OpenQP(as *AddressSpace) *QP {
	if h.HCA == nil {
		h.AttachHCA()
	}
	qp := h.HCA.NewQP(as)
	h.Driver.EnableODPQP(qp)
	return qp
}

// OpenPinnedQP creates a queue pair whose memory the caller pins and
// registers explicitly (no ODP).
func (h *Host) OpenPinnedQP(as *AddressSpace) *QP {
	if h.HCA == nil {
		h.AttachHCA()
	}
	return h.HCA.NewQP(as)
}
