package npf

import (
	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
)

// Cluster is a convenience wrapper bundling an engine, a fabric, and host
// construction — the few lines every simulation starts with.
type Cluster struct {
	Eng *Engine
	Net *Network
}

// NewCluster creates an engine and fabric in one call.
func NewCluster(seed int64, cfg FabricConfig) *Cluster {
	eng := sim.NewEngine(seed)
	return &Cluster{Eng: eng, Net: fabric.New(eng, cfg)}
}

// Host is one machine: memory, an NPF driver, and optionally a NIC and/or
// an HCA.
type Host struct {
	Name    string
	Machine *Machine
	Driver  *Driver
	NIC     *Device
	HCA     *HCA

	cluster *Cluster
}

// NewHost adds a machine with ramBytes of memory and an NPF driver.
func (c *Cluster) NewHost(name string, ramBytes int64) *Host {
	return &Host{
		Name:    name,
		Machine: mem.NewMachine(c.Eng, ramBytes),
		Driver:  core.NewDriver(c.Eng, core.DefaultConfig()),
		cluster: c,
	}
}

// AttachNIC gives the host an Ethernet NIC wired to its driver.
func (h *Host) AttachNIC() *Device {
	h.NIC = nic.NewDevice(h.cluster.Eng, h.cluster.Net, nic.DefaultConfig())
	h.Driver.AttachDevice(h.NIC)
	return h.NIC
}

// AttachHCA gives the host an InfiniBand adapter wired to its driver.
func (h *Host) AttachHCA() *HCA {
	h.HCA = rc.NewHCA(h.cluster.Eng, h.cluster.Net, rc.DefaultConfig())
	h.Driver.AttachHCA(h.HCA)
	return h.HCA
}

// NewProcess creates an IOuser address space, optionally inside a memory
// cgroup.
func (h *Host) NewProcess(name string, cgroup *MemGroup) *AddressSpace {
	return h.Machine.NewAddressSpace(name, cgroup)
}

// OpenChannel creates a direct I/O channel for as on the host's NIC with
// the given receive fault policy, and — for non-pinned policies — enables
// on-demand paging through the host driver. For PolicyPinned the caller is
// expected to StaticPinAll (or otherwise guarantee residence).
func (h *Host) OpenChannel(name string, as *AddressSpace, ringSize int, policy FaultPolicy) *Channel {
	if h.NIC == nil {
		h.AttachNIC()
	}
	ch := h.NIC.NewChannel(name, as, ringSize, policy, ringSize)
	if policy != PolicyPinned {
		h.Driver.EnableODP(ch)
	}
	return ch
}

// OpenQP creates an ODP-enabled queue pair for as on the host's HCA.
func (h *Host) OpenQP(as *AddressSpace) *QP {
	if h.HCA == nil {
		h.AttachHCA()
	}
	qp := h.HCA.NewQP(as)
	h.Driver.EnableODPQP(qp)
	return qp
}

// OpenPinnedQP creates a queue pair whose memory the caller pins and
// registers explicitly (no ODP).
func (h *Host) OpenPinnedQP(as *AddressSpace) *QP {
	if h.HCA == nil {
		h.AttachHCA()
	}
	return h.HCA.NewQP(as)
}
