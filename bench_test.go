package npf

// One testing.B benchmark per table and figure of the paper's evaluation
// (§6), driving the same runners as cmd/npfbench at reduced sizes. The
// custom metrics attached to each benchmark are the figures' headline
// numbers, so `go test -bench=.` doubles as a regression check on the
// reproduction. Full-size runs: `go run ./cmd/npfbench`.

import (
	"testing"

	"npf/internal/bench"
	"npf/internal/sim"
)

func BenchmarkFig3NPFBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunFig3(30)
		b.ReportMetric(r.NPF["4KB"].Total, "µs/4KB-NPF")
		b.ReportMetric(r.NPF["4MB"].Total, "µs/4MB-NPF")
	}
}

func BenchmarkFig3Invalidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunFig3(10)
		b.ReportMetric(r.InvalidationMapped, "µs/mapped-inval")
		b.ReportMetric(r.InvalidationFast, "µs/fast-inval")
	}
}

func BenchmarkTable4TailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunTable4(500)
		b.ReportMetric(r.Rows["4KB"].P99, "µs/p99-4KB")
		b.ReportMetric(r.Rows["4KB"].Max, "µs/max-4KB")
	}
}

func BenchmarkFig4aColdRing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunFig4a(20 * sim.Second)
		// Headline: how much throughput the drop config lost in the first
		// 10 seconds relative to pinning.
		lost := seriesSum(r.Series["pin"], 10) - seriesSum(r.Series["drop"], 10)
		b.ReportMetric(lost, "KTPSs-lost-to-cold-ring")
	}
}

func seriesSum(pts [][2]float64, untilSec float64) float64 {
	total := 0.0
	for _, p := range pts {
		if p[0] < untilSec {
			total += p[1]
		}
	}
	return total
}

func BenchmarkFig4bRingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunFig4b(1000, []int{16, 128}, 120*sim.Second)
		b.ReportMetric(r.Seconds["drop"][0], "s/drop-ring16")
		b.ReportMetric(r.Seconds["backup"][0], "s/backup-ring16")
	}
}

func BenchmarkTable5Overcommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunTable5()
		b.ReportMetric(r.KTPS["NPF"][3], "KTPS/npf-4vm")
		b.ReportMetric(r.KTPS["pinning"][2], "KTPS/pin-3vm(-1=N/A)")
	}
}

func BenchmarkFig7DynamicWorkingSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunFig7()
		npfEnd := lastCombined(r.Series["npf"])
		pinEnd := lastCombined(r.Series["pin"])
		b.ReportMetric(npfEnd, "KHPS/npf-combined")
		b.ReportMetric(pinEnd, "KHPS/pin-combined")
	}
}

func lastCombined(pair [2][][2]float64) float64 {
	n := len(pair[0])
	if len(pair[1]) < n {
		n = len(pair[1])
	}
	if n == 0 {
		return 0
	}
	return pair[0][n-1][1] + pair[1][n-1][1]
}

func BenchmarkFig8aStorageBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunFig8a()
		b.ReportMetric(r.NPF[0], "GBps/npf-4GB")
		b.ReportMetric(r.NPF[len(r.NPF)-1], "GBps/npf-8GB")
	}
}

func BenchmarkFig8bStorageMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunFig8b()
		last := len(r.Sessions) - 1
		b.ReportMetric(r.NPF64KB[last], "GB/npf-64KB-80sess")
		b.ReportMetric(r.Pin[last], "GB/pin-80sess")
	}
}

func BenchmarkFig9IMB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunFig9(4, 30)
		last := len(r.SizesKB) - 1
		copyT := r.Seconds["alltoall"]["copy"][last]
		pinT := r.Seconds["alltoall"]["pin"][last]
		npfT := r.Seconds["alltoall"]["npf"][last]
		b.ReportMetric(copyT/pinT, "x/copy-over-pin-128KB")
		b.ReportMetric(npfT/pinT, "x/npf-over-pin-128KB")
	}
}

func BenchmarkTable6Beff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunTable6(4)
		b.ReportMetric(r.MBps["npf"], "MBps/npf")
		b.ReportMetric(r.MBps["pin"], "MBps/pin")
		b.ReportMetric(r.MBps["copy"], "MBps/copy")
	}
}

func BenchmarkFig10WhatIf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunFig10()
		b.ReportMetric(r.MinorBrng[0], "Gbps/brng-minor-2^-8")
		b.ReportMetric(r.MinorDrop[0], "Gbps/drop-minor-2^-8")
		b.ReportMetric(100*r.IBMinor[0]/r.IBOptimum, "%/ib-minor-2^-8")
	}
}

func BenchmarkAblatePrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunAblate()
		b.ReportMetric(r.BatchedMs, "ms/batched-4MB")
		b.ReportMetric(r.PagewiseMs, "ms/pagewise-4MB")
	}
}
