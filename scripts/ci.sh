#!/usr/bin/env bash
# CI gate: formatting, vet, build, race-enabled tests, and the telemetry
# subsystem's zero-allocation contract for disabled tracers.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go mod tidy / verify =="
# The only dependency (golang.org/x/tools, the go/analysis framework) is
# served from the checked-in file proxy under third_party/goproxy, so
# module hygiene is verifiable fully offline. Builds never need this env:
# they use the vendor/ directory.
(
    export GOPROXY="file://$PWD/third_party/goproxy" GOSUMDB=off
    go mod tidy
    go mod verify
    go mod vendor
)
if ! git diff --quiet go.mod go.sum vendor/; then
    echo "go.mod/go.sum/vendor drift: run go mod tidy && go mod vendor with the third_party/goproxy GOPROXY" >&2
    git --no-pager diff --stat go.mod go.sum vendor/ >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test -timeout 20m ./...

# The full experiment suite (internal/bench) takes ~10 minutes without the
# race detector and blows past any reasonable timeout with it; its heavy
# tests honour -short, so the race pass runs in short mode and still
# exercises every package's fast paths under the detector. This pass also
# covers the analyzer unit tests (internal/analysis/...): the fixture
# harness and the shared fact store run under the detector here.
echo "== go test -race -short =="
go test -race -short -timeout 10m ./...

echo "== tracer disabled-path allocation check =="
out=$(go test -run 'TestTracerDisabledNoAlloc' -bench 'BenchmarkTracerDisabled' -benchtime 1000x ./internal/trace/)
echo "$out"
if ! echo "$out" | grep -q 'BenchmarkTracerDisabled.* 0 B/op.* 0 allocs/op'; then
    echo "BenchmarkTracerDisabled is not allocation-free" >&2
    exit 1
fi

# The sim engine's free-list contract: steady-state scheduling must not
# allocate, and the event-throughput hot path must report 0 allocs/op.
echo "== engine allocation gate =="
out=$(go test -run 'TestEngineSteadyStateAllocs|TestEngineTimerChurnAllocs' \
    -bench 'BenchmarkEngineEventThroughput' -benchtime 10000x ./internal/sim/)
echo "$out"
if ! echo "$out" | grep -q 'BenchmarkEngineEventThroughput.* 0 B/op.* 0 allocs/op'; then
    echo "BenchmarkEngineEventThroughput is not allocation-free" >&2
    exit 1
fi

# The sweep runner's determinism contract under the race detector: the
# worker pool fans real figure jobs across 8 goroutines and must produce
# byte-identical output to the serial run.
echo "== sweep runner race check =="
go test -race -run 'TestRunParallel' ./internal/bench/

# Chaos smoke matrix: every named fault-injection scenario — including the
# distributed-KV ones (invalidation storm, replica link flap, memory
# pressure) — must pass its invariants (npfbench -chaos exits non-zero
# otherwise) under two seeds.
echo "== chaos scenario matrix =="
for seed in 1 7; do
    go run ./cmd/npfbench -chaos all -seed "$seed" > /dev/null
    echo "chaos matrix ok (seed $seed)"
done

# PDES engines determinism matrix: the same partitioned run must produce
# byte-identical reports — trace digests included — whether it gets 1 or 4
# engine worker threads. Covers every chaos scenario (server tier and
# client tier in separate partitions) and the KV registration ablation.
# Wall-clock headers are the only nondeterministic output; strip them.
echo "== engines determinism matrix =="
tmp1=$(mktemp)
tmp4=$(mktemp)
go run ./cmd/npfbench -chaos all -engines 1 | sed 's/(wall [^)]*)//' > "$tmp1"
go run ./cmd/npfbench -chaos all -engines 4 | sed 's/(wall [^)]*)//' > "$tmp4"
diff "$tmp1" "$tmp4" || { echo "chaos digests differ between -engines 1 and 4" >&2; exit 1; }
go run ./cmd/npfbench -quick -engines 1 kv | sed 's/(wall [^)]*)//' > "$tmp1"
go run ./cmd/npfbench -quick -engines 4 kv | sed 's/(wall [^)]*)//' > "$tmp4"
diff "$tmp1" "$tmp4" || { echo "kv ablation differs between -engines 1 and 4" >&2; exit 1; }
go run ./cmd/npfbench -quick -engines 1 scaleout | sed 's/(wall [^)]*)//' > "$tmp1"
go run ./cmd/npfbench -quick -engines 4 scaleout | sed 's/(wall [^)]*)//' > "$tmp4"
diff "$tmp1" "$tmp4" || { echo "scale-out sweep differs between -engines 1 and 4" >&2; exit 1; }
# Fault-anatomy determinism: the profiler's rendering carries no wall
# clock at all, so the diff needs no stripping. The critpath subcommand
# rides along as a render smoke.
go run ./cmd/npftrace anatomy -quick -engines 1 > "$tmp1"
go run ./cmd/npftrace anatomy -quick -engines 4 > "$tmp4"
diff "$tmp1" "$tmp4" || { echo "fault anatomy differs between -engines 1 and 4" >&2; exit 1; }
go run ./cmd/npftrace critpath -quick > /dev/null
rm -f "$tmp1" "$tmp4"
echo "engines matrix ok (chaos + kv + scaleout + anatomy, -engines 1 vs 4)"

# npflint: the determinism contracts (no wall clock in sim layers, no
# order-dependent map walks, sim.Time-only signatures, nil-safe tracer
# access, no deprecated positional shims, no host concurrency bypassing
# the cross-engine mailbox protocol) as a hard machine-checked gate.
# The optshim analyzer subsumes the old grep-based deprecated-shim gate and
# is robust to import aliasing and line wrapping; xengine fences the sim
# layers from sync/channel/go constructs that would race partitions.
# The v2 interprocedural analyzers ride the same invocation: detflow
# (transitive nondeterminism reach via facts), noalloc (the //npf:noalloc
# allocation fence — removing a registered hot-path annotation fails
# here), and probepure (read-only sampler probes).
echo "== npflint =="
go run ./cmd/npflint ./...

echo "== bench smoke =="
go test -run 'XXX' -bench 'BenchmarkFaultPath|BenchmarkBackupReplay' -benchtime=1x ./internal/bench/

echo "== npfbench -json artifact check =="
tmpjson=$(mktemp)
tmpseries=$(mktemp)
trap 'rm -f "$tmpjson" "$tmpseries"' EXIT
go run ./cmd/npfbench -quick -parallel 0 -series "$tmpseries" -json "$tmpjson" fig3 ablate kv anatomy > /dev/null
python3 - "$tmpjson" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["parallel"] >= 1, doc
assert doc["engine_bench"]["allocs_per_op"] == 0, doc["engine_bench"]
assert doc["engine_bench"]["events_per_sec"] > 0, doc["engine_bench"]
assert doc["series"]["samples"] > 0 and doc["series"]["metrics"] > 0, doc.get("series")
assert len(doc["series"]["digest"]) == 16, doc["series"]
names = [e["name"] for e in doc["experiments"]]
assert names == ["fig3", "ablate", "kv", "anatomy"], names
for e in doc["experiments"]:
    assert e["engines"] > 0 and e["events"] > 0, e
kv = doc["kv"]
assert [r["policy"] for r in kv] == ["odp", "pin-down-cache", "pinned"], kv
for r in kv:
    assert r["ops"] > 0 and r["p99_us"] > 0 and r["failovers"] == 0, r
assert kv[0]["npfs"] > 0 and kv[0]["evictions"] > 0, kv[0]   # ODP bends
assert kv[-1]["npfs"] == 0 and kv[-1]["evictions"] == 0, kv[-1]  # pinned doesn't
print("artifact ok:", ", ".join(
    f"{e['name']}={e['events']} events/{e['engines']} engines" for e in doc["experiments"]))
print("kv ablation ok:", ", ".join(
    f"{r['policy']}: p99={r['p99_us']:.0f}us npfs={r['npfs']}" for r in kv))
an = doc["fault_anatomy"]
assert [r["policy"] for r in an] == ["odp", "pin-down-cache", "pinned"], an
assert an[0]["faults"] > 0 and an[0]["pending"] == 0, an[0]
assert an[0]["faults"] == an[0]["npfs"], an[0]          # every NPF dissected
assert an[0]["crit_stage"] == "fault-report" and an[0]["crit_layer"] == "hw", an[0]
assert an[0]["total_p99_us"] > an[0]["total_p50_us"] > 0, an[0]
assert an[-1]["faults"] == 0 and an[-1]["crit_stage"] == "-", an[-1]  # pinned: no faults
for r in an:
    assert r["dropped_fault_events"] == 0 and r["dropped_fault_records"] == 0, r
td = doc["trace_drops"]
assert td["tracers"] > 0, td
assert td["dropped_spans"] == 0 and td["dropped_fault_events"] == 0, td
print("fault anatomy ok:", ", ".join(
    f"{r['policy']}: faults={r['faults']} crit={r['crit_stage']}" for r in an))
EOF

# npfstat regression gate: the quick run above must stay within generous
# deltas of the committed baseline (BENCH_pr10.json, the current
# reference: the quick fig3/ablate/kv/anatomy suite plus the KV ablation,
# fault-anatomy, and PDES scaling sections). Structural drift (missing
# experiments, engine-count changes, any event-count delta — engines and
# events gate exactly — KV metric drift beyond -count-tol, fault-anatomy
# drift: faults/pending and the critical-path stage/layer/host exactly,
# percentiles within -count-tol, allocs/op regressions) hard-fails;
# wall-clock deltas are machine noise and only warn, and dropped-telemetry
# counts warn. The baseline was captured with the same -series flag as the
# run above, so sampler tick events match exactly; regenerate it with
#   go run ./cmd/npfbench -quick -parallel 0 -series /dev/null \
#       -json BENCH_pr10.json fig3 ablate kv anatomy scale
# (the trailing scale experiment adds the scaling section; the diff
# ignores baseline-only sections, so CI skips re-measuring it).
echo "== npfstat regression gate =="
go run ./cmd/npfstat -count-tol 0.10 -baseline BENCH_pr10.json "$tmpjson"

# Scale-out fleet gate: re-run the full 1,008-host / 101,000-client cluster
# sweep (both transports, the fixed 8-partition group, ~10 s at -engines 8)
# and hard-gate it against the committed BENCH_pr8.json: fleet shape,
# completed ops, and the run fingerprint must match exactly — the sweep is
# byte-identical for every -engines and -parallel value — and bytes-per-host
# must hold within -count-tol. Regenerate the baseline with
#   go run ./cmd/npfbench -engines 8 -parallel 0 -json BENCH_pr8.json scaleout
echo "== scale-out fleet gate =="
go run ./cmd/npfbench -engines 8 -parallel 0 -json "$tmpjson" scaleout > /dev/null
go run ./cmd/npfstat -baseline BENCH_pr8.json "$tmpjson"

# npfstat render smoke: the series CSV written above must parse and render.
echo "== npfstat render smoke =="
go run ./cmd/npfstat -render "$tmpseries" > /dev/null
echo "npfstat render ok"

echo "CI OK"
