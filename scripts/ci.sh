#!/usr/bin/env bash
# CI gate: formatting, vet, build, race-enabled tests, and the telemetry
# subsystem's zero-allocation contract for disabled tracers.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test -timeout 20m ./...

# The full experiment suite (internal/bench) takes ~10 minutes without the
# race detector and blows past any reasonable timeout with it; its heavy
# tests honour -short, so the race pass runs in short mode and still
# exercises every package's fast paths under the detector.
echo "== go test -race -short =="
go test -race -short -timeout 10m ./...

echo "== tracer disabled-path allocation check =="
out=$(go test -run 'TestTracerDisabledNoAlloc' -bench 'BenchmarkTracerDisabled' -benchtime 1000x ./internal/trace/)
echo "$out"
if ! echo "$out" | grep -q 'BenchmarkTracerDisabled.* 0 B/op.* 0 allocs/op'; then
    echo "BenchmarkTracerDisabled is not allocation-free" >&2
    exit 1
fi

echo "CI OK"
