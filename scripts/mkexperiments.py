#!/usr/bin/env python3
"""Generate EXPERIMENTS.md from a full `npfbench` run (experiments_full.txt).

Keeps the measured output verbatim (it is deterministic) and wraps each
experiment with the paper-vs-measured commentary.
"""
import re
import sys

RUN = "experiments_full.txt"
OUT = "EXPERIMENTS.md"

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation (§6), regenerated on the
simulated stack with:

```
go run ./cmd/npfbench | tee experiments_full.txt
```

The measured blocks below are quoted verbatim from one full run
(`experiments_full.txt`, committed alongside); the simulation is
deterministic, so rerunning reproduces them exactly. `internal/bench`'s
shape tests assert every claim marked ✓ on each `go test` run, so the
reproduction cannot silently regress.

**Reading the comparisons.** The substrate is a calibrated simulator, not
the authors' testbed. Microsecond-level mechanism latencies (Figure 3,
Table 4) are calibrated directly and match absolutely. Application-level
throughputs are *scaled* (each experiment notes its scale); what must
match — the deliverable — is the paper's *shape*: who wins, by roughly
what factor, and where crossovers fall.
"""

# Per-experiment commentary: (title, paper expectation, verdict notes)
COMMENTARY = {
    "fig3": (
        "Figure 3 — NPF and invalidation execution breakdown",
        "A minor NPF costs ≈220 µs for a 4 KB message (≈90% in "
        "firmware/hardware) and ≈350 µs for 4 MB (the software share grows "
        "with the page count); invalidations cost ≈55–60 µs when the page "
        "was device-mapped and ≈10 µs on the unmapped fast path.",
        "✓ Calibrated match: 213 µs / 351 µs with the hardware components "
        "(trigger + resume) dominating; invalidation fast path ≈5× cheaper "
        "than the mapped path, as in the paper.",
    ),
    "table4": (
        "Table 4 — tail latency of NPFs",
        "4 KB 215/250/261/464 µs and 4 MB 352/431/440/687 µs for "
        "p50/p95/p99/max — a long firmware tail roughly 2× the median.",
        "✓ p50/p95/p99 within a few percent of the paper; max lands in the "
        "same ≈2×-median regime (the tail is a calibrated log-normal + "
        "rare firmware hiccup, not a fitted trace).",
    ),
    "fig4a": (
        "Figure 4(a) — cold-ring startup, 64-entry receive ring",
        "Pinning reaches steady state immediately; the backup ring "
        "matches pinning; dropping faulting packets leaves throughput at "
        "≈0 for tens of seconds (TCP treats rNPF loss as congestion and "
        "backs off exactly when the receiver needs packets to warm up).",
        "✓ Shape: pin and backup reach full rate within the first second; "
        "drop is ≈0 for several seconds and then staircase-recovers as "
        "each RTO round warms one descriptor. Our outage is shorter than "
        "the paper's ≈60 s because our TCP converges its RTO to the 200 ms "
        "floor once the handshake measures an RTT, where the paper-era "
        "stack spent longer in 1 s-initial-RTO territory; the collapse "
        "mechanism (drops → backoff → starvation) is identical. Throughput "
        "axis is simulation-scaled KTPS.",
    ),
    "fig4b": (
        "Figure 4(b) — time for 10,000 operations vs ring size",
        "Drop takes >10 s even with 16 entries and fails (TCP "
        "retry limit) at ≥128; backup degrades gracefully with ring size; "
        "pin is flat.",
        "≈ Shape: drop grows monotonically from ~3.7 s at 16 entries to "
        "~154 s at 4096 (each cold descriptor costs a TCP timeout round); "
        "backup stays in fractions of a second with a mild upward slope "
        "(per-descriptor fault service); pin is flat. The paper's outright "
        "FAILED entries do not reproduce because our TCP resets its retry "
        "counter on any forward progress — the drop configuration is "
        "instead 500–1000× slower than backup, which tells the same story.",
    ),
    "table5": (
        "Table 5 — memcached VM overcommitment",
        "NPF scales 186/311/407/484 KTPS for 1–4 VMs; pinning "
        "matches for 1–2 VMs and cannot start 3–4 (9 GB of pinned virtual "
        "memory exceeds the 8 GB host).",
        "✓ Shape at 1/32 memory scale: NPF scales near-linearly to 4 "
        "instances; pinning equals NPF at 1–2 and is N/A at 3–4 for "
        "exactly the paper's reason (StaticPinAll returns OOM).",
    ),
    "fig7": (
        "Figure 7 — dynamic working sets (100↔900 MB flip)",
        "With NPFs both instances converge to equal, full-rate "
        "service after a short transition; with pinning the instance whose "
        "working set exceeds its static half always suffers; combined "
        "NPF > pin.",
        "✓ Shape at 1/16 scale (flip at t=20 s instead of 50 s): NPF shows "
        "a ~4-second transition dip then both instances at the full rate; "
        "pinning shows the suffering instance swap sides at the flip with "
        "combined throughput ≈21% below NPF throughout.",
    ),
    "fig8a": (
        "Figure 8(a) — storage bandwidth vs memory",
        "The pinned tgt fails to load below 5 GB; NPF runs at 4 GB; "
        "NPF up to 1.9× faster mid-range; the two converge once the pinned "
        "configuration can cache the whole disk (≥7 GB).",
        "✓ Shape at 1/8 scale: pin N/A at 4–4.5 GB (the 1 GB pinned "
        "communication buffers exceed the 20%-of-RAM locked-memory "
        "budget — our stand-in for the paper's unexplained 5 GB load "
        "threshold, documented in DESIGN.md), NPF ahead 1.9–2.9× from 5 to "
        "6.5 GB, exact convergence at 7 GB.",
    ),
    "fig8b": (
        "Figure 8(b) — tgt memory usage vs initiator sessions",
        "Pinning holds 1 GB regardless; with NPFs memory follows "
        "actual use — growing with sessions for 512 KB blocks (each "
        "transaction touches its whole fixed 512 KB chunk) and staying far "
        "lower for 64 KB blocks (7/8 of every chunk is never touched).",
        "✓ Shape: pin flat at 1.00 GB; npf-512KB grows 0.02→1.00 GB "
        "across 1→80 sessions; npf-64KB stays ≤0.12 GB.",
    ),
    "fig9": (
        "Figure 9 — IMB runtime vs message size (off_cache)",
        "copy/pin grows with message size (sendrecv 1.1→2.1×, "
        "alltoall 1.2→2.2×); NPF tracks the pin-down cache (npf/pin ≈ 1).",
        "✓ Shape: npf/pin = 0.99–1.00 everywhere; copy/pin grows with "
        "size in every benchmark (sendrecv 1.17→1.74×, bcast 1.13→1.36×, "
        "alltoall 1.11→1.24×) — same direction, slightly shallower slope "
        "than the paper's testbed.",
    ),
    "table6": (
        "Table 6 — beff-style accumulated bandwidth",
        "16,410 (pin) ≈ 16,440 (NPF) MB/s, both ≈2× copying "
        "(8,020).",
        "✓ pin ≈ NPF within 0.1%; copying clearly loses (≈1.4× rather "
        "than 2× — our copy baseline only pays memcpy, not the cache "
        "pollution a real machine adds).",
    ),
    "fig10": (
        "Figure 10 — what-if: throughput vs synthetic rNPF frequency",
        "The backup ring beats dropping at every frequency; for "
        "dropping the fault type is irrelevant (TCP's RTO dwarfs even a "
        "major fault); the backup ring degrades under major faults; the "
        "InfiniBand RNR-based hardware solution recovers quickly but "
        "wastes more of the link than the backup ring.",
        "✓ All four orderings hold; fault frequency is per received 4 KB "
        "page. minor-brng holds line rate until faults outrun the "
        "resolver; drop minor == drop major exactly; IB rises from 35% to "
        "100% of optimum as faults rarify, mirroring the right panel.",
    ),
    "ablate": (
        "Ablations — §4 design choices and the §4 future-work extension",
        "(§4) Batching scatter-gather fault resolution is what "
        "keeps a cold 4 MB send under ~350 µs — one page per PRI request "
        "'would have been prohibitive (more than 220 milliseconds)'; the "
        "in-flight bitmap keeps duplicate reports off the slow firmware "
        "path; and the paper recommends extending RC end-to-end flow "
        "control to remote reads.",
        "✓ Page-wise resolution costs 290 ms — the paper's claim, "
        "reproduced. The bitmap suppresses ~50× duplicate reports on a "
        "cold-ring burst. Small pin-down caches thrash. The read-RNR "
        "extension cuts wasted response chunks ~20× versus drop-and-"
        "rewind. Guest-table (2D) protection is free at stream rates.",
    ),
    "loc": (
        "§6.3 — programming complexity",
        "Porting tgt to NPFs changed ≈40 LOC, while pin-down cache "
        "machinery costs thousands of lines (Firehose ≈8.5 K LOC).",
        "✓ Measured on this repository: the pin-down cache alone is ~80 "
        "LOC of mechanism before any policy, and the MPI middleware's "
        "entire ODP 'strategy' is its registration call sites.",
    ),
}

ORDER = ["fig3", "table4", "fig4a", "fig4b", "table5", "fig7",
         "fig8a", "fig8b", "fig9", "table6", "fig10", "ablate", "loc"]


def main():
    text = open(RUN).read()
    blocks = {}
    for m in re.finditer(r"^==== (\w+) \(wall [^)]*\) ====\n(.*?)(?=^==== |\Z)",
                         text, re.M | re.S):
        blocks[m.group(1)] = m.group(2).strip("\n")

    out = [HEADER]
    for key in ORDER:
        if key not in blocks:
            print(f"warning: {key} missing from run", file=sys.stderr)
            continue
        title, paper, verdict = COMMENTARY[key]
        body = blocks[key]
        # Figure 4a's series is long; keep only every 4th sample line.
        if key == "fig4a":
            kept, i = [], 0
            for line in body.splitlines():
                if line.startswith("  t="):
                    if i % 4 == 0:
                        kept.append(line)
                    i += 1
                else:
                    i = 0
                    kept.append(line)
            body = "\n".join(kept)
        if key == "fig7":
            kept, i = [], 0
            for line in body.splitlines():
                if re.match(r"^\s+\d+\s", line):
                    t = int(line.split()[0])
                    if t % 5 == 0 or 19 <= t <= 25:
                        kept.append(line)
                else:
                    kept.append(line)
            body = "\n".join(kept)
        out.append(f"\n## {title}\n\n**Paper.** {paper}\n\n"
                   f"**Measured.**\n\n```\n{body}\n```\n\n"
                   f"**Verdict.** {verdict}\n")

    out.append("""
## Scaling and substitutions (summary)

| Experiment | Scale / substitution |
|---|---|
| Fig. 3, Table 4 | none — latencies calibrated to the paper |
| Fig. 4 | throughput axis is simulated-server KTPS; TCP parameters are Linux-3.x defaults |
| Table 5 | memory 1/32 (host 8 GB→256 MB, VM 3 GB→96 MB, working set <2 GB→48 MB) |
| Fig. 7 | memory 1/16; flip at t=20 s instead of 50 s; 16 KB items for 20 KB |
| Fig. 8 | memory 1/8 (LUN 4 GB→512 MB, buffers 1 GB→128 MB); pinned-load failure via a 20%-of-RAM locked-memory budget; IB MTU 64 KB for event-count tractability |
| Fig. 9, Table 6 | 8 ranks as in the paper; IB MTU 16 KB; per-message MPI software overhead 5 µs |
| Fig. 10 | fault frequency interpreted per received 4 KB page; 64 MB (Ethernet) / 128 MB (IB) transfers per point |

Full substitution rationale: DESIGN.md §1.
""")
    with open(OUT, "w") as f:
        f.write("\n".join(out))
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
