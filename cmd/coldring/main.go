// Command coldring demonstrates the paper's §5 cold-ring problem
// interactively: it runs the memcached startup experiment for one receive
// fault policy and ring size, printing the throughput-over-time series.
//
//	coldring -policy drop -ring 64 -seconds 80
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"npf/internal/apps"
	"npf/internal/bench"
	"npf/internal/nic"
	"npf/internal/sim"
)

func main() {
	policyName := flag.String("policy", "backup", "receive fault policy: pin | drop | backup")
	ring := flag.Int("ring", 64, "receive ring entries")
	seconds := flag.Int("seconds", 80, "virtual seconds to simulate")
	flag.Parse()

	var policy nic.FaultPolicy
	switch *policyName {
	case "pin":
		policy = nic.PolicyPinned
	case "drop":
		policy = nic.PolicyDrop
	case "backup":
		policy = nic.PolicyBackup
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyName)
		os.Exit(2)
	}

	e := bench.NewEthEnv(bench.EthOpts{Seed: 3, Policy: policy, RingSize: *ring})
	store := apps.NewKVStore(e.Server.AS, 0)
	apps.NewKVServer(e.Server.Stack, store, 50*sim.Microsecond)
	slap := apps.NewMemaslap(e.Client.Stack, apps.MemaslapConfig{
		Conns: 8, GetRatio: 0.9, ValueSize: 1024, Keys: 500,
		KeyPrefix: "k", Prepopulate: true,
	}, sim.Second)
	slap.Start(e.Server.Chan.Dev.Node, e.Server.Chan.Flow)
	e.Eng.RunUntil(sim.Time(*seconds) * sim.Second)

	times, rates := slap.OpsTS.RatePoints()
	maxRate := 0.0
	for _, r := range rates {
		if r > maxRate {
			maxRate = r
		}
	}
	fmt.Printf("policy=%v ring=%d: throughput [ops/s] over time\n", policy, *ring)
	for i := range times {
		width := 0
		if maxRate > 0 {
			width = int(rates[i] / maxRate * 60)
		}
		fmt.Printf("t=%4.0fs %9.0f %s\n", times[i], rates[i], strings.Repeat("#", width))
	}
	fmt.Printf("\nNPFs resolved: %d   packets to backup ring: %d   packets dropped to faults: %d\n",
		e.Drv.NPFs.N, e.Server.Dev.RxToBackup.N, e.Server.Dev.RxDroppedFault.N)
	if slap.Failed {
		fmt.Println("TCP declared connection failure (max retries exceeded)")
	}
}
