// Command npfsim runs a memcached-over-direct-Ethernet scenario described
// by a JSON file, so NPF configurations can be explored without writing Go:
//
//	npfsim -scenario scenario.json
//	npfsim -print-example > scenario.json
//
// A scenario declares the server machine, a set of IOuser instances (ring
// size, fault policy, VM size, optional shared memory budget), and the load
// each client drives. The report prints per-instance throughput, hit rate,
// fault counters, and memory use.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"npf/internal/apps"
	"npf/internal/bench"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/sim"
)

// Scenario is the JSON schema.
type Scenario struct {
	Seed         int64      `json:"seed"`
	ServerRAMMB  int64      `json:"server_ram_mb"`
	SharedBudget int64      `json:"shared_budget_mb"` // 0: none
	DurationSec  int        `json:"duration_sec"`
	Instances    []Instance `json:"instances"`
}

// Instance is one memcached IOuser plus its load.
type Instance struct {
	Name        string  `json:"name"`
	Policy      string  `json:"policy"` // pin | drop | backup
	RingSize    int     `json:"ring_size"`
	VMMB        int64   `json:"vm_mb"`
	CapacityMB  int64   `json:"capacity_mb"` // memcached -m; 0 = unbounded
	Conns       int     `json:"conns"`
	GetRatio    float64 `json:"get_ratio"`
	ValueBytes  int     `json:"value_bytes"`
	Keys        int     `json:"keys"`
	Prepopulate bool    `json:"prepopulate"`
}

var exampleScenario = Scenario{
	Seed:         1,
	ServerRAMMB:  256,
	SharedBudget: 96,
	DurationSec:  30,
	Instances: []Instance{
		{Name: "grow", Policy: "backup", RingSize: 64, VMMB: 128, Conns: 2,
			GetRatio: 0.9, ValueBytes: 4096, Keys: 4000, Prepopulate: true},
		{Name: "shrink", Policy: "backup", RingSize: 64, VMMB: 128, Conns: 2,
			GetRatio: 0.9, ValueBytes: 4096, Keys: 8000, Prepopulate: true},
	},
}

func main() {
	scenarioPath := flag.String("scenario", "", "path to scenario JSON")
	printExample := flag.Bool("print-example", false, "emit an example scenario and exit")
	flag.Parse()

	if *printExample {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(exampleScenario); err != nil {
			fatal(err)
		}
		return
	}
	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "usage: npfsim -scenario file.json (or -print-example)")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*scenarioPath)
	if err != nil {
		fatal(err)
	}
	var sc Scenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		fatal(fmt.Errorf("parsing scenario: %w", err))
	}
	if err := run(sc); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "npfsim:", err)
	os.Exit(1)
}

func policyOf(name string) (nic.FaultPolicy, error) {
	switch name {
	case "pin":
		return nic.PolicyPinned, nil
	case "drop":
		return nic.PolicyDrop, nil
	case "backup", "":
		return nic.PolicyBackup, nil
	}
	return 0, fmt.Errorf("unknown policy %q", name)
}

func run(sc Scenario) error {
	if sc.DurationSec <= 0 {
		sc.DurationSec = 30
	}
	if sc.ServerRAMMB <= 0 {
		sc.ServerRAMMB = 8 << 10
	}
	env := bench.NewEthEnv(bench.EthOpts{
		Seed:      sc.Seed,
		ServerRAM: sc.ServerRAMMB << 20,
		Policy:    nic.PolicyBackup,
		RingSize:  64,
	})
	var shared *mem.Group
	if sc.SharedBudget > 0 {
		shared = mem.NewGroup("shared", sc.SharedBudget<<20)
	}
	type running struct {
		inst  Instance
		srv   *bench.EthHost
		store *apps.KVStore
		slap  *apps.Memaslap
	}
	var insts []*running
	for _, inst := range sc.Instances {
		pol, err := policyOf(inst.Policy)
		if err != nil {
			return err
		}
		if inst.RingSize <= 0 {
			inst.RingSize = 64
		}
		if inst.Conns <= 0 {
			inst.Conns = 2
		}
		srv, err := env.AddServerInstance(inst.Name, pol, inst.RingSize, shared, inst.VMMB<<20)
		if err != nil {
			fmt.Printf("%-10s FAILED TO START: %v\n", inst.Name, err)
			continue
		}
		store := apps.NewKVStore(srv.AS, inst.CapacityMB<<20)
		if inst.VMMB > 0 {
			store.SetArena(0, inst.VMMB<<20)
		}
		apps.NewKVServer(srv.Stack, store, 100*sim.Microsecond)
		cli := env.AddClientInstance("cli-" + inst.Name)
		slap := apps.NewMemaslap(cli.Stack, apps.MemaslapConfig{
			Conns: inst.Conns, GetRatio: inst.GetRatio, ValueSize: inst.ValueBytes,
			Keys: inst.Keys, KeyPrefix: inst.Name, Prepopulate: inst.Prepopulate,
		}, sim.Second)
		slap.Start(srv.Chan.Dev.Node, srv.Chan.Flow)
		insts = append(insts, &running{inst, srv, store, slap})
	}
	env.Eng.RunUntil(sim.Time(sc.DurationSec) * sim.Second)

	fmt.Printf("scenario: %d instance(s), %d MB RAM, %ds simulated\n\n",
		len(insts), sc.ServerRAMMB, sc.DurationSec)
	fmt.Printf("%-10s %-7s %10s %8s %10s %12s %10s\n",
		"instance", "policy", "ops/s", "hit%", "p99[µs]", "resident MB", "faults")
	for _, r := range insts {
		ops := float64(r.slap.Ops.N) / float64(sc.DurationSec)
		hit := 0.0
		if r.slap.Ops.N > 0 {
			hit = 100 * float64(r.slap.Hits.N) / float64(r.slap.Ops.N)
		}
		fmt.Printf("%-10s %-7s %10.0f %7.1f%% %10.0f %12.1f %10d\n",
			r.inst.Name, r.srv.Chan.Rx.Policy(), ops, hit,
			r.slap.Latency().Percentile(99),
			float64(r.srv.AS.ResidentBytes())/(1<<20),
			r.srv.AS.MinorFaults.N+r.srv.AS.MajorFaults.N)
	}
	fmt.Printf("\ndriver: NPFs=%d (major %d)  invalidations mapped=%d fast=%d\n",
		env.Drv.NPFs.N, env.Drv.MajorNPFs.N, env.Drv.Inv.Mapped.N, env.Drv.Inv.FastPath.N)
	fmt.Printf("server NIC: delivered=%d toBackup=%d droppedFault=%d\n",
		env.Server.Dev.RxDelivered.N, env.Server.Dev.RxToBackup.N, env.Server.Dev.RxDroppedFault.N)
	return nil
}
