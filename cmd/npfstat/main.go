// Command npfstat inspects npfbench artifacts: it renders the deterministic
// time-series CSV written by `npfbench -series` as terminal sparklines, and
// diffs two `-json` result files with per-metric relative-delta thresholds
// and a pass/fail verdict — the regression gate CI runs against
// BENCH_baseline.json.
//
// Render a run's dynamics:
//
//	npfstat -render out.csv
//
// Diff a run against a baseline (two spellings):
//
//	npfstat -baseline BENCH_baseline.json out.json
//	npfstat BENCH_baseline.json out.json
//
// Diff semantics: structural drift — an experiment in the current run that
// the baseline has never seen, an engine-count or event-count mismatch
// (both exact: engines and events are fully deterministic given the seed,
// for any -parallel or -engines value), a KV-ablation metric (ops exactly;
// p99/npfs/evictions/shed/failovers beyond -count-tol — all virtual-time
// deterministic), a scale-out fleet row (hosts/clients/ops/fingerprint and
// per-tenant ops/lost exactly; bytes-per-host, npfs, evictions, and tenant
// p99 beyond -count-tol), a fault-anatomy row (faults/pending and the
// critical-path stage/layer/host attribution exactly; npfs and the total
// latency percentiles beyond -count-tol), a PDES-scaling row with drifted
// events, or an allocs/op regression in the engine microbenchmark — is a
// hard failure (exit 1). Nonzero dropped-telemetry counts (flight-recorder
// events/records, spans) only warn: the capture was partial but the
// simulation itself is unaffected.
// Wall-clock, events-per-second, and scaling-speedup deltas are
// machine-load noise and only warn, unless -fail-on-timing promotes them.
// Exit codes: 0 pass, 1 fail, 2 usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"npf/internal/trace"
)

// expRow mirrors npfbench's per-experiment artifact row.
type expRow struct {
	Name         string  `json:"name"`
	WallMs       float64 `json:"wall_ms"`
	Engines      int     `json:"engines"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// kvRow mirrors npfbench's per-policy KV ablation row. Every field is
// virtual-time-deterministic given the seed, so the gate treats all of them
// as counts, not timing.
type kvRow struct {
	Policy    string  `json:"policy"`
	Ops       int     `json:"ops"`
	P99Us     float64 `json:"p99_us"`
	NPFs      uint64  `json:"npfs"`
	Evictions uint64  `json:"evictions"`
	Shed      uint64  `json:"shed"`
	Failovers uint64  `json:"failovers"`
}

// anatomyRow mirrors npfbench's per-policy fault-anatomy row ("anatomy"
// experiment). Fault counts and the critical-path attribution are exact
// (virtual-time deterministic); the total-latency percentiles gate within
// -count-tol; the dropped_* fields only warn (telemetry loss, not a
// behaviour change).
type anatomyRow struct {
	Policy         string  `json:"policy"`
	Faults         int     `json:"faults"`
	Pending        int     `json:"pending"`
	NPFs           uint64  `json:"npfs"`
	TotalP50Us     float64 `json:"total_p50_us"`
	TotalP99Us     float64 `json:"total_p99_us"`
	CritStage      string  `json:"crit_stage"`
	CritLayer      string  `json:"crit_layer"`
	CritHost       int64   `json:"crit_host"`
	CritShare      float64 `json:"crit_share"`
	DroppedEvents  uint64  `json:"dropped_fault_events"`
	DroppedRecords uint64  `json:"dropped_fault_records"`
	DroppedSpans   uint64  `json:"dropped_spans"`
}

// traceDrops mirrors npfbench's telemetry-loss summary.
type traceDrops struct {
	Tracers      int    `json:"tracers"`
	Spans        uint64 `json:"dropped_spans"`
	FaultEvents  uint64 `json:"dropped_fault_events"`
	FaultRecords uint64 `json:"dropped_fault_records"`
}

// scalingRow mirrors npfbench's PDES-scaling record ("scale" experiment).
// The event count is the same partitioned simulation at two thread budgets
// and must agree exactly; the wall clocks and speedup are timing.
type scalingRow struct {
	Name    string  `json:"name"`
	Wall1Ms float64 `json:"engines1_wall_ms"`
	Wall8Ms float64 `json:"engines8_wall_ms"`
	Speedup float64 `json:"speedup"`
	Events  uint64  `json:"events"`
}

// scaleoutTenantRow mirrors one tenant of a scale-out fleet.
type scaleoutTenantRow struct {
	Tenant   string  `json:"tenant"`
	Reg      string  `json:"reg"`
	Clients  int     `json:"clients"`
	Ops      uint64  `json:"ops"`
	Timeouts uint64  `json:"timeouts"`
	Lost     uint64  `json:"lost"`
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
}

// scaleoutRow mirrors one transport's cluster-sweep fleet ("scaleout"
// experiment). The fleet shape (hosts/clients), completed ops, and the run
// fingerprint gate exactly — the fingerprint folds every per-tenant tail
// percentile, so it is the byte-identity check across engine budgets and
// -parallel fan-outs. Bytes-per-host (the cheap-per-host-state budget) and
// the NPF-machinery counters gate within -count-tol.
type scaleoutRow struct {
	Transport    string              `json:"transport"`
	Hosts        int                 `json:"hosts"`
	Clients      int                 `json:"clients"`
	Ops          uint64              `json:"ops"`
	NPFs         uint64              `json:"npfs"`
	Evictions    uint64              `json:"evictions"`
	DropsFault   uint64              `json:"drops_fault"`
	BytesPerHost int64               `json:"bytes_per_host"`
	Fingerprint  string              `json:"fingerprint"`
	Tenants      []scaleoutTenantRow `json:"tenants"`
}

// artifact mirrors the npfbench -json document (fields npfstat reads).
type artifact struct {
	GoVersion   string `json:"go_version"`
	Quick       bool   `json:"quick"`
	EngineBench struct {
		NsPerOp      float64 `json:"ns_per_op"`
		AllocsPerOp  int64   `json:"allocs_per_op"`
		EventsPerSec float64 `json:"events_per_sec"`
	} `json:"engine_bench"`
	Series *struct {
		Engines int    `json:"engines"`
		Samples int    `json:"samples"`
		Metrics int    `json:"metrics"`
		Digest  string `json:"digest"`
	} `json:"series,omitempty"`
	KV           []kvRow       `json:"kv,omitempty"`
	FaultAnatomy []anatomyRow  `json:"fault_anatomy,omitempty"`
	ScaleOut     []scaleoutRow `json:"scale_out,omitempty"`
	Scaling      []scalingRow  `json:"scaling,omitempty"`
	TraceDrops   *traceDrops   `json:"trace_drops,omitempty"`
	Experiments  []expRow      `json:"experiments"`
}

func readArtifact(path string) (*artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(a.Experiments) == 0 {
		return nil, fmt.Errorf("%s: no experiments (not an npfbench -json artifact?)", path)
	}
	return &a, nil
}

// verdict classifies one compared metric.
type verdict int

const (
	vOK verdict = iota
	vWarn
	vFail
)

func (v verdict) String() string {
	switch v {
	case vWarn:
		return "warn"
	case vFail:
		return "FAIL"
	}
	return "ok"
}

// row is one line of the delta table.
type row struct {
	scope  string // experiment name, "engine", or "series"
	metric string
	base   string
	cur    string
	delta  string
	v      verdict
	note   string
}

// relDelta returns (cur-base)/base, treating a zero base specially.
func relDelta(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (cur - base) / base
}

func fmtDelta(d float64) string {
	if math.IsInf(d, 0) {
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", d*100)
}

// diffConfig holds the gate thresholds.
type diffConfig struct {
	countTol     float64 // hard-fail threshold on KV-ablation count metrics
	timingTol    float64 // warn threshold on wall-clock metrics
	failOnTiming bool    // promote timing warnings to failures
}

// diff compares cur against base and returns the table plus overall pass.
func diff(base, cur *artifact, cfg diffConfig) ([]row, bool) {
	var rows []row
	pass := true
	fail := func(r row) {
		r.v = vFail
		pass = false
		rows = append(rows, r)
	}
	timing := func(scope, metric string, b, c float64) {
		d := relDelta(b, c)
		r := row{scope: scope, metric: metric,
			base: fmt.Sprintf("%.1f", b), cur: fmt.Sprintf("%.1f", c), delta: fmtDelta(d)}
		if math.Abs(d) > cfg.timingTol {
			r.v = vWarn
			r.note = "timing (load-dependent)"
			if cfg.failOnTiming {
				r.v = vFail
				pass = false
			}
		}
		rows = append(rows, r)
	}

	byName := make(map[string]*expRow, len(base.Experiments))
	for i := range base.Experiments {
		byName[base.Experiments[i].Name] = &base.Experiments[i]
	}
	for i := range cur.Experiments {
		c := &cur.Experiments[i]
		b, ok := byName[c.Name]
		if !ok {
			fail(row{scope: c.Name, metric: "presence", base: "-", cur: "present",
				delta: "new", note: "experiment not in baseline"})
			continue
		}
		// Engines and events are deterministic given a seed: drift here is
		// a structural/behavioural change, not noise.
		r := row{scope: c.Name, metric: "engines",
			base: fmt.Sprint(b.Engines), cur: fmt.Sprint(c.Engines), delta: fmtDelta(relDelta(float64(b.Engines), float64(c.Engines)))}
		if c.Engines != b.Engines {
			fail(r)
		} else {
			rows = append(rows, r)
		}
		// Events are exact, like engines: the event stream is a pure
		// function of the seed, so even a one-event delta is a real
		// behavioural change (and conservation across -engines counts is
		// part of the PDES determinism contract).
		d := relDelta(float64(b.Events), float64(c.Events))
		r = row{scope: c.Name, metric: "events",
			base: fmt.Sprint(b.Events), cur: fmt.Sprint(c.Events), delta: fmtDelta(d)}
		if c.Events != b.Events {
			r.note = "event-count drift (deterministic given seed)"
			fail(r)
		} else {
			rows = append(rows, r)
		}
		timing(c.Name, "wall_ms", b.WallMs, c.WallMs)
		timing(c.Name, "events_per_sec", b.EventsPerSec, c.EventsPerSec)
	}

	if base.EngineBench.NsPerOp > 0 || cur.EngineBench.NsPerOp > 0 {
		timing("engine", "ns_per_op", base.EngineBench.NsPerOp, cur.EngineBench.NsPerOp)
		r := row{scope: "engine", metric: "allocs_per_op",
			base: fmt.Sprint(base.EngineBench.AllocsPerOp), cur: fmt.Sprint(cur.EngineBench.AllocsPerOp),
			delta: fmtDelta(relDelta(float64(base.EngineBench.AllocsPerOp), float64(cur.EngineBench.AllocsPerOp)))}
		if cur.EngineBench.AllocsPerOp > base.EngineBench.AllocsPerOp {
			r.note = "allocation regression"
			fail(r)
		} else {
			rows = append(rows, r)
		}
	}

	if len(cur.KV) > 0 {
		kvBase := make(map[string]*kvRow, len(base.KV))
		for i := range base.KV {
			kvBase[base.KV[i].Policy] = &base.KV[i]
		}
		count := func(scope, metric string, b, c float64) {
			d := relDelta(b, c)
			r := row{scope: scope, metric: metric,
				base: fmt.Sprintf("%.0f", b), cur: fmt.Sprintf("%.0f", c), delta: fmtDelta(d)}
			if math.Abs(d) > cfg.countTol {
				r.note = fmt.Sprintf("beyond count-tol %.2f", cfg.countTol)
				fail(r)
			} else {
				rows = append(rows, r)
			}
		}
		for i := range cur.KV {
			c := &cur.KV[i]
			scope := "kv/" + c.Policy
			b, ok := kvBase[c.Policy]
			if !ok {
				fail(row{scope: scope, metric: "presence", base: "-", cur: "present",
					delta: "new", note: "policy not in baseline"})
				continue
			}
			// Completed ops are a correctness invariant, not a tolerance.
			r := row{scope: scope, metric: "ops",
				base: fmt.Sprint(b.Ops), cur: fmt.Sprint(c.Ops),
				delta: fmtDelta(relDelta(float64(b.Ops), float64(c.Ops)))}
			if c.Ops != b.Ops {
				r.note = "completed-op drift (lost or duplicated client ops)"
				fail(r)
			} else {
				rows = append(rows, r)
			}
			count(scope, "p99_us", b.P99Us, c.P99Us)
			count(scope, "npfs", float64(b.NPFs), float64(c.NPFs))
			count(scope, "evictions", float64(b.Evictions), float64(c.Evictions))
			count(scope, "shed", float64(b.Shed), float64(c.Shed))
			count(scope, "failovers", float64(b.Failovers), float64(c.Failovers))
		}
	}

	if len(cur.FaultAnatomy) > 0 {
		anBase := make(map[string]*anatomyRow, len(base.FaultAnatomy))
		for i := range base.FaultAnatomy {
			anBase[base.FaultAnatomy[i].Policy] = &base.FaultAnatomy[i]
		}
		count := func(scope, metric string, b, c float64) {
			d := relDelta(b, c)
			r := row{scope: scope, metric: metric,
				base: fmt.Sprintf("%.0f", b), cur: fmt.Sprintf("%.0f", c), delta: fmtDelta(d)}
			if math.Abs(d) > cfg.countTol {
				r.note = fmt.Sprintf("beyond count-tol %.2f", cfg.countTol)
				fail(r)
			} else {
				rows = append(rows, r)
			}
		}
		exactStr := func(scope, metric, b, c, note string) {
			r := row{scope: scope, metric: metric, base: b, cur: c}
			if c != b {
				r.note = note
				fail(r)
			} else {
				rows = append(rows, r)
			}
		}
		for i := range cur.FaultAnatomy {
			c := &cur.FaultAnatomy[i]
			scope := "an/" + c.Policy
			b, ok := anBase[c.Policy]
			if !ok {
				fail(row{scope: scope, metric: "presence", base: "-", cur: "present",
					delta: "new", note: "policy not in baseline"})
				continue
			}
			// Completed-fault and pending counts are lifecycle-accounting
			// invariants: a drifted count means a fault was minted, resumed,
			// or leaked differently — a behaviour change, not noise.
			r := row{scope: scope, metric: "faults",
				base: fmt.Sprint(b.Faults), cur: fmt.Sprint(c.Faults),
				delta: fmtDelta(relDelta(float64(b.Faults), float64(c.Faults)))}
			if c.Faults != b.Faults {
				r.note = "fault-count drift (deterministic given seed)"
				fail(r)
			} else {
				rows = append(rows, r)
			}
			r = row{scope: scope, metric: "pending",
				base: fmt.Sprint(b.Pending), cur: fmt.Sprint(c.Pending),
				delta: fmtDelta(relDelta(float64(b.Pending), float64(c.Pending)))}
			if c.Pending != b.Pending {
				r.note = "pending-fault drift (leaked or lost lifecycle)"
				fail(r)
			} else {
				rows = append(rows, r)
			}
			count(scope, "npfs", float64(b.NPFs), float64(c.NPFs))
			count(scope, "total_p50_us", b.TotalP50Us, c.TotalP50Us)
			count(scope, "total_p99_us", b.TotalP99Us, c.TotalP99Us)
			// The critical-path attribution is the experiment's headline
			// claim; a changed dominant stage/layer/host is a real shift in
			// where tail latency comes from.
			exactStr(scope, "crit_stage", b.CritStage, c.CritStage, "dominant tail stage changed")
			exactStr(scope, "crit_layer", b.CritLayer, c.CritLayer, "dominant tail layer changed")
			exactStr(scope, "crit_host", fmt.Sprint(b.CritHost), fmt.Sprint(c.CritHost),
				"dominant tail host changed")
			if dropped := c.DroppedEvents + c.DroppedRecords + c.DroppedSpans; dropped > 0 {
				r := row{scope: scope, metric: "dropped", base: "0",
					cur: fmt.Sprint(dropped), v: vWarn,
					note: "telemetry loss: anatomy is partial (raise the recorder bounds)"}
				rows = append(rows, r)
			}
		}
	}

	if cur.TraceDrops != nil {
		td := cur.TraceDrops
		if n := td.Spans + td.FaultEvents + td.FaultRecords; n > 0 {
			rows = append(rows, row{scope: "trace", metric: "dropped",
				base: "0", cur: fmt.Sprint(n), v: vWarn,
				note: fmt.Sprintf("telemetry loss across %d tracers (spans %d, fault ev %d, fault rec %d)",
					td.Tracers, td.Spans, td.FaultEvents, td.FaultRecords)})
		}
	}

	if len(cur.ScaleOut) > 0 {
		soBase := make(map[string]*scaleoutRow, len(base.ScaleOut))
		for i := range base.ScaleOut {
			soBase[base.ScaleOut[i].Transport] = &base.ScaleOut[i]
		}
		exact := func(scope, metric string, b, c uint64, note string) {
			r := row{scope: scope, metric: metric,
				base: fmt.Sprint(b), cur: fmt.Sprint(c),
				delta: fmtDelta(relDelta(float64(b), float64(c)))}
			if c != b {
				r.note = note
				fail(r)
			} else {
				rows = append(rows, r)
			}
		}
		count := func(scope, metric string, b, c float64) {
			d := relDelta(b, c)
			r := row{scope: scope, metric: metric,
				base: fmt.Sprintf("%.0f", b), cur: fmt.Sprintf("%.0f", c), delta: fmtDelta(d)}
			if math.Abs(d) > cfg.countTol {
				r.note = fmt.Sprintf("beyond count-tol %.2f", cfg.countTol)
				fail(r)
			} else {
				rows = append(rows, r)
			}
		}
		for i := range cur.ScaleOut {
			c := &cur.ScaleOut[i]
			scope := "so/" + c.Transport
			b, ok := soBase[c.Transport]
			if !ok {
				fail(row{scope: scope, metric: "presence", base: "-", cur: "present",
					delta: "new", note: "transport not in baseline"})
				continue
			}
			// The fleet shape and completed ops are correctness invariants:
			// a missing host or a lost client op is a bug, not drift.
			exact(scope, "hosts", uint64(b.Hosts), uint64(c.Hosts), "fleet-shape drift")
			exact(scope, "clients", uint64(b.Clients), uint64(c.Clients), "client-count drift")
			exact(scope, "ops", b.Ops, c.Ops, "completed-op drift (lost or duplicated ops)")
			r := row{scope: scope, metric: "fingerprint", base: b.Fingerprint, cur: c.Fingerprint}
			if c.Fingerprint != b.Fingerprint {
				r.note = "run fingerprint drift (deterministic given seed)"
				fail(r)
			} else {
				rows = append(rows, r)
			}
			count(scope, "bytes_per_host", float64(b.BytesPerHost), float64(c.BytesPerHost))
			count(scope, "npfs", float64(b.NPFs), float64(c.NPFs))
			count(scope, "evictions", float64(b.Evictions), float64(c.Evictions))
			tnBase := make(map[string]*scaleoutTenantRow, len(b.Tenants))
			for j := range b.Tenants {
				tnBase[b.Tenants[j].Tenant] = &b.Tenants[j]
			}
			for j := range c.Tenants {
				ct := &c.Tenants[j]
				tscope := scope + "/" + ct.Tenant
				bt, ok := tnBase[ct.Tenant]
				if !ok {
					fail(row{scope: tscope, metric: "presence", base: "-", cur: "present",
						delta: "new", note: "tenant not in baseline"})
					continue
				}
				exact(tscope, "ops", bt.Ops, ct.Ops, "tenant completed-op drift")
				exact(tscope, "lost", bt.Lost, ct.Lost, "lost-op drift")
				count(tscope, "p99_us", bt.P99Us, ct.P99Us)
			}
		}
	}

	if len(cur.Scaling) > 0 {
		scBase := make(map[string]*scalingRow, len(base.Scaling))
		for i := range base.Scaling {
			scBase[base.Scaling[i].Name] = &base.Scaling[i]
		}
		for i := range cur.Scaling {
			c := &cur.Scaling[i]
			scope := "scale/" + c.Name
			b, ok := scBase[c.Name]
			if !ok {
				fail(row{scope: scope, metric: "presence", base: "-", cur: "present",
					delta: "new", note: "scaling row not in baseline"})
				continue
			}
			// Thread budgets must not change what is simulated.
			r := row{scope: scope, metric: "events",
				base: fmt.Sprint(b.Events), cur: fmt.Sprint(c.Events),
				delta: fmtDelta(relDelta(float64(b.Events), float64(c.Events)))}
			if c.Events != b.Events {
				r.note = "event-count drift (deterministic given seed)"
				fail(r)
			} else {
				rows = append(rows, r)
			}
			timing(scope, "engines1_wall_ms", b.Wall1Ms, c.Wall1Ms)
			timing(scope, "engines8_wall_ms", b.Wall8Ms, c.Wall8Ms)
			timing(scope, "speedup", b.Speedup, c.Speedup)
		}
	}

	if cur.Series != nil {
		r := row{scope: "series", metric: "digest", cur: cur.Series.Digest, base: "-"}
		if base.Series != nil {
			r.base = base.Series.Digest
			if base.Series.Digest != cur.Series.Digest {
				// Digests legitimately change whenever any instrumented
				// subsystem changes behaviour; flag, don't fail.
				r.v = vWarn
				r.note = "series changed (informational)"
			}
		} else {
			r.note = "baseline has no series"
		}
		rows = append(rows, r)
	}
	return rows, pass
}

// writeTable renders the delta table with aligned columns.
func writeTable(w io.Writer, rows []row) {
	fmt.Fprintf(w, "%-10s %-16s %16s %16s %8s  %-4s %s\n",
		"scope", "metric", "baseline", "current", "delta", "", "")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-16s %16s %16s %8s  %-4s %s\n",
			r.scope, r.metric, r.base, r.cur, r.delta, r.v, r.note)
	}
}

// render loads a -series CSV and prints each section as sparklines.
func render(path string, width int) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "npfstat: %v\n", err)
		return 2
	}
	defer f.Close()
	set, err := trace.ReadSeriesSet(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "npfstat: %v\n", err)
		return 2
	}
	if len(set) == 0 {
		fmt.Fprintf(os.Stderr, "npfstat: %s: no series sections\n", path)
		return 2
	}
	for i, s := range set {
		if len(s.Times) == 0 {
			continue
		}
		fmt.Printf("-- section %d/%d --\n", i+1, len(set))
		s.WriteSparklines(os.Stdout, width)
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("npfstat", flag.ContinueOnError)
	renderPath := fs.String("render", "", "render a -series CSV as terminal sparklines")
	width := fs.Int("width", 60, "sparkline width for -render")
	baseline := fs.String("baseline", "", "baseline -json artifact to diff against")
	countTol := fs.Float64("count-tol", 0.05, "hard-fail threshold on relative KV-ablation metric deltas (engines/events gate exactly)")
	timingTol := fs.Float64("timing-tol", 0.5, "warn threshold on relative wall-clock deltas")
	failOnTiming := fs.Bool("fail-on-timing", false, "treat timing warnings as failures")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *renderPath != "" {
		return render(*renderPath, *width)
	}

	var basePath, curPath string
	switch rest := fs.Args(); {
	case *baseline != "" && len(rest) == 1:
		basePath, curPath = *baseline, rest[0]
	case *baseline == "" && len(rest) == 2:
		basePath, curPath = rest[0], rest[1]
	default:
		fmt.Fprintln(os.Stderr, "usage: npfstat [-render series.csv] | [-baseline base.json] cur.json | base.json cur.json")
		return 2
	}

	base, err := readArtifact(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "npfstat: %v\n", err)
		return 2
	}
	cur, err := readArtifact(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "npfstat: %v\n", err)
		return 2
	}

	rows, pass := diff(base, cur, diffConfig{
		countTol: *countTol, timingTol: *timingTol, failOnTiming: *failOnTiming,
	})
	fmt.Printf("npfstat: %s (baseline) vs %s\n", basePath, curPath)
	writeTable(os.Stdout, rows)
	if !pass {
		fmt.Println("verdict: FAIL")
		return 1
	}
	fmt.Println("verdict: PASS")
	return 0
}
