package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkArtifact(events uint64, engines int, wall float64, allocs int64) *artifact {
	a := &artifact{}
	a.EngineBench.NsPerOp = 14
	a.EngineBench.AllocsPerOp = allocs
	a.Experiments = []expRow{{
		Name: "fig3", WallMs: wall, Engines: engines, Events: events, EventsPerSec: 1e6,
	}}
	return a
}

var defCfg = diffConfig{countTol: 0.05, timingTol: 0.5}

func TestDiffPassesOnIdenticalRuns(t *testing.T) {
	base := mkArtifact(1000, 3, 50, 0)
	cur := mkArtifact(1000, 3, 50, 0)
	rows, pass := diff(base, cur, defCfg)
	if !pass {
		t.Fatalf("identical runs fail:\n%+v", rows)
	}
	for _, r := range rows {
		if r.v != vOK {
			t.Fatalf("row %s/%s verdict %v, want ok", r.scope, r.metric, r.v)
		}
	}
}

func TestDiffHardFailures(t *testing.T) {
	base := mkArtifact(1000, 3, 50, 0)
	for name, cur := range map[string]*artifact{
		"event drift":      mkArtifact(1100, 3, 50, 0),
		"engine mismatch":  mkArtifact(1000, 4, 50, 0),
		"alloc regression": mkArtifact(1000, 3, 50, 2),
	} {
		if _, pass := diff(base, cur, defCfg); pass {
			t.Fatalf("%s: expected hard failure", name)
		}
	}
	// Unknown experiment: structural drift.
	cur := mkArtifact(1000, 3, 50, 0)
	cur.Experiments[0].Name = "fig99"
	if _, pass := diff(base, cur, defCfg); pass {
		t.Fatal("unknown experiment passed the gate")
	}
}

func TestDiffTimingOnlyWarns(t *testing.T) {
	base := mkArtifact(1000, 3, 50, 0)
	cur := mkArtifact(1000, 3, 500, 0) // 10x wall clock: noisy machine
	rows, pass := diff(base, cur, defCfg)
	if !pass {
		t.Fatal("timing delta hard-failed without -fail-on-timing")
	}
	warned := false
	for _, r := range rows {
		if r.metric == "wall_ms" && r.v == vWarn {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no timing warning emitted:\n%+v", rows)
	}
	if _, pass := diff(base, cur, diffConfig{countTol: 0.05, timingTol: 0.5, failOnTiming: true}); pass {
		t.Fatal("-fail-on-timing did not promote the warning")
	}
}

func TestDiffEventsGateExactly(t *testing.T) {
	// Event counts are a pure function of the seed — conservation across
	// -parallel and -engines values is part of the determinism contract —
	// so even a single-event delta is a hard failure, count-tol or not.
	base := mkArtifact(1000, 3, 50, 0)
	cur := mkArtifact(1001, 3, 50, 0)
	if _, pass := diff(base, cur, defCfg); pass {
		t.Fatal("one-event drift passed the gate")
	}
	if _, pass := diff(base, cur, diffConfig{countTol: 0.9, timingTol: 0.5}); pass {
		t.Fatal("count-tol loosened the exact events gate")
	}
}

func mkScaleArtifact(events uint64, w1, w8 float64) *artifact {
	a := mkArtifact(1000, 3, 50, 0)
	a.Scaling = []scalingRow{{
		Name: "fig4a", Wall1Ms: w1, Wall8Ms: w8, Speedup: w1 / w8, Events: events,
	}}
	return a
}

func TestDiffScalingGate(t *testing.T) {
	base := mkScaleArtifact(5_000_000, 8000, 2000)
	if _, pass := diff(base, mkScaleArtifact(5_000_000, 8000, 2000), defCfg); !pass {
		t.Fatal("identical scaling rows failed the gate")
	}
	// Wall clock and speedup are machine-load noise: warn only.
	rows, pass := diff(base, mkScaleArtifact(5_000_000, 16000, 2000), defCfg)
	if !pass {
		t.Fatal("scaling wall-clock delta hard-failed")
	}
	warned := false
	for _, r := range rows {
		if r.scope == "scale/fig4a" && r.v == vWarn {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no scaling timing warning emitted:\n%+v", rows)
	}
	// The event count is the same simulation at two thread budgets: exact.
	if _, pass := diff(base, mkScaleArtifact(5_000_001, 8000, 2000), defCfg); pass {
		t.Fatal("scaling event drift passed the gate")
	}
	// A scaling row the baseline has never seen is structural drift.
	cur := mkScaleArtifact(5_000_000, 8000, 2000)
	cur.Scaling[0].Name = "table9"
	if _, pass := diff(base, cur, defCfg); pass {
		t.Fatal("unknown scaling row passed the gate")
	}
}

func mkKVArtifact(ops int, npfs, evicts, failovers uint64) *artifact {
	a := mkArtifact(1000, 3, 50, 0)
	a.KV = []kvRow{{
		Policy: "odp", Ops: ops, P99Us: 7000,
		NPFs: npfs, Evictions: evicts, Failovers: failovers,
	}}
	return a
}

func TestDiffKVGate(t *testing.T) {
	base := mkKVArtifact(1200, 1300, 2000, 0)
	if _, pass := diff(base, mkKVArtifact(1200, 1300, 2000, 0), defCfg); !pass {
		t.Fatal("identical KV rows failed the gate")
	}
	// In-tolerance count drift passes; ops drift never does.
	if _, pass := diff(base, mkKVArtifact(1200, 1330, 2040, 0), defCfg); !pass {
		t.Fatal("in-tolerance KV count drift failed the gate")
	}
	for name, cur := range map[string]*artifact{
		"lost ops":           mkKVArtifact(1199, 1300, 2000, 0),
		"npf drift":          mkKVArtifact(1200, 2600, 2000, 0),
		"eviction drift":     mkKVArtifact(1200, 1300, 100, 0),
		"spurious failovers": mkKVArtifact(1200, 1300, 2000, 3),
	} {
		if _, pass := diff(base, cur, defCfg); pass {
			t.Fatalf("%s: expected hard failure", name)
		}
	}
	// A policy the baseline has never seen is structural drift.
	cur := mkKVArtifact(1200, 1300, 2000, 0)
	cur.KV[0].Policy = "mystery"
	if _, pass := diff(base, cur, defCfg); pass {
		t.Fatal("unknown KV policy passed the gate")
	}
	// A baseline without a KV section gates nothing but also hides nothing:
	// every current row is "not in baseline".
	if _, pass := diff(mkArtifact(1000, 3, 50, 0), cur, defCfg); pass {
		t.Fatal("KV rows passed against a KV-less baseline")
	}
}

func mkAnatomyArtifact(faults, pending int, p99 float64, stage string) *artifact {
	a := mkArtifact(1000, 3, 50, 0)
	a.FaultAnatomy = []anatomyRow{{
		Policy: "odp", Faults: faults, Pending: pending, NPFs: 1300,
		TotalP50Us: 250, TotalP99Us: p99,
		CritStage: stage, CritLayer: "hw", CritHost: 2, CritShare: 0.9,
	}}
	return a
}

func TestDiffAnatomyGate(t *testing.T) {
	base := mkAnatomyArtifact(1300, 2, 7000, "fault-report")
	if _, pass := diff(base, mkAnatomyArtifact(1300, 2, 7000, "fault-report"), defCfg); !pass {
		t.Fatal("identical anatomy rows failed the gate")
	}
	// Percentiles drift within -count-tol; fault accounting never does.
	if _, pass := diff(base, mkAnatomyArtifact(1300, 2, 7200, "fault-report"), defCfg); !pass {
		t.Fatal("in-tolerance anatomy p99 drift failed the gate")
	}
	for name, cur := range map[string]*artifact{
		"fault-count drift": mkAnatomyArtifact(1299, 2, 7000, "fault-report"),
		"leaked pending":    mkAnatomyArtifact(1300, 3, 7000, "fault-report"),
		"p99 blowup":        mkAnatomyArtifact(1300, 2, 14000, "fault-report"),
		"crit-path shift":   mkAnatomyArtifact(1300, 2, 7000, "driver"),
	} {
		if _, pass := diff(base, cur, defCfg); pass {
			t.Fatalf("%s: expected hard failure", name)
		}
	}
	// Dropped telemetry warns but does not fail.
	cur := mkAnatomyArtifact(1300, 2, 7000, "fault-report")
	cur.FaultAnatomy[0].DroppedEvents = 5
	cur.TraceDrops = &traceDrops{Tracers: 2, FaultEvents: 5}
	rows, pass := diff(base, cur, defCfg)
	if !pass {
		t.Fatal("dropped-telemetry warning hard-failed the gate")
	}
	warns := 0
	for _, r := range rows {
		if r.v == vWarn && r.metric == "dropped" {
			warns++
		}
	}
	if warns != 2 {
		t.Fatalf("got %d dropped-telemetry warnings, want 2 (row + summary):\n%+v", warns, rows)
	}
}

func TestRelDelta(t *testing.T) {
	if d := relDelta(100, 110); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("relDelta = %v, want 0.1", d)
	}
	if d := relDelta(0, 0); d != 0 {
		t.Fatalf("relDelta(0,0) = %v, want 0", d)
	}
	if d := relDelta(0, 5); !math.IsInf(d, 1) {
		t.Fatalf("relDelta(0,5) = %v, want +Inf", d)
	}
}

func TestWriteTableAligned(t *testing.T) {
	var b bytes.Buffer
	writeTable(&b, []row{{scope: "fig3", metric: "events", base: "10", cur: "10", delta: "+0.0%", v: vOK}})
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "scope") {
		t.Fatalf("table shape:\n%s", b.String())
	}
}

// TestRunEndToEnd drives the CLI surface: diff two artifact files on disk
// and check the exit codes.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := `{"engine_bench":{"ns_per_op":14,"allocs_per_op":0},"experiments":[{"name":"fig3","wall_ms":50,"engines":3,"events":1000,"events_per_sec":1e6}]}`
	drifted := `{"engine_bench":{"ns_per_op":14,"allocs_per_op":0},"experiments":[{"name":"fig3","wall_ms":50,"engines":3,"events":2000,"events_per_sec":1e6}]}`
	base := write("base.json", good)
	same := write("same.json", good)
	bad := write("bad.json", drifted)

	if code := run([]string{base, same}); code != 0 {
		t.Fatalf("identical diff exit = %d, want 0", code)
	}
	if code := run([]string{"-baseline", base, same}); code != 0 {
		t.Fatalf("-baseline spelling exit = %d, want 0", code)
	}
	if code := run([]string{base, bad}); code != 1 {
		t.Fatalf("drifted diff exit = %d, want 1", code)
	}
	if code := run([]string{base}); code != 2 {
		t.Fatalf("usage error exit = %d, want 2", code)
	}
	if code := run([]string{base, write("empty.json", `{}`)}); code != 2 {
		t.Fatalf("malformed artifact exit = %d, want 2", code)
	}

	series := write("series.csv", "# series interval_ns=1000 samples=2 metrics=1\ntime_us,m.a\n0,1\n1,2\n")
	if code := run([]string{"-render", series}); code != 0 {
		t.Fatalf("render exit = %d, want 0", code)
	}
	if code := run([]string{"-render", filepath.Join(dir, "missing.csv")}); code != 2 {
		t.Fatalf("render missing-file exit = %d, want 2", code)
	}
}
