// Command npftrace runs small, seeded NPF scenarios with tracing enabled
// and prints what the telemetry subsystem recorded: the span tree, the
// slowest NPFs, a per-stage latency breakdown (the span-derived equivalent
// of the paper's Figure 3a), and the metrics snapshot.
//
// Scenarios:
//
//	single   one cold receive on an IB QP → a single recv-side rNPF
//	fig3     repeated minor rNPFs (Figure 3a conditions, 4KB messages)
//	backup   TCP into a cold 16-entry server ring under the backup-ring
//	         policy (§5) — park/replay spans plus TCP retransmissions
//
// Flags:
//
//	-scenario  which scenario to run (default "single")
//	-seed      engine seed (default 7)
//	-trials    NPF count for fig3 (default 50)
//	-k         how many slowest NPFs to list (default 5)
//	-size      message bytes for single/fig3 (default 4096)
//	-o         also write a Chrome trace_event JSON (Perfetto-loadable)
//
// Subcommands (the causal fault profiler; see internal/trace/fault.go):
//
//	npftrace anatomy  [-quick] [-parallel N] [-engines N] [-json]
//	    the per-stage NPF latency breakdown per registration policy,
//	    from the distributed-KV deployment under reclaim waves
//	npftrace critpath [-quick] [-parallel N] [-engines N] [-json]
//	    only the critical-path extraction for the p99 tail
//
// Both renderings contain no wall-clock time and are byte-identical for
// every -parallel and -engines value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"npf/internal/apps"
	"npf/internal/bench"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/trace"
)

func main() {
	if len(os.Args) > 1 && (os.Args[1] == "anatomy" || os.Args[1] == "critpath") {
		os.Exit(runAnatomyCmd(os.Args[1], os.Args[2:]))
	}
	scenario := flag.String("scenario", "single", "scenario: single, fig3, backup")
	seed := flag.Int64("seed", 7, "engine seed")
	trials := flag.Int("trials", 50, "NPF count for the fig3 scenario")
	topK := flag.Int("k", 5, "how many slowest NPFs to list")
	size := flag.Int("size", 4096, "message bytes for single/fig3")
	out := flag.String("o", "", "write Chrome trace JSON to this file")
	flag.Parse()

	var tr *trace.Tracer
	switch *scenario {
	case "single":
		tr = runIB(*seed, 1, *size)
	case "fig3":
		tr = runIB(*seed, *trials, *size)
	case "backup":
		tr = runBackup(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	spans := tr.Spans()
	if *scenario == "single" {
		fmt.Println("== span tree ==")
		trace.WriteTree(os.Stdout, spans)
		fmt.Println()
	}

	fmt.Printf("== top %d slowest NPFs ==\n", *topK)
	for _, r := range trace.TopSlowest(spans, "npf", *topK) {
		fmt.Printf("  #%-6d %-14s %8.1fus  @%.1fus\n",
			r.Span.ID, r.Span.Name, r.Dur.Micros(), r.Span.Start.Micros())
	}
	fmt.Println()

	stages := trace.StageBreakdown(spans, "npf")
	fmt.Println("== NPF stage breakdown (µs, span-derived Fig. 3a) ==")
	trace.WriteStageTable(os.Stdout, stages)
	fmt.Printf("hardware share (firmware+update+resume): %.1f%%  (paper: ~90%% at 4KB)\n\n",
		trace.HardwareShare(stages)*100)

	fmt.Println("== metrics ==")
	fmt.Print(tr.MetricsSnapshot())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "npftrace: %v\n", err)
			os.Exit(1)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "npftrace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "npftrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d spans to %s\n", tr.SpanCount(), *out)
	}
}

// runAnatomyCmd runs the fault-anatomy profiler (bench.RunAnatomy) and
// renders it as text or JSON. The -parallel/-engines knobs mirror
// npfbench's: they change only wall-clock time, never a byte of output.
func runAnatomyCmd(cmd string, args []string) int {
	fs := flag.NewFlagSet("npftrace "+cmd, flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced op count")
	parallel := fs.Int("parallel", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	engines := fs.Int("engines", 0, "PDES engine budget (0 = single-engine jobs)")
	jsonOut := fs.Bool("json", false, "emit the fault_anatomy rows as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	bench.Workers = *parallel
	bench.Engines = *engines
	r := bench.RunAnatomy(*quick)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.Rows()); err != nil {
			fmt.Fprintf(os.Stderr, "npftrace: %v\n", err)
			return 1
		}
		return 0
	}
	if cmd == "critpath" {
		fmt.Print(r.RenderCritPath())
	} else {
		fmt.Print(r.Render())
	}
	return 0
}

// runIB reproduces the Figure 3a conditions: a warm sender posting
// size-byte messages into cold receive buffers, each receive raising a
// minor rNPF on the responder.
func runIB(seed int64, trials, size int) *trace.Tracer {
	e := bench.NewIBEnv(bench.IBOpts{Seed: seed, Trace: true})
	pages := (size + mem.PageSize - 1) / mem.PageSize
	bench.Warm(e.QPA, 0, pages*2)
	const window = 8
	done := 0
	var runTrial func()
	runTrial = func() {
		if done >= trials {
			e.Eng.Stop()
			return
		}
		base := mem.VAddr(done%window*pages) * mem.PageSize
		e.QPB.PostRecv(rc.RecvWQE{ID: int64(done), Addr: base, Len: size})
		e.QPA.PostSend(rc.SendWQE{ID: int64(done), Laddr: 0, Len: size})
	}
	e.QPB.OnRecv = func(rc.RecvCompletion) {
		base := mem.PageNum(done % window * pages)
		e.ASB.DiscardPages(base, pages)
		done++
		runTrial()
	}
	runTrial()
	e.Eng.Run()
	return e.Tracer
}

// runBackup drives TCP traffic into a cold 16-entry server ring under the
// backup-ring policy: faulting packets are parked and replayed, so the
// trace shows rx-backup roots with long "parked" stages alongside the TCP
// sender's retransmission episodes.
func runBackup(seed int64) *trace.Tracer {
	e := bench.NewEthEnv(bench.EthOpts{Seed: seed, Policy: nic.PolicyBackup, RingSize: 16, Trace: true})
	store := apps.NewKVStore(e.Server.AS, 0)
	apps.NewKVServer(e.Server.Stack, store, 50*sim.Microsecond)
	slap := apps.NewMemaslap(e.Client.Stack, apps.MemaslapConfig{
		Conns: 4, GetRatio: 0.9, ValueSize: 1024, Keys: 200,
		KeyPrefix: "k", Prepopulate: true,
	}, sim.Second)
	slap.Start(e.Server.Chan.Dev.Node, e.Server.Chan.Flow)
	e.Eng.RunUntil(2 * sim.Second)
	return e.Tracer
}
