// Command npflint runs the repo's determinism-contract analyzers (see
// internal/analysis) over Go packages and exits non-zero if any contract
// is violated.
//
// Usage:
//
//	go run ./cmd/npflint [-json] [packages]
//
// With no package patterns it checks ./... . -json emits machine-readable
// diagnostics on stdout:
//
//	{"diagnostics":[{"analyzer":"detwall","pos":"file.go:12:7","message":"..."}]}
//
// Exit status: 0 on a clean tree, 1 when diagnostics were reported, 2 on
// loading/internal errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"npf/internal/analysis/driver"
	"npf/internal/analysis/npflint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: npflint [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range npflint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, firstLine(a.Doc))
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, _ := os.Getwd()
	pkgs, err := driver.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "npflint: %v\n", err)
		os.Exit(2)
	}
	diags, err := driver.Run(pkgs, npflint.Analyzers(), cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "npflint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		doc := struct {
			Diagnostics []driver.Diagnostic `json:"diagnostics"`
		}{Diagnostics: diags}
		if doc.Diagnostics == nil {
			doc.Diagnostics = []driver.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "npflint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
