// Command npfbench regenerates the paper's evaluation tables and figures on
// the simulated stack. Run with no arguments for the full suite, or name
// specific experiments:
//
//	npfbench fig3 table4 fig4a fig4b table5 fig7 fig8a fig8b fig9 table6 fig10 ablate loc kv
//
// The extra "scale" experiment (not in the default set) times fig4a and
// table5 as partitioned PDES runs at engine-thread budgets 1 and 8 and
// records the speedup in the -json artifact's "scaling" section.
//
// The extra "anatomy" experiment (not in the default set) runs the fault
// profiler: the distributed-KV deployment per registration policy with the
// causal fault recorder always on, landing the per-policy anatomy rows in
// the -json artifact's "fault_anatomy" section (also rendered standalone by
// `npftrace anatomy`). When any tracers were built (-trace/-series), the
// artifact additionally carries a "trace_drops" section summing dropped
// spans and flight-recorder events/records; npfstat warns when nonzero.
//
// The extra "scaleout" experiment (also not in the default set) runs the
// million-user cluster sweep — 1,008 hosts and 101,000 logical clients per
// transport on one fixed 8-partition group — and records the fleet shape,
// per-tenant tails, bytes-per-host, and the run fingerprint in the -json
// artifact's "scale_out" section. The partition count is fixed by the
// fleet, so the section is byte-identical for every -engines and -parallel
// value; -quick shrinks the fleet for smokes.
//
// Flags:
//
//	-quick      smaller trial counts / shorter runs (CI-friendly)
//	-kv         append the distributed-KV registration ablation (the "kv"
//	            experiment) to the selected set
//	-scaleout   append the million-user cluster sweep (the "scaleout"
//	            experiment) to the selected set
//	-root       repository root for the loc experiment (default ".")
//	-parallel   fan independent sweep jobs across N worker goroutines
//	            (0 = one per CPU); results are byte-identical to -parallel 1
//	-engines    partitioned PDES mode: build every env as a multi-engine
//	            sim.Group (one engine per host side, conservative lookahead
//	            sync) with a total worker-thread budget of N; results are
//	            byte-identical for every N >= 1 (0 = historical
//	            single-engine mode). Applies to -chaos scenarios too.
//	-json       write a machine-readable BENCH_results.json-style artifact
//	            (wall clock, simulated events/sec, engine microbenchmark)
//	-trace      write a Chrome trace_event JSON (load in Perfetto /
//	            about:tracing) covering every engine the selected
//	            experiments build
//	-series     write deterministic metric time-series CSV sampled on the
//	            virtual clock (one section per engine, content-sorted so
//	            the file is byte-identical for any -parallel N); render
//	            with `npfstat -render FILE`
//	-sample-every  sampling interval in virtual time for -series
//	            (default 10ms)
//	-chaos      run a named fault-injection scenario instead of the paper
//	            experiments ("all" runs the whole catalogue; "list" prints
//	            it); exits non-zero if any invariant fails
//	-seed       RNG seed for -chaos runs (default 1)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"npf/internal/bench"
	"npf/internal/chaos"
	"npf/internal/sim"
	"npf/internal/trace"
)

// runChaos runs one named chaos scenario (or all of them) and returns the
// process exit code: 0 when every invariant held, 1 otherwise.
func runChaos(name string, seed int64) int {
	if name == "list" {
		for _, s := range chaos.Scenarios() {
			fmt.Printf("  %-24s %s\n", s.Name, s.Desc)
		}
		return 0
	}
	var names []string
	if name == "all" {
		for _, s := range chaos.Scenarios() {
			names = append(names, s.Name)
		}
	} else {
		names = []string{name}
	}
	code := 0
	for _, n := range names {
		start := time.Now()
		rep, err := chaos.RunScenario(n, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			return 2
		}
		fmt.Printf("==== chaos %s (wall %v) ====\n%s\n",
			n, time.Since(start).Round(time.Millisecond), rep.Render())
		if !rep.Pass {
			code = 1
		}
	}
	return code
}

// expResult is one experiment's row in the -json artifact.
type expResult struct {
	Name         string  `json:"name"`
	WallMs       float64 `json:"wall_ms"`
	Engines      int     `json:"engines"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// seriesSummary condenses the -series capture into the -json artifact: the
// digest is the order-invariant fold of every engine's series digest, so
// two runs of the same seed must agree on it for any -parallel N.
type seriesSummary struct {
	Engines    int    `json:"engines"`
	Samples    int    `json:"samples"`
	Metrics    int    `json:"metrics"`
	IntervalNs int64  `json:"interval_ns"`
	Digest     string `json:"digest"`
}

// kvRow is one registration policy's row of the KV ablation in the -json
// artifact. Every field is virtual-time-deterministic given the seed, so
// npfstat hard-gates them like event counts.
type kvRow struct {
	Policy    string  `json:"policy"`
	Ops       int     `json:"ops"`
	P99Us     float64 `json:"p99_us"`
	NPFs      uint64  `json:"npfs"`
	Evictions uint64  `json:"evictions"`
	Shed      uint64  `json:"shed"`
	Failovers uint64  `json:"failovers"`
}

// scaleoutTenantRow is one tenant of one scale-out fleet in the -json
// artifact: the registration-policy spectrum as fleet-wide tail latency.
type scaleoutTenantRow struct {
	Tenant   string  `json:"tenant"`
	Reg      string  `json:"reg"`
	Clients  int     `json:"clients"`
	Ops      uint64  `json:"ops"`
	Timeouts uint64  `json:"timeouts"`
	Lost     uint64  `json:"lost"`
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
}

// scaleoutRow is one transport's cluster-sweep fleet in the -json artifact.
// Hosts, clients, ops, and the fingerprint are exact gates in npfstat (the
// fingerprint folds every tail percentile, so it is the byte-identity
// check across engine budgets); bytes_per_host is the cheap-per-host-state
// gate, held within -count-tol.
type scaleoutRow struct {
	Transport    string              `json:"transport"`
	Hosts        int                 `json:"hosts"`
	Clients      int                 `json:"clients"`
	Ops          uint64              `json:"ops"`
	NPFs         uint64              `json:"npfs"`
	Evictions    uint64              `json:"evictions"`
	DropsFault   uint64              `json:"drops_fault"`
	BytesPerHost int64               `json:"bytes_per_host"`
	Fingerprint  string              `json:"fingerprint"`
	Tenants      []scaleoutTenantRow `json:"tenants"`
}

// scaleoutRows flattens the cluster sweep into artifact rows.
func scaleoutRows(r *bench.ScaleoutResult) []scaleoutRow {
	rows := make([]scaleoutRow, len(r.Results))
	for i, res := range r.Results {
		row := scaleoutRow{
			Transport:    res.Transport,
			Hosts:        res.Hosts,
			Clients:      res.Clients,
			Ops:          res.Ops,
			NPFs:         res.NPFs,
			Evictions:    res.Evictions,
			DropsFault:   res.DropsFault,
			BytesPerHost: res.BytesPerHost,
			Fingerprint:  fmt.Sprintf("%016x", res.Fingerprint),
		}
		for _, tn := range res.Tenants {
			row.Tenants = append(row.Tenants, scaleoutTenantRow{
				Tenant:   tn.Tenant,
				Reg:      tn.Reg,
				Clients:  tn.Clients,
				Ops:      tn.Ops,
				Timeouts: tn.Timeouts,
				Lost:     tn.Lost,
				P50Us:    tn.P50us,
				P99Us:    tn.P99us,
			})
		}
		rows[i] = row
	}
	return rows
}

// scalingRow is one experiment's PDES speedup record in the -json artifact
// (the "scale" pseudo-experiment): the same partitioned run timed under a
// 1-thread and an 8-thread engine budget. The partition structure is fixed
// by the env shape, not the budget, so the event count must agree exactly
// between the two runs — only wall clock may differ.
type scalingRow struct {
	Name    string  `json:"name"`
	Wall1Ms float64 `json:"engines1_wall_ms"`
	Wall8Ms float64 `json:"engines8_wall_ms"`
	Speedup float64 `json:"speedup"`
	Events  uint64  `json:"events"`
}

// traceDrops summarises telemetry loss across every tracer the run built:
// spans dropped at MaxSpans plus fault lifecycle events/records dropped at
// the flight-recorder bounds. Nonzero values mean the capture was partial
// (npfstat warns on them); they never affect the simulation itself.
type traceDrops struct {
	Tracers        int    `json:"tracers"`
	Spans          uint64 `json:"dropped_spans"`
	FaultEvents    uint64 `json:"dropped_fault_events"`
	FaultRecords   uint64 `json:"dropped_fault_records"`
	PendingFaults  int    `json:"pending_faults"`
	CompletedFault int    `json:"completed_faults"`
}

// benchArtifact is the top-level -json document.
type benchArtifact struct {
	GoVersion    string                  `json:"go_version"`
	GOMAXPROCS   int                     `json:"gomaxprocs"`
	Parallel     int                     `json:"parallel"`
	Engines      int                     `json:"engines"`
	Quick        bool                    `json:"quick"`
	EngineBench  bench.EngineBenchResult `json:"engine_bench"`
	Series       *seriesSummary          `json:"series,omitempty"`
	KV           []kvRow                 `json:"kv,omitempty"`
	FaultAnatomy []bench.AnatomyRow      `json:"fault_anatomy,omitempty"`
	ScaleOut     []scaleoutRow           `json:"scale_out,omitempty"`
	Scaling      []scalingRow            `json:"scaling,omitempty"`
	TraceDrops   *traceDrops             `json:"trace_drops,omitempty"`
	Experiments  []expResult             `json:"experiments"`
}

// runScale times fig4a and table5 as partitioned PDES runs at engine-thread
// budgets 1 and 8, hard-failing if the event counts differ (they are the
// same simulation; the budget may only change wall clock). The rows land in
// the artifact's "scaling" section.
func runScale(quick bool) ([]scalingRow, string) {
	dur := 80 * sim.Second
	if quick {
		dur = 30 * sim.Second
	}
	exps := []struct {
		name string
		run  func()
	}{
		{"fig4a", func() { bench.RunFig4a(dur) }},
		{"table5", func() { bench.RunTable5() }},
	}
	saved := bench.Engines
	defer func() { bench.Engines = saved }()
	var rows []scalingRow
	var b strings.Builder
	b.WriteString("PDES scaling: identical partitioned run, engine-thread budget 1 vs 8\n")
	if procs := runtime.GOMAXPROCS(0); procs < 8 {
		fmt.Fprintf(&b, "  (host has %d usable CPU(s): the budget-8 run timeshares, so the\n"+
			"   ratio measures scheduling overhead, not parallel speedup)\n", procs)
	}
	for _, ex := range exps {
		row := scalingRow{Name: ex.name}
		for _, n := range []int{1, 8} {
			bench.Engines = n
			bench.StartEngineStats()
			start := time.Now()
			ex.run()
			wall := float64(time.Since(start).Microseconds()) / 1000
			_, events := bench.StopEngineStats()
			if n == 1 {
				row.Wall1Ms, row.Events = wall, events
			} else {
				row.Wall8Ms = wall
				if events != row.Events {
					fmt.Fprintf(os.Stderr,
						"scale: %s event count diverged across thread budgets: %d vs %d\n",
						ex.name, row.Events, events)
					os.Exit(1)
				}
			}
		}
		if row.Wall8Ms > 0 {
			row.Speedup = row.Wall1Ms / row.Wall8Ms
		}
		rows = append(rows, row)
		fmt.Fprintf(&b, "  %-8s %9.0f ms -> %7.0f ms   %.2fx   (%d events, identical)\n",
			ex.name, row.Wall1Ms, row.Wall8Ms, row.Speedup, row.Events)
	}
	return rows, b.String()
}

// kvRows flattens the KV ablation result into artifact rows.
func kvRows(r *bench.KVResult) []kvRow {
	rows := make([]kvRow, len(r.Policies))
	for i, pol := range r.Policies {
		rows[i] = kvRow{
			Policy:    pol.String(),
			Ops:       r.Ops[i],
			P99Us:     r.P99Us[i],
			NPFs:      r.NPFs[i],
			Evictions: r.Evicts[i],
			Shed:      r.Shed[i],
			Failovers: r.Failover[i],
		}
	}
	return rows
}

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	kvExp := flag.Bool("kv", false, "append the distributed-KV ablation to the selected experiments")
	scaleoutExp := flag.Bool("scaleout", false, "append the million-user cluster sweep (the \"scaleout\" experiment) to the selected experiments")
	root := flag.String("root", ".", "repository root (for the loc experiment)")
	parallel := flag.Int("parallel", 1, "sweep worker goroutines (0 = one per CPU)")
	engines := flag.Int("engines", 0, "partitioned PDES engine-thread budget (0 = single-engine mode)")
	jsonOut := flag.String("json", "", "write machine-readable results to this file")
	traceOut := flag.String("trace", "", "write Chrome trace JSON to this file")
	seriesOut := flag.String("series", "", "write sampled metric time-series CSV to this file")
	sampleEvery := flag.Duration("sample-every", 10*time.Millisecond, "virtual-time sampling interval for -series")
	chaosName := flag.String("chaos", "", "run a fault-injection scenario (name, \"all\", or \"list\")")
	seed := flag.Int64("seed", 1, "RNG seed for -chaos runs")
	flag.Parse()

	if *seriesOut != "" && *sampleEvery <= 0 {
		fmt.Fprintln(os.Stderr, "-sample-every must be positive")
		os.Exit(2)
	}

	if *engines < 0 {
		fmt.Fprintln(os.Stderr, "-engines must be >= 0")
		os.Exit(2)
	}
	chaos.Engines = *engines

	if *chaosName != "" {
		os.Exit(runChaos(*chaosName, *seed))
	}

	if *parallel <= 0 {
		*parallel = bench.DefaultWorkers()
	}
	bench.Workers = *parallel
	bench.Engines = *engines

	var tracers []*trace.Tracer
	if *traceOut != "" || *seriesOut != "" {
		// Engines are built on worker goroutines under -parallel, so the
		// factory must be safe for concurrent calls.
		interval := sim.Duration(*sampleEvery)
		withSeries := *seriesOut != ""
		var mu sync.Mutex
		bench.TraceFactory = func(eng *sim.Engine) *trace.Tracer {
			tr := trace.New(eng)
			if withSeries {
				tr.StartSampler(interval)
			}
			mu.Lock()
			tracers = append(tracers, tr)
			mu.Unlock()
			return tr
		}
	}

	experiments := flag.Args()
	if len(experiments) == 0 {
		experiments = []string{"fig3", "table4", "fig4a", "fig4b", "table5",
			"fig7", "fig8a", "fig8b", "fig9", "table6", "fig10", "ablate", "loc"}
	}
	if *kvExp {
		seen := false
		for _, e := range experiments {
			seen = seen || e == "kv"
		}
		if !seen {
			experiments = append(experiments, "kv")
		}
	}
	if *scaleoutExp {
		seen := false
		for _, e := range experiments {
			seen = seen || e == "scaleout"
		}
		if !seen {
			experiments = append(experiments, "scaleout")
		}
	}

	artifact := &benchArtifact{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Parallel:   *parallel,
		Engines:    *engines,
		Quick:      *quick,
	}

	for _, exp := range experiments {
		start := time.Now()
		bench.StartEngineStats()
		var out string
		switch exp {
		case "fig3":
			trials := 200
			if *quick {
				trials = 30
			}
			out = bench.RunFig3(trials).Render()
		case "table4":
			trials := 5000
			if *quick {
				trials = 500
			}
			out = bench.RunTable4(trials).Render()
		case "fig4a":
			dur := 80 * sim.Second
			if *quick {
				dur = 30 * sim.Second
			}
			out = bench.RunFig4a(dur).Render()
		case "fig4b":
			ops, rings, timeout := 10000, []int(nil), 600*sim.Second
			if *quick {
				ops, rings, timeout = 2000, []int{16, 64, 256, 1024}, 200*sim.Second
			}
			out = bench.RunFig4b(ops, rings, timeout).Render()
		case "table5":
			out = bench.RunTable5().Render()
		case "fig7":
			out = bench.RunFig7().Render()
		case "fig8a":
			out = bench.RunFig8a().Render()
		case "fig8b":
			out = bench.RunFig8b().Render()
		case "fig9":
			ranks, iters := 8, 100
			if *quick {
				ranks, iters = 4, 30
			}
			out = bench.RunFig9(ranks, iters).Render()
		case "table6":
			ranks := 8
			if *quick {
				ranks = 4
			}
			out = bench.RunTable6(ranks).Render()
		case "fig10":
			out = bench.RunFig10().Render()
		case "ablate":
			out = bench.RunAblate().Render()
		case "kv":
			r := bench.RunKV(*quick)
			artifact.KV = kvRows(r)
			out = r.Render()
		case "anatomy":
			r := bench.RunAnatomy(*quick)
			artifact.FaultAnatomy = r.Rows()
			out = r.Render()
		case "scaleout":
			r := bench.RunScaleout(*quick)
			artifact.ScaleOut = scaleoutRows(r)
			out = r.Render()
		case "scale":
			// runScale drives its own engine-stats windows (one per timed
			// run), so the enclosing window reports zero engines/events for
			// the "scale" row itself — deterministically.
			artifact.Scaling, out = runScale(*quick)
		case "loc":
			r, err := bench.RunLOC(*root)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loc: %v\n", err)
				bench.StopEngineStats()
				continue
			}
			out = r.Render()
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", exp)
			os.Exit(2)
		}
		wall := time.Since(start)
		engines, events := bench.StopEngineStats()
		row := expResult{
			Name:    exp,
			WallMs:  float64(wall.Microseconds()) / 1000,
			Engines: engines,
			Events:  events,
		}
		if wall > 0 {
			row.EventsPerSec = float64(events) / wall.Seconds()
		}
		artifact.Experiments = append(artifact.Experiments, row)
		fmt.Printf("==== %s (wall %v) ====\n%s\n", exp, wall.Round(time.Millisecond), out)
	}

	if len(tracers) > 0 {
		td := &traceDrops{Tracers: len(tracers)}
		for _, tr := range tracers {
			td.Spans += tr.DroppedSpans()
			td.FaultEvents += tr.DroppedFaultEvents()
			td.FaultRecords += tr.DroppedFaultRecords()
			td.PendingFaults += tr.PendingFaults()
			td.CompletedFault += tr.FaultRecordCount()
		}
		artifact.TraceDrops = td
		if td.Spans+td.FaultEvents+td.FaultRecords > 0 {
			fmt.Printf("trace drops: %d spans, %d fault events, %d fault records across %d tracers\n",
				td.Spans, td.FaultEvents, td.FaultRecords, td.Tracers)
		}
	}

	if *seriesOut != "" {
		var set []*trace.Series
		for _, tr := range tracers {
			// Engines that finished inside the first interval with no
			// metrics registered produce empty sections; skip them.
			if s := tr.Sampler().Series(); s != nil && len(s.Names) > 0 {
				set = append(set, s)
			}
		}
		f, err := os.Create(*seriesOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "series: %v\n", err)
			os.Exit(1)
		}
		if err := trace.WriteSeriesSet(f, set); err != nil {
			fmt.Fprintf(os.Stderr, "series: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "series: %v\n", err)
			os.Exit(1)
		}
		samples, names := 0, map[string]bool{}
		for _, s := range set {
			samples += len(s.Times)
			for _, n := range s.Names {
				names[n] = true
			}
		}
		artifact.Series = &seriesSummary{
			Engines:    len(set),
			Samples:    samples,
			Metrics:    len(names),
			IntervalNs: int64(sim.Duration(*sampleEvery)),
			Digest:     fmt.Sprintf("%016x", trace.DigestSeries(set)),
		}
		fmt.Printf("series: wrote %d samples across %d engines (%d metrics) to %s\n",
			samples, len(set), len(names), *seriesOut)
	}

	if *jsonOut != "" {
		artifact.EngineBench = bench.EngineMicrobench()
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(artifact); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("json: wrote %d experiment rows to %s (engine bench: %.1f ns/op, %d allocs/op)\n",
			len(artifact.Experiments), *jsonOut,
			artifact.EngineBench.NsPerOp, artifact.EngineBench.AllocsPerOp)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if err := trace.ExportChromeTrace(f, tracers); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		spans := 0
		for _, tr := range tracers {
			spans += tr.SpanCount()
		}
		fmt.Printf("trace: wrote %d spans from %d engines to %s\n", spans, len(tracers), *traceOut)
	}
}
