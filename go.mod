module npf

go 1.22
