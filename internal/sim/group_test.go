package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// runTokenRing drives a 3-partition group: each partition runs a jittered
// local tick load off its own RNG, and a single token hops between
// partitions through the mailbox. The mailbox mutex serializes the hop
// chain, so the shared hop counter is race-free. Returns the per-partition
// logs, total executed work, and each engine's final event count.
func runTokenRing(t *testing.T, threads int, until Time) ([][]string, uint64) {
	t.Helper()
	const lookahead = 2 * Microsecond
	g := NewGroup(42, 3, lookahead)
	logs := make([][]string, 3)
	var seqs [3]uint64

	for p := 0; p < 3; p++ {
		p := p
		e := g.Engine(p)
		var tick func()
		tick = func() {
			logs[p] = append(logs[p], fmt.Sprintf("tick p%d t=%d r=%d", p, e.Now(), e.Rand().Intn(100)))
			if e.Now() < 300*Microsecond {
				e.After(Time(1+e.Rand().Intn(3))*Microsecond, tick)
			}
		}
		e.After(Time(p)*Microsecond, tick)
	}

	hops := 0
	var send func(from, to int)
	send = func(from, to int) {
		at := g.Engine(from).Now().Add(lookahead)
		seqs[from]++
		g.Post(to, at, uint64(from), seqs[from], func() {
			logs[to] = append(logs[to], fmt.Sprintf("mail %d->%d t=%d", from, to, g.Engine(to).Now()))
			hops++
			if hops < 200 {
				send(to, (to+1)%3)
			}
		})
	}
	g.Engine(0).After(0, func() { send(0, 1) })

	g.SetThreads(threads)
	g.RunUntil(until)
	return logs, g.Executed()
}

// TestGroupDeterministicAcrossThreads is the core PDES contract: the same
// partitioned simulation produces identical per-partition event logs and
// identical total work for any worker-thread count.
func TestGroupDeterministicAcrossThreads(t *testing.T) {
	refLogs, refExec := runTokenRing(t, 1, Forever)
	if refExec == 0 {
		t.Fatal("reference run executed nothing")
	}
	for _, threads := range []int{2, 3} {
		logs, exec := runTokenRing(t, threads, Forever)
		if exec != refExec {
			t.Fatalf("threads=%d executed %d, want %d", threads, exec, refExec)
		}
		if !reflect.DeepEqual(logs, refLogs) {
			t.Fatalf("threads=%d produced different logs", threads)
		}
	}
}

// TestGroupFiniteHorizonDeterministic repeats the contract for a bounded
// RunUntil, where every engine must land exactly on the horizon.
func TestGroupFiniteHorizonDeterministic(t *testing.T) {
	const horizon = 150 * Microsecond
	refLogs, refExec := runTokenRing(t, 1, horizon)
	for _, threads := range []int{2, 3} {
		logs, exec := runTokenRing(t, threads, horizon)
		if exec != refExec || !reflect.DeepEqual(logs, refLogs) {
			t.Fatalf("threads=%d diverged under finite horizon", threads)
		}
	}
	g := NewGroup(1, 2, Microsecond)
	g.Engine(0).After(10*Microsecond, func() {})
	if end := g.RunUntil(horizon); end != horizon {
		t.Fatalf("RunUntil returned %v, want %v", end, horizon)
	}
	for i, e := range g.Engines() {
		if e.Now() != horizon {
			t.Fatalf("engine %d at %v after RunUntil, want %v", i, e.Now(), horizon)
		}
	}
}

// TestGroupMailOrdering pins the deterministic drain order: local events
// first at a shared instant, then mail by (at, src, seq).
func TestGroupMailOrdering(t *testing.T) {
	g := NewGroup(7, 2, Microsecond)
	var got []string
	at := 5 * Microsecond
	g.Post(1, at, 9, 2, func() { got = append(got, "src9.seq2") })
	g.Post(1, at, 9, 1, func() { got = append(got, "src9.seq1") })
	g.Post(1, at, 3, 7, func() { got = append(got, "src3.seq7") })
	g.Post(1, at+Microsecond, 1, 1, func() { got = append(got, "late") })
	g.Engine(1).At(at, func() { got = append(got, "local") })
	g.Run()
	want := []string{"local", "src3.seq7", "src9.seq1", "src9.seq2", "late"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("drain order %v, want %v", got, want)
	}
}

// TestGroupStopDeterministic: an engine-level Stop() from inside a grouped
// run shrinks the horizon to stopTime+lookahead-1 identically for every
// thread count, so the executed event set is the same.
func TestGroupStopDeterministic(t *testing.T) {
	const lookahead = 2 * Microsecond
	run := func(threads int) ([]Time, Time) {
		g := NewGroup(11, 2, lookahead)
		var times []Time
		e1 := g.Engine(1)
		var tick func()
		tick = func() {
			times = append(times, e1.Now())
			e1.After(Microsecond/2, tick)
		}
		e1.After(0, tick)
		g.Engine(0).After(10*Microsecond, func() { g.Engine(0).Stop() })
		g.SetThreads(threads)
		end := g.RunUntil(Forever)
		return times, end
	}
	wantEnd := 10*Microsecond + lookahead - 1
	refTimes, refEnd := run(1)
	if refEnd != wantEnd {
		t.Fatalf("stop horizon %v, want %v", refEnd, wantEnd)
	}
	if last := refTimes[len(refTimes)-1]; last > wantEnd {
		t.Fatalf("event at %v executed past stop horizon %v", last, wantEnd)
	}
	for _, threads := range []int{2} {
		times, end := run(threads)
		if end != refEnd || !reflect.DeepEqual(times, refTimes) {
			t.Fatalf("threads=%d stop diverged: end=%v events=%d (want end=%v events=%d)",
				threads, end, len(times), refEnd, len(refTimes))
		}
	}
}

// TestGroupRepeatedRunUntil drives the same group through successive
// horizons, as staged benchmarks do, and checks mail queued beyond an
// early horizon is delivered by a later one.
func TestGroupRepeatedRunUntil(t *testing.T) {
	g := NewGroup(3, 2, Microsecond)
	var got []string
	g.Post(1, 50*Microsecond, 1, 1, func() { got = append(got, "late-mail") })
	g.Engine(0).After(5*Microsecond, func() { got = append(got, "early") })
	g.RunUntil(10 * Microsecond)
	if !reflect.DeepEqual(got, []string{"early"}) {
		t.Fatalf("after first horizon: %v", got)
	}
	g.RunUntil(100 * Microsecond)
	if !reflect.DeepEqual(got, []string{"early", "late-mail"}) {
		t.Fatalf("after second horizon: %v", got)
	}
}

// TestTimeAddSaturates pins the overflow clamp on scheduling arithmetic.
func TestTimeAddSaturates(t *testing.T) {
	if got := Time(1).Add(Forever); got != Forever {
		t.Fatalf("1+Forever = %v, want Forever", got)
	}
	if got := Forever.Add(Forever); got != Forever {
		t.Fatalf("Forever+Forever = %v, want Forever", got)
	}
	if got := Time(3).Add(4); got != 7 {
		t.Fatalf("3+4 = %v", got)
	}
	if got := Time(3).Add(-4); got != 0 {
		t.Fatalf("3+(-4) = %v, want clamp to 0", got)
	}
}

// TestAfterOverflowClamp: After with a delay that would wrap past Forever
// schedules a never-executed event instead of panicking or time-warping.
func TestAfterOverflowClamp(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.After(10, func() {})
	e.RunUntil(10)
	e.After(Forever-5, func() { fired = true })
	e.After(Forever, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("event scheduled past Forever executed")
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 parked at Forever", e.Pending())
	}
	// A bounded run must also skip Forever events without advancing into them.
	if now := e.RunUntil(20); now != 20 {
		t.Fatalf("RunUntil(20) = %v", now)
	}
}
