package sim

import "testing"

// Scenario: Stop leaves a same-instant event pending; RunUntil jumps the
// clock (flushImm moves it to the heap as a past-due event). A future event
// y at t1 < D is already in the heap. Then At(Now()) schedules x into imm.
// Correct (time, seq) order must run: t0-event, y(t1), x(D).
func TestReviewOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(5, func() { order = append(order, "a"); e.Stop() })
	e.At(5, func() { order = append(order, "b") }) // pending imm when Stop fires
	e.At(8, func() { order = append(order, "y") }) // future event between 5 and 10
	e.Run()                                        // runs "a", stops; "b" still due at 5
	e.RunUntil(10)                                 // hmm: runs b (at 5 <= 10), y... let's see
	t.Logf("after RunUntil(10): now=%v order=%v", e.Now(), order)
	e.At(10, func() { order = append(order, "x") })
	e.Run()
	t.Logf("final: now=%v order=%v", e.Now(), order)
}
