// Conservative parallel discrete-event simulation (PDES).
//
// A Group shards one simulation across several Engines — one per
// partition — and synchronizes them with a conservative lookahead
// protocol. The contract is the same as the rest of this repository:
// results are byte-identical for any thread count.
//
// # Protocol
//
// Cross-partition interactions go through per-partition mailboxes: a
// timestamped closure posted with Post(to, at, src, seq, fn) executes on
// the destination partition's engine at virtual time at, ordered by
// (at, src, seq) against other mail and after local events with the same
// timestamp. The sender promises that every post it issues satisfies
//
//	at >= clock_sender + lookahead
//
// where clock_sender is the sender's published clock at the moment of the
// send. That promise is exactly what fabric propagation latency provides:
// a message sent while executing an event at time t arrives at t+L.
//
// Each partition i repeatedly:
//
//  1. publishes raw_i = min(next local event, earliest mail in box);
//  2. reads every raw_j and forms M = min_j raw_j (its own included —
//     mail already in its box bounds its own next action), then
//     publishes clock_i = min(raw_i, M+L). The M+L term is what lets a
//     quiescent partition jump its clock across a long idle gap in one
//     step instead of creeping by L per iteration: nothing anywhere can
//     execute before M, so nothing can send mail arriving before M+L.
//  3. computes the exclusive execution bound
//     B = min( min_{j≠i} clock_j + L , horizon+1 )
//     and executes everything below it: mail below B is popped in
//     (at, src, seq) order, running local events first via
//     RunUntil(m.at) before each injection, then the local tail via
//     RunUntil(B-1).
//
// Safety: no mail can arrive below a receiver's executed frontier.
// Mail sent after partition i read clock_j carries a timestamp
// >= clock_j + L >= B_i's contribution from j, and published clocks
// never decrease, so the set of mail below B is fixed before the batch
// starts. Equal-timestamp mail from different sources cannot race
// either: for i to be executing time t at all, every other clock
// exceeds t-L, so any future send lands strictly after t.
//
// Determinism: each engine therefore executes an identical event
// sequence regardless of how batches are sliced, i.e. regardless of the
// number of worker threads (SetThreads). Injected closures run between
// engine events and consume no engine sequence numbers, so seq
// assignment of the events they schedule is also timing-independent.
//
// Termination uses raw values, not clocks: when every partition's
// published raw exceeds the horizon (or is Forever), no partition can
// ever create work at or below the horizon. A second full sweep with a
// mailbox re-check between guards against mail pushed concurrently with
// the first observation.
//
// Stop is deterministic too: stopping from an event executing at time s
// shrinks the shared horizon to s+L-1 with an atomic min. Every
// partition's frontier is provably below s+L at that moment, so every
// run — any thread count — executes exactly the events with timestamps
// <= s+L-1. See DESIGN.md §S19 for the full argument.
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// mail is one cross-partition injection: run fn on the destination
// engine at virtual time at, ordered by (at, src, seq).
type mail struct {
	at  Time
	src uint64
	seq uint64
	fn  func()
}

func mailLess(a, b mail) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// mailbox is a mutex-protected min-heap of mail ordered by (at, src, seq),
// with the head timestamp mirrored in a lock-free atomic. The mirror is
// what makes the synchronization loop cheap: partitions poll every box's
// head on every iteration (floor computation, quiescence checks), and an
// idle partition spinning on another's mutex would throttle the very
// thread it is waiting for. Only push/popBelow — the rare, actual
// mutations — take the lock; headAt is updated before the lock is
// released, so a reader that has observed any later atomic write by the
// pushing thread (e.g. its republished raw) is guaranteed to observe the
// new head too.
type mailbox struct {
	mu     sync.Mutex
	h      []mail
	headAt atomic.Int64 // b.h[0].at, or Forever when empty
}

func (b *mailbox) push(m mail) {
	b.mu.Lock()
	b.h = append(b.h, m)
	i := len(b.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !mailLess(b.h[i], b.h[p]) {
			break
		}
		b.h[i], b.h[p] = b.h[p], b.h[i]
		i = p
	}
	b.headAt.Store(int64(b.h[0].at))
	b.mu.Unlock()
}

// head returns the earliest pending timestamp, or Forever when empty.
func (b *mailbox) head() Time {
	return Time(b.headAt.Load())
}

// popBelow removes and returns the earliest mail with at < bound.
func (b *mailbox) popBelow(bound Time) (mail, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.h) == 0 || b.h[0].at >= bound {
		return mail{}, false
	}
	top := b.h[0]
	n := len(b.h) - 1
	b.h[0] = b.h[n]
	b.h[n] = mail{}
	b.h = b.h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && mailLess(b.h[r], b.h[l]) {
			m = r
		}
		if !mailLess(b.h[m], b.h[i]) {
			break
		}
		b.h[i], b.h[m] = b.h[m], b.h[i]
		i = m
	}
	if n > 0 {
		b.headAt.Store(int64(b.h[0].at))
	} else {
		b.headAt.Store(int64(Forever))
	}
	return top, true
}

// partState is the per-partition synchronization state. raw and clock are
// written only by the partition's owning worker thread and read by all.
type partState struct {
	box   mailbox
	raw   atomic.Int64 // min(next local event, earliest mail): next action
	clock atomic.Int64 // conservative promise: no future send arrives < clock+L
}

// Group runs one simulation sharded across several engines. Create one
// with NewGroup, schedule work on the per-partition engines (Engine(i)),
// route every cross-partition interaction through Post, and drive the
// whole ensemble with Run/RunUntil.
type Group struct {
	engines []*Engine
	parts   []*partState
	look    Time
	horizon atomic.Int64 // inclusive execution horizon for the current run
	threads int
	// injected counts mailbox closures executed; they are not engine
	// events, so Executed() folds them in for cross-mode accounting.
	injected atomic.Uint64
	// done latches the shared termination decision for the current run:
	// threads must stop together, since a partition that looks exhausted
	// can still be fed by another thread's batch.
	done atomic.Bool
}

// splitmix64 decorrelates per-partition engine seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// NewGroup creates a group of parts engines. Partition 0 is seeded with
// seed itself (matching a single-engine run of the same build recipe);
// the rest get splitmix64-derived seeds. lookahead is the minimum
// cross-partition latency every Post must respect and must be positive.
func NewGroup(seed int64, parts int, lookahead Time) *Group {
	if parts < 1 {
		panic("sim: group needs at least one partition")
	}
	if lookahead <= 0 {
		panic("sim: group lookahead must be positive")
	}
	g := &Group{look: lookahead, threads: 1}
	for i := 0; i < parts; i++ {
		s := seed
		if i > 0 {
			s = int64(splitmix64(uint64(seed) ^ uint64(i)*0x9E3779B97F4A7C15))
		}
		e := NewEngine(s)
		e.group, e.part = g, i
		g.engines = append(g.engines, e)
		ps := &partState{}
		ps.box.headAt.Store(int64(Forever)) // empty box: no pending mail
		g.parts = append(g.parts, ps)
	}
	return g
}

// Parts returns the number of partitions.
func (g *Group) Parts() int { return len(g.engines) }

// Engine returns partition i's engine.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// Engines returns all partition engines, indexed by partition.
func (g *Group) Engines() []*Engine { return g.engines }

// Lookahead returns the group's conservative lookahead window.
func (g *Group) Lookahead() Time { return g.look }

// SetThreads sets the number of worker goroutines used by Run/RunUntil.
// Values are clamped to [1, Parts()]. Results are byte-identical for any
// setting; threads only change wall-clock speed.
func (g *Group) SetThreads(n int) {
	if n < 1 {
		n = 1
	}
	g.threads = n
}

// Executed reports the total work done: engine events across all
// partitions plus injected mailbox closures. The total is deterministic
// and identical for any thread count.
func (g *Group) Executed() uint64 {
	total := g.injected.Load()
	for _, e := range g.engines {
		total += e.Executed()
	}
	return total
}

// Post schedules fn to run on partition to's engine at absolute virtual
// time at. (src, seq) break timestamp ties deterministically, so each
// source must number its posts from a counter owned by its own
// partition. The caller must guarantee at >= its clock + lookahead,
// which holds for any message that traverses a fabric link.
//
// Post is for cross-partition mail only. A partition must never post to
// itself: its execution bound is derived from the other partitions'
// clocks, so the local tail can legally run past a self-posted timestamp
// and execute out of order. Same-partition work belongs on the engine's
// own queue (After/At), where it is ordered exactly.
func (g *Group) Post(to int, at Time, src, seq uint64, fn func()) {
	if at < 0 {
		panic(fmt.Sprintf("sim: group post at negative time %d", at))
	}
	g.parts[to].box.push(mail{at: at, src: src, seq: seq, fn: fn})
}

// callSrc tags Engine.Call mail sources so they can never collide with a
// model-layer source id (fabric node ids and the like are small ints).
const callSrc = uint64(1) << 63

// Call executes fn in target's partition. When both engines share a
// partition — in particular when they are the same engine, the
// single-engine case — fn runs immediately, the historical synchronous
// behaviour. Across partitions, fn is delivered through the group
// mailbox one lookahead ahead of e's clock, the earliest instant the
// conservative protocol can order deterministically; delivery order
// among Calls from the same engine follows call order. Call must be
// invoked either from an event running on e or before the group starts.
func (e *Engine) Call(target *Engine, fn func()) {
	if e.group == nil || e.group != target.group || e.part == target.part {
		fn()
		return
	}
	e.callSeq++
	e.group.Post(target.part, e.now.Add(e.group.look), callSrc|uint64(e.part), e.callSeq, fn)
}

// Run executes the whole group until every partition is quiescent.
func (g *Group) Run() Time { return g.RunUntil(Forever) }

// RunUntil executes every event with timestamp <= until across all
// partitions, then advances every engine's clock to the final horizon
// (which Stop may have shrunk below until). It returns that horizon.
// RunUntil may be called repeatedly with nondecreasing horizons.
func (g *Group) RunUntil(until Time) Time {
	if until < 0 {
		panic("sim: group horizon must be nonnegative")
	}
	g.horizon.Store(int64(until))
	g.done.Store(false)
	// Re-seed the synchronization state single-threaded: nothing is
	// executing, so each partition's next action is exact and clocks may
	// jump straight to it (stale clocks from a previous RunUntil would
	// otherwise force a slow creep back up to the current time). Clocks
	// are seeded to min(raw, globalMin + L), the same promise
	// runPartition publishes: an idle partition must NOT claim Forever,
	// because any live partition's mail can still wake it — a Forever
	// clock would unbound the others' execution and let them run causally
	// ahead of replies this partition has yet to produce.
	minRaw := Forever
	for i, e := range g.engines {
		ps := g.parts[i]
		raw := e.NextEventTime()
		if h := ps.box.head(); h < raw {
			raw = h
		}
		ps.raw.Store(int64(raw))
		if raw < minRaw {
			minRaw = raw
		}
	}
	for _, ps := range g.parts {
		clock := minRaw.Add(g.look)
		if raw := Time(ps.raw.Load()); raw < clock {
			clock = raw
		}
		ps.clock.Store(int64(clock))
	}
	threads := g.threads
	if threads > len(g.engines) {
		threads = len(g.engines)
	}
	if threads <= 1 {
		g.runThread(0, 1)
	} else {
		var wg sync.WaitGroup
		for tid := 1; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				g.runThread(tid, threads)
			}(tid)
		}
		g.runThread(0, threads)
		wg.Wait()
	}
	final := Time(g.horizon.Load())
	if final != Forever {
		for _, e := range g.engines {
			if e.now < final {
				e.RunUntil(final) // no events remain <= final; advances the clock
			}
		}
	}
	return final
}

// runThread services partitions tid, tid+T, tid+2T, ... until the whole
// group is quiescent beyond the horizon. The partition->thread map is
// static, so each engine is touched by exactly one goroutine per run.
func (g *Group) runThread(tid, threads int) {
	idle := 0
	for {
		if g.done.Load() {
			return
		}
		progressed := false
		for p := tid; p < len(g.engines); p += threads {
			if g.runPartition(p) {
				progressed = true
			}
		}
		if progressed {
			idle = 0
			continue
		}
		if g.quiescent() {
			g.done.Store(true)
			return
		}
		idle++
		if idle > 64 {
			runtime.Gosched()
		}
	}
}

// quiescent reports whether no partition holds — or can ever create —
// work at or below the horizon. Published raws are read before mailbox
// heads: any in-flight mail is covered either by its sender's pre-batch
// raw (republished only after the batch's pushes complete) or by the
// destination box's head mirror once the second pass loads it, so a true
// here can never mask pending work.
func (g *Group) quiescent() bool {
	h := Time(g.horizon.Load())
	for _, ps := range g.parts {
		raw := Time(ps.raw.Load())
		if raw <= h && raw != Forever {
			return false
		}
	}
	for _, ps := range g.parts {
		bh := ps.box.head()
		if bh <= h && bh != Forever {
			return false
		}
	}
	return true
}

// runPartition performs one synchronization-and-execute iteration for
// partition p. It reports whether any work was done.
func (g *Group) runPartition(p int) bool {
	e := g.engines[p]
	ps := g.parts[p]

	// (1) Publish the next-action estimate.
	raw := e.NextEventTime()
	if h := ps.box.head(); h < raw {
		raw = h
	}
	ps.raw.Store(int64(raw))

	// (2) Publish the conservative clock: min(raw, globalFloor + L).
	// The floor is read in two passes — published raws first, then live
	// mailbox heads. The order matters: any in-flight mail is either
	// still covered by its sender's pre-batch raw (republished only
	// after the batch's pushes complete) or already visible in the
	// destination box's head mirror when the second pass loads it. Stale reads
	// are therefore always low, never high, so the floor is a true lower
	// bound on all future execution anywhere.
	minRaw := raw
	for _, qs := range g.parts {
		if r := Time(qs.raw.Load()); r < minRaw {
			minRaw = r
		}
	}
	for _, qs := range g.parts {
		if h := qs.box.head(); h < minRaw {
			minRaw = h
		}
	}
	clock := minRaw.Add(g.look)
	if raw < clock {
		clock = raw
	}
	// Published clocks must never decrease: receivers trust that any send
	// issued after they read clock_j arrives at or beyond that value + L.
	// An older (higher) clock was a valid bound on all execution after its
	// publish instant, which includes everything still to come.
	if prev := Time(ps.clock.Load()); clock < prev {
		clock = prev
	}
	ps.clock.Store(int64(clock))

	horizon := Time(g.horizon.Load())
	if raw > horizon || raw == Forever {
		return false // nothing runnable this side of the horizon
	}

	// (3) Execution bound: strictly below every other clock + lookahead,
	// and never beyond the horizon. The horizon is re-read inside the
	// loop because Stop may shrink it mid-batch.
	bound := Forever
	for q, qs := range g.parts {
		if q == p {
			continue
		}
		if w := Time(qs.clock.Load()).Add(g.look); w < bound {
			bound = w
		}
	}
	if h1 := horizon.Add(1); h1 < bound {
		bound = h1
	}

	progressed := false
	for {
		if h1 := Time(g.horizon.Load()).Add(1); h1 < bound {
			bound = h1
		}
		m, ok := ps.box.popBelow(bound)
		if !ok {
			break
		}
		// Local events at or before the mail's timestamp run first; a
		// same-instant local event always predates injected mail. A Stop
		// issued by one of those events shrinks the horizon and execution
		// resumes toward the mail's timestamp.
		if g.runLocal(e, m.at) {
			progressed = true
		}
		if m.at > Time(g.horizon.Load()) {
			// A Stop moved the horizon below this mail; requeue it so a
			// later RunUntil with a larger horizon can still deliver it.
			ps.box.push(m)
			break
		}
		m.fn()
		g.injected.Add(1)
		progressed = true
	}
	// Local tail: run events up to the batch bound (or the horizon, when
	// this partition is unconstrained), re-clamping after any Stop. The
	// engine advances only to event timestamps, never to the bound itself:
	// the bound depends on the other partitions' momentary clocks, so
	// parking the engine clock there would make final Now() values vary
	// with thread timing even though the event sequence does not.
	for {
		target := bound - 1
		if bound == Forever {
			target = horizon
		}
		if h := Time(g.horizon.Load()); h < target {
			target = h
		}
		nt := e.NextEventTime()
		if nt == Forever || nt > target || nt < e.now {
			break
		}
		before := e.executed
		e.RunUntil(nt)
		if e.executed != before {
			progressed = true
		}
		if e.stopped {
			e.stopped = false
			g.StopFrom(e)
		}
	}
	return progressed
}

// runLocal advances e to at, executing every local event with timestamp
// <= at (including same-instant events, which predate injected mail) and
// folding any Stop() issued along the way into the group horizon. It
// reports whether any events ran.
func (g *Group) runLocal(e *Engine, at Time) bool {
	before := e.executed
	for {
		e.RunUntil(at)
		if !e.stopped {
			return e.executed != before
		}
		e.stopped = false
		g.StopFrom(e)
	}
}

// StopFrom deterministically ends the current run shortly after the
// calling event: the horizon shrinks to e.Now() + lookahead - 1, which
// every partition's frontier is provably still below, so every run
// executes exactly the same event set regardless of thread count. e must
// be the engine the calling event is executing on.
func (g *Group) StopFrom(e *Engine) {
	newH := int64(e.now.Add(g.look) - 1)
	for {
		cur := g.horizon.Load()
		if cur <= newH {
			return
		}
		if g.horizon.CompareAndSwap(cur, newH) {
			return
		}
	}
}
