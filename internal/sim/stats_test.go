package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if got := h.Percentile(50); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := h.Percentile(99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := h.Max(); got != 100 {
		t.Errorf("max = %v, want 100", got)
	}
	if got := h.Min(); got != 1 {
		t.Errorf("min = %v, want 1", got)
	}
	if got := h.Mean(); got != 50.5 {
		t.Errorf("mean = %v, want 50.5", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	if h.Percentile(0) != 0 || h.Percentile(100) != 0 {
		t.Error("empty histogram boundary percentiles should be 0")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Add(42)
	for _, p := range []float64{0, 0.1, 50, 99.9, 100} {
		if got := h.Percentile(p); got != 42 {
			t.Errorf("p%v = %v, want 42", p, got)
		}
	}
	if h.Min() != 42 || h.Max() != 42 || h.Mean() != 42 {
		t.Error("single-sample min/max/mean should all be the sample")
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10; i++ {
		h.Add(float64(i))
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %v, want min (1)", got)
	}
	if got := h.Percentile(100); got != 10 {
		t.Errorf("p100 = %v, want max (10)", got)
	}
	// Out-of-range p clamps rather than panicking or extrapolating.
	if got := h.Percentile(-5); got != 1 {
		t.Errorf("p-5 = %v, want min (1)", got)
	}
	if got := h.Percentile(250); got != 10 {
		t.Errorf("p250 = %v, want max (10)", got)
	}
	if got := h.Percentile(math.NaN()); got != 1 {
		t.Errorf("pNaN = %v, want min (1)", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 5; i++ {
		a.Add(float64(i))
	}
	for i := 6; i <= 10; i++ {
		b.Add(float64(i))
	}
	a.Merge(&b)
	if a.Count() != 10 {
		t.Fatalf("merged count = %d, want 10", a.Count())
	}
	if a.Mean() != 5.5 {
		t.Errorf("merged mean = %v, want 5.5", a.Mean())
	}
	if a.Min() != 1 || a.Max() != 10 {
		t.Errorf("merged min/max = %v/%v, want 1/10", a.Min(), a.Max())
	}
	if a.Percentile(50) != 5 {
		t.Errorf("merged p50 = %v, want 5", a.Percentile(50))
	}
	// Source must be untouched, and degenerate merges must be no-ops.
	if b.Count() != 5 || b.Min() != 6 {
		t.Error("Merge modified its argument")
	}
	var empty Histogram
	a.Merge(&empty)
	a.Merge(nil)
	if a.Count() != 10 {
		t.Errorf("no-op merges changed count to %d", a.Count())
	}
	// Merging into an empty histogram copies.
	var c Histogram
	c.Merge(&b)
	if c.Count() != 5 || c.Mean() != 8 {
		t.Errorf("merge into empty: n=%d mean=%v, want 5/8", c.Count(), c.Mean())
	}
}

// Property: percentiles are monotone in p and bounded by [Min, Max].
func TestHistogramMonotoneProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var h Histogram
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Add(v)
		}
		if h.Count() == 0 {
			return true
		}
		prev := h.Min()
		for p := 0.0; p <= 100; p += 5 {
			cur := h.Percentile(p)
			if cur < prev || cur > h.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramLazySortInterleaved pins the lazy-sort cache: interleaving
// Add/Merge with Percentile/Min/Max (each of which sorts and memoises) must
// return exactly what a sort-once oracle — every sample added up front, one
// query pass at the end — returns. A stale `sorted` flag after Add or Merge
// would surface here as a percentile computed over a half-sorted slice.
// Runs under the CI -race pass.
func TestHistogramLazySortInterleaved(t *testing.T) {
	r := NewRand(99)
	var h Histogram
	var oracle Histogram
	feed := func(n int) {
		for i := 0; i < n; i++ {
			v := r.Float64() * 1e4
			h.Add(v)
			oracle.Add(v)
		}
	}
	check := func(step string) {
		t.Helper()
		// A fresh copy of the oracle's samples, sorted exactly once.
		var once Histogram
		for _, v := range append([]float64(nil), oracle.samples...) {
			once.Add(v)
		}
		once.sort()
		for _, p := range []float64{0, 25, 50, 90, 99, 100} {
			if got, want := h.Percentile(p), once.Percentile(p); got != want {
				t.Fatalf("%s: p%.0f = %v, want %v", step, p, got, want)
			}
		}
		if h.Min() != once.Min() || h.Max() != once.Max() {
			t.Fatalf("%s: min/max %v/%v, want %v/%v", step, h.Min(), h.Max(), once.Min(), once.Max())
		}
	}

	feed(100)
	check("after first batch")
	// Query, then add more: the cached sort must be invalidated.
	feed(57)
	check("after interleaved adds")
	// Merge after a query must also invalidate.
	var side Histogram
	for i := 0; i < 31; i++ {
		v := r.Float64() * 1e4
		side.Add(v)
		oracle.Add(v)
	}
	_ = side.Percentile(50) // side is pre-sorted when merged
	h.Merge(&side)
	check("after merge")
	// Repeated queries with no writes stay cached and stay right.
	check("repeat query")
	feed(1)
	check("single trailing add")
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(5), NewRand(5)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed sources diverged")
		}
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		if v := r.Zipf(100, 1.2); v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	mean := sum / n
	if mean < 9.5 || mean > 10.5 {
		t.Fatalf("Exp mean = %v, want ≈10", mean)
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(3)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("split source mirrors parent")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(Second)
	ts.Observe(100*Millisecond, 1)
	ts.Observe(900*Millisecond, 1)
	ts.Observe(2500*Millisecond, 4)
	times, values := ts.Points()
	if len(times) != 3 {
		t.Fatalf("got %d buckets, want 3 (gap bucket included)", len(times))
	}
	if values[0] != 2 || values[1] != 0 || values[2] != 4 {
		t.Fatalf("values = %v", values)
	}
	_, rates := ts.RatePoints()
	if rates[2] != 4 {
		t.Fatalf("rate = %v, want 4/s", rates[2])
	}
}

func TestCounterRate(t *testing.T) {
	var c Counter
	c.Add(500)
	if got := c.Rate(0, 2*Second); got != 250 {
		t.Fatalf("rate = %v, want 250", got)
	}
	if got := c.Rate(5, 5); got != 0 {
		t.Fatalf("zero-span rate = %v, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(4)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
