package sim

import (
	"fmt"
	"math"
	"sort"
)

// Histogram accumulates latency samples and reports percentiles. It keeps
// raw samples; experiment populations here are small enough (≤ millions)
// that exact percentiles are affordable and reproducible.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
}

// AddTime records a virtual-time span as microseconds.
func (h *Histogram) AddTime(t Time) { h.Add(t.Micros()) }

// Merge folds every sample of other into h. other is unmodified; merging
// a nil or empty histogram is a no-op.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || len(other.samples) == 0 {
		return
	}
	h.samples = append(h.samples, other.samples...)
	h.sorted = false
	h.sum += other.sum
}

// Count reports the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean reports the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Percentile reports the p-th percentile using nearest-rank, or 0 with no
// samples. p is clamped to [0, 100]: p <= 0 returns the minimum sample and
// p >= 100 the maximum, so callers can ask for p0/p100 (or a slightly
// out-of-range p from float arithmetic) and get the sane boundary answer.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	if p <= 0 || math.IsNaN(p) {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(h.samples) {
		rank = len(h.samples) - 1
	}
	return h.samples[rank]
}

// Max reports the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[len(h.samples)-1]
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[0]
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
}

// Counter is a monotonically increasing event counter with an associated
// rate helper.
type Counter struct {
	N uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.N++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.N += n }

// Rate reports events per virtual second over the span [start, end].
func (c *Counter) Rate(start, end Time) float64 {
	if end <= start {
		return 0
	}
	return float64(c.N) / (end - start).Seconds()
}

// TimeSeries records (time, value) points bucketed at a fixed interval;
// used for throughput-versus-time figures.
type TimeSeries struct {
	Interval Time
	buckets  map[int64]float64
}

// NewTimeSeries returns a series with the given bucketing interval.
func NewTimeSeries(interval Time) *TimeSeries {
	return &TimeSeries{Interval: interval, buckets: make(map[int64]float64)}
}

// Observe adds v to the bucket containing time t.
func (ts *TimeSeries) Observe(t Time, v float64) {
	ts.buckets[int64(t)/int64(ts.Interval)] += v
}

// Points returns the series as ordered (bucket-start-seconds, value) pairs.
// Buckets with no observations between the first and last bucket are
// reported as zero, so gaps (e.g. the cold-ring outage) are visible.
func (ts *TimeSeries) Points() (times, values []float64) {
	if len(ts.buckets) == 0 {
		return nil, nil
	}
	keys := make([]int64, 0, len(ts.buckets))
	for k := range ts.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for k := keys[0]; k <= keys[len(keys)-1]; k++ {
		times = append(times, (Time(k) * ts.Interval).Seconds())
		values = append(values, ts.buckets[k])
	}
	return times, values
}

// RatePoints returns Points with each value divided by the interval in
// seconds, i.e. a per-second rate series.
func (ts *TimeSeries) RatePoints() (times, rates []float64) {
	times, values := ts.Points()
	ivalSec := ts.Interval.Seconds()
	rates = make([]float64, len(values))
	for i, v := range values {
		rates[i] = v / ivalSec
	}
	return times, rates
}
