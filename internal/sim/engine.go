// Package sim provides the deterministic discrete-event simulation engine
// that every other subsystem in this repository runs on.
//
// A single Engine owns a virtual clock and a priority queue of events.
// Components schedule callbacks with At/After; Run drains the queue in
// (time, sequence) order, so two runs with the same seed and the same
// schedule produce byte-identical results.
//
// The hot path is allocation-free in steady state: executed and cancelled
// events return to a free list and are reused by later At/After calls, and
// Cancel marks events dead in place (lazy deletion) instead of paying a
// heap fix-up. Neither optimization can change the execution order — see
// DESIGN.md §7 for the invariants.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations, usable as sim.Time spans.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Forever is a time later than any event the engine will ever execute.
// Events scheduled at exactly Forever (the result of a saturated Add) are
// legal but never run.
const Forever Time = math.MaxInt64

// Add returns t+d saturated to [0, Forever] instead of wrapping:
// scheduling arithmetic on long lookahead windows must never travel back
// in time.
func (t Time) Add(d Time) Time {
	s := t + d
	if d >= 0 {
		if s < t {
			return Forever
		}
	} else if s < 0 || s > t {
		return 0
	}
	return s
}

// Duration converts a standard library duration into a virtual time span.
// It is the one sanctioned wall-clock-type boundary in the sim layers.
//
//npf:realtime
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as floating-point seconds, for human-readable output.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	return time.Duration(t).String()
}

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant, preserving scheduling order. The struct is pooled:
// gen distinguishes the current tenancy from stale EventIDs that refer to
// an earlier use of the same struct.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	gen  uint64
	dead bool // cancelled; skipped (and recycled) when it surfaces
	imm  bool // lives in the immediate FIFO, not the heap
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// value is valid and never cancels anything.
type EventID struct {
	ev  *event
	gen uint64
}

// maxFreeEvents caps the free list; beyond it, recycled events are left to
// the garbage collector. The cap bounds pool memory after a burst while
// keeping every steady-state workload allocation-free.
const maxFreeEvents = 1 << 16

// compactMinDead is the floor below which Cancel never triggers heap
// compaction; tiny queues are cheaper to let pop-skip clean up.
const compactMinDead = 64

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now Time
	seq uint64
	// heap is a manual binary min-heap ordered by (at, seq). It holds every
	// scheduled event except those due at exactly the current instant.
	heap []*event
	// imm is a FIFO of events scheduled for the current instant (After(0),
	// At(Now())). Appending preserves seq order, and no heap event due now
	// can have a larger seq (nothing enters the heap at the current time),
	// so a plain queue pop keeps the global (at, seq) order — while making
	// the extremely common "run this next" pattern O(1).
	imm     []*event
	immHead int
	// free is the event pool; live/heapDead drive Pending and compaction.
	free     []*event
	live     int
	heapDead int
	rng      *Rand
	stopped  bool
	// executed counts events run, for diagnostics and runaway detection.
	executed uint64
	// MaxEvents aborts Run with a panic after this many events, guarding
	// against accidental infinite simulations. Zero means no limit.
	MaxEvents uint64
	// group/part link the engine to its PDES coordinator when it is one
	// partition of a sim.Group; nil for standalone engines. callSeq
	// numbers this engine's cross-partition Calls for deterministic
	// timestamp tie-breaks.
	group   *Group
	part    int
	callSeq uint64
}

// NewEngine returns an engine whose clock reads zero and whose random source
// is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Group returns the PDES group this engine is a partition of, or nil for
// a standalone engine.
func (e *Engine) Group() *Group { return e.group }

// Partition returns the engine's partition index within its group, or 0
// for a standalone engine.
func (e *Engine) Partition() int { return e.part }

// NextEventTime returns the timestamp of the earliest scheduled event, or
// Forever when nothing is pending. It is the conservative-sync protocol's
// view of the engine's next action.
func (e *Engine) NextEventTime() Time {
	if ev, _ := e.peek(); ev != nil {
		return ev.at
	}
	return Forever
}

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are currently scheduled (cancelled events
// are not counted, even while they still occupy queue slots).
func (e *Engine) Pending() int { return e.live }

// alloc takes an event from the pool, or allocates one when the pool is
// empty, and stamps it with the next sequence number.
func (e *Engine) alloc(t Time, fn func()) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{} //npf:allocok — pool miss; amortized away once the pool warms up
	}
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	return ev
}

// recycle returns an event to the pool. Bumping gen invalidates every
// EventID that still points at this struct.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.dead = false
	ev.imm = false
	if len(e.free) < maxFreeEvents {
		e.free = append(e.free, ev) //npf:allocok — pool refill; capacity reaches steady state
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (before Now) panics: that is always a component bug.
//
//npf:noalloc
func (e *Engine) At(t Time, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now)) //npf:allocok — dying anyway
	}
	ev := e.alloc(t, fn)
	e.live++
	if t == e.now {
		ev.imm = true
		e.imm = append(e.imm, ev) //npf:allocok — FIFO backing reaches steady-state capacity
	} else {
		e.pushHeap(ev)
	}
	return EventID{ev, ev.gen}
}

// After schedules fn to run d nanoseconds from now. The target time
// saturates at Forever instead of wrapping, and events at Forever never
// execute, so arbitrarily long delays are safe no-ops.
//
//npf:noalloc
func (e *Engine) After(d Time, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a scheduled event. Cancelling an event that already ran or
// was already cancelled is a no-op; Cancel reports whether the event was
// actually removed. Removal is lazy: the event is marked dead and skipped
// (and its struct recycled) when it reaches the front of its queue, with a
// full compaction once dead events outnumber live ones.
//
//npf:noalloc
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.gen != id.gen || ev.dead {
		return false
	}
	ev.dead = true
	ev.fn = nil
	e.live--
	if !ev.imm {
		e.heapDead++
		if e.heapDead >= compactMinDead && e.heapDead*2 > len(e.heap) {
			e.compact()
		}
	}
	return true
}

// compact drops every dead event from the heap and restores the heap
// property. Order is unaffected: (at, seq) is a total order, so any valid
// heap over the same live set pops in the same sequence.
func (e *Engine) compact() {
	kept := e.heap[:0]
	for _, ev := range e.heap {
		if ev.dead {
			e.recycle(ev)
		} else {
			kept = append(kept, ev) //npf:allocok — appends into e.heap's own backing (kept = e.heap[:0]); never grows
		}
	}
	for i := len(kept); i < len(e.heap); i++ {
		e.heap[i] = nil
	}
	e.heap = kept
	e.heapDead = 0
	for i := len(kept)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Forever) }

// peek returns the next live event and which queue it heads, discarding any
// dead events that have surfaced. It returns nil when nothing is scheduled.
func (e *Engine) peek() (ev *event, fromHeap bool) {
	for e.immHead < len(e.imm) && e.imm[e.immHead].dead {
		e.recycle(e.imm[e.immHead])
		e.imm[e.immHead] = nil
		e.immHead++
	}
	if e.immHead == len(e.imm) {
		e.imm = e.imm[:0]
		e.immHead = 0
	}
	for len(e.heap) > 0 && e.heap[0].dead {
		e.heapDead--
		e.recycle(e.popHeap())
	}
	switch {
	case len(e.heap) == 0 && e.immHead == len(e.imm):
		return nil, false
	case len(e.heap) > 0 && (e.immHead == len(e.imm) || e.heap[0].at <= e.now):
		// A heap event due at the current instant predates (smaller seq)
		// everything in the immediate FIFO: events only enter the heap for
		// future times, so it must run first.
		return e.heap[0], true
	default:
		return e.imm[e.immHead], false
	}
}

// flushImm migrates pending immediate events into the heap. Called before
// the clock jumps to a deadline, so the FIFO's invariant (every entry is due
// at the current instant) survives Stop-then-RunUntil sequences; the moved
// events keep their (at, seq) keys, so order is unchanged. In the common
// case the FIFO is already empty and this is a no-op.
func (e *Engine) flushImm() {
	for e.immHead < len(e.imm) {
		ev := e.imm[e.immHead]
		e.imm[e.immHead] = nil
		e.immHead++
		if ev.dead {
			e.recycle(ev)
			continue
		}
		ev.imm = false
		e.pushHeap(ev)
	}
	e.imm = e.imm[:0]
	e.immHead = 0
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// after the deadline remain queued; the clock is advanced to the deadline if
// it is reached (and the deadline is not Forever).
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped {
		next, fromHeap := e.peek()
		if next == nil {
			break
		}
		if next.at > deadline || next.at == Forever {
			if deadline != Forever && deadline > e.now {
				e.flushImm()
				e.now = deadline
			}
			return e.now
		}
		if fromHeap {
			e.popHeap()
		} else {
			e.imm[e.immHead] = nil
			e.immHead++
		}
		e.live--
		e.now = next.at
		e.executed++
		if e.MaxEvents != 0 && e.executed > e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now))
		}
		fn := next.fn
		e.recycle(next)
		fn()
	}
	if e.stopped && e.group != nil {
		// Grouped engines must report the stopping event's own time so the
		// coordinator can shrink the shared horizon deterministically.
		return e.now
	}
	if deadline != Forever && e.now < deadline {
		e.flushImm()
		e.now = deadline
	}
	return e.now
}

// ---------------------------------------------------------------------------
// Manual binary min-heap over (at, seq). Hand-rolled instead of
// container/heap to keep the hot path free of interface dispatch.

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) pushHeap(ev *event) {
	e.heap = append(e.heap, ev) //npf:allocok — heap backing reaches steady-state capacity
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) popHeap() *event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	e.heap = h[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return top
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(ev, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ev := h[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventLess(h[r], h[l]) {
			m = r
		}
		if !eventLess(h[m], ev) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ev
}
