// Package sim provides the deterministic discrete-event simulation engine
// that every other subsystem in this repository runs on.
//
// A single Engine owns a virtual clock and a priority queue of events.
// Components schedule callbacks with At/After; Run drains the queue in
// (time, sequence) order, so two runs with the same seed and the same
// schedule produce byte-identical results.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations, usable as sim.Time spans.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Forever is a time later than any event the engine will ever execute.
const Forever Time = math.MaxInt64

// Duration converts a standard library duration into a virtual time span.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as floating-point seconds, for human-readable output.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	return time.Duration(t).String()
}

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant, preserving scheduling order.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped or cancelled
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	rng     *Rand
	stopped bool
	// executed counts events run, for diagnostics and runaway detection.
	executed uint64
	// MaxEvents aborts Run with a panic after this many events, guarding
	// against accidental infinite simulations. Zero means no limit.
	MaxEvents uint64
}

// NewEngine returns an engine whose clock reads zero and whose random source
// is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (before Now) panics: that is always a component bug.
func (e *Engine) At(t Time, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventID{ev}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an event that already ran or
// was already cancelled is a no-op; Cancel reports whether the event was
// actually removed.
func (e *Engine) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, id.ev.index)
	id.ev.index = -1
	return true
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Forever) }

// RunUntil executes events with timestamps <= deadline. Events scheduled
// after the deadline remain queued; the clock is advanced to the deadline if
// it is reached (and the deadline is not Forever).
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > deadline {
			if deadline != Forever {
				e.now = deadline
			}
			return e.now
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.executed++
		if e.MaxEvents != 0 && e.executed > e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now))
		}
		next.fn()
	}
	if deadline != Forever && e.now < deadline {
		e.now = deadline
	}
	return e.now
}
