package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineAfterChains(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	var step func()
	step = func() {
		fired = append(fired, e.Now())
		if len(fired) < 5 {
			e.After(7, step)
		}
	}
	e.After(7, step)
	e.Run()
	for i, ft := range fired {
		if want := Time(7 * (i + 1)); ft != want {
			t.Fatalf("fired[%d]=%v want %v", i, ft, want)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	id := e.At(10, func() { ran = true })
	if !e.Cancel(id) {
		t.Fatal("first Cancel should report true")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel should report false")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var ran []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	e.RunUntil(20)
	if len(ran) != 2 {
		t.Fatalf("ran %v events, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want 20", e.Now())
	}
	e.Run()
	if len(ran) != 3 {
		t.Fatalf("remaining event did not run: %v", ran)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 3 {
		t.Fatalf("ran %d events after Stop, want 3", n)
	}
	// Run resumes.
	e.Run()
	if n != 10 {
		t.Fatalf("resume ran to %d, want 10", n)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []uint64 {
		e := NewEngine(seed)
		var out []uint64
		var step func()
		step = func() {
			out = append(out, e.Rand().Uint64())
			if len(out) < 100 {
				e.After(Time(e.Rand().Intn(50)+1), step)
			}
		}
		e.After(1, step)
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

// Property: events always execute in non-decreasing time order, whatever the
// schedule.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var times []Time
		for _, d := range delays {
			e.At(Time(d), func() { times = append(times, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
