package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineAfterChains(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	var step func()
	step = func() {
		fired = append(fired, e.Now())
		if len(fired) < 5 {
			e.After(7, step)
		}
	}
	e.After(7, step)
	e.Run()
	for i, ft := range fired {
		if want := Time(7 * (i + 1)); ft != want {
			t.Fatalf("fired[%d]=%v want %v", i, ft, want)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	id := e.At(10, func() { ran = true })
	if !e.Cancel(id) {
		t.Fatal("first Cancel should report true")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel should report false")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var ran []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	e.RunUntil(20)
	if len(ran) != 2 {
		t.Fatalf("ran %v events, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want 20", e.Now())
	}
	e.Run()
	if len(ran) != 3 {
		t.Fatalf("remaining event did not run: %v", ran)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 3 {
		t.Fatalf("ran %d events after Stop, want 3", n)
	}
	// Run resumes.
	e.Run()
	if n != 10 {
		t.Fatalf("resume ran to %d, want 10", n)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []uint64 {
		e := NewEngine(seed)
		var out []uint64
		var step func()
		step = func() {
			out = append(out, e.Rand().Uint64())
			if len(out) < 100 {
				e.After(Time(e.Rand().Intn(50)+1), step)
			}
		}
		e.After(1, step)
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

// Cancelled events are deleted lazily; survivors must still run in exact
// (time, seq) order and Pending must count only live events.
func TestEngineCancelLazyOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	var ids []EventID
	for i := 0; i < 1000; i++ {
		i := i
		ids = append(ids, e.At(Time(i%10+1), func() { order = append(order, i) }))
	}
	// Cancel enough to force compaction (dead > live).
	cancelled := map[int]bool{}
	for i := 0; i < 1000; i++ {
		if i%4 != 0 {
			if !e.Cancel(ids[i]) {
				t.Fatalf("Cancel(%d) reported false", i)
			}
			cancelled[i] = true
		}
	}
	if e.Pending() != 250 {
		t.Fatalf("Pending = %d, want 250", e.Pending())
	}
	e.Run()
	if len(order) != 250 {
		t.Fatalf("ran %d events, want 250", len(order))
	}
	for k, i := range order {
		if cancelled[i] {
			t.Fatalf("cancelled event %d ran", i)
		}
		if k > 0 {
			prev := order[k-1]
			pt, ct := Time(prev%10+1), Time(i%10+1)
			if ct < pt || (ct == pt && i < prev) {
				t.Fatalf("order violated at %d: %d after %d", k, i, prev)
			}
		}
	}
}

// EventIDs must go stale when their event runs, even though the underlying
// struct is pooled and reused by later events.
func TestEngineEventIDReuseSafety(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	id := e.At(1, func() { ran++ })
	e.Run()
	// The struct behind id is now in the free list; this At likely reuses it.
	e.At(e.Now()+1, func() { ran++ })
	if e.Cancel(id) {
		t.Fatal("Cancel of an already-run event reported true")
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2 (stale Cancel must not hit the reused event)", ran)
	}
}

// After(0) inside a callback runs after every event already due at the same
// instant, including ones still in the heap from before the clock arrived.
func TestEngineImmediateOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(5, func() {
		order = append(order, "a")
		e.After(0, func() { order = append(order, "imm1") })
		e.After(0, func() { order = append(order, "imm2") })
	})
	e.At(5, func() { order = append(order, "b") })
	e.Run()
	want := []string{"a", "b", "imm1", "imm2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Stop with same-instant events still queued, then more At(now) scheduling,
// then resume: (time, seq) order must hold across the interruption, and a
// deadline jump must not strand immediate events.
func TestEngineStopResumeImmediate(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(5, func() { order = append(order, "a"); e.Stop() })
	e.At(5, func() { order = append(order, "b") })
	e.Run()
	e.At(5, func() { order = append(order, "c") }) // now == 5: immediate queue
	e.RunUntil(9)                                  // runs b, c; clock jumps to 9
	if e.Now() != 9 {
		t.Fatalf("clock = %v, want 9", e.Now())
	}
	e.At(9, func() { order = append(order, "d"); e.Stop() })
	e.At(9, func() { order = append(order, "e") })
	e.Run()        // runs d, stops with e still immediate
	e.RunUntil(20) // deadline jump: e must run first, not be stranded
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want 20", e.Now())
	}
	want := "a b c d e"
	got := ""
	for i, s := range order {
		if i > 0 {
			got += " "
		}
		got += s
	}
	if got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

// Property: events always execute in non-decreasing time order, whatever the
// schedule.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var times []Time
		for _, d := range delays {
			e.At(Time(d), func() { times = append(times, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
