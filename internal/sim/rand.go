package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random source
// (SplitMix64-based). It is not safe for concurrent use, which is fine: the
// engine is single-threaded by design.
type Rand struct {
	state uint64
}

// NewRand returns a source seeded with seed.
func NewRand(seed int64) *Rand {
	r := &Rand{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x1234567899ABCDEF}
	// Warm up so that nearby seeds diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box–Muller).
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)); useful for long-tailed latency
// distributions like NIC firmware processing times.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Zipf returns values in [0, n) with a Zipfian distribution of exponent
// s>1 (s<=1 is clamped): rank 0 is the hottest. A precomputed inverse-CDF
// table is too costly for large n, so we invert the continuous density
// p(k) ∝ k^-s over [1, n] in closed form:
//
//	k = (1 + u·(n^(1-s) − 1))^(1/(1-s))
//
// which is rejection-free and allocation-free.
func (r *Rand) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	if s <= 1 {
		s = 1.0001
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	k := math.Pow(1+u*(math.Pow(float64(n), 1-s)-1), 1/(1-s))
	x := int(k) - 1
	if x < 0 {
		x = 0
	}
	if x >= n {
		x = n - 1
	}
	return x
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Split returns a new independent source derived from this one, so that
// subsystems can draw random numbers without perturbing each other's
// sequences.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64() ^ 0xD1B54A32D192ED03}
}
