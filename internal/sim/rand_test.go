package sim

import "testing"

func TestZipfBounds(t *testing.T) {
	r := NewRand(11)
	for _, n := range []int{1, 2, 3, 64, 4096} {
		for i := 0; i < 5000; i++ {
			x := r.Zipf(n, 1.1)
			if x < 0 || x >= n {
				t.Fatalf("Zipf(%d, 1.1) = %d out of [0, %d)", n, x, n)
			}
		}
	}
	if x := r.Zipf(1, 1.1); x != 0 {
		t.Fatalf("Zipf(1, ·) = %d, want 0", x)
	}
	if x := r.Zipf(0, 1.1); x != 0 {
		t.Fatalf("Zipf(0, ·) = %d, want 0", x)
	}
	if x := r.Zipf(-3, 1.1); x != 0 {
		t.Fatalf("Zipf(-3, ·) = %d, want 0", x)
	}
}

func TestZipfExponentClamp(t *testing.T) {
	// s <= 1 is clamped rather than producing NaN/panic; draws must stay
	// in range and still be usable.
	r := NewRand(12)
	for _, s := range []float64{1.0, 0.5, 0, -2} {
		for i := 0; i < 2000; i++ {
			x := r.Zipf(100, s)
			if x < 0 || x >= 100 {
				t.Fatalf("Zipf(100, %g) = %d out of range", s, x)
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Rank 0 must dominate, and a larger exponent must concentrate more
	// mass on the low ranks.
	const n, draws = 1000, 200_000
	headMass := func(s float64) float64 {
		r := NewRand(13)
		head := 0
		for i := 0; i < draws; i++ {
			if r.Zipf(n, s) < 10 {
				head++
			}
		}
		return float64(head) / draws
	}
	mild, steep := headMass(1.1), headMass(1.5)
	if mild < 0.3 {
		t.Fatalf("Zipf(·, 1.1) head-10 mass = %.3f, want >= 0.3", mild)
	}
	if steep <= mild {
		t.Fatalf("steeper exponent did not concentrate: s=1.5 mass %.3f <= s=1.1 mass %.3f", steep, mild)
	}

	// Frequency must be non-increasing in rank on a coarse scale.
	r := NewRand(14)
	var buckets [4]int // ranks [0,10), [10,100), [100,400), [400,1000)
	for i := 0; i < draws; i++ {
		switch x := r.Zipf(n, 1.2); {
		case x < 10:
			buckets[0]++
		case x < 100:
			buckets[1]++
		case x < 400:
			buckets[2]++
		default:
			buckets[3]++
		}
	}
	if buckets[0] <= buckets[3] {
		t.Fatalf("head ranks drawn no more often than tail: %v", buckets)
	}
}

func TestZipfSameSeedDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 10_000; i++ {
		if x, y := a.Zipf(512, 1.1), b.Zipf(512, 1.1); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
	// Split streams are deterministic too, and independent of each other.
	a, b = NewRand(99).Split(), NewRand(99).Split()
	for i := 0; i < 1000; i++ {
		if x, y := a.Zipf(512, 1.1), b.Zipf(512, 1.1); x != y {
			t.Fatalf("split draw %d diverged: %d vs %d", i, x, y)
		}
	}
}
