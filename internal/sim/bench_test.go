package sim

import "testing"

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(10, step)
		}
	}
	b.ResetTimer()
	e.After(1, step)
	e.Run()
}

func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := e.At(Time(i+1), func() {})
		e.Cancel(id)
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkHistogramAdd(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Add(float64(i & 1023))
	}
}
