package sim

import "testing"

func BenchmarkEngineEventThroughput(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(10, step)
		}
	}
	b.ResetTimer()
	e.After(1, step)
	e.Run()
}

// BenchmarkEngineImmediate measures the After(0) fast path: run-this-next
// scheduling bypasses the heap entirely.
func BenchmarkEngineImmediate(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(0, step)
		}
	}
	b.ResetTimer()
	e.After(0, step)
	e.Run()
}

func BenchmarkEngineScheduleCancel(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := e.At(Time(i+1), func() {})
		e.Cancel(id)
	}
}

// BenchmarkEngineTimerChurn mimics TCP retransmission timers: a window of
// far-future timers that are almost always cancelled (acked) before firing,
// with a live event chain driving the clock. This is the pattern lazy
// deletion and heap compaction exist for.
func BenchmarkEngineTimerChurn(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	const window = 256
	var timers [window]EventID
	n := 0
	var step func()
	step = func() {
		slot := n % window
		e.Cancel(timers[slot])
		timers[slot] = e.After(1_000_000, func() {})
		n++
		if n < b.N {
			e.After(10, step)
		}
	}
	b.ResetTimer()
	e.After(1, step)
	e.Run()
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkHistogramAdd(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Add(float64(i & 1023))
	}
}

// TestEngineSteadyStateAllocs gates the free-list contract the same way
// TestTracerDisabledNoAlloc gates the tracer: once the pool and queue slices
// are warm, scheduling, cancelling, and running events must not allocate.
func TestEngineSteadyStateAllocs(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	cycle := func() {
		e.After(5, fn)
		e.After(0, fn)
		id := e.After(100, fn)
		e.Cancel(id)
		e.Run()
	}
	for i := 0; i < 100; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(1000, cycle); allocs != 0 {
		t.Fatalf("steady-state schedule/cancel/run allocates %.1f per cycle, want 0", allocs)
	}
}

// TestEngineTimerChurnAllocs runs the retransmission-timer pattern under
// AllocsPerRun: cancellations must be absorbed by lazy deletion and the
// pool, not fresh allocations.
func TestEngineTimerChurnAllocs(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	const window = 128
	var timers [window]EventID
	n := 0
	cycle := func() {
		slot := n % window
		e.Cancel(timers[slot])
		timers[slot] = e.After(1_000_000, fn)
		n++
		e.After(1, fn)
		e.RunUntil(e.Now() + 2)
	}
	for i := 0; i < 4*window; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(1000, cycle); allocs != 0 {
		t.Fatalf("timer churn allocates %.1f per cycle, want 0", allocs)
	}
}
