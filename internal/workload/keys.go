package workload

import "fmt"

// KeyTable interns the canonical key names ("key-0000042"). The historical
// generator formatted a key string per op; at 10^5 logical clients that
// Sprintf dominates the allocation profile, so the table formats each name
// once and the steady-state path indexes a slice.
//
// The table grows lazily toward the highest index requested; with Zipf
// popularity the hot head is built in the first few ops and the cold tail
// only as drawn. One table per generator owner (service or sweep) — it is
// single-writer state on that owner's engine, like every other simulation
// structure.
type KeyTable struct {
	names []string
}

// Name returns the interned name for key index k, formatting it (and any
// gap below it) on first use.
func (t *KeyTable) Name(k int) string {
	for len(t.names) <= k {
		t.names = append(t.names, fmt.Sprintf("key-%07d", len(t.names)))
	}
	return t.names[k]
}

// Interned reports how many names the table currently holds.
func (t *KeyTable) Interned() int { return len(t.names) }
