package workload

import (
	"testing"

	"npf/internal/sim"
)

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults(4096)
	if c.Tenant != "default" || c.Clients != 8 || c.TargetOps != 2000 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.Keys != 4096 {
		t.Fatalf("Keys default should come from caller: %d", c.Keys)
	}
	if c.GetRatio != 0.9 || c.ZipfS != 1.1 || c.ArrivalRate != 20_000 {
		t.Fatalf("unexpected distribution defaults: %+v", c)
	}
	if c.RequestTimeout != 50*sim.Millisecond {
		t.Fatalf("unexpected timeout default: %v", c.RequestTimeout)
	}
	// Explicit values survive.
	c2 := Config{Tenant: "t", Clients: 3, Keys: 7}.WithDefaults(4096)
	if c2.Tenant != "t" || c2.Clients != 3 || c2.Keys != 7 {
		t.Fatalf("explicit fields overwritten: %+v", c2)
	}
}

func TestSourceDeterminism(t *testing.T) {
	cfg := Config{OpenLoop: true}.WithDefaults(1000)
	draw := func() (gets int, keys []int, gaps []sim.Time) {
		eng := sim.NewEngine(42)
		src := NewSource(cfg, eng.Rand().Split())
		for i := 0; i < 200; i++ {
			g, k := src.NextOp()
			if g {
				gets++
			}
			keys = append(keys, k)
			gaps = append(gaps, src.NextArrival(sim.Time(i)*sim.Microsecond))
		}
		return gets, keys, gaps
	}
	g1, k1, a1 := draw()
	g2, k2, a2 := draw()
	if g1 != g2 {
		t.Fatalf("get count diverged: %d vs %d", g1, g2)
	}
	for i := range k1 {
		if k1[i] != k2[i] || a1[i] != a2[i] {
			t.Fatalf("draw %d diverged: key %d/%d gap %v/%v", i, k1[i], k2[i], a1[i], a2[i])
		}
	}
	// Zipf skew: the head must dominate a 0-indexed rank draw.
	head := 0
	for _, k := range k1 {
		if k < 10 {
			head++
		}
	}
	if head < len(k1)/3 {
		t.Fatalf("Zipf head too cold: %d/%d draws in top-10", head, len(k1))
	}
}

func TestCurveZeroIsConstant(t *testing.T) {
	var c Curve
	for _, at := range []sim.Time{0, sim.Microsecond, sim.Second, 37 * sim.Millisecond} {
		if m := c.Mult(at); m != 1 {
			t.Fatalf("zero curve Mult(%v) = %v, want 1", at, m)
		}
	}
}

func TestCurveDiurnal(t *testing.T) {
	c := Curve{Diurnal: 0.5, Period: sim.Second}
	trough := c.Mult(0)
	peak := c.Mult(sim.Second / 2)
	if trough != 0.75 {
		t.Fatalf("trough = %v, want 0.75", trough)
	}
	if peak != 1.25 {
		t.Fatalf("peak = %v, want 1.25", peak)
	}
	// Periodicity.
	if c.Mult(sim.Second/4) != c.Mult(sim.Second+sim.Second/4) {
		t.Fatal("curve not periodic")
	}
}

func TestCurveFlashCrowd(t *testing.T) {
	c := Curve{FlashAt: sim.Millisecond, FlashFor: sim.Millisecond, FlashMult: 8}
	if m := c.Mult(0); m != 1 {
		t.Fatalf("before flash: %v", m)
	}
	if m := c.Mult(sim.Millisecond + sim.Microsecond); m != 8 {
		t.Fatalf("inside flash: %v", m)
	}
	if m := c.Mult(2 * sim.Millisecond); m != 1 {
		t.Fatalf("after flash: %v", m)
	}
	// Composition with diurnal.
	c.Diurnal, c.Period = 0.5, 4*sim.Millisecond
	in := c.Mult(sim.Millisecond + sim.Microsecond)
	if in <= 6 || in >= 10.001 {
		t.Fatalf("composed multiplier out of range: %v", in)
	}
}

func TestKeyTableInterning(t *testing.T) {
	var kt KeyTable
	if got := kt.Name(3); got != "key-0000003" {
		t.Fatalf("Name(3) = %q", got)
	}
	if kt.Interned() != 4 {
		t.Fatalf("Interned = %d, want 4", kt.Interned())
	}
	// Steady state: no growth, no allocation.
	allocs := testing.AllocsPerRun(100, func() {
		if kt.Name(2) != "key-0000002" {
			t.Fatal("wrong name")
		}
	})
	if allocs != 0 {
		t.Fatalf("interned lookup allocates: %v allocs/op", allocs)
	}
}

// TestSourceDrawAllocs is the runtime side of the //npf:noalloc fence on
// NextOp/NextArrival: both draws run per simulated op and must be
// allocation-free at steady state.
func TestSourceDrawAllocs(t *testing.T) {
	cfg := Config{OpenLoop: true}.WithDefaults(1000)
	eng := sim.NewEngine(7)
	src := NewSource(cfg, eng.Rand().Split())
	var sink int
	allocs := testing.AllocsPerRun(200, func() {
		g, k := src.NextOp()
		if g {
			sink += k
		}
		sink += int(src.NextArrival(3 * sim.Microsecond))
	})
	if allocs != 0 {
		t.Fatalf("Source draws allocate: %v allocs/op", allocs)
	}
}
