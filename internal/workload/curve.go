package workload

import "npf/internal/sim"

// Curve shapes an open-loop arrival rate over virtual time. It is a pure
// function of the virtual clock — no RNG, no wall time — so two runs of
// the same seed see byte-identical arrival processes, and the same curve
// replays identically on any engine/thread layout.
//
// Two effects compose multiplicatively:
//
//   - a diurnal swing: a triangle wave of relative amplitude Diurnal over
//     Period (trough at the period boundary, peak mid-period). A triangle
//     rather than a sinusoid keeps the arithmetic exactly reproducible
//     across platforms with no libm in the hot path.
//   - a flash crowd: between FlashAt and FlashAt+FlashFor the rate is
//     multiplied by FlashMult (the "everyone opens the app at once"
//     spike).
//
// The zero Curve is a constant rate (Mult == 1 everywhere).
type Curve struct {
	// Diurnal is the peak-to-trough relative amplitude in [0, 1]; the
	// multiplier swings across [1-Diurnal/2, 1+Diurnal/2], mean 1.
	Diurnal float64
	// Period is one simulated "day". Required for a diurnal swing.
	Period sim.Time
	// Phase offsets where in the day the workload starts.
	Phase sim.Time

	// FlashAt / FlashFor bound the flash-crowd window; FlashMult (> 0)
	// scales the rate inside it.
	FlashAt   sim.Time
	FlashFor  sim.Time
	FlashMult float64
}

// Mult returns the rate multiplier at virtual time t. Always > 0 for
// Diurnal in [0, 1] and FlashMult > 0.
func (c Curve) Mult(t sim.Time) float64 {
	m := 1.0
	if c.Diurnal > 0 && c.Period > 0 {
		pos := (t + c.Phase) % c.Period
		if pos < 0 {
			pos += c.Period
		}
		// Triangle in [0, 1]: 0 at the boundaries, 1 mid-period.
		frac := float64(pos) / float64(c.Period)
		tri := 1 - abs(2*frac-1)
		m *= 1 - c.Diurnal/2 + c.Diurnal*tri
	}
	if c.FlashMult > 0 && c.FlashFor > 0 && t >= c.FlashAt && t < c.FlashAt+c.FlashFor {
		m *= c.FlashMult
	}
	return m
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
