// Package workload is the shared load-generator layer: the Zipf-skewed
// open/closed-loop op sources that were private to internal/kv, extracted
// so the million-client scale-out sweep (internal/topo) and the KV service
// draw from one implementation.
//
// Everything here is deterministic and allocation-disciplined:
//
//   - Config carries the generator knobs (clients, target ops, get ratio,
//     key-space size and Zipf exponent, open/closed loop, arrival rate) plus
//     a Curve shaping the arrival rate over virtual time (diurnal swing,
//     flash crowd) — seeded draws only, so same-seed runs replay
//     byte-identically.
//   - Source is one logical client's draw stream over a split RNG. Its
//     methods never allocate; a Source embeds by value in swarm-client
//     structs so 10^5 clients cost one slice, not 10^5 heap objects.
//   - KeyTable interns the canonical "key-%07d" names so the steady-state
//     op path never formats strings.
package workload

import (
	"npf/internal/sim"
)

// Config sizes one tenant's load generator. The zero value is usable after
// WithDefaults; field semantics (and defaults) match the historical
// kv.WorkloadConfig, which is now an alias of this type.
type Config struct {
	// Tenant names the workload; per-tenant latency probes are published
	// under this name (default "default").
	Tenant string
	// Clients is the number of concurrent closed-loop clients (or
	// open-loop arrival streams) (default 8).
	Clients int
	// TargetOps is the total operation count across all clients (default
	// 2000). The workload completes when every op has a reply.
	TargetOps int
	// GetRatio is the fraction of gets (default 0.9, memcached-style).
	GetRatio float64
	// Keys is the key-space size; keys are drawn Zipf-distributed so a
	// hot head dominates (default: caller-provided, e.g. the KV service's
	// ExpectedKeys).
	Keys int
	// ZipfS is the Zipf exponent (default 1.1).
	ZipfS float64
	// OpenLoop issues ops on an exponential arrival clock regardless of
	// completions (coordinated-omission-free); the default closed loop
	// keeps one op outstanding per client.
	OpenLoop bool
	// ArrivalRate is ops/sec per client in open-loop mode (default 20k),
	// before Curve modulation.
	ArrivalRate float64
	// Curve shapes ArrivalRate over virtual time (diurnal swing, flash
	// crowd). The zero Curve is a constant rate.
	Curve Curve
	// FrontCacheEntries bounds the host-level hot-key front cache; 0
	// disables it. Gets hitting the cache complete locally.
	FrontCacheEntries int
	// RequestTimeout retries an op that got no reply — lost to a downed
	// link, a dropped datagram, or a deposed primary (default 50ms).
	RequestTimeout sim.Time
	// Prepopulate bulk-loads every key before traffic, so gets hit and
	// arenas start resident.
	Prepopulate bool
}

// WithDefaults fills zero fields with the documented defaults.
// defaultKeys seeds the key-space size when Keys is zero (the KV service
// passes its ExpectedKeys; the scale-out sweep passes its own).
func (c Config) WithDefaults(defaultKeys int) Config {
	if c.Tenant == "" {
		c.Tenant = "default"
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.TargetOps == 0 {
		c.TargetOps = 2000
	}
	if c.GetRatio == 0 {
		c.GetRatio = 0.9
	}
	if c.Keys == 0 {
		c.Keys = defaultKeys
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.ArrivalRate == 0 {
		c.ArrivalRate = 20_000
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 50 * sim.Millisecond
	}
	return c
}

// Source is one logical client's deterministic draw stream: op mix, key
// popularity, and open-loop arrival gaps. It holds only a split RNG and
// the distribution parameters, so it embeds by value in per-client structs
// and its methods never allocate.
type Source struct {
	rng      *sim.Rand
	getRatio float64
	keys     int
	zipfS    float64
	rate     float64 // per-client base arrival rate, ops/sec
	curve    Curve
}

// NewSource builds a Source drawing from rng (split one RNG per client, in
// construction order, so clients are order-independent). cfg must already
// have defaults applied.
func NewSource(cfg Config, rng *sim.Rand) Source {
	return Source{
		rng:      rng,
		getRatio: cfg.GetRatio,
		keys:     cfg.Keys,
		zipfS:    cfg.ZipfS,
		rate:     cfg.ArrivalRate,
		curve:    cfg.Curve,
	}
}

// NextOp draws one operation: whether it is a get, and the Zipf-ranked key
// index. The draw order (Bernoulli, then Zipf) is the historical kv order,
// so extracting the generator did not change any seeded run. Runs on every
// simulated op, so it is fenced allocation-free (and gated at runtime by
// TestSourceDrawAllocs).
//
//npf:noalloc
func (s *Source) NextOp() (get bool, key int) {
	get = s.rng.Bernoulli(s.getRatio)
	key = s.rng.Zipf(s.keys, s.zipfS)
	return get, key
}

// NextArrival draws the open-loop inter-arrival gap at virtual time now,
// with the configured curve modulating the base rate. The +1ns floor keeps
// gaps strictly positive. Runs on every open-loop arrival, so it is fenced
// allocation-free like NextOp.
//
//npf:noalloc
func (s *Source) NextArrival(now sim.Time) sim.Time {
	rate := s.rate * s.curve.Mult(now)
	gap := s.rng.Exp(1e9 / rate) // mean gap in ns
	return sim.Time(gap) + sim.Nanosecond
}

// Rand exposes the source's RNG for draws beyond the canned ones (e.g.
// value-size jitter). Deterministic: the RNG is the client's split stream.
func (s *Source) Rand() *sim.Rand { return s.rng }
