package topo

import (
	"fmt"

	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/workload"
)

// Transport selects the sweep's wire protocol.
type Transport int

const (
	// TransportEth sends raw Ethernet frames into per-tenant NIC receive
	// rings — the paper's Figure 6 receive path, at fleet scale.
	TransportEth Transport = iota
	// TransportUD sends InfiniBand unreliable datagrams with per-WQE
	// address handles: one QP per swarm host reaches every server, so the
	// fleet needs O(hosts) QPs, not O(hosts^2) connections (§4: the NPF
	// machinery "applies also to UD").
	TransportUD
)

func (t Transport) String() string {
	if t == TransportUD {
		return "ud"
	}
	return "eth"
}

// RegPolicy is a tenant's memory-registration strategy — the §2.2 spectrum
// the sweep compares fleet-wide.
type RegPolicy int

const (
	// RegODP relies on NIC page faults: nothing pinned, reclaim allowed,
	// faulting receives parked in the backup ring (Figure 6).
	RegODP RegPolicy = iota
	// RegPinDown uses a bounded pin-down cache over the arena; rings stay
	// on ODP.
	RegPinDown
	// RegPinned pins rings and arena up front: no faults, no reclaim.
	RegPinned
)

func (r RegPolicy) String() string {
	switch r {
	case RegPinDown:
		return "pindown"
	case RegPinned:
		return "pinned"
	default:
		return "odp"
	}
}

// TenantSpec is one tenant: a workload shape plus a registration policy and
// a per-server memory budget.
type TenantSpec struct {
	// Workload shapes the tenant's load (clients, ops, key popularity,
	// open/closed loop, arrival curve). Defaults via workload.Config.
	Workload workload.Config
	// Reg selects the registration policy.
	Reg RegPolicy
	// Servers bounds how many of the sweep's servers host this tenant
	// (0 = all). Rings, QPs, and arenas exist only on those servers — the
	// lazy-allocation half of cheap per-host state.
	Servers int
	// ArenaBytes sizes the tenant's value arena per server (default: two
	// slots per expected key on this server, page-rounded).
	ArenaBytes int64
	// GroupLimitBytes caps the tenant's per-server memory group (default:
	// arena + ring + one page of slack). Reclaim waves squeeze it.
	GroupLimitBytes int64
	// PinCacheBytes bounds the pin-down cache (RegPinDown only; default
	// half the arena).
	PinCacheBytes int64
}

// SweepConfig sizes a ClusterSweep.
type SweepConfig struct {
	// Servers and SwarmHosts partition the fleet (defaults 16 and 48).
	Servers    int
	SwarmHosts int
	// HostsPerRack sets the topology granularity (default 16).
	HostsPerRack int
	// Transport selects Ethernet rings or IB UD datagrams.
	Transport Transport
	// RingSize is each server tenant's receive ring depth (default 128).
	RingSize int
	// ServerRAM and SwarmRAM size host memory (defaults 512 MiB / 64 MiB).
	ServerRAM int64
	SwarmRAM  int64
	// ValueBytes is the stored value size (default 1024; must fit a UD
	// datagram alongside the request header).
	ValueBytes int
	// ServiceTime is the server CPU cost per op before memory costs
	// (default 2 µs).
	ServiceTime sim.Time
	// MaxAttempts bounds per-op retransmissions after timeouts (default 6);
	// an op that exhausts them is counted lost, not retried forever.
	MaxAttempts int
	// Tenants lists the workloads; nil gets the canonical three-tenant
	// odp/pindown/pinned comparison.
	Tenants []TenantSpec
	// ReclaimWaves > 0 schedules that many fleet-wide memory-pressure
	// waves, each multiplying every tenant group limit by 3/4 (floored at
	// ReclaimFloorBytes), one every WaveEvery.
	ReclaimWaves      int
	WaveEvery         sim.Time
	ReclaimFloorBytes int64
}

const (
	reqHeaderBytes = 64
	repHeaderBytes = 64
	slotAlign      = 256
)

// withDefaults fills the zero config; it does not validate.
func (c SweepConfig) withDefaults() SweepConfig {
	if c.Servers == 0 {
		c.Servers = 16
	}
	if c.SwarmHosts == 0 {
		c.SwarmHosts = 48
	}
	if c.HostsPerRack == 0 {
		c.HostsPerRack = 16
	}
	if c.RingSize == 0 {
		c.RingSize = 128
	}
	if c.ServerRAM == 0 {
		c.ServerRAM = 512 << 20
	}
	if c.SwarmRAM == 0 {
		c.SwarmRAM = 64 << 20
	}
	if c.ValueBytes == 0 {
		c.ValueBytes = 1024
	}
	if c.ServiceTime == 0 {
		c.ServiceTime = 2 * sim.Microsecond
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 6
	}
	if c.WaveEvery == 0 {
		c.WaveEvery = 20 * sim.Millisecond
	}
	if len(c.Tenants) == 0 {
		c.Tenants = []TenantSpec{
			{Workload: workload.Config{Tenant: "odp"}, Reg: RegODP},
			{Workload: workload.Config{Tenant: "pindown"}, Reg: RegPinDown},
			{Workload: workload.Config{Tenant: "pinned"}, Reg: RegPinned},
		}
	}
	for i := range c.Tenants {
		c.Tenants[i].Workload = c.Tenants[i].Workload.WithDefaults(4096)
	}
	return c
}

// reqMsg is one request on the wire. It is immutable once sent: the server
// reads it and replies with a fresh repMsg, so no struct is ever written
// from two partitions.
type reqMsg struct {
	id     uint64 // swarm-host-local op id (reissue guard)
	swarm  int32  // swarm host index, the reply address
	client int32  // client index on that host
	tenant int32
	key    int32
	get    bool
}

// repMsg is one reply on the wire (immutable once sent).
type repMsg struct {
	id     uint64
	client int32
	hit    bool
}

// tenantState is the fleet-wide view of one tenant.
type tenantState struct {
	idx     int32
	spec    TenantSpec
	cfg     workload.Config
	servers []int32 // server indices hosting this tenant
	// keysPerServer shards the key space: key k lives on
	// servers[mix64(k) % len], at slot (k / len(servers)) % slots.
	keysPerServer int
}

// Sweep is one instantiated ClusterSweep: the fleet, its tenants, and the
// run's counters. Build with New, arm with Start, drive the engine(s), then
// read Result.
type Sweep struct {
	cfg   SweepConfig
	eng   *sim.Engine // partition-0 engine
	net   *fabric.Network
	group *sim.Group // nil single-engine
	topo  Topology

	tenants []*tenantState
	servers []*serverHost
	swarms  []*SwarmHost

	// serverNode / serverFlow / serverUD are the immutable routing tables
	// swarm hosts read from any partition: [server] and [server][tenant].
	serverNode []fabric.NodeID
	serverFlow [][]fabric.FlowID
	serverUD   [][]rc.UDRemote

	started bool
}

// New builds the fleet on net. eng must be the engine hosts on partition 0
// run on (the group's engine 0 in PDES mode). It returns a configuration
// error — not a mid-run panic — for inconsistent sizing.
func New(eng *sim.Engine, net *fabric.Network, cfg SweepConfig) (*Sweep, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Sweep{cfg: cfg, eng: eng, net: net, group: net.Group()}
	if s.group != nil && s.group.Engine(0) != eng {
		return nil, fmt.Errorf("topo: eng must be the group's partition-0 engine")
	}
	total := cfg.Servers + cfg.SwarmHosts
	s.topo = Topology{Hosts: total, HostsPerRack: cfg.HostsPerRack}

	s.buildTenants()
	s.buildHosts()
	s.buildServerTenants()
	s.buildClients()
	return s, nil
}

func (c SweepConfig) validate() error {
	if c.Servers < 1 || c.SwarmHosts < 1 {
		return fmt.Errorf("topo: need at least one server and one swarm host (got %d/%d)", c.Servers, c.SwarmHosts)
	}
	if c.ValueBytes < 0 || repHeaderBytes+c.ValueBytes > mem.PageSize {
		return fmt.Errorf("topo: ValueBytes %d does not fit a one-page datagram buffer", c.ValueBytes)
	}
	if c.RingSize < 8 {
		return fmt.Errorf("topo: RingSize %d too small (minimum 8)", c.RingSize)
	}
	for i, t := range c.Tenants {
		if t.Servers < 0 || t.Servers > c.Servers {
			return fmt.Errorf("topo: tenant %d places on %d servers, fleet has %d", i, t.Servers, c.Servers)
		}
		if t.Reg != RegODP && t.Reg != RegPinDown && t.Reg != RegPinned {
			return fmt.Errorf("topo: tenant %d has unknown registration policy %d", i, t.Reg)
		}
		if t.Workload.Clients < 1 {
			return fmt.Errorf("topo: tenant %d has no clients", i)
		}
	}
	return nil
}

// engFor returns the engine hosting partition p.
func (s *Sweep) engFor(p int) *sim.Engine {
	if s.group == nil {
		return s.eng
	}
	return s.group.Engine(p)
}

func (s *Sweep) parts() int {
	if s.group == nil {
		return 1
	}
	return s.group.Parts()
}

// buildTenants resolves each tenant's server placement: a strided subset so
// tenants spread across racks, computed before any host exists because
// construction must not depend on map or arrival order.
func (s *Sweep) buildTenants() {
	for i, spec := range s.cfg.Tenants {
		t := &tenantState{idx: int32(i), spec: spec, cfg: spec.Workload}
		m := spec.Servers
		if m == 0 {
			m = s.cfg.Servers
		}
		start := (i * 7) % s.cfg.Servers
		for j := 0; j < m; j++ {
			t.servers = append(t.servers, int32((start+j*s.cfg.Servers/m)%s.cfg.Servers))
		}
		t.keysPerServer = (t.cfg.Keys + m - 1) / m
		s.tenants = append(s.tenants, t)
	}
}

// buildHosts lays the fleet out across the topology. Server hosts are
// spread evenly over the host index space (hence over racks and
// partitions); swarm hosts fill the gaps. Hosts are built in host-index
// order so fabric attach order — and every split RNG stream — is fixed.
func (s *Sweep) buildHosts() {
	total := s.cfg.Servers + s.cfg.SwarmHosts
	isServer := make([]bool, total)
	for i := 0; i < s.cfg.Servers; i++ {
		isServer[i*total/s.cfg.Servers] = true
	}
	parts := s.parts()
	s.serverNode = make([]fabric.NodeID, s.cfg.Servers)
	s.serverFlow = make([][]fabric.FlowID, s.cfg.Servers)
	s.serverUD = make([][]rc.UDRemote, s.cfg.Servers)
	for h := 0; h < total; h++ {
		eng := s.engFor(s.topo.Partition(h, parts))
		if isServer[h] {
			idx := len(s.servers)
			srv := s.newServerHost(idx, eng)
			s.servers = append(s.servers, srv)
			s.serverNode[idx] = srv.node()
			s.serverFlow[idx] = make([]fabric.FlowID, len(s.tenants))
			s.serverUD[idx] = make([]rc.UDRemote, len(s.tenants))
		} else {
			s.swarms = append(s.swarms, s.newSwarmHost(int32(len(s.swarms)), eng))
		}
	}
}

// buildServerTenants materialises per-(server, tenant) state — ring, QP,
// arena, group — only where the tenant is placed (lazy allocation: a
// thousand-host fleet does not pay for rings it never receives on).
func (s *Sweep) buildServerTenants() {
	for _, t := range s.tenants {
		for _, si := range t.servers {
			st := s.servers[si].addTenant(t)
			if s.cfg.Transport == TransportEth {
				s.serverFlow[si][t.idx] = st.ch.Flow
			} else {
				s.serverUD[si][t.idx] = st.qp.Remote()
			}
		}
	}
}

// buildClients deals each tenant's logical clients round-robin over the
// swarm hosts, splitting one RNG per client in construction order and
// spreading TargetOps across the tenant's clients.
func (s *Sweep) buildClients() {
	for _, t := range s.tenants {
		per := t.cfg.TargetOps / t.cfg.Clients
		extra := t.cfg.TargetOps % t.cfg.Clients
		for i := 0; i < t.cfg.Clients; i++ {
			sh := s.swarms[i%len(s.swarms)]
			quota := per
			if i < extra {
				quota++
			}
			sh.addClient(t, int32(quota))
		}
	}
}

// pickServer routes a key to its tenant shard's server.
func (s *Sweep) pickServer(t *tenantState, key int32) int32 {
	return t.servers[int(mix64(uint64(key))%uint64(len(t.servers)))]
}

// slotOf maps a key to its arena slot on its server: dividing out the
// server count keeps Zipf-hot keys on the arena's hot head, so the group
// LRU sees a real working set.
func (t *tenantState) slotOf(key int32, slots int64) int64 {
	return (int64(key) / int64(len(t.servers))) % slots
}

// Start arms the load: closed-loop clients stagger in, open-loop clients
// draw their first arrival, and reclaim waves are scheduled. Call after
// New and before running the engines; extra calls are no-ops.
func (s *Sweep) Start() {
	if s.started {
		return
	}
	s.started = true
	for _, sh := range s.swarms {
		sh.start()
	}
	if s.cfg.ReclaimWaves > 0 {
		for _, srv := range s.servers {
			srv.scheduleWaves(s.cfg.ReclaimWaves, s.cfg.WaveEvery, s.cfg.ReclaimFloorBytes)
		}
	}
}

// Run starts the sweep (if not already started) and drives the simulation
// to quiescence, returning the final virtual time.
func (s *Sweep) Run() sim.Time {
	if !s.started {
		s.Start()
	}
	if s.group != nil {
		return s.group.Run()
	}
	return s.eng.Run()
}

// Hosts reports the fleet size.
func (s *Sweep) Hosts() int { return len(s.servers) + len(s.swarms) }

// Clients reports the logical client count across all tenants.
func (s *Sweep) Clients() int {
	n := 0
	for _, t := range s.tenants {
		n += t.cfg.Clients
	}
	return n
}
