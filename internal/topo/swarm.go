package topo

import (
	"fmt"

	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/workload"
)

// SwarmHost multiplexes many logical clients over one fabric attachment —
// the cheap-per-host half of the scale-out story. On Ethernet a swarm host
// is just an endpoint (no NIC, no machine: the client side models load, the
// server side models the paper's mechanisms). On InfiniBand it carries a
// minimal pinned machine and ONE UD QP whose per-WQE address handles reach
// every server, so a fleet of a thousand hosts needs a thousand QPs rather
// than a connection mesh.
//
// Clients are value structs in one slice; each embeds a workload.Source
// (its split RNG and distribution parameters), so 10^5 clients cost one
// allocation plus their RNG states.
type SwarmHost struct {
	sweep *Sweep
	idx   int32
	eng   *sim.Engine
	node  fabric.NodeID

	// UD transport state (nil/zero on Ethernet).
	host    *Host
	qp      *rc.QP
	udAddr  rc.UDRemote
	sendBuf mem.VAddr
	rxBase  mem.VAddr
	rxDepth int64
	udHead  int64

	clients []swarmClient
	nextID  uint64
	// pending tracks open-loop ops (closed-loop state lives inline in the
	// client struct, which is also the allocation-gated hot path).
	pending map[uint64]pendingOp
	stats   []swStats // per tenant
}

// swarmClient is one logical client. Closed-loop op state is inline so the
// steady-state path allocates nothing per client.
type swarmClient struct {
	src      workload.Source
	tenant   int32
	quota    int32 // ops left to complete (closed) or to issue (open)
	curID    uint64
	attempts int8
	get      bool
	key      int32
	server   int32
	start    sim.Time
}

// pendingOp is one outstanding open-loop op.
type pendingOp struct {
	client   int32
	key      int32
	server   int32
	get      bool
	attempts int8
	start    sim.Time
}

// swStats is one (swarm host, tenant) stat block; per-tenant results merge
// these across hosts after the run, in host order.
type swStats struct {
	ops      uint64
	hits     uint64
	timeouts uint64
	lost     uint64
	lat      sim.Histogram
}

// swarmPort is the Ethernet swarm endpoint: replies only.
type swarmPort struct{ sh *SwarmHost }

func (p *swarmPort) Deliver(pkt *fabric.Packet) {
	p.sh.deliverReply(pkt.Payload.(*repMsg))
}

func (s *Sweep) newSwarmHost(idx int32, eng *sim.Engine) *SwarmHost {
	sh := &SwarmHost{
		sweep: s,
		idx:   idx,
		eng:   eng,
		stats: make([]swStats, len(s.cfg.Tenants)),
	}
	if s.cfg.Transport == TransportEth {
		sh.node = s.net.AttachOn(&swarmPort{sh}, eng)
		return sh
	}
	// UD: minimal pinned substrate — one machine, one address space (send
	// staging plus a reply ring), one QP.
	cfg := rc.DefaultConfig()
	spec := HostSpec{RAM: s.cfg.SwarmRAM, HCA: &cfg}
	sh.host = spec.Build(eng, s.net, nil, fmt.Sprintf("swarm-%04d", idx))
	sh.node = sh.host.HCA.Node
	sh.rxDepth = int64(s.cfg.RingSize)
	as := sh.host.M.NewAddressSpace(sh.host.Name+"-ud", nil)
	sh.sendBuf = as.MapBytes(mem.PageSize)
	sh.rxBase = as.MapBytes(sh.rxDepth * mem.PageSize)
	sh.qp = sh.host.HCA.NewQP(as)
	// Client-side buffers are conventional pinned verbs memory: the swarm
	// models load, the servers model registration policy.
	if _, err := core.StaticPinAll(as, sh.qp.Domain); err != nil {
		panic(fmt.Sprintf("topo: pinning %s: %v", sh.host.Name, err))
	}
	sh.udAddr = sh.qp.Remote()
	for i := int64(0); i < sh.rxDepth; i++ {
		sh.postUD(i)
	}
	sh.qp.OnRecv = func(c rc.RecvCompletion) {
		sh.udHead++
		sh.postUD(sh.udHead)
		sh.deliverReply(c.Payload.(*repMsg))
	}
	return sh
}

func (sh *SwarmHost) postUD(i int64) {
	sh.qp.PostRecv(rc.RecvWQE{
		ID:   i % sh.rxDepth,
		Addr: sh.rxBase + mem.VAddr((i%sh.rxDepth)*mem.PageSize),
		Len:  mem.PageSize,
	})
}

// addClient appends one logical client, splitting its RNG off this host's
// engine stream in construction order.
func (sh *SwarmHost) addClient(t *tenantState, quota int32) {
	sh.clients = append(sh.clients, swarmClient{
		src:    workload.NewSource(t.cfg, sh.eng.Rand().Split()),
		tenant: t.idx,
		quota:  quota,
	})
	if t.cfg.OpenLoop && sh.pending == nil {
		sh.pending = make(map[uint64]pendingOp)
	}
}

// start arms every client: closed-loop clients stagger in 3 µs apart (the
// historical kv ramp), open-loop clients draw their first arrival gap.
func (sh *SwarmHost) start() {
	for i := range sh.clients {
		ci := int32(i)
		c := &sh.clients[i]
		if c.quota <= 0 {
			continue
		}
		if sh.sweep.tenants[c.tenant].cfg.OpenLoop {
			sh.armArrival(ci)
		} else {
			sh.eng.After(sim.Time(i+1)*3*sim.Microsecond, func() { sh.issueClosed(ci) })
		}
	}
}

// retryDelay is the timeout for attempt number attempts (1-based):
// exponential backoff capped at 8x, with ±25% jitter drawn from the
// client's own stream. The jitter is what breaks fleet-wide retry
// synchronization — without it every client that lost a datagram to the
// same fault retries in the same instant, and on UD (no backup ring to
// park the storm) the synchronized bursts outrun fault resolution forever.
func (sh *SwarmHost) retryDelay(src *workload.Source, tenant int32, attempts int8) sim.Time {
	d := sh.sweep.tenants[tenant].cfg.RequestTimeout
	for i := int8(1); i < attempts && i < 4; i++ {
		d *= 2
	}
	return sim.Time(float64(d) * (0.75 + 0.5*src.Rand().Float64()))
}

// send puts one request on the wire (Ethernet frame into the server
// tenant's ring, or a UD datagram via the address handle).
func (sh *SwarmHost) send(req *reqMsg, server int32) {
	s := sh.sweep
	size := reqHeaderBytes
	if !req.get {
		size += s.cfg.ValueBytes
	}
	if sh.qp != nil {
		sh.qp.PostSendUDTo(s.serverUD[server][req.tenant],
			rc.SendWQE{Laddr: sh.sendBuf, Len: size, Payload: req})
		return
	}
	s.net.Send(&fabric.Packet{
		Src: sh.node, Dst: s.serverNode[server],
		Flow: s.serverFlow[server][req.tenant],
		Size: size, Payload: req,
	})
}

// --- closed loop -----------------------------------------------------------

func (sh *SwarmHost) issueClosed(ci int32) {
	c := &sh.clients[ci]
	t := sh.sweep.tenants[c.tenant]
	get, key := c.src.NextOp()
	sh.nextID++
	c.curID = sh.nextID
	c.get, c.key = get, int32(key)
	c.server = sh.sweep.pickServer(t, c.key)
	c.start = sh.eng.Now()
	c.attempts = 0
	sh.sendClosed(ci)
}

func (sh *SwarmHost) sendClosed(ci int32) {
	c := &sh.clients[ci]
	c.attempts++
	sh.send(&reqMsg{
		id: c.curID, swarm: sh.idx, client: ci,
		tenant: c.tenant, key: c.key, get: c.get,
	}, c.server)
	id := c.curID
	sh.eng.After(sh.retryDelay(&c.src, c.tenant, c.attempts), func() { sh.timeoutClosed(ci, id) })
}

func (sh *SwarmHost) timeoutClosed(ci int32, id uint64) {
	c := &sh.clients[ci]
	if c.curID != id {
		return // completed; stale timer
	}
	st := &sh.stats[c.tenant]
	if int(c.attempts) >= sh.sweep.cfg.MaxAttempts {
		st.lost++
		sh.completeClosed(ci, false)
		return
	}
	st.timeouts++
	sh.sendClosed(ci)
}

func (sh *SwarmHost) completeClosed(ci int32, hit bool) {
	c := &sh.clients[ci]
	c.curID = 0
	st := &sh.stats[c.tenant]
	st.ops++
	if hit {
		st.hits++
	}
	st.lat.AddTime(sh.eng.Now() - c.start)
	c.quota--
	if c.quota > 0 {
		sh.issueClosed(ci)
	}
}

// --- open loop -------------------------------------------------------------

func (sh *SwarmHost) armArrival(ci int32) {
	c := &sh.clients[ci]
	if c.quota <= 0 {
		return
	}
	sh.eng.After(c.src.NextArrival(sh.eng.Now()), func() { sh.arriveOpen(ci) })
}

func (sh *SwarmHost) arriveOpen(ci int32) {
	c := &sh.clients[ci]
	c.quota--
	t := sh.sweep.tenants[c.tenant]
	get, key := c.src.NextOp()
	sh.nextID++
	id := sh.nextID
	sh.pending[id] = pendingOp{
		client: ci, key: int32(key), get: get,
		server: sh.sweep.pickServer(t, int32(key)),
		start:  sh.eng.Now(),
	}
	sh.sendOpen(id)
	sh.armArrival(ci)
}

func (sh *SwarmHost) sendOpen(id uint64) {
	p := sh.pending[id]
	p.attempts++
	sh.pending[id] = p
	c := &sh.clients[p.client]
	sh.send(&reqMsg{
		id: id, swarm: sh.idx, client: p.client,
		tenant: c.tenant, key: p.key, get: p.get,
	}, p.server)
	sh.eng.After(sh.retryDelay(&c.src, c.tenant, p.attempts), func() { sh.timeoutOpen(id) })
}

func (sh *SwarmHost) timeoutOpen(id uint64) {
	p, ok := sh.pending[id]
	if !ok {
		return
	}
	tenant := sh.clients[p.client].tenant
	st := &sh.stats[tenant]
	if int(p.attempts) >= sh.sweep.cfg.MaxAttempts {
		delete(sh.pending, id)
		st.lost++
		st.ops++
		st.lat.AddTime(sh.eng.Now() - p.start)
		return
	}
	st.timeouts++
	sh.sendOpen(id)
}

// --- replies ---------------------------------------------------------------

func (sh *SwarmHost) deliverReply(rep *repMsg) {
	c := &sh.clients[rep.client]
	if sh.sweep.tenants[c.tenant].cfg.OpenLoop {
		p, ok := sh.pending[rep.id]
		if !ok {
			return // duplicate reply after a retransmitted request
		}
		delete(sh.pending, rep.id)
		st := &sh.stats[c.tenant]
		st.ops++
		if rep.hit {
			st.hits++
		}
		st.lat.AddTime(sh.eng.Now() - p.start)
		return
	}
	if rep.id != c.curID {
		return // duplicate or stale reply
	}
	sh.completeClosed(rep.client, rep.hit)
}
