package topo

import (
	"math"
	"unsafe"

	"npf/internal/sim"
)

// TenantResult aggregates one tenant across the fleet.
type TenantResult struct {
	Tenant   string
	Reg      string
	Clients  int
	Servers  int
	Ops      uint64
	Hits     uint64
	Timeouts uint64
	Lost     uint64
	Shed     uint64 // server-side ops failed on memory pressure
	P50us    float64
	P99us    float64
	P999us   float64
	MeanUs   float64
}

// Result is one sweep's deterministic outcome: same seed, same config →
// byte-identical Result on any engine budget or thread count.
type Result struct {
	Transport  string
	Hosts      int
	Servers    int
	SwarmHosts int
	Clients    int
	Ops        uint64
	Tenants    []TenantResult

	// Fleet-wide NPF-machinery activity.
	NPFs       uint64
	MajorNPFs  uint64
	Evictions  uint64 // tenant-group LRU evictions (reclaim)
	RxBackup   uint64 // Eth: receives parked in backup rings
	DropsFault uint64 // receives dropped on faults (Eth drop path + UD)
	PinHits    uint64 // pin-down cache hits
	PinMisses  uint64
	Waves      int // reclaim waves executed (summed over servers)

	// StateBytes is the fleet's modelled memory footprint (see
	// Sweep.StateBytes); BytesPerHost = StateBytes / Hosts is the
	// cheap-per-host-state gate.
	StateBytes   int64
	BytesPerHost int64

	FinalTime   sim.Time
	Fingerprint uint64
}

// Result computes the aggregate after the run. Folding is in fixed host
// and tenant order, so the Fingerprint is a byte-identity check across
// engine budgets and thread counts.
func (s *Sweep) Result() Result {
	r := Result{
		Transport:  s.cfg.Transport.String(),
		Hosts:      s.Hosts(),
		Servers:    len(s.servers),
		SwarmHosts: len(s.swarms),
		Clients:    s.Clients(),
	}

	for _, t := range s.tenants {
		tr := TenantResult{
			Tenant:  t.cfg.Tenant,
			Reg:     t.spec.Reg.String(),
			Clients: t.cfg.Clients,
			Servers: len(t.servers),
		}
		var lat sim.Histogram
		for _, sh := range s.swarms {
			st := &sh.stats[t.idx]
			tr.Ops += st.ops
			tr.Hits += st.hits
			tr.Timeouts += st.timeouts
			tr.Lost += st.lost
			lat.Merge(&st.lat)
		}
		for _, si := range t.servers {
			tr.Shed += s.servers[si].tenants[t.idx].shed.N
		}
		if lat.Count() > 0 {
			tr.P50us = lat.Percentile(50)
			tr.P99us = lat.Percentile(99)
			tr.P999us = lat.Percentile(99.9)
			tr.MeanUs = lat.Mean()
		}
		r.Ops += tr.Ops
		r.Tenants = append(r.Tenants, tr)
	}

	for _, srv := range s.servers {
		r.NPFs += srv.host.Drv.NPFs.N
		r.MajorNPFs += srv.host.Drv.MajorNPFs.N
		r.Waves += srv.waves
		if srv.host.Dev != nil {
			r.RxBackup += srv.host.Dev.RxToBackup.N
			r.DropsFault += srv.host.Dev.RxDroppedFault.N
		}
		if srv.host.HCA != nil {
			r.DropsFault += srv.host.HCA.UDDropsFault.N
		}
		for _, st := range srv.tenants {
			if st == nil {
				continue
			}
			r.Evictions += st.group.Evictions.N
			if st.pdc != nil {
				r.PinHits += st.pdc.Hits.N
				r.PinMisses += st.pdc.Misses.N
			}
		}
	}

	r.StateBytes = s.StateBytes()
	r.BytesPerHost = r.StateBytes / int64(r.Hosts)
	r.FinalTime = s.finalTime()
	r.Fingerprint = r.fingerprint()
	return r
}

func (s *Sweep) finalTime() sim.Time {
	t := s.eng.Now()
	if s.group != nil {
		for _, e := range s.group.Engines() {
			if e.Now() > t {
				t = e.Now()
			}
		}
	}
	return t
}

// fingerprint folds the result into one FNV-1a word — the byte-identity
// digest determinism tests and the npfstat gate compare.
func (r *Result) fingerprint() uint64 {
	h := uint64(14695981039346656037)
	fold := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	fold(uint64(r.Hosts))
	fold(uint64(r.Clients))
	fold(r.Ops)
	for _, t := range r.Tenants {
		fold(t.Ops)
		fold(t.Hits)
		fold(t.Timeouts)
		fold(t.Lost)
		fold(t.Shed)
		fold(math.Float64bits(t.P50us))
		fold(math.Float64bits(t.P99us))
		fold(math.Float64bits(t.MeanUs))
	}
	fold(r.NPFs)
	fold(r.MajorNPFs)
	fold(r.Evictions)
	fold(r.RxBackup)
	fold(r.DropsFault)
	fold(r.PinHits)
	fold(r.PinMisses)
	fold(uint64(r.StateBytes))
	fold(uint64(r.FinalTime))
	return h
}

// Model-state cost constants: what one modelled object is worth in the
// bytes-per-host accounting. These are deliberately fixed constants (plus
// unsafe.Sizeof of the real per-client structs) rather than Go heap
// measurements — heap numbers depend on GC timing and thread interleaving,
// and this metric must be byte-identical across runs.
const (
	pteModelBytes      = 96 // per materialised page-table entry
	ringSlotModelBytes = 64 // per receive descriptor / WQE
	pdcEntryModelBytes = 48 // per pinned page tracked by a pin-down cache
	serverBaseBytes    = 4096
	swarmEthBaseBytes  = 256
	swarmUDBaseBytes   = 2048
)

// StateBytes is the fleet's modelled memory footprint: interned page
// metadata (lazily materialised PTEs), ring slots, pin-down cache entries,
// per-tenant server state, and the per-client structs. Measurement
// apparatus (latency histograms) is excluded — the metric answers "what
// does one more host cost", not "what does observing it cost".
func (s *Sweep) StateBytes() int64 {
	var total int64
	for _, srv := range s.servers {
		total += serverBaseBytes
		for _, st := range srv.tenants {
			if st == nil {
				continue
			}
			total += int64(unsafe.Sizeof(*st))
			total += int64(len(st.present)) * 8
			total += int64(st.as.PTEs()) * pteModelBytes
			total += int64(s.cfg.RingSize) * ringSlotModelBytes
			if st.pdc != nil {
				total += st.pdc.PinnedBytes() / 4096 * pdcEntryModelBytes
			}
		}
	}
	for _, sh := range s.swarms {
		if sh.qp != nil {
			total += swarmUDBaseBytes
			total += sh.rxDepth * ringSlotModelBytes
			total += int64(sh.qp.AS.PTEs()) * pteModelBytes
		} else {
			total += swarmEthBaseBytes
		}
		total += int64(len(sh.clients)) * int64(unsafe.Sizeof(swarmClient{}))
		total += int64(len(sh.stats)) * 64
		total += int64(len(sh.pending)) * int64(unsafe.Sizeof(pendingOp{}))
	}
	return total
}
