// Package topo is the scale-out topology layer: it places O(10^3) simulated
// hosts into racks, maps racks onto PDES partitions, and runs a ClusterSweep
// — a fleet-wide benchmark that multiplexes O(10^5..10^6) logical clients
// over lightweight "swarm" hosts driving registration-policy tenants (ODP /
// pin-down cache / pinned) on a shared server pool. The point is the paper's
// §6 question at fleet scale: registration policy is a per-host memory
// decision, but it surfaces as fleet-wide tail latency once thousands of
// hosts contend for memory under reclaim pressure.
//
// Everything is deterministic: the partition structure is fixed by the
// topology (never by the thread budget), per-client RNGs are split in
// construction order, and the per-host memory accounting (StateBytes) is
// computed from model state, not the Go heap — so one seed yields one
// byte-identical result on any -engines/-parallel setting.
package topo

// Topology places hosts into racks and racks onto PDES partitions. Hosts in
// one rack always share a partition; racks are assigned to partitions in
// contiguous blocks, so the partition structure is a pure function of
// (Hosts, HostsPerRack, parts) and never of the thread budget.
type Topology struct {
	// Hosts is the total host count.
	Hosts int
	// HostsPerRack sizes one rack (the co-location granularity).
	HostsPerRack int
}

// Racks reports the rack count (the last rack may be partial).
func (t Topology) Racks() int {
	if t.HostsPerRack <= 0 {
		return 1
	}
	return (t.Hosts + t.HostsPerRack - 1) / t.HostsPerRack
}

// Rack returns the rack index of host h.
func (t Topology) Rack(h int) int {
	if t.HostsPerRack <= 0 {
		return 0
	}
	return h / t.HostsPerRack
}

// Partition maps host h onto one of parts partitions: contiguous rack
// blocks, so intra-rack traffic never crosses a partition boundary. With
// fewer racks than partitions the tail partitions stay empty (and the
// caller should use fewer partitions).
func (t Topology) Partition(h, parts int) int {
	if parts <= 1 {
		return 0
	}
	racks := t.Racks()
	if racks <= parts {
		return t.Rack(h) % parts
	}
	return t.Rack(h) * parts / racks
}

// mix64 is the splitmix64 finalizer — the deterministic key-to-server hash
// (a seeded draw would couple server choice to RNG stream position).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
