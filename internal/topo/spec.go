package topo

import (
	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/trace"
)

// HostSpec is the reusable recipe for one simulated host's substrate:
// memory machine, NPF driver, and optionally a NIC or HCA. A spec is a
// value — stamp out a thousand hosts from one spec with Build in a loop,
// varying only the engine (partition) and name. The construction order
// (machine, driver, then adapter) matches the historical per-host builders
// in internal/kv and the root facade, so RNG split order — and therefore
// every seeded result — is preserved when a builder migrates to a spec.
type HostSpec struct {
	// RAM is the host's physical memory (default 8 GiB).
	RAM int64
	// Driver configures the NPF driver (default core.DefaultConfig()).
	Driver core.Config
	// NIC, when non-nil, attaches an Ethernet NIC with this config.
	NIC *nic.Config
	// HCA, when non-nil, attaches an InfiniBand adapter with this config.
	HCA *rc.Config
	// NetASBytes maps a transport address space of this size at build time
	// (0 skips it; regions can be mapped later).
	NetASBytes int64
}

// Host is the substrate a HostSpec builds. Higher layers (the sweep's
// servers, kv's service hosts) hang their state off it.
type Host struct {
	Name  string
	Eng   *sim.Engine
	M     *mem.Machine
	Drv   *core.Driver
	Dev   *nic.Device // nil unless spec.NIC
	HCA   *rc.HCA     // nil unless spec.HCA
	NetAS *mem.AddressSpace
}

// Build instantiates the spec on eng, attaching any adapter to net.
// tr may be nil (untraced). The same spec value is safe to Build any
// number of times.
func (sp HostSpec) Build(eng *sim.Engine, net *fabric.Network, tr *trace.Tracer, name string) *Host {
	ram := sp.RAM
	if ram == 0 {
		ram = 8 << 30
	}
	drvCfg := sp.Driver
	if drvCfg == (core.Config{}) {
		drvCfg = core.DefaultConfig()
	}
	h := &Host{Name: name, Eng: eng}
	h.M = mem.NewMachine(eng, ram)
	h.M.SetTracer(tr)
	h.Drv = core.NewDriver(eng, drvCfg)
	h.Drv.SetTracer(tr)
	if sp.NetASBytes > 0 {
		h.NetAS = h.M.NewAddressSpace(name+"-net", nil)
		h.NetAS.MapBytes(sp.NetASBytes)
	}
	if sp.NIC != nil {
		h.Dev = nic.NewDevice(eng, net, *sp.NIC)
		h.Dev.SetTracer(tr)
		h.Drv.AttachDevice(h.Dev)
	}
	if sp.HCA != nil {
		h.HCA = rc.NewHCA(eng, net, *sp.HCA)
		h.HCA.SetTracer(tr)
		h.Drv.AttachHCA(h.HCA)
	}
	return h
}
