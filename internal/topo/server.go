package topo

import (
	"fmt"

	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/iommu"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
)

// serverHost is one server in the fleet: a full HostSpec substrate plus
// per-tenant receive state. Tenant state is allocated only for tenants
// placed on this server (see Sweep.buildServerTenants).
type serverHost struct {
	sweep *Sweep
	idx   int
	host  *Host
	// tenants is indexed by tenant id; nil where the tenant is not placed
	// here.
	tenants []*serverTenant

	// reclaimCost accumulates the synchronous kernel time spent by
	// reclaim waves on this host (reported, not charged to ops: the waves
	// model kswapd, which runs off the op path).
	reclaimCost sim.Time
	waves       int
}

// serverTenant is one tenant's presence on one server: its memory group,
// one address space holding the receive ring and the value arena, the
// receive endpoint (channel or UD QP), and — policy-dependent — a pin-down
// cache.
type serverTenant struct {
	srv    *serverHost
	tenant *tenantState

	group *mem.Group
	as    *mem.AddressSpace
	ch    *nic.Channel // TransportEth
	qp    *rc.QP       // TransportUD

	ringBase  mem.VAddr
	ringBufSz int64
	replyBuf  mem.VAddr // UD only: reply staging buffer
	udHead    int64     // next UD receive buffer to repost

	arenaBase mem.VAddr
	slotSize  int64
	slots     int64
	present   []uint64 // per-slot presence bitset

	pdc *core.PinDownCache

	ops  sim.Counter
	hits sim.Counter
	shed sim.Counter // ops that failed arena access (OOM under pressure)
}

func (s *Sweep) newServerHost(idx int, eng *sim.Engine) *serverHost {
	spec := HostSpec{RAM: s.cfg.ServerRAM}
	if s.cfg.Transport == TransportEth {
		c := nic.DefaultConfig()
		spec.NIC = &c
	} else {
		c := rc.DefaultConfig()
		spec.HCA = &c
	}
	srv := &serverHost{
		sweep:   s,
		idx:     idx,
		host:    spec.Build(eng, s.net, nil, fmt.Sprintf("srv-%03d", idx)),
		tenants: make([]*serverTenant, len(s.cfg.Tenants)),
	}
	return srv
}

func (sv *serverHost) node() fabric.NodeID {
	if sv.host.Dev != nil {
		return sv.host.Dev.Node
	}
	return sv.host.HCA.Node
}

// addTenant materialises tenant t's state on this server: one address
// space (ring buffers first, then the arena), registered under the
// tenant's memory group and wired per its registration policy.
func (sv *serverHost) addTenant(t *tenantState) *serverTenant {
	s := sv.sweep
	spec := t.spec
	name := fmt.Sprintf("%s@%s", t.cfg.Tenant, sv.host.Name)

	slotSize := int64((s.cfg.ValueBytes + slotAlign - 1) / slotAlign * slotAlign)
	if slotSize == 0 {
		slotSize = slotAlign
	}
	arenaBytes := spec.ArenaBytes
	if arenaBytes == 0 {
		arenaBytes = slotSize * int64(2*t.keysPerServer+8)
	}
	arenaBytes = (arenaBytes + mem.PageSize - 1) / mem.PageSize * mem.PageSize

	ringBufSz := int64(mem.PageSize)
	ringBytes := int64(s.cfg.RingSize) * ringBufSz
	if s.cfg.Transport == TransportUD {
		ringBytes += ringBufSz // reply staging buffer
	}

	limit := spec.GroupLimitBytes
	if limit == 0 {
		limit = arenaBytes + ringBytes + mem.PageSize
	}

	st := &serverTenant{
		srv:       sv,
		tenant:    t,
		group:     mem.NewGroup(name, limit),
		ringBufSz: ringBufSz,
		slotSize:  slotSize,
		slots:     arenaBytes / slotSize,
	}
	st.as = sv.host.M.NewAddressSpace(name, st.group)
	st.ringBase = st.as.MapBytes(ringBytes)
	st.arenaBase = st.as.MapBytes(arenaBytes)
	st.present = make([]uint64, (st.slots+63)/64)
	if s.cfg.Transport == TransportUD {
		st.replyBuf = st.ringBase + mem.VAddr(int64(s.cfg.RingSize))*mem.VAddr(ringBufSz)
	}

	switch s.cfg.Transport {
	case TransportEth:
		policy := nic.PolicyBackup
		if spec.Reg == RegPinned {
			policy = nic.PolicyPinned
		}
		st.ch = sv.host.Dev.NewChannel(name, st.as, s.cfg.RingSize, policy, s.cfg.RingSize)
		st.ch.SetRxHandler(st)
		if spec.Reg != RegPinned {
			sv.host.Drv.EnableODP(st.ch)
		}
	default:
		st.qp = sv.host.HCA.NewQPShared(st.as, nil)
		st.qp.OnRecv = st.udRecv
		if spec.Reg != RegPinned {
			sv.host.Drv.EnableODPQP(st.qp)
		}
	}

	switch spec.Reg {
	case RegPinned:
		// Everything resident and mapped up front; no faults, no reclaim —
		// and no way to give memory back under pressure.
		if _, err := core.StaticPinAll(st.as, st.dom()); err != nil {
			panic(fmt.Sprintf("topo: pinning %s: %v", name, err))
		}
	case RegPinDown:
		cache := spec.PinCacheBytes
		if cache == 0 {
			cache = arenaBytes / 2
		}
		st.pdc = core.NewPinDownCache(st.as, st.dom(), cache)
	}

	if t.cfg.Prepopulate {
		st.prepopulate()
	}

	st.postInitial()
	sv.tenants[t.idx] = st
	return st
}

func (st *serverTenant) dom() *iommu.Domain {
	if st.ch != nil {
		return st.ch.Domain
	}
	return st.qp.Domain
}

// prepopulate warms the arena (bootstrap writes, costs not charged — this
// models state loaded before the measurement window) and marks every slot
// present.
func (st *serverTenant) prepopulate() {
	for slot := int64(0); slot < st.slots; slot++ {
		addr := st.arenaBase + mem.VAddr(slot*st.slotSize)
		if _, err := st.as.Touch(addr, int(st.slotSize), true); err != nil {
			break // arena larger than the group limit: warm what fits
		}
	}
	for i := range st.present {
		st.present[i] = ^uint64(0)
	}
	tail := st.slots % 64
	if tail != 0 {
		st.present[len(st.present)-1] = (uint64(1) << tail) - 1
	}
}

// postInitial fills the receive ring (Eth descriptors or UD receive WQEs).
func (st *serverTenant) postInitial() {
	n := st.srv.sweep.cfg.RingSize
	for i := 0; i < n; i++ {
		st.post(int64(i))
	}
}

// post (re)posts receive slot idx — one page-sized buffer per slot.
func (st *serverTenant) post(idx int64) {
	addr := st.ringBase + mem.VAddr((idx%int64(st.srv.sweep.cfg.RingSize))*st.ringBufSz)
	if st.ch != nil {
		st.ch.Rx.PostRx(nic.Descriptor{Buffer: addr, Len: int(st.ringBufSz)})
		return
	}
	st.qp.PostRecv(rc.RecvWQE{ID: idx % int64(st.srv.sweep.cfg.RingSize), Addr: addr, Len: int(st.ringBufSz)})
}

// RxComplete implements nic.RxHandler: process each delivered request and
// recycle its descriptor.
func (st *serverTenant) RxComplete(_ *nic.Channel, comps []nic.RxCompletion) {
	for _, c := range comps {
		st.post(c.Index)
		st.handle(c.Payload.(*reqMsg))
	}
}

// udRecv is the UD receive completion: recycle the buffer, then process.
func (st *serverTenant) udRecv(c rc.RecvCompletion) {
	st.udHead++
	st.post(st.udHead)
	st.handle(c.Payload.(*reqMsg))
}

// handle runs one op: service time plus the registration-policy memory
// cost (pin-down acquire and/or the arena touch), then the reply.
func (st *serverTenant) handle(req *reqMsg) {
	s := st.srv.sweep
	cost := s.cfg.ServiceTime
	slot := st.tenant.slotOf(req.key, st.slots)
	addr := st.arenaBase + mem.VAddr(slot*st.slotSize)
	n := int(st.slotSize)
	ok := true
	if st.pdc != nil {
		c, err := st.pdc.Acquire(addr, n)
		cost += c
		if err != nil {
			ok = false
		}
	}
	if ok {
		res, err := st.as.Touch(addr, n, !req.get)
		cost += res.Cost
		if err != nil {
			ok = false
		}
	}
	st.ops.Inc()
	hit := false
	if ok {
		hit = st.present[slot/64]&(1<<(uint(slot)%64)) != 0
		if !req.get {
			st.present[slot/64] |= 1 << (uint(slot) % 64)
		}
		if req.get && hit {
			st.hits.Inc()
		}
	} else {
		st.shed.Inc()
	}
	rep := &repMsg{id: req.id, client: req.client, hit: ok && hit}
	size := repHeaderBytes
	if req.get && rep.hit {
		size += s.cfg.ValueBytes
	}
	swarm := req.swarm
	st.srv.host.Eng.After(cost, func() { st.reply(swarm, rep, size) })
}

// reply sends the response back to the swarm host that issued the request.
func (st *serverTenant) reply(swarm int32, rep *repMsg, size int) {
	s := st.srv.sweep
	sh := s.swarms[swarm]
	if st.qp != nil {
		st.qp.PostSendUDTo(sh.udAddr, rc.SendWQE{Laddr: st.replyBuf, Len: size, Payload: rep})
		return
	}
	s.net.Send(&fabric.Packet{Src: st.srv.node(), Dst: sh.node, Size: size, Payload: rep})
}

// scheduleWaves arms this host's reclaim waves: wave k at k*every squeezes
// every tenant group limit to 3/4 (floored) — the fleet-wide memory
// pressure that makes registration policy visible in tail latency.
func (sv *serverHost) scheduleWaves(waves int, every sim.Time, floor int64) {
	for k := 1; k <= waves; k++ {
		sv.host.Eng.After(sim.Time(k)*every, sv.squeeze(floor))
	}
}

func (sv *serverHost) squeeze(floor int64) func() {
	return func() {
		sv.waves++
		for _, st := range sv.tenants {
			if st == nil {
				continue
			}
			limit := st.group.Limit * 3 / 4
			if limit < floor {
				limit = floor
			}
			if limit >= st.group.Limit {
				continue
			}
			cost, _ := st.group.SetLimit(limit)
			sv.reclaimCost += cost
		}
	}
}
