package topo

import (
	"testing"
	"unsafe"

	"npf/internal/fabric"
	"npf/internal/sim"
	"npf/internal/workload"
)

func smallConfig(tr Transport) SweepConfig {
	return SweepConfig{
		Servers:    4,
		SwarmHosts: 12,
		Transport:  tr,
		RingSize:   64,
		Tenants: []TenantSpec{
			{Workload: workload.Config{Tenant: "odp", Clients: 40, TargetOps: 400, Keys: 512, Prepopulate: true}, Reg: RegODP},
			{Workload: workload.Config{Tenant: "pindown", Clients: 40, TargetOps: 400, Keys: 512, Prepopulate: true}, Reg: RegPinDown, Servers: 2},
			{Workload: workload.Config{Tenant: "pinned", Clients: 40, TargetOps: 400, Keys: 512, Prepopulate: true}, Reg: RegPinned},
		},
		ReclaimWaves: 2,
		WaveEvery:    5 * sim.Millisecond,
	}
}

func fabricFor(tr Transport) fabric.Config {
	if tr == TransportUD {
		return fabric.DefaultInfiniBand()
	}
	return fabric.DefaultEthernet()
}

// runSweep builds and runs one sweep on a fixed-partition group with the
// given thread budget (0 = plain single engine, no group).
func runSweep(t *testing.T, tr Transport, seed int64, threads int) Result {
	t.Helper()
	var s *Sweep
	var err error
	if threads == 0 {
		eng := sim.NewEngine(seed)
		net := fabric.New(eng, fabricFor(tr))
		s, err = New(eng, net, smallConfig(tr))
	} else {
		g := sim.NewGroup(seed, 4, fabricFor(tr).Lookahead())
		g.SetThreads(threads)
		net := fabric.NewOnGroup(g, fabricFor(tr))
		s, err = New(g.Engine(0), net, smallConfig(tr))
	}
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Run()
	return s.Result()
}

func TestSweepCompletes(t *testing.T) {
	for _, tr := range []Transport{TransportEth, TransportUD} {
		r := runSweep(t, tr, 42, 0)
		if r.Hosts != 16 || r.Servers != 4 || r.SwarmHosts != 12 {
			t.Fatalf("[%v] fleet shape: %+v", tr, r)
		}
		if r.Clients != 120 {
			t.Fatalf("[%v] clients = %d, want 120", tr, r.Clients)
		}
		if r.Ops != 1200 {
			t.Fatalf("[%v] ops = %d, want 1200 (timeouts %d lost %d)", tr, r.Ops,
				r.Tenants[0].Timeouts+r.Tenants[1].Timeouts+r.Tenants[2].Timeouts,
				r.Tenants[0].Lost+r.Tenants[1].Lost+r.Tenants[2].Lost)
		}
		for _, tn := range r.Tenants {
			if tn.Ops != 400 {
				t.Fatalf("[%v] tenant %s ops = %d, want 400", tr, tn.Tenant, tn.Ops)
			}
			if tn.P99us <= 0 {
				t.Fatalf("[%v] tenant %s has no latency tail: %+v", tr, tn.Tenant, tn)
			}
		}
		if r.BytesPerHost <= 0 {
			t.Fatalf("[%v] bytes-per-host not accounted: %+v", tr, r)
		}
		// Prepopulated gets against a hot Zipf head should mostly hit.
		if r.Tenants[2].Hits == 0 {
			t.Fatalf("[%v] pinned tenant never hit: %+v", tr, r.Tenants[2])
		}
	}
}

// TestSweepPolicySpectrum checks the paper's qualitative ordering under
// reclaim pressure: the ODP tenant faults (NPFs > 0), the pin-down tenant
// exercises its cache, and the pinned tenant never sheds.
func TestSweepPolicySpectrum(t *testing.T) {
	r := runSweep(t, TransportEth, 7, 0)
	if r.NPFs == 0 {
		t.Fatalf("no NPFs despite ODP tenant under reclaim waves: %+v", r)
	}
	if r.PinHits+r.PinMisses == 0 {
		t.Fatalf("pin-down cache never exercised: %+v", r)
	}
	if r.Waves == 0 {
		t.Fatalf("reclaim waves never ran")
	}
	for _, tn := range r.Tenants {
		if tn.Reg == "pinned" && tn.Shed != 0 {
			t.Fatalf("pinned tenant shed ops: %+v", tn)
		}
	}
}

// TestSweepDeterminism: one seed must produce byte-identical results on a
// plain engine, a 4-partition group at 1 thread, and at 4 threads — the
// partition structure is fixed by topology, never by the thread budget
// (group runs only; the plain engine is a different event ordering and is
// checked for self-consistency separately).
func TestSweepDeterminism(t *testing.T) {
	for _, tr := range []Transport{TransportEth, TransportUD} {
		base := runSweep(t, tr, 42, 1)
		for _, threads := range []int{2, 4} {
			got := runSweep(t, tr, 42, threads)
			if got.Fingerprint != base.Fingerprint {
				t.Fatalf("[%v] fingerprint diverged at %d threads: %x vs %x\nbase %+v\ngot  %+v",
					tr, threads, base.Fingerprint, got.Fingerprint, base, got)
			}
		}
		again := runSweep(t, tr, 42, 1)
		if again.Fingerprint != base.Fingerprint {
			t.Fatalf("[%v] same-seed rerun diverged", tr)
		}
		other := runSweep(t, tr, 43, 1)
		if other.Fingerprint == base.Fingerprint {
			t.Fatalf("[%v] different seeds gave identical fingerprints", tr)
		}
	}
}

func TestSweepOpenLoop(t *testing.T) {
	cfg := smallConfig(TransportEth)
	cfg.Tenants[0].Workload.OpenLoop = true
	cfg.Tenants[0].Workload.ArrivalRate = 50_000
	cfg.Tenants[0].Workload.Curve = workload.Curve{
		Diurnal: 0.5, Period: 10 * sim.Millisecond,
		FlashAt: 2 * sim.Millisecond, FlashFor: sim.Millisecond, FlashMult: 4,
	}
	eng := sim.NewEngine(11)
	net := fabric.New(eng, fabric.DefaultEthernet())
	s, err := New(eng, net, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Run()
	r := s.Result()
	if r.Tenants[0].Ops != 400 {
		t.Fatalf("open-loop tenant ops = %d, want 400", r.Tenants[0].Ops)
	}
	// All pending ops drained.
	for _, sh := range s.swarms {
		if len(sh.pending) != 0 {
			t.Fatalf("pending ops leaked: %d", len(sh.pending))
		}
	}
}

func TestSweepValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	net := fabric.New(eng, fabric.DefaultEthernet())
	bad := smallConfig(TransportEth)
	bad.Tenants[0].Servers = 99
	if _, err := New(eng, net, bad); err == nil {
		t.Fatal("oversubscribed tenant placement accepted")
	}
	bad = smallConfig(TransportEth)
	bad.ValueBytes = 1 << 20
	if _, err := New(eng, net, bad); err == nil {
		t.Fatal("page-overflowing ValueBytes accepted")
	}
}

func TestTopologyPartition(t *testing.T) {
	tp := Topology{Hosts: 1008, HostsPerRack: 16}
	if tp.Racks() != 63 {
		t.Fatalf("racks = %d", tp.Racks())
	}
	seen := map[int]int{}
	prev := 0
	for h := 0; h < tp.Hosts; h++ {
		p := tp.Partition(h, 8)
		if p < 0 || p >= 8 {
			t.Fatalf("host %d → partition %d", h, p)
		}
		if p < prev {
			t.Fatalf("partition assignment not monotone at host %d", h)
		}
		if tp.Rack(h) == tp.Rack(h-1+1) { // same rack ⇒ same partition
			if h > 0 && tp.Rack(h) == tp.Rack(h-1) && tp.Partition(h-1, 8) != p {
				t.Fatalf("rack split across partitions at host %d", h)
			}
		}
		prev = p
		seen[p]++
	}
	if len(seen) != 8 {
		t.Fatalf("only %d partitions used", len(seen))
	}
}

// TestSwarmClientFootprint pins the per-client cost: one swarm client is a
// value struct and must stay small enough that 10^6 clients fit in tens of
// megabytes.
func TestSwarmClientFootprint(t *testing.T) {
	if sz := unsafe.Sizeof(swarmClient{}); sz > 128 {
		t.Fatalf("swarmClient grew to %d bytes; 10^6 clients = %d MB", sz, sz*1_000_000/1_000_000)
	}
}
