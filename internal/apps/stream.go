package apps

import (
	"npf/internal/mem"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/tcp"
)

// FaultInjector synthesizes rNPFs at a controlled frequency (§6.4): with
// probability freq per received byte it discards (minor) or evicts-to-swap
// (major) one page of the receive buffers, so the next DMA to that page
// faults through the real machinery.
type FaultInjector struct {
	AS    *mem.AddressSpace
	Base  mem.PageNum
	Pages int
	// Freq is the per-byte fault probability (the paper's x-axis).
	Freq float64
	// Major selects swap-backed (major) faults.
	Major bool

	rng      *sim.Rand
	budget   float64 // accumulated expected faults
	Injected sim.Counter
}

// NewFaultInjector covers the page range [base, base+pages).
func NewFaultInjector(as *mem.AddressSpace, base mem.PageNum, pages int, freq float64, major bool) *FaultInjector {
	return &FaultInjector{
		AS: as, Base: base, Pages: pages, Freq: freq, Major: major,
		rng: as.Machine().Eng.Rand().Split(),
	}
}

// OnBytes accounts n received bytes and injects the faults they earn.
func (fi *FaultInjector) OnBytes(n int) {
	if fi.Freq <= 0 {
		return
	}
	fi.budget += float64(n) * fi.Freq
	for fi.budget >= 1 {
		fi.budget--
		pn := fi.Base + mem.PageNum(fi.rng.Intn(fi.Pages))
		var k int
		if fi.Major {
			// Dirty it first so eviction swaps it out.
			fi.AS.TouchPages(pn, 1, true)
			k, _ = fi.AS.EvictPages(pn, 1)
		} else {
			k, _ = fi.AS.DiscardPages(pn, 1)
		}
		if k > 0 {
			fi.Injected.Inc()
		}
	}
}

// ---------------------------------------------------------------------------
// Ethernet stream (netperf TCP_STREAM-like).

// EthStream measures TCP bulk throughput from a sender stack to a receiver
// stack, with optional fault injection on the receiver ring.
type EthStream struct {
	MsgBytes   int
	TotalBytes int64

	conn     *tcp.Conn
	eng      *sim.Engine
	Injector *FaultInjector

	Received sim.Counter
	DoneAt   sim.Time
	started  sim.Time
}

// NewEthStream wires sender→receiver. The receiver's ring region should be
// pre-faulted by the caller (the benchmarks "pre-fault the receive ring at
// startup to eliminate the cold ring problem").
func NewEthStream(sender, receiver *tcp.Stack, msgBytes int, totalBytes int64) *EthStream {
	s := &EthStream{
		MsgBytes:   msgBytes,
		TotalBytes: totalBytes,
		eng:        sender.Channel().Dev.Eng,
	}
	receiver.Listen(func(c *tcp.Conn) {
		c.OnMessage = func(payload any, n int) {
			s.Received.Add(uint64(n))
			if s.Injector != nil {
				s.Injector.OnBytes(n)
			}
			if int64(s.Received.N) >= s.TotalBytes && s.DoneAt == 0 {
				s.DoneAt = s.eng.Now()
			}
		}
	})
	s.conn = sender.Dial(receiver.Channel().Dev.Node, receiver.Channel().Flow)
	return s
}

// Start queues the whole transfer (TCP windows pace it).
func (s *EthStream) Start() {
	s.started = s.eng.Now()
	for sent := int64(0); sent < s.TotalBytes; sent += int64(s.MsgBytes) {
		s.conn.Send(s.MsgBytes, nil)
	}
}

// ThroughputGbps reports achieved goodput.
func (s *EthStream) ThroughputGbps(now sim.Time) float64 {
	end := s.DoneAt
	if end == 0 {
		end = now
	}
	if end <= s.started {
		return 0
	}
	return float64(s.Received.N) * 8 / (end - s.started).Seconds() / 1e9
}

// ---------------------------------------------------------------------------
// InfiniBand stream (ib_send_bw-like).

// IBStream measures RC send throughput with optional receiver-side fault
// injection.
type IBStream struct {
	MsgBytes   int
	TotalBytes int64
	Window     int // outstanding messages

	snd, rcv *rc.QP
	sndBuf   mem.VAddr
	rcvBuf   mem.VAddr
	eng      *sim.Engine
	Injector *FaultInjector

	sent     int64
	Received sim.Counter
	DoneAt   sim.Time
	started  sim.Time
}

// NewIBStream builds the benchmark over a connected QP pair. Buffers are
// allocated and pre-faulted on both sides (cold-ring elimination).
func NewIBStream(snd, rcv *rc.QP, msgBytes int, totalBytes int64) *IBStream {
	s := &IBStream{
		MsgBytes:   msgBytes,
		TotalBytes: totalBytes,
		Window:     16,
		snd:        snd,
		rcv:        rcv,
		eng:        snd.HCA().Eng,
	}
	pages := (msgBytes + mem.PageSize - 1) / mem.PageSize * s.Window
	s.sndBuf = snd.AS.MapBytes(int64(pages) * mem.PageSize)
	s.rcvBuf = rcv.AS.MapBytes(int64(pages) * mem.PageSize)
	snd.AS.TouchPages(s.sndBuf.Page(), pages, true)
	snd.Domain.Map(s.sndBuf.Page(), pages)
	rcv.AS.TouchPages(s.rcvBuf.Page(), pages, true)
	rcv.Domain.Map(s.rcvBuf.Page(), pages)

	rcv.OnRecv = func(comp rc.RecvCompletion) {
		s.Received.Add(uint64(comp.Len))
		if s.Injector != nil {
			s.Injector.OnBytes(comp.Len)
		}
		if int64(s.Received.N) >= s.TotalBytes {
			if s.DoneAt == 0 {
				s.DoneAt = s.eng.Now()
			}
			return
		}
		s.postRecv()
	}
	return s
}

// RecvRegion exposes the receive buffer range for fault injection.
func (s *IBStream) RecvRegion() (mem.PageNum, int) {
	return s.rcvBuf.Page(), (s.MsgBytes + mem.PageSize - 1) / mem.PageSize * s.Window
}

func (s *IBStream) postRecv() {
	// Completion of message k (1-based) replenishes message k+Window-1,
	// which reuses slot (k-1) mod Window.
	k := int64(s.Received.N) / int64(s.MsgBytes)
	idx := k + int64(s.Window) - 1
	slot := s.rcvBuf + mem.VAddr(int(idx)%s.Window*s.MsgBytes)
	s.rcv.PostRecv(rc.RecvWQE{ID: idx, Addr: slot, Len: s.MsgBytes})
}

// Start posts the window and begins streaming.
func (s *IBStream) Start() {
	s.started = s.eng.Now()
	for i := 0; i < s.Window; i++ {
		slot := s.rcvBuf + mem.VAddr(i*s.MsgBytes)
		s.rcv.PostRecv(rc.RecvWQE{ID: int64(i), Addr: slot, Len: s.MsgBytes})
	}
	s.pump()
}

// pump keeps Window sends outstanding; completions trigger refills.
func (s *IBStream) pump() {
	outstanding := 0
	s.snd.OnSendComplete = func(id int64) {
		outstanding--
		s.fill(&outstanding)
	}
	s.fill(&outstanding)
}

func (s *IBStream) fill(outstanding *int) {
	for *outstanding < s.Window && s.sent < s.TotalBytes {
		slot := s.sndBuf + mem.VAddr(int(s.sent/int64(s.MsgBytes))%s.Window*s.MsgBytes)
		s.snd.PostSend(rc.SendWQE{ID: s.sent, Laddr: slot, Len: s.MsgBytes})
		s.sent += int64(s.MsgBytes)
		*outstanding++
	}
}

// ThroughputGbps reports achieved goodput.
func (s *IBStream) ThroughputGbps(now sim.Time) float64 {
	end := s.DoneAt
	if end == 0 {
		end = now
	}
	if end <= s.started {
		return 0
	}
	return float64(s.Received.N) * 8 / (end - s.started).Seconds() / 1e9
}
