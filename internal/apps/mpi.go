package apps

import (
	"fmt"

	"npf/internal/core"
	"npf/internal/iommu"
	"npf/internal/mem"
	"npf/internal/rc"
	"npf/internal/sim"
)

// RegMode selects the §6.2 memory-registration strategy of the MPI
// middleware.
type RegMode int

const (
	// RegCopy stages messages through pre-pinned bounce buffers, paying a
	// CPU copy at each end.
	RegCopy RegMode = iota
	// RegPin uses a pin-down cache (the state-of-the-art heuristic in the
	// paper's MPI backend).
	RegPin
	// RegODP registers memory once with ODP and lets NPFs handle presence.
	RegODP
)

func (m RegMode) String() string {
	switch m {
	case RegCopy:
		return "copy"
	case RegPin:
		return "pin"
	case RegODP:
		return "npf"
	}
	return "invalid"
}

// MPIConfig parameterises a job.
type MPIConfig struct {
	Ranks int
	Mode  RegMode
	// OffCacheBuffers rotates each rank through this many distinct
	// send/recv buffers (IMB "off_cache" mode), defeating registration
	// reuse. 1 keeps a single hot buffer.
	OffCacheBuffers int
	// PinCacheBytes bounds each rank's pin-down cache (RegPin).
	PinCacheBytes int64
	// MemcpyBps is the copy bandwidth for RegCopy.
	MemcpyBps int64
	// PerMsgOverhead is the MPI software cost per message at each end
	// (matching, tag lookup, completion handling). Applied in every mode.
	PerMsgOverhead sim.Time
}

// MPIJob is a set of ranks on a common fabric running collectives. Each
// rank owns a host, an HCA, and QPs to every other rank.
type MPIJob struct {
	Cfg   MPIConfig
	eng   *sim.Engine
	ranks []*mpiRank
	done  func()
}

type mpiRank struct {
	job    *MPIJob
	id     int
	as     *mem.AddressSpace
	dom    *iommu.Domain // the rank's protection domain, shared by its QPs
	qps    []*rc.QP      // indexed by peer rank (nil for self)
	pdc    *core.PinDownCache
	bufs   mem.VAddr // OffCacheBuffers × bufStride region
	stride int64
	bufIdx int64
}

const mpiMaxMsg = 4 << 20

// NewMPIJob builds the job: one machine per rank, full QP mesh, ODP or
// pinned registration per mode.
func NewMPIJob(eng *sim.Engine, mkHost func(rank int) (*mem.AddressSpace, *rc.HCA, *core.Driver), cfg MPIConfig) *MPIJob {
	if cfg.MemcpyBps == 0 {
		cfg.MemcpyBps = 10e9
	}
	if cfg.PerMsgOverhead == 0 {
		cfg.PerMsgOverhead = 5 * sim.Microsecond
	}
	job := &MPIJob{Cfg: cfg, eng: eng}
	type hostEnt struct {
		as  *mem.AddressSpace
		hca *rc.HCA
		drv *core.Driver
	}
	hosts := make([]hostEnt, cfg.Ranks)
	for i := range hosts {
		as, hca, drv := mkHost(i)
		hosts[i] = hostEnt{as, hca, drv}
	}
	for i := 0; i < cfg.Ranks; i++ {
		r := &mpiRank{
			job: job, id: i, as: hosts[i].as,
			dom: hosts[i].hca.MMU.NewDomain(),
			qps: make([]*rc.QP, cfg.Ranks),
		}
		r.stride = int64(mpiMaxMsg)
		r.bufs = r.as.MapBytes(int64(cfg.OffCacheBuffers) * r.stride)
		job.ranks = append(job.ranks, r)
	}
	for i := 0; i < cfg.Ranks; i++ {
		for j := i + 1; j < cfg.Ranks; j++ {
			qpI := hosts[i].hca.NewQPShared(hosts[i].as, job.ranks[i].dom)
			qpJ := hosts[j].hca.NewQPShared(hosts[j].as, job.ranks[j].dom)
			rc.Connect(qpI, qpJ)
			job.ranks[i].qps[j] = qpI
			job.ranks[j].qps[i] = qpJ
			switch cfg.Mode {
			case RegODP:
				hosts[i].drv.EnableODPQP(qpI)
				hosts[j].drv.EnableODPQP(qpJ)
			case RegCopy:
				// Bounce buffers: pin one max-message staging area per QP.
				for _, h := range []struct {
					as *mem.AddressSpace
					qp *rc.QP
				}{{hosts[i].as, qpI}, {hosts[j].as, qpJ}} {
					base := h.as.MapBytes(mpiMaxMsg)
					if _, err := h.as.Pin(base.Page(), mpiMaxMsg/mem.PageSize); err != nil {
						panic(err)
					}
					h.qp.Domain.Map(base.Page(), mpiMaxMsg/mem.PageSize)
				}
			}
		}
		if cfg.Mode == RegPin {
			// One pin-down cache per rank, registering in the rank's shared
			// protection domain.
			job.ranks[i].pdc = core.NewPinDownCache(hosts[i].as, job.ranks[i].dom, cfg.PinCacheBytes)
		}
	}
	return job
}

// sendBuf returns the rank's next message buffer (off-cache rotation).
func (r *mpiRank) sendBuf() mem.VAddr {
	buf := r.bufs + mem.VAddr(r.bufIdx%int64(r.job.Cfg.OffCacheBuffers))*mem.VAddr(r.stride)
	r.bufIdx++
	return buf
}

// prepare pays the mode's registration/staging cost for one buffer and
// calls ready when the buffer may be handed to the HCA.
func (r *mpiRank) prepare(buf mem.VAddr, length int, ready func()) {
	cost := r.job.Cfg.PerMsgOverhead
	switch r.job.Cfg.Mode {
	case RegODP:
		// Registration is free; the application must still have produced
		// the data (CPU touch), which demand-pages the buffer.
		res, err := r.as.Touch(buf, length, true)
		if err != nil {
			panic(err)
		}
		cost += res.Cost
	case RegCopy:
		res, err := r.as.Touch(buf, length, true)
		if err != nil {
			panic(err)
		}
		cost += res.Cost + sim.Time(int64(length)*int64(sim.Second)/r.job.Cfg.MemcpyBps)
	case RegPin:
		res, err := r.as.Touch(buf, length, true)
		if err != nil {
			panic(err)
		}
		pinCost, err := r.pdc.Acquire(buf, length)
		if err != nil {
			panic(err)
		}
		cost += res.Cost + pinCost
	}
	r.job.eng.After(cost, ready)
}

// recvCost is the receive-side cost paid on message arrival: MPI software
// overhead, plus the copy out of the bounce buffer under RegCopy.
func (r *mpiRank) recvCost(length int) sim.Time {
	cost := r.job.Cfg.PerMsgOverhead
	if r.job.Cfg.Mode == RegCopy {
		cost += sim.Time(int64(length) * int64(sim.Second) / r.job.Cfg.MemcpyBps)
	}
	return cost
}

// Collective runners. Each runs iters iterations of the pattern with the
// given message size and calls done(elapsed).

// RunSendRecv runs the IMB sendrecv pattern: a ring where every rank sends
// to (i+1) and receives from (i-1) each iteration.
func (job *MPIJob) RunSendRecv(msgSize, iters int, done func(elapsed sim.Time)) {
	start := job.eng.Now()
	iter := 0
	var runIter func()
	runIter = func() {
		if iter >= iters {
			done(job.eng.Now() - start)
			return
		}
		iter++
		job.barrierIter(msgSize, func(r *mpiRank) []int {
			return []int{(r.id + 1) % job.Cfg.Ranks} // send targets
		}, runIter)
	}
	runIter()
}

// RunBcast runs a flat broadcast from rank 0 (linear, as small-cluster MPI
// does for 8 ranks).
func (job *MPIJob) RunBcast(msgSize, iters int, done func(elapsed sim.Time)) {
	start := job.eng.Now()
	iter := 0
	var runIter func()
	runIter = func() {
		if iter >= iters {
			done(job.eng.Now() - start)
			return
		}
		iter++
		job.barrierIter(msgSize, func(r *mpiRank) []int {
			if r.id != 0 {
				return nil
			}
			targets := make([]int, 0, job.Cfg.Ranks-1)
			for p := 1; p < job.Cfg.Ranks; p++ {
				targets = append(targets, p)
			}
			return targets
		}, runIter)
	}
	runIter()
}

// RunAlltoall runs the all-to-all exchange: every rank sends a distinct
// message to every other rank each iteration.
func (job *MPIJob) RunAlltoall(msgSize, iters int, done func(elapsed sim.Time)) {
	start := job.eng.Now()
	iter := 0
	var runIter func()
	runIter = func() {
		if iter >= iters {
			done(job.eng.Now() - start)
			return
		}
		iter++
		job.barrierIter(msgSize, func(r *mpiRank) []int {
			targets := make([]int, 0, job.Cfg.Ranks-1)
			for p := 0; p < job.Cfg.Ranks; p++ {
				if p != r.id {
					targets = append(targets, p)
				}
			}
			return targets
		}, runIter)
	}
	runIter()
}

// barrierIter performs one communication round: each rank prepares and
// sends to its targets; the round completes when every expected message has
// been received everywhere.
func (job *MPIJob) barrierIter(msgSize int, targetsOf func(*mpiRank) []int, then func()) {
	expected := make([]int, job.Cfg.Ranks)
	totalSends := 0
	sendPlans := make([][]int, job.Cfg.Ranks)
	for _, r := range job.ranks {
		t := targetsOf(r)
		sendPlans[r.id] = t
		totalSends += len(t)
		for _, dst := range t {
			expected[dst]++
		}
	}
	remaining := totalSends
	for _, r := range job.ranks {
		rank := r
		for _, dst := range sendPlans[r.id] {
			dstRank := job.ranks[dst]
			qp := rank.qps[dst]
			peerQP := dstRank.qps[rank.id]
			// Receiver posts a buffer (receive side pays its own
			// preparation: under pin/copy modes, its buffer is registered
			// symmetrically).
			rbuf := dstRank.sendBuf()
			dstRank.prepareRecv(rbuf, msgSize, peerQP)
			peerQP.OnRecv = func(comp rc.RecvCompletion) {
				job.eng.After(dstRank.recvCost(msgSize), func() {
					remaining--
					if remaining == 0 {
						then()
					}
				})
			}
			sbuf := rank.sendBuf()
			rank.prepare(sbuf, msgSize, func() {
				qp.PostSend(rc.SendWQE{ID: 1, Laddr: sbuf, Len: msgSize})
			})
		}
	}
	if totalSends == 0 {
		then()
	}
}

// prepareRecv registers/posts a receive buffer per the mode.
func (r *mpiRank) prepareRecv(buf mem.VAddr, length int, qp *rc.QP) {
	switch r.job.Cfg.Mode {
	case RegPin:
		if _, err := r.pdc.Acquire(buf, length); err != nil {
			panic(err)
		}
	case RegCopy:
		// The wire buffer is the pre-pinned bounce buffer; model by
		// pinning the target range too (already-counted copy happens in
		// recvCost). Ensure residency so the DMA lands.
		if _, err := r.as.Pin(buf.Page(), mem.PagesSpanned(buf, length)); err != nil {
			panic(err)
		}
		r.dom.Map(buf.Page(), mem.PagesSpanned(buf, length))
	case RegODP:
		// Nothing: rNPFs handle it.
	}
	qp.PostRecv(rc.RecvWQE{ID: 1, Addr: buf, Len: length})
}

func (job *MPIJob) String() string {
	return fmt.Sprintf("mpi-%d-ranks-%v", job.Cfg.Ranks, job.Cfg.Mode)
}
