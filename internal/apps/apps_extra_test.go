package apps

import (
	"testing"
	"testing/quick"

	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/sim"
)

func TestFaultInjectorBudget(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mem.NewMachine(eng, 1<<30)
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(64 << 20)
	as.TouchPages(0, 256, true)
	// One fault per 64 KiB of received bytes over a 256-page region.
	fi := NewFaultInjector(as, 0, 256, 1.0/(64<<10), false)
	for i := 0; i < 64; i++ {
		fi.OnBytes(64 << 10)
	}
	// 64 × 64 KiB = 4 MiB → exactly 64 fault budget; injections can be
	// slightly fewer (a discarded page may already be non-resident).
	if fi.Injected.N == 0 || fi.Injected.N > 64 {
		t.Fatalf("injected = %d", fi.Injected.N)
	}
	resident := 0
	for i := mem.PageNum(0); i < 256; i++ {
		if as.Resident(i) {
			resident++
		}
	}
	if resident == 256 {
		t.Fatal("no pages discarded")
	}
}

func TestFaultInjectorMajorSwaps(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mem.NewMachine(eng, 1<<30)
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(1 << 20)
	as.TouchPages(0, 16, true)
	fi := NewFaultInjector(as, 0, 16, 1.0/4096, true) // fault per page
	fi.OnBytes(4096 * 4)
	if fi.Injected.N == 0 {
		t.Fatal("no injections")
	}
	if m.Swap.Writes.N == 0 {
		t.Fatal("major injection must swap pages out")
	}
}

func TestFaultInjectorZeroFreq(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mem.NewMachine(eng, 1<<30)
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(1 << 20)
	as.TouchPages(0, 16, true)
	fi := NewFaultInjector(as, 0, 16, 0, false)
	fi.OnBytes(1 << 30)
	if fi.Injected.N != 0 {
		t.Fatalf("injected %d at zero frequency", fi.Injected.N)
	}
}

// Property: the KV store never exceeds its capacity and Items matches the
// live key count under arbitrary get/set interleavings.
func TestKVStoreCapacityProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		eng := sim.NewEngine(1)
		m := mem.NewMachine(eng, 1<<30)
		as := m.NewAddressSpace("kv", nil)
		kv := NewKVStore(as, 16*4096)
		live := make(map[string]bool)
		for _, op := range ops {
			key := string(rune('a' + op%32))
			if op%3 == 0 {
				if _, err := kv.Set(key, 4096); err != nil {
					return false
				}
				live[key] = true
			} else {
				hit, _, _, err := kv.Get(key)
				if err != nil {
					return false
				}
				if hit && !live[key] {
					return false // hit on a never-set key
				}
			}
			if kv.UsedBytes() > 16*4096 {
				return false
			}
		}
		return kv.Items() <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKVStoreArenaBounds(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mem.NewMachine(eng, 1<<30)
	as := m.NewAddressSpace("kv", nil)
	base := as.MapBytes(8 * 4096)
	kv := NewKVStore(as, 4*4096)
	kv.SetArena(base, 8*4096)
	for i := 0; i < 20; i++ {
		if _, err := kv.Set(string(rune('a'+i)), 4096); err != nil {
			t.Fatal(err)
		}
	}
	// 20 sets with capacity 4 recycle slots: the arena never overflows and
	// the address space never grows.
	if as.MappedBytes() != 8*4096 {
		t.Fatalf("address space grew to %d", as.MappedBytes())
	}
}

func TestMemaslapLatencyRecorded(t *testing.T) {
	e := newMemcachedEnv(t, nic.PolicyPinned, 50*sim.Microsecond)
	e.slap.Cfg.TargetOps = 100
	e.slap.Start(e.sstack.Channel().Dev.Node, e.sstack.Channel().Flow)
	e.eng.RunUntil(30 * sim.Second)
	if e.slap.Latency().Count() != 100 {
		t.Fatalf("latency samples = %d", e.slap.Latency().Count())
	}
	if e.slap.Latency().Mean() <= 0 {
		t.Fatal("zero latency")
	}
}
