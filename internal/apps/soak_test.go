package apps

import (
	"testing"

	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/tcp"
)

// Soak tests: conservation invariants under combined fault injection,
// memory pressure, and (for RoCE) genuine packet loss. Every byte the
// application sent must arrive exactly once, in order, no matter how the
// fault machinery interleaves.

func TestSoakEthBackupUnderInjection(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		eng := sim.NewEngine(seed)
		net := fabric.New(eng, fabric.DefaultEthernet())
		m := mem.NewMachine(eng, 8<<30)
		drv := core.NewDriver(eng, core.DefaultConfig())
		mkStack := func(name string) *tcp.Stack {
			dcfg := nic.DefaultConfig()
			dev := nic.NewDevice(eng, net, dcfg)
			drv.AttachDevice(dev)
			as := m.NewAddressSpace(name, nil)
			ch := dev.NewChannel(name, as, 128, nic.PolicyBackup, 128)
			drv.EnableODP(ch)
			return tcp.NewStack(ch, tcp.DefaultConfig())
		}
		recv := mkStack("recv")
		send := mkStack("send")
		s := NewEthStream(send, recv, 32<<10, 8<<20)
		rxBase, rxLen := recv.RxBuffers()
		// Aggressive: roughly one injected fault per 32 KB received.
		s.Injector = NewFaultInjector(recv.Channel().AS, rxBase.Page(),
			int(rxLen/mem.PageSize), 1.0/(32<<10), seed%2 == 0)
		s.Start()
		eng.RunUntil(300 * sim.Second)
		if int64(s.Received.N) != 8<<20 {
			t.Fatalf("seed %d: received %d of %d bytes", seed, s.Received.N, 8<<20)
		}
	}
}

func TestSoakRoCEChaos(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		eng := sim.NewEngine(seed)
		net := fabric.New(eng, fabric.Config{
			RateBps: 40e9, Propagation: 2 * sim.Microsecond, LossProbability: 0.01,
		})
		cfg := rc.DefaultRoCEConfig()
		m := mem.NewMachine(eng, 8<<30)
		drv := core.NewDriver(eng, core.DefaultConfig())
		hcaA, hcaB := rc.NewHCA(eng, net, cfg), rc.NewHCA(eng, net, cfg)
		drv.AttachHCA(hcaA)
		drv.AttachHCA(hcaB)
		asA := m.NewAddressSpace("a", nil)
		asA.MapBytes(64 << 20)
		asB := m.NewAddressSpace("b", nil)
		asB.MapBytes(64 << 20)
		// Two QP pairs sharing each side's protection domain.
		domA, domB := hcaA.MMU.NewDomain(), hcaB.MMU.NewDomain()
		var pairs [2][2]*rc.QP
		for i := 0; i < 2; i++ {
			qa := hcaA.NewQPShared(asA, domA)
			qb := hcaB.NewQPShared(asB, domB)
			rc.Connect(qa, qb)
			drv.EnableODPQP(qa)
			drv.EnableODPQP(qb)
			pairs[i] = [2]*rc.QP{qa, qb}
		}
		rng := sim.NewRand(seed)
		const msgs = 60
		got := [2][]int{}
		for i := 0; i < 2; i++ {
			i := i
			pairs[i][1].OnRecv = func(c rc.RecvCompletion) {
				got[i] = append(got[i], c.Payload.(int))
			}
		}
		// Interleave posts across the two connections with random cold
		// buffers; periodically evict resident pages to force refaults.
		for k := 0; k < msgs; k++ {
			for i := 0; i < 2; i++ {
				buf := mem.VAddr(rng.Intn(512)) * mem.PageSize
				pairs[i][1].PostRecv(rc.RecvWQE{ID: int64(k), Addr: buf, Len: 8 << 10})
				pairs[i][0].PostSend(rc.SendWQE{ID: int64(k), Laddr: mem.VAddr(k%16) * mem.PageSize,
					Len: 8 << 10, Payload: k})
			}
			if k%10 == 5 {
				eng.After(sim.Time(k)*sim.Millisecond, func() {
					asB.EvictPages(mem.PageNum(rng.Intn(512)), 8)
				})
			}
		}
		eng.RunUntil(120 * sim.Second)
		for i := 0; i < 2; i++ {
			if len(got[i]) != msgs {
				t.Fatalf("seed %d conn %d: delivered %d/%d", seed, i, len(got[i]), msgs)
			}
			for k, v := range got[i] {
				if v != k {
					t.Fatalf("seed %d conn %d: out of order at %d (%d)", seed, i, k, v)
				}
			}
		}
	}
}

func TestSoakMemcachedUnderMemoryPressure(t *testing.T) {
	// A memcached instance whose working set exceeds its cgroup: constant
	// eviction, swap-ins, invalidations, and rNPFs — every operation must
	// still complete and the cgroup must hold.
	eng := sim.NewEngine(9)
	net := fabric.New(eng, fabric.DefaultEthernet())
	m := mem.NewMachine(eng, 1<<30)
	drv := core.NewDriver(eng, core.DefaultConfig())
	cg := mem.NewGroup("tight", 24<<20)

	mkDev := func() *nic.Device {
		dcfg := nic.DefaultConfig()
		dev := nic.NewDevice(eng, net, dcfg)
		drv.AttachDevice(dev)
		return dev
	}
	sDev, cDev := mkDev(), mkDev()
	sAS := m.NewAddressSpace("srv", cg)
	sCh := sDev.NewChannel("srv", sAS, 64, nic.PolicyBackup, 64)
	drv.EnableODP(sCh)
	sStack := tcp.NewStack(sCh, tcp.DefaultConfig())
	cAS := m.NewAddressSpace("cli", nil)
	cCh := cDev.NewChannel("cli", cAS, 128, nic.PolicyPinned, 128)
	cStack := tcp.NewStack(cCh, tcp.DefaultConfig())
	if _, err := core.StaticPinAll(cAS, cCh.Domain); err != nil {
		t.Fatal(err)
	}

	store := NewKVStore(sAS, 0)
	NewKVServer(sStack, store, 50*sim.Microsecond)
	slap := NewMemaslap(cStack, MemaslapConfig{
		Conns: 2, GetRatio: 0.8, ValueSize: 16 << 10, Keys: 3000, // 48 MB >> 24 MB cgroup
		KeyPrefix: "k", Prepopulate: true, TargetOps: 6000,
	}, sim.Second)
	slap.Start(sCh.Dev.Node, sCh.Flow)
	eng.RunUntil(300 * sim.Second)
	if slap.DoneAt == 0 {
		t.Fatalf("completed only %d/6000 ops under pressure", slap.Ops.N)
	}
	if cg.Used() > cg.Limit {
		t.Fatalf("cgroup exceeded: %d > %d", cg.Used(), cg.Limit)
	}
	if sAS.MajorFaults.N == 0 {
		t.Fatal("working set over cgroup must cause major faults")
	}
	// Reclaim victims are the cold item pages (CPU-only), not the hot DMA
	// ring buffers — LRU keeps DMA-touched pages resident, so invalidations
	// take the never-mapped fast path.
	if drv.Inv.FastPath.N == 0 {
		t.Fatal("reclaim should run MMU-notifier invalidations")
	}
}
