package apps

import (
	"fmt"

	"npf/internal/fabric"
	"npf/internal/sim"
	"npf/internal/tcp"
)

// KVOp is a key-value operation code.
type KVOp int

const (
	OpGet KVOp = iota
	OpSet
)

// KVRequest is the wire request of the memcached-style protocol.
type KVRequest struct {
	Op   KVOp
	Key  string
	Size int // value size for sets
}

// KVReply is the wire response.
type KVReply struct {
	Hit  bool
	Size int
}

const kvHeader = 60 // request/response framing overhead in bytes

// KVServer serves the memcached protocol over a TCP stack bound to a direct
// channel (the paper's running example: memcached in a container over lwIP
// and a kernel-bypass Ethernet channel).
type KVServer struct {
	Store *KVStore
	// ServiceTime is the CPU cost per request outside memory effects
	// (parsing, hashing, event loop). The simulation is scaled: see
	// EXPERIMENTS.md.
	ServiceTime sim.Time

	stack *tcp.Stack
	eng   *sim.Engine

	Requests sim.Counter
}

// NewKVServer attaches a server to stack.
func NewKVServer(stack *tcp.Stack, store *KVStore, service sim.Time) *KVServer {
	s := &KVServer{Store: store, ServiceTime: service, stack: stack, eng: stack.Channel().Dev.Eng}
	stack.Listen(func(c *tcp.Conn) {
		c.OnMessage = func(payload any, n int) { s.handle(c, payload.(*KVRequest)) }
	})
	return s
}

func (s *KVServer) handle(c *tcp.Conn, req *KVRequest) {
	s.Requests.Inc()
	cost := s.ServiceTime
	reply := &KVReply{}
	switch req.Op {
	case OpGet:
		hit, size, memCost, err := s.Store.Get(req.Key)
		if err != nil {
			panic(fmt.Sprintf("kvserver: get %q: %v", req.Key, err))
		}
		cost += memCost
		reply.Hit, reply.Size = hit, size
	case OpSet:
		memCost, err := s.Store.Set(req.Key, req.Size)
		if err != nil {
			panic(fmt.Sprintf("kvserver: set %q: %v", req.Key, err))
		}
		cost += memCost
		reply.Hit = true
	}
	s.eng.After(cost, func() {
		size := kvHeader
		if req.Op == OpGet && reply.Hit {
			size += reply.Size
		}
		c.Send(size, reply)
	})
}

// MemaslapConfig parameterises the load generator.
type MemaslapConfig struct {
	Conns     int
	GetRatio  float64 // memaslap default: 0.9
	ValueSize int     // memaslap default here: 1 KB
	Keys      int     // working-set size in distinct keys
	KeyPrefix string  // distinguishes instances sharing a fabric
	// TargetOps stops the generator after this many completed operations
	// (Figure 4b); 0 means run forever.
	TargetOps int
	// Prepopulate issues one set per key before the measured load.
	Prepopulate bool
}

// Memaslap is the closed-loop load generator: each connection keeps exactly
// one request outstanding.
type Memaslap struct {
	Cfg   MemaslapConfig
	stack *tcp.Stack
	eng   *sim.Engine
	rng   *sim.Rand
	conns []*tcp.Conn

	issued    int
	prepIdx   int
	stopped   bool
	DoneAt    sim.Time // when TargetOps completed (0 if not yet)
	Failed    bool     // a connection was aborted by TCP
	Ops       sim.Counter
	Hits      sim.Counter
	OpsTS     *sim.TimeSeries
	HitsTS    *sim.TimeSeries
	OnDone    func()
	latencies sim.Histogram
}

// NewMemaslap builds a generator on the client stack, bucketing its time
// series at tsInterval.
func NewMemaslap(stack *tcp.Stack, cfg MemaslapConfig, tsInterval sim.Time) *Memaslap {
	eng := stack.Channel().Dev.Eng
	return &Memaslap{
		Cfg:    cfg,
		stack:  stack,
		eng:    eng,
		rng:    eng.Rand().Split(),
		OpsTS:  sim.NewTimeSeries(tsInterval),
		HitsTS: sim.NewTimeSeries(tsInterval),
	}
}

// Latency returns the request latency histogram (µs).
func (m *Memaslap) Latency() *sim.Histogram { return &m.latencies }

// SetWorkingSet changes the number of distinct keys accessed from now on
// (Figure 7's working-set flip).
func (m *Memaslap) SetWorkingSet(keys int) { m.Cfg.Keys = keys }

// Start dials the server and begins issuing load.
func (m *Memaslap) Start(serverNode fabric.NodeID, serverFlow fabric.FlowID) {
	for i := 0; i < m.Cfg.Conns; i++ {
		c := m.stack.Dial(serverNode, serverFlow)
		m.conns = append(m.conns, c)
		conn := c
		issuedAt := sim.Time(0)
		c.OnConnect = func() { issuedAt = m.eng.Now(); m.issue(conn) }
		c.OnFail = func(err error) { m.Failed = true }
		c.OnMessage = func(payload any, n int) {
			reply := payload.(*KVReply)
			m.Ops.Inc()
			m.OpsTS.Observe(m.eng.Now(), 1)
			if reply.Hit {
				m.Hits.Inc()
				m.HitsTS.Observe(m.eng.Now(), 1)
			}
			m.latencies.AddTime(m.eng.Now() - issuedAt)
			if m.Cfg.TargetOps > 0 && int(m.Ops.N) >= m.Cfg.TargetOps {
				if m.DoneAt == 0 {
					m.DoneAt = m.eng.Now()
					m.stopped = true
					if m.OnDone != nil {
						m.OnDone()
					}
				}
				return
			}
			issuedAt = m.eng.Now()
			m.issue(conn)
		}
	}
}

// Stop halts issuing (outstanding requests drain).
func (m *Memaslap) Stop() { m.stopped = true }

func (m *Memaslap) issue(c *tcp.Conn) {
	if m.stopped {
		return
	}
	if m.Cfg.TargetOps > 0 && m.issued >= m.Cfg.TargetOps {
		return
	}
	m.issued++
	var req *KVRequest
	switch {
	case m.Cfg.Prepopulate && m.prepIdx < m.Cfg.Keys:
		req = &KVRequest{Op: OpSet, Key: m.key(m.prepIdx), Size: m.Cfg.ValueSize}
		m.prepIdx++
	case m.rng.Float64() < m.Cfg.GetRatio:
		req = &KVRequest{Op: OpGet, Key: m.key(m.rng.Intn(m.Cfg.Keys))}
	default:
		req = &KVRequest{Op: OpSet, Key: m.key(m.rng.Intn(m.Cfg.Keys)), Size: m.Cfg.ValueSize}
	}
	size := kvHeader
	if req.Op == OpSet {
		size += req.Size
	}
	c.Send(size, req)
}

func (m *Memaslap) key(i int) string {
	return fmt.Sprintf("%s-%d", m.Cfg.KeyPrefix, i)
}
