package apps

import (
	"errors"
	"testing"

	"npf/internal/mem"
	"npf/internal/sim"
)

// newArenaKV builds a store confined to an arena of the given page count.
func newArenaKV(t *testing.T, pages int, capacity int64) *KVStore {
	t.Helper()
	eng := sim.NewEngine(1)
	m := mem.NewMachine(eng, 8<<30)
	as := m.NewAddressSpace("kv-arena", nil)
	size := int64(pages) * mem.PageSize
	base := as.MapBytes(size)
	kv := NewKVStore(as, capacity)
	kv.SetArena(base, size)
	return kv
}

func TestKVStoreMixedSizeResetAccounting(t *testing.T) {
	_, kv := newKVEnv(0)
	sizes := []int{512, 2048, 1024, 4096}
	var want int64
	for i, sz := range sizes {
		key := string(rune('a' + i))
		if _, err := kv.Set(key, sz); err != nil {
			t.Fatal(err)
		}
		want += int64(sz)
	}
	if kv.UsedBytes() != want || kv.Items() != len(sizes) {
		t.Fatalf("after sets: used=%d items=%d, want %d/%d", kv.UsedBytes(), kv.Items(), want, len(sizes))
	}
	// Re-Set with a different size must replace, not double-count.
	if _, err := kv.Set("a", 3072); err != nil {
		t.Fatal(err)
	}
	want += 3072 - 512
	if kv.UsedBytes() != want || kv.Items() != len(sizes) {
		t.Fatalf("after resize: used=%d items=%d, want %d/%d", kv.UsedBytes(), kv.Items(), want, len(sizes))
	}
	// Re-Set with the same size is an overwrite in place.
	if _, err := kv.Set("b", 2048); err != nil {
		t.Fatal(err)
	}
	if kv.UsedBytes() != want || kv.Items() != len(sizes) {
		t.Fatalf("after overwrite: used=%d items=%d, want %d/%d", kv.UsedBytes(), kv.Items(), want, len(sizes))
	}
}

func TestKVStoreArenaExhaustionAndSlotReuse(t *testing.T) {
	// Arena fits exactly two one-page slots.
	kv := newArenaKV(t, 2, 0)
	if _, err := kv.Set("a", 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Set("b", 1024); err != nil {
		t.Fatal(err)
	}
	_, err := kv.Set("c", 1024)
	if !errors.Is(err, ErrArenaExhausted) {
		t.Fatalf("third set: err=%v, want ErrArenaExhausted", err)
	}
	// The failed set must not corrupt accounting.
	if kv.Items() != 2 || kv.UsedBytes() != 2048 {
		t.Fatalf("after failed set: items=%d used=%d", kv.Items(), kv.UsedBytes())
	}
	// Evicting the LRU item recycles its slot for the blocked key.
	if !kv.EvictOldest() {
		t.Fatal("EvictOldest on non-empty store returned false")
	}
	if kv.Items() != 1 || kv.UsedBytes() != 1024 {
		t.Fatalf("after evict: items=%d used=%d", kv.Items(), kv.UsedBytes())
	}
	if _, err := kv.Set("c", 1024); err != nil {
		t.Fatalf("set after evict: %v", err)
	}
	addrA, _, okA := kv.Peek("a")
	if okA {
		t.Fatalf("evicted key still present at %#x", addrA)
	}
	if _, _, ok := kv.Peek("c"); !ok {
		t.Fatal("recycled-slot key missing")
	}
}

func TestKVStoreCapacityExceededError(t *testing.T) {
	// A single item larger than Capacity can never fit: the store must
	// return an error (after clearing space), not loop or panic.
	_, kv := newKVEnv(4096)
	if _, err := kv.Set("small", 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Set("big", 8192); err == nil {
		t.Fatal("oversized set succeeded")
	}
	if kv.UsedBytes() != 0 || kv.Items() != 0 {
		// The capacity loop evicts everything trying to make room.
		t.Fatalf("after oversized set: items=%d used=%d, want empty", kv.Items(), kv.UsedBytes())
	}
}

func TestKVStoreResetRecyclesEverything(t *testing.T) {
	kv := newArenaKV(t, 4, 0)
	for _, k := range []string{"a", "b", "c", "d"} {
		if _, err := kv.Set(k, 1024); err != nil {
			t.Fatal(err)
		}
	}
	kv.Reset()
	if kv.Items() != 0 || kv.UsedBytes() != 0 {
		t.Fatalf("after reset: items=%d used=%d", kv.Items(), kv.UsedBytes())
	}
	// All four slots must be reusable without growing past the arena.
	for _, k := range []string{"w", "x", "y", "z"} {
		if _, err := kv.Set(k, 1024); err != nil {
			t.Fatalf("set %q after reset: %v", k, err)
		}
	}
	if kv.Items() != 4 || kv.UsedBytes() != 4096 {
		t.Fatalf("refill: items=%d used=%d", kv.Items(), kv.UsedBytes())
	}
}

func TestKVStoreKeysLRUOrder(t *testing.T) {
	_, kv := newKVEnv(0)
	for _, k := range []string{"a", "b", "c"} {
		if _, err := kv.Set(k, 512); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so it becomes most-recently-used.
	if hit, _, _, _ := kv.Get("a"); !hit {
		t.Fatal("miss on live key")
	}
	got := kv.Keys()
	want := []string{"b", "c", "a"}
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
}
