package apps

import (
	"errors"
	"fmt"

	"npf/internal/mem"
	"npf/internal/rc"
	"npf/internal/sim"
)

// ErrPinnedTooLarge is returned when the pinned storage configuration
// exceeds the administrator's locked-memory budget — the "fails to load the
// tgt service" outcome of Figure 8a's small-memory points.
var ErrPinnedTooLarge = errors.New("storage: pinned communication buffers exceed locked-memory budget")

// CmdRead is the iSER-style read command (initiator → target, RC send).
type CmdRead struct {
	ID    int64
	Block int64
	Len   int
	Raddr mem.VAddr // initiator buffer the target RDMA-writes into
}

// RspRead is the completion response (target → initiator, RC send).
type RspRead struct{ ID int64 }

// StorageTargetConfig parameterises the tgt-style target.
type StorageTargetConfig struct {
	// CommBufBytes is the communication buffer region (tgt default: 1 GB).
	CommBufBytes int64
	// SlotBytes is the fixed chunk allocated per transaction regardless of
	// its actual size (tgt: 512 KB).
	SlotBytes int64
	// SlotsPerSession is how many slots each session rotates through.
	SlotsPerSession int
	// Pinned pins the whole communication region at startup; otherwise the
	// region relies on NPFs.
	Pinned bool
	// MaxLockedFraction is the admin bound on pinned memory as a fraction
	// of RAM (ulimit -l policy). Zero means unlimited.
	MaxLockedFraction float64
	// ServiceTime is CPU cost per request outside memory and disk.
	ServiceTime sim.Time
}

// DefaultStorageTargetConfig mirrors the paper's tgt setup.
func DefaultStorageTargetConfig() StorageTargetConfig {
	return StorageTargetConfig{
		CommBufBytes:      1 << 30,
		SlotBytes:         512 << 10,
		SlotsPerSession:   32,
		MaxLockedFraction: 0.20,
		ServiceTime:       20 * sim.Microsecond,
	}
}

// StorageTarget is the tgt-like iSER target: it serves random reads from a
// LUN through the OS page cache, staging data in its communication buffers
// before RDMA-writing it to the initiator.
type StorageTarget struct {
	Cfg   StorageTargetConfig
	AS    *mem.AddressSpace
	Cache *mem.PageCache
	eng   *sim.Engine

	commBase mem.VAddr
	slots    int64
	nextSlot int64
	diskBusy sim.Time

	Requests sim.Counter
	// MemcpyBps is the staging copy bandwidth (page cache → comm buffer).
	MemcpyBps int64
}

// NewStorageTarget builds the target on as, caching lun through cache.
// With cfg.Pinned it pins the communication region immediately and may fail
// per the locked-memory budget.
func NewStorageTarget(as *mem.AddressSpace, cache *mem.PageCache, cfg StorageTargetConfig) (*StorageTarget, error) {
	t := &StorageTarget{
		Cfg:       cfg,
		AS:        as,
		Cache:     cache,
		eng:       as.Machine().Eng,
		slots:     cfg.CommBufBytes / cfg.SlotBytes,
		MemcpyBps: 10e9,
	}
	t.commBase = as.MapBytes(cfg.CommBufBytes)
	if cfg.Pinned {
		if cfg.MaxLockedFraction > 0 &&
			float64(cfg.CommBufBytes) > cfg.MaxLockedFraction*float64(as.Machine().RAM.Limit) {
			return nil, fmt.Errorf("%w: %d bytes > %.0f%% of %d RAM",
				ErrPinnedTooLarge, cfg.CommBufBytes,
				cfg.MaxLockedFraction*100, as.Machine().RAM.Limit)
		}
		pages := int(cfg.CommBufBytes / mem.PageSize)
		if _, err := as.Pin(t.commBase.Page(), pages); err != nil {
			return nil, fmt.Errorf("storage: pinning comm buffers: %w", err)
		}
	}
	return t, nil
}

// CommBufResident reports the communication region's resident bytes — the
// metric of Figure 8b.
func (t *StorageTarget) CommBufResident() int64 {
	base := t.commBase.Page()
	pages := int(t.Cfg.CommBufBytes / mem.PageSize)
	resident := int64(0)
	for i := 0; i < pages; i++ {
		if t.AS.Resident(base + mem.PageNum(i)) {
			resident += mem.PageSize
		}
	}
	return resident
}

// AddSession wires one initiator session's QP to the target. If the target
// is pinned, the session's slot range is mapped in the QP's domain here
// (static registration); under ODP the driver handles it via NPFs.
func (t *StorageTarget) AddSession(qp *rc.QP) {
	firstSlot := t.nextSlot
	t.nextSlot += int64(t.Cfg.SlotsPerSession)
	sess := &storageSession{t: t, qp: qp, firstSlot: firstSlot}
	if t.Cfg.Pinned {
		base := (t.commBase + mem.VAddr(firstSlot%t.slots*t.Cfg.SlotBytes)).Page()
		pages := int(int64(t.Cfg.SlotsPerSession) * t.Cfg.SlotBytes / mem.PageSize)
		qp.Domain.Map(base, pages)
	}
	qp.OnRecv = sess.handleCmd
	// Post a standing pool of tiny receive buffers for commands.
	cmdBase := t.AS.MapBytes(64 * mem.PageSize)
	if _, err := t.AS.Pin(cmdBase.Page(), 64); err != nil {
		panic(err)
	}
	qp.Domain.Map(cmdBase.Page(), 64)
	for i := 0; i < 64; i++ {
		qp.PostRecv(rc.RecvWQE{ID: int64(i), Addr: cmdBase + mem.VAddr(i)*mem.PageSize, Len: 256})
	}
	sess.cmdBase = cmdBase
}

type storageSession struct {
	t         *StorageTarget
	qp        *rc.QP
	firstSlot int64
	slotIdx   int64
	cmdBase   mem.VAddr
}

func (s *storageSession) handleCmd(comp rc.RecvCompletion) {
	cmd := comp.Payload.(*CmdRead)
	t := s.t
	t.Requests.Inc()
	// Repost the command buffer.
	s.qp.PostRecv(rc.RecvWQE{ID: comp.WQEID, Addr: s.cmdBase + mem.VAddr(comp.WQEID)*mem.PageSize, Len: 256})

	// 1. Read the LUN blocks through the page cache; disk misses serialize
	// on the single spindle.
	cost := t.Cfg.ServiceTime
	blocks := (int64(cmd.Len) + t.Cache.BlockSize - 1) / t.Cache.BlockSize
	for b := int64(0); b < blocks; b++ {
		c, hit := t.Cache.Read(cmd.Block + b)
		if !hit && c > 0 {
			done := t.diskBusy
			if now := t.eng.Now(); done < now {
				done = now
			}
			done += c
			t.diskBusy = done
			c = done - t.eng.Now()
		}
		if c > cost {
			cost = c // overlapping CPU with I/O: pay the max
		}
	}

	// 2. Stage into this session's next comm-buffer slot (a fixed
	// SlotBytes chunk regardless of cmd.Len). The CPU copy demand-pages
	// the slot under ODP.
	slot := t.commBase + mem.VAddr((s.firstSlot+s.slotIdx%int64(t.Cfg.SlotsPerSession))%t.slots*t.Cfg.SlotBytes)
	s.slotIdx++
	res, err := t.AS.Touch(slot, cmd.Len, true)
	if err != nil {
		panic(fmt.Sprintf("storage: staging touch: %v", err))
	}
	cost += res.Cost + sim.Time(int64(cmd.Len)*int64(sim.Second)/t.MemcpyBps)

	// 3. RDMA-write the data to the initiator, then send the response.
	t.eng.After(cost, func() {
		s.qp.PostSend(rc.SendWQE{
			ID: cmd.ID, Laddr: slot, Len: cmd.Len,
			Write: true, Raddr: cmd.Raddr,
		})
		s.qp.PostSend(rc.SendWQE{
			ID: -cmd.ID, Laddr: s.cmdBase, Len: 64,
			Payload: &RspRead{ID: cmd.ID},
		})
	})
}

// FioConfig parameterises the initiator.
type FioConfig struct {
	BlockSize int
	IODepth   int
	LUNBytes  int64
	// TargetBytes stops after reading this much (0: run until stopped).
	TargetBytes int64
}

// FioInitiator issues random reads over one session (QP), keeping IODepth
// requests outstanding — the fio driver of §6.1.
type FioInitiator struct {
	Cfg FioConfig
	qp  *rc.QP
	as  *mem.AddressSpace
	eng *sim.Engine
	rng *sim.Rand

	bufBase mem.VAddr
	nextID  int64
	stopped bool

	Bytes   sim.Counter
	Reads   sim.Counter
	DoneAt  sim.Time
	started sim.Time
}

// NewFioInitiator builds an initiator whose buffers are pinned (the paper
// uses an unmodified kernel iSER initiator; the target is the system under
// test).
func NewFioInitiator(qp *rc.QP, as *mem.AddressSpace, cfg FioConfig) *FioInitiator {
	eng := as.Machine().Eng
	f := &FioInitiator{Cfg: cfg, qp: qp, as: as, eng: eng, rng: eng.Rand().Split()}
	bufBytes := int64(cfg.IODepth) * int64(cfg.BlockSize)
	f.bufBase = as.MapBytes(bufBytes)
	if _, err := as.Pin(f.bufBase.Page(), int(bufBytes/mem.PageSize)); err != nil {
		panic(err)
	}
	qp.Domain.Map(f.bufBase.Page(), int(bufBytes/mem.PageSize))
	// Pinned response buffers.
	rspBase := as.MapBytes(64 * mem.PageSize)
	if _, err := as.Pin(rspBase.Page(), 64); err != nil {
		panic(err)
	}
	qp.Domain.Map(rspBase.Page(), 64)
	for i := 0; i < 64; i++ {
		qp.PostRecv(rc.RecvWQE{ID: int64(i), Addr: rspBase + mem.VAddr(i)*mem.PageSize, Len: 256})
	}
	qp.OnRecv = func(comp rc.RecvCompletion) {
		qp.PostRecv(rc.RecvWQE{ID: comp.WQEID, Addr: rspBase + mem.VAddr(comp.WQEID)*mem.PageSize, Len: 256})
		f.Bytes.Add(uint64(cfg.BlockSize))
		f.Reads.Inc()
		if cfg.TargetBytes > 0 && int64(f.Bytes.N) >= cfg.TargetBytes {
			if f.DoneAt == 0 {
				f.DoneAt = eng.Now()
			}
			return
		}
		f.issue()
	}
	return f
}

// Start begins issuing IODepth outstanding reads.
func (f *FioInitiator) Start() {
	f.started = f.eng.Now()
	for i := 0; i < f.Cfg.IODepth; i++ {
		f.issue()
	}
}

// Stop halts new issues.
func (f *FioInitiator) Stop() { f.stopped = true }

// BandwidthGBps reports achieved bandwidth since Start.
func (f *FioInitiator) BandwidthGBps(now sim.Time) float64 {
	end := f.DoneAt
	if end == 0 {
		end = now
	}
	if end <= f.started {
		return 0
	}
	return float64(f.Bytes.N) / (end - f.started).Seconds() / 1e9
}

func (f *FioInitiator) issue() {
	if f.stopped {
		return
	}
	f.nextID++
	id := f.nextID
	blocks := f.Cfg.LUNBytes / int64(f.Cfg.BlockSize)
	slot := f.bufBase + mem.VAddr(int(id)%f.Cfg.IODepth*f.Cfg.BlockSize)
	f.qp.PostSend(rc.SendWQE{
		ID: id, Laddr: f.bufBase, Len: 96,
		Payload: &CmdRead{ID: id, Block: f.rng.Int63n(blocks), Len: f.Cfg.BlockSize, Raddr: slot},
	})
}
