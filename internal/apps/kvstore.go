// Package apps implements the paper's evaluation workloads on top of the
// simulated stack: a memcached-style key-value store driven by a
// memaslap-style load generator (§5, §6.1), a tgt/iSER-style storage target
// driven by a fio-style initiator (§6.1), MPI collectives in the style of
// the Intel MPI Benchmarks and beff (§6.2), and netperf/ib_send_bw-style
// stream benchmarks with synthetic rNPF injection (§6.4).
package apps

import (
	"container/list"
	"errors"
	"fmt"

	"npf/internal/mem"
	"npf/internal/sim"
)

// ErrArenaExhausted reports that a Set could not carve a value slot from
// the store's arena. Callers degrade gracefully — evict (EvictOldest) and
// retry, or shed the op — rather than crash.
var ErrArenaExhausted = errors.New("kvstore: arena exhausted")

// KVStore is a memcached-like LRU item cache. Item values live in the
// IOuser's address space, so gets and sets demand-page real (simulated)
// memory — under memory pressure the OS may evict item pages to swap, and
// under the store's own capacity bound the LRU evicts whole items (real
// misses, the metric of Figure 7).
type KVStore struct {
	as *mem.AddressSpace
	// Capacity bounds total value bytes held (memcached's -m). 0 means
	// unbounded (the address space size is then the only bound).
	Capacity int64

	items map[string]*kvItem
	lru   *list.List
	used  int64

	// Optional arena: when set, slots are carved from [arenaNext, arenaEnd)
	// instead of growing the address space — item memory then lives inside
	// a pre-mapped (possibly pre-pinned) VM memory region.
	arenaNext, arenaEnd mem.VAddr
	arenaSet            bool

	// freeSlots recycles value slots by size (all values in one experiment
	// share a size, as memaslap does).
	freeSlots map[int][]mem.VAddr

	Hits   sim.Counter
	Misses sim.Counter
	Sets   sim.Counter
}

type kvItem struct {
	key     string
	addr    mem.VAddr
	size    int
	lruElem *list.Element
}

// NewKVStore creates a store backed by as.
func NewKVStore(as *mem.AddressSpace, capacity int64) *KVStore {
	return &KVStore{
		as:        as,
		Capacity:  capacity,
		items:     make(map[string]*kvItem),
		lru:       list.New(),
		freeSlots: make(map[int][]mem.VAddr),
	}
}

// SetArena confines item storage to the pre-mapped region
// [base, base+size) — used when the store lives inside a VM whose memory
// was mapped (and possibly pinned) up front.
func (kv *KVStore) SetArena(base mem.VAddr, size int64) {
	kv.arenaNext, kv.arenaEnd, kv.arenaSet = base, base+mem.VAddr(size), true
}

// UsedBytes reports bytes of live item values.
func (kv *KVStore) UsedBytes() int64 { return kv.used }

// Items reports the number of cached items.
func (kv *KVStore) Items() int { return kv.lru.Len() }

// Get looks a key up; on a hit it touches the value memory (which may
// major-fault if the OS paged it out) and returns the memory cost.
func (kv *KVStore) Get(key string) (hit bool, size int, cost sim.Time, err error) {
	it, ok := kv.items[key]
	if !ok {
		kv.Misses.Inc()
		return false, 0, 0, nil
	}
	res, err := kv.as.Touch(it.addr, it.size, false)
	if err != nil {
		return false, 0, res.Cost, err
	}
	kv.lru.MoveToBack(it.lruElem)
	kv.Hits.Inc()
	return true, it.size, res.Cost, nil
}

// Set stores a value of the given size, evicting LRU items past Capacity.
func (kv *KVStore) Set(key string, size int) (cost sim.Time, err error) {
	kv.Sets.Inc()
	if it, ok := kv.items[key]; ok && it.size == size {
		res, err := kv.as.Touch(it.addr, it.size, true)
		kv.lru.MoveToBack(it.lruElem)
		return res.Cost, err
	} else if ok {
		kv.removeItem(it)
	}
	for kv.Capacity > 0 && kv.used+int64(size) > kv.Capacity {
		front := kv.lru.Front()
		if front == nil {
			return 0, fmt.Errorf("kvstore: item of %d bytes exceeds capacity %d", size, kv.Capacity)
		}
		kv.removeItem(front.Value.(*kvItem))
	}
	addr, err := kv.allocSlot(size)
	if err != nil {
		return 0, err
	}
	res, err := kv.as.Touch(addr, size, true)
	if err != nil {
		return res.Cost, err
	}
	it := &kvItem{key: key, addr: addr, size: size}
	it.lruElem = kv.lru.PushBack(it)
	kv.items[key] = it
	kv.used += int64(size)
	return res.Cost, nil
}

func (kv *KVStore) removeItem(it *kvItem) {
	kv.lru.Remove(it.lruElem)
	delete(kv.items, it.key)
	kv.used -= int64(it.size)
	kv.freeSlots[it.size] = append(kv.freeSlots[it.size], it.addr)
}

func (kv *KVStore) allocSlot(size int) (mem.VAddr, error) {
	if slots := kv.freeSlots[size]; len(slots) > 0 {
		addr := slots[len(slots)-1]
		kv.freeSlots[size] = slots[:len(slots)-1]
		return addr, nil
	}
	// Page-align slots so distinct items never share pages (memcached's
	// slab allocator at our value sizes behaves the same way).
	alloc := (int64(size) + mem.PageSize - 1) &^ (mem.PageSize - 1)
	if kv.arenaSet {
		if kv.arenaNext+mem.VAddr(alloc) > kv.arenaEnd {
			return 0, fmt.Errorf("%w (%d items live)", ErrArenaExhausted, kv.Items())
		}
		addr := kv.arenaNext
		kv.arenaNext += mem.VAddr(alloc)
		return addr, nil
	}
	return kv.as.MapBytes(alloc), nil
}

// EvictOldest drops the least-recently-used item, recycling its slot. It
// reports false on an empty store.
func (kv *KVStore) EvictOldest() bool {
	front := kv.lru.Front()
	if front == nil {
		return false
	}
	kv.removeItem(front.Value.(*kvItem))
	return true
}

// Peek returns key's value location and size without touching memory or
// LRU state (for registration-cost modelling and snapshots).
func (kv *KVStore) Peek(key string) (mem.VAddr, int, bool) {
	it, ok := kv.items[key]
	if !ok {
		return 0, 0, false
	}
	return it.addr, it.size, true
}

// Keys returns all live keys in LRU order (oldest first) — a deterministic
// iteration order for snapshots.
func (kv *KVStore) Keys() []string {
	out := make([]string, 0, kv.lru.Len())
	for e := kv.lru.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*kvItem).key)
	}
	return out
}

// Reset drops every item, recycling all slots (the receiving side of a
// snapshot resync). Counters are preserved.
func (kv *KVStore) Reset() {
	for kv.lru.Front() != nil {
		kv.removeItem(kv.lru.Front().Value.(*kvItem))
	}
}
