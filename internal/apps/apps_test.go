package apps

import (
	"errors"
	"testing"

	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/tcp"
)

// --------------------------------------------------------------------------
// KVStore.

func newKVEnv(capacity int64) (*sim.Engine, *KVStore) {
	eng := sim.NewEngine(1)
	m := mem.NewMachine(eng, 8<<30)
	as := m.NewAddressSpace("kv", nil)
	return eng, NewKVStore(as, capacity)
}

func TestKVStoreBasic(t *testing.T) {
	_, kv := newKVEnv(0)
	if hit, _, _, _ := kv.Get("a"); hit {
		t.Fatal("hit on empty store")
	}
	if _, err := kv.Set("a", 1024); err != nil {
		t.Fatal(err)
	}
	hit, size, _, err := kv.Get("a")
	if err != nil || !hit || size != 1024 {
		t.Fatalf("get: hit=%v size=%d err=%v", hit, size, err)
	}
	if kv.UsedBytes() != 1024 {
		t.Fatalf("used = %d", kv.UsedBytes())
	}
}

func TestKVStoreLRUCapacity(t *testing.T) {
	_, kv := newKVEnv(4096 * 4)
	for i := 0; i < 6; i++ {
		kv.Set(string(rune('a'+i)), 4096)
	}
	if kv.Items() != 4 {
		t.Fatalf("items = %d, want 4 (capacity)", kv.Items())
	}
	if hit, _, _, _ := kv.Get("a"); hit {
		t.Fatal("oldest item survived eviction")
	}
	if hit, _, _, _ := kv.Get("f"); !hit {
		t.Fatal("newest item evicted")
	}
	// Access "c" then add one more: "d" (not "c") should go.
	kv.Get("c")
	kv.Set("g", 4096)
	if hit, _, _, _ := kv.Get("c"); !hit {
		t.Fatal("recently used item evicted")
	}
	if hit, _, _, _ := kv.Get("d"); hit {
		t.Fatal("LRU item survived")
	}
}

func TestKVStoreSlotReuse(t *testing.T) {
	_, kv := newKVEnv(4096 * 2)
	kv.Set("a", 4096)
	kv.Set("b", 4096)
	kv.Set("c", 4096) // evicts a, reuses its slot
	if kv.as.MappedBytes() != 2*4096 {
		t.Fatalf("mapped = %d, want slots reused", kv.as.MappedBytes())
	}
}

func TestKVStoreMajorFaultOnColdItem(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mem.NewMachine(eng, 8<<30)
	as := m.NewAddressSpace("kv", nil)
	kv := NewKVStore(as, 0)
	kv.Set("a", 8192)
	as.EvictPages(0, 2) // push the item's pages to swap
	_, _, cost, err := kv.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if cost < m.Swap.ReadLatency {
		t.Fatalf("cold item get cost %v, want ≥ swap latency", cost)
	}
}

// --------------------------------------------------------------------------
// memcached server + memaslap.

type kvEnv struct {
	eng    *sim.Engine
	m      *mem.Machine
	drv    *core.Driver
	server *KVServer
	slap   *Memaslap
	sstack *tcp.Stack
}

func newMemcachedEnv(t *testing.T, policy nic.FaultPolicy, service sim.Time) *kvEnv {
	t.Helper()
	eng := sim.NewEngine(1)
	net := fabric.New(eng, fabric.DefaultEthernet())
	m := mem.NewMachine(eng, 8<<30)
	drv := core.NewDriver(eng, core.DefaultConfig())

	mkStack := func(name string, pol nic.FaultPolicy) *tcp.Stack {
		dcfg := nic.DefaultConfig()
		dcfg.FirmwareJitterSigma = 0
		dev := nic.NewDevice(eng, net, dcfg)
		drv.AttachDevice(dev)
		as := m.NewAddressSpace(name, nil)
		ch := dev.NewChannel(name, as, 64, pol, 64)
		if pol != nic.PolicyPinned {
			drv.EnableODP(ch)
		}
		st := tcp.NewStack(ch, tcp.DefaultConfig())
		if pol == nic.PolicyPinned {
			if _, err := core.StaticPinAll(as, ch.Domain); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}
	sstack := mkStack("server", policy)
	cstack := mkStack("client", nic.PolicyPinned)
	store := NewKVStore(sstack.Channel().AS, 0)
	server := NewKVServer(sstack, store, service)
	slap := NewMemaslap(cstack, MemaslapConfig{
		Conns: 4, GetRatio: 0.9, ValueSize: 1024, Keys: 200,
		KeyPrefix: "k", Prepopulate: true,
	}, sim.Second)
	return &kvEnv{eng: eng, m: m, drv: drv, server: server, slap: slap, sstack: sstack}
}

func TestMemcachedEndToEnd(t *testing.T) {
	e := newMemcachedEnv(t, nic.PolicyBackup, 50*sim.Microsecond)
	e.slap.Cfg.TargetOps = 2000
	e.slap.Start(e.sstack.Channel().Dev.Node, e.sstack.Channel().Flow)
	e.eng.RunUntil(60 * sim.Second)
	if e.slap.DoneAt == 0 {
		t.Fatalf("only %d/%d ops completed", e.slap.Ops.N, e.slap.Cfg.TargetOps)
	}
	if e.slap.Failed {
		t.Fatal("connection failed")
	}
	// After prepopulation, gets should mostly hit.
	hitRate := float64(e.slap.Hits.N) / float64(e.slap.Ops.N)
	if hitRate < 0.8 {
		t.Fatalf("hit rate = %.2f", hitRate)
	}
	if e.server.Store.Items() != 200 {
		t.Fatalf("store items = %d", e.server.Store.Items())
	}
}

func TestMemcachedColdStartPolicies(t *testing.T) {
	finish := func(policy nic.FaultPolicy) sim.Time {
		e := newMemcachedEnv(t, policy, 50*sim.Microsecond)
		e.slap.Cfg.TargetOps = 500
		e.slap.Start(e.sstack.Channel().Dev.Node, e.sstack.Channel().Flow)
		e.eng.RunUntil(200 * sim.Second)
		if e.slap.DoneAt == 0 {
			return 200 * sim.Second // did not finish
		}
		return e.slap.DoneAt
	}
	backup := finish(nic.PolicyBackup)
	drop := finish(nic.PolicyDrop)
	pin := finish(nic.PolicyPinned)
	if backup > 3*pin+sim.Second {
		t.Fatalf("backup %v much slower than pin %v", backup, pin)
	}
	if drop < 20*backup {
		t.Fatalf("drop %v should be far slower than backup %v (cold ring)", drop, backup)
	}
}

func TestMemaslapWorkingSetFlip(t *testing.T) {
	e := newMemcachedEnv(t, nic.PolicyBackup, 50*sim.Microsecond)
	e.slap.Start(e.sstack.Channel().Dev.Node, e.sstack.Channel().Flow)
	e.eng.RunUntil(2 * sim.Second)
	before := e.server.Store.Items()
	e.slap.SetWorkingSet(400)
	e.slap.Cfg.Prepopulate = false
	e.eng.RunUntil(10 * sim.Second)
	e.slap.Stop()
	e.eng.Run()
	if e.server.Store.Items() <= before {
		t.Fatalf("working set flip had no effect: %d -> %d", before, e.server.Store.Items())
	}
}

// --------------------------------------------------------------------------
// Storage.

type storEnv struct {
	eng    *sim.Engine
	m      *mem.Machine
	target *StorageTarget
	fio    *FioInitiator
}

func newStorageEnv(t *testing.T, ramBytes int64, pinned bool, blockSize int) (*storEnv, error) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := fabric.New(eng, fabric.DefaultInfiniBand())
	m := mem.NewMachine(eng, ramBytes)
	drv := core.NewDriver(eng, core.DefaultConfig())
	hcaT, hcaI := rc.NewHCA(eng, net, quietRC()), rc.NewHCA(eng, net, quietRC())
	drv.AttachHCA(hcaT)
	drv.AttachHCA(hcaI)

	// OS / tgt baseline footprint.
	baseline := m.NewAddressSpace("baseline", nil)
	baseline.MapBytes(2 << 30)
	if _, err := baseline.Pin(0, int(2<<30/mem.PageSize)); err != nil {
		t.Fatal(err)
	}

	asT := m.NewAddressSpace("tgt", nil)
	disk := &mem.SwapDevice{ReadLatency: 400 * sim.Microsecond, ReadBandwidth: 1200e6}
	cache := m.NewPageCache("lun", nil, disk, int64(blockSize))
	cfg := DefaultStorageTargetConfig()
	cfg.Pinned = pinned
	target, err := NewStorageTarget(asT, cache, cfg)
	if err != nil {
		return nil, err
	}
	qpT := hcaT.NewQP(asT)
	asI := m.NewAddressSpace("fio", nil)
	qpI := hcaI.NewQP(asI)
	rc.Connect(qpT, qpI)
	if !pinned {
		drv.EnableODPQP(qpT)
	}
	drv.EnableODPQP(qpI)
	target.AddSession(qpT)
	fio := NewFioInitiator(qpI, asI, FioConfig{
		BlockSize: blockSize, IODepth: 8, LUNBytes: 4 << 30, TargetBytes: 64 << 20,
	})
	return &storEnv{eng: eng, m: m, target: target, fio: fio}, nil
}

func quietRC() rc.Config {
	cfg := rc.DefaultConfig()
	cfg.FirmwareJitterSigma = 0
	return cfg
}

func TestStorageEndToEndODP(t *testing.T) {
	e, err := newStorageEnv(t, 8<<30, false, 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	e.fio.Start()
	e.eng.RunUntil(30 * sim.Second)
	if e.fio.DoneAt == 0 {
		t.Fatalf("fio incomplete: %d bytes", e.fio.Bytes.N)
	}
	bw := e.fio.BandwidthGBps(e.eng.Now())
	if bw < 0.1 {
		t.Fatalf("bandwidth = %.3f GB/s", bw)
	}
	// ODP: only touched slots resident, far below the 1 GB region.
	if res := e.target.CommBufResident(); res >= 1<<30/2 {
		t.Fatalf("ODP comm buffers resident = %d, want sparse", res)
	}
}

func TestStoragePinnedRefusedUnderBudget(t *testing.T) {
	// 1 GB pinned > 20% of 4 GB RAM: the pinned config must refuse to
	// start (Figure 8a's missing points).
	_, err := newStorageEnv(t, 4<<30, true, 512<<10)
	if !errors.Is(err, ErrPinnedTooLarge) {
		t.Fatalf("err = %v, want ErrPinnedTooLarge", err)
	}
	// With 8 GB it loads.
	e, err := newStorageEnv(t, 8<<30, true, 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	if e.target.CommBufResident() != 1<<30 {
		t.Fatalf("pinned resident = %d, want full 1 GB", e.target.CommBufResident())
	}
}

func TestStorageCacheBeatsDisk(t *testing.T) {
	// Second pass over a small LUN: page cache warm, bandwidth much higher.
	run := func(lun int64) float64 {
		eng := sim.NewEngine(1)
		net := fabric.New(eng, fabric.DefaultInfiniBand())
		m := mem.NewMachine(eng, 8<<30)
		drv := core.NewDriver(eng, core.DefaultConfig())
		hcaT, hcaI := rc.NewHCA(eng, net, quietRC()), rc.NewHCA(eng, net, quietRC())
		drv.AttachHCA(hcaT)
		drv.AttachHCA(hcaI)
		asT := m.NewAddressSpace("tgt", nil)
		disk := &mem.SwapDevice{ReadLatency: 400 * sim.Microsecond, ReadBandwidth: 1200e6}
		cache := m.NewPageCache("lun", nil, disk, 512<<10)
		target, err := NewStorageTarget(asT, cache, DefaultStorageTargetConfig())
		if err != nil {
			t.Fatal(err)
		}
		qpT := hcaT.NewQP(asT)
		asI := m.NewAddressSpace("fio", nil)
		qpI := hcaI.NewQP(asI)
		rc.Connect(qpT, qpI)
		drv.EnableODPQP(qpT)
		drv.EnableODPQP(qpI)
		target.AddSession(qpT)
		fio := NewFioInitiator(qpI, asI, FioConfig{
			BlockSize: 512 << 10, IODepth: 8, LUNBytes: lun, TargetBytes: 128 << 20,
		})
		fio.Start()
		eng.RunUntil(60 * sim.Second)
		return fio.BandwidthGBps(eng.Now())
	}
	small := run(64 << 20) // fits in cache quickly → mostly hits
	big := run(4 << 30)    // mostly misses
	if small < 2*big {
		t.Fatalf("cached bw %.2f not well above uncached %.2f", small, big)
	}
}

// --------------------------------------------------------------------------
// MPI.

func mkMPIHostFactory(eng *sim.Engine, net *fabric.Network) func(int) (*mem.AddressSpace, *rc.HCA, *core.Driver) {
	return func(rank int) (*mem.AddressSpace, *rc.HCA, *core.Driver) {
		m := mem.NewMachine(eng, 128<<30)
		drv := core.NewDriver(eng, core.DefaultConfig())
		hca := rc.NewHCA(eng, net, quietRC())
		drv.AttachHCA(hca)
		as := m.NewAddressSpace("rank", nil)
		return as, hca, drv
	}
}

func runCollective(t *testing.T, mode RegMode, kind string, msg, iters int) sim.Time {
	t.Helper()
	eng := sim.NewEngine(1)
	net := fabric.New(eng, fabric.DefaultInfiniBand())
	job := NewMPIJob(eng, mkMPIHostFactory(eng, net), MPIConfig{
		Ranks: 4, Mode: mode, OffCacheBuffers: 8, PinCacheBytes: 256 << 20,
	})
	var elapsed sim.Time
	done := func(e sim.Time) { elapsed = e }
	switch kind {
	case "sendrecv":
		job.RunSendRecv(msg, iters, done)
	case "bcast":
		job.RunBcast(msg, iters, done)
	case "alltoall":
		job.RunAlltoall(msg, iters, done)
	}
	eng.Run()
	if elapsed == 0 {
		t.Fatalf("%s/%v did not complete", kind, mode)
	}
	return elapsed
}

func TestMPICollectivesComplete(t *testing.T) {
	for _, kind := range []string{"sendrecv", "bcast", "alltoall"} {
		for _, mode := range []RegMode{RegCopy, RegPin, RegODP} {
			if got := runCollective(t, mode, kind, 64<<10, 5); got <= 0 {
				t.Fatalf("%s/%v elapsed = %v", kind, mode, got)
			}
		}
	}
}

func TestMPICopySlowerThanPinForLargeMessages(t *testing.T) {
	iters := 200
	msg := 128 << 10
	copyT := runCollective(t, RegCopy, "alltoall", msg, iters)
	pinT := runCollective(t, RegPin, "alltoall", msg, iters)
	npfT := runCollective(t, RegODP, "alltoall", msg, iters)
	if copyT <= pinT {
		t.Fatalf("copy %v should be slower than pin %v", copyT, pinT)
	}
	// NPF ≈ pin (within 25%): the paper's headline for Figure 9.
	ratio := float64(npfT) / float64(pinT)
	if ratio > 1.25 || ratio < 0.75 {
		t.Fatalf("npf/pin = %.2f, want ≈1", ratio)
	}
}

// --------------------------------------------------------------------------
// Streams.

func newEthStreamEnv(t *testing.T, freq float64, major, backup bool) (*sim.Engine, *EthStream, *core.Driver) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := fabric.New(eng, fabric.DefaultEthernet())
	m := mem.NewMachine(eng, 8<<30)
	drv := core.NewDriver(eng, core.DefaultConfig())
	mkStack := func(name string, pol nic.FaultPolicy) *tcp.Stack {
		dcfg := nic.DefaultConfig()
		dcfg.FirmwareJitterSigma = 0
		dev := nic.NewDevice(eng, net, dcfg)
		drv.AttachDevice(dev)
		as := m.NewAddressSpace(name, nil)
		ch := dev.NewChannel(name, as, 256, pol, 256)
		drv.EnableODP(ch)
		st := tcp.NewStack(ch, tcp.DefaultConfig())
		// Pre-fault rings (the §6.4 benchmarks eliminate the cold ring).
		rxBase, rxLen := st.RxBuffers()
		txBase, txLen := st.TxBuffers()
		as.TouchPages(rxBase.Page(), int(rxLen/mem.PageSize), true)
		ch.Domain.Map(rxBase.Page(), int(rxLen/mem.PageSize))
		as.TouchPages(txBase.Page(), int(txLen/mem.PageSize), true)
		ch.Domain.Map(txBase.Page(), int(txLen/mem.PageSize))
		return st
	}
	pol := nic.PolicyDrop
	if backup {
		pol = nic.PolicyBackup
	}
	recv := mkStack("recv", pol)
	send := mkStack("send", nic.PolicyBackup)
	s := NewEthStream(send, recv, 64<<10, 16<<20)
	if freq > 0 {
		rxBase, rxLen := recv.RxBuffers()
		s.Injector = NewFaultInjector(recv.Channel().AS, rxBase.Page(),
			int(rxLen/mem.PageSize), freq, major)
	}
	return eng, s, drv
}

func TestEthStreamFullRate(t *testing.T) {
	eng, s, _ := newEthStreamEnv(t, 0, false, true)
	s.Start()
	eng.RunUntil(30 * sim.Second)
	if s.DoneAt == 0 {
		t.Fatalf("stream incomplete: %d bytes", s.Received.N)
	}
	gbps := s.ThroughputGbps(eng.Now())
	if gbps < 7 {
		t.Fatalf("throughput = %.2f Gb/s", gbps)
	}
}

func TestEthStreamInjectionBackupVsDrop(t *testing.T) {
	run := func(backup bool) float64 {
		eng, s, _ := newEthStreamEnv(t, 1.0/(64<<10), false, backup) // one fault per 64KB
		s.Start()
		eng.RunUntil(120 * sim.Second)
		return s.ThroughputGbps(eng.Now())
	}
	backup := run(true)
	drop := run(false)
	if backup < 2*drop {
		t.Fatalf("backup %.2f Gb/s should dominate drop %.2f Gb/s under faults", backup, drop)
	}
}

func TestIBStreamWithInjection(t *testing.T) {
	run := func(freq float64) float64 {
		eng := sim.NewEngine(1)
		net := fabric.New(eng, fabric.DefaultInfiniBand())
		m := mem.NewMachine(eng, 8<<30)
		drv := core.NewDriver(eng, core.DefaultConfig())
		hcaS, hcaR := rc.NewHCA(eng, net, quietRC()), rc.NewHCA(eng, net, quietRC())
		drv.AttachHCA(hcaS)
		drv.AttachHCA(hcaR)
		asS := m.NewAddressSpace("s", nil)
		asR := m.NewAddressSpace("r", nil)
		snd, rcv := hcaS.NewQP(asS), hcaR.NewQP(asR)
		rc.Connect(snd, rcv)
		drv.EnableODPQP(snd)
		drv.EnableODPQP(rcv)
		s := NewIBStream(snd, rcv, 64<<10, 32<<20)
		if freq > 0 {
			base, pages := s.RecvRegion()
			s.Injector = NewFaultInjector(asR, base, pages, freq, false)
		}
		s.Start()
		eng.RunUntil(60 * sim.Second)
		if s.DoneAt == 0 {
			t.Fatalf("IB stream incomplete: %d bytes (freq=%g)", s.Received.N, freq)
		}
		return s.ThroughputGbps(eng.Now())
	}
	clean := run(0)
	faulty := run(1.0 / (256 << 10)) // one fault per 256KB
	if clean < 40 {
		t.Fatalf("clean IB stream = %.1f Gb/s", clean)
	}
	if faulty >= clean {
		t.Fatalf("faults did not cost anything: %.1f vs %.1f", faulty, clean)
	}
	if faulty < clean/20 {
		t.Fatalf("RNR recovery too costly: %.1f vs %.1f", faulty, clean)
	}
}
