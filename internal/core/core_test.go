package core

import (
	"errors"
	"testing"
	"testing/quick"

	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/tcp"
)

// --------------------------------------------------------------------------
// InfiniBand (RC) integration.

type ibEnv struct {
	eng      *sim.Engine
	m        *mem.Machine
	drv      *Driver
	a, b     *rc.QP
	asA, asB *mem.AddressSpace
}

func newIBEnv(t *testing.T, ramBytes int64, tweak func(*rc.Config)) *ibEnv {
	t.Helper()
	eng := sim.NewEngine(1)
	net := fabric.New(eng, fabric.DefaultInfiniBand())
	cfg := rc.DefaultConfig()
	cfg.FirmwareJitterSigma = 0
	if tweak != nil {
		tweak(&cfg)
	}
	m := mem.NewMachine(eng, ramBytes)
	drv := NewDriver(eng, DefaultConfig())
	hcaA, hcaB := rc.NewHCA(eng, net, cfg), rc.NewHCA(eng, net, cfg)
	drv.AttachHCA(hcaA)
	drv.AttachHCA(hcaB)
	e := &ibEnv{eng: eng, m: m, drv: drv}
	e.asA = m.NewAddressSpace("a", nil)
	e.asA.MapBytes(64 << 20)
	e.asB = m.NewAddressSpace("b", nil)
	e.asB.MapBytes(64 << 20)
	e.a, e.b = hcaA.NewQP(e.asA), hcaB.NewQP(e.asB)
	rc.Connect(e.a, e.b)
	drv.EnableODPQP(e.a)
	drv.EnableODPQP(e.b)
	return e
}

func TestODPColdSendRecv(t *testing.T) {
	e := newIBEnv(t, 1<<30, nil)
	var got []rc.RecvCompletion
	var doneAt sim.Time
	e.b.OnRecv = func(c rc.RecvCompletion) { got = append(got, c); doneAt = e.eng.Now() }
	e.b.PostRecv(rc.RecvWQE{ID: 1, Addr: 0, Len: mem.PageSize})
	e.a.PostSend(rc.SendWQE{ID: 1, Laddr: 0, Len: 4096, Payload: "cold"})
	e.eng.Run()
	if len(got) != 1 || got[0].Payload != "cold" {
		t.Fatalf("recv = %+v", got)
	}
	if e.drv.NPFs.N != 2 { // one send-side, one recv-side
		t.Fatalf("NPFs = %d, want 2", e.drv.NPFs.N)
	}
	// Both sides cold: send fault (~215µs) + RNR round (~280µs wait).
	if doneAt < 300*sim.Microsecond || doneAt > 2*sim.Millisecond {
		t.Fatalf("cold 4KB delivery took %v", doneAt)
	}
	if e.drv.Hist.Total.Count() != 2 {
		t.Fatalf("breakdown samples = %d", e.drv.Hist.Total.Count())
	}
	// Hardware should dominate (paper: ~90%).
	hwShare := (e.drv.Hist.Trigger.Mean() + e.drv.Hist.Resume.Mean()) / e.drv.Hist.Total.Mean()
	if hwShare < 0.5 {
		t.Fatalf("hardware share = %.2f, want dominant", hwShare)
	}
}

func TestODPNPFLatencyCalibration(t *testing.T) {
	// A warm sender into a cold single-page receive buffer: the recv-side
	// NPF total should sit near the paper's ~215 µs.
	e := newIBEnv(t, 1<<30, nil)
	e.asA.TouchPages(0, 1, true)
	e.a.Domain.Map(0, 1)
	e.b.PostRecv(rc.RecvWQE{ID: 1, Addr: 0, Len: mem.PageSize})
	e.a.PostSend(rc.SendWQE{ID: 1, Laddr: 0, Len: 4096})
	e.eng.Run()
	total := e.drv.Hist.Total.Mean() // µs
	if total < 160 || total > 280 {
		t.Fatalf("4KB minor NPF = %.1f µs, want ≈215 µs", total)
	}
}

func TestODPMajorFault(t *testing.T) {
	e := newIBEnv(t, 1<<30, nil)
	// Dirty the receive page, then force it out to swap.
	e.asB.TouchPages(0, 1, true)
	e.asB.EvictPages(0, 1)
	e.asA.TouchPages(0, 1, true)
	e.a.Domain.Map(0, 1)
	var doneAt sim.Time
	e.b.OnRecv = func(rc.RecvCompletion) { doneAt = e.eng.Now() }
	e.b.PostRecv(rc.RecvWQE{ID: 1, Addr: 0, Len: mem.PageSize})
	e.a.PostSend(rc.SendWQE{ID: 1, Laddr: 0, Len: 4096})
	e.eng.Run()
	if e.drv.MajorNPFs.N != 1 {
		t.Fatalf("major NPFs = %d", e.drv.MajorNPFs.N)
	}
	if doneAt < e.m.Swap.ReadLatency {
		t.Fatalf("major fault finished in %v, under swap latency", doneAt)
	}
}

func TestInvalidationFlowKeepsDeviceCoherent(t *testing.T) {
	// Tiny cgroup: the QP's buffers get evicted between messages, so every
	// message refaults, and the notifier must unmap the domain each time.
	eng := sim.NewEngine(1)
	net := fabric.New(eng, fabric.DefaultInfiniBand())
	cfg := rc.DefaultConfig()
	cfg.FirmwareJitterSigma = 0
	m := mem.NewMachine(eng, 1<<30)
	drv := NewDriver(eng, DefaultConfig())
	hcaA, hcaB := rc.NewHCA(eng, net, cfg), rc.NewHCA(eng, net, cfg)
	drv.AttachHCA(hcaA)
	drv.AttachHCA(hcaB)
	asA := m.NewAddressSpace("a", nil)
	asA.MapBytes(64 << 20)
	cg := mem.NewGroup("tiny", 8*mem.PageSize)
	asB := m.NewAddressSpace("b", cg)
	asB.MapBytes(64 << 20)
	a, b := hcaA.NewQP(asA), hcaB.NewQP(asB)
	rc.Connect(a, b)
	drv.EnableODPQP(a)
	drv.EnableODPQP(b)

	received := 0
	b.OnRecv = func(rc.RecvCompletion) { received++ }
	asA.TouchPages(0, 16, true)
	a.Domain.Map(0, 16)
	const msgs = 6
	for i := 0; i < msgs; i++ {
		// Each message lands in a different 4-page buffer; 8-page cgroup
		// forces eviction of earlier buffers.
		b.PostRecv(rc.RecvWQE{ID: int64(i), Addr: mem.VAddr(i*4) * mem.PageSize, Len: 16 << 10})
		a.PostSend(rc.SendWQE{ID: int64(i), Laddr: 0, Len: 16 << 10})
	}
	eng.Run()
	if received != msgs {
		t.Fatalf("received %d/%d under eviction pressure", received, msgs)
	}
	if drv.Inv.Mapped.N == 0 {
		t.Fatal("no mapped-page invalidations despite eviction of DMA buffers")
	}
	if cg.Used() > cg.Limit {
		t.Fatalf("cgroup over limit: %d > %d", cg.Used(), cg.Limit)
	}
}

// --------------------------------------------------------------------------
// Ethernet integration.

type ethEnv struct {
	eng            *sim.Engine
	net            *fabric.Network
	m              *mem.Machine
	drv            *Driver
	server, client *tcp.Stack
}

func newEthEnv(t *testing.T, serverPolicy nic.FaultPolicy, ringSize int, prefault bool) *ethEnv {
	t.Helper()
	eng := sim.NewEngine(1)
	net := fabric.New(eng, fabric.DefaultEthernet())
	m := mem.NewMachine(eng, 8<<30)
	cfg := DefaultConfig()
	cfg.PrefaultRing = prefault
	drv := NewDriver(eng, cfg)
	e := &ethEnv{eng: eng, net: net, m: m, drv: drv}

	mk := func(name string, policy nic.FaultPolicy, odp bool) *tcp.Stack {
		dcfg := nic.DefaultConfig()
		dcfg.FirmwareJitterSigma = 0
		dev := nic.NewDevice(eng, net, dcfg)
		drv.AttachDevice(dev)
		as := m.NewAddressSpace(name, nil)
		ch := dev.NewChannel(name, as, ringSize, policy, ringSize)
		if odp {
			drv.EnableODP(ch)
		}
		st := tcp.NewStack(ch, tcp.DefaultConfig())
		if !odp {
			if _, err := StaticPinAll(as, ch.Domain); err != nil {
				t.Fatalf("static pin: %v", err)
			}
		}
		return st
	}
	e.server = mk("server", serverPolicy, serverPolicy != nic.PolicyPinned)
	e.client = mk("client", nic.PolicyPinned, false)
	return e
}

func TestBackupDriverColdRing(t *testing.T) {
	e := newEthEnv(t, nic.PolicyBackup, 64, false)
	received := 0
	var doneAt sim.Time
	e.server.Listen(func(c *tcp.Conn) {
		c.OnMessage = func(payload any, n int) {
			received++
			doneAt = e.eng.Now()
		}
	})
	c := e.client.Dial(e.server.Channel().Dev.Node, e.server.Channel().Flow)
	const n = 100
	for i := 0; i < n; i++ {
		c.Send(4000, i)
	}
	e.eng.RunUntil(30 * sim.Second)
	if received != n {
		t.Fatalf("received %d/%d on cold backup ring", received, n)
	}
	// No TCP-visible loss: no retransmissions beyond maybe the handshake.
	if doneAt > 2*sim.Second {
		t.Fatalf("backup cold ring took %v", doneAt)
	}
	if e.drv.NPFs.N == 0 {
		t.Fatal("no NPFs recorded")
	}
}

func TestDropDriverColdRingSuffers(t *testing.T) {
	e := newEthEnv(t, nic.PolicyDrop, 64, false)
	received := 0
	var doneAt sim.Time
	e.server.Listen(func(c *tcp.Conn) {
		c.OnMessage = func(payload any, n int) {
			received++
			doneAt = e.eng.Now()
		}
	})
	c := e.client.Dial(e.server.Channel().Dev.Node, e.server.Channel().Flow)
	const n = 100
	for i := 0; i < n; i++ {
		c.Send(4000, i)
	}
	e.eng.RunUntil(300 * sim.Second)
	if received == n && doneAt < 2*sim.Second {
		t.Fatalf("drop policy finished suspiciously fast: %v", doneAt)
	}
	if e.client.Timeouts.N == 0 {
		t.Fatal("drop policy should force TCP timeouts")
	}
}

func TestPrefaultRingCutsRxFaults(t *testing.T) {
	run := func(prefault bool) uint64 {
		e := newEthEnv(t, nic.PolicyBackup, 64, prefault)
		received := 0
		e.server.Listen(func(c *tcp.Conn) {
			c.OnMessage = func(payload any, n int) { received++ }
		})
		c := e.client.Dial(e.server.Channel().Dev.Node, e.server.Channel().Flow)
		for i := 0; i < 50; i++ {
			c.Send(4000, i)
		}
		e.eng.RunUntil(30 * sim.Second)
		if received != 50 {
			t.Fatalf("prefault=%v received %d/50", prefault, received)
		}
		return e.server.Channel().Dev.RxToBackup.N
	}
	without := run(false)
	with := run(true)
	if with*4 > without {
		t.Fatalf("backup parks with prefault = %d, without = %d; prefault should collapse RX faults",
			with, without)
	}
}

// --------------------------------------------------------------------------
// Pinning strategies.

func TestStaticPinAllAndOvercommitFailure(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mem.NewMachine(eng, 64*mem.PageSize)
	u := nic.NewDevice(eng, fabric.New(eng, fabric.DefaultEthernet()), nic.DefaultConfig())

	as1 := m.NewAddressSpace("vm1", nil)
	as1.MapBytes(40 * mem.PageSize)
	ch1 := u.NewChannel("c1", as1, 8, nic.PolicyPinned, 8)
	if _, err := StaticPinAll(as1, ch1.Domain); err != nil {
		t.Fatalf("vm1 pin: %v", err)
	}
	if as1.PinnedBytes() != 40*mem.PageSize {
		t.Fatalf("pinned = %d", as1.PinnedBytes())
	}

	as2 := m.NewAddressSpace("vm2", nil)
	as2.MapBytes(40 * mem.PageSize)
	ch2 := u.NewChannel("c2", as2, 8, nic.PolicyPinned, 8)
	_, err := StaticPinAll(as2, ch2.Domain)
	if !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("vm2 pin err = %v, want OOM (Table 5's N/A)", err)
	}
}

func TestFineGrainedPinCycle(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mem.NewMachine(eng, 1<<30)
	u := nic.NewDevice(eng, fabric.New(eng, fabric.DefaultEthernet()), nic.DefaultConfig())
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(1 << 20)
	ch := u.NewChannel("c", as, 8, nic.PolicyPinned, 8)

	cost, release, err := FineGrainedPin(as, ch.Domain, 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("pin cost must be positive")
	}
	if !ch.Domain.Present(0) || as.PinnedBytes() != 64<<10 {
		t.Fatal("buffer not pinned+mapped")
	}
	relCost := release()
	if relCost <= 0 || as.PinnedBytes() != 0 || ch.Domain.Present(0) {
		t.Fatalf("release broken: cost=%v pinned=%d", relCost, as.PinnedBytes())
	}
}

func TestPinDownCacheAmortizes(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mem.NewMachine(eng, 1<<30)
	u := nic.NewDevice(eng, fabric.New(eng, fabric.DefaultEthernet()), nic.DefaultConfig())
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(16 << 20)
	ch := u.NewChannel("c", as, 8, nic.PolicyPinned, 8)
	pdc := NewPinDownCache(as, ch.Domain, 1<<20)

	first, err := pdc.Acquire(0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	second, err := pdc.Acquire(0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if second*10 > first {
		t.Fatalf("cache hit cost %v not well below miss cost %v", second, first)
	}
	if pdc.Hits.N != 1 || pdc.Misses.N != 1 {
		t.Fatalf("hits=%d misses=%d", pdc.Hits.N, pdc.Misses.N)
	}
}

func TestPinDownCacheCapacityEviction(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mem.NewMachine(eng, 1<<30)
	u := nic.NewDevice(eng, fabric.New(eng, fabric.DefaultEthernet()), nic.DefaultConfig())
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(64 << 20)
	ch := u.NewChannel("c", as, 8, nic.PolicyPinned, 8)
	pdc := NewPinDownCache(as, ch.Domain, 32*mem.PageSize)

	for i := 0; i < 16; i++ {
		if _, err := pdc.Acquire(mem.VAddr(i)*4*mem.PageSize, 4*mem.PageSize); err != nil {
			t.Fatal(err)
		}
		if pdc.PinnedBytes() > 32*mem.PageSize {
			t.Fatalf("cache exceeded capacity: %d", pdc.PinnedBytes())
		}
	}
	if pdc.Evictions.N == 0 {
		t.Fatal("no evictions at capacity")
	}
	if as.PinnedBytes() != pdc.PinnedBytes() {
		t.Fatalf("accounting mismatch: as=%d cache=%d", as.PinnedBytes(), pdc.PinnedBytes())
	}
	pdc.Flush()
	if as.PinnedBytes() != 0 {
		t.Fatalf("flush left %d pinned", as.PinnedBytes())
	}
}

// Property: under random acquire sequences the pin-down cache never exceeds
// capacity and its page set always matches the address space's pinned set.
func TestPinDownCacheInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		eng := sim.NewEngine(1)
		m := mem.NewMachine(eng, 1<<30)
		u := nic.NewDevice(eng, fabric.New(eng, fabric.DefaultEthernet()), nic.DefaultConfig())
		as := m.NewAddressSpace("p", nil)
		as.MapBytes(64 << 20)
		ch := u.NewChannel("c", as, 8, nic.PolicyPinned, 8)
		pdc := NewPinDownCache(as, ch.Domain, 16*mem.PageSize)
		for _, op := range ops {
			addr := mem.VAddr(op%64) * mem.PageSize
			length := (int(op/64) + 1) * mem.PageSize
			if _, err := pdc.Acquire(addr, length); err != nil {
				return false
			}
			if pdc.PinnedBytes() > 16*mem.PageSize {
				return false
			}
			if as.PinnedBytes() != pdc.PinnedBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCopyCost(t *testing.T) {
	cfg := DefaultConfig()
	if got := CopyCost(cfg, 10<<20); got != sim.Time(float64(10<<20)/10e9*1e9) {
		t.Fatalf("copy cost = %v", got)
	}
}
