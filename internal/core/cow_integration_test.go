package core

import (
	"testing"

	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/tcp"
)

// These tests cover the §5 observation that fork-with-COW and page
// migration re-cold a warm ring: resident pages lose their device mappings
// (or writability), so DMA faults again through the full NPF machinery.

func TestForkRecoldsWarmRing(t *testing.T) {
	e := newEthEnv(t, nic.PolicyBackup, 64, false)
	received := 0
	e.server.Listen(func(c *tcp.Conn) {
		c.OnMessage = func(payload any, n int) { received++ }
	})
	conn := e.client.Dial(e.server.Channel().Dev.Node, e.server.Channel().Flow)
	// Cycle the whole 64-entry ring so every buffer page is resident.
	for i := 0; i < 80; i++ {
		conn.Send(4000, i)
	}
	e.eng.RunUntil(5 * sim.Second)
	if received != 80 {
		t.Fatalf("warmup received %d/80", received)
	}
	warmNPFs := e.drv.NPFs.N
	serverAS := e.server.Channel().AS

	// The server process forks (e.g. to exec a helper): every resident
	// page is write-protected and device mappings drop.
	_, cost := serverAS.Fork("helper", nil)
	if cost <= 0 {
		t.Fatal("fork should pay invalidation costs")
	}
	if e.drv.Inv.Mapped.N == 0 {
		t.Fatal("fork did not invalidate device mappings")
	}

	for i := 0; i < 80; i++ {
		conn.Send(4000, 100+i)
	}
	e.eng.RunUntil(15 * sim.Second)
	if received != 160 {
		t.Fatalf("post-fork received %d/160", received)
	}
	if e.drv.NPFs.N <= warmNPFs {
		t.Fatal("post-fork traffic should refault (COW write faults)")
	}
	if serverAS.CowBreaks.N == 0 {
		t.Fatal("no COW breaks: receive DMA must have broken write protection")
	}
}

func TestMigrationRecoldsQP(t *testing.T) {
	e := newIBEnv(t, 1<<30, nil)
	Warm := func(qp *rc.QP, first mem.PageNum, pages int) {
		qp.AS.TouchPages(first, pages, true)
		qp.Domain.Map(first, pages)
	}
	Warm(e.a, 0, 16)
	Warm(e.b, 0, 16)
	received := 0
	e.b.OnRecv = func(rc.RecvCompletion) { received++ }
	e.b.PostRecv(rc.RecvWQE{ID: 1, Addr: 0, Len: 16 << 10})
	e.a.PostSend(rc.SendWQE{ID: 1, Laddr: 0, Len: 16 << 10})
	e.eng.Run()
	if received != 1 || e.drv.NPFs.N != 0 {
		t.Fatalf("warm transfer: recv=%d faults=%d", received, e.drv.NPFs.N)
	}

	// NUMA migration moves the receive buffers; mappings drop, content
	// survives.
	n, _ := e.asB.MigratePages(0, 4)
	if n != 4 {
		t.Fatalf("migrated %d", n)
	}
	e.b.PostRecv(rc.RecvWQE{ID: 2, Addr: 0, Len: 16 << 10})
	e.a.PostSend(rc.SendWQE{ID: 2, Laddr: 0, Len: 16 << 10})
	e.eng.Run()
	if received != 2 {
		t.Fatalf("post-migration recv = %d", received)
	}
	if e.drv.NPFs.N == 0 {
		t.Fatal("migrated buffers must refault")
	}
	// But no major faults: migration preserves content.
	if e.drv.MajorNPFs.N != 0 {
		t.Fatalf("major faults = %d after migration", e.drv.MajorNPFs.N)
	}
}

func TestReadOnlyMappingUpgradesOnDMAWrite(t *testing.T) {
	// A buffer first used as a SEND source is resolved read-only; reusing
	// it as a receive buffer must fault again (permission) and upgrade.
	e := newIBEnv(t, 1<<30, nil)
	e.asB.TouchPages(64, 4, true)
	e.b.Domain.Map(64, 4) // receiver warm for the first message

	received := 0
	e.b.OnRecv = func(rc.RecvCompletion) { received++ }
	e.b.PostRecv(rc.RecvWQE{ID: 1, Addr: mem.PageNum(64).Base(), Len: mem.PageSize})
	// Cold send buffer at page 0: resolved with read intent.
	e.a.PostSend(rc.SendWQE{ID: 1, Laddr: 0, Len: 4096})
	e.eng.Run()
	if received != 1 {
		t.Fatal("first message lost")
	}
	if !e.a.Domain.Present(0) || e.a.Domain.Writable(0) {
		t.Fatalf("send buffer should be mapped read-only: present=%v writable=%v",
			e.a.Domain.Present(0), e.a.Domain.Writable(0))
	}

	// Now the same page becomes a receive target on A.
	faultsBefore := e.a.HCA().Faults.N
	gotBack := 0
	e.a.OnRecv = func(rc.RecvCompletion) { gotBack++ }
	e.a.PostRecv(rc.RecvWQE{ID: 2, Addr: 0, Len: mem.PageSize})
	e.b.PostSend(rc.SendWQE{ID: 2, Laddr: mem.PageNum(64).Base(), Len: 4096})
	e.eng.Run()
	if gotBack != 1 {
		t.Fatal("reverse message lost")
	}
	if e.a.HCA().Faults.N <= faultsBefore {
		t.Fatal("DMA write to read-only mapping must fault (permission upgrade)")
	}
	if !e.a.Domain.Writable(0) {
		t.Fatal("mapping not upgraded to writable")
	}
}
