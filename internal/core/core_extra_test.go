package core

import (
	"testing"

	"npf/internal/iommu"
	"npf/internal/mem"
	"npf/internal/rc"
	"npf/internal/sim"
)

func TestFaultCommitSkipsReclaimedPages(t *testing.T) {
	// A page evicted while the driver is mid-resolution must not be mapped
	// at commit time (the device would DMA to a reused frame).
	e := newIBEnv(t, 1<<30, nil)
	e.asA.TouchPages(0, 1, true)
	e.a.Domain.Map(0, 1)
	e.b.PostRecv(rc.RecvWQE{ID: 1, Addr: 0, Len: mem.PageSize})
	e.a.PostSend(rc.SendWQE{ID: 1, Laddr: 0, Len: 4096})
	// The recv NPF fires around t≈140µs; the driver's software phase takes
	// a few µs and commits at ≈150µs. Evict the page in that window.
	evicted := false
	e.eng.At(146*sim.Microsecond, func() {
		if e.asB.Resident(0) && !e.b.Domain.Present(0) {
			n, _ := e.asB.EvictPages(0, 1)
			evicted = n == 1
		}
	})
	received := false
	e.b.OnRecv = func(rc.RecvCompletion) { received = true }
	e.eng.Run()
	if !received {
		t.Fatal("message never delivered")
	}
	if evicted && e.drv.NPFs.N < 2 {
		t.Fatalf("NPFs = %d; mid-flight eviction should force a second resolution", e.drv.NPFs.N)
	}
}

func TestDriverCountsMinorVsMajor(t *testing.T) {
	e := newIBEnv(t, 1<<30, nil)
	e.asA.TouchPages(0, 4, true)
	e.a.Domain.Map(0, 4)
	// First recv buffer: cold (minor). Second: swapped out (major).
	e.asB.TouchPages(4, 1, true)
	e.asB.EvictPages(4, 1)
	got := 0
	e.b.OnRecv = func(rc.RecvCompletion) { got++ }
	e.b.PostRecv(rc.RecvWQE{ID: 1, Addr: 0, Len: mem.PageSize})
	e.b.PostRecv(rc.RecvWQE{ID: 2, Addr: mem.PageNum(4).Base(), Len: mem.PageSize})
	e.a.PostSend(rc.SendWQE{ID: 1, Laddr: 0, Len: 4096})
	e.a.PostSend(rc.SendWQE{ID: 2, Laddr: 0, Len: 4096})
	e.eng.Run()
	if got != 2 {
		t.Fatalf("received %d", got)
	}
	if e.drv.NPFs.N != 2 || e.drv.MajorNPFs.N != 1 {
		t.Fatalf("NPFs=%d major=%d, want 2/1", e.drv.NPFs.N, e.drv.MajorNPFs.N)
	}
}

func TestInvalidationFastPathCounters(t *testing.T) {
	e := newIBEnv(t, 1<<30, nil)
	// Resident but never device-mapped: eviction takes the fast path.
	e.asB.TouchPages(100, 8, true)
	e.asB.EvictPages(100, 8)
	if e.drv.Inv.FastPath.N != 8 {
		t.Fatalf("fast-path invalidations = %d", e.drv.Inv.FastPath.N)
	}
	if e.drv.Inv.Mapped.N != 0 {
		t.Fatalf("mapped invalidations = %d", e.drv.Inv.Mapped.N)
	}
}

func TestSharedDomainNotifierRegisteredOnce(t *testing.T) {
	e := newIBEnv(t, 1<<30, nil)
	// A second QP sharing asB+domain: enabling ODP again must not stack a
	// second notifier (which would double invalidation costs).
	qp2 := e.b.HCA().NewQPShared(e.asB, e.b.Domain)
	e.drv.EnableODPQP(qp2)
	e.asB.TouchPages(0, 1, true)
	e.b.Domain.Map(0, 1)
	e.asB.EvictPages(0, 1)
	if e.drv.Inv.Mapped.N != 1 {
		t.Fatalf("mapped invalidations = %d, want exactly 1", e.drv.Inv.Mapped.N)
	}
}

func TestStaticPinCost(t *testing.T) {
	eng := sim.NewEngine(1)
	m := mem.NewMachine(eng, 1<<30)
	drv := NewDriver(eng, DefaultConfig())
	_ = drv
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(64 << 20)
	u := newTestDomain(eng, m)
	cost, err := StaticPinAll(as, u)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("static pinning should cost time")
	}
	if as.PinnedBytes() != 64<<20 {
		t.Fatalf("pinned = %d", as.PinnedBytes())
	}
	if u.MappedPages() != 64<<20/mem.PageSize {
		t.Fatalf("mapped = %d", u.MappedPages())
	}
}

// newTestDomain builds a standalone IOMMU domain for pinning tests.
func newTestDomain(eng *sim.Engine, m *mem.Machine) *iommu.Domain {
	return iommu.New(0).NewDomain()
}
