package core

import (
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/sim"
	"npf/internal/trace"
)

// pendingRx is one queued receive-fault entry plus how many resolution
// attempts it has already burned (OOM backoffs, injected resolver timeouts,
// re-resolutions after a racing reclaim) — the counter behind the backup
// resolver's exponential backoff and DegradeToPinned escape hatch.
type pendingRx struct {
	e       nic.RxNPFEntry
	attempt int
}

// chanState is the per-IOuser driver state of §5: the software queue q of
// faulting packets and the resolver thread T that merges them back into the
// IOuser's ring. T is modelled as a sequential event chain — one packet in
// service at a time, like a kernel thread.
type chanState struct {
	d    *Driver
	ch   *nic.Channel
	q    []pendingRx
	busy bool
	// waiting marks that T is blocked until the IOuser posts descriptors
	// (the tail interrupt the paper's T asks the NIC for).
	waiting bool
}

// pump services the head of q. It reschedules itself after each resolution
// and parks on the ring's tail watch when the IOuser has not yet posted the
// target descriptor.
func (st *chanState) pump() {
	if st.busy || st.waiting || len(st.q) == 0 {
		return
	}
	p := st.q[0]
	e := p.e
	ring := st.ch.Rx

	// T first blocks until there is room in the target IOuser ring.
	if e.Index >= ring.Tail() {
		st.waiting = true
		ring.WatchTail(func() {
			ring.WatchTail(nil)
			st.waiting = false
			st.pump()
		})
		return
	}
	st.busy = true
	st.q = st.q[1:]

	// Ensure the descriptor and buffer(s) are present and the IOMMU page
	// tables reflect that. Re-translate now: an earlier resolution may
	// already have covered these pages.
	desc, ok := ring.DescriptorAt(e.Index)
	var pages []mem.PageNum
	if ok {
		_, pages = st.ch.Domain.TranslateAccess(desc.Buffer, desc.Len, true)
	}
	if st.d.Cfg.PrefaultRing {
		pages = append(pages, st.d.prefaultPages(st.ch)...)
	}
	var copyCost sim.Time
	if e.Packet != nil {
		// Copying the parked packet into the IOuser buffer is CPU work.
		copyCost = sim.Time(int64(e.Packet.Size) * int64(sim.Second) / st.d.Cfg.MemcpyBps)
	}
	// The packet stops being "parked" once T starts serving it.
	st.d.tr.End(e.Parked)
	if e.Packet != nil && p.attempt == 0 {
		// Backup-ring residency of the causal record: park to service start
		// (requeued attempts accrue to the retry stages instead).
		st.d.tr.FaultStageAt(e.Fault, trace.FSParked, e.Start, st.d.Eng.Now()-e.Start, e.Index, e.BitIndex)
	}
	st.d.serveFault(st.ch.AS, st.ch.Domain, pages, true, e.Start, 0, copyCost, e.Span, e.Fault, p.attempt,
		func() {
			if e.Packet != nil {
				// The OS may have reclaimed the buffer again while T
				// worked (its copy would refault): resolve once more.
				if desc, ok := ring.DescriptorAt(e.Index); ok {
					if _, missing := st.ch.Domain.TranslateAccess(desc.Buffer, desc.Len, true); len(missing) > 0 {
						st.busy = false
						st.q = append([]pendingRx{{e: e, attempt: p.attempt + 1}}, st.q...)
						st.pump()
						return
					}
				}
				ring.FillResolved(e.Index, e.Packet)
				ring.ResolveRNPF(e.BitIndex)
			} else {
				ring.ClearInflight(e.Index)
			}
			// The receive flow is unblocked now: close the causal record.
			st.d.tr.FaultDone(e.Fault, st.d.Eng.Now())
			st.busy = false
			st.pump()
		},
		func() {
			// Resolution could not complete right now (OOM after reclaim or
			// an injected resolver timeout): requeue and retry with a bumped
			// attempt count; the packet stays parked (bounded by the backup
			// ring, as in hardware).
			st.busy = false
			st.q = append([]pendingRx{{e: e, attempt: p.attempt + 1}}, st.q...)
			st.pump()
		})
}
