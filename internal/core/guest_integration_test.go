package core

import (
	"testing"

	"npf/internal/iommu"
	"npf/internal/mem"
	"npf/internal/rc"
	"npf/internal/sim"
)

// §2.4: guest-table protection is orthogonal to and composes with the
// IOprovider's NPF support — strict protection for the IOuser, canonical
// memory optimizations for the IOprovider, simultaneously.

func TestGuestTableComposesWithODP(t *testing.T) {
	e := newIBEnv(t, 1<<30, nil)
	guest := iommu.NewGuestTable()
	e.b.Domain.SetGuestTable(guest)

	received := 0
	e.b.OnRecv = func(rc.RecvCompletion) { received++ }

	// 1. Receive into a guest-blocked buffer: dropped, no NPF, no
	// delivery — the sender keeps retrying into a black hole.
	e.b.PostRecv(rc.RecvWQE{ID: 1, Addr: 0, Len: mem.PageSize})
	e.asA.TouchPages(0, 4, true)
	e.a.Domain.Map(0, 4)
	e.a.PostSend(rc.SendWQE{ID: 1, Laddr: 0, Len: 4096})
	e.eng.RunUntil(50 * sim.Millisecond)
	if received != 0 {
		t.Fatal("guest-blocked receive was delivered")
	}
	if e.b.HCA().ProtectionDrops.N == 0 {
		t.Fatal("protection drop not counted")
	}
	if e.drv.NPFs.N != 0 {
		t.Fatal("protection violation must not raise NPFs")
	}

	// 2. The IOuser grants access; ODP then demand-pages the (still cold)
	// buffer through the normal NPF flow, and the retransmission lands.
	guest.Allow(0, 1)
	e.eng.Run()
	if received != 1 {
		t.Fatalf("received %d after grant", received)
	}
	if e.drv.NPFs.N == 0 {
		t.Fatal("granted cold buffer should fault through ODP")
	}
}

func TestGuestRevokeStopsTraffic(t *testing.T) {
	e := newIBEnv(t, 1<<30, nil)
	guest := iommu.NewGuestTable()
	guest.Allow(0, 64)
	e.b.Domain.SetGuestTable(guest)
	e.asA.TouchPages(0, 16, true)
	e.a.Domain.Map(0, 16)

	received := 0
	e.b.OnRecv = func(rc.RecvCompletion) { received++ }
	e.b.PostRecv(rc.RecvWQE{ID: 1, Addr: 0, Len: mem.PageSize})
	e.a.PostSend(rc.SendWQE{ID: 1, Laddr: 0, Len: 4096})
	e.eng.Run()
	if received != 1 {
		t.Fatal("granted traffic blocked")
	}

	// Fine-grained revoke (the IOuser's own unmap): later traffic to the
	// same buffer is dropped regardless of the host-side ODP state.
	guest.Revoke(0, 64)
	e.b.PostRecv(rc.RecvWQE{ID: 2, Addr: 0, Len: mem.PageSize})
	e.a.PostSend(rc.SendWQE{ID: 2, Laddr: 0, Len: 4096})
	e.eng.RunUntil(e.eng.Now() + 50*sim.Millisecond)
	if received != 1 {
		t.Fatal("revoked buffer still receives")
	}
}
