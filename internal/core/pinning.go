package core

import (
	"container/list"

	"npf/internal/iommu"
	"npf/internal/mem"
	"npf/internal/sim"
	"npf/internal/trace"
)

// This file implements the three zero-copy pinning strategies of §2.2 that
// every experiment compares NPFs against, plus the copy baseline of §6.2.

// StaticPin pins and maps an entire region — used to statically pin a whole
// IOuser address space (SRIOV/DPDK production practice). It fails with
// mem.ErrOutOfMemory when physical memory cannot hold it, which is exactly
// Table 5's "N/A" entries.
func StaticPin(as *mem.AddressSpace, dom *iommu.Domain, addr mem.VAddr, length int64) (sim.Time, error) {
	first := addr.Page()
	count := int((length + mem.PageSize - 1) / mem.PageSize)
	res, err := as.Pin(first, count)
	if err != nil {
		return res.Cost, err
	}
	return res.Cost + dom.MapBatch(pageRange(first, count)), nil
}

// StaticPinAll pins an address space's entire mapped range.
func StaticPinAll(as *mem.AddressSpace, dom *iommu.Domain) (sim.Time, error) {
	return StaticPin(as, dom, 0, as.MappedBytes())
}

// FineGrainedPin pins and maps one DMA buffer immediately before an I/O
// operation; the returned release function unpins and unmaps it right
// after. This is the general-purpose kernel DMA API discipline (§2.2),
// safe but slow: the full map/unmap cost is paid on every operation.
func FineGrainedPin(as *mem.AddressSpace, dom *iommu.Domain, addr mem.VAddr, length int) (cost sim.Time, release func() sim.Time, err error) {
	first := addr.Page()
	count := mem.PagesSpanned(addr, length)
	res, err := as.Pin(first, count)
	if err != nil {
		return res.Cost, nil, err
	}
	cost = res.Cost + dom.MapBatch(pageRange(first, count))
	release = func() sim.Time {
		c := as.Unpin(first, count)
		uc, _ := dom.Unmap(first, count)
		return c + uc
	}
	return cost, release, nil
}

// PinDownCache is the §2.2 coarse-grained strategy: a bounded cache of
// pinned pages with LRU eviction. Given a big-enough bound it behaves like
// static pinning (HPC practice); with pressure it dynamically (un)pins —
// at the cost the paper's Figure 9 "pin" line shows, and of "thousands of
// lines" of bookkeeping in real middleware (§6.3).
type PinDownCache struct {
	AS       *mem.AddressSpace
	Dom      *iommu.Domain
	Capacity int64 // bytes of pinned memory allowed; 0 = unlimited

	pages map[mem.PageNum]*list.Element
	lru   *list.List

	Hits      sim.Counter
	Misses    sim.Counter
	Evictions sim.Counter
	// LookupCost models the cache's own bookkeeping per operation.
	LookupCost sim.Time

	tr     *trace.Tracer
	cHits  *trace.Counter
	cMiss  *trace.Counter
	cEvict *trace.Counter
}

// SetTracer mirrors the cache's hit/miss/eviction counters into the metrics
// registry and records a "pin" span per miss (the synchronous registration
// work an operation stalls on).
func (c *PinDownCache) SetTracer(tr *trace.Tracer) {
	c.tr = tr
	c.cHits = tr.Counter("pin.cache_hits")
	c.cMiss = tr.Counter("pin.cache_misses")
	c.cEvict = tr.Counter("pin.cache_evictions")
	//npf:probepure — PinnedBytes only reads list.Len (a pure field read the analyzer cannot see into container/list)
	tr.Probe("pin.pinned_bytes", func() float64 {
		return float64(c.PinnedBytes())
	})
	// Probes under one name sum, so with several caches on one tracer this
	// column reads as summed per-cache hit rates (divide by the cache count
	// when interpreting); single-cache setups read it directly as a ratio.
	tr.Probe("pin.cache_hit_rate", func() float64 {
		total := c.Hits.N + c.Misses.N
		if total == 0 {
			return 0
		}
		return float64(c.Hits.N) / float64(total)
	})
}

// NewPinDownCache creates a cache bounding pinned memory to capacity bytes.
func NewPinDownCache(as *mem.AddressSpace, dom *iommu.Domain, capacity int64) *PinDownCache {
	return &PinDownCache{
		AS: as, Dom: dom, Capacity: capacity,
		pages:      make(map[mem.PageNum]*list.Element),
		lru:        list.New(),
		LookupCost: 150 * sim.Nanosecond,
	}
}

// PinnedBytes reports the cache's current pinned footprint.
func (c *PinDownCache) PinnedBytes() int64 { return int64(c.lru.Len()) * mem.PageSize }

// Acquire ensures [addr, addr+length) is pinned and mapped, registering
// (and possibly evicting) as needed. It returns the synchronous cost. The
// buffer stays pinned until evicted by capacity pressure.
func (c *PinDownCache) Acquire(addr mem.VAddr, length int) (sim.Time, error) {
	cost := c.LookupCost
	first := addr.Page()
	count := mem.PagesSpanned(addr, length)
	var toPin []mem.PageNum
	for i := 0; i < count; i++ {
		pn := first + mem.PageNum(i)
		if el, ok := c.pages[pn]; ok {
			c.lru.MoveToBack(el)
			continue
		}
		toPin = append(toPin, pn)
	}
	if len(toPin) == 0 {
		c.Hits.Inc()
		c.cHits.Inc()
		return cost, nil
	}
	c.Misses.Inc()
	c.cMiss.Inc()
	// Make room first, evicting as one batch (one invalidation sync, the
	// way real registration caches deregister whole regions).
	var victims []mem.PageNum
	for c.Capacity > 0 && int64(c.lru.Len()+len(toPin))*mem.PageSize > c.Capacity {
		front := c.lru.Front()
		if front == nil {
			break
		}
		pn := front.Value.(mem.PageNum)
		c.lru.Remove(front)
		delete(c.pages, pn)
		c.Evictions.Inc()
		c.cEvict.Inc()
		cost += c.AS.Unpin(pn, 1)
		victims = append(victims, pn)
	}
	if len(victims) > 0 {
		uc, _ := c.Dom.UnmapBatch(victims)
		cost += uc
	}
	for _, pn := range toPin {
		res, err := c.AS.Pin(pn, 1)
		cost += res.Cost
		if err != nil {
			return cost, err
		}
		c.pages[pn] = c.lru.PushBack(pn)
	}
	cost += c.Dom.MapBatch(toPin)
	if c.tr.Enabled() {
		now := c.tr.Now()
		id := c.tr.Span(0, "pin", "acquire", now, now+cost)
		c.tr.ArgInt(id, "pages", int64(len(toPin)))
		c.tr.ArgInt(id, "evicted", int64(len(victims)))
	}
	return cost, nil
}

func (c *PinDownCache) evictOne() (sim.Time, bool) {
	front := c.lru.Front()
	if front == nil {
		return 0, false
	}
	pn := front.Value.(mem.PageNum)
	c.lru.Remove(front)
	delete(c.pages, pn)
	c.Evictions.Inc()
	c.cEvict.Inc()
	cost := c.AS.Unpin(pn, 1)
	uc, _ := c.Dom.Unmap(pn, 1)
	return cost + uc, true
}

// Flush unpins everything (teardown).
func (c *PinDownCache) Flush() sim.Time {
	var cost sim.Time
	for {
		cst, ok := c.evictOne()
		if !ok {
			return cost
		}
		cost += cst
	}
}

// CopyCost models the §6.2 "copy" baseline: staging data through a
// pre-pinned bounce buffer costs one CPU copy of the payload at each end.
func CopyCost(cfg Config, n int) sim.Time {
	return sim.Time(int64(n) * int64(sim.Second) / cfg.MemcpyBps)
}

func pageRange(first mem.PageNum, count int) []mem.PageNum {
	pages := make([]mem.PageNum, count)
	for i := range pages {
		pages[i] = first + mem.PageNum(i)
	}
	return pages
}
