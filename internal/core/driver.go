// Package core is the paper's primary contribution: the IOprovider driver
// that gives NICs page-fault support ("on-demand paging", ODP).
//
// It implements:
//
//   - the NPF flow of Figure 2 (steps 1–4): the device reports missing
//     translations, the driver queries the OS (faulting pages in, possibly
//     from swap), batch-updates the device's IOMMU page tables, and tells
//     the firmware to resume;
//   - the invalidation flow (steps a–d) as an MMU notifier: before the OS
//     reuses a frame, the driver unmaps its IOVA and flushes the IOTLB;
//   - the §5 Ethernet backup-ring driver: a per-IOuser software queue and a
//     resolver that waits for ring room, faults buffers in, merges parked
//     packets, and notifies the NIC — keeping the IOuser unaware;
//   - the §4 optimizations: scatter-gather batching/prefetch, the in-flight
//     bitmap (implemented device-side), and optional ring prefaulting;
//   - the baselines every experiment compares against: static pinning,
//     fine-grained pinning, and a pin-down cache (pinning.go).
package core

import (
	"errors"
	"fmt"
	"sort"

	"npf/internal/iommu"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/trace"
)

// Config holds driver-side cost parameters and policy knobs.
type Config struct {
	// DispatchCost is interrupt-handler entry/exit overhead.
	DispatchCost sim.Time
	// PerPageLookup is the OS cost to resolve one IOVA to a physical
	// address (get_user_pages bookkeeping), on top of mem's fault costs.
	PerPageLookup sim.Time
	// CheckCost is the invalidation fast path: finding the memory region
	// and checking whether the page was ever mapped (Figure 3b "checks").
	CheckCost sim.Time
	// UpdateCost is the driver's internal-state update after an
	// invalidation (Figure 3b "updates").
	UpdateCost sim.Time
	// MemcpyBps is the CPU copy bandwidth used when the backup-ring
	// resolver merges packets into IOuser buffers (and by the copy-based
	// baselines).
	MemcpyBps int64
	// PrefaultRing makes the backup resolver and drop-path handler fault
	// in every posted descriptor of the ring on the first rNPF (§3's
	// pre-faulting optimization; incomplete as a solution, useful as one).
	PrefaultRing bool
	// RetryBackoffBase is the first retry delay when a fault resolution
	// cannot complete (OOM after reclaim, or an injected resolver timeout);
	// successive retries double it up to RetryBackoffMax. Equal values give
	// the pre-backoff constant delay.
	RetryBackoffBase sim.Time
	// RetryBackoffMax caps the exponential retry delay.
	RetryBackoffMax sim.Time
	// MaxNPFRetries, with DegradeToPinned, is the escape hatch for a
	// resolver that keeps timing out: after this many failed attempts on
	// one fault the driver stops trusting on-demand resolution and pins the
	// pages outright (so they can never fault again). 0 disables.
	MaxNPFRetries int
	// DegradeToPinned enables the pin-instead-of-retry escape hatch.
	DegradeToPinned bool
}

// RetryBackoff returns the delay before retry number attempt (0-based):
// RetryBackoffBase doubled per attempt, capped at RetryBackoffMax.
func (c Config) RetryBackoff(attempt int) sim.Time {
	d := c.RetryBackoffBase
	if d <= 0 {
		d = 100 * sim.Microsecond
	}
	for i := 0; i < attempt; i++ {
		if c.RetryBackoffMax > 0 && d >= c.RetryBackoffMax {
			break
		}
		d *= 2
	}
	if c.RetryBackoffMax > 0 && d > c.RetryBackoffMax {
		d = c.RetryBackoffMax
	}
	return d
}

// ResolverInjector perturbs fault resolution — the injection point the
// chaos subsystem uses to model a slow or wedged IOprovider. Each
// resolution attempt asks it for an extra software delay; timeout true
// aborts the attempt entirely (the driver retries with exponential
// backoff, or pins the pages once the DegradeToPinned escape hatch trips).
type ResolverInjector interface {
	ResolveDelay(attempt, pages int) (extra sim.Time, timeout bool)
}

// InvalidationInjector perturbs the MMU-notifier flow: extra is added to
// the invalidation's synchronous cost (a delayed invalidation), and
// duplicates schedules that many redundant re-deliveries of the same
// unmap — adversarial timing the Figure 2 a–d flow must tolerate.
type InvalidationInjector interface {
	OnInvalidate(first mem.PageNum, count int) (extra sim.Time, duplicates int)
}

// DefaultConfig returns values calibrated against Figure 3. Retry backoff
// defaults to the historical constant 100 µs (base == max, no growth).
func DefaultConfig() Config {
	return Config{
		DispatchCost:     4 * sim.Microsecond,
		PerPageLookup:    40 * sim.Nanosecond,
		CheckCost:        9 * sim.Microsecond,
		UpdateCost:       9 * sim.Microsecond,
		MemcpyBps:        10e9,
		RetryBackoffBase: 100 * sim.Microsecond,
		RetryBackoffMax:  100 * sim.Microsecond,
	}
}

// Breakdown records the Figure 3a execution components of served NPFs, in
// microseconds.
type Breakdown struct {
	Trigger  sim.Histogram // (i)→(ii): firmware detects and interrupts [hw]
	DriverSW sim.Histogram // (ii)→(iii): driver + OS produce the pages [sw]
	UpdateHW sim.Histogram // (iii)→(iv): IOMMU page-table update [sw+hw]
	Resume   sim.Histogram // (iv)→(v): device resumes [hw]
	Total    sim.Histogram
}

// Merge folds every sample of other into b, component by component, so
// breakdowns gathered on seed-isolated replica engines can be combined into
// one population (the parallel sweep runner merges in replica order to keep
// results byte-identical to a serial run).
func (b *Breakdown) Merge(other *Breakdown) {
	b.Trigger.Merge(&other.Trigger)
	b.DriverSW.Merge(&other.DriverSW)
	b.UpdateHW.Merge(&other.UpdateHW)
	b.Resume.Merge(&other.Resume)
	b.Total.Merge(&other.Total)
}

func (b *Breakdown) record(trigger, driver, update, resume sim.Time) {
	b.Trigger.AddTime(trigger)
	b.DriverSW.AddTime(driver)
	b.UpdateHW.AddTime(update)
	b.Resume.AddTime(resume)
	b.Total.AddTime(trigger + driver + update + resume)
}

// InvalidationStats records the Figure 3b components.
type InvalidationStats struct {
	Total    sim.Histogram // mapped-path invalidations, µs
	FastPath sim.Counter   // invalidations of never-mapped pages
	Mapped   sim.Counter
}

// Driver is the per-host IOprovider driver. Attach devices and adapters to
// it, then enable ODP on individual channels/QPs or pin them instead.
type Driver struct {
	Eng *sim.Engine
	Cfg Config

	chans      map[*nic.Channel]*chanState
	registered map[*iommu.Domain]bool

	// Stats.
	NPFs      sim.Counter
	MajorNPFs sim.Counter
	// RxReports counts receive-fault entries delivered by devices (before
	// the resolver's dedup — the §4 in-flight bitmap bounds this).
	RxReports sim.Counter
	Hist      Breakdown
	Inv       InvalidationStats
	// ResolverTimeouts counts resolution attempts aborted by an injected
	// resolver timeout; DegradedPins counts pages pinned by the
	// DegradeToPinned escape hatch; InvDuplicates counts injected duplicate
	// notifier deliveries.
	ResolverTimeouts sim.Counter
	DegradedPins     sim.Counter
	InvDuplicates    sim.Counter

	// outstanding counts NPFs currently being serviced: incremented when a
	// fault first enters serveFault, decremented when its pages commit.
	// Retries (resolver timeout, OOM backoff) keep the fault outstanding.
	outstanding int

	// Fault-injection hooks (nil = no injection).
	resolver ResolverInjector
	inval    InvalidationInjector

	// Telemetry (nil-safe: a nil tracer and nil handles disable everything).
	tr         *trace.Tracer
	cNPF       *trace.Counter
	cMajor     *trace.Counter
	cRxReports *trace.Counter
	cOOM       *trace.Counter
	cInvFast   *trace.Counter
	cInvMapped *trace.Counter
	cResolveTO *trace.Counter
	cDegraded  *trace.Counter
	cInvDup    *trace.Counter
	lTrigger   *trace.LatencyHist
	lDriver    *trace.LatencyHist
	lUpdate    *trace.LatencyHist
	lResume    *trace.LatencyHist
	lTotal     *trace.LatencyHist
	lInv       *trace.LatencyHist
}

// SetTracer wires telemetry into the driver: per-stage NPF latency
// distributions (the Figure 3a components), fault/invalidation counters,
// and lifecycle spans recorded by serveFault. Safe to call with nil.
func (d *Driver) SetTracer(tr *trace.Tracer) {
	d.tr = tr
	d.cNPF = tr.Counter("core.npfs")
	d.cMajor = tr.Counter("core.major_npfs")
	d.cRxReports = tr.Counter("core.rx_reports")
	d.cOOM = tr.Counter("core.oom_backoffs")
	d.cInvFast = tr.Counter("core.inv_fastpath")
	d.cInvMapped = tr.Counter("core.inv_mapped")
	d.cResolveTO = tr.Counter("core.resolver_timeouts")
	d.cDegraded = tr.Counter("core.degraded_pins")
	d.cInvDup = tr.Counter("core.inv_duplicates")
	d.lTrigger = tr.Latency("core.npf_trigger_us")
	d.lDriver = tr.Latency("core.npf_driver_us")
	d.lUpdate = tr.Latency("core.npf_update_us")
	d.lResume = tr.Latency("core.npf_resume_us")
	d.lTotal = tr.Latency("core.npf_total_us")
	d.lInv = tr.Latency("core.inv_mapped_us")
	tr.Probe("core.outstanding_npfs", func() float64 {
		return float64(d.outstanding)
	})
	tr.Probe("core.backup_queue_depth", func() float64 {
		return float64(d.PendingBackupWork())
	})
}

// NewDriver creates a driver.
func NewDriver(eng *sim.Engine, cfg Config) *Driver {
	return &Driver{
		Eng:        eng,
		Cfg:        cfg,
		chans:      make(map[*nic.Channel]*chanState),
		registered: make(map[*iommu.Domain]bool),
	}
}

// SetResolverInjector installs (or, with nil, removes) the fault-injection
// hook consulted on every resolution attempt.
func (d *Driver) SetResolverInjector(ij ResolverInjector) { d.resolver = ij }

// SetInvalidationInjector installs (or, with nil, removes) the
// fault-injection hook consulted on every MMU-notifier invalidation.
func (d *Driver) SetInvalidationInjector(ij InvalidationInjector) { d.inval = ij }

// AttachDevice routes an Ethernet NIC's fault interrupts to this driver.
func (d *Driver) AttachDevice(dev *nic.Device) { dev.SetNPFSink(d) }

// AttachHCA routes an InfiniBand adapter's fault interrupts to this driver.
func (d *Driver) AttachHCA(h *rc.HCA) { h.SetFaultSink(d) }

// EnableODP registers a channel for on-demand paging: its IOMMU domain
// starts empty, faults populate it, and an MMU notifier keeps it coherent
// with the OS. This is all an IOuser needs — no pinning anywhere.
func (d *Driver) EnableODP(ch *nic.Channel) {
	d.chans[ch] = &chanState{d: d, ch: ch}
	d.registerNotifier(ch.AS, ch.Domain)
}

// EnableODPQP registers a QP for on-demand paging.
func (d *Driver) EnableODPQP(qp *rc.QP) {
	d.registerNotifier(qp.AS, qp.Domain)
}

// registerNotifier wires the invalidation flow (Figure 2 steps a–d): when
// the OS wants a frame back, unmap it from the device and flush the IOTLB
// before the OS reuses it. Domains shared by several QPs (one protection
// domain, the verbs model) register once.
func (d *Driver) registerNotifier(as *mem.AddressSpace, dom *iommu.Domain) {
	if d.registered[dom] {
		return
	}
	d.registered[dom] = true
	as.RegisterNotifier(mem.NotifierFunc(func(first mem.PageNum, count int) sim.Time {
		cost := d.Cfg.CheckCost
		if d.inval != nil {
			// Injected notifier chaos: extra stretches this invalidation's
			// synchronous cost (a delayed invalidation, stalling the evictor),
			// and duplicates schedules redundant re-deliveries of the same
			// unmap at spaced delays — the adversarial reordering the
			// Figure 2 a–d flow must tolerate.
			extra, dups := d.inval.OnInvalidate(first, count)
			cost += extra
			for i := 1; i <= dups; i++ {
				delay := cost + sim.Time(i)*(d.Cfg.CheckCost+d.Cfg.UpdateCost)
				d.Eng.After(delay, func() { d.replayInvalidate(dom, first, count) })
			}
		}
		unmapCost, removed := dom.Unmap(first, count)
		if removed == 0 {
			// Lazily mapped pages are often absent (Figure 3b fast path).
			d.Inv.FastPath.Inc()
			d.cInvFast.Inc()
			return cost
		}
		d.Inv.Mapped.Inc()
		d.cInvMapped.Inc()
		cost += unmapCost + d.Cfg.UpdateCost
		d.Inv.Total.AddTime(cost)
		d.lInv.Observe(cost)
		d.tr.FaultContext(trace.FSInvalidate, d.Eng.Now(), cost, int64(first), int64(removed))
		if d.tr.Enabled() {
			now := d.Eng.Now()
			id := d.tr.Span(0, "inv", "invalidate", now, now+cost)
			d.tr.ArgInt(id, "first", int64(first))
			d.tr.ArgInt(id, "count", int64(count))
			d.tr.ArgInt(id, "removed", int64(removed))
		}
		return cost
	}))
}

// replayInvalidate re-runs an unmap the injector duplicated. Either the
// translations are already gone (fast path — the common case) or a refault
// raced them back in, in which case the replay removes fresh translations
// and the device refaults on next access: benign by design, exactly the
// coherence property duplicated notifier deliveries are meant to stress.
func (d *Driver) replayInvalidate(dom *iommu.Domain, first mem.PageNum, count int) {
	d.InvDuplicates.Inc()
	d.cInvDup.Inc()
	_, removed := dom.Unmap(first, count)
	d.tr.FaultContext(trace.FSInvalidate, d.Eng.Now(), d.Cfg.CheckCost, int64(first), -int64(removed)-1)
	if d.tr.Enabled() {
		now := d.Eng.Now()
		id := d.tr.Span(0, "inv", "invalidate-dup", now, now+d.Cfg.CheckCost)
		d.tr.ArgInt(id, "first", int64(first))
		d.tr.ArgInt(id, "count", int64(count))
		d.tr.ArgInt(id, "removed", int64(removed))
	}
}

// faultPrep performs Figure 2 step 3: the OS faults the missing pages in
// (batched) and resolves their physical addresses. It mutates OS memory
// state immediately and returns the software cost (osCost is the OS
// fault-in portion of it, separated for telemetry); the device-visible
// IOMMU update is a separate commit phase (faultCommit) that callers
// schedule after the software cost has elapsed — the device must not see
// the new translations before the driver has actually produced them.
func (d *Driver) faultPrep(as *mem.AddressSpace, pages []mem.PageNum, write bool) (swCost, osCost sim.Time, major bool, err error) {
	swCost = d.Cfg.DispatchCost + sim.Time(len(pages))*d.Cfg.PerPageLookup
	if len(pages) == 0 {
		return swCost, 0, false, nil
	}
	sorted := append([]mem.PageNum(nil), pages...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	run := 1
	for i := 1; i <= len(sorted); i++ {
		if i < len(sorted) && sorted[i] == sorted[i-1]+1 {
			run++
			continue
		}
		res, ferr := as.FaultInRange(sorted[i-run], run, write)
		if ferr != nil {
			return swCost, osCost, major, ferr
		}
		swCost += res.Cost
		osCost += res.Cost
		if res.Major > 0 {
			major = true
		}
		run = 1
	}
	d.NPFs.Inc()
	d.cNPF.Inc()
	if major {
		d.MajorNPFs.Inc()
		d.cMajor.Inc()
	}
	return swCost, osCost, major, nil
}

// faultCommit performs Figure 2 step 4: batch-install the translations.
// Pages reclaimed while the driver was working are skipped (their
// invalidation already ran; the device will fault again if it needs them).
func (d *Driver) faultCommit(as *mem.AddressSpace, dom *iommu.Domain, pages []mem.PageNum, write bool) sim.Time {
	live := pages[:0]
	for _, pn := range pages {
		if as.Resident(pn) {
			live = append(live, pn)
		}
	}
	return dom.MapBatchPerm(live, write)
}

// serveFault runs the full Figure 2 NPF flow for one fault event and calls
// done once the device may resume. extraCost is added to the software phase
// (e.g. the backup resolver's packet copy). parent is the device-opened
// lifecycle span for this fault (0 when the device predates tracing or
// tracing is off); the driver hangs the driver/update/resume stage spans
// off it and closes it when the device resumes. attempt counts prior failed
// resolutions of this same fault (0 on first service); it drives the
// exponential retry backoff and the DegradeToPinned escape hatch.
func (d *Driver) serveFault(as *mem.AddressSpace, dom *iommu.Domain, pages []mem.PageNum,
	write bool, start sim.Time, resumeCost, extraCost sim.Time, parent trace.SpanID,
	fid trace.FaultID, attempt int, done func(), retry func()) {
	now := d.Eng.Now()
	trigger := now - start
	if attempt == 0 {
		d.outstanding++
		// The fault-report stage of the causal record: device detection to
		// driver service start (firmware + interrupt + report-queue wait).
		d.tr.FaultStageAt(fid, trace.FSReport, start, trigger, int64(len(pages)), 0)
	}
	root := parent
	if d.tr.Enabled() && root == 0 {
		// No device-side span: synthesize the root and its firmware stage
		// from the fault-report delay so the tree is complete anyway.
		root = d.tr.BeginAt(0, "npf", "npf", start)
		d.tr.Span(root, "npf.stage", "firmware", start, now)
	}
	// Escape hatch: after MaxNPFRetries failed attempts the driver stops
	// trusting on-demand resolution for this fault — it bypasses the
	// (possibly wedged) resolver injection point and pins the pages during
	// this service so they can never fault again.
	degraded := d.Cfg.DegradeToPinned && d.Cfg.MaxNPFRetries > 0 && attempt >= d.Cfg.MaxNPFRetries
	if d.resolver != nil && !degraded {
		extra, timeout := d.resolver.ResolveDelay(attempt, len(pages))
		if timeout {
			// The resolver wedged: abort this attempt and retry with
			// exponential backoff. The device keeps the operation
			// suspended/parked meanwhile.
			d.ResolverTimeouts.Inc()
			d.cResolveTO.Inc()
			delay := d.Cfg.DispatchCost + extra + d.Cfg.RetryBackoff(attempt)
			d.tr.Span(root, "npf.stage", "resolver-timeout", now, now+delay)
			d.tr.FaultStageAt(fid, trace.FSResolverTimeout, now, delay, int64(attempt), int64(len(pages)))
			d.Eng.After(delay, retry)
			return
		}
		extraCost += extra
	}
	sw, osCost, major, err := d.faultPrep(as, pages, write)
	sw += extraCost
	if err != nil {
		if !errors.Is(err, mem.ErrOutOfMemory) {
			// A DMA to an unregistered/unmapped address is a protection
			// error, not a transient condition: fail loudly.
			panic(fmt.Sprintf("core: unresolvable NPF on %s: %v", as.Name, err))
		}
		// OOM even after reclaim: back off and retry; the device keeps the
		// operation suspended/parked meanwhile.
		d.cOOM.Inc()
		backoff := d.Cfg.RetryBackoff(attempt)
		d.tr.Span(root, "npf.stage", "oom-backoff", now, now+sw+backoff)
		d.tr.FaultStageAt(fid, trace.FSOOMBackoff, now, sw+backoff, int64(attempt), int64(len(pages)))
		d.Eng.After(sw+backoff, retry)
		return
	}
	mjr := int64(0)
	if major {
		mjr = 1
	}
	d.tr.FaultStageAt(fid, trace.FSDriver, now, sw, int64(len(pages)), mjr)
	if osCost > 0 {
		d.tr.FaultStageAt(fid, trace.FSPageResolve, now+sw-extraCost-osCost, osCost, mjr, 0)
	}
	if extraCost > 0 {
		d.tr.FaultStageAt(fid, trace.FSCopy, now+sw-extraCost, extraCost, 0, 0)
	}
	if d.tr.Enabled() {
		drv := d.tr.Span(root, "npf.stage", "driver", now, now+sw)
		d.tr.ArgInt(drv, "pages", int64(len(pages)))
		if osCost > 0 {
			pr := d.tr.Span(drv, "npf.stage", "page-resolve", now+sw-extraCost-osCost, now+sw-extraCost)
			if major {
				d.tr.ArgStr(pr, "kind", "major")
			} else {
				d.tr.ArgStr(pr, "kind", "minor")
			}
		}
		if extraCost > 0 {
			d.tr.Span(drv, "npf.stage", "copy", now+sw-extraCost, now+sw)
		}
	}
	if degraded && len(pages) > 0 {
		// The pages are resident now; pin them (best effort, stopping at the
		// memlock limit) so this fault cannot recur. The pin cost extends the
		// software phase.
		var pinCost sim.Time
		var pinned int
		for _, pn := range pages {
			if as.Pinned(pn) {
				continue
			}
			res, perr := as.Pin(pn, 1)
			if perr != nil {
				break
			}
			pinCost += res.Cost
			pinned++
		}
		if pinned > 0 {
			d.DegradedPins.Add(uint64(pinned))
			d.cDegraded.Add(uint64(pinned))
			if d.tr.Enabled() {
				id := d.tr.Span(root, "npf.stage", "degrade-pinned", now+sw, now+sw+pinCost)
				d.tr.ArgInt(id, "pages", int64(pinned))
			}
			d.tr.FaultStageAt(fid, trace.FSDegradePin, now+sw, pinCost, int64(pinned), int64(attempt))
			sw += pinCost
		}
	}
	d.Eng.After(sw, func() {
		d.outstanding--
		hw := d.faultCommit(as, dom, pages, write)
		d.Hist.record(trigger, sw, hw, resumeCost)
		d.lTrigger.Observe(trigger)
		d.lDriver.Observe(sw)
		d.lUpdate.Observe(hw)
		d.lResume.Observe(resumeCost)
		d.lTotal.Observe(trigger + sw + hw + resumeCost)
		n2 := d.Eng.Now()
		d.tr.FaultStageAt(fid, trace.FSUpdate, n2, hw, int64(len(pages)), 0)
		if resumeCost > 0 {
			d.tr.FaultStageAt(fid, trace.FSResume, n2+hw, resumeCost, 0, 0)
		}
		if d.tr.Enabled() {
			d.tr.Span(root, "npf.stage", "update", n2, n2+hw)
			d.tr.Span(root, "npf.stage", "resume", n2+hw, n2+hw+resumeCost)
			d.tr.EndAt(root, n2+hw+resumeCost)
		}
		d.Eng.After(hw, done)
	})
}

// ---------------------------------------------------------------------------
// rc.FaultSink: InfiniBand NPFs (Figure 2 flow, §4).

// HandleQPFault implements rc.FaultSink. Faults on paths where the device
// will WRITE memory (placing incoming sends/writes or read-response data)
// resolve with write intent, breaking copy-on-write protection like
// get_user_pages(write) does.
func (d *Driver) HandleQPFault(ev rc.QPFault) { d.handleQPFault(ev, 0) }

func (d *Driver) handleQPFault(ev rc.QPFault, attempt int) {
	write := ev.Class == rc.FaultRecvRNPF || ev.Class == rc.FaultReadInitiator
	resume := ev.QP.HCA().Cfg.FirmwareResume
	done := ev.Resolved
	if d.tr.Enabled() {
		// Close the causal record when the adapter's resume completes (the
		// commit callback runs resume-cost earlier than the QP unblocks).
		done = func() {
			d.tr.FaultDone(ev.Fault, d.Eng.Now()+resume)
			ev.Resolved()
		}
	}
	d.serveFault(ev.QP.AS, ev.QP.Domain, ev.Missing, write, ev.Start,
		resume, 0, ev.Span, ev.Fault, attempt,
		done,
		func() { d.handleQPFault(ev, attempt+1) })
}

// ---------------------------------------------------------------------------
// nic.NPFSink: Ethernet NPFs (§5).

// HandleTxNPF implements nic.NPFSink for send-side faults.
func (d *Driver) HandleTxNPF(ev nic.TxNPF) { d.handleTxNPF(ev, 0) }

func (d *Driver) handleTxNPF(ev nic.TxNPF, attempt int) {
	resume := ev.Channel.Dev.Cfg.FirmwareResume
	done := ev.Resume
	if d.tr.Enabled() {
		done = func() {
			d.tr.FaultDone(ev.Fault, d.Eng.Now()+resume)
			ev.Resume()
		}
	}
	d.serveFault(ev.Channel.AS, ev.Channel.Domain, ev.Missing, false, ev.Start,
		resume, 0, ev.Span, ev.Fault, attempt,
		done,
		func() { d.handleTxNPF(ev, attempt+1) })
}

// HandleRxNPF implements nic.NPFSink for receive faults: drop-policy
// demand-paging reports and backup-ring entries, demuxed per channel.
func (d *Driver) HandleRxNPF(entries []nic.RxNPFEntry) {
	d.RxReports.Add(uint64(len(entries)))
	d.cRxReports.Add(uint64(len(entries)))
	for _, e := range entries {
		st, ok := d.chans[e.Channel]
		if !ok {
			panic("core: rNPF on channel without ODP enabled: " + e.Channel.Name)
		}
		st.q = append(st.q, pendingRx{e: e})
	}
	for _, e := range entries {
		d.chans[e.Channel].pump()
	}
}

// PendingBackupWork reports how many receive-fault entries are queued or in
// service across every ODP channel's backup resolver — zero means no parked
// packet is awaiting resolution (the "no stuck rings" chaos invariant).
func (d *Driver) PendingBackupWork() int {
	n := 0
	//npf:orderinvariant — counting queued work is commutative
	for _, st := range d.chans {
		n += len(st.q)
		if st.busy {
			n++
		}
	}
	return n
}

// prefaultPages gathers the missing pages of every posted descriptor
// (PrefaultRing optimization).
func (d *Driver) prefaultPages(ch *nic.Channel) []mem.PageNum {
	seen := make(map[mem.PageNum]bool)
	var pages []mem.PageNum
	ch.Rx.ForEachPosted(func(idx int64, desc nic.Descriptor) {
		_, missing := ch.Domain.TranslateAccess(desc.Buffer, desc.Len, true)
		for _, pn := range missing {
			if !seen[pn] {
				seen[pn] = true
				pages = append(pages, pn)
			}
		}
	})
	return pages
}
