package chaos

import (
	"strings"
	"testing"

	"npf/internal/sim"
)

// withSampling runs fn with the package-level SampleEvery knob temporarily
// set, mirroring bench's withWorkers idiom.
func withSampling(every sim.Time, fn func()) {
	old := SampleEvery
	SampleEvery = every
	defer func() { SampleEvery = old }()
	fn()
}

// TestScenarioSeriesReplayByteIdentical extends the chaos replay contract to
// time-series output: two runs of the same scenario with the same seed must
// produce byte-identical Report.Series, and enabling sampling must not
// change whether the invariants pass.
func TestScenarioSeriesReplayByteIdentical(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			var a, b *Report
			withSampling(250*sim.Microsecond, func() {
				a = sc.Run(7)
				b = sc.Run(7)
			})
			if !a.Pass {
				t.Fatalf("scenario failed with sampling on:\n%s", a.Render())
			}
			if a.Series == "" {
				t.Fatal("sampling on but Report.Series is empty")
			}
			if a.Series != b.Series {
				t.Fatalf("series replay differs:\n--- run 1 ---\n%.2000s\n--- run 2 ---\n%.2000s", a.Series, b.Series)
			}
			if a.Digest != b.Digest {
				t.Fatalf("digest replay differs: %016x vs %016x", a.Digest, b.Digest)
			}
			if !strings.Contains(a.Series, "time_us,") {
				t.Fatalf("series is not a CSV section:\n%.500s", a.Series)
			}
		})
	}
}

// TestSamplingOffLeavesSeriesEmpty pins the default: scenarios run without
// the knob must not pay for (or report) a series.
func TestSamplingOffLeavesSeriesEmpty(t *testing.T) {
	r := Scenarios()[0].Run(1)
	if r.Series != "" {
		t.Fatalf("Series populated without SampleEvery:\n%.300s", r.Series)
	}
}
