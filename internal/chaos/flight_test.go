package chaos

import (
	"strings"
	"testing"

	"npf/internal/core"
	"npf/internal/sim"
)

// runForcedFailure drives a small cold-ring workload (plenty of NPFs for
// the flight recorder) and seals the report with check(ok, ...) injected
// before finish, so the test controls whether an invariant "failed".
func runForcedFailure(seed int64, ok bool) *Report {
	r := &Report{Scenario: "forced", Seed: seed}
	e := newEthEnv(seed, 32, core.DefaultConfig(), 0)
	ethTraffic(e, r, 50, 2000, sim.Millisecond, 20*sim.Microsecond, 120*sim.Second)
	r.check(ok, "forced invariant failure")
	return r.finish(e.tr)
}

// TestFailingReportCarriesFlightRecorder pins the chaos flight-recorder
// contract: a report with a failed invariant carries the rendered excerpt of
// the last causal fault events plus its digest, Render prints it, and a
// passing run of the identical scenario carries nothing.
func TestFailingReportCarriesFlightRecorder(t *testing.T) {
	fail := runForcedFailure(7, false)
	if fail.Pass {
		t.Fatal("forced failure reported Pass")
	}
	if fail.FlightRecorder == "" {
		t.Fatal("failing report has empty flight-recorder excerpt")
	}
	if fail.FlightEvents <= 0 || fail.FlightEvents > flightExcerptEvents {
		t.Fatalf("FlightEvents = %d, want 1..%d", fail.FlightEvents, flightExcerptEvents)
	}
	if fail.FlightDigest == 0 {
		t.Fatal("failing report has zero flight digest")
	}
	if !strings.Contains(fail.FlightRecorder, "fault") {
		t.Fatalf("excerpt does not look like fault events:\n%s", fail.FlightRecorder)
	}
	out := fail.Render()
	if !strings.Contains(out, "flight recorder: last") {
		t.Fatalf("Render does not print the flight recorder:\n%s", out)
	}
	if !strings.Contains(out, "FAIL: forced invariant failure") {
		t.Fatalf("Render lost the failure line:\n%s", out)
	}

	// Same seed, same scenario, invariant passing: no excerpt attached.
	pass := runForcedFailure(7, true)
	if !pass.Pass {
		t.Fatalf("control run failed: %v", pass.Failures)
	}
	if pass.FlightRecorder != "" || pass.FlightEvents != 0 || pass.FlightDigest != 0 {
		t.Fatal("passing report carries a flight-recorder excerpt")
	}
	if strings.Contains(pass.Render(), "flight recorder") {
		t.Fatal("passing Render prints a flight recorder")
	}

	// Byte-identical replay: the excerpt and digest are deterministic.
	again := runForcedFailure(7, false)
	if again.FlightRecorder != fail.FlightRecorder || again.FlightDigest != fail.FlightDigest {
		t.Fatal("flight-recorder excerpt is not replay-identical")
	}
}
