package chaos

import (
	"testing"

	"npf/internal/sim"
)

// withEngines runs fn with the package-level Engines knob temporarily set,
// mirroring withSampling.
func withEngines(n int, fn func()) {
	old := Engines
	Engines = n
	defer func() { Engines = old }()
	fn()
}

// TestScenariosEnginesDeterminism extends the chaos replay contract to the
// partitioned testbeds: every scenario must pass its invariants under the
// PDES topology, and — since the partition structure is fixed — produce
// identical reports for every Engines value (which only changes the worker
// thread count). Running under -race additionally checks the engine
// threads' isolation.
func TestScenariosEnginesDeterminism(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			var reports []*Report
			withSampling(250*sim.Microsecond, func() {
				for _, n := range []int{1, 2} {
					withEngines(n, func() {
						reports = append(reports, sc.Run(7))
					})
				}
			})
			a, b := reports[0], reports[1]
			if !a.Pass {
				t.Fatalf("scenario failed partitioned:\n%s", a.Render())
			}
			if a.Digest != b.Digest || a.Series != b.Series {
				t.Fatalf("engine counts diverged: digest %016x vs %016x",
					a.Digest, b.Digest)
			}
			if a.Delivered != b.Delivered || a.NPFs != b.NPFs ||
				a.InjectedDrops != b.InjectedDrops || a.Retransmits != b.Retransmits ||
				a.KVOps != b.KVOps || a.Failovers != b.Failovers ||
				a.SimSeconds != b.SimSeconds {
				t.Fatalf("engine counts diverged:\n%s\nvs\n%s", a.Render(), b.Render())
			}
		})
	}
}
