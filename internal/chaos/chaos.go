// Package chaos is a deterministic fault-injection engine for the simulated
// NPF stack. It perturbs the layers the paper's design must tolerate —
// firmware latency spikes (internal/nic, internal/rc), correlated packet
// loss and link flaps (internal/fabric), delayed or duplicated MMU
// invalidations and memory-pressure waves (internal/mem, internal/core),
// and a slow or wedged fault resolver (internal/core) — through the narrow
// injection hooks those packages expose, never by reaching into their
// internals.
//
// Everything is scheduled on the sim engine from seeded RNG streams split
// at Arm time in deterministic order, so a chaos run replays byte-identical
// for the same seed (the scenario runner asserts this with trace digests).
// Every armed fault and every discrete injected event (a flap, a pressure
// wave, a resolver timeout, a duplicated invalidation) emits an
// internal/trace span in the "chaos" category; high-frequency events
// (individual dropped packets) are counted instead.
package chaos

import (
	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/trace"
)

// Targets names the stack objects an Injector may perturb. Any field may be
// nil/empty; faults that need an absent target arm as no-ops. Eng is
// required.
type Targets struct {
	Eng     *sim.Engine
	Net     *fabric.Network
	Devs    []*nic.Device
	HCAs    []*rc.HCA
	Drivers []*core.Driver
	Groups  []*mem.Group
	Spaces  []*mem.AddressSpace
	// Tracer receives the "chaos" spans and counters (nil disables, as
	// everywhere else in the stack).
	Tracer *trace.Tracer
}

// Fault is one configured perturbation. Arm schedules its events on the
// injector's engine; it is called exactly once, in Plan order, so any RNG
// stream a fault splits off is deterministic regardless of how the faults
// later interleave at delivery time.
type Fault interface {
	Arm(ij *Injector)
}

// Plan is an ordered list of faults — the unit handed to npf.WithChaos or
// chaos.Arm.
type Plan struct {
	Faults []Fault
}

// NewPlan builds a plan from faults.
func NewPlan(faults ...Fault) *Plan { return &Plan{Faults: faults} }

// Add appends faults and returns the plan for chaining.
func (p *Plan) Add(faults ...Fault) *Plan {
	p.Faults = append(p.Faults, faults...)
	return p
}

// Injector is an armed plan: the bound targets plus the telemetry and RNG
// state the faults share. T is a live pointer — callers that build the
// stack after arming (the root package's cluster facade) may keep appending
// devices, drivers, and groups until the engine runs; faults resolve their
// targets when they activate, not when they arm.
type Injector struct {
	T   *Targets
	rng *sim.Rand

	tr        *trace.Tracer
	cDrops    *trace.Counter
	cStalls   *trace.Counter
	cFlaps    *trace.Counter
	cWaves    *trace.Counter
	cTimeouts *trace.Counter
	cInvDup   *trace.Counter
}

// Arm binds a plan to targets and schedules every fault. Call it once per
// run, before Engine.Run; arming is itself deterministic (one RNG split per
// fault, in plan order).
func Arm(p *Plan, t Targets) *Injector {
	if t.Eng == nil {
		panic("chaos: Targets.Eng is required")
	}
	ij := &Injector{
		T:         &t,
		rng:       t.Eng.Rand().Split(),
		tr:        t.Tracer,
		cDrops:    t.Tracer.Counter("chaos.injected_drops"),
		cStalls:   t.Tracer.Counter("chaos.firmware_stalls"),
		cFlaps:    t.Tracer.Counter("chaos.link_flaps"),
		cWaves:    t.Tracer.Counter("chaos.pressure_waves"),
		cTimeouts: t.Tracer.Counter("chaos.resolver_timeouts"),
		cInvDup:   t.Tracer.Counter("chaos.inv_duplicates"),
	}
	if p != nil {
		for _, f := range p.Faults {
			f.Arm(ij)
		}
	}
	return ij
}

// split returns an independent RNG stream for one fault. Streams are split
// at Arm time in plan order, so each fault's draws are unaffected by what
// the other faults do during the run.
func (ij *Injector) split() *sim.Rand { return ij.rng.Split() }

// span records one chaos event window.
func (ij *Injector) span(name string, start, end sim.Time) trace.SpanID {
	if !ij.tr.Enabled() {
		return 0
	}
	return ij.tr.Span(0, "chaos", name, start, end)
}

// arg attaches an integer argument to a chaos span (no-op when tracing is
// off).
func (ij *Injector) arg(id trace.SpanID, key string, v int64) {
	if ij.tr.Enabled() {
		ij.tr.ArgInt(id, key, v)
	}
}

// nodes resolves a fault's target node list: nil means every attached node.
func (ij *Injector) nodes(explicit []fabric.NodeID) []fabric.NodeID {
	if ij.T.Net == nil {
		return nil
	}
	if len(explicit) > 0 {
		return explicit
	}
	return ij.T.Net.NodeIDs()
}

// ---------------------------------------------------------------------------
// Firmware faults (internal/nic, internal/rc).

// FirmwareStall stretches the firmware fault-path latency of every NIC and
// HCA during [At, At+Duration): sampled latency becomes lat*Mult + Add.
// It models a firmware scheduling hiccup or a slow error path — the Table 4
// tail made systematic.
type FirmwareStall struct {
	At       sim.Time
	Duration sim.Time
	Mult     float64  // 0 means 1 (no scaling)
	Add      sim.Time // flat extra latency
}

// Arm implements Fault.
func (f FirmwareStall) Arm(ij *Injector) {
	mult := f.Mult
	if mult == 0 {
		mult = 1
	}
	hook := func(lat sim.Time) sim.Time {
		ij.cStalls.Inc()
		return sim.Time(float64(lat)*mult) + f.Add
	}
	ij.T.Eng.At(f.At, func() {
		ij.span("firmware-stall", f.At, f.At+f.Duration)
		for _, d := range ij.T.Devs {
			d.SetFaultDelayHook(hook)
		}
		for _, h := range ij.T.HCAs {
			h.SetFaultDelayHook(hook)
		}
	})
	ij.T.Eng.At(f.At+f.Duration, func() {
		for _, d := range ij.T.Devs {
			d.SetFaultDelayHook(nil)
		}
		for _, h := range ij.T.HCAs {
			h.SetFaultDelayHook(nil)
		}
	})
}

// ---------------------------------------------------------------------------
// Fabric faults (internal/fabric).

// LossBurst drops incoming packets at the target nodes (nil = all) with
// probability Prob during [At, At+Duration) — uncorrelated burst loss, e.g.
// a congested switch tail-dropping.
type LossBurst struct {
	At       sim.Time
	Duration sim.Time
	Prob     float64
	Nodes    []fabric.NodeID
}

// Arm implements Fault.
func (f LossBurst) Arm(ij *Injector) {
	// Targets resolve at activation (so nodes attached after arming count);
	// each node then gets its own stream, split in ascending-NodeID order,
	// so delivery interleaving across nodes cannot shift any node's draws.
	var armed []fabric.NodeID
	ij.T.Eng.At(f.At, func() {
		if ij.T.Net == nil {
			return
		}
		id := ij.span("loss-burst", f.At, f.At+f.Duration)
		ij.arg(id, "prob_ppm", int64(f.Prob*1e6))
		for _, nid := range ij.nodes(f.Nodes) {
			rng := ij.split()
			armed = append(armed, nid)
			ij.T.Net.SetLossFunc(nid, func(*fabric.Packet) bool {
				if rng.Bernoulli(f.Prob) {
					ij.cDrops.Inc()
					return true
				}
				return false
			})
		}
	})
	ij.T.Eng.At(f.At+f.Duration, func() {
		for _, nid := range armed {
			ij.T.Net.SetLossFunc(nid, nil)
		}
	})
}

// GilbertElliott applies the two-state Gilbert–Elliott correlated-loss
// model at the target nodes during [At, At+Duration): per delivered packet
// the channel moves Good→Bad with PGoodBad and Bad→Good with PBadGood, and
// drops with LossGood / LossBad depending on the state. Each node gets its
// own chain and RNG stream.
type GilbertElliott struct {
	At       sim.Time
	Duration sim.Time
	Model    GEParams
	Nodes    []fabric.NodeID
}

// Arm implements Fault.
func (f GilbertElliott) Arm(ij *Injector) {
	var armed []fabric.NodeID
	ij.T.Eng.At(f.At, func() {
		if ij.T.Net == nil {
			return
		}
		ij.span("gilbert-elliott", f.At, f.At+f.Duration)
		for _, nid := range ij.nodes(f.Nodes) {
			ge := NewGEChain(f.Model, ij.split())
			armed = append(armed, nid)
			ij.T.Net.SetLossFunc(nid, func(*fabric.Packet) bool {
				if ge.Drop() {
					ij.cDrops.Inc()
					return true
				}
				return false
			})
		}
	})
	ij.T.Eng.At(f.At+f.Duration, func() {
		for _, nid := range armed {
			ij.T.Net.SetLossFunc(nid, nil)
		}
	})
}

// LinkFlap takes a node's link down (both directions blackholed) for Down
// out of every Period, Times times, starting at At — a flapping cable or a
// rebooting ToR port.
type LinkFlap struct {
	Node   fabric.NodeID
	At     sim.Time
	Down   sim.Time
	Period sim.Time // >= Down; defaults to 2*Down
	Times  int      // defaults to 1
}

// Arm implements Fault.
func (f LinkFlap) Arm(ij *Injector) {
	times := f.Times
	if times <= 0 {
		times = 1
	}
	period := f.Period
	if period < f.Down {
		period = 2 * f.Down
	}
	for i := 0; i < times; i++ {
		start := f.At + sim.Time(i)*period
		ij.T.Eng.At(start, func() {
			if ij.T.Net == nil {
				return
			}
			ij.cFlaps.Inc()
			id := ij.span("link-flap", start, start+f.Down)
			ij.arg(id, "node", int64(f.Node))
			ij.T.Net.SetLinkDown(f.Node, true)
		})
		ij.T.Eng.At(start+f.Down, func() {
			if ij.T.Net == nil {
				return
			}
			ij.T.Net.SetLinkDown(f.Node, false)
		})
	}
}

// ---------------------------------------------------------------------------
// Memory faults (internal/mem, internal/core).

// MemoryPressure squeezes the target groups (nil target list = all) in
// waves: every Period starting at At, the group limit drops to LowBytes
// (synchronously reclaiming LRU pages — evictions that race in-flight NPFs)
// and recovers to HighBytes half a period later.
type MemoryPressure struct {
	At        sim.Time
	Period    sim.Time
	Waves     int
	LowBytes  int64
	HighBytes int64
	Groups    []*mem.Group // nil = Targets.Groups
}

// Arm implements Fault.
func (f MemoryPressure) Arm(ij *Injector) {
	// Groups resolve at wave time so cgroups registered after arming (the
	// root package's cluster facade builds hosts after NewCluster arms the
	// plan) are still squeezed.
	groups := func() []*mem.Group {
		if f.Groups != nil {
			return f.Groups
		}
		return ij.T.Groups
	}
	for i := 0; i < f.Waves; i++ {
		start := f.At + sim.Time(i)*f.Period
		ij.T.Eng.At(start, func() {
			gs := groups()
			if len(gs) == 0 {
				return
			}
			ij.cWaves.Inc()
			id := ij.span("pressure-wave", start, start+f.Period/2)
			var evicted int64
			for _, g := range gs {
				before := g.Used()
				g.SetLimit(f.LowBytes)
				evicted += before - g.Used()
			}
			if ij.tr.Enabled() {
				ij.tr.ArgInt(id, "evicted_bytes", evicted)
			}
		})
		ij.T.Eng.At(start+f.Period/2, func() {
			for _, g := range groups() {
				g.SetLimit(f.HighBytes)
			}
		})
	}
}

// InvalidationChaos perturbs the MMU-notifier flow of every target driver
// during [At, At+Duration): each invalidation is stretched by Extra, and
// with probability DupProb the same unmap is redelivered Duplicates more
// times — the delayed/duplicated notifier ordering the Figure 2 a–d flow
// must tolerate.
type InvalidationChaos struct {
	At         sim.Time
	Duration   sim.Time
	Extra      sim.Time
	Duplicates int
	DupProb    float64 // 0 with Duplicates>0 means always
}

type invalInjector struct {
	f   InvalidationChaos
	ij  *Injector
	rng *sim.Rand
}

func (v *invalInjector) OnInvalidate(first mem.PageNum, count int) (sim.Time, int) {
	now := v.ij.T.Eng.Now()
	if now < v.f.At || now >= v.f.At+v.f.Duration {
		return 0, 0
	}
	dups := v.f.Duplicates
	if v.f.DupProb > 0 && !v.rng.Bernoulli(v.f.DupProb) {
		dups = 0
	}
	if dups > 0 {
		v.ij.cInvDup.Add(uint64(dups))
		id := v.ij.span("inv-duplicate", now, now+v.f.Extra)
		v.ij.arg(id, "first", int64(first))
		v.ij.arg(id, "count", int64(count))
	}
	return v.f.Extra, dups
}

// Arm implements Fault.
func (f InvalidationChaos) Arm(ij *Injector) {
	inj := &invalInjector{f: f, ij: ij, rng: ij.split()}
	// Install at activation so drivers registered after arming are covered;
	// the injector's own window check handles deactivation.
	ij.T.Eng.At(f.At, func() {
		for _, d := range ij.T.Drivers {
			d.SetInvalidationInjector(inj)
		}
	})
}

// ---------------------------------------------------------------------------
// Resolver faults (internal/core).

// ResolverSlowdown makes every target driver's fault resolution slow or
// wedged during [At, At+Duration): each attempt gains Extra software
// latency and, with probability TimeoutProb, times out entirely — forcing
// the driver's exponential-backoff retry, and eventually its
// DegradeToPinned escape hatch if the config enables one.
type ResolverSlowdown struct {
	At          sim.Time
	Duration    sim.Time
	Extra       sim.Time
	TimeoutProb float64
}

type resolverInjector struct {
	f   ResolverSlowdown
	ij  *Injector
	rng *sim.Rand
}

func (r *resolverInjector) ResolveDelay(attempt, pages int) (sim.Time, bool) {
	now := r.ij.T.Eng.Now()
	if now < r.f.At || now >= r.f.At+r.f.Duration {
		return 0, false
	}
	if r.f.TimeoutProb > 0 && r.rng.Bernoulli(r.f.TimeoutProb) {
		r.ij.cTimeouts.Inc()
		id := r.ij.span("resolver-timeout", now, now+r.f.Extra)
		r.ij.arg(id, "attempt", int64(attempt))
		r.ij.arg(id, "pages", int64(pages))
		return r.f.Extra, true
	}
	return r.f.Extra, false
}

// Arm implements Fault.
func (f ResolverSlowdown) Arm(ij *Injector) {
	inj := &resolverInjector{f: f, ij: ij, rng: ij.split()}
	// Install at activation so drivers registered after arming are covered;
	// the injector's own window check handles deactivation.
	ij.T.Eng.At(f.At, func() {
		for _, d := range ij.T.Drivers {
			d.SetResolverInjector(inj)
		}
	})
}

// ---------------------------------------------------------------------------
// Escape hatch.

// Callback runs Fn at At — for scenario-specific perturbations (targeted
// evictions, mid-run reconfiguration) that don't warrant a fault type.
type Callback struct {
	At sim.Time
	Fn func(ij *Injector)
}

// Arm implements Fault.
func (f Callback) Arm(ij *Injector) {
	ij.T.Eng.At(f.At, func() {
		ij.span("callback", f.At, f.At)
		f.Fn(ij)
	})
}
