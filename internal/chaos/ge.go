package chaos

import "npf/internal/sim"

// GEParams parameterizes the two-state Gilbert–Elliott loss channel: a
// Markov chain that alternates between a Good state (rare loss) and a Bad
// state (heavy loss), producing the bursty, correlated drops real links
// exhibit — the pattern that stresses RC retransmission and the backup
// ring far harder than independent Bernoulli loss of the same mean rate.
type GEParams struct {
	// PGoodBad is the per-packet probability of moving Good→Bad.
	PGoodBad float64
	// PBadGood is the per-packet probability of moving Bad→Good.
	PBadGood float64
	// LossGood is the drop probability while Good (often 0).
	LossGood float64
	// LossBad is the drop probability while Bad.
	LossBad float64
}

// DefaultGE returns a moderately bursty channel: mean bad-state residency
// of 20 packets, entered every ~500 packets, dropping 60% while bad —
// about 2.3% average loss arriving almost entirely in bursts.
func DefaultGE() GEParams {
	return GEParams{PGoodBad: 0.002, PBadGood: 0.05, LossGood: 0, LossBad: 0.6}
}

// StationaryBad returns the chain's stationary probability of the Bad
// state, PGoodBad/(PGoodBad+PBadGood).
func (p GEParams) StationaryBad() float64 {
	s := p.PGoodBad + p.PBadGood
	if s == 0 {
		return 0
	}
	return p.PGoodBad / s
}

// MeanLoss returns the chain's long-run drop probability.
func (p GEParams) MeanLoss() float64 {
	b := p.StationaryBad()
	return (1-b)*p.LossGood + b*p.LossBad
}

// GEChain is one running Gilbert–Elliott chain (per link). It starts Good.
type GEChain struct {
	p   GEParams
	rng *sim.Rand
	bad bool
}

// NewGEChain builds a chain driven by rng.
func NewGEChain(p GEParams, rng *sim.Rand) *GEChain {
	return &GEChain{p: p, rng: rng}
}

// Bad reports the current state.
func (g *GEChain) Bad() bool { return g.bad }

// Drop advances the chain one packet and reports whether that packet is
// lost. The state transition is evaluated before the loss draw, so a
// Good→Bad flip can already claim the packet that caused it.
func (g *GEChain) Drop() bool {
	if g.bad {
		if g.rng.Bernoulli(g.p.PBadGood) {
			g.bad = false
		}
	} else if g.rng.Bernoulli(g.p.PGoodBad) {
		g.bad = true
	}
	loss := g.p.LossGood
	if g.bad {
		loss = g.p.LossBad
	}
	return loss > 0 && g.rng.Bernoulli(loss)
}
