package chaos

import (
	"testing"

	"npf/internal/core"
	"npf/internal/sim"
)

// Every named scenario must pass its invariants and replay byte-identically:
// two runs with the same seed produce the same trace digest (and the same
// headline counters). Running this test under -race additionally checks the
// engine's single-threaded discipline.
func TestScenariosPassAndAreDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a := sc.Run(7)
			if !a.Pass {
				t.Fatalf("scenario failed:\n%s", a.Render())
			}
			b := sc.Run(7)
			if a.Digest != b.Digest {
				t.Fatalf("nondeterministic: digest %016x then %016x", a.Digest, b.Digest)
			}
			if a.Delivered != b.Delivered || a.NPFs != b.NPFs || a.InjectedDrops != b.InjectedDrops ||
				a.Retransmits != b.Retransmits || a.SimSeconds != b.SimSeconds {
				t.Fatalf("nondeterministic counters:\n%s\nvs\n%s", a.Render(), b.Render())
			}
		})
	}
}

// A different seed must not be able to break the invariants either (a small
// sweep; the scenarios' pass conditions are seed-independent).
func TestScenariosPassAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	for _, sc := range Scenarios() {
		for seed := int64(1); seed <= 3; seed++ {
			if r := sc.Run(seed); !r.Pass {
				t.Errorf("seed %d:\n%s", seed, r.Render())
			}
		}
	}
}

func TestGEChainStationaryBehaviour(t *testing.T) {
	p := DefaultGE()
	ge := NewGEChain(p, sim.NewEngine(3).Rand().Split())
	const steps = 400_000
	bad, drops := 0, 0
	for i := 0; i < steps; i++ {
		if ge.Drop() {
			drops++
		}
		if ge.Bad() {
			bad++
		}
	}
	badFrac := float64(bad) / steps
	wantBad := p.StationaryBad()
	if badFrac < wantBad*0.8 || badFrac > wantBad*1.2 {
		t.Errorf("bad-state fraction %.4f, stationary %.4f", badFrac, wantBad)
	}
	lossFrac := float64(drops) / steps
	wantLoss := p.MeanLoss()
	if lossFrac < wantLoss*0.8 || lossFrac > wantLoss*1.2 {
		t.Errorf("loss fraction %.4f, want ~%.4f", lossFrac, wantLoss)
	}
}

func TestGEChainTransitions(t *testing.T) {
	// Deterministic corner: always flip state, always drop while bad.
	ge := NewGEChain(GEParams{PGoodBad: 1, PBadGood: 1, LossBad: 1}, sim.NewEngine(1).Rand())
	for i := 0; i < 10; i++ {
		drop := ge.Drop()
		wantBad := i%2 == 0 // starts Good, flips before the loss draw
		if ge.Bad() != wantBad {
			t.Fatalf("step %d: bad=%v, want %v", i, ge.Bad(), wantBad)
		}
		if drop != wantBad {
			t.Fatalf("step %d: drop=%v in state bad=%v", i, drop, ge.Bad())
		}
	}
	// Degenerate chains never leave their state.
	stuck := NewGEChain(GEParams{PGoodBad: 0, PBadGood: 0, LossBad: 1}, sim.NewEngine(1).Rand())
	for i := 0; i < 100; i++ {
		if stuck.Drop() || stuck.Bad() {
			t.Fatal("chain with PGoodBad=0 left the Good state")
		}
	}
}

func TestRetryBackoffSchedule(t *testing.T) {
	cfg := core.Config{RetryBackoffBase: 50 * sim.Microsecond, RetryBackoffMax: 400 * sim.Microsecond}
	want := []sim.Time{
		50 * sim.Microsecond, 100 * sim.Microsecond, 200 * sim.Microsecond,
		400 * sim.Microsecond, 400 * sim.Microsecond, 400 * sim.Microsecond,
	}
	for attempt, w := range want {
		if got := cfg.RetryBackoff(attempt); got != w {
			t.Errorf("attempt %d: backoff %v, want %v", attempt, got, w)
		}
	}
	// Legacy shape: base == max is the historical constant delay.
	legacy := core.DefaultConfig()
	for attempt := 0; attempt < 5; attempt++ {
		if got := legacy.RetryBackoff(attempt); got != 100*sim.Microsecond {
			t.Errorf("default config attempt %d: %v, want 100us", attempt, got)
		}
	}
	// Unset base falls back to 100us; unset max means unbounded doubling.
	var zero core.Config
	if zero.RetryBackoff(0) != 100*sim.Microsecond {
		t.Errorf("zero config base = %v", zero.RetryBackoff(0))
	}
	if zero.RetryBackoff(3) != 800*sim.Microsecond {
		t.Errorf("zero config attempt 3 = %v", zero.RetryBackoff(3))
	}
}
