package chaos

import (
	"npf/internal/fabric"
	"npf/internal/kv"
	"npf/internal/mem"
	"npf/internal/sim"
	"npf/internal/trace"
)

// ---------------------------------------------------------------------------
// Distributed-KV scenarios: the whole service — placement, replication,
// failover, client retries — run under the same fault injectors the
// single-host scenarios use, with the replication convergence invariant
// (CheckConsistency) layered on top of the usual no-lost-work checks.

// newKVEnv builds a KV deployment on a fresh engine.
func newKVEnv(seed int64, cfg kv.Config) (*sim.Engine, *trace.Tracer, *kv.Service) {
	eng := sim.NewEngine(seed)
	eng.MaxEvents = maxScenarioEvents
	tr := trace.New(eng)
	fcfg := fabric.DefaultEthernet()
	if cfg.Transport == kv.TransportRC {
		fcfg = fabric.DefaultInfiniBand()
	}
	net := fabric.New(eng, fcfg)
	svc := kv.New(eng, net, tr, cfg)
	if SampleEvery > 0 {
		tr.StartSampler(SampleEvery)
	}
	return eng, tr, svc
}

// kvTargets exposes every layer of the deployment to the injector.
func kvTargets(eng *sim.Engine, tr *trace.Tracer, svc *kv.Service) Targets {
	return Targets{
		Eng:     eng,
		Net:     svc.Net,
		Devs:    svc.Devices(),
		HCAs:    svc.HCAs(),
		Drivers: svc.Drivers(),
		Groups:  svc.Groups(),
		Spaces:  svc.Spaces(),
		Tracer:  tr,
	}
}

// runKVWorkload drives wl to completion (quiescing the control plane a
// grace period after the last op) and fills the report's common fields.
func runKVWorkload(r *Report, eng *sim.Engine, tr *trace.Tracer, svc *kv.Service, wl *kv.Workload) {
	wl.OnDone = func() {
		// Leave the control plane up long enough for failed-over or
		// squeezed replicas to finish resyncing, then park it.
		eng.After(300*sim.Millisecond, func() { svc.Stop() })
	}
	wl.Start()
	end := eng.RunUntil(120 * sim.Second)

	r.Series = seriesCSV(tr)
	r.Digest = tr.Digest()
	r.Sent = wl.Cfg.TargetOps
	r.Delivered = wl.Completed()
	r.NPFs = svc.NPFs()
	r.KVOps = uint64(wl.Completed())
	r.Failovers = svc.Failovers.N
	r.Resyncs = svc.Resyncs.N
	r.Shed = svc.Shed.N
	r.GroupEvicts = svc.GroupEvictions()
	r.KVp99Us = wl.Lat.Percentile(99)
	r.SimSeconds = end.Seconds()
	for _, drv := range svc.Drivers() {
		r.ResolverTimeouts += drv.ResolverTimeouts.N
		r.DegradedPins += drv.DegradedPins.N
		r.InvDuplicates += drv.InvDuplicates.N
	}

	// Universal KV invariants: no lost client ops, converged replicas.
	r.check(wl.Completed() == wl.Cfg.TargetOps,
		"lost client ops: completed %d of %d", wl.Completed(), wl.Cfg.TargetOps)
	for _, v := range svc.CheckConsistency() {
		r.check(false, "replicas diverged: %s", v)
	}
}

func runKVInvalidationStorm(seed int64) *Report {
	r := &Report{Scenario: "kv-under-invalidation-storm", Seed: seed}
	eng, tr, svc := newKVEnv(seed, kv.Config{
		ServerHosts: 3, ClientHosts: 1, Shards: 4, Replicas: 2,
		Reg: kv.RegODP, ExpectedKeys: 512,
	})
	plan := NewPlan(InvalidationChaos{
		At: 0, Duration: 2 * sim.Second,
		Extra: 20 * sim.Microsecond, Duplicates: 2,
	})
	// Discard the servers' ODP network buffers and value arenas repeatedly
	// mid-traffic: the buffer discards fire the (delayed, duplicated)
	// invalidation flow through the NPF drivers against rings being served,
	// and the arena discards force store-side refaults on live values.
	spaces := append(svc.NetSpaces(), svc.Spaces()...)
	for i := 0; i < 4; i++ {
		at := sim.Time(3+2*i) * sim.Millisecond
		plan.Add(Callback{At: at, Fn: func(ij *Injector) {
			for _, as := range spaces {
				as.DiscardPages(0, int(as.MappedBytes()/mem.PageSize))
			}
		}})
	}
	Arm(plan, kvTargets(eng, tr, svc))
	wl := svc.NewWorkload(kv.WorkloadConfig{
		TargetOps: 1200, Keys: 512, Prepopulate: true, FrontCacheEntries: 32,
	})
	runKVWorkload(r, eng, tr, svc, wl)
	r.check(r.NPFs > 0, "fault never fired: no network page faults")
	r.check(r.InvDuplicates > 0, "fault never fired: no duplicated invalidations")
	return r.finish()
}

func runKVReplicaLinkFlap(seed int64) *Report {
	r := &Report{Scenario: "kv-replica-link-flap", Seed: seed}
	eng, tr, svc := newKVEnv(seed, kv.Config{
		ServerHosts: 3, ClientHosts: 1, Shards: 4, Replicas: 2,
		Reg:            kv.RegODP,
		ExpectedKeys:   512,
		HeartbeatEvery: 2 * sim.Millisecond,
		FailoverAfter:  8 * sim.Millisecond,
		ReplTimeout:    5 * sim.Millisecond,
	})
	victim := svc.Placement().PrimaryHost(0)
	// Sever the victim host whole (data link and management port) for
	// 100 ms — an order of magnitude past FailoverAfter — then heal it.
	Arm(NewPlan(
		Callback{At: 25 * sim.Millisecond, Fn: func(ij *Injector) { svc.SetHostDown(victim, true) }},
		Callback{At: 125 * sim.Millisecond, Fn: func(ij *Injector) { svc.SetHostDown(victim, false) }},
	), kvTargets(eng, tr, svc))
	wl := svc.NewWorkload(kv.WorkloadConfig{
		TargetOps: 3000, Keys: 512, Prepopulate: true,
		OpenLoop: true, ArrivalRate: 5_000, Clients: 4,
		RequestTimeout: 10 * sim.Millisecond,
	})
	runKVWorkload(r, eng, tr, svc, wl)
	r.check(r.Failovers > 0, "fault never fired: severed primary was not failed over")
	r.check(r.Resyncs > 0, "rejoined host never resynced")
	return r.finish()
}

func runKVMemoryPressure(seed int64) *Report {
	r := &Report{Scenario: "kv-memory-pressure", Seed: seed}
	eng, tr, svc := newKVEnv(seed, kv.Config{
		ServerHosts: 3, ClientHosts: 1, Shards: 4, Replicas: 2,
		Reg: kv.RegODP, ExpectedKeys: 512,
	})
	// Fast NVMe-class swap, as in thrash-under-pressure: the scenario
	// stresses reclaim racing the data path, not disk latency.
	for _, h := range svc.Hosts {
		h.M.Swap.ReadLatency = 200 * sim.Microsecond
	}
	Arm(NewPlan(MemoryPressure{
		At: 5 * sim.Millisecond, Period: 10 * sim.Millisecond, Waves: 5,
		LowBytes: 64 << 10, HighBytes: 0,
	}), kvTargets(eng, tr, svc))
	wl := svc.NewWorkload(kv.WorkloadConfig{
		TargetOps: 1500, Keys: 512, Prepopulate: true, GetRatio: 0.7,
	})
	runKVWorkload(r, eng, tr, svc, wl)
	r.check(r.GroupEvicts > 0, "fault never fired: no cgroup evictions")
	return r.finish()
}
