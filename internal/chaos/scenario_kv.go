package chaos

import (
	"npf/internal/fabric"
	"npf/internal/kv"
	"npf/internal/mem"
	"npf/internal/sim"
	"npf/internal/trace"
)

// ---------------------------------------------------------------------------
// Distributed-KV scenarios: the whole service — placement, replication,
// failover, client retries — run under the same fault injectors the
// single-host scenarios use, with the replication convergence invariant
// (CheckConsistency) layered on top of the usual no-lost-work checks.

// kvEnv is one KV scenario testbed: the service plus the engines and
// tracers it runs on. With Engines >= 1 the server tier (and every chaos
// target) lives on partition 0 of a two-engine PDES group and the client
// tier on partition 1, each with its own tracer.
type kvEnv struct {
	eng *sim.Engine   // server-tier engine; chaos plans arm here
	g   *sim.Group    // nil when single-engine
	tr  *trace.Tracer // server-tier tracer
	trC *trace.Tracer // client-tier tracer (== tr when single-engine)
	svc *kv.Service
}

// newKVEnv builds a KV deployment on a fresh engine (or engine group).
func newKVEnv(seed int64, cfg kv.Config) *kvEnv {
	e := &kvEnv{}
	fcfg := fabric.DefaultEthernet()
	if cfg.Transport == kv.TransportRC {
		fcfg = fabric.DefaultInfiniBand()
	}
	var net *fabric.Network
	if Engines >= 1 {
		e.g = sim.NewGroup(seed, 2, fcfg.Lookahead())
		e.g.SetThreads(Engines)
		for _, en := range e.g.Engines() {
			en.MaxEvents = maxScenarioEvents
		}
		e.eng = e.g.Engine(0)
		e.tr = trace.New(e.eng)
		e.trC = trace.New(e.g.Engine(1))
		cfg.ClientTracer = e.trC
		net = fabric.NewOnGroup(e.g, fcfg)
	} else {
		e.eng = sim.NewEngine(seed)
		e.eng.MaxEvents = maxScenarioEvents
		e.tr = trace.New(e.eng)
		e.trC = e.tr
		net = fabric.New(e.eng, fcfg)
	}
	e.svc = kv.New(e.eng, net, e.tr, cfg)
	if SampleEvery > 0 {
		e.tr.StartSampler(SampleEvery)
	}
	return e
}

// targets exposes the deployment to the injector. In partitioned mode the
// client tier lives on partition 1, beyond the reach of an injector whose
// activations run on partition 0, so only the server tier registers.
func (e *kvEnv) targets() Targets {
	t := Targets{
		Eng:    e.eng,
		Net:    e.svc.Net,
		Groups: e.svc.Groups(),
		Spaces: e.svc.Spaces(),
		Tracer: e.tr,
	}
	if e.g != nil {
		t.Devs = e.svc.ServerDevices()
		t.HCAs = e.svc.ServerHCAs()
		t.Drivers = e.svc.ServerDrivers()
	} else {
		t.Devs = e.svc.Devices()
		t.HCAs = e.svc.HCAs()
		t.Drivers = e.svc.Drivers()
	}
	return t
}

// digest condenses the run's trace; in partitioned mode both tiers fold in.
func (e *kvEnv) digest() uint64 {
	if e.trC != e.tr {
		return trace.DigestAll([]*trace.Tracer{e.tr, e.trC})
	}
	return e.tr.Digest()
}

// runKVWorkload drives wl to completion (quiescing the control plane a
// grace period after the last op) and fills the report's common fields.
func runKVWorkload(r *Report, e *kvEnv, wl *kv.Workload) {
	svc := e.svc
	wl.OnDone = func() {
		// Leave the control plane up long enough for failed-over or
		// squeezed replicas to finish resyncing, then park it. OnDone fires
		// from a client-side event, so the delayed Stop runs on the client
		// engine (it forwards the server tier's flag).
		svc.ClientEngine().After(300*sim.Millisecond, func() { svc.Stop() })
	}
	wl.Start()
	var end sim.Time
	if e.g != nil {
		end = e.g.RunUntil(120 * sim.Second)
	} else {
		end = e.eng.RunUntil(120 * sim.Second)
	}

	r.Series = seriesCSV(e.tr)
	r.Digest = e.digest()
	r.Sent = wl.Cfg.TargetOps
	r.Delivered = wl.Completed()
	r.NPFs = svc.NPFs()
	r.KVOps = uint64(wl.Completed())
	r.Failovers = svc.Failovers.N
	r.Resyncs = svc.Resyncs.N
	r.Shed = svc.Shed.N
	r.GroupEvicts = svc.GroupEvictions()
	r.KVp99Us = wl.Lat.Percentile(99)
	r.SimSeconds = end.Seconds()
	for _, drv := range svc.Drivers() {
		r.ResolverTimeouts += drv.ResolverTimeouts.N
		r.DegradedPins += drv.DegradedPins.N
		r.InvDuplicates += drv.InvDuplicates.N
	}

	// Universal KV invariants: no lost client ops, converged replicas.
	r.check(wl.Completed() == wl.Cfg.TargetOps,
		"lost client ops: completed %d of %d", wl.Completed(), wl.Cfg.TargetOps)
	for _, v := range svc.CheckConsistency() {
		r.check(false, "replicas diverged: %s", v)
	}
}

func runKVInvalidationStorm(seed int64) *Report {
	r := &Report{Scenario: "kv-under-invalidation-storm", Seed: seed}
	env := newKVEnv(seed, kv.Config{
		ServerHosts: 3, ClientHosts: 1, Shards: 4, Replicas: 2,
		Reg: kv.RegODP, ExpectedKeys: 512,
	})
	svc := env.svc
	plan := NewPlan(InvalidationChaos{
		At: 0, Duration: 2 * sim.Second,
		Extra: 20 * sim.Microsecond, Duplicates: 2,
	})
	// Discard the servers' ODP network buffers and value arenas repeatedly
	// mid-traffic: the buffer discards fire the (delayed, duplicated)
	// invalidation flow through the NPF drivers against rings being served,
	// and the arena discards force store-side refaults on live values.
	spaces := append(svc.NetSpaces(), svc.Spaces()...)
	for i := 0; i < 4; i++ {
		at := sim.Time(3+2*i) * sim.Millisecond
		plan.Add(Callback{At: at, Fn: func(ij *Injector) {
			for _, as := range spaces {
				as.DiscardPages(0, int(as.MappedBytes()/mem.PageSize))
			}
		}})
	}
	Arm(plan, env.targets())
	wl := svc.NewWorkload(kv.WorkloadConfig{
		TargetOps: 1200, Keys: 512, Prepopulate: true, FrontCacheEntries: 32,
	})
	runKVWorkload(r, env, wl)
	r.check(r.NPFs > 0, "fault never fired: no network page faults")
	r.check(r.InvDuplicates > 0, "fault never fired: no duplicated invalidations")
	return r.finish(env.tr)
}

func runKVReplicaLinkFlap(seed int64) *Report {
	r := &Report{Scenario: "kv-replica-link-flap", Seed: seed}
	env := newKVEnv(seed, kv.Config{
		ServerHosts: 3, ClientHosts: 1, Shards: 4, Replicas: 2,
		Reg:            kv.RegODP,
		ExpectedKeys:   512,
		HeartbeatEvery: 2 * sim.Millisecond,
		FailoverAfter:  8 * sim.Millisecond,
		ReplTimeout:    5 * sim.Millisecond,
	})
	svc := env.svc
	victim := svc.Placement().PrimaryHost(0)
	// Sever the victim host whole (data link and management port) for
	// 100 ms — an order of magnitude past FailoverAfter — then heal it.
	Arm(NewPlan(
		Callback{At: 25 * sim.Millisecond, Fn: func(ij *Injector) { svc.SetHostDown(victim, true) }},
		Callback{At: 125 * sim.Millisecond, Fn: func(ij *Injector) { svc.SetHostDown(victim, false) }},
	), env.targets())
	wl := svc.NewWorkload(kv.WorkloadConfig{
		TargetOps: 3000, Keys: 512, Prepopulate: true,
		OpenLoop: true, ArrivalRate: 5_000, Clients: 4,
		RequestTimeout: 10 * sim.Millisecond,
	})
	runKVWorkload(r, env, wl)
	r.check(r.Failovers > 0, "fault never fired: severed primary was not failed over")
	r.check(r.Resyncs > 0, "rejoined host never resynced")
	return r.finish(env.tr)
}

func runKVMemoryPressure(seed int64) *Report {
	r := &Report{Scenario: "kv-memory-pressure", Seed: seed}
	env := newKVEnv(seed, kv.Config{
		ServerHosts: 3, ClientHosts: 1, Shards: 4, Replicas: 2,
		Reg: kv.RegODP, ExpectedKeys: 512,
	})
	svc := env.svc
	// Fast NVMe-class swap, as in thrash-under-pressure: the scenario
	// stresses reclaim racing the data path, not disk latency.
	for _, h := range svc.Hosts {
		h.M.Swap.ReadLatency = 200 * sim.Microsecond
	}
	Arm(NewPlan(MemoryPressure{
		At: 5 * sim.Millisecond, Period: 10 * sim.Millisecond, Waves: 5,
		LowBytes: 64 << 10, HighBytes: 0,
	}), env.targets())
	wl := svc.NewWorkload(kv.WorkloadConfig{
		TargetOps: 1500, Keys: 512, Prepopulate: true, GetRatio: 0.7,
	})
	runKVWorkload(r, env, wl)
	r.check(r.GroupEvicts > 0, "fault never fired: no cgroup evictions")
	return r.finish(env.tr)
}
