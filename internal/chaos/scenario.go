package chaos

import (
	"fmt"
	"strings"

	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/tcp"
	"npf/internal/trace"
)

// maxScenarioEvents trips the engine's runaway diagnostic instead of
// hanging a wedged scenario.
const maxScenarioEvents = 200_000_000

// SampleEvery, when positive, starts a time-series sampler on every
// scenario testbed's tracer with this virtual-time interval; the sampled
// series lands in Report.Series. Like bench.TraceFactory it is a
// process-wide knob set before running scenarios, not per-run state.
var SampleEvery sim.Time

// Engines selects the engine topology scenario testbeds build, mirroring
// bench.Engines: 0 (the default) keeps the classic single sequential
// engine; any value >= 1 shards each testbed across a two-partition PDES
// group — fault-target tier (servers) on partition 0, workload tier
// (clients) on partition 1 — with Engines worker threads. The partition
// structure is fixed, so reports and digests are byte-identical for every
// Engines >= 1; only wall-clock changes. Chaos plans arm on partition 0,
// where every registered target lives. The IB link-flap scenario keeps a
// single engine regardless (both of its hosts are fault targets).
var Engines = 0

// seriesCSV renders a tracer's sampled series (empty when sampling is off).
func seriesCSV(tr *trace.Tracer) string {
	s := tr.Sampler().Series()
	if s == nil {
		return ""
	}
	var b strings.Builder
	if err := trace.WriteSeriesSet(&b, []*trace.Series{s}); err != nil {
		return ""
	}
	return b.String()
}

// Report is the outcome of one scenario run: pass/fail per invariant plus
// the headline numbers and the trace digest the determinism checks compare.
type Report struct {
	Scenario string
	Seed     int64
	Pass     bool
	Failures []string

	// Digest condenses every span and metric of the run; identical seeds
	// must produce identical digests (byte-identical replay).
	Digest uint64

	// Series is the sampled time-series CSV of the run (empty unless
	// SampleEvery was set); same-seed replays must agree byte-for-byte.
	Series string

	Sent             int
	Delivered        int
	NPFs             uint64
	InjectedDrops    uint64
	Retransmits      uint64
	ResolverTimeouts uint64
	DegradedPins     uint64
	InvDuplicates    uint64
	FaultP99Us       float64
	SimSeconds       float64

	// Distributed-KV scenario fields (zero for the single-host scenarios).
	KVOps       uint64
	Failovers   uint64
	Resyncs     uint64
	Shed        uint64
	GroupEvicts uint64
	KVp99Us     float64

	// Flight-recorder excerpt, attached only when an invariant failed:
	// the last causal fault events before the end of the run, rendered and
	// digested so same-seed failures are byte-comparable.
	FlightRecorder string
	FlightEvents   int
	FlightDigest   uint64
}

// flightExcerptEvents bounds the flight-recorder dump attached to a failing
// report: enough tail to see the faults in flight when the invariant broke,
// small enough to read in CI logs.
const flightExcerptEvents = 64

// check records a failed invariant.
func (r *Report) check(ok bool, format string, args ...any) {
	if !ok {
		r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
	}
}

// finish seals the report. When an invariant failed and the scenario ran
// with a tracer, it attaches the flight-recorder excerpt: the last causal
// fault lifecycle events, sorted into total order and digested.
func (r *Report) finish(tr *trace.Tracer) *Report {
	r.Pass = len(r.Failures) == 0
	if !r.Pass && tr != nil {
		ev := tr.FlightExcerpt(flightExcerptEvents)
		if len(ev) > 0 {
			var b strings.Builder
			trace.WriteFlightRecorder(&b, ev)
			r.FlightRecorder = b.String()
			r.FlightEvents = len(ev)
			r.FlightDigest = trace.DigestFaultEvents(ev)
		}
	}
	return r
}

// Render prints the report in the style of the bench experiment renderers.
func (r *Report) Render() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "chaos scenario %-28s seed=%-4d %s\n", r.Scenario, r.Seed, status)
	fmt.Fprintf(&b, "  delivered %d/%d msgs, %d NPFs (p99 %.0f us), %d injected drops, %d retx\n",
		r.Delivered, r.Sent, r.NPFs, r.FaultP99Us, r.InjectedDrops, r.Retransmits)
	fmt.Fprintf(&b, "  resolver timeouts %d, degraded pins %d, dup invalidations %d, %.3fs simulated, digest %016x\n",
		r.ResolverTimeouts, r.DegradedPins, r.InvDuplicates, r.SimSeconds, r.Digest)
	if r.KVOps > 0 {
		fmt.Fprintf(&b, "  kv: %d ops (p99 %.0f us), %d failovers, %d resyncs, %d shed, %d group evictions\n",
			r.KVOps, r.KVp99Us, r.Failovers, r.Resyncs, r.Shed, r.GroupEvicts)
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  FAIL: %s\n", f)
	}
	if r.FlightRecorder != "" {
		fmt.Fprintf(&b, "  flight recorder: last %d fault events (digest %016x)\n",
			r.FlightEvents, r.FlightDigest)
		for _, line := range strings.Split(strings.TrimRight(r.FlightRecorder, "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}

// Scenario is one named, self-contained chaos experiment: it builds its own
// compact testbed, arms a fault plan, drives a workload, and checks the
// invariants the paper's design promises to keep under that fault.
type Scenario struct {
	Name string
	Desc string
	Run  func(seed int64) *Report
}

// Scenarios returns the registry, in fixed order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "loss-burst-during-replay",
			Desc: "30% uncorrelated loss at the server while the cold backup ring is replaying parked packets; TCP must deliver everything",
			Run:  runLossBurst,
		},
		{
			Name: "invalidate-while-parked",
			Desc: "delayed+duplicated MMU invalidations and targeted RX-buffer evictions race the backup resolver; coherence must hold",
			Run:  runInvalidateWhileParked,
		},
		{
			Name: "thrash-under-pressure",
			Desc: "cgroup memory-pressure waves reclaim the IOuser's buffers mid-flight; ODP must keep making progress",
			Run:  runThrashUnderPressure,
		},
		{
			Name: "slow-resolver",
			Desc: "the fault resolver times out repeatedly; exponential backoff plus the degrade-to-pinned escape hatch must unwedge it",
			Run:  runSlowResolver,
		},
		{
			Name: "link-flap",
			Desc: "an IB link flaps three times during an ODP message stream; RC retransmission must recover every message",
			Run:  runLinkFlap,
		},
		{
			Name: "cold-ring-storm",
			Desc: "a burst of traffic into an entirely cold small ring under a firmware stall; the backup ring must drain without sticking",
			Run:  runColdRingStorm,
		},
		{
			Name: "kv-under-invalidation-storm",
			Desc: "delayed+duplicated invalidations and arena page discards hammer a replicated KV service's ODP servers; every op must complete and replicas must converge",
			Run:  runKVInvalidationStorm,
		},
		{
			Name: "kv-replica-link-flap",
			Desc: "a KV shard primary's host drops off the fabric mid-workload; failover must promote a backup, clients must reroute, and the rejoined host must resync",
			Run:  runKVReplicaLinkFlap,
		},
		{
			Name: "kv-memory-pressure",
			Desc: "reclaim waves squeeze the per-shard cgroups under live KV traffic; the service must shed-or-evict gracefully and keep replicas identical",
			Run:  runKVMemoryPressure,
		},
	}
}

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// RunScenario runs one named scenario.
func RunScenario(name string, seed int64) (*Report, error) {
	s, ok := Lookup(name)
	if !ok {
		var names []string
		for _, s := range Scenarios() {
			names = append(names, s.Name)
		}
		return nil, fmt.Errorf("chaos: unknown scenario %q (have %s)", name, strings.Join(names, ", "))
	}
	return s.Run(seed), nil
}

// ---------------------------------------------------------------------------
// Ethernet testbed.

// ethEnv is a compact two-host Ethernet testbed: an ODP server with a
// backup ring (cold — nothing prefaulted) and a warm, unmodified client.
// It mirrors internal/bench's env but stays dependency-free so the root
// npf package can re-export this package. With Engines >= 1 the server
// lives on partition 0 of a two-engine PDES group (with the tracer and
// every chaos target) and the client on partition 1.
type ethEnv struct {
	eng      *sim.Engine // server engine (partition 0, or the only one)
	engC     *sim.Engine // client engine (== eng when single-engine)
	g        *sim.Group  // nil when single-engine
	tr       *trace.Tracer
	net      *fabric.Network
	m, cm    *mem.Machine
	group    *mem.Group
	drv      *core.Driver
	sDev     *nic.Device
	server   *tcp.Stack
	serverAS *mem.AddressSpace
	client   *tcp.Stack
}

func newEthEnv(seed int64, ringSize int, dcfg core.Config, cgroupLimit int64) *ethEnv {
	e := &ethEnv{}
	fcfg := fabric.DefaultEthernet()
	if Engines >= 1 {
		e.g = sim.NewGroup(seed, 2, fcfg.Lookahead())
		e.g.SetThreads(Engines)
		for _, en := range e.g.Engines() {
			en.MaxEvents = maxScenarioEvents
		}
		e.eng, e.engC = e.g.Engine(0), e.g.Engine(1)
		e.tr = trace.New(e.eng)
		e.net = fabric.NewOnGroup(e.g, fcfg)
	} else {
		eng := sim.NewEngine(seed)
		eng.MaxEvents = maxScenarioEvents
		e.eng, e.engC = eng, eng
		e.tr = trace.New(eng)
		e.net = fabric.New(eng, fcfg)
	}
	e.m = mem.NewMachine(e.eng, 8<<30)
	e.m.SetTracer(e.tr)
	e.cm = mem.NewMachine(e.engC, 8<<30)
	if cgroupLimit > 0 {
		e.group = mem.NewGroup("chaos-cgroup", cgroupLimit)
	}
	e.drv = core.NewDriver(e.eng, dcfg)
	e.drv.SetTracer(e.tr)

	e.sDev = nic.NewDevice(e.eng, e.net, nic.DefaultConfig())
	e.sDev.SetTracer(e.tr)
	e.drv.AttachDevice(e.sDev)
	e.serverAS = e.m.NewAddressSpace("server", e.group)
	sch := e.sDev.NewChannel("server", e.serverAS, ringSize, nic.PolicyBackup, ringSize)
	e.drv.EnableODP(sch)
	e.server = tcp.NewStack(sch, tcp.DefaultConfig())

	// The client is warm and fully pinned, so its NPF sink can never fire;
	// pointing it at the server's driver is safe even across partitions.
	cDev := nic.NewDevice(e.engC, e.net, nic.DefaultConfig())
	cDev.SetNPFSink(e.drv)
	cAS := e.cm.NewAddressSpace("client", nil)
	cch := cDev.NewChannel("client", cAS, 256, nic.PolicyPinned, 256)
	e.client = tcp.NewStack(cch, tcp.DefaultConfig())
	warmStack(e.client)
	if SampleEvery > 0 {
		e.tr.StartSampler(SampleEvery)
	}
	return e
}

// run drives the testbed — every partition — to the horizon.
func (e *ethEnv) run(horizon sim.Time) sim.Time {
	if e.g != nil {
		return e.g.RunUntil(horizon)
	}
	return e.eng.RunUntil(horizon)
}

func warmStack(st *tcp.Stack) {
	ch := st.Channel()
	rxBase, rxLen := st.RxBuffers()
	txBase, txLen := st.TxBuffers()
	for _, r := range []struct {
		base mem.VAddr
		n    int64
	}{{rxBase, rxLen}, {txBase, txLen}} {
		pages := int(r.n / mem.PageSize)
		if _, err := ch.AS.TouchPages(r.base.Page(), pages, true); err != nil {
			panic(err)
		}
		ch.Domain.Map(r.base.Page(), pages)
	}
}

func (e *ethEnv) targets() Targets {
	t := Targets{
		Eng:     e.eng,
		Net:     e.net,
		Devs:    []*nic.Device{e.sDev},
		Drivers: []*core.Driver{e.drv},
		Spaces:  []*mem.AddressSpace{e.serverAS},
		Tracer:  e.tr,
	}
	if e.group != nil {
		t.Groups = []*mem.Group{e.group}
	}
	return t
}

// ethTraffic paces msgs client→server messages of msgBytes each, one every
// gap starting at start, and runs the engine to the horizon. It fills the
// report's traffic and driver fields.
func ethTraffic(e *ethEnv, r *Report, msgs, msgBytes int, start, gap, horizon sim.Time) {
	e.server.Listen(func(c *tcp.Conn) {
		c.OnMessage = func(payload any, n int) { r.Delivered++ }
	})
	conn := e.client.Dial(e.server.Channel().Dev.Node, e.server.Channel().Flow)
	conn.OnFail = func(err error) {
		r.Failures = append(r.Failures, fmt.Sprintf("connection failed: %v", err))
	}
	r.Sent = msgs
	// Sends originate at the client, so they are paced on its engine.
	for i := 0; i < msgs; i++ {
		e.engC.At(start+sim.Time(i)*gap, func() { conn.Send(msgBytes, nil) })
	}
	end := e.run(horizon)

	r.Series = seriesCSV(e.tr)
	r.Digest = e.tr.Digest()
	r.NPFs = e.drv.NPFs.N
	r.InjectedDrops = e.net.InjectedDrops()
	r.Retransmits = e.client.Retransmits.N + e.server.Retransmits.N
	r.ResolverTimeouts = e.drv.ResolverTimeouts.N
	r.DegradedPins = e.drv.DegradedPins.N
	r.InvDuplicates = e.drv.InvDuplicates.N
	r.FaultP99Us = e.drv.Hist.Total.Percentile(99)
	r.SimSeconds = end.Seconds()

	// Universal invariants: no lost completions, no stuck rings.
	r.check(r.Delivered == r.Sent, "lost completions: delivered %d of %d", r.Delivered, r.Sent)
	r.check(e.drv.PendingBackupWork() == 0, "stuck ring: %d backup entries still pending", e.drv.PendingBackupWork())
}

// ---------------------------------------------------------------------------
// Ethernet scenarios.

func runLossBurst(seed int64) *Report {
	r := &Report{Scenario: "loss-burst-during-replay", Seed: seed}
	e := newEthEnv(seed, 64, core.DefaultConfig(), 0)
	serverNode := e.server.Channel().Dev.Node
	Arm(NewPlan(
		LossBurst{At: 2 * sim.Millisecond, Duration: 3 * sim.Millisecond, Prob: 0.3,
			Nodes: []fabric.NodeID{serverNode}},
		// After the uncorrelated burst, a Gilbert–Elliott tail: bursty
		// correlated loss while retransmissions replay the parked window.
		GilbertElliott{At: 5 * sim.Millisecond, Duration: 10 * sim.Millisecond,
			Model: GEParams{PGoodBad: 0.01, PBadGood: 0.1, LossBad: 0.5},
			Nodes: []fabric.NodeID{serverNode}},
	), e.targets())
	ethTraffic(e, r, 200, 2000, sim.Millisecond, 20*sim.Microsecond, 120*sim.Second)
	r.check(r.InjectedDrops > 0, "fault never fired: no injected drops")
	r.check(r.FaultP99Us < 2000, "NPF p99 %.0f us exceeds 2 ms", r.FaultP99Us)
	return r.finish(e.tr)
}

func runInvalidateWhileParked(seed int64) *Report {
	r := &Report{Scenario: "invalidate-while-parked", Seed: seed}
	e := newEthEnv(seed, 64, core.DefaultConfig(), 0)
	plan := NewPlan(InvalidationChaos{
		At: 0, Duration: 60 * sim.Second,
		Extra: 20 * sim.Microsecond, Duplicates: 2,
	})
	// Discard the server's RX buffers repeatedly while parked packets are
	// being replayed: each discard fires the (duplicated) notifier flow and
	// forces minor refaults on buffers the resolver may be mid-way through.
	rxBase, rxLen := e.server.RxBuffers()
	for i := 0; i < 5; i++ {
		plan.Add(Callback{
			At: sim.Time(1500+500*i) * sim.Microsecond,
			Fn: func(ij *Injector) {
				e.serverAS.DiscardPages(rxBase.Page(), int(rxLen/mem.PageSize))
			},
		})
	}
	Arm(plan, e.targets())
	ethTraffic(e, r, 150, 2000, sim.Millisecond, 25*sim.Microsecond, 120*sim.Second)
	r.check(r.InvDuplicates > 0, "fault never fired: no duplicated invalidations")
	r.check(r.FaultP99Us < 5000, "NPF p99 %.0f us exceeds 5 ms", r.FaultP99Us)
	return r.finish(e.tr)
}

func runThrashUnderPressure(seed int64) *Report {
	r := &Report{Scenario: "thrash-under-pressure", Seed: seed}
	e := newEthEnv(seed, 64, core.DefaultConfig(), 16<<20)
	// Fast NVMe-class swap: the scenario stresses reclaim racing NPFs, not
	// disk latency, and a 10 ms-per-page device would dominate every batch.
	e.m.Swap.ReadLatency = 200 * sim.Microsecond
	Arm(NewPlan(MemoryPressure{
		At: 1500 * sim.Microsecond, Period: sim.Millisecond, Waves: 5,
		LowBytes: 64 << 10, HighBytes: 16 << 20,
	}), e.targets())
	ethTraffic(e, r, 200, 4000, sim.Millisecond, 20*sim.Microsecond, 120*sim.Second)
	r.check(e.group.Evictions.N > 0, "fault never fired: no pressure evictions")
	// Re-faulting dirty evicted buffers reads swap (10 ms majors): the tail
	// is allowed to reach tens of milliseconds but must stay bounded.
	r.check(r.FaultP99Us < 50000, "NPF p99 %.0f us exceeds 50 ms", r.FaultP99Us)
	return r.finish(e.tr)
}

func runSlowResolver(seed int64) *Report {
	r := &Report{Scenario: "slow-resolver", Seed: seed}
	dcfg := core.DefaultConfig()
	dcfg.RetryBackoffBase = 50 * sim.Microsecond
	dcfg.RetryBackoffMax = 400 * sim.Microsecond
	dcfg.MaxNPFRetries = 3
	dcfg.DegradeToPinned = true
	e := newEthEnv(seed, 64, dcfg, 0)
	Arm(NewPlan(ResolverSlowdown{
		At: sim.Millisecond, Duration: 4 * sim.Millisecond,
		Extra: 100 * sim.Microsecond, TimeoutProb: 1,
	}), e.targets())
	ethTraffic(e, r, 150, 2000, sim.Millisecond, 25*sim.Microsecond, 120*sim.Second)
	r.check(r.ResolverTimeouts > 0, "fault never fired: no resolver timeouts")
	r.check(r.DegradedPins > 0, "escape hatch never tripped: no degraded pins")
	r.check(r.FaultP99Us < 10000, "NPF p99 %.0f us exceeds 10 ms", r.FaultP99Us)
	return r.finish(e.tr)
}

func runColdRingStorm(seed int64) *Report {
	r := &Report{Scenario: "cold-ring-storm", Seed: seed}
	e := newEthEnv(seed, 32, core.DefaultConfig(), 0)
	Arm(NewPlan(FirmwareStall{
		At: sim.Millisecond, Duration: 3 * sim.Millisecond,
		Mult: 3, Add: 100 * sim.Microsecond,
	}), e.targets())
	ethTraffic(e, r, 300, 4000, sim.Millisecond, 5*sim.Microsecond, 120*sim.Second)
	r.check(e.sDev.RxToBackup.N > 0, "cold ring never parked a packet")
	r.check(r.FaultP99Us < 10000, "NPF p99 %.0f us exceeds 10 ms", r.FaultP99Us)
	return r.finish(e.tr)
}

// ---------------------------------------------------------------------------
// InfiniBand scenario.

func runLinkFlap(seed int64) *Report {
	r := &Report{Scenario: "link-flap", Seed: seed}
	eng := sim.NewEngine(seed)
	eng.MaxEvents = maxScenarioEvents
	tr := trace.New(eng)
	net := fabric.New(eng, fabric.DefaultInfiniBand())
	cfg := rc.DefaultConfig()
	ma, mb := mem.NewMachine(eng, 8<<30), mem.NewMachine(eng, 8<<30)
	mb.SetTracer(tr)
	hcaA, hcaB := rc.NewHCA(eng, net, cfg), rc.NewHCA(eng, net, cfg)
	hcaB.SetTracer(tr)
	drvA := core.NewDriver(eng, core.DefaultConfig())
	drvB := core.NewDriver(eng, core.DefaultConfig())
	drvB.SetTracer(tr)
	drvA.AttachHCA(hcaA)
	drvB.AttachHCA(hcaB)
	if SampleEvery > 0 {
		tr.StartSampler(SampleEvery)
	}
	asA, asB := ma.NewAddressSpace("a", nil), mb.NewAddressSpace("b", nil)
	asA.MapBytes(64 << 20)
	asB.MapBytes(64 << 20)
	qpA, qpB := hcaA.NewQP(asA), hcaB.NewQP(asB)
	rc.Connect(qpA, qpB)
	drvA.EnableODPQP(qpA)
	drvB.EnableODPQP(qpB)

	const msgs, msgBytes = 60, 16 << 10
	r.Sent = msgs
	var completed int
	qpB.OnRecv = func(c rc.RecvCompletion) { r.Delivered++ }
	qpA.OnSendComplete = func(int64) { completed++ }
	for i := 0; i < msgs; i++ {
		addr := mem.VAddr(int64(i) * msgBytes)
		qpB.PostRecv(rc.RecvWQE{ID: int64(i), Addr: addr, Len: msgBytes})
	}
	// The sender's source buffers start warm (the receiver is the ODP side
	// under test); each send lands in a cold receive buffer.
	if _, err := asA.TouchPages(0, msgs*msgBytes/mem.PageSize, true); err != nil {
		panic(err)
	}
	for i := 0; i < msgs; i++ {
		i := i
		eng.At(sim.Time(i)*100*sim.Microsecond, func() {
			qpA.PostSend(rc.SendWQE{ID: int64(i), Laddr: mem.VAddr(int64(i) * msgBytes), Len: msgBytes})
		})
	}

	ij := Arm(NewPlan(LinkFlap{
		Node: hcaB.Node, At: sim.Millisecond, Down: 500 * sim.Microsecond,
		Period: 1500 * sim.Microsecond, Times: 3,
	}), Targets{Eng: eng, Net: net, HCAs: []*rc.HCA{hcaA, hcaB},
		Drivers: []*core.Driver{drvA, drvB}, Tracer: tr})
	_ = ij

	end := eng.RunUntil(120 * sim.Second)
	r.Series = seriesCSV(tr)
	r.Digest = tr.Digest()
	r.NPFs = drvB.NPFs.N
	r.Retransmits = hcaA.Retransmits.N + hcaB.Retransmits.N
	r.FaultP99Us = drvB.Hist.Total.Percentile(99)
	r.SimSeconds = end.Seconds()
	r.check(r.Delivered == msgs, "lost completions: delivered %d of %d", r.Delivered, msgs)
	r.check(completed == msgs, "lost send completions: %d of %d", completed, msgs)
	r.check(r.Retransmits > 0, "fault never fired: no retransmissions")
	r.check(r.FaultP99Us < 2000, "NPF p99 %.0f us exceeds 2 ms", r.FaultP99Us)
	return r.finish(tr)
}
