package rc

import (
	"fmt"

	"npf/internal/fabric"
	"npf/internal/iommu"
	"npf/internal/mem"
	"npf/internal/sim"
	"npf/internal/trace"
)

// SendWQE is a send or RDMA-write work request.
type SendWQE struct {
	ID    int64
	Laddr mem.VAddr // local source buffer
	Len   int
	// Raddr is the remote target for RDMA writes; ignored for sends.
	Raddr mem.VAddr
	// Write selects RDMA write (no remote receive WQE consumed).
	Write bool
	// Payload is the simulated content, delivered to the remote completion
	// (sends) or remote-write callback.
	Payload any

	firstPSN uint64
}

// RecvWQE posts a receive buffer.
type RecvWQE struct {
	ID   int64
	Addr mem.VAddr
	Len  int
}

// ReadWQE is an RDMA read: fetch Len bytes from the peer's Raddr into the
// local Laddr.
type ReadWQE struct {
	ID    int64
	Laddr mem.VAddr
	Raddr mem.VAddr
	Len   int
}

// RecvCompletion reports a fully placed incoming send message.
type RecvCompletion struct {
	WQEID   int64
	Len     int
	Payload any
	// From is the sender's address handle, set for UD datagrams only
	// (RC connections already know their peer). Reply with PostSendUDTo.
	From UDRemote
}

// QP is one reliable-connection queue pair. Wire both ends with Connect.
type QP struct {
	hca    *HCA
	QPN    QPN
	AS     *mem.AddressSpace
	Domain *iommu.Domain

	peerNode  int // fabric.NodeID, kept as int to avoid the import in hot structs
	peerQPN   QPN
	connected bool

	// Completion callbacks (invoked after interrupt latency).
	OnRecv         func(RecvCompletion)
	OnSendComplete func(wqeID int64)
	OnReadComplete func(wqeID int64)
	OnRemoteWrite  func(raddr mem.VAddr, length int, payload any, last bool)

	// Requester state.
	sq         []*SendWQE
	assignPSN  uint64 // next PSN to hand to a queued WQE
	sndNxt     uint64
	sndUna     uint64
	sendPaused bool // local (send-side) NPF pending
	rnrWait    bool // paused by an RNR NACK
	retxArmed  bool

	// Responder state.
	expPSN        uint64
	rq            []*RecvWQE
	rcvMsgOff     int
	unacked       int
	recvFaultOpen bool // NPF already reported, suppress duplicates
	// seqNacked is the expPSN value a sequence-error NAK was last sent
	// for; one NAK per gap (+1 so PSN 0 gaps are NACKable).
	seqNacked uint64

	// RDMA read state.
	nextReqID   int64
	reads       map[int64]*readState  // initiator side
	respStreams map[int64]*respStream // responder side
}

// readState is the initiator's view of an outstanding RDMA read.
type readState struct {
	wqe        ReadWQE
	placedOff  int
	faulted    bool
	uncredited int // chunks placed since the last credit grant
	// dropSpan covers the window in which incoming response packets are
	// dropped because the initiator faulted (§4's rewind case).
	dropSpan trace.SpanID
}

// respStream is the responder's view: it streams read-response chunks
// under credit-based flow control (ReadWindow), paced at line rate.
type respStream struct {
	reqID   int64
	dstQPN  QPN
	dstNode int
	src     mem.VAddr
	length  int
	off     int
	paused  bool
	credits int
	pumping bool // a paced emission event is scheduled
	// pauseSpan covers a ReadRNR-extension suspension window.
	pauseSpan trace.SpanID
}

// NewQP allocates a queue pair on h bound to address space as, with its own
// translation domain.
func (h *HCA) NewQP(as *mem.AddressSpace) *QP {
	return h.NewQPShared(as, nil)
}

// NewQPShared allocates a queue pair using an existing translation domain —
// the verbs model, where memory regions belong to a protection domain
// shared by all of a process's QPs. A nil domain allocates a fresh one.
func (h *HCA) NewQPShared(as *mem.AddressSpace, dom *iommu.Domain) *QP {
	if dom == nil {
		dom = h.MMU.NewDomain()
	}
	h.nextQP++
	qp := &QP{
		hca:         h,
		QPN:         h.nextQP,
		AS:          as,
		Domain:      dom,
		reads:       make(map[int64]*readState),
		respStreams: make(map[int64]*respStream),
	}
	h.qps[qp.QPN] = qp
	return qp
}

// Connect wires two QPs into a reliable connection.
func Connect(a, b *QP) {
	a.peerNode, a.peerQPN, a.connected = int(b.hca.Node), b.QPN, true
	b.peerNode, b.peerQPN, b.connected = int(a.hca.Node), a.QPN, true
}

// HCA returns the owning adapter.
func (qp *QP) HCA() *HCA { return qp.hca }

func (qp *QP) npkts(length int) uint64 {
	if length <= 0 {
		return 1
	}
	return uint64((length + qp.hca.Cfg.MTU - 1) / qp.hca.Cfg.MTU)
}

// PostSend queues a send or RDMA-write work request.
func (qp *QP) PostSend(wqe SendWQE) {
	if !qp.connected {
		panic("rc: PostSend on unconnected QP")
	}
	w := wqe
	w.firstPSN = qp.assignPSN
	qp.assignPSN += qp.npkts(w.Len)
	qp.sq = append(qp.sq, &w)
	qp.sendLoop()
}

// PostRecv posts a receive buffer. Receives complete in order.
func (qp *QP) PostRecv(wqe RecvWQE) {
	w := wqe
	qp.rq = append(qp.rq, &w)
}

// PostRead issues an RDMA read.
func (qp *QP) PostRead(wqe ReadWQE) {
	if !qp.connected {
		panic("rc: PostRead on unconnected QP")
	}
	qp.nextReqID++
	id := qp.nextReqID
	qp.reads[id] = &readState{wqe: wqe}
	qp.hca.send(fabricNode(qp.peerNode), &packet{
		Kind: pktReadReq, SrcQPN: qp.QPN, DstQPN: qp.peerQPN,
		ReqID: id, Raddr: wqe.Raddr, MsgLen: wqe.Len, ReadOff: 0,
	}, 0)
}

// RecvQueueLen reports posted, unconsumed receive WQEs.
func (qp *QP) RecvQueueLen() int { return len(qp.rq) }

// SendQueueLen reports send WQEs not yet fully acknowledged.
func (qp *QP) SendQueueLen() int { return len(qp.sq) }

// ---------------------------------------------------------------------------
// Requester: send engine.

func (qp *QP) inflight() uint64 { return qp.sndNxt - qp.sndUna }

// positionOf locates PSN psn within the send queue.
func (qp *QP) positionOf(psn uint64) (wqe *SendWQE, off int) {
	for _, w := range qp.sq {
		n := qp.npkts(w.Len)
		if psn < w.firstPSN+n {
			chunkIdx := int(psn - w.firstPSN)
			return w, chunkIdx * qp.hca.Cfg.MTU
		}
	}
	panic(fmt.Sprintf("rc: PSN %d beyond send queue", psn))
}

// sendLoop emits packets while the window allows and no fault or RNR pause
// holds the QP.
func (qp *QP) sendLoop() {
	cfg := qp.hca.Cfg
	for !qp.sendPaused && !qp.rnrWait &&
		qp.inflight() < uint64(cfg.Window) && qp.sndNxt < qp.assignPSN {
		w, off := qp.positionOf(qp.sndNxt)
		chunk := w.Len - off
		if chunk > cfg.MTU {
			chunk = cfg.MTU
		}
		if chunk < 0 {
			chunk = 0
		}
		_, missing := qp.Domain.Translate(w.Laddr+mem.VAddr(off), chunk)
		if len(missing) > 0 {
			// Local fault: stop sending and wait (the faulting data is
			// local, §4).
			qp.sendPaused = true
			qp.hca.raiseFault(QPFault{
				QP:      qp,
				Class:   FaultSendLocal,
				Missing: qp.faultPages(missing, w.Laddr, w.Len, false),
				Resolved: func() {
					qp.hca.Eng.After(cfg.FirmwareResume, func() {
						qp.sendPaused = false
						qp.sendLoop()
					})
				},
			})
			return
		}
		qp.dmaTouch(w.Laddr+mem.VAddr(off), chunk, false)
		last := off+chunk >= w.Len
		pkt := &packet{
			Kind: pktData, SrcQPN: qp.QPN, DstQPN: qp.peerQPN,
			PSN: qp.sndNxt, ChunkLen: chunk, MsgLen: w.Len, MsgOff: off,
			Last: last,
		}
		if w.Write {
			pkt.Op = opWrite
			pkt.Raddr = w.Raddr + mem.VAddr(off)
			pkt.Payload = w.Payload
		} else if last {
			pkt.Payload = w.Payload
		}
		qp.hca.send(fabricNode(qp.peerNode), pkt, chunk)
		qp.sndNxt++
	}
	qp.armRetxTimer()
}

// armRetxTimer schedules the local-ACK-timeout safety net.
func (qp *QP) armRetxTimer() {
	if qp.retxArmed || qp.inflight() == 0 {
		return
	}
	qp.retxArmed = true
	snapshot := qp.sndUna
	qp.hca.Eng.After(qp.hca.Cfg.RetxTimeout, func() {
		qp.retxArmed = false
		if qp.inflight() > 0 && qp.sndUna == snapshot && !qp.rnrWait && !qp.sendPaused {
			qp.hca.Retransmits.Inc()
			qp.hca.cRetx.Inc()
			qp.sndNxt = qp.sndUna
			qp.sendLoop()
		} else {
			qp.armRetxTimer()
		}
	})
}

// handleAck processes a cumulative acknowledgment.
func (qp *QP) handleAck(cum uint64) {
	if cum <= qp.sndUna {
		return
	}
	qp.sndUna = cum
	for len(qp.sq) > 0 {
		w := qp.sq[0]
		if w.firstPSN+qp.npkts(w.Len) > qp.sndUna {
			break
		}
		qp.sq = qp.sq[1:]
		if w.Write {
			qp.completeRead(w.ID, qp.OnSendComplete) // writes share the send CQ
		} else if qp.OnSendComplete != nil {
			id := w.ID
			qp.hca.Eng.After(qp.hca.Cfg.IntLatency, func() { qp.OnSendComplete(id) })
		}
	}
	qp.sendLoop()
}

func (qp *QP) completeRead(id int64, cb func(int64)) {
	if cb != nil {
		qp.hca.Eng.After(qp.hca.Cfg.IntLatency, func() { cb(id) })
	}
}

// handleRNRNack rewinds to the NACKed PSN and pauses for the RNR timeout.
// Data between the NACKed PSN and sndNxt was dropped at the receiver; RC
// retransmission recovers it without touching congestion state (§4).
func (qp *QP) handleRNRNack(psn uint64) {
	if qp.rnrWait {
		return // already waiting; duplicate NACKs for retried packets
	}
	if psn > qp.sndUna {
		qp.handleAckOnly(psn)
	}
	qp.hca.Retransmits.Add(qp.sndNxt - psn)
	qp.hca.cRetx.Add(qp.sndNxt - psn)
	if qp.hca.Tracer.Enabled() {
		now := qp.hca.Eng.Now()
		id := qp.hca.Tracer.Span(0, "rc", "rnr-wait", now, now+qp.hca.Cfg.RNRTimeout)
		qp.hca.Tracer.ArgInt(id, "qpn", int64(qp.QPN))
		qp.hca.Tracer.ArgInt(id, "rewound", int64(qp.sndNxt-psn))
	}
	qp.sndNxt = psn
	qp.rnrWait = true
	qp.hca.Eng.After(qp.hca.Cfg.RNRTimeout, func() {
		qp.rnrWait = false
		qp.sendLoop()
	})
}

// handleSeqNack rewinds to the NACKed PSN and resumes immediately — the
// receiver saw a sequence gap, so everything from psn on must be resent.
// Unlike the RNR case there is nothing to wait for.
func (qp *QP) handleSeqNack(psn uint64) {
	if qp.rnrWait || psn >= qp.sndNxt {
		return
	}
	if psn > qp.sndUna {
		qp.handleAckOnly(psn)
	}
	if psn < qp.sndUna {
		psn = qp.sndUna // everything below is already acknowledged
	}
	qp.hca.Retransmits.Add(qp.sndNxt - psn)
	qp.hca.cRetx.Add(qp.sndNxt - psn)
	qp.sndNxt = psn
	qp.sendLoop()
}

// handleAckOnly advances sndUna/completions without restarting the loop
// (used from the RNR path where the loop must stay paused).
func (qp *QP) handleAckOnly(cum uint64) {
	if cum <= qp.sndUna {
		return
	}
	qp.sndUna = cum
	for len(qp.sq) > 0 {
		w := qp.sq[0]
		if w.firstPSN+qp.npkts(w.Len) > qp.sndUna {
			break
		}
		qp.sq = qp.sq[1:]
		id, isWrite := w.ID, w.Write
		if qp.OnSendComplete != nil || isWrite {
			qp.completeRead(id, qp.OnSendComplete)
		}
	}
}

// ---------------------------------------------------------------------------
// Responder: packet handling.

func (qp *QP) handlePacket(pkt *packet) {
	switch pkt.Kind {
	case pktAck:
		qp.handleAck(pkt.AckPSN)
	case pktRNRNack:
		qp.handleRNRNack(pkt.AckPSN)
	case pktSeqNack:
		qp.handleSeqNack(pkt.AckPSN)
	case pktData:
		qp.handleData(pkt)
	case pktReadReq:
		qp.handleReadReq(pkt)
	case pktReadResp:
		qp.handleReadResp(pkt)
	case pktReadCredit:
		qp.handleReadCredit(pkt)
	case pktReadRNR:
		qp.handleReadRNR(pkt)
	case pktReadResume:
		qp.handleReadResume(pkt)
	case pktReadDone:
		delete(qp.respStreams, pkt.ReqID)
	case pktUD:
		qp.handleUD(pkt)
	}
}

func (qp *QP) handleData(pkt *packet) {
	cfg := qp.hca.Cfg
	if pkt.PSN != qp.expPSN {
		if pkt.PSN < qp.expPSN {
			// Duplicate from a rewind overlap: re-ack to resync.
			qp.sendAck()
		} else {
			qp.hca.DroppedRNPF.Inc()
			if qp.recvFaultOpen {
				// Gap after a faulting packet we RNR-NACKed: drop silently;
				// the sender is already rewinding.
				return
			}
			// A genuine sequence error (lost packet on a lossy fabric,
			// e.g. RoCE): ask the sender to rewind immediately rather than
			// waiting out its retransmission timer. One NAK per gap.
			if qp.seqNacked != qp.expPSN+1 {
				qp.seqNacked = qp.expPSN + 1
				qp.unacked = 0
				qp.hca.send(fabricNode(qp.peerNode), &packet{
					Kind: pktSeqNack, SrcQPN: qp.QPN, DstQPN: qp.peerQPN,
					AckPSN: qp.expPSN,
				}, 0)
			}
		}
		return
	}
	var dst mem.VAddr
	var wqe *RecvWQE
	switch pkt.Op {
	case opSend:
		if len(qp.rq) == 0 {
			// Literal receiver-not-ready.
			qp.sendRNRNack()
			return
		}
		wqe = qp.rq[0]
		dst = wqe.Addr + mem.VAddr(qp.rcvMsgOff)
	case opWrite:
		dst = pkt.Raddr
	}
	if qp.Domain.Blocked(dst, pkt.ChunkLen) {
		// Guest-table protection violation (§2.4): drop, no NPF.
		qp.hca.ProtectionDrops.Inc()
		return
	}
	_, missing := qp.Domain.TranslateAccess(dst, pkt.ChunkLen, true)
	if len(missing) > 0 {
		// Receive NPF: firmware immediately suspends the sender with an
		// RNR NACK and reports the fault once.
		qp.sendRNRNack()
		if !qp.recvFaultOpen {
			qp.recvFaultOpen = true
			var miss []mem.PageNum
			if wqe != nil {
				miss = qp.faultPages(missing, wqe.Addr, wqe.Len, true)
			} else {
				miss = qp.faultPagesRange(missing, pkt.Raddr, pkt.MsgLen-pkt.MsgOff, true)
			}
			qp.hca.raiseFault(QPFault{
				QP:      qp,
				Class:   FaultRecvRNPF,
				Missing: miss,
				Resolved: func() {
					qp.hca.Eng.After(cfg.FirmwareResume, func() {
						qp.recvFaultOpen = false
					})
				},
			})
		}
		return
	}
	qp.dmaTouch(dst, pkt.ChunkLen, true)
	qp.expPSN++
	qp.unacked++
	if pkt.Op == opSend {
		qp.rcvMsgOff += pkt.ChunkLen
		if pkt.Last {
			qp.rq = qp.rq[1:]
			qp.rcvMsgOff = 0
			if qp.OnRecv != nil {
				comp := RecvCompletion{WQEID: wqe.ID, Len: pkt.MsgLen, Payload: pkt.Payload}
				qp.hca.Eng.After(cfg.IntLatency, func() { qp.OnRecv(comp) })
			}
		}
	} else if qp.OnRemoteWrite != nil {
		raddr, n, payload, last := pkt.Raddr, pkt.ChunkLen, pkt.Payload, pkt.Last
		qp.hca.Eng.After(cfg.IntLatency, func() { qp.OnRemoteWrite(raddr, n, payload, last) })
	}
	if qp.unacked >= cfg.AckEvery || pkt.Last {
		qp.sendAck()
	}
}

func (qp *QP) sendAck() {
	qp.unacked = 0
	qp.hca.send(fabricNode(qp.peerNode), &packet{
		Kind: pktAck, SrcQPN: qp.QPN, DstQPN: qp.peerQPN, AckPSN: qp.expPSN,
	}, 0)
}

func (qp *QP) sendRNRNack() {
	qp.hca.RNRNacks.Inc()
	qp.hca.cRNR.Inc()
	qp.unacked = 0
	qp.hca.send(fabricNode(qp.peerNode), &packet{
		Kind: pktRNRNack, SrcQPN: qp.QPN, DstQPN: qp.peerQPN, AckPSN: qp.expPSN,
	}, 0)
}

// ---------------------------------------------------------------------------
// RDMA read.

func (qp *QP) handleReadReq(pkt *packet) {
	// A rewind re-request replaces any previous stream for this ReqID; a
	// superseded stream may still emit up to its remaining credits (the
	// initiator drops the stale offsets), then starves - bounded waste,
	// exactly like the hardware it models.
	st := &respStream{
		reqID:   pkt.ReqID,
		dstQPN:  pkt.SrcQPN,
		dstNode: qp.peerNode,
		src:     pkt.Raddr,
		length:  pkt.MsgLen,
		off:     pkt.ReadOff,
		credits: qp.hca.Cfg.ReadWindow,
	}
	qp.respStreams[pkt.ReqID] = st
	qp.pumpReadResp(st)
}

// handleReadCredit replenishes a response stream's window.
func (qp *QP) handleReadCredit(pkt *packet) {
	st, ok := qp.respStreams[pkt.ReqID]
	if !ok {
		return
	}
	st.credits += pkt.ChunkLen // credit count rides in ChunkLen
	qp.pumpReadResp(st)
}

// handleReadRNR implements the §4 future-work extension on the responder:
// the initiator faulted placing response data; suspend the stream until it
// resumes us — no chunks are wasted on a dead receiver.
func (qp *QP) handleReadRNR(pkt *packet) {
	if st, ok := qp.respStreams[pkt.ReqID]; ok {
		st.paused = true
		if qp.hca.Tracer.Enabled() && st.pauseSpan == 0 {
			st.pauseSpan = qp.hca.Tracer.Begin(0, "rc", "read-rnr-pause")
			qp.hca.Tracer.ArgInt(st.pauseSpan, "req", pkt.ReqID)
		}
	}
}

// handleReadResume rewinds a suspended stream to the initiator's placement
// point and restarts it with a fresh window.
func (qp *QP) handleReadResume(pkt *packet) {
	st, ok := qp.respStreams[pkt.ReqID]
	if !ok {
		return
	}
	st.off = pkt.ReadOff
	st.paused = false
	st.credits = qp.hca.Cfg.ReadWindow
	qp.hca.Tracer.End(st.pauseSpan)
	st.pauseSpan = 0
	qp.pumpReadResp(st)
}

// pumpReadResp streams response chunks at line rate (one emission event
// per chunk, so suspension takes effect mid-stream); a local fault
// suspends the stream.
func (qp *QP) pumpReadResp(st *respStream) {
	if st.pumping {
		return
	}
	cfg := qp.hca.Cfg
	if st.paused || st.off >= st.length || st.credits <= 0 {
		// The stream stays allocated even when fully sent: the initiator
		// may still fault on the tail and ask us to rewind (resume) — it
		// frees us with pktReadDone once everything is placed.
		return
	}
	chunk := st.length - st.off
	if chunk > cfg.MTU {
		chunk = cfg.MTU
	}
	addr := st.src + mem.VAddr(st.off)
	_, missing := qp.Domain.Translate(addr, chunk)
	if len(missing) > 0 {
		st.paused = true
		qp.hca.raiseFault(QPFault{
			QP:      qp,
			Class:   FaultReadResponder,
			Missing: qp.faultPagesRange(missing, addr, st.length-st.off, false),
			Resolved: func() {
				qp.hca.Eng.After(cfg.FirmwareResume, func() {
					st.paused = false
					qp.pumpReadResp(st)
				})
			},
		})
		return
	}
	qp.dmaTouch(addr, chunk, false)
	last := st.off+chunk >= st.length
	qp.hca.send(fabricNode(st.dstNode), &packet{
		Kind: pktReadResp, SrcQPN: qp.QPN, DstQPN: st.dstQPN,
		ReqID: st.reqID, ReadOff: st.off, ChunkLen: chunk, Last: last,
	}, chunk)
	st.off += chunk
	st.credits--
	if st.off < st.length {
		st.pumping = true
		wire := sim.Time(int64(chunk+cfg.HeaderBytes) * 8 * int64(sim.Second) / cfg.LineRateBps)
		qp.hca.Eng.After(wire, func() {
			st.pumping = false
			qp.pumpReadResp(st)
		})
	}
}

func (qp *QP) handleReadResp(pkt *packet) {
	st, ok := qp.reads[pkt.ReqID]
	if !ok {
		return
	}
	if st.faulted || pkt.ReadOff != st.placedOff {
		// §4: no RNR NACK exists for reads — drop everything until the
		// fault is resolved, then rewind.
		qp.hca.DroppedRNPF.Inc()
		return
	}
	dst := st.wqe.Laddr + mem.VAddr(st.placedOff)
	_, missing := qp.Domain.TranslateAccess(dst, pkt.ChunkLen, true)
	if len(missing) > 0 {
		st.faulted = true
		qp.hca.DroppedRNPF.Inc()
		if qp.hca.Tracer.Enabled() {
			st.dropSpan = qp.hca.Tracer.Begin(0, "rc", "read-drop-window")
			qp.hca.Tracer.ArgInt(st.dropSpan, "req", pkt.ReqID)
			qp.hca.Tracer.ArgInt(st.dropSpan, "off", int64(st.placedOff))
		}
		resumeOff := st.placedOff
		ext := qp.hca.Cfg.ReadRNRExtension
		if ext {
			// §4 future-work extension: suspend the responder immediately,
			// exactly like an RNR NACK on the send/receive path.
			qp.hca.RNRNacks.Inc()
			qp.hca.send(fabricNode(qp.peerNode), &packet{
				Kind: pktReadRNR, SrcQPN: qp.QPN, DstQPN: qp.peerQPN,
				ReqID: pkt.ReqID,
			}, 0)
		}
		qp.hca.raiseFault(QPFault{
			QP:      qp,
			Class:   FaultReadInitiator,
			Missing: qp.faultPagesRange(missing, dst, st.wqe.Len-st.placedOff, true),
			Resolved: func() {
				qp.hca.Eng.After(qp.hca.Cfg.FirmwareResume, func() {
					st.faulted = false
					qp.hca.Tracer.End(st.dropSpan)
					st.dropSpan = 0
					if ext {
						// Resume the suspended stream where we left off.
						qp.hca.send(fabricNode(qp.peerNode), &packet{
							Kind: pktReadResume, SrcQPN: qp.QPN, DstQPN: qp.peerQPN,
							ReqID: pkt.ReqID, ReadOff: resumeOff,
						}, 0)
						return
					}
					qp.hca.ReadRewinds.Inc()
					qp.hca.cRwnd.Inc()
					// Baseline RC: no way to stop the responder; rewind by
					// re-requesting the remainder.
					qp.hca.send(fabricNode(qp.peerNode), &packet{
						Kind: pktReadReq, SrcQPN: qp.QPN, DstQPN: qp.peerQPN,
						ReqID: pkt.ReqID, Raddr: st.wqe.Raddr, MsgLen: st.wqe.Len,
						ReadOff: resumeOff,
					}, 0)
				})
			},
		})
		return
	}
	qp.dmaTouch(dst, pkt.ChunkLen, true)
	st.placedOff += pkt.ChunkLen
	st.uncredited++
	if st.placedOff >= st.wqe.Len {
		delete(qp.reads, pkt.ReqID)
		qp.hca.send(fabricNode(qp.peerNode), &packet{
			Kind: pktReadDone, SrcQPN: qp.QPN, DstQPN: qp.peerQPN, ReqID: pkt.ReqID,
		}, 0)
		qp.completeRead(st.wqe.ID, qp.OnReadComplete)
		return
	}
	// Grant credits in half-window batches.
	if st.uncredited >= qp.hca.Cfg.ReadWindow/2 {
		qp.hca.send(fabricNode(qp.peerNode), &packet{
			Kind: pktReadCredit, SrcQPN: qp.QPN, DstQPN: qp.peerQPN,
			ReqID: pkt.ReqID, ChunkLen: st.uncredited,
		}, 0)
		st.uncredited = 0
	}
}

// ---------------------------------------------------------------------------
// UD: single-packet unreliable datagrams. A receive fault drops the
// datagram and demand-pages the buffer, like the Ethernet drop policy (§4
// "the NPF solution described next applies also to UD").

// UDRemote is a UD address handle: the fabric attachment of an HCA and a
// QP number on it. Real verbs UD carries an address handle per send WQE —
// one QP reaches any peer — which is exactly what lets a client swarm
// address thousands of servers without per-pair connection state.
type UDRemote struct {
	Node fabric.NodeID
	QPN  QPN
}

// Remote returns this QP's own UD address, for peers to reply to.
func (qp *QP) Remote() UDRemote { return UDRemote{Node: qp.hca.Node, QPN: qp.QPN} }

// PostSendUD sends one unreliable datagram (length <= MTU) to the
// Connect-ed peer.
func (qp *QP) PostSendUD(wqe SendWQE) {
	qp.PostSendUDTo(UDRemote{Node: fabricNode(qp.peerNode), QPN: qp.peerQPN}, wqe)
}

// PostSendUDTo sends one unreliable datagram (length <= MTU) to an explicit
// address handle; the QP needs no connection to the destination.
func (qp *QP) PostSendUDTo(dst UDRemote, wqe SendWQE) {
	if wqe.Len > qp.hca.Cfg.MTU {
		panic("rc: UD message larger than MTU")
	}
	_, missing := qp.Domain.Translate(wqe.Laddr, wqe.Len)
	if len(missing) > 0 {
		qp.sendPaused = true
		qp.hca.raiseFault(QPFault{
			QP: qp, Class: FaultSendLocal,
			Missing: qp.faultPages(missing, wqe.Laddr, wqe.Len, false),
			Resolved: func() {
				qp.hca.Eng.After(qp.hca.Cfg.FirmwareResume, func() {
					qp.sendPaused = false
					qp.PostSendUDTo(dst, wqe)
				})
			},
		})
		return
	}
	qp.dmaTouch(wqe.Laddr, wqe.Len, false)
	qp.hca.send(dst.Node, &packet{
		Kind: pktUD, SrcQPN: qp.QPN, SrcNode: int(qp.hca.Node), DstQPN: dst.QPN,
		ChunkLen: wqe.Len, MsgLen: wqe.Len, Last: true, Payload: wqe.Payload,
	}, wqe.Len)
}

func (qp *QP) handleUD(pkt *packet) {
	if len(qp.rq) == 0 {
		qp.hca.UDDropsFault.Inc()
		return
	}
	wqe := qp.rq[0]
	_, missing := qp.Domain.TranslateAccess(wqe.Addr, pkt.ChunkLen, true)
	if len(missing) > 0 {
		qp.hca.UDDropsFault.Inc()
		if !qp.recvFaultOpen {
			qp.recvFaultOpen = true
			qp.hca.raiseFault(QPFault{
				QP: qp, Class: FaultRecvRNPF,
				Missing: qp.faultPages(missing, wqe.Addr, wqe.Len, true),
				Resolved: func() {
					qp.hca.Eng.After(qp.hca.Cfg.FirmwareResume, func() {
						qp.recvFaultOpen = false
					})
				},
			})
		}
		return
	}
	qp.dmaTouch(wqe.Addr, pkt.ChunkLen, true)
	qp.rq = qp.rq[1:]
	if qp.OnRecv != nil {
		comp := RecvCompletion{
			WQEID: wqe.ID, Len: pkt.MsgLen, Payload: pkt.Payload,
			From: UDRemote{Node: fabricNode(pkt.SrcNode), QPN: pkt.SrcQPN},
		}
		qp.hca.Eng.After(qp.hca.Cfg.IntLatency, func() { qp.OnRecv(comp) })
	}
}

// ---------------------------------------------------------------------------
// Shared helpers.

// faultPages reports which pages to request from the driver: with
// PrefetchWQE (the paper's batching optimization) every missing page of the
// whole buffer, else only the pages that actually faulted.
func (qp *QP) faultPages(chunkMissing []mem.PageNum, bufAddr mem.VAddr, bufLen int, write bool) []mem.PageNum {
	if !qp.hca.Cfg.PrefetchWQE {
		return chunkMissing
	}
	_, all := qp.Domain.TranslateAccess(bufAddr, bufLen, write)
	return all
}

func (qp *QP) faultPagesRange(chunkMissing []mem.PageNum, addr mem.VAddr, remaining int, write bool) []mem.PageNum {
	if !qp.hca.Cfg.PrefetchWQE {
		return chunkMissing
	}
	_, all := qp.Domain.TranslateAccess(addr, remaining, write)
	return all
}

func (qp *QP) dmaTouch(addr mem.VAddr, length int, write bool) {
	res, err := qp.AS.Touch(addr, length, write)
	if err != nil || res.Kind() != mem.NoFault {
		panic(fmt.Sprintf("rc: DMA to non-resident memory on QP %d (res=%+v err=%v)", qp.QPN, res, err))
	}
}
