package rc

import (
	"testing"
	"testing/quick"

	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/sim"
)

// testSink resolves faults inline: fault pages into memory, map them in the
// QP's IOMMU domain, and signal the firmware.
type testSink struct {
	events []QPFault
	manual bool
}

func (s *testSink) HandleQPFault(ev QPFault) {
	s.events = append(s.events, ev)
	if s.manual {
		return
	}
	s.resolve(ev)
}

func (s *testSink) resolve(ev QPFault) {
	for _, pn := range ev.Missing {
		if _, err := ev.QP.AS.TouchPages(pn, 1, true); err != nil {
			panic(err)
		}
		ev.QP.Domain.Map(pn, 1)
	}
	ev.Resolved()
}

type rcEnv struct {
	eng      *sim.Engine
	m        *mem.Machine
	a, b     *QP
	asA, asB *mem.AddressSpace
	sinkA    *testSink
	sinkB    *testSink
}

func newRCEnv(t *testing.T, tweak func(*Config)) *rcEnv {
	t.Helper()
	eng := sim.NewEngine(1)
	net := fabric.New(eng, fabric.DefaultInfiniBand())
	cfg := DefaultConfig()
	cfg.FirmwareJitterSigma = 0
	if tweak != nil {
		tweak(&cfg)
	}
	m := mem.NewMachine(eng, 8<<30)
	hcaA := NewHCA(eng, net, cfg)
	hcaB := NewHCA(eng, net, cfg)
	e := &rcEnv{eng: eng, m: m, sinkA: &testSink{}, sinkB: &testSink{}}
	hcaA.SetFaultSink(e.sinkA)
	hcaB.SetFaultSink(e.sinkB)
	e.asA = m.NewAddressSpace("a", nil)
	e.asA.MapBytes(256 << 20)
	e.asB = m.NewAddressSpace("b", nil)
	e.asB.MapBytes(256 << 20)
	e.a = hcaA.NewQP(e.asA)
	e.b = hcaB.NewQP(e.asB)
	Connect(e.a, e.b)
	return e
}

// warm makes pages resident and mapped for a QP.
func warm(qp *QP, first mem.PageNum, count int) {
	if _, err := qp.AS.TouchPages(first, count, true); err != nil {
		panic(err)
	}
	qp.Domain.Map(first, count)
}

func TestSendRecvWarm(t *testing.T) {
	e := newRCEnv(t, nil)
	warm(e.a, 0, 1)
	warm(e.b, 0, 1)
	var got []RecvCompletion
	e.b.OnRecv = func(c RecvCompletion) { got = append(got, c) }
	var sendDone []int64
	e.a.OnSendComplete = func(id int64) { sendDone = append(sendDone, id) }

	e.b.PostRecv(RecvWQE{ID: 1, Addr: 0, Len: mem.PageSize})
	e.a.PostSend(SendWQE{ID: 10, Laddr: 0, Len: 2000, Payload: "hello"})
	e.eng.Run()

	if len(got) != 1 || got[0].Payload != "hello" || got[0].Len != 2000 || got[0].WQEID != 1 {
		t.Fatalf("recv = %+v", got)
	}
	if len(sendDone) != 1 || sendDone[0] != 10 {
		t.Fatalf("send completions = %v", sendDone)
	}
	if e.a.hca.Faults.N+e.b.hca.Faults.N != 0 {
		t.Fatal("warm path faulted")
	}
}

func TestMultiPacketMessage(t *testing.T) {
	e := newRCEnv(t, nil)
	const msg = 64 << 10 // 16 MTU packets
	warm(e.a, 0, 16)
	warm(e.b, 0, 16)
	var got []RecvCompletion
	e.b.OnRecv = func(c RecvCompletion) { got = append(got, c) }
	e.b.PostRecv(RecvWQE{ID: 1, Addr: 0, Len: msg})
	e.a.PostSend(SendWQE{ID: 1, Laddr: 0, Len: msg, Payload: "big"})
	e.eng.Run()
	if len(got) != 1 || got[0].Len != msg {
		t.Fatalf("recv = %+v", got)
	}
	if e.a.hca.PacketsSent.N < 16 {
		t.Fatalf("sent %d packets, want >=16", e.a.hca.PacketsSent.N)
	}
}

func TestSendLocalFault(t *testing.T) {
	e := newRCEnv(t, nil)
	warm(e.b, 0, 1) // receiver warm, sender cold
	var got []RecvCompletion
	e.b.OnRecv = func(c RecvCompletion) { got = append(got, c) }
	e.b.PostRecv(RecvWQE{ID: 1, Addr: 0, Len: mem.PageSize})
	e.a.PostSend(SendWQE{ID: 1, Laddr: 0, Len: 1000, Payload: "x"})
	e.eng.Run()
	if len(got) != 1 {
		t.Fatalf("recv = %+v", got)
	}
	if len(e.sinkA.events) != 1 || e.sinkA.events[0].Class != FaultSendLocal {
		t.Fatalf("sender faults = %+v", e.sinkA.events)
	}
}

func TestRecvRNPFViaRNRNack(t *testing.T) {
	e := newRCEnv(t, nil)
	warm(e.a, 0, 1) // sender warm, receiver cold
	var got []RecvCompletion
	e.b.OnRecv = func(c RecvCompletion) { got = append(got, c) }
	e.b.PostRecv(RecvWQE{ID: 1, Addr: 0, Len: mem.PageSize})
	e.a.PostSend(SendWQE{ID: 1, Laddr: 0, Len: 1000, Payload: "y"})
	e.eng.Run()
	if len(got) != 1 || got[0].Payload != "y" {
		t.Fatalf("recv = %+v (RNR retransmission must recover the data)", got)
	}
	if e.b.hca.RNRNacks.N == 0 {
		t.Fatal("no RNR NACK sent")
	}
	if e.a.hca.Retransmits.N == 0 {
		t.Fatal("sender never retransmitted")
	}
	if len(e.sinkB.events) != 1 || e.sinkB.events[0].Class != FaultRecvRNPF {
		t.Fatalf("receiver faults = %+v", e.sinkB.events)
	}
}

func TestRecvFaultMidMessage(t *testing.T) {
	// 4-page message; receiver has only pages 0-1 warm. The fault fires on
	// the third packet: earlier chunks placed, RNR rewinds, full message
	// eventually delivered exactly once.
	e := newRCEnv(t, nil)
	const msg = 16 << 10
	warm(e.a, 0, 4)
	warm(e.b, 0, 2)
	var got []RecvCompletion
	e.b.OnRecv = func(c RecvCompletion) { got = append(got, c) }
	e.b.PostRecv(RecvWQE{ID: 1, Addr: 0, Len: msg})
	e.a.PostSend(SendWQE{ID: 1, Laddr: 0, Len: msg, Payload: "mid"})
	e.eng.Run()
	if len(got) != 1 || got[0].Len != msg {
		t.Fatalf("recv = %+v", got)
	}
}

func TestRNRWhenNoRecvPosted(t *testing.T) {
	e := newRCEnv(t, nil)
	warm(e.a, 0, 1)
	warm(e.b, 0, 1)
	var got []RecvCompletion
	e.b.OnRecv = func(c RecvCompletion) { got = append(got, c) }
	e.a.PostSend(SendWQE{ID: 1, Laddr: 0, Len: 500, Payload: "wait"})
	// Post the receive 1 ms later; the sender keeps retrying on RNR.
	e.eng.At(sim.Millisecond, func() {
		e.b.PostRecv(RecvWQE{ID: 9, Addr: 0, Len: mem.PageSize})
	})
	e.eng.Run()
	if len(got) != 1 || got[0].WQEID != 9 {
		t.Fatalf("recv = %+v", got)
	}
	if e.b.hca.RNRNacks.N == 0 {
		t.Fatal("expected literal receiver-not-ready NACKs")
	}
}

func TestRDMAWriteWarm(t *testing.T) {
	e := newRCEnv(t, nil)
	warm(e.a, 0, 2)
	warm(e.b, 4, 2)
	var writes int
	var lastAddr mem.VAddr
	e.b.OnRemoteWrite = func(raddr mem.VAddr, n int, payload any, last bool) {
		writes++
		if last {
			lastAddr = raddr
		}
	}
	done := false
	e.a.OnSendComplete = func(id int64) { done = true }
	e.a.PostSend(SendWQE{ID: 1, Laddr: 0, Len: 8 << 10, Write: true,
		Raddr: mem.PageNum(4).Base(), Payload: "w"})
	e.eng.Run()
	if writes != 2 {
		t.Fatalf("write chunks = %d, want 2", writes)
	}
	if !done {
		t.Fatal("no initiator completion")
	}
	if lastAddr != mem.PageNum(4).Base()+mem.VAddr(4096) {
		t.Fatalf("last chunk addr = %v", lastAddr)
	}
	if !e.asB.Resident(4) || !e.asB.Resident(5) {
		t.Fatal("write target not resident")
	}
}

func TestRDMAWriteColdTarget(t *testing.T) {
	e := newRCEnv(t, nil)
	warm(e.a, 0, 1)
	done := false
	e.a.OnSendComplete = func(id int64) { done = true }
	e.a.PostSend(SendWQE{ID: 1, Laddr: 0, Len: 1000, Write: true,
		Raddr: mem.PageNum(8).Base(), Payload: "w"})
	e.eng.Run()
	if !done {
		t.Fatal("cold-target RDMA write never completed")
	}
	if len(e.sinkB.events) == 0 || e.sinkB.events[0].Class != FaultRecvRNPF {
		t.Fatalf("responder faults = %+v", e.sinkB.events)
	}
}

func TestRDMAReadWarm(t *testing.T) {
	e := newRCEnv(t, nil)
	const n = 32 << 10
	warm(e.a, 0, 8) // local destination
	warm(e.b, 8, 8) // remote source
	done := false
	e.a.OnReadComplete = func(id int64) { done = true }
	e.a.PostRead(ReadWQE{ID: 1, Laddr: 0, Raddr: mem.PageNum(8).Base(), Len: n})
	e.eng.Run()
	if !done {
		t.Fatal("read did not complete")
	}
	if e.a.hca.Faults.N+e.b.hca.Faults.N != 0 {
		t.Fatal("warm read faulted")
	}
}

func TestRDMAReadInitiatorFaultRewinds(t *testing.T) {
	// Local destination pages 2.. are cold: the initiator faults placing
	// the third chunk, drops the rest, and rewinds after resolution.
	e := newRCEnv(t, nil)
	const n = 32 << 10 // 8 chunks
	warm(e.a, 0, 2)
	warm(e.b, 8, 8)
	done := false
	e.a.OnReadComplete = func(id int64) { done = true }
	e.a.PostRead(ReadWQE{ID: 1, Laddr: 0, Raddr: mem.PageNum(8).Base(), Len: n})
	e.eng.Run()
	if !done {
		t.Fatal("read did not complete after rewind")
	}
	if e.a.hca.ReadRewinds.N == 0 {
		t.Fatal("no rewind recorded")
	}
	if e.a.hca.DroppedRNPF.N == 0 {
		t.Fatal("initiator should have dropped in-flight response packets")
	}
	var classes []FaultClass
	for _, ev := range e.sinkA.events {
		classes = append(classes, ev.Class)
	}
	if len(classes) == 0 || classes[0] != FaultReadInitiator {
		t.Fatalf("initiator fault classes = %v", classes)
	}
}

func TestRDMAReadResponderFaultSuspends(t *testing.T) {
	e := newRCEnv(t, nil)
	const n = 16 << 10
	warm(e.a, 0, 4) // destination warm; source cold
	done := false
	e.a.OnReadComplete = func(id int64) { done = true }
	e.a.PostRead(ReadWQE{ID: 1, Laddr: 0, Raddr: mem.PageNum(8).Base(), Len: n})
	e.eng.Run()
	if !done {
		t.Fatal("read did not complete")
	}
	if len(e.sinkB.events) != 1 || e.sinkB.events[0].Class != FaultReadResponder {
		t.Fatalf("responder faults = %+v", e.sinkB.events)
	}
	if e.a.hca.ReadRewinds.N != 0 {
		t.Fatal("responder-side fault must not rewind")
	}
}

func TestPrefetchWQEBatchesFaultPages(t *testing.T) {
	e := newRCEnv(t, nil) // PrefetchWQE on by default
	warm(e.a, 0, 4)
	var got []RecvCompletion
	e.b.OnRecv = func(c RecvCompletion) { got = append(got, c) }
	e.b.PostRecv(RecvWQE{ID: 1, Addr: 0, Len: 16 << 10})
	e.a.PostSend(SendWQE{ID: 1, Laddr: 0, Len: 16 << 10, Payload: "p"})
	e.eng.Run()
	if len(e.sinkB.events) != 1 {
		t.Fatalf("fault events = %d, want 1 (batched)", len(e.sinkB.events))
	}
	if len(e.sinkB.events[0].Missing) != 4 {
		t.Fatalf("batched missing = %d pages, want all 4", len(e.sinkB.events[0].Missing))
	}
}

func TestNoPrefetchFaultsPagewise(t *testing.T) {
	e := newRCEnv(t, func(c *Config) { c.PrefetchWQE = false })
	warm(e.a, 0, 4)
	var got []RecvCompletion
	e.b.OnRecv = func(c RecvCompletion) { got = append(got, c) }
	e.b.PostRecv(RecvWQE{ID: 1, Addr: 0, Len: 16 << 10})
	e.a.PostSend(SendWQE{ID: 1, Laddr: 0, Len: 16 << 10, Payload: "p"})
	e.eng.Run()
	if len(got) != 1 {
		t.Fatalf("recv = %+v", got)
	}
	if len(e.sinkB.events) < 4 {
		t.Fatalf("fault events = %d, want one per page without prefetch", len(e.sinkB.events))
	}
}

func TestUDDropAndDemandPage(t *testing.T) {
	e := newRCEnv(t, nil)
	warm(e.a, 0, 1)
	var got []RecvCompletion
	e.b.OnRecv = func(c RecvCompletion) { got = append(got, c) }
	e.b.PostRecv(RecvWQE{ID: 1, Addr: 0, Len: mem.PageSize})
	e.b.PostRecv(RecvWQE{ID: 2, Addr: 0, Len: mem.PageSize})
	e.a.PostSendUD(SendWQE{ID: 1, Laddr: 0, Len: 1000, Payload: "lost"})
	e.eng.Run()
	if len(got) != 0 {
		t.Fatal("UD datagram survived a cold buffer")
	}
	if e.b.hca.UDDropsFault.N != 1 {
		t.Fatalf("UD drops = %d", e.b.hca.UDDropsFault.N)
	}
	// Buffer is now demand-paged: the next datagram lands.
	e.a.PostSendUD(SendWQE{ID: 2, Laddr: 0, Len: 1000, Payload: "ok"})
	e.eng.Run()
	if len(got) != 1 || got[0].Payload != "ok" {
		t.Fatalf("recv = %+v", got)
	}
}

func TestStreamThroughputNearLineRate(t *testing.T) {
	e := newRCEnv(t, nil)
	const msg = 64 << 10
	const count = 200
	warm(e.a, 0, 16)
	warm(e.b, 0, 16)
	received := 0
	var lastRecv sim.Time
	e.b.OnRecv = func(c RecvCompletion) { received++; lastRecv = e.eng.Now() }
	for i := 0; i < count; i++ {
		e.b.PostRecv(RecvWQE{ID: int64(i), Addr: 0, Len: msg})
		e.a.PostSend(SendWQE{ID: int64(i), Laddr: 0, Len: msg})
	}
	e.eng.Run()
	if received != count {
		t.Fatalf("received %d/%d", received, count)
	}
	bits := float64(count*msg) * 8
	gbps := bits / lastRecv.Seconds() / 1e9
	if gbps < 40 || gbps > 56 {
		t.Fatalf("throughput = %.1f Gb/s, want near 56 Gb/s line rate", gbps)
	}
}

// Property: whatever subset of pages starts cold on either side, every
// message is delivered exactly once, in order, with its payload.
func TestRCDeliveryProperty(t *testing.T) {
	f := func(coldA, coldB uint16, nMsgs uint8) bool {
		count := int(nMsgs%8) + 1
		e := newRCEnv(t, nil)
		for i := 0; i < 16; i++ {
			if coldA&(1<<i) == 0 {
				warm(e.a, mem.PageNum(i), 1)
			}
			if coldB&(1<<i) == 0 {
				warm(e.b, mem.PageNum(i), 1)
			}
		}
		var got []RecvCompletion
		e.b.OnRecv = func(c RecvCompletion) { got = append(got, c) }
		for i := 0; i < count; i++ {
			e.b.PostRecv(RecvWQE{ID: int64(i), Addr: mem.VAddr(i%16) * mem.PageSize, Len: mem.PageSize})
			e.a.PostSend(SendWQE{ID: int64(i), Laddr: mem.VAddr(i%16) * mem.PageSize,
				Len: 4000, Payload: i})
		}
		e.eng.Run()
		if len(got) != count {
			return false
		}
		for i, c := range got {
			if c.Payload.(int) != i || c.WQEID != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
