package rc

import (
	"npf/internal/fabric"
	"npf/internal/mem"
)

// QPN is a queue-pair number, unique per HCA.
type QPN int32

type pktKind int

const (
	pktData       pktKind = iota // send/write payload chunk
	pktAck                       // cumulative acknowledgment
	pktRNRNack                   // receiver not ready: rewind to AckPSN, pause
	pktReadReq                   // RDMA read request
	pktReadResp                  // RDMA read response chunk
	pktSeqNack                   // out-of-sequence NAK: rewind to AckPSN now
	pktReadCredit                // initiator grants more read-response credits
	pktReadRNR                   // initiator read-RNR (§4 future-work extension)
	pktReadResume                // initiator resumes a read-RNR'd stream at ReadOff
	pktReadDone                  // initiator confirms full placement; stream freed
	pktUD                        // unreliable datagram
)

type opKind int

const (
	opSend opKind = iota
	opWrite
)

// packet is the wire format shared by all RC/UD traffic. One struct with a
// Kind discriminator keeps the hot demux path monomorphic.
type packet struct {
	Kind     pktKind
	SrcQPN   QPN
	SrcNode  int // sender's fabric node; set for UD (address-handle replies)
	DstQPN   QPN
	PSN      uint64
	Op       opKind
	ChunkLen int
	MsgLen   int
	MsgOff   int
	Raddr    mem.VAddr // write target / read source for this chunk
	Last     bool
	Payload  any // application payload, on the last chunk of a send

	AckPSN uint64 // pktAck, pktRNRNack

	ReqID   int64 // pktReadReq, pktReadResp
	ReadOff int   // resp: chunk offset; req: starting offset (rewind point)
}

// fabricNode converts the int-typed peer node field back to a fabric id.
func fabricNode(n int) fabric.NodeID { return fabric.NodeID(n) }
