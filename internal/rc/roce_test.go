package rc

import (
	"testing"

	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/sim"
)

// newRoCEEnv builds a QP pair over a lossy 40 Gb/s Ethernet fabric.
func newRoCEEnv(t *testing.T, lossProb float64) *rcEnv {
	t.Helper()
	eng := sim.NewEngine(1)
	net := fabric.New(eng, fabric.Config{
		RateBps:         40e9,
		Propagation:     2 * sim.Microsecond,
		LossProbability: lossProb,
	})
	cfg := DefaultRoCEConfig()
	cfg.FirmwareJitterSigma = 0
	m := mem.NewMachine(eng, 8<<30)
	hcaA := NewHCA(eng, net, cfg)
	hcaB := NewHCA(eng, net, cfg)
	e := &rcEnv{eng: eng, m: m, sinkA: &testSink{}, sinkB: &testSink{}}
	hcaA.SetFaultSink(e.sinkA)
	hcaB.SetFaultSink(e.sinkB)
	e.asA = m.NewAddressSpace("a", nil)
	e.asA.MapBytes(256 << 20)
	e.asB = m.NewAddressSpace("b", nil)
	e.asB.MapBytes(256 << 20)
	e.a = hcaA.NewQP(e.asA)
	e.b = hcaB.NewQP(e.asB)
	Connect(e.a, e.b)
	return e
}

func TestRoCELossRecovery(t *testing.T) {
	e := newRoCEEnv(t, 0.02)
	warm(e.a, 0, 32)
	warm(e.b, 0, 32)
	var got []RecvCompletion
	var lastAt sim.Time
	e.b.OnRecv = func(c RecvCompletion) { got = append(got, c); lastAt = e.eng.Now() }
	const n = 100
	for i := 0; i < n; i++ {
		e.b.PostRecv(RecvWQE{ID: int64(i), Addr: 0, Len: 64 << 10})
		e.a.PostSend(SendWQE{ID: int64(i), Laddr: 0, Len: 64 << 10, Payload: i})
	}
	e.eng.Run()
	if len(got) != n {
		t.Fatalf("delivered %d/%d under 2%% loss", len(got), n)
	}
	for i, c := range got {
		if c.Payload.(int) != i {
			t.Fatalf("out of order at %d", i)
		}
	}
	if e.a.hca.Retransmits.N == 0 {
		t.Fatal("no retransmissions under loss")
	}
	// Sequence NAKs make recovery fast: far under a retransmission-timeout
	// regime (100 × 64 KB at 40 Gb/s ≈ 1.3 ms wire time; allow generous
	// slack for recovery rounds, still well below many 4 ms RTOs).
	if lastAt > 60*sim.Millisecond {
		t.Fatalf("recovery too slow: %v (timeout-driven instead of NAK-driven?)", lastAt)
	}
}

func TestRoCESeqNackFasterThanTimeoutOnly(t *testing.T) {
	run := func(cfgTweak func(*Config)) sim.Time {
		eng := sim.NewEngine(5)
		net := fabric.New(eng, fabric.Config{
			RateBps: 40e9, Propagation: 2 * sim.Microsecond, LossProbability: 0.03,
		})
		cfg := DefaultRoCEConfig()
		cfg.FirmwareJitterSigma = 0
		if cfgTweak != nil {
			cfgTweak(&cfg)
		}
		m := mem.NewMachine(eng, 8<<30)
		hcaA, hcaB := NewHCA(eng, net, cfg), NewHCA(eng, net, cfg)
		hcaA.SetFaultSink(&testSink{})
		hcaB.SetFaultSink(&testSink{})
		asA := m.NewAddressSpace("a", nil)
		asA.MapBytes(64 << 20)
		asB := m.NewAddressSpace("b", nil)
		asB.MapBytes(64 << 20)
		a, b := hcaA.NewQP(asA), hcaB.NewQP(asB)
		Connect(a, b)
		warm(a, 0, 32)
		warm(b, 0, 32)
		var lastAt sim.Time
		got := 0
		b.OnRecv = func(RecvCompletion) { got++; lastAt = eng.Now() }
		for i := 0; i < 60; i++ {
			b.PostRecv(RecvWQE{ID: int64(i), Addr: 0, Len: 64 << 10})
			a.PostSend(SendWQE{ID: int64(i), Laddr: 0, Len: 64 << 10})
		}
		eng.Run()
		if got != 60 {
			return -1
		}
		return lastAt
	}
	withNack := run(nil)
	if withNack < 0 {
		t.Fatal("NAK run did not complete")
	}
	// The NAK machinery is part of the receiver; emulate "timeout only" by
	// an enormous... there is no switch, so instead check the absolute
	// bound: with 3% loss ≈ 30 lost packets, timeout-only recovery would
	// cost ≥ 30 × 4 ms = 120 ms.
	if withNack > 40*sim.Millisecond {
		t.Fatalf("NAK recovery took %v", withNack)
	}
}

func TestRoCEColdReceiveWithLoss(t *testing.T) {
	// NPFs and genuine loss interleave: RNR NACKs handle the faults,
	// sequence NAKs the losses, and everything still arrives in order.
	e := newRoCEEnv(t, 0.01)
	warm(e.a, 0, 64)
	var got []RecvCompletion
	e.b.OnRecv = func(c RecvCompletion) { got = append(got, c) }
	const n = 40
	for i := 0; i < n; i++ {
		// Each message into a fresh cold 4-page buffer.
		e.b.PostRecv(RecvWQE{ID: int64(i), Addr: mem.VAddr(i*4) * mem.PageSize, Len: 16 << 10})
		e.a.PostSend(SendWQE{ID: int64(i), Laddr: 0, Len: 16 << 10, Payload: i})
	}
	e.eng.Run()
	if len(got) != n {
		t.Fatalf("delivered %d/%d", len(got), n)
	}
	for i, c := range got {
		if c.Payload.(int) != i {
			t.Fatalf("out of order at %d", i)
		}
	}
	if e.b.hca.RNRNacks.N == 0 {
		t.Fatal("expected RNR NACKs from cold buffers")
	}
}
