// Package rc models an InfiniBand host channel adapter (HCA) with reliable
// connection (RC) and unreliable datagram (UD) transports, and the paper's
// §4 network-page-fault support: the transport protocol and the NPF
// machinery live in the same hardware unit, so the firmware can react to a
// receive fault by immediately sending a receiver-not-ready (RNR) NACK that
// suspends the sender, while RC retransmission recovers the packets lost in
// the window before the NACK arrived.
//
// RDMA reads are the exception the paper calls out: RC gives an initiator
// that faults while placing read-response data no way to stop the
// responder, so the initiator drops the incoming stream and rewinds
// (re-issues the remainder of the read) once the fault is resolved.
package rc

import (
	"fmt"

	"npf/internal/fabric"
	"npf/internal/iommu"
	"npf/internal/mem"
	"npf/internal/sim"
	"npf/internal/trace"
)

// FaultClass says which of the four per-QP fault paths fired (§4 limits
// concurrent NPFs to one per class: read/write × initiator/responder).
type FaultClass int

const (
	// FaultSendLocal: the requester faulted reading a send/RDMA-write
	// source buffer. The QP's send engine is suspended until resolution.
	FaultSendLocal FaultClass = iota
	// FaultRecvRNPF: the responder faulted placing an incoming send/write.
	// The firmware already RNR-NACKed the sender; resolution lets the
	// retransmission land.
	FaultRecvRNPF
	// FaultReadResponder: the responder faulted reading the source of an
	// RDMA read response; the response stream is suspended.
	FaultReadResponder
	// FaultReadInitiator: the initiator faulted placing RDMA read response
	// data; incoming response packets are dropped until resolution, then
	// the initiator rewinds the read.
	FaultReadInitiator
)

func (c FaultClass) String() string {
	switch c {
	case FaultSendLocal:
		return "send-local"
	case FaultRecvRNPF:
		return "recv-rnpf"
	case FaultReadResponder:
		return "read-responder"
	case FaultReadInitiator:
		return "read-initiator"
	}
	return "invalid"
}

// QPFault is the NPF interrupt payload handed to the driver.
type QPFault struct {
	QP      *QP
	Class   FaultClass
	Missing []mem.PageNum
	Start   sim.Time // when the device hit the fault
	// Span is the NPF lifecycle span the adapter opened for this fault
	// (0 = tracing off) — the firmware's fault token, echoed by the driver.
	Span trace.SpanID
	// Fault is the causal FaultID minted at detection.
	Fault trace.FaultID
	// Resolved must be called by the driver once the pages are resident
	// and mapped in the QP's IOMMU domain; it triggers the firmware-resume
	// path.
	Resolved func()
}

// FaultSink is the driver-side NPF handler (implemented by internal/core).
type FaultSink interface {
	HandleQPFault(ev QPFault)
}

// Config holds HCA latency and protocol parameters.
type Config struct {
	// MTU is the packet payload size.
	MTU int
	// HeaderBytes is per-packet wire overhead.
	HeaderBytes int
	// Window bounds unacknowledged packets per QP.
	Window int
	// AckEvery coalesces acknowledgments: one ACK per this many packets
	// (an ACK is always sent on a message boundary).
	AckEvery int
	// RNRTimeout is the pause the RNR NACK asks of the sender.
	RNRTimeout sim.Time
	// RetxTimeout is the local-ACK timeout safety net.
	RetxTimeout sim.Time
	// IntLatency is interrupt/completion delivery latency.
	IntLatency sim.Time
	// FirmwareFault is the firmware cost of detecting an NPF and raising
	// the interrupt (Figure 3a, components i–ii; ~90% of NPF time).
	FirmwareFault sim.Time
	// FirmwareResume is the cost from page-table update to resumed
	// operation (component v).
	FirmwareResume sim.Time
	// FirmwareJitterSigma adds log-normal jitter to FirmwareFault
	// (Table 4's tail). Zero disables.
	FirmwareJitterSigma float64
	// PrefetchWQE enables the paper's batching optimization: a fault
	// reports every missing page of the whole work request, not just the
	// faulting packet's pages (§4, third optimization; ATS/PRI would force
	// one page per request).
	PrefetchWQE bool
	// ReadWindow bounds in-flight RDMA-read response chunks per request;
	// the initiator grants credits as it places data.
	ReadWindow int
	// LineRateBps paces read-response emission (the responder streams at
	// line rate rather than dumping its whole window instantaneously, so
	// suspension can take effect mid-stream).
	LineRateBps int64
	// ReadRNRExtension enables the paper's §4 recommendation: extend RC's
	// end-to-end flow control to remote reads, letting an initiator that
	// faults placing response data suspend the responder (like RNR NACK)
	// instead of dropping the stream and rewinding after resolution.
	ReadRNRExtension bool
	// IOTLBEntries sizes the device IOTLB.
	IOTLBEntries int
}

// DefaultConfig returns parameters calibrated to the Connect-IB testbed and
// Figure 3 / Table 4.
func DefaultConfig() Config {
	return Config{
		MTU:                 4096,
		HeaderBytes:         48,
		Window:              128,
		AckEvery:            4,
		RNRTimeout:          280 * sim.Microsecond,
		RetxTimeout:         10 * sim.Millisecond,
		IntLatency:          3 * sim.Microsecond,
		FirmwareFault:       130 * sim.Microsecond,
		FirmwareResume:      40 * sim.Microsecond,
		FirmwareJitterSigma: 0.12,
		PrefetchWQE:         true,
		ReadWindow:          64,
		LineRateBps:         56e9,
		IOTLBEntries:        1024,
	}
}

// DefaultRoCEConfig returns parameters for RDMA over Converged Ethernet on
// a 40 Gb/s ConnectX-3-class NIC (§4 "Applicability": the same RC protocol
// and NPF machinery run over lossy Ethernet). The tighter retransmission
// timeout plus out-of-sequence NAKs cover genuine packet loss.
func DefaultRoCEConfig() Config {
	cfg := DefaultConfig()
	cfg.RetxTimeout = 4 * sim.Millisecond
	return cfg
}

// HCA is one InfiniBand adapter. It implements fabric.Endpoint.
type HCA struct {
	Eng  *sim.Engine
	Net  *fabric.Network
	Node fabric.NodeID
	MMU  *iommu.Unit
	Cfg  Config

	rng       *sim.Rand
	qps       map[QPN]*QP
	nextQP    QPN
	sink      FaultSink
	faultHook func(sim.Time) sim.Time
	faultSeq  uint64 // per-adapter FaultID sequence (trace/fault.go)

	// Tracer records NPF/RNR lifecycle spans; nil disables tracing.
	Tracer *trace.Tracer
	cRNR   *trace.Counter
	cRetx  *trace.Counter
	cRwnd  *trace.Counter

	// Counters.
	PacketsSent  sim.Counter
	PacketsRecv  sim.Counter
	RNRNacks     sim.Counter
	Retransmits  sim.Counter
	Faults       sim.Counter
	ReadRewinds  sim.Counter
	DroppedRNPF  sim.Counter // packets discarded at the responder/initiator due to faults
	UDDropsFault sim.Counter
	// ProtectionDrops counts guest-table (2D IOMMU) violations (§2.4).
	ProtectionDrops sim.Counter
}

// NewHCA creates an adapter on eng attached to net.
func NewHCA(eng *sim.Engine, net *fabric.Network, cfg Config) *HCA {
	h := &HCA{
		Eng: eng,
		Net: net,
		MMU: iommu.New(cfg.IOTLBEntries),
		Cfg: cfg,
		rng: eng.Rand().Split(),
		qps: make(map[QPN]*QP),
	}
	h.Node = net.AttachOn(h, eng)
	return h
}

// SetFaultSink installs the driver's NPF handler.
func (h *HCA) SetFaultSink(s FaultSink) { h.sink = s }

// SetTracer wires telemetry into the adapter and its on-NIC IOMMU. Safe to
// call with nil.
func (h *HCA) SetTracer(tr *trace.Tracer) {
	h.Tracer = tr
	h.MMU.SetTracer(tr)
	h.cRNR = tr.Counter("rc.rnr_nacks")
	h.cRetx = tr.Counter("rc.retransmits")
	h.cRwnd = tr.Counter("rc.read_rewinds")
	tr.Probe("rc.rnr_suspended_qps", func() float64 {
		n := 0.0
		//npf:orderinvariant — counting suspended QPs is commutative
		for _, qp := range h.qps {
			if qp.rnrWait {
				n++
			}
		}
		return n
	})
}

// SetFaultDelayHook installs a transformation on the sampled firmware
// fault-path latency — the injection point fault injectors (internal/chaos)
// use to model firmware stalls. nil removes it.
func (h *HCA) SetFaultDelayHook(fn func(sim.Time) sim.Time) { h.faultHook = fn }

func (h *HCA) firmwareFaultLatency() sim.Time {
	lat := h.Cfg.FirmwareFault
	if h.Cfg.FirmwareJitterSigma > 0 {
		f := h.rng.LogNormal(0, h.Cfg.FirmwareJitterSigma)
		if h.rng.Bernoulli(0.003) {
			f *= 1.7 + 1.3*h.rng.Float64()
		}
		lat = sim.Time(float64(lat) * f)
	}
	if h.faultHook != nil {
		lat = h.faultHook(lat)
	}
	return lat
}

// raiseFault reports an NPF to the driver after the firmware fault path.
func (h *HCA) raiseFault(ev QPFault) {
	h.Faults.Inc()
	ev.Start = h.Eng.Now()
	if h.sink == nil {
		panic("rc: NPF with no fault sink attached (ODP used without a driver)")
	}
	h.faultSeq++
	ev.Fault = trace.MintFaultID(int64(h.Node), h.faultSeq)
	// The cross-host edge: every class but send-local was tripped by the
	// connected peer's op.
	origin := int64(-1)
	if ev.Class != FaultSendLocal {
		origin = int64(ev.QP.peerNode)
	}
	lat := h.firmwareFaultLatency() + h.Cfg.IntLatency
	h.Tracer.FaultMinted(ev.Fault, ev.Class.String(), ev.Start, origin, int64(ev.QP.QPN), len(ev.Missing))
	if h.Tracer.Enabled() {
		now := h.Eng.Now()
		ev.Span = h.Tracer.BeginAt(0, "npf", ev.Class.String(), now)
		h.Tracer.ArgInt(ev.Span, "qpn", int64(ev.QP.QPN))
		h.Tracer.ArgInt(ev.Span, "pages", int64(len(ev.Missing)))
		h.Tracer.Span(ev.Span, "npf.stage", "firmware", now, now+lat)
	}
	h.Eng.After(lat, func() {
		h.sink.HandleQPFault(ev)
	})
}

// Deliver implements fabric.Endpoint: demux to the destination QP.
func (h *HCA) Deliver(p *fabric.Packet) {
	pkt := p.Payload.(*packet)
	qp, ok := h.qps[pkt.DstQPN]
	if !ok {
		return // stale packet to a destroyed QP
	}
	h.PacketsRecv.Inc()
	qp.handlePacket(pkt)
}

// send puts one protocol packet on the wire.
func (h *HCA) send(dst fabric.NodeID, pkt *packet, payloadBytes int) {
	h.PacketsSent.Inc()
	h.Net.Send(&fabric.Packet{
		Src:     h.Node,
		Dst:     dst,
		Flow:    fabric.FlowID(pkt.DstQPN),
		Size:    payloadBytes + h.Cfg.HeaderBytes,
		Payload: pkt,
	})
}

func (h *HCA) String() string { return fmt.Sprintf("hca@node%d", h.Node) }
