package rc

import (
	"testing"

	"npf/internal/mem"
	"npf/internal/sim"
)

// §4 future-work extension: RC's end-to-end flow control extended to
// remote reads, so a faulting initiator suspends the responder instead of
// dropping the stream.

func TestReadRNRExtensionCompletes(t *testing.T) {
	e := newRCEnv(t, func(c *Config) { c.ReadRNRExtension = true })
	const n = 64 << 10
	warm(e.b, 8, 16) // remote source warm; local destination cold
	done := false
	e.a.OnReadComplete = func(int64) { done = true }
	e.a.PostRead(ReadWQE{ID: 1, Laddr: 0, Raddr: mem.PageNum(8).Base(), Len: n})
	e.eng.Run()
	if !done {
		t.Fatal("read did not complete with the extension")
	}
	if e.a.hca.ReadRewinds.N != 0 {
		t.Fatal("extension must not rewind (the responder was suspended)")
	}
	if e.a.hca.RNRNacks.N == 0 {
		t.Fatal("no read-RNR sent")
	}
}

func TestReadRNRExtensionWastesLess(t *testing.T) {
	// Repeated cold-destination reads: the extension suspends the
	// responder after at most a window of wasted chunks, while the
	// baseline lets the full remaining window pour in and drop.
	run := func(ext bool) (dropped uint64, elapsed sim.Time) {
		e := newRCEnv(t, func(c *Config) { c.ReadRNRExtension = ext })
		warm(e.b, 1024, 512)
		done := 0
		var doneAt sim.Time
		var next func()
		next = func() {
			if done >= 8 {
				doneAt = e.eng.Now()
				return
			}
			// Each read lands in a fresh, cold 128 KB destination.
			e.a.PostRead(ReadWQE{
				ID:    int64(done),
				Laddr: mem.VAddr(done) * (128 << 10),
				Raddr: mem.PageNum(1024).Base(),
				Len:   128 << 10,
			})
		}
		e.a.OnReadComplete = func(int64) { done++; next() }
		next()
		e.eng.Run()
		return e.a.hca.DroppedRNPF.N, doneAt
	}
	baseDropped, baseTime := run(false)
	extDropped, extTime := run(true)
	if extDropped >= baseDropped {
		t.Fatalf("extension dropped %d chunks, baseline %d — should waste less",
			extDropped, baseDropped)
	}
	if baseTime == 0 || extTime == 0 {
		t.Fatal("a run did not complete")
	}
	if extTime > baseTime {
		t.Fatalf("extension slower: %v vs %v", extTime, baseTime)
	}
}

func TestReadCreditsBoundInflight(t *testing.T) {
	// With a tiny window, a large read must still complete (credits keep
	// flowing as the initiator places data).
	e := newRCEnv(t, func(c *Config) { c.ReadWindow = 4 })
	const n = 256 << 10 // 64 chunks >> window 4
	warm(e.a, 0, n/mem.PageSize)
	warm(e.b, 256, n/mem.PageSize)
	done := false
	e.a.OnReadComplete = func(int64) { done = true }
	e.a.PostRead(ReadWQE{ID: 1, Laddr: 0, Raddr: mem.PageNum(256).Base(), Len: n})
	e.eng.Run()
	if !done {
		t.Fatal("windowed read did not complete")
	}
}
