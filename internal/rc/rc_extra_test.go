package rc

import (
	"testing"

	"npf/internal/mem"
	"npf/internal/sim"
)

func TestSharedDomainAcrossQPs(t *testing.T) {
	e := newRCEnv(t, nil)
	// A second QP pair between the same hosts sharing the first pair's
	// domains (one protection domain per process, the verbs model).
	a2 := e.a.hca.NewQPShared(e.asA, e.a.Domain)
	b2 := e.b.hca.NewQPShared(e.asB, e.b.Domain)
	Connect(a2, b2)
	if a2.Domain != e.a.Domain {
		t.Fatal("domain not shared")
	}
	warm(e.a, 0, 1) // warms the shared domain
	warm(e.b, 0, 1)
	var got []RecvCompletion
	b2.OnRecv = func(c RecvCompletion) { got = append(got, c) }
	b2.PostRecv(RecvWQE{ID: 1, Addr: 0, Len: mem.PageSize})
	a2.PostSend(SendWQE{ID: 1, Laddr: 0, Len: 1000, Payload: "shared"})
	e.eng.Run()
	if len(got) != 1 {
		t.Fatalf("recv = %+v", got)
	}
	if e.a.hca.Faults.N+e.b.hca.Faults.N != 0 {
		t.Fatal("shared-domain warm path faulted")
	}
}

func TestManyMessagesBothDirections(t *testing.T) {
	e := newRCEnv(t, nil)
	warm(e.a, 0, 32)
	warm(e.b, 0, 32)
	var aGot, bGot int
	e.a.OnRecv = func(RecvCompletion) { aGot++ }
	e.b.OnRecv = func(RecvCompletion) { bGot++ }
	for i := 0; i < 50; i++ {
		e.a.PostRecv(RecvWQE{ID: int64(i), Addr: 0, Len: mem.PageSize})
		e.b.PostRecv(RecvWQE{ID: int64(i), Addr: 0, Len: mem.PageSize})
		e.a.PostSend(SendWQE{ID: int64(i), Laddr: 0, Len: 2000})
		e.b.PostSend(SendWQE{ID: int64(i), Laddr: 0, Len: 2000})
	}
	e.eng.Run()
	if aGot != 50 || bGot != 50 {
		t.Fatalf("a=%d b=%d", aGot, bGot)
	}
}

func TestZeroLengthSend(t *testing.T) {
	e := newRCEnv(t, nil)
	warm(e.b, 0, 1)
	var got []RecvCompletion
	e.b.OnRecv = func(c RecvCompletion) { got = append(got, c) }
	e.b.PostRecv(RecvWQE{ID: 1, Addr: 0, Len: mem.PageSize})
	e.a.PostSend(SendWQE{ID: 1, Laddr: 0, Len: 0, Payload: "barrier"})
	e.eng.Run()
	if len(got) != 1 || got[0].Payload != "barrier" {
		t.Fatalf("recv = %+v", got)
	}
}

func TestInterleavedSendAndRead(t *testing.T) {
	// A send stream and an RDMA read in flight on the same QP pair.
	e := newRCEnv(t, nil)
	warm(e.a, 0, 32)
	warm(e.b, 0, 64)
	var recvs int
	readDone := false
	e.b.OnRecv = func(RecvCompletion) { recvs++ }
	e.a.OnReadComplete = func(int64) { readDone = true }
	for i := 0; i < 10; i++ {
		e.b.PostRecv(RecvWQE{ID: int64(i), Addr: 0, Len: 16 << 10})
		e.a.PostSend(SendWQE{ID: int64(i), Laddr: 0, Len: 16 << 10})
	}
	e.a.PostRead(ReadWQE{ID: 99, Laddr: 16 << 12, Raddr: mem.PageNum(32).Base(), Len: 64 << 10})
	e.eng.Run()
	if recvs != 10 || !readDone {
		t.Fatalf("recvs=%d readDone=%v", recvs, readDone)
	}
}

func TestRNRNackLatencyBound(t *testing.T) {
	// A cold single-page receive: the message must land within a few RNR
	// rounds (fault service ≈ 260 µs, RNR timeout 280 µs).
	e := newRCEnv(t, nil)
	warm(e.a, 0, 1)
	var at sim.Time
	e.b.OnRecv = func(RecvCompletion) { at = e.eng.Now() }
	e.b.PostRecv(RecvWQE{ID: 1, Addr: 0, Len: mem.PageSize})
	e.a.PostSend(SendWQE{ID: 1, Laddr: 0, Len: 4096})
	e.eng.Run()
	if at == 0 || at > 2*sim.Millisecond {
		t.Fatalf("cold recv took %v, want within ~2 RNR rounds", at)
	}
}

func TestReadUnknownReqIgnored(t *testing.T) {
	e := newRCEnv(t, nil)
	warm(e.b, 0, 1)
	// A stray read response must not crash or corrupt state.
	e.b.hca.send(fabricNode(int(e.a.hca.Node)), &packet{
		Kind: pktReadResp, SrcQPN: e.b.QPN, DstQPN: e.a.QPN,
		ReqID: 1234, ChunkLen: 100,
	}, 100)
	e.eng.Run()
}
