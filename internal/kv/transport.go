package kv

import (
	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/tcp"
)

// rpcHeader is the wire overhead of every KV protocol message, on top of
// the value payload it may carry.
const rpcHeader = 64

type rpcKind int

const (
	rpcGet rpcKind = iota
	rpcSet
	rpcReply
	rpcRepl
	rpcReplAck
	rpcHeartbeat
	rpcResyncReq
	rpcResyncData
)

// rpcMsg is the single wire message of the KV protocol. Fields are used
// per Kind; unused fields stay zero. Payload bytes are simulated by the
// transport's length argument, so the struct itself carries only metadata.
type rpcMsg struct {
	Kind  rpcKind
	From  int // sending host index
	Shard int
	Epoch uint64

	// Data path.
	Key    string
	Size   int
	ReqID  uint64 // client request id (echoed in the reply)
	Client int    // issuing client id (reply routing)
	Hit    bool   // reply: get hit
	OK     bool   // reply: set applied (false = shed)
	// Redirect marks a reply from a replica that is no longer (or not yet)
	// the shard's primary; the client re-reads placement and retries.
	Redirect bool

	// Replication.
	Seq uint64 // rpcRepl: op sequence; rpcReplAck: acked sequence
	// Resync: Full requests a snapshot; a data message carries a batch of
	// (key, size) entries starting at SeqStart, Reset clears the store
	// first, Last closes the resync.
	Full     bool
	Reset    bool
	Last     bool
	SeqStart uint64
	Keys     []string
	Sizes    []int

	// Heartbeat piggyback: the sender's primary shards and their applied
	// sequences, so a backup that lost replication traffic outright (empty
	// gap buffer, nothing left in flight) still detects it is stale.
	Shards []int
	Seqs   []uint64
}

// endpoint abstracts the per-host transport: send a message of wireBytes
// total to another host. Delivery calls Service.deliver on the receiver.
type endpoint interface {
	send(to int, wireBytes int, m *rpcMsg)
}

// mgmtPort is a host's management-network attachment: an unreliable
// fixed-function datagram port carrying only failure-detector heartbeats.
// Real deployments run their failure detectors over UDP or a management
// NIC precisely because a reliable transport's retransmission backoff
// turns a short partition into minutes of silence — exactly the pathology
// this avoids. Packets are lost while the link is down and flow again the
// instant it heals.
type mgmtPort struct {
	svc  *Service
	host *HostNode
}

func (p *mgmtPort) Deliver(pkt *fabric.Packet) {
	p.svc.deliver(p.host, pkt.Payload.(*rpcMsg))
}

// buildMesh wires every host pair. It must run after all hosts exist.
func (s *Service) buildMesh() {
	switch s.Cfg.Transport {
	case TransportRC:
		s.buildRCMesh()
	default:
		s.buildTCPMesh()
	}
}

// ---------------------------------------------------------------------------
// TCP transport: one tcp.Stack per host and a full mesh of ordered
// connections (host i sends to j exclusively over the conn i dialed), so
// no peer-identification handshake is needed.

type tcpEndpoint struct {
	svc   *Service
	host  *HostNode
	stack *tcp.Stack
	conns []*tcp.Conn // by destination host index; nil for self
}

func (s *Service) buildTCPMesh() {
	eps := make([]*tcpEndpoint, len(s.Hosts))
	for i, h := range s.Hosts {
		policy := nic.PolicyPinned
		if s.hostODP(h) {
			policy = nic.PolicyBackup
		}
		ch := h.Dev.NewChannel(h.Name, h.netAS, s.Cfg.RingSize, policy, s.Cfg.RingSize)
		if s.hostODP(h) {
			h.Drv.EnableODP(ch)
		}
		st := tcp.NewStack(ch, tcp.DefaultConfig())
		if !s.hostODP(h) {
			// Pinned endpoints are resident and mapped up front.
			if _, err := core.StaticPinAll(h.netAS, ch.Domain); err != nil {
				panic("kv: pinning transport buffers: " + err.Error())
			}
		}
		ep := &tcpEndpoint{svc: s, host: h, stack: st, conns: make([]*tcp.Conn, len(s.Hosts))}
		h.ep = ep
		eps[i] = ep
		h := h
		st.Listen(func(c *tcp.Conn) {
			c.OnMessage = func(payload any, n int) {
				s.deliver(h, payload.(*rpcMsg))
			}
		})
	}
	for i, ep := range eps {
		for j := range s.Hosts {
			if i != j {
				ep.dial(j)
			}
		}
	}
}

func (e *tcpEndpoint) dial(to int) {
	peerCh := e.svc.Hosts[to].ep.(*tcpEndpoint).stack.Channel()
	c := e.stack.Dial(peerCh.Dev.Node, peerCh.Flow)
	c.OnFail = func(err error) {
		e.host.connFails.Inc()
		// Re-dial so a long partition does not sever the pair forever;
		// queued messages on the failed conn are lost (clients retry).
		// OnFail fires on the dialing host's engine, so it reads its own
		// partition's stop flag.
		if !e.svc.sideStopped(e.host) {
			e.dial(to)
		}
	}
	e.conns[to] = c
}

func (e *tcpEndpoint) send(to int, wireBytes int, m *rpcMsg) {
	if c := e.conns[to]; c != nil {
		c.Send(wireBytes, m)
	}
}

// ---------------------------------------------------------------------------
// RC transport: a queue pair per (unordered) host pair with a posted
// receive ring per side; messages ride SendWQE payloads.

// rcSlotBytes bounds one RC message (resync batches are chunked to fit).
const rcSlotBytes = 64 << 10

// rcRingSlots is the posted-receive (and send-buffer) depth per peer.
const rcRingSlots = 32

type rcPeer struct {
	qp     *rc.QP
	rxBase mem.VAddr
	txBase mem.VAddr
	txNext int
}

type rcEndpoint struct {
	svc   *Service
	host  *HostNode
	peers []*rcPeer // by destination host index; nil for self
}

func (s *Service) buildRCMesh() {
	eps := make([]*rcEndpoint, len(s.Hosts))
	for i, h := range s.Hosts {
		eps[i] = &rcEndpoint{svc: s, host: h, peers: make([]*rcPeer, len(s.Hosts))}
		h.ep = eps[i]
	}
	for i := range s.Hosts {
		for j := i + 1; j < len(s.Hosts); j++ {
			a := eps[i].newPeer(j)
			b := eps[j].newPeer(i)
			rc.Connect(a.qp, b.qp)
		}
	}
}

// newPeer allocates buffer rings and a QP toward host `to`, applying the
// host's registration policy.
func (e *rcEndpoint) newPeer(to int) *rcPeer {
	s, h := e.svc, e.host
	p := &rcPeer{}
	p.rxBase = h.netAS.MapBytes(rcRingSlots * rcSlotBytes)
	p.txBase = h.netAS.MapBytes(rcRingSlots * rcSlotBytes)
	p.qp = h.HCA.NewQP(h.netAS)
	if s.hostODP(h) {
		h.Drv.EnableODPQP(p.qp)
	} else {
		// Pinned (or client) endpoints: resident and mapped up front.
		for _, r := range []mem.VAddr{p.rxBase, p.txBase} {
			pages := rcRingSlots * rcSlotBytes / mem.PageSize
			if _, err := h.netAS.Pin(r.Page(), pages); err != nil {
				panic("kv: pinning rc rings: " + err.Error())
			}
			p.qp.Domain.Map(r.Page(), pages)
		}
	}
	for slot := 0; slot < rcRingSlots; slot++ {
		p.qp.PostRecv(rc.RecvWQE{
			ID:   int64(slot),
			Addr: p.rxBase + mem.VAddr(slot)*rcSlotBytes,
			Len:  rcSlotBytes,
		})
	}
	p.qp.OnRecv = func(c rc.RecvCompletion) {
		// Recycle the consumed slot, then deliver.
		p.qp.PostRecv(rc.RecvWQE{
			ID:   c.WQEID,
			Addr: p.rxBase + mem.VAddr(c.WQEID)*rcSlotBytes,
			Len:  rcSlotBytes,
		})
		s.deliver(h, c.Payload.(*rpcMsg))
	}
	e.peers[to] = p
	return p
}

func (e *rcEndpoint) send(to int, wireBytes int, m *rpcMsg) {
	p := e.peers[to]
	if p == nil {
		return
	}
	if wireBytes > rcSlotBytes {
		wireBytes = rcSlotBytes
	}
	slot := p.txNext % rcRingSlots
	p.txNext++
	p.qp.PostSend(rc.SendWQE{
		ID:      int64(slot),
		Laddr:   p.txBase + mem.VAddr(slot)*rcSlotBytes,
		Len:     wireBytes,
		Payload: m,
	})
}

// send routes one protocol message from host h to host `to`.
func (s *Service) send(h *HostNode, to int, wireBytes int, m *rpcMsg) {
	m.From = h.Index
	h.ep.send(to, wireBytes, m)
}

// deliver dispatches a received message on host h.
func (s *Service) deliver(h *HostNode, m *rpcMsg) {
	switch m.Kind {
	case rpcHeartbeat:
		if h.Server && h.lastHB != nil && m.From < len(h.lastHB) {
			now := s.Eng.Now()
			if now-h.lastHB[m.From] > s.Cfg.FailoverAfter {
				// A peer we had written off is back: hold promotions until
				// the remaining connections have had time to recover too.
				h.quietUntil = now + s.Cfg.FailoverAfter
			}
			h.lastHB[m.From] = now
			h.lastAnyHB = now
			// Anti-entropy: a backup behind the advertised primary sequence
			// with no buffered tail lost replication traffic — catch up.
			for i, shard := range m.Shards {
				r, ok := h.replicaByShard[shard]
				if ok && !r.primary && !r.resyncing && len(r.buffer) == 0 && r.seq < m.Seqs[i] {
					r.requestResync(false)
				}
			}
		}
	case rpcReply:
		s.deliverReply(h, m)
	case rpcGet, rpcSet, rpcRepl, rpcReplAck, rpcResyncReq, rpcResyncData:
		if r, ok := h.replicaByShard[m.Shard]; ok {
			r.handle(m)
		}
	}
}

// maxResyncBatch bounds resync batch entries so one message fits an RC
// receive slot (and keeps TCP resync bursts from monopolizing a conn).
func (s *Service) maxResyncBatch() int {
	n := (rcSlotBytes - rpcHeader) / s.Cfg.ValueBytes
	if n < 1 {
		n = 1
	}
	return n
}
