package kv

import (
	"fmt"
	"sort"
)

// vnodesPerHost is the number of virtual points each host contributes to
// the consistent-hash ring. 64 keeps shard counts per host within a few
// percent of even for the deployment sizes this package simulates.
const vnodesPerHost = 64

// fnv64 is FNV-1a — a fixed, seed-free hash so placement is a pure
// function of the configuration (identical across runs and processes).
func fnv64(s string) uint64 {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

type ringPoint struct {
	hash  uint64
	host  int
	vnode int
}

// Placement is the control-plane table: a consistent-hash ring assigning
// each shard an ordered replica set, plus the current primary and a
// monotonically increasing epoch per shard. It stands in for a metadata
// service (etcd/PD); updates are modelled as propagating instantly, while
// *observations* of it are made by hosts and clients on their own
// schedules — so a deposed primary can serve stale reads until its next
// detector tick, exactly like an expired lease holder.
type Placement struct {
	shards   int
	replicas int
	table    [][]int  // shard -> replica hosts, placement order
	primary  []int    // shard -> current primary host
	epoch    []uint64 // shard -> failover epoch
}

// NewPlacement builds the ring over the given server host indices and
// assigns each shard its replica set: the first `replicas` distinct hosts
// encountered walking the ring clockwise from the shard's hash point.
func NewPlacement(shards, replicas int, hosts []int) *Placement {
	if replicas > len(hosts) {
		replicas = len(hosts)
	}
	var ring []ringPoint
	for _, h := range hosts {
		for v := 0; v < vnodesPerHost; v++ {
			ring = append(ring, ringPoint{
				hash:  fnv64(fmt.Sprintf("host-%d/vnode-%d", h, v)),
				host:  h,
				vnode: v,
			})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		if ring[i].host != ring[j].host {
			return ring[i].host < ring[j].host
		}
		return ring[i].vnode < ring[j].vnode
	})

	p := &Placement{
		shards:   shards,
		replicas: replicas,
		table:    make([][]int, shards),
		primary:  make([]int, shards),
		epoch:    make([]uint64, shards),
	}
	for s := 0; s < shards; s++ {
		start := sort.Search(len(ring), func(i int) bool {
			return ring[i].hash >= fnv64(fmt.Sprintf("shard-%d", s))
		})
		seen := make(map[int]bool, replicas)
		var set []int
		for i := 0; len(set) < replicas; i++ {
			pt := ring[(start+i)%len(ring)]
			if !seen[pt.host] {
				seen[pt.host] = true
				set = append(set, pt.host)
			}
		}
		p.table[s] = set
		p.primary[s] = set[0]
	}
	return p
}

// ShardOfKey maps a key to its shard.
func (p *Placement) ShardOfKey(key string) int {
	return int(fnv64(key) % uint64(p.shards))
}

// Shards returns the shard count.
func (p *Placement) Shards() int { return p.shards }

// ReplicaHosts returns shard's replica hosts in placement (promotion)
// order. The caller must not mutate the slice.
func (p *Placement) ReplicaHosts(shard int) []int { return p.table[shard] }

// PrimaryHost returns the host currently holding shard's primary.
func (p *Placement) PrimaryHost(shard int) int { return p.primary[shard] }

// Epoch returns shard's failover epoch (0 until the first promotion).
func (p *Placement) Epoch(shard int) uint64 { return p.epoch[shard] }

// Promote makes host shard's primary and bumps the epoch. It reports
// whether the table changed (promoting the current primary is a no-op).
func (p *Placement) Promote(shard, host int) bool {
	if p.primary[shard] == host {
		return false
	}
	p.primary[shard] = host
	p.epoch[shard]++
	return true
}

// HostShards returns the shards for which host appears in the replica
// set, ascending — used to enumerate a host's replicas deterministically.
func (p *Placement) HostShards(host int) []int {
	var out []int
	for s, set := range p.table {
		for _, h := range set {
			if h == host {
				out = append(out, s)
				break
			}
		}
	}
	return out
}
