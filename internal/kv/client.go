package kv

import (
	"npf/internal/sim"
	"npf/internal/workload"
)

// WorkloadConfig sizes one tenant's load generator. It is an alias of the
// shared workload.Config: kv and the scale-out sweep (internal/topo) draw
// from one generator implementation, and a config built for one layer works
// verbatim in the other. Field semantics and defaults are unchanged from
// the historical kv-private struct; Keys defaults to Config.ExpectedKeys.
type WorkloadConfig = workload.Config

// Workload is one tenant's load generator plus its latency accounting.
type Workload struct {
	svc *Service
	Cfg WorkloadConfig

	// Lat holds per-op latencies in microseconds (front-cache hits
	// included: they are real client-observed latencies).
	Lat sim.Histogram

	Gets      sim.Counter
	Sets      sim.Counter
	Hits      sim.Counter // get replies that found the key
	FrontHits sim.Counter // gets served by the host-level front cache
	Retries   sim.Counter
	ShedSeen  sim.Counter // set replies reporting shed load

	// DoneAt is the virtual time the last op completed (0 while running).
	DoneAt sim.Time
	// OnDone fires once when the workload completes.
	OnDone func()

	clients   []*wlClient
	pending   map[uint64]*pendingReq
	issued    int
	completed int
	started   bool
}

type wlClient struct {
	wl    *Workload
	id    int
	host  *HostNode
	src   workload.Source
	quota int // ops this client still has to issue
}

type pendingReq struct {
	c        *wlClient
	key      string
	shard    int
	size     int
	isGet    bool
	start    sim.Time
	timer    sim.EventID
	attempts int
}

// NewWorkload attaches a tenant workload to the service. Client RNGs are
// split from the engine in construction order, so results are independent
// of when (or whether) other tenants run their ops.
func (s *Service) NewWorkload(cfg WorkloadConfig) *Workload {
	cfg = cfg.WithDefaults(s.Cfg.ExpectedKeys)
	w := &Workload{svc: s, Cfg: cfg, pending: make(map[uint64]*pendingReq)}
	per := cfg.TargetOps / cfg.Clients
	extra := cfg.TargetOps % cfg.Clients
	clientHosts := s.Hosts[s.Cfg.ServerHosts:]
	for i := 0; i < cfg.Clients; i++ {
		q := per
		if i < extra {
			q++
		}
		h := clientHosts[i%len(clientHosts)]
		if cfg.FrontCacheEntries > 0 {
			h.frontCache.setCapacity(cfg.FrontCacheEntries)
		}
		w.clients = append(w.clients, &wlClient{
			wl: w, id: i, host: h,
			src:   workload.NewSource(cfg, s.Eng.Rand().Split()),
			quota: q,
		})
	}
	// Latency and completion probes are client-tier state: they belong to
	// the client tracer (the server tracer on a single-engine service).
	tr := s.TracerC
	tenant := cfg.Tenant
	// The Percentile probes touch the histogram's lazy sort cache — an
	// in-place, order-insensitive reordering that runs at deterministic
	// sampler ticks, so same-seed runs stay byte-identical.
	//npf:probepure — Histogram.Percentile's lazy sort is an internal cache, not observable state
	tr.Probe("kv."+tenant+".p50_us", func() float64 { return w.Lat.Percentile(50) })
	//npf:probepure — Histogram.Percentile's lazy sort is an internal cache, not observable state
	tr.Probe("kv."+tenant+".p99_us", func() float64 { return w.Lat.Percentile(99) })
	//npf:probepure — Histogram.Percentile's lazy sort is an internal cache, not observable state
	tr.Probe("kv."+tenant+".p999_us", func() float64 { return w.Lat.Percentile(99.9) })
	tr.Probe("kv."+tenant+".completed", func() float64 { return float64(w.completed) })
	s.workloads = append(s.workloads, w)
	return w
}

// Start begins issuing load at the current virtual time (after an optional
// prepopulation pass) and arms the service control plane.
func (w *Workload) Start() {
	if w.started {
		return
	}
	w.started = true
	w.svc.Start()
	if w.Cfg.Prepopulate {
		w.prepopulate()
	}
	for _, c := range w.clients {
		c := c
		if w.Cfg.OpenLoop {
			w.svc.cliEng.After(c.nextArrival(), func() { c.arrive() })
		} else if c.quota > 0 {
			// Deterministic small stagger so clients do not issue in
			// lockstep on the first tick.
			w.svc.cliEng.After(sim.Time(c.id+1)*3*sim.Microsecond, func() { c.issue() })
		}
	}
}

// prepopulate bulk-loads every key into its shard's replicas directly (a
// control-plane bootstrap: no network traffic, memory state applied
// immediately so arenas start resident and warm).
func (w *Workload) prepopulate() {
	s := w.svc
	for k := 0; k < w.Cfg.Keys; k++ {
		key := s.keys.Name(k)
		shard := s.place.ShardOfKey(key)
		for _, r := range s.shards[shard] {
			if _, ok := r.applySet(key, s.Cfg.ValueBytes); ok && r.primary {
				r.seq++
				r.logAppend(key, s.Cfg.ValueBytes)
			}
		}
		// Backups adopt the primary's sequence (they applied the same ops).
		var seq uint64
		for _, r := range s.shards[shard] {
			if r.primary {
				seq = r.seq
			}
		}
		for _, r := range s.shards[shard] {
			if !r.primary {
				r.seq = seq
			}
		}
	}
}

// nextArrival draws the open-loop inter-arrival gap (Curve-modulated when
// the workload config sets one; the zero Curve is the historical constant
// rate, byte-identical to the pre-extraction draw).
func (c *wlClient) nextArrival() sim.Time {
	return c.src.NextArrival(c.wl.svc.cliEng.Now())
}

// arrive is the open-loop tick: issue (regardless of completions) and
// re-arm until the quota is spent.
func (c *wlClient) arrive() {
	if c.quota <= 0 {
		return
	}
	c.issue()
	if c.quota > 0 {
		c.wl.svc.cliEng.After(c.nextArrival(), func() { c.arrive() })
	}
}

// issue sends one op drawn from the workload mix.
func (c *wlClient) issue() {
	w := c.wl
	s := w.svc
	c.quota--
	w.issued++
	isGet, keyIdx := c.src.NextOp()
	key := s.keys.Name(keyIdx)
	shard := s.place.ShardOfKey(key)
	s.nextReq++
	id := s.nextReq
	req := &pendingReq{
		c: c, key: key, shard: shard, isGet: isGet,
		size:  s.Cfg.ValueBytes,
		start: s.cliEng.Now(),
	}
	w.pending[id] = req

	if isGet {
		w.Gets.Inc()
		if c.host.frontCache.get(key) {
			// Hot-key hit at the client tier: complete locally.
			w.FrontHits.Inc()
			s.cFrontHits.Add(1)
			s.cliEng.After(frontCacheCost, func() {
				if r, ok := w.pending[id]; ok {
					delete(w.pending, id)
					w.Hits.Inc()
					w.complete(r)
				}
			})
			return
		}
	} else {
		w.Sets.Inc()
		c.host.frontCache.invalidate(key)
	}
	w.sendReq(id, req)
}

// frontCacheCost is the client-local cost of a front-cache hit.
const frontCacheCost = 500 * sim.Nanosecond

// clientPrimary is the primary host the client tier routes shard traffic
// to: the placement table on a single-engine service, the client-side
// snapshot (updated by promotions through Engine.Call) when partitioned.
func (s *Service) clientPrimary(shard int) int {
	if s.cliPrimary != nil {
		return s.cliPrimary[shard]
	}
	return s.place.PrimaryHost(shard)
}

// sendReq (re)sends a pending op to the shard's current primary and arms
// the retry timer.
func (w *Workload) sendReq(id uint64, req *pendingReq) {
	s := w.svc
	req.attempts++
	kind := rpcGet
	wire := rpcHeader
	if !req.isGet {
		kind = rpcSet
		wire += req.size
	}
	s.send(req.c.host, s.clientPrimary(req.shard), wire, &rpcMsg{
		Kind: kind, Shard: req.shard, Key: req.key, Size: req.size,
		ReqID: id, Client: req.c.id,
	})
	req.timer = s.cliEng.After(w.Cfg.RequestTimeout, func() {
		if w.pending[id] != req {
			return
		}
		w.Retries.Inc()
		s.cRetries.Add(1)
		w.sendReq(id, req) // placement is re-read: a failover reroutes us
	})
}

// deliverReply routes a reply arriving at client host h.
func (s *Service) deliverReply(h *HostNode, m *rpcMsg) {
	for _, w := range s.workloads {
		if req, ok := w.pending[m.ReqID]; ok && req.c.host == h {
			w.handleReply(m.ReqID, req, m)
			return
		}
	}
}

func (w *Workload) handleReply(id uint64, req *pendingReq, m *rpcMsg) {
	s := w.svc
	if m.Redirect && req.attempts < 64 {
		// The replica we asked is no longer primary. Retry immediately
		// against the current placement table.
		s.cliEng.Cancel(req.timer)
		w.sendReq(id, req)
		return
	}
	s.cliEng.Cancel(req.timer)
	delete(w.pending, id)
	if req.isGet {
		if m.Hit {
			w.Hits.Inc()
			req.c.host.frontCache.add(req.key)
		}
	} else if !m.OK {
		w.ShedSeen.Inc()
	}
	w.complete(req)
}

// complete records one finished op and fires issue/done transitions.
func (w *Workload) complete(req *pendingReq) {
	s := w.svc
	w.Lat.AddTime(s.cliEng.Now() - req.start)
	s.cOps.Add(1)
	w.completed++
	if w.completed == w.Cfg.TargetOps {
		w.DoneAt = s.cliEng.Now()
		if w.OnDone != nil {
			w.OnDone()
		}
		return
	}
	if !w.Cfg.OpenLoop && req.c.quota > 0 {
		req.c.issue()
	}
}

// Completed reports ops finished so far.
func (w *Workload) Completed() int { return w.completed }

// Issued reports ops issued so far.
func (w *Workload) Issued() int { return w.issued }

// ---------------------------------------------------------------------------
// Host-level hot-key front cache: a bounded LRU of keys recently fetched
// by any client on the host. Only presence is cached (values are not
// modelled); a hit completes the get at the client tier. Sets by local
// clients invalidate; remote writers leave entries stale until they age
// out — the documented coherence tradeoff of look-aside front caches.

type frontCache struct {
	cap   int
	items map[string]int // key -> stamp
	order []string       // insertion ring for eviction
	clock int
}

func newFrontCache(capacity int) *frontCache {
	return &frontCache{cap: capacity, items: make(map[string]int)}
}

func (f *frontCache) setCapacity(capacity int) {
	if capacity > f.cap {
		f.cap = capacity
	}
}

func (f *frontCache) get(key string) bool {
	if f.cap <= 0 {
		return false
	}
	_, ok := f.items[key]
	return ok
}

func (f *frontCache) add(key string) {
	if f.cap <= 0 {
		return
	}
	if _, ok := f.items[key]; ok {
		return
	}
	f.clock++
	f.items[key] = f.clock
	f.order = append(f.order, key)
	for len(f.items) > f.cap && len(f.order) > 0 {
		victim := f.order[0]
		f.order = f.order[1:]
		if _, ok := f.items[victim]; ok {
			delete(f.items, victim)
		}
	}
}

func (f *frontCache) invalidate(key string) {
	delete(f.items, key)
}
