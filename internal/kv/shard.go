package kv

import (
	"errors"

	"npf/internal/apps"
	"npf/internal/core"
	"npf/internal/mem"
	"npf/internal/sim"
)

// replica is one copy of one shard on one host. The primary serves client
// ops and replicates sets to the backups; backups apply the replicated op
// stream in sequence order, so a quiesced shard's replicas hold identical
// stores (the invariant CheckConsistency verifies).
type replica struct {
	svc   *Service
	shard int
	host  *HostNode

	group *mem.Group
	as    *mem.AddressSpace
	store *apps.KVStore
	pdc   *core.PinDownCache // RegPinDown only

	primary bool
	seq     uint64 // last op sequence applied (primary: also last assigned)

	// Primary: replication log (ring of the last LogCap ops) for catching
	// lagging backups up without a full snapshot.
	logKeys  []string
	logSizes []int
	logStart uint64 // sequence of logKeys[0]; log covers [logStart, seq]

	// Primary: sets awaiting backup acks, by sequence.
	pending map[uint64]*pendingSet

	// Backup: out-of-order replicated ops buffered until contiguous, and
	// whether a resync is already in flight. gapAt stamps when the buffer
	// last became non-empty (the detector escalates stale gaps).
	buffer    map[uint64]*rpcMsg
	gapAt     sim.Time
	resyncing bool
	// resyncAt/resyncFull let the detector re-issue a resync whose request
	// or response was lost with a failed connection.
	resyncAt   sim.Time
	resyncFull bool

	shed uint64 // sets dropped after the arena stayed exhausted
}

// pendingSet tracks one replicated set at the primary until every backup
// acked or the replication timeout fired.
type pendingSet struct {
	need  int
	timer sim.EventID
	reply *rpcMsg // the client reply to release
	to    int     // client host index
}

// handle dispatches one shard-addressed message.
func (r *replica) handle(m *rpcMsg) {
	switch m.Kind {
	case rpcGet, rpcSet:
		r.handleClientOp(m)
	case rpcRepl:
		r.handleRepl(m)
	case rpcReplAck:
		r.handleReplAck(m)
	case rpcResyncReq:
		r.handleResyncReq(m)
	case rpcResyncData:
		r.handleResyncData(m)
	}
}

// opCost is the server-side synchronous cost of touching a value: CPU
// service time, the store's memory cost (minor/major faults under
// reclaim), and pin-down registration when that policy is active.
func (r *replica) opCost(key string, storeCost sim.Time) sim.Time {
	cost := r.svc.Cfg.ServiceTime + storeCost
	if r.pdc != nil {
		if addr, size, ok := r.store.Peek(key); ok {
			c, err := r.pdc.Acquire(addr, size)
			if err == nil {
				cost += c
			}
		}
	}
	return cost
}

func (r *replica) handleClientOp(m *rpcMsg) {
	s := r.svc
	if s.place.PrimaryHost(r.shard) != r.host.Index {
		// Stale client routing: redirect (the client re-reads placement).
		s.Redirects.Inc()
		s.cRedirects.Add(1)
		reply := &rpcMsg{Kind: rpcReply, Shard: r.shard, ReqID: m.ReqID,
			Client: m.Client, Redirect: true, Epoch: s.place.Epoch(r.shard)}
		s.send(r.host, m.From, rpcHeader, reply)
		return
	}
	if m.Kind == rpcGet {
		hit, size, storeCost, _ := r.store.Get(m.Key)
		cost := r.opCost(m.Key, storeCost)
		reply := &rpcMsg{Kind: rpcReply, Shard: r.shard, ReqID: m.ReqID,
			Client: m.Client, Hit: hit, OK: true, Size: size}
		from := m.From
		s.Eng.After(cost, func() {
			s.send(r.host, from, rpcHeader+size, reply)
		})
		return
	}
	// Set: apply locally, then replicate synchronously.
	cost, applied := r.applySet(m.Key, m.Size)
	cost = r.opCost(m.Key, cost)
	reply := &rpcMsg{Kind: rpcReply, Shard: r.shard, ReqID: m.ReqID,
		Client: m.Client, OK: applied}
	from := m.From
	if !applied {
		s.Eng.After(cost, func() { s.send(r.host, from, rpcHeader, reply) })
		return
	}
	r.seq++
	seq := r.seq
	r.logAppend(m.Key, m.Size)
	key, size := m.Key, m.Size
	s.Eng.After(cost, func() { r.replicate(seq, key, size, reply, from) })
}

// replicate fans one applied set out to the backups and parks the client
// reply until they ack (or the replication timeout fires).
func (r *replica) replicate(seq uint64, key string, size int, reply *rpcMsg, to int) {
	s := r.svc
	backups := 0
	for _, hIdx := range s.place.ReplicaHosts(r.shard) {
		if hIdx == r.host.Index {
			continue
		}
		backups++
		s.send(r.host, hIdx, rpcHeader+size, &rpcMsg{
			Kind: rpcRepl, Shard: r.shard, Seq: seq, Key: key, Size: size,
			Epoch: s.place.Epoch(r.shard),
		})
	}
	if backups == 0 {
		s.send(r.host, to, rpcHeader, reply)
		return
	}
	p := &pendingSet{need: backups, reply: reply, to: to}
	r.pending[seq] = p
	p.timer = s.Eng.After(s.Cfg.ReplTimeout, func() {
		if r.pending[seq] != p {
			return
		}
		delete(r.pending, seq)
		s.ReplTimeouts.Inc()
		s.cReplTO.Add(1)
		// Complete the client op anyway: the write is exposed to loss
		// until the lagging backup resyncs (async-replication semantics
		// under partitions; the detector will fail the shard over if the
		// backup is truly gone).
		s.send(r.host, to, rpcHeader, reply)
	})
}

func (r *replica) handleReplAck(m *rpcMsg) {
	p, ok := r.pending[m.Seq]
	if !ok {
		return // late ack after a timeout
	}
	p.need--
	if p.need > 0 {
		return
	}
	delete(r.pending, m.Seq)
	r.svc.Eng.Cancel(p.timer)
	r.svc.send(r.host, p.to, rpcHeader, p.reply)
}

// handleRepl applies one replicated set at a backup, buffering gaps and
// requesting a resync when the stream cannot be made contiguous.
func (r *replica) handleRepl(m *rpcMsg) {
	s := r.svc
	if r.primary {
		return // a deposed primary's stale replication; ignore
	}
	if m.Seq <= r.seq {
		r.ack(m.From, m.Seq) // duplicate delivery
		return
	}
	if m.Seq > r.seq+1 {
		// Out-of-order (replication timers race) or a real gap (messages
		// lost to a failed conn): buffer, and let the detector loop
		// request a resync if the gap persists past ReplTimeout.
		if len(r.buffer) == 0 {
			r.gapAt = s.Eng.Now()
		}
		r.buffer[m.Seq] = m
		return
	}
	cost, _ := r.applySet(m.Key, m.Size)
	r.seq = m.Seq
	from := m.From
	seq := m.Seq
	s.Eng.After(r.opCost(m.Key, cost), func() {
		r.ack(from, seq)
		r.drainBuffer()
	})
}

// drainBuffer applies buffered ops that became contiguous.
func (r *replica) drainBuffer() {
	for {
		m, ok := r.buffer[r.seq+1]
		if !ok {
			return
		}
		delete(r.buffer, r.seq+1)
		cost, _ := r.applySet(m.Key, m.Size)
		r.seq = m.Seq
		_ = cost // already paid by the batch that made us contiguous
		r.ack(m.From, m.Seq)
	}
}

func (r *replica) ack(to int, seq uint64) {
	r.svc.send(r.host, to, rpcHeader, &rpcMsg{
		Kind: rpcReplAck, Shard: r.shard, Seq: seq,
	})
}

// requestResync asks the current primary for the missing tail (or a full
// snapshot after a demotion / truncated log).
func (r *replica) requestResync(full bool) {
	s := r.svc
	ph := s.place.PrimaryHost(r.shard)
	if ph == r.host.Index {
		return
	}
	r.resyncing = true
	r.resyncAt = s.Eng.Now()
	r.resyncFull = full
	s.Resyncs.Inc()
	s.cResyncs.Add(1)
	s.send(r.host, ph, rpcHeader, &rpcMsg{
		Kind: rpcResyncReq, Shard: r.shard, Seq: r.seq, Full: full,
	})
}

// handleResyncReq serves a backup's catch-up request from the primary.
func (r *replica) handleResyncReq(m *rpcMsg) {
	s := r.svc
	if !r.primary {
		return
	}
	from := m.Seq + 1
	if !m.Full && from >= r.logStart && from <= r.seq+1 {
		r.sendLogRange(m.From, from)
		return
	}
	// Snapshot: the full store in deterministic (LRU) order.
	keys := r.store.Keys()
	sizes := make([]int, len(keys))
	for i, k := range keys {
		_, size, _ := r.store.Peek(k)
		sizes[i] = size
	}
	batch := s.maxResyncBatch()
	if len(keys) == 0 {
		s.send(r.host, m.From, rpcHeader, &rpcMsg{
			Kind: rpcResyncData, Shard: r.shard, Reset: true, Last: true, Seq: r.seq,
		})
		return
	}
	for i := 0; i < len(keys); i += batch {
		j := i + batch
		if j > len(keys) {
			j = len(keys)
		}
		bytes := rpcHeader
		for _, sz := range sizes[i:j] {
			bytes += sz
		}
		s.send(r.host, m.From, bytes, &rpcMsg{
			Kind: rpcResyncData, Shard: r.shard,
			Reset: i == 0, Last: j == len(keys), Seq: r.seq,
			Keys: keys[i:j], Sizes: sizes[i:j],
		})
	}
}

// sendLogRange streams log entries [from, r.seq] in bounded batches.
func (r *replica) sendLogRange(to int, from uint64) {
	s := r.svc
	batch := uint64(s.maxResyncBatch())
	if from > r.seq { // nothing missing; just close the resync
		s.send(r.host, to, rpcHeader, &rpcMsg{
			Kind: rpcResyncData, Shard: r.shard, Last: true,
			SeqStart: from, Seq: r.seq,
		})
		return
	}
	for lo := from; lo <= r.seq; lo += batch {
		hi := lo + batch - 1
		if hi > r.seq {
			hi = r.seq
		}
		mm := &rpcMsg{Kind: rpcResyncData, Shard: r.shard,
			SeqStart: lo, Last: hi == r.seq, Seq: r.seq}
		bytes := rpcHeader
		for q := lo; q <= hi; q++ {
			i := int(q - r.logStart)
			mm.Keys = append(mm.Keys, r.logKeys[i])
			mm.Sizes = append(mm.Sizes, r.logSizes[i])
			bytes += r.logSizes[i]
		}
		s.send(r.host, to, bytes, mm)
	}
}

// handleResyncData applies one resync batch at the backup. Batches arrive
// in order (both transports are ordered); a snapshot's first batch resets
// the store and the last batch fast-forwards the sequence.
func (r *replica) handleResyncData(m *rpcMsg) {
	if r.primary {
		return
	}
	if m.Reset {
		r.store.Reset()
	}
	for i, k := range m.Keys {
		if m.SeqStart != 0 && m.SeqStart+uint64(i) <= r.seq {
			continue // already applied via in-flight replication
		}
		if _, ok := r.applySet(k, m.Sizes[i]); !ok {
			break
		}
		if m.SeqStart != 0 {
			r.seq = m.SeqStart + uint64(i)
		}
	}
	if m.Last {
		if r.seq < m.Seq {
			r.seq = m.Seq
		}
		r.resyncing = false
		// Drop buffered ops the snapshot already covers, then apply the
		// now-contiguous tail.
		//npf:orderinvariant — deleting every key <= seq is commutative
		for seq := range r.buffer {
			if seq <= r.seq {
				delete(r.buffer, seq)
			}
		}
		r.drainBuffer()
	}
}

// promote makes this replica the shard's primary (placement has already
// been updated). The new lineage continues from the backup's applied
// sequence; writes the old primary completed after a replication timeout
// are lost, which is the documented durability cost of that timeout.
func (r *replica) promote() {
	r.primary = true
	r.resyncing = false
	r.buffer = make(map[uint64]*rpcMsg)
	r.logKeys, r.logSizes = nil, nil
	r.logStart = r.seq + 1
}

// demote turns a deposed primary back into a backup and schedules a full
// resync from the new primary (its tail may contain lost writes).
func (r *replica) demote() {
	r.primary = false
	//npf:orderinvariant — cancelling every pending timer is commutative
	for seq, p := range r.pending {
		r.svc.Eng.Cancel(p.timer)
		delete(r.pending, seq)
	}
	r.requestResync(true)
}

// applySet writes one value into the store, degrading gracefully when the
// arena is exhausted: evict the oldest items to recycle slots, and shed
// the op if that fails (counted, never a crash).
func (r *replica) applySet(key string, size int) (sim.Time, bool) {
	var total sim.Time
	for tries := 0; ; tries++ {
		cost, err := r.store.Set(key, size)
		total += cost
		if err == nil {
			return total, true
		}
		if errors.Is(err, apps.ErrArenaExhausted) && tries < 8 && r.store.EvictOldest() {
			r.svc.ArenaEvicts.Inc()
			continue
		}
		r.shed++
		r.svc.Shed.Inc()
		r.svc.cShed.Add(1)
		return total, false
	}
}

// logAppend records one op in the primary's replication log, trimming to
// LogCap entries.
func (r *replica) logAppend(key string, size int) {
	if r.logStart == 0 {
		r.logStart = 1
	}
	r.logKeys = append(r.logKeys, key)
	r.logSizes = append(r.logSizes, size)
	if over := len(r.logKeys) - r.svc.Cfg.LogCap; over > 0 {
		r.logKeys = r.logKeys[over:]
		r.logSizes = r.logSizes[over:]
		r.logStart += uint64(over)
	}
}
