package kv

import (
	"fmt"
	"testing"

	"npf/internal/fabric"
	"npf/internal/sim"
	"npf/internal/trace"
)

// newPartitionedService builds the service on a two-partition PDES group:
// server tier on partition 0, client tier on partition 1, each with its
// own tracer.
func newPartitionedService(t *testing.T, seed int64, cfg Config) (*sim.Group, *Service) {
	t.Helper()
	fcfg := fabric.DefaultEthernet()
	if cfg.Transport == TransportRC {
		fcfg = fabric.DefaultInfiniBand()
	}
	g := sim.NewGroup(seed, 2, fcfg.Lookahead())
	for _, e := range g.Engines() {
		e.MaxEvents = 200_000_000
	}
	net := fabric.NewOnGroup(g, fcfg)
	cfg.ClientTracer = trace.New(g.Engine(1))
	return g, New(g.Engine(0), net, trace.New(g.Engine(0)), cfg)
}

// pdesFingerprint summarizes everything observable about a partitioned
// run: both engines' clocks and event counts, both tracers' digests, and
// the service/workload counters.
func pdesFingerprint(g *sim.Group, svc *Service, wl *Workload) string {
	return fmt.Sprintf(
		"exec=%d now0=%d now1=%d dsrv=%x dcli=%x ops=%d p50=%.3f p99=%.3f fo=%d rt=%d shed=%d resync=%d redir=%d conn=%d",
		g.Executed(), g.Engine(0).Now(), g.Engine(1).Now(),
		svc.Tracer.Digest(), svc.TracerC.Digest(),
		wl.Completed(), wl.Lat.Percentile(50), wl.Lat.Percentile(99),
		svc.Failovers.N, svc.ReplTimeouts.N, svc.Shed.N, svc.Resyncs.N,
		svc.Redirects.N, svc.ConnFailures())
}

// TestPartitionedService checks the partitioned deployment end to end on
// both transports: the workload completes, replicas converge, and the run
// is byte-identical across engine-thread counts.
func TestPartitionedService(t *testing.T) {
	for _, tr := range []Transport{TransportTCP, TransportRC} {
		t.Run(tr.String(), func(t *testing.T) {
			var prints []string
			for _, threads := range []int{1, 2} {
				g, svc := newPartitionedService(t, 42, Config{Transport: tr})
				g.SetThreads(threads)
				wl := svc.NewWorkload(WorkloadConfig{
					TargetOps: 1000, Prepopulate: true, FrontCacheEntries: 32,
				})
				wl.OnDone = func() { svc.Stop() }
				wl.Start()
				g.Run()
				if wl.Completed() != wl.Cfg.TargetOps {
					t.Fatalf("threads=%d: completed %d of %d ops",
						threads, wl.Completed(), wl.Cfg.TargetOps)
				}
				if wl.Hits.N == 0 {
					t.Fatal("no get hits despite prepopulation")
				}
				if bad := svc.CheckConsistency(); len(bad) != 0 {
					t.Fatalf("threads=%d: consistency violations: %v", threads, bad)
				}
				prints = append(prints, pdesFingerprint(g, svc, wl))
			}
			if prints[0] != prints[1] {
				t.Fatalf("thread counts diverged:\n%s\n%s", prints[0], prints[1])
			}
		})
	}
}

// TestPartitionedFailover kills and revives a primary while a partitioned
// deployment serves open-loop traffic: the failover must happen, the
// client tier's routing snapshot must follow it (the workload completes),
// and the whole thing must replay byte-identically on 1 and 2 threads.
func TestPartitionedFailover(t *testing.T) {
	var prints []string
	for _, threads := range []int{1, 2} {
		g, svc := newPartitionedService(t, 7, Config{
			HeartbeatEvery: 2 * sim.Millisecond,
			FailoverAfter:  8 * sim.Millisecond,
			ReplTimeout:    5 * sim.Millisecond,
		})
		g.SetThreads(threads)
		victim := svc.Placement().PrimaryHost(0)
		wl := svc.NewWorkload(WorkloadConfig{
			TargetOps: 4000, Prepopulate: true,
			OpenLoop: true, ArrivalRate: 10_000, Clients: 4,
			RequestTimeout: 10 * sim.Millisecond,
		})
		wl.OnDone = func() {
			svc.ClientEngine().After(500*sim.Millisecond, func() { svc.Stop() })
		}
		wl.Start()
		// SetHostDown touches the victim's fabric state, which lives on the
		// server partition: schedule the chaos on the server engine.
		g.Engine(0).After(20*sim.Millisecond, func() {
			svc.SetHostDown(victim, true)
		})
		g.Engine(0).After(120*sim.Millisecond, func() {
			svc.SetHostDown(victim, false)
		})
		g.Run()
		if wl.Completed() != wl.Cfg.TargetOps {
			t.Fatalf("threads=%d: completed %d of %d ops",
				threads, wl.Completed(), wl.Cfg.TargetOps)
		}
		if svc.Failovers.N == 0 {
			t.Fatal("link-down primary was never failed over")
		}
		if bad := svc.CheckConsistency(); len(bad) != 0 {
			t.Fatalf("threads=%d: post-failover consistency violations: %v", threads, bad)
		}
		prints = append(prints, pdesFingerprint(g, svc, wl))
	}
	if prints[0] != prints[1] {
		t.Fatalf("thread counts diverged:\n%s\n%s", prints[0], prints[1])
	}
}
