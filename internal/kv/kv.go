// Package kv implements a sharded, replicated distributed key-value
// service on the simulated stack — the production-scale workload the
// paper's registration-policy tradeoff (§2.2, Table 3) is ultimately
// about. Shards are placed on server hosts by consistent hashing, each
// shard runs a primary with synchronous primary→backup replication, and a
// client tier drives Zipf-distributed traffic through the real `tcp` or
// `rc` transports, so ODP page faults, pin-down-cache churn, and cgroup
// reclaim all surface as end-to-end tail latency.
//
// Everything is deterministic: placement is pure hashing, failover
// decisions are driven by heartbeat timestamps on the virtual clock, and
// every RNG is split from the engine at construction time, so same-seed
// runs replay byte-identically regardless of host parallelism.
package kv

import (
	"fmt"

	"npf/internal/apps"
	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/iommu"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/topo"
	"npf/internal/trace"
	"npf/internal/workload"
)

// Transport selects the wire protocol shard traffic rides on.
type Transport int

const (
	// TransportTCP serves the KV protocol over the simulated TCP stack on
	// Ethernet NICs (the memcached deployment model).
	TransportTCP Transport = iota
	// TransportRC serves it over reliable-connection queue pairs on HCAs
	// (the RDMA deployment model).
	TransportRC
)

func (t Transport) String() string {
	if t == TransportRC {
		return "rc"
	}
	return "tcp"
}

// RegPolicy is the memory-registration policy applied to the server hosts'
// network buffers and value arenas — the paper's §2.2 design space.
type RegPolicy int

const (
	// RegODP leaves server memory unpinned: network rings and value arenas
	// demand-page, and reclaim can evict them mid-flight.
	RegODP RegPolicy = iota
	// RegPinDown keeps rings on ODP but registers value-arena pages
	// through a bounded pin-down cache on every access, paying
	// registration churn when the working set exceeds the cache.
	RegPinDown
	// RegPinned statically pins rings and arenas up front: no faults, no
	// churn, but the memory is never reclaimable (no overcommit).
	RegPinned
)

func (p RegPolicy) String() string {
	switch p {
	case RegPinDown:
		return "pin-down-cache"
	case RegPinned:
		return "pinned"
	}
	return "odp"
}

// Config sizes the service. Zero fields take the defaults documented on
// each; a zero Config is a small but fully functional deployment.
type Config struct {
	ServerHosts int // hosts running shard replicas (default 4)
	ClientHosts int // hosts running client workloads (default 2)
	Shards      int // shard count (default 8)
	Replicas    int // replicas per shard, primary included (default 2)

	Transport Transport // default TransportTCP
	Reg       RegPolicy // default RegODP

	// ValueBytes is the (uniform) value size; keys are drawn by the
	// workload generators (default 1024).
	ValueBytes int
	// ArenaBytes is each replica's pre-mapped value arena. 0 sizes it
	// automatically from ExpectedKeys with 2x headroom for hash skew.
	ArenaBytes int64
	// ExpectedKeys feeds the automatic arena sizing (default 2048).
	ExpectedKeys int
	// StoreCapacity bounds each replica's live value bytes (KVStore's
	// memcached -m); 0 = unbounded (the arena is then the only bound).
	StoreCapacity int64
	// GroupLimitBytes is the per-shard memory cgroup limit; 0 = unlimited
	// (the group still exists, so chaos plans and reclaim waves can
	// squeeze it at runtime).
	GroupLimitBytes int64
	// PinCacheBytes bounds the per-replica pin-down cache (RegPinDown
	// only); 0 defaults to half the arena — small enough to churn.
	PinCacheBytes int64

	ServiceTime    sim.Time // per-op CPU cost at the server (default 2µs)
	HeartbeatEvery sim.Time // server-to-server heartbeat period (default 10ms)
	FailoverAfter  sim.Time // missed-heartbeat window before promotion (default 40ms)
	ReplTimeout    sim.Time // sync-replication ack timeout (default 15ms)

	RingSize int // NIC RX descriptor ring entries per server (default 256)
	// LogCap bounds each primary's replication log; gaps beyond it force a
	// full-snapshot resync (default 8192 entries).
	LogCap int

	// ClientTracer receives the client tier's telemetry (workload probes,
	// op/retry/front-cache counters) when the service runs partitioned: the
	// client hosts live on their own engine, so their counters must belong
	// to a tracer on that engine. Nil means the server tracer is used —
	// correct whenever the service runs on a single engine.
	ClientTracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.ServerHosts == 0 {
		c.ServerHosts = 4
	}
	if c.ClientHosts == 0 {
		c.ClientHosts = 2
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Replicas > c.ServerHosts {
		c.Replicas = c.ServerHosts
	}
	if c.ValueBytes == 0 {
		c.ValueBytes = 1024
	}
	if c.ExpectedKeys == 0 {
		c.ExpectedKeys = 2048
	}
	if c.ArenaBytes == 0 {
		slot := (int64(c.ValueBytes) + mem.PageSize - 1) &^ (mem.PageSize - 1)
		perShard := int64(c.ExpectedKeys)/int64(c.Shards) + 1
		c.ArenaBytes = slot * (2*perShard + 8)
	}
	if c.PinCacheBytes == 0 {
		c.PinCacheBytes = c.ArenaBytes / 2
	}
	if c.ServiceTime == 0 {
		c.ServiceTime = 2 * sim.Microsecond
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 10 * sim.Millisecond
	}
	if c.FailoverAfter == 0 {
		c.FailoverAfter = 40 * sim.Millisecond
	}
	if c.ReplTimeout == 0 {
		c.ReplTimeout = 15 * sim.Millisecond
	}
	if c.RingSize == 0 {
		c.RingSize = 256
	}
	if c.LogCap == 0 {
		c.LogCap = 8192
	}
	return c
}

// HostNode is one simulated machine participating in the service: servers
// house shard replicas, clients house workload generators. Index is the
// host's position in Service.Hosts; the first Cfg.ServerHosts entries are
// servers.
type HostNode struct {
	Index  int
	Name   string
	Server bool

	// eng is the engine this host's events run on: the service engine for
	// servers, the client engine for clients. On a single-engine service
	// both are Service.Eng. tr is the tracer its components publish to.
	eng *sim.Engine
	tr  *trace.Tracer

	M   *mem.Machine
	Drv *core.Driver

	// Exactly one of Dev/HCA is set, per Config.Transport.
	Dev *nic.Device
	HCA *rc.HCA

	svc   *Service
	ep    endpoint
	netAS *mem.AddressSpace // transport buffer address space
	mgmt  fabric.NodeID     // management-network port (heartbeats)

	// Replicas hosted here, ordered by shard ID (servers only).
	replicas       []*replica
	replicaByShard map[int]*replica

	// Failure-detector state: last heartbeat seen per server host, and
	// the last heartbeat seen from anyone (the self-partition guard).
	lastHB    []sim.Time
	lastAnyHB sim.Time
	// quietUntil defers promotions after a partition heals: peers' queued
	// heartbeats recover at different retransmission times, so a rejoined
	// host would otherwise declare slow-recovering peers dead and reclaim
	// their shards. Every stale peer that comes back extends the window.
	quietUntil sim.Time

	// frontCache is the host-level hot-key cache client workloads share.
	frontCache *frontCache

	// connFails counts transport connection failures observed by this
	// host's dialer. Per-host (single-writer under PDES: both the server
	// and the client tier dial); Service.ConnFailures sums them.
	connFails sim.Counter
}

// Service is one deployment: hosts, placement, shards, and counters. Build
// with New, attach workloads with NewWorkload, then run the engine.
type Service struct {
	Eng    *sim.Engine
	Net    *fabric.Network
	Tracer *trace.Tracer
	Cfg    Config

	// cliEng is the engine the client hosts run on. On a single-engine
	// service it is Eng; when Net spans a PDES group the servers live on
	// partition 0 (Eng) and the clients on partition 1. TracerC is the
	// client tier's tracer (Cfg.ClientTracer, or Tracer when unset).
	cliEng  *sim.Engine
	TracerC *trace.Tracer

	Hosts []*HostNode
	place *Placement
	// cliPrimary is the client tier's view of each shard's primary host.
	// Nil on a single-engine service (clients read the placement table
	// directly); in partitioned mode the table is server-partition state,
	// so promotions forward the new routing to the client engine through
	// Engine.Call and clients route from this snapshot. Stale routes
	// (bounded by the fabric lookahead) resolve through redirects, exactly
	// like stale routes on a real network.
	cliPrimary []int

	shards    [][]*replica // shard -> replicas in placement order
	workloads []*Workload
	nextReq   uint64 // service-global request IDs (client-partition state)
	// keys interns the canonical key names once per service; the per-op
	// path indexes it instead of Sprintf-ing. Client-partition state:
	// written only from prepopulation (pre-traffic) and cliEng events.
	keys workload.KeyTable

	started bool
	// stopped is split per partition so each side's control loops read
	// only their own engine's state: stoppedSrv parks the heartbeat and
	// detector loops, stoppedCli parks client-side re-dials. Stop sets
	// both (through Engine.Call for the server side when partitioned).
	stoppedSrv bool
	stoppedCli bool

	// Counters (also mirrored into the tracer when one is attached).
	// All of these are written from server-partition events only.
	Failovers    sim.Counter
	Redirects    sim.Counter
	ReplTimeouts sim.Counter
	Resyncs      sim.Counter
	Shed         sim.Counter
	ArenaEvicts  sim.Counter

	cOps       *trace.Counter // client tracer
	cFailovers *trace.Counter
	cReplTO    *trace.Counter
	cResyncs   *trace.Counter
	cShed      *trace.Counter
	cRedirects *trace.Counter
	cFrontHits *trace.Counter // client tracer
	cRetries   *trace.Counter // client tracer
}

// ClientEngine returns the engine the client hosts run on: Eng on a
// single-engine service, the client partition's engine when partitioned.
// Events that interact with workloads (e.g. scheduling Stop after OnDone)
// must run on this engine.
func (s *Service) ClientEngine() *sim.Engine { return s.cliEng }

// ConnFailures sums transport connection failures across every host.
func (s *Service) ConnFailures() uint64 {
	var n uint64
	for _, h := range s.Hosts {
		n += h.connFails.N
	}
	return n
}

// New builds the service on eng and net: hosts, transports (a full mesh
// between every host pair), shard replicas with their per-shard memory
// groups and arenas, and the registration policy's pinning state. tr may
// be nil (telemetry off).
//
// When net spans a PDES group (fabric.NewOnGroup), eng must be partition
// 0's engine: the server hosts are placed there and every client host on
// partition 1, so one cluster executes on two engine threads while staying
// byte-identical to the single-engine run of the same seed. Construction,
// Start, and prepopulation are single-threaded (pre-run), so they may
// touch both partitions' state freely.
func New(eng *sim.Engine, net *fabric.Network, tr *trace.Tracer, cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{Eng: eng, Net: net, Tracer: tr, Cfg: cfg}
	s.cliEng = eng
	s.TracerC = tr
	if g := net.Group(); g != nil && g.Parts() > 1 {
		if eng != g.Engine(0) {
			panic("kv: partitioned service must be built on the group's partition-0 engine")
		}
		s.cliEng = g.Engine(1)
		if cfg.ClientTracer != nil {
			s.TracerC = cfg.ClientTracer
		}
	}
	s.cOps = s.TracerC.Counter("kv.ops")
	s.cFailovers = tr.Counter("kv.failovers")
	s.cReplTO = tr.Counter("kv.repl_timeouts")
	s.cResyncs = tr.Counter("kv.resyncs")
	s.cShed = tr.Counter("kv.shed")
	s.cRedirects = tr.Counter("kv.redirects")
	s.cFrontHits = s.TracerC.Counter("kv.frontcache_hits")
	s.cRetries = s.TracerC.Counter("kv.retries")
	// Causal-recorder depth on the server tier: completed vs in-flight NPF
	// lifecycle records (trace/fault.go), sampled per tick.
	//npf:probepure — FaultRecordCount/PendingFaults only read recorder lengths
	tr.Probe("kv.fault_records", func() float64 { return float64(tr.FaultRecordCount()) })
	tr.Probe("kv.pending_faults", func() float64 { return float64(tr.PendingFaults()) })

	serverIdx := make([]int, cfg.ServerHosts)
	for i := range serverIdx {
		serverIdx[i] = i
	}
	s.place = NewPlacement(cfg.Shards, cfg.Replicas, serverIdx)
	if s.cliEng != s.Eng {
		s.cliPrimary = make([]int, cfg.Shards)
		for i := range s.cliPrimary {
			s.cliPrimary[i] = s.place.PrimaryHost(i)
		}
	}

	total := cfg.ServerHosts + cfg.ClientHosts
	for i := 0; i < total; i++ {
		s.Hosts = append(s.Hosts, s.newHost(i))
	}
	s.buildMesh()
	s.buildShards()
	return s
}

func (s *Service) newHost(i int) *HostNode {
	server := i < s.Cfg.ServerHosts
	role := "server"
	if !server {
		role = "client"
	}
	h := &HostNode{
		Index:          i,
		Name:           fmt.Sprintf("kv-%s%d", role, i),
		Server:         server,
		svc:            s,
		replicaByShard: make(map[int]*replica),
	}
	h.eng, h.tr = s.Eng, s.Tracer
	if !server {
		h.eng, h.tr = s.cliEng, s.TracerC
	}
	// The substrate comes from a shared topo.HostSpec; Build's construction
	// order (machine, driver, adapter) is the historical kv order, so RNG
	// split order — and every seeded result — is unchanged.
	spec := topo.HostSpec{}
	switch s.Cfg.Transport {
	case TransportRC:
		hcfg := rc.DefaultConfig()
		spec.HCA = &hcfg
	default:
		ncfg := nic.DefaultConfig()
		spec.NIC = &ncfg
	}
	b := spec.Build(h.eng, s.Net, h.tr, h.Name)
	h.M, h.Drv, h.Dev, h.HCA = b.M, b.Drv, b.Dev, b.HCA
	h.netAS = h.M.NewAddressSpace(h.Name+"-net", nil)
	h.mgmt = s.Net.AttachOn(&mgmtPort{svc: s, host: h}, h.eng)
	h.frontCache = newFrontCache(0)
	return h
}

// hostODP reports whether host h's network buffers run unpinned: clients
// are always warm and pinned (unmodified machines); servers follow Reg.
func (s *Service) hostODP(h *HostNode) bool {
	return h.Server && s.Cfg.Reg != RegPinned
}

// buildShards carves each shard replica's memory: a per-shard cgroup, an
// address space holding the value arena, the KVStore over it, and the
// registration policy's pinning state.
func (s *Service) buildShards() {
	s.shards = make([][]*replica, s.Cfg.Shards)
	for shard := 0; shard < s.Cfg.Shards; shard++ {
		for pos, hIdx := range s.place.ReplicaHosts(shard) {
			h := s.Hosts[hIdx]
			name := fmt.Sprintf("kv-shard%d-r%d", shard, pos)
			group := mem.NewGroup(name, s.Cfg.GroupLimitBytes)
			as := h.M.NewAddressSpace(name, group)
			base := as.MapBytes(s.Cfg.ArenaBytes)
			store := apps.NewKVStore(as, s.Cfg.StoreCapacity)
			store.SetArena(base, s.Cfg.ArenaBytes)
			r := &replica{
				svc:     s,
				shard:   shard,
				host:    h,
				group:   group,
				as:      as,
				store:   store,
				primary: pos == 0 && hIdx == s.place.PrimaryHost(shard),
				pending: make(map[uint64]*pendingSet),
				buffer:  make(map[uint64]*rpcMsg),
			}
			switch {
			case s.Cfg.Reg == RegPinned:
				pages := int(s.Cfg.ArenaBytes / mem.PageSize)
				if _, err := as.Pin(base.Page(), pages); err != nil {
					panic(fmt.Sprintf("kv: pinning %s arena: %v", name, err))
				}
			case s.Cfg.Reg == RegPinDown && h.Server:
				dom := s.hostMMUDomain(h)
				r.pdc = core.NewPinDownCache(as, dom, s.Cfg.PinCacheBytes)
				r.pdc.SetTracer(s.Tracer)
			}
			h.replicas = append(h.replicas, r)
			h.replicaByShard[shard] = r
			s.shards[shard] = append(s.shards[shard], r)
		}
	}
}

// hostMMUDomain returns a fresh translation domain on the host's I/O MMU
// for pin-down registration of value arenas.
func (s *Service) hostMMUDomain(h *HostNode) *iommu.Domain {
	if h.HCA != nil {
		return h.HCA.MMU.NewDomain()
	}
	return h.Dev.MMU.NewDomain()
}

// Start arms the heartbeat and failure-detector loops. Workload Start
// calls it implicitly; it is idempotent. Call it before the run begins
// (construction is single-threaded): the loops it arms live on the server
// engine.
func (s *Service) Start() {
	if s.started {
		return
	}
	s.started = true
	now := s.Eng.Now()
	for _, h := range s.Hosts[:s.Cfg.ServerHosts] {
		h.lastHB = make([]sim.Time, s.Cfg.ServerHosts)
		for i := range h.lastHB {
			h.lastHB[i] = now
		}
		h.lastAnyHB = now
		// Stagger the loops deterministically so heartbeats from all
		// hosts never collapse onto identical timestamps.
		stagger := sim.Time(h.Index+1) * 13 * sim.Microsecond
		h := h
		s.Eng.After(stagger, func() { s.heartbeatLoop(h) })
		s.Eng.After(stagger+s.Cfg.FailoverAfter/2, func() { s.detectorLoop(h) })
	}
}

// Stop quiesces the control plane: heartbeat and detector loops park at
// their next tick, client-side re-dials stop. In-flight data-path work
// drains normally. Call it from a client-partition event (e.g. a workload
// OnDone) or before the run: the server side's flag travels over the
// group mailbox when the service is partitioned.
func (s *Service) Stop() {
	s.stoppedCli = true
	if s.cliEng == s.Eng {
		s.stoppedSrv = true
		return
	}
	s.cliEng.Call(s.Eng, func() { s.stoppedSrv = true })
}

// sideStopped reports whether h's partition has been told to stop.
func (s *Service) sideStopped(h *HostNode) bool {
	if h.eng == s.cliEng {
		return s.stoppedCli
	}
	return s.stoppedSrv
}

func (s *Service) heartbeatLoop(h *HostNode) {
	if s.stoppedSrv {
		return
	}
	// Advertise the applied sequence of every primary hosted here (the
	// backups' anti-entropy signal).
	var shards []int
	var seqs []uint64
	for _, r := range h.replicas {
		if r.primary {
			shards = append(shards, r.shard)
			seqs = append(seqs, r.seq)
		}
	}
	wire := rpcHeader + 16*len(shards)
	m := &rpcMsg{Kind: rpcHeartbeat, From: h.Index, Shards: shards, Seqs: seqs}
	for peer := 0; peer < s.Cfg.ServerHosts; peer++ {
		if peer == h.Index {
			continue
		}
		// Heartbeats ride the management network (see mgmtPort), not the
		// data transports: a reliable conn's retransmission backoff would
		// blind the failure detector for far longer than the outage.
		s.Net.Send(&fabric.Packet{
			Src: h.mgmt, Dst: s.Hosts[peer].mgmt, Size: wire, Payload: m,
		})
	}
	s.Eng.After(s.Cfg.HeartbeatEvery, func() { s.heartbeatLoop(h) })
}

// detectorLoop is each server's failure detector: promote a backup when
// the shard's primary has missed heartbeats, demote (and resync) when the
// placement table says someone else took the shard over.
func (s *Service) detectorLoop(h *HostNode) {
	if s.stoppedSrv {
		return
	}
	now := s.Eng.Now()
	// A host that is not hearing anyone is the partitioned side; it must
	// not elect itself (the classic split-brain guard).
	selfConnected := now-h.lastAnyHB <= s.Cfg.FailoverAfter
	for _, r := range h.replicas {
		ph := s.place.PrimaryHost(r.shard)
		if ph == h.Index {
			if !r.primary {
				r.promote()
			}
			continue
		}
		if r.primary {
			r.demote()
			continue
		}
		// A replication gap that outlived ReplTimeout will not fill
		// itself: catch up from the primary.
		if len(r.buffer) > 0 && !r.resyncing && now-r.gapAt > s.Cfg.ReplTimeout {
			r.requestResync(false)
		}
		// A resync whose request or response rode a connection that then
		// failed would otherwise hang forever: re-issue it.
		if r.resyncing && now-r.resyncAt > 2*s.Cfg.ReplTimeout {
			r.requestResync(r.resyncFull)
		}
		if !selfConnected || now < h.quietUntil || now-h.lastHB[ph] <= s.Cfg.FailoverAfter {
			continue
		}
		// The primary looks dead. Promotion goes to the first live
		// replica in placement order; defer if that is someone else.
		for _, cand := range s.place.ReplicaHosts(r.shard) {
			if cand == ph {
				continue
			}
			if cand == h.Index {
				s.place.Promote(r.shard, h.Index)
				if s.cliPrimary != nil {
					// Partitioned: the placement table is server-side
					// state. Forward the new route to the client engine;
					// it lands one lookahead later, like a routing update
					// crossing a real network.
					shard, idx := r.shard, h.Index
					s.Eng.Call(s.cliEng, func() { s.cliPrimary[shard] = idx })
				}
				s.Failovers.Inc()
				s.cFailovers.Add(1)
				r.promote()
				break
			}
			if now-h.lastHB[cand] <= s.Cfg.FailoverAfter {
				break // a live candidate precedes us
			}
		}
	}
	s.Eng.After(s.Cfg.FailoverAfter/2, func() { s.detectorLoop(h) })
}

// Placement exposes the control-plane table (for tests and invariants).
func (s *Service) Placement() *Placement { return s.place }

// Replicas returns shard's replicas in placement order.
func (s *Service) Replicas(shard int) []*ReplicaState {
	var out []*ReplicaState
	for _, r := range s.shards[shard] {
		out = append(out, &ReplicaState{
			Host:    r.host.Index,
			Primary: r.primary,
			Seq:     r.seq,
			Items:   r.store.Items(),
			Used:    r.store.UsedBytes(),
			Shed:    r.shed,
		})
	}
	return out
}

// ReplicaState is a read-only snapshot of one replica for invariants.
type ReplicaState struct {
	Host    int
	Primary bool
	Seq     uint64
	Items   int
	Used    int64
	Shed    uint64
}

// CheckConsistency verifies the replication invariant after a run has
// quiesced: every replica of every shard applied the same op sequence and
// holds identical item state. It returns human-readable violations.
func (s *Service) CheckConsistency() []string {
	var bad []string
	for shard, reps := range s.shards {
		first := reps[0]
		primaries := 0
		for _, r := range reps {
			if r.primary {
				primaries++
			}
			if r.seq != first.seq {
				bad = append(bad, fmt.Sprintf(
					"shard %d: replica on host %d at seq %d, host %d at seq %d",
					shard, r.host.Index, r.seq, first.host.Index, first.seq))
			}
			if r.store.Items() != first.store.Items() || r.store.UsedBytes() != first.store.UsedBytes() {
				bad = append(bad, fmt.Sprintf(
					"shard %d: replica state diverged (host %d: %d items/%d B, host %d: %d items/%d B)",
					shard, r.host.Index, r.store.Items(), r.store.UsedBytes(),
					first.host.Index, first.store.Items(), first.store.UsedBytes()))
			}
		}
		if primaries != 1 {
			bad = append(bad, fmt.Sprintf("shard %d: %d primaries", shard, primaries))
		}
	}
	return bad
}

// Groups returns every per-shard memory group, shard-major — the targets
// memory-pressure chaos squeezes.
func (s *Service) Groups() []*mem.Group {
	var out []*mem.Group
	for _, reps := range s.shards {
		for _, r := range reps {
			out = append(out, r.group)
		}
	}
	return out
}

// NetSpaces returns the server hosts' transport-buffer address spaces —
// the ODP-registered memory whose invalidations traverse the NPF driver.
func (s *Service) NetSpaces() []*mem.AddressSpace {
	var out []*mem.AddressSpace
	for _, h := range s.Hosts[:s.Cfg.ServerHosts] {
		out = append(out, h.netAS)
	}
	return out
}

// Spaces returns every value-arena address space, shard-major.
func (s *Service) Spaces() []*mem.AddressSpace {
	var out []*mem.AddressSpace
	for _, reps := range s.shards {
		for _, r := range reps {
			out = append(out, r.as)
		}
	}
	return out
}

// ServerDrivers returns the server-tier hosts' NPF drivers. In a
// partitioned deployment these are the only drivers living on the group's
// partition-0 engine, and therefore the only ones a chaos injector armed
// on that engine may install hooks into.
func (s *Service) ServerDrivers() []*core.Driver {
	var out []*core.Driver
	for _, h := range s.Hosts[:s.Cfg.ServerHosts] {
		out = append(out, h.Drv)
	}
	return out
}

// ServerDevices returns the server-tier Ethernet NICs (empty under
// TransportRC); see ServerDrivers for why chaos targets stop here.
func (s *Service) ServerDevices() []*nic.Device {
	var out []*nic.Device
	for _, h := range s.Hosts[:s.Cfg.ServerHosts] {
		if h.Dev != nil {
			out = append(out, h.Dev)
		}
	}
	return out
}

// ServerHCAs returns the server-tier HCAs (empty under TransportTCP); see
// ServerDrivers for why chaos targets stop here.
func (s *Service) ServerHCAs() []*rc.HCA {
	var out []*rc.HCA
	for _, h := range s.Hosts[:s.Cfg.ServerHosts] {
		if h.HCA != nil {
			out = append(out, h.HCA)
		}
	}
	return out
}

// Drivers returns every host's NPF driver.
func (s *Service) Drivers() []*core.Driver {
	var out []*core.Driver
	for _, h := range s.Hosts {
		out = append(out, h.Drv)
	}
	return out
}

// Devices returns every Ethernet NIC (empty under TransportRC).
func (s *Service) Devices() []*nic.Device {
	var out []*nic.Device
	for _, h := range s.Hosts {
		if h.Dev != nil {
			out = append(out, h.Dev)
		}
	}
	return out
}

// HCAs returns every HCA (empty under TransportTCP).
func (s *Service) HCAs() []*rc.HCA {
	var out []*rc.HCA
	for _, h := range s.Hosts {
		if h.HCA != nil {
			out = append(out, h.HCA)
		}
	}
	return out
}

// NPFs sums network page faults across every host driver.
func (s *Service) NPFs() uint64 {
	var n uint64
	for _, h := range s.Hosts {
		n += h.Drv.NPFs.N
	}
	return n
}

// GroupEvictions sums reclaim evictions across the per-shard groups.
func (s *Service) GroupEvictions() uint64 {
	var n uint64
	for _, g := range s.Groups() {
		n += g.Evictions.N
	}
	return n
}

// MajorFaults sums major (swap-in) faults across the value arenas.
func (s *Service) MajorFaults() uint64 {
	var n uint64
	for _, as := range s.Spaces() {
		n += as.MajorFaults.N
	}
	return n
}

// ServerNode returns the data-path fabric node of host i (for link chaos).
func (s *Service) ServerNode(i int) fabric.NodeID {
	h := s.Hosts[i]
	if h.HCA != nil {
		return h.HCA.Node
	}
	return h.Dev.Node
}

// SetHostDown severs (or restores) host i entirely: both its data-path
// link and its management-network port. This is the "host wedged /
// top-of-rack died" fault the failover machinery exists for; downing only
// the data link (Net.SetLinkDown on ServerNode) models a partition the
// failure detector cannot see.
func (s *Service) SetHostDown(i int, down bool) {
	s.Net.SetLinkDown(s.ServerNode(i), down)
	s.Net.SetLinkDown(s.Hosts[i].mgmt, down)
}
