package kv

import (
	"fmt"
	"testing"

	"npf/internal/fabric"
	"npf/internal/sim"
	"npf/internal/trace"
)

func newTestService(t *testing.T, seed int64, cfg Config) (*sim.Engine, *Service) {
	t.Helper()
	eng := sim.NewEngine(seed)
	eng.MaxEvents = 200_000_000
	fcfg := fabric.DefaultEthernet()
	if cfg.Transport == TransportRC {
		fcfg = fabric.DefaultInfiniBand()
	}
	net := fabric.New(eng, fcfg)
	return eng, New(eng, net, trace.New(eng), cfg)
}

func runWorkload(t *testing.T, eng *sim.Engine, svc *Service, wcfg WorkloadConfig) *Workload {
	t.Helper()
	wl := svc.NewWorkload(wcfg)
	wl.OnDone = func() { svc.Stop() }
	wl.Start()
	eng.Run()
	if wl.Completed() != wl.Cfg.TargetOps {
		t.Fatalf("completed %d of %d ops", wl.Completed(), wl.Cfg.TargetOps)
	}
	return wl
}

func TestServiceBasicTCP(t *testing.T) {
	eng, svc := newTestService(t, 1, Config{})
	wl := runWorkload(t, eng, svc, WorkloadConfig{TargetOps: 1500, Prepopulate: true})
	if wl.Hits.N == 0 {
		t.Fatal("no get hits despite prepopulation")
	}
	if bad := svc.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("consistency violations: %v", bad)
	}
	if wl.Lat.Count() != 1500 {
		t.Fatalf("latency histogram has %d samples, want 1500", wl.Lat.Count())
	}
}

func TestServiceBasicRC(t *testing.T) {
	eng, svc := newTestService(t, 1, Config{Transport: TransportRC})
	wl := runWorkload(t, eng, svc, WorkloadConfig{TargetOps: 1500, Prepopulate: true})
	if wl.Hits.N == 0 {
		t.Fatal("no get hits despite prepopulation")
	}
	if bad := svc.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("consistency violations: %v", bad)
	}
}

func TestFrontCacheServesHotKeys(t *testing.T) {
	eng, svc := newTestService(t, 3, Config{})
	wl := runWorkload(t, eng, svc, WorkloadConfig{
		TargetOps: 1200, Prepopulate: true, FrontCacheEntries: 64, ZipfS: 1.3,
	})
	if wl.FrontHits.N == 0 {
		t.Fatal("front cache never hit under a Zipf-1.3 key stream")
	}
}

func TestRegPolicies(t *testing.T) {
	for _, reg := range []RegPolicy{RegODP, RegPinDown, RegPinned} {
		t.Run(reg.String(), func(t *testing.T) {
			eng, svc := newTestService(t, 5, Config{Reg: reg})
			runWorkload(t, eng, svc, WorkloadConfig{TargetOps: 800, Prepopulate: true})
			if bad := svc.CheckConsistency(); len(bad) != 0 {
				t.Fatalf("consistency violations: %v", bad)
			}
		})
	}
}

// fingerprint summarizes everything observable about a run; equal seeds
// must produce equal fingerprints regardless of host conditions.
func fingerprint(eng *sim.Engine, svc *Service, wl *Workload) string {
	return fmt.Sprintf("exec=%d now=%d digest=%x ops=%d p50=%.3f p99=%.3f fo=%d rt=%d shed=%d resync=%d redir=%d",
		eng.Executed(), eng.Now(), svc.Tracer.Digest(),
		wl.Completed(), wl.Lat.Percentile(50), wl.Lat.Percentile(99),
		svc.Failovers.N, svc.ReplTimeouts.N, svc.Shed.N, svc.Resyncs.N, svc.Redirects.N)
}

func TestSameSeedDeterminism(t *testing.T) {
	for _, tr := range []Transport{TransportTCP, TransportRC} {
		t.Run(tr.String(), func(t *testing.T) {
			var prints []string
			for run := 0; run < 2; run++ {
				eng, svc := newTestService(t, 42, Config{Transport: tr})
				wl := runWorkload(t, eng, svc, WorkloadConfig{
					TargetOps: 1000, Prepopulate: true, FrontCacheEntries: 32,
				})
				prints = append(prints, fingerprint(eng, svc, wl))
			}
			if prints[0] != prints[1] {
				t.Fatalf("same-seed runs diverged:\n%s\n%s", prints[0], prints[1])
			}
		})
	}
}

func TestFailover(t *testing.T) {
	eng, svc := newTestService(t, 7, Config{
		HeartbeatEvery: 2 * sim.Millisecond,
		FailoverAfter:  8 * sim.Millisecond,
		ReplTimeout:    5 * sim.Millisecond,
	})
	victim := svc.Placement().PrimaryHost(0)
	wl := svc.NewWorkload(WorkloadConfig{
		TargetOps: 4000, Prepopulate: true,
		OpenLoop: true, ArrivalRate: 10_000, Clients: 4,
		RequestTimeout: 10 * sim.Millisecond,
	})
	wl.OnDone = func() {
		// Leave the control plane running long enough for the revived host
		// to demote and resync, then park it.
		eng.After(500*sim.Millisecond, func() { svc.Stop() })
	}
	wl.Start()
	eng.After(20*sim.Millisecond, func() {
		svc.SetHostDown(victim, true)
	})
	eng.After(120*sim.Millisecond, func() {
		svc.SetHostDown(victim, false)
	})
	eng.Run()
	if wl.Completed() != wl.Cfg.TargetOps {
		t.Fatalf("completed %d of %d ops", wl.Completed(), wl.Cfg.TargetOps)
	}
	if svc.Failovers.N == 0 {
		t.Fatal("link-down primary was never failed over")
	}
	// The victim may legitimately reclaim primacy after rejoining (it is
	// first in placement order); what must hold is full convergence:
	// exactly one primary per shard and identical replica state.
	if bad := svc.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("post-failover consistency violations: %v", bad)
	}
}

func TestPlacementProperties(t *testing.T) {
	hosts := []int{0, 1, 2, 3}
	p := NewPlacement(16, 2, hosts)
	counts := make(map[int]int)
	for s := 0; s < 16; s++ {
		set := p.ReplicaHosts(s)
		if len(set) != 2 {
			t.Fatalf("shard %d has %d replicas", s, len(set))
		}
		if set[0] == set[1] {
			t.Fatalf("shard %d replicas collide on host %d", s, set[0])
		}
		if p.PrimaryHost(s) != set[0] {
			t.Fatalf("shard %d primary %d not head of %v", s, p.PrimaryHost(s), set)
		}
		for _, h := range set {
			counts[h]++
		}
	}
	for _, h := range hosts {
		if counts[h] == 0 {
			t.Fatalf("host %d received no shards: %v", h, counts)
		}
	}
	// Pure function of configuration: identical across constructions.
	q := NewPlacement(16, 2, hosts)
	for s := 0; s < 16; s++ {
		a, b := p.ReplicaHosts(s), q.ReplicaHosts(s)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("placement not deterministic: shard %d %v vs %v", s, a, b)
		}
	}
	// Promote bumps the epoch and reorders nothing.
	if !p.Promote(0, p.ReplicaHosts(0)[1]) {
		t.Fatal("promote of backup reported no change")
	}
	if p.Epoch(0) != 1 {
		t.Fatalf("epoch after promote = %d, want 1", p.Epoch(0))
	}
	if p.Promote(0, p.PrimaryHost(0)) {
		t.Fatal("re-promoting current primary reported a change")
	}
}
