// Package tcp implements the transport the paper's Ethernet IOusers run
// over their direct channels: a TCP stack in the spirit of lwIP/Linux with
// slow start, congestion avoidance, retransmission timeouts with
// exponential backoff, duplicate-ACK fast retransmit, SYN retries, and
// abort after too many retries.
//
// These mechanisms — not raw bandwidth — are what make dropping
// rNPF-faulting packets catastrophic (§5's cold-ring problem): drops look
// like congestion, the sender backs off exactly when the receiver needs
// more packets to page its ring in, and the two sides converge to a
// near-deadlock or a declared connection failure.
//
// The stack is message-oriented at the API (applications send and receive
// framed messages) but fully byte-stream sequenced on the wire, so loss,
// reordering, and partial delivery behave like real TCP.
package tcp

import (
	"errors"
	"fmt"

	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/sim"
	"npf/internal/trace"
)

// ErrTooManyRetries is reported to the application when the stack gives up
// on a connection (§5: "the TCP maximal retry number is exceeded and the
// stack announces a failure to the application layer").
var ErrTooManyRetries = errors.New("tcp: connection failed: too many retransmissions")

// Config holds stack parameters; defaults mirror the paper-era Linux 3.x
// values that shape Figure 4.
type Config struct {
	MSS             int      // payload bytes per segment
	HeaderBytes     int      // wire overhead per segment
	RWndBytes       int      // receiver window (fixed)
	InitialCwndSegs int      // IW (Linux 3.x: 10)
	InitRTO         sim.Time // RFC 6298 initial RTO
	MinRTO          sim.Time
	MaxRTO          sim.Time
	MaxRetries      int // data retransmissions before abort (Linux tcp_retries2)
	SynRTO          sim.Time
	SynMaxRetries   int // Linux tcp_syn_retries
	TxRingEntries   int // transmit buffer ring size
}

// DefaultConfig returns Linux-3.x-like parameters with a 4000-byte MSS
// (jumbo frames keep simulated event counts tractable; see DESIGN.md §6).
func DefaultConfig() Config {
	return Config{
		MSS:             4000,
		HeaderBytes:     66,
		RWndBytes:       1 << 20,
		InitialCwndSegs: 10,
		InitRTO:         sim.Second,
		MinRTO:          200 * sim.Millisecond,
		MaxRTO:          60 * sim.Second,
		MaxRetries:      15,
		SynRTO:          sim.Second,
		SynMaxRetries:   6,
		TxRingEntries:   512,
	}
}

type segKind int

const (
	segSyn segKind = iota
	segSynAck
	segData // carries Len payload bytes (Len may be 0 for a pure ACK)
)

// msgEnd marks an application message whose last byte is at stream offset
// EndOff-1; its payload is delivered when the receiver's in-order point
// passes EndOff.
type msgEnd struct {
	EndOff  uint64
	Len     int
	Payload any
}

// segment is the wire unit.
type segment struct {
	Conn     uint64
	Kind     segKind
	Seq      uint64
	Len      int
	Ack      uint64
	Msgs     []msgEnd
	SrcNode  fabric.NodeID
	SrcFlow  fabric.FlowID
	ListenID uint64 // SYN: which listener on the peer stack
}

// ConnState is the connection lifecycle state.
type ConnState int

const (
	StateSynSent ConnState = iota
	StateEstablished
	StateFailed
	StateClosed
)

func (s ConnState) String() string {
	switch s {
	case StateSynSent:
		return "syn-sent"
	case StateEstablished:
		return "established"
	case StateFailed:
		return "failed"
	case StateClosed:
		return "closed"
	}
	return "invalid"
}

// Stack is one TCP endpoint bound to a NIC channel. It owns the channel's
// receive ring buffers and a transmit buffer ring in the IOuser's address
// space — under ODP these are ordinary unpinned memory and fault on first
// touch (the cold ring).
type Stack struct {
	Cfg Config
	ch  *nic.Channel
	eng *sim.Engine

	conns    map[uint64]*Conn
	nextConn uint64
	listen   func(*Conn)

	rxBufBase mem.VAddr
	txBufBase mem.VAddr
	txNext    int

	// Stats.
	SegsSent    sim.Counter
	SegsRecv    sim.Counter
	Retransmits sim.Counter
	Timeouts    sim.Counter
	FastRetx    sim.Counter
	Failures    sim.Counter

	// Telemetry, inherited from the channel's device at construction (nil
	// when the device is untraced).
	tr        *trace.Tracer
	cRetx     *trace.Counter
	cTimeouts *trace.Counter
	cFastRetx *trace.Counter
	cFail     *trace.Counter
}

// NewStack builds a stack over ch and posts the full receive ring. Buffers
// are allocated (mapped, not touched) from the channel's address space.
func NewStack(ch *nic.Channel, cfg Config) *Stack {
	s := &Stack{
		Cfg:   cfg,
		ch:    ch,
		eng:   ch.Dev.Eng,
		conns: make(map[uint64]*Conn),
	}
	s.tr = ch.Dev.Tracer
	s.cRetx = s.tr.Counter("tcp.retransmits")
	s.cTimeouts = s.tr.Counter("tcp.timeouts")
	s.cFastRetx = s.tr.Counter("tcp.fast_retx")
	s.cFail = s.tr.Counter("tcp.failures")
	s.tr.Probe("tcp.inflight_segs", func() float64 {
		sum := 0.0
		//npf:orderinvariant — summing per-connection windows is commutative
		for _, c := range s.conns {
			sum += float64(len(c.inflight))
		}
		return sum
	})
	bufBytes := int64(mem.PageSize)
	ringSize := ch.Rx.Size()
	s.rxBufBase = ch.AS.MapBytes(int64(ringSize) * bufBytes)
	s.txBufBase = ch.AS.MapBytes(int64(cfg.TxRingEntries) * bufBytes)
	ch.SetRxHandler(s)
	ch.SetTxHandler(s)
	for i := 0; i < ringSize; i++ {
		ch.Rx.PostRx(nic.Descriptor{Buffer: s.rxBuf(int64(i)), Len: mem.PageSize})
	}
	return s
}

// Channel returns the underlying NIC channel.
func (s *Stack) Channel() *nic.Channel { return s.ch }

// RxBuffers returns the base address and byte length of the receive-ring
// buffer region (used by pinning strategies and fault injectors).
func (s *Stack) RxBuffers() (mem.VAddr, int64) {
	return s.rxBufBase, int64(s.ch.Rx.Size()) * mem.PageSize
}

// TxBuffers returns the transmit buffer region.
func (s *Stack) TxBuffers() (mem.VAddr, int64) {
	return s.txBufBase, int64(s.Cfg.TxRingEntries) * mem.PageSize
}

func (s *Stack) rxBuf(i int64) mem.VAddr {
	return s.rxBufBase + mem.VAddr(i%int64(s.ch.Rx.Size()))*mem.PageSize
}

// Listen installs the accept callback for incoming connections.
func (s *Stack) Listen(fn func(*Conn)) { s.listen = fn }

// Dial opens a connection to the stack listening on (peerNode, peerFlow).
// The returned Conn is usable immediately: writes queue until the handshake
// completes.
func (s *Stack) Dial(peerNode fabric.NodeID, peerFlow fabric.FlowID) *Conn {
	s.nextConn++
	// Connection ids must be unique across every stack in the simulation:
	// combine the fabric node, the channel flow, and a local counter.
	id := uint64(s.ch.Dev.Node)<<48 | uint64(s.ch.Flow)<<32 | s.nextConn
	c := newConn(s, id, peerNode, peerFlow, StateSynSent)
	s.conns[id] = c
	c.sendSyn()
	return c
}

// RxComplete implements nic.RxHandler.
func (s *Stack) RxComplete(ch *nic.Channel, comps []nic.RxCompletion) {
	for _, comp := range comps {
		s.SegsRecv.Inc()
		seg := comp.Payload.(*segment)
		s.handleSegment(seg)
		// lwIP-style fixed buffers: recycle the completed buffer.
		ch.Rx.PostRx(nic.Descriptor{Buffer: s.rxBuf(comp.Index), Len: mem.PageSize})
	}
}

// TxComplete implements nic.TxHandler. Buffers are recycled round-robin;
// nothing to do.
func (s *Stack) TxComplete(ch *nic.Channel, comps []nic.TxCompletion) {}

func (s *Stack) handleSegment(seg *segment) {
	switch seg.Kind {
	case segSyn:
		c, ok := s.conns[seg.Conn]
		if !ok {
			if s.listen == nil {
				return
			}
			c = newConn(s, seg.Conn, seg.SrcNode, seg.SrcFlow, StateEstablished)
			s.conns[seg.Conn] = c
			s.listen(c)
		}
		// Respond to every SYN, including duplicates: the client may have
		// lost our SYN-ACK to a cold ring.
		c.sendSegment(&segment{Conn: c.id, Kind: segSynAck})
	case segSynAck:
		c, ok := s.conns[seg.Conn]
		if !ok || c.state != StateSynSent {
			return
		}
		c.establish()
	case segData:
		c, ok := s.conns[seg.Conn]
		if !ok || c.state == StateFailed || c.state == StateClosed {
			return
		}
		c.handleData(seg)
	}
}

// transmit posts one segment to the NIC. The TX buffer may fault (send-side
// NPF) under ODP; the NIC suspends and the driver resolves it.
func (s *Stack) transmit(peerNode fabric.NodeID, peerFlow fabric.FlowID, seg *segment) {
	s.SegsSent.Inc()
	seg.SrcNode = s.ch.Dev.Node
	seg.SrcFlow = s.ch.Flow
	buf := s.txBufBase + mem.VAddr(s.txNext%s.Cfg.TxRingEntries)*mem.PageSize
	s.txNext++
	s.ch.Tx.Post(nic.TxDesc{
		Buffer:  buf,
		Len:     seg.Len + s.Cfg.HeaderBytes,
		Dst:     peerNode,
		DstFlow: peerFlow,
		Payload: seg,
	})
}

func (s *Stack) String() string { return fmt.Sprintf("tcp-stack(%s)", s.ch.Name) }
