package tcp

import (
	"testing"

	"npf/internal/nic"
	"npf/internal/sim"
)

func TestCloseStopsConnection(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 64, 0, true)
	received := 0
	p.server.Listen(func(c *Conn) {
		c.OnMessage = func(payload any, n int) { received++ }
	})
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	c.Send(4000, 1)
	p.eng.Run()
	if received != 1 {
		t.Fatalf("received %d", received)
	}
	c.Close()
	if c.State() != StateClosed {
		t.Fatalf("state = %v", c.State())
	}
	// Sends after close are dropped; the engine drains with no new events.
	c.Send(4000, 2)
	p.eng.Run()
	if received != 1 {
		t.Fatalf("closed connection delivered data: %d", received)
	}
}

func TestHugeMessageSegmentation(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 256, 0, true)
	var got []int
	p.server.Listen(func(c *Conn) {
		c.OnMessage = func(payload any, n int) { got = append(got, n) }
	})
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	const big = 1 << 20 // 262 segments
	c.Send(big, "huge")
	c.Send(1, "tiny")
	p.eng.Run()
	if len(got) != 2 || got[0] != big || got[1] != 1 {
		t.Fatalf("lengths = %v", got)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 256, 0, true)
	sGot, cGot := 0, 0
	p.server.Listen(func(c *Conn) {
		c.OnMessage = func(payload any, n int) {
			sGot++
			c.Send(4000, payload) // echo
		}
	})
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	c.OnMessage = func(payload any, n int) { cGot++ }
	for i := 0; i < 100; i++ {
		c.Send(4000, i)
	}
	p.eng.Run()
	if sGot != 100 || cGot != 100 {
		t.Fatalf("server=%d client=%d", sGot, cGot)
	}
}

func TestLossBothDirections(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 256, 0.03, true)
	sGot, cGot := 0, 0
	p.server.Listen(func(c *Conn) {
		c.OnMessage = func(payload any, n int) {
			sGot++
			c.Send(2000, payload)
		}
	})
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	c.OnMessage = func(payload any, n int) { cGot++ }
	for i := 0; i < 100; i++ {
		c.Send(2000, i)
	}
	p.eng.Run()
	if sGot != 100 || cGot != 100 {
		t.Fatalf("under loss: server=%d client=%d", sGot, cGot)
	}
}

func TestRTTEstimatorConverges(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 256, 0, true)
	p.server.Listen(func(c *Conn) {})
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	for i := 0; i < 50; i++ {
		c.Send(4000, i)
	}
	p.eng.Run()
	if c.srtt == 0 {
		t.Fatal("no RTT samples taken")
	}
	// RTT on this fabric is tens of microseconds; RTO must collapse to
	// the floor.
	if c.rto != p.client.Cfg.MinRTO {
		t.Fatalf("rto = %v, want MinRTO %v", c.rto, p.client.Cfg.MinRTO)
	}
}

func TestStackCountersConsistent(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 256, 0, true)
	received := 0
	p.server.Listen(func(c *Conn) {
		c.OnMessage = func(payload any, n int) { received++ }
	})
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	for i := 0; i < 20; i++ {
		c.Send(4000, i)
	}
	p.eng.Run()
	if p.client.SegsSent.N == 0 || p.server.SegsRecv.N == 0 {
		t.Fatal("counters not incremented")
	}
	// Lossless: everything the client sent arrived somewhere (server data
	// segments + handshake), and no retransmissions happened.
	if p.client.Retransmits.N != 0 || p.client.Timeouts.N != 0 {
		t.Fatalf("retx=%d timeouts=%d on lossless fabric",
			p.client.Retransmits.N, p.client.Timeouts.N)
	}
}

func TestSimMaxEventsGuard(t *testing.T) {
	eng := sim.NewEngine(1)
	eng.MaxEvents = 100
	var loop func()
	loop = func() { eng.After(1, loop) }
	loop()
	defer func() {
		if recover() == nil {
			t.Fatal("runaway simulation not caught")
		}
	}()
	eng.Run()
}
