package tcp

import (
	"npf/internal/fabric"
	"npf/internal/sim"
	"npf/internal/trace"
)

// Conn is one TCP connection. Applications write framed messages with Send
// and receive them via OnMessage; on the wire everything is a sequenced
// byte stream.
type Conn struct {
	stack    *Stack
	id       uint64
	peerNode fabric.NodeID
	peerFlow fabric.FlowID
	state    ConnState

	// Application callbacks.
	OnMessage func(payload any, length int)
	OnConnect func()
	OnFail    func(err error)

	// Sender state (bytes).
	sndUna   uint64
	sndNxt   uint64
	sndMax   uint64 // highest sequence ever transmitted (survives rewinds)
	written  uint64
	cwnd     int
	ssthresh int
	sendQ    []*segment // segmented at Send() time, not yet transmitted
	inflight []*segment
	dupAcks  int

	// RTO state.
	srtt, rttvar sim.Time
	rto          sim.Time
	retries      int
	synRetries   int
	timer        sim.EventID
	timerArmed   bool
	// rttSeq/rttSentAt sample one segment per window for RTT estimation
	// (Karn's algorithm: never sample retransmitted data).
	rttSeq    uint64
	rttSentAt sim.Time
	rttValid  bool

	// Receiver state.
	rcvNxt uint64
	ooo    map[uint64]*segment

	// retxSpan covers one retransmission episode: opened at the first RTO,
	// closed when new data is finally acknowledged (or the connection
	// fails). Under the cold-ring problem these stretch to seconds.
	// retxStart is its open time, for the flight-recorder context event.
	retxSpan  trace.SpanID
	retxStart sim.Time
}

func newConn(s *Stack, id uint64, peerNode fabric.NodeID, peerFlow fabric.FlowID, st ConnState) *Conn {
	return &Conn{
		stack:    s,
		id:       id,
		peerNode: peerNode,
		peerFlow: peerFlow,
		state:    st,
		cwnd:     s.Cfg.InitialCwndSegs * s.Cfg.MSS,
		ssthresh: s.Cfg.RWndBytes,
		rto:      s.Cfg.InitRTO,
		ooo:      make(map[uint64]*segment),
	}
}

// State returns the connection state.
func (c *Conn) State() ConnState { return c.state }

// ID returns the connection identifier.
func (c *Conn) ID() uint64 { return c.id }

// Close tears the connection down locally (no FIN handshake is modelled).
func (c *Conn) Close() {
	c.state = StateClosed
	c.disarmTimer()
	delete(c.stack.conns, c.id)
}

// Send writes one framed application message of length bytes. The payload
// travels with the segment carrying the message's final byte and is
// delivered to the peer's OnMessage once the stream is contiguous there.
func (c *Conn) Send(length int, payload any) {
	if c.state == StateFailed || c.state == StateClosed {
		return
	}
	mss := c.stack.Cfg.MSS
	remaining := length
	for remaining > 0 {
		chunk := remaining
		if chunk > mss {
			chunk = mss
		}
		seg := &segment{Conn: c.id, Kind: segData, Seq: c.written, Len: chunk}
		c.written += uint64(chunk)
		remaining -= chunk
		if remaining == 0 {
			seg.Msgs = []msgEnd{{EndOff: c.written, Len: length, Payload: payload}}
		}
		c.sendQ = append(c.sendQ, seg)
	}
	if c.state == StateEstablished {
		c.trySend()
	}
}

// ---------------------------------------------------------------------------
// Handshake.

func (c *Conn) sendSyn() {
	c.sendSegment(&segment{Conn: c.id, Kind: segSyn})
	c.armTimer(c.backoff(c.stack.Cfg.SynRTO, c.synRetries), func() {
		if c.state != StateSynSent {
			return
		}
		c.synRetries++
		c.stack.Retransmits.Inc()
		c.stack.cRetx.Inc()
		if c.synRetries > c.stack.Cfg.SynMaxRetries {
			c.fail()
			return
		}
		c.sendSyn()
	})
}

func (c *Conn) establish() {
	c.state = StateEstablished
	c.disarmTimer()
	c.retries = 0
	if c.OnConnect != nil {
		c.OnConnect()
	}
	c.trySend()
}

func (c *Conn) fail() {
	c.state = StateFailed
	c.disarmTimer()
	c.stack.Failures.Inc()
	c.stack.cFail.Inc()
	if c.retxSpan != 0 {
		c.stack.tr.ArgStr(c.retxSpan, "result", "failed")
		c.stack.tr.End(c.retxSpan)
		// Context event: a failed retx episode (B = -1 marks failure).
		c.stack.tr.FaultContext(trace.FSRetx, c.retxStart, c.stack.tr.Now()-c.retxStart, int64(c.id), -1)
		c.retxSpan = 0
	}
	if c.OnFail != nil {
		c.OnFail(ErrTooManyRetries)
	}
}

// ---------------------------------------------------------------------------
// Sender.

func (c *Conn) inflightBytes() int {
	return int(c.sndNxt - c.sndUna)
}

// trySend transmits queued segments within min(cwnd, rwnd).
func (c *Conn) trySend() {
	cfg := c.stack.Cfg
	wnd := c.cwnd
	if wnd > cfg.RWndBytes {
		wnd = cfg.RWndBytes
	}
	sent := false
	for len(c.sendQ) > 0 {
		seg := c.sendQ[0]
		// A rewind may have requeued data that a late ACK then covered.
		if seg.Seq+uint64(seg.Len) <= c.sndUna {
			c.sendQ = c.sendQ[1:]
			continue
		}
		if c.inflightBytes()+seg.Len > wnd {
			break
		}
		c.sendQ = c.sendQ[1:]
		c.inflight = append(c.inflight, seg)
		c.sndNxt = seg.Seq + uint64(seg.Len)
		if c.sndNxt > c.sndMax {
			c.sndMax = c.sndNxt
		}
		if !c.rttValid {
			c.rttSeq = seg.Seq + uint64(seg.Len)
			c.rttSentAt = c.stack.eng.Now()
			c.rttValid = true
		}
		c.sendDataSegment(seg)
		sent = true
	}
	if sent {
		c.ensureRTOTimer()
	}
}

func (c *Conn) sendDataSegment(seg *segment) {
	seg.Ack = c.rcvNxt
	c.stack.transmit(c.peerNode, c.peerFlow, seg)
}

func (c *Conn) sendSegment(seg *segment) {
	seg.Ack = c.rcvNxt
	c.stack.transmit(c.peerNode, c.peerFlow, seg)
}

func (c *Conn) sendAck() {
	c.sendSegment(&segment{Conn: c.id, Kind: segData, Seq: c.sndNxt, Len: 0})
}

// handleAck processes the cumulative acknowledgment on an incoming segment.
func (c *Conn) handleAck(ack uint64) {
	cfg := c.stack.Cfg
	if ack > c.sndMax {
		return // acking data we never sent; ignore
	}
	if ack > c.sndUna {
		// New data acknowledged. A late ACK may land after a rewind, in
		// which case it also moves the (rewound) send point forward.
		c.sndUna = ack
		if c.sndNxt < ack {
			c.sndNxt = ack
		}
		c.dupAcks = 0
		if c.retxSpan != 0 {
			// The episode ends when the peer finally acknowledges new data.
			c.stack.tr.ArgInt(c.retxSpan, "retries", int64(c.retries))
			c.stack.tr.End(c.retxSpan)
			c.stack.tr.FaultContext(trace.FSRetx, c.retxStart, c.stack.tr.Now()-c.retxStart, int64(c.id), int64(c.retries))
			c.retxSpan = 0
		}
		c.retries = 0
		for len(c.inflight) > 0 && c.inflight[0].Seq+uint64(c.inflight[0].Len) <= ack {
			c.inflight = c.inflight[1:]
		}
		// RTT sample (Karn: only if the sampled range is fully acked and
		// was never retransmitted; retransmission invalidates the sample).
		if c.rttValid && ack >= c.rttSeq {
			c.updateRTT(c.stack.eng.Now() - c.rttSentAt)
			c.rttValid = false
		}
		// Congestion window growth.
		if c.cwnd < c.ssthresh {
			c.cwnd += cfg.MSS // slow start
		} else {
			c.cwnd += cfg.MSS * cfg.MSS / c.cwnd // congestion avoidance
		}
		if len(c.inflight) == 0 {
			c.disarmTimer()
		} else {
			c.restartRTOTimer()
		}
		c.trySend()
		return
	}
	if ack == c.sndUna && len(c.inflight) > 0 {
		c.dupAcks++
		if c.dupAcks == 3 {
			// Fast retransmit.
			c.stack.FastRetx.Inc()
			c.stack.cFastRetx.Inc()
			c.stack.Retransmits.Inc()
			c.stack.cRetx.Inc()
			c.ssthresh = max(c.inflightBytes()/2, 2*cfg.MSS)
			c.cwnd = c.ssthresh
			c.rttValid = false
			c.sendDataSegment(c.inflight[0])
			c.restartRTOTimer()
		}
	}
}

func (c *Conn) updateRTT(sample sim.Time) {
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		delta := c.srtt - sample
		if delta < 0 {
			delta = -delta
		}
		c.rttvar = (3*c.rttvar + delta) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.stack.Cfg.MinRTO {
		c.rto = c.stack.Cfg.MinRTO
	}
	if c.rto > c.stack.Cfg.MaxRTO {
		c.rto = c.stack.Cfg.MaxRTO
	}
}

// backoff doubles d n times, capped at MaxRTO.
func (c *Conn) backoff(d sim.Time, n int) sim.Time {
	for i := 0; i < n && d < c.stack.Cfg.MaxRTO; i++ {
		d *= 2
	}
	if d > c.stack.Cfg.MaxRTO {
		d = c.stack.Cfg.MaxRTO
	}
	return d
}

func (c *Conn) ensureRTOTimer() {
	if !c.timerArmed {
		c.restartRTOTimer()
	}
}

func (c *Conn) restartRTOTimer() {
	c.armTimer(c.backoff(c.rto, c.retries), c.onRTO)
}

func (c *Conn) onRTO() {
	if c.state != StateEstablished || len(c.inflight) == 0 {
		return
	}
	cfg := c.stack.Cfg
	c.stack.Timeouts.Inc()
	c.stack.cTimeouts.Inc()
	c.retries++
	if c.retries > cfg.MaxRetries {
		c.fail()
		return
	}
	if c.stack.tr.Enabled() && c.retxSpan == 0 {
		c.retxSpan = c.stack.tr.Begin(0, "tcp", "retx-episode")
		c.stack.tr.ArgInt(c.retxSpan, "conn", int64(c.id))
		c.retxStart = c.stack.tr.Now()
	}
	// Loss is taken as congestion: collapse the window, go back to the
	// first unacked segment (go-back-N), and back the timer off.
	c.ssthresh = max(c.inflightBytes()/2, 2*cfg.MSS)
	c.cwnd = cfg.MSS
	c.dupAcks = 0
	c.rttValid = false
	// Requeue all inflight segments ahead of unsent data.
	c.sendQ = append(append([]*segment{}, c.inflight...), c.sendQ...)
	c.inflight = nil
	c.sndNxt = c.sndUna
	c.stack.Retransmits.Inc()
	c.stack.cRetx.Inc()
	c.trySend()
	// trySend arms the timer with the backed-off RTO.
	if len(c.inflight) > 0 {
		c.restartRTOTimer()
	}
}

func (c *Conn) armTimer(d sim.Time, fn func()) {
	c.disarmTimer()
	c.timerArmed = true
	c.timer = c.stack.eng.After(d, func() {
		c.timerArmed = false
		fn()
	})
}

func (c *Conn) disarmTimer() {
	if c.timerArmed {
		c.stack.eng.Cancel(c.timer)
		c.timerArmed = false
	}
}

// ---------------------------------------------------------------------------
// Receiver.

func (c *Conn) handleData(seg *segment) {
	c.handleAck(seg.Ack)
	if seg.Len == 0 {
		return // pure ACK
	}
	switch {
	case seg.Seq == c.rcvNxt:
		c.consume(seg)
		// Drain any out-of-order segments that are now contiguous.
		for {
			next, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.consume(next)
		}
		c.sendAck()
	case seg.Seq > c.rcvNxt:
		// Hole: buffer and send a duplicate ACK.
		c.ooo[seg.Seq] = seg
		c.sendAck()
	default:
		// Already received (retransmission overlap): re-ack.
		c.sendAck()
	}
}

func (c *Conn) consume(seg *segment) {
	c.rcvNxt = seg.Seq + uint64(seg.Len)
	if c.OnMessage != nil {
		for _, m := range seg.Msgs {
			c.OnMessage(m.Payload, m.Len)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
