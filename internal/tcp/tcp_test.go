package tcp

import (
	"errors"
	"testing"

	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/sim"
)

// autoDriver is a minimal IOprovider: it resolves every NPF by faulting the
// pages in and mapping them, merging backed-up packets.
type autoDriver struct{}

func (autoDriver) HandleRxNPF(entries []nic.RxNPFEntry) {
	for _, e := range entries {
		ring := e.Channel.Rx
		missing := e.Missing
		if missing == nil && e.Packet != nil {
			// Ring-full park: wait for the IOuser to post, then retry.
			entry := e
			ring.WatchTail(func() {
				ring.WatchTail(nil)
				autoDriver{}.HandleRxNPF([]nic.RxNPFEntry{entry})
			})
			continue
		}
		for _, pn := range missing {
			if _, err := e.Channel.AS.TouchPages(pn, 1, true); err != nil {
				panic(err)
			}
			e.Channel.Domain.Map(pn, 1)
		}
		if e.Packet == nil {
			ring.ClearInflight(e.Index)
			continue
		}
		ring.FillResolved(e.Index, e.Packet)
		ring.ResolveRNPF(e.BitIndex)
	}
}

func (autoDriver) HandleTxNPF(ev nic.TxNPF) {
	for _, pn := range ev.Missing {
		if _, err := ev.Channel.AS.TouchPages(pn, 1, false); err != nil {
			panic(err)
		}
		ev.Channel.Domain.Map(pn, 1)
	}
	ev.Resume()
}

type pair struct {
	eng            *sim.Engine
	net            *fabric.Network
	m              *mem.Machine
	server, client *Stack
}

// newPair builds server+client stacks. The server ring uses serverPolicy
// and starts cold unless warmed; the client is always warmed (the paper's
// client machines are unmodified).
func newPair(t *testing.T, serverPolicy nic.FaultPolicy, ringSize int, lossProb float64, warmServer bool) *pair {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := fabric.DefaultEthernet()
	cfg.LossProbability = lossProb
	net := fabric.New(eng, cfg)
	m := mem.NewMachine(eng, 8<<30)

	mk := func(name string, policy nic.FaultPolicy) *Stack {
		dcfg := nic.DefaultConfig()
		dcfg.FirmwareJitterSigma = 0
		dev := nic.NewDevice(eng, net, dcfg)
		dev.SetNPFSink(autoDriver{})
		as := m.NewAddressSpace(name, nil)
		ch := dev.NewChannel(name, as, ringSize, policy, ringSize)
		return NewStack(ch, DefaultConfig())
	}
	p := &pair{eng: eng, net: net, m: m}
	p.server = mk("server", serverPolicy)
	p.client = mk("client", nic.PolicyPinned)
	warm(p.client)
	if warmServer {
		warm(p.server)
	}
	return p
}

// warm pre-faults and maps a stack's RX and TX buffer regions.
func warm(s *Stack) {
	rxBase, rxLen := s.RxBuffers()
	txBase, txLen := s.TxBuffers()
	for _, r := range []struct {
		base mem.VAddr
		n    int64
	}{{rxBase, rxLen}, {txBase, txLen}} {
		pages := int(r.n / mem.PageSize)
		if _, err := s.ch.AS.TouchPages(r.base.Page(), pages, true); err != nil {
			panic(err)
		}
		s.ch.Domain.Map(r.base.Page(), pages)
	}
}

func TestHandshakeAndEcho(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 64, 0, true)
	var serverGot, clientGot []any
	p.server.Listen(func(c *Conn) {
		c.OnMessage = func(payload any, n int) {
			serverGot = append(serverGot, payload)
			c.Send(100, "reply:"+payload.(string))
		}
	})
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	c.OnMessage = func(payload any, n int) { clientGot = append(clientGot, payload) }
	connected := false
	c.OnConnect = func() { connected = true }
	c.Send(200, "hello")
	p.eng.Run()
	if !connected {
		t.Fatal("never connected")
	}
	if len(serverGot) != 1 || serverGot[0] != "hello" {
		t.Fatalf("server got %v", serverGot)
	}
	if len(clientGot) != 1 || clientGot[0] != "reply:hello" {
		t.Fatalf("client got %v", clientGot)
	}
}

func TestLargeMessagesInOrder(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 256, 0, true)
	var got []int
	var lens []int
	p.server.Listen(func(c *Conn) {
		c.OnMessage = func(payload any, n int) {
			got = append(got, payload.(int))
			lens = append(lens, n)
		}
	})
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	const n = 50
	for i := 0; i < n; i++ {
		c.Send(10000, i) // 3 segments each
	}
	p.eng.Run()
	if len(got) != n {
		t.Fatalf("delivered %d/%d", len(got), n)
	}
	for i, v := range got {
		if v != i || lens[i] != 10000 {
			t.Fatalf("message %d = %d (len %d)", i, v, lens[i])
		}
	}
	if p.client.Retransmits.N != 0 {
		t.Fatalf("lossless run retransmitted %d times", p.client.Retransmits.N)
	}
}

func TestThroughputApproachesLineRate(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 256, 0, true)
	var lastAt sim.Time
	received := 0
	p.server.Listen(func(c *Conn) {
		c.OnMessage = func(payload any, n int) {
			received++
			lastAt = p.eng.Now()
		}
	})
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	const msg = 64 << 10
	const count = 100
	for i := 0; i < count; i++ {
		c.Send(msg, i)
	}
	p.eng.Run()
	if received != count {
		t.Fatalf("received %d/%d", received, count)
	}
	gbps := float64(count*msg) * 8 / lastAt.Seconds() / 1e9
	// 12 Gb/s line rate; slow start and header overhead cost a bit.
	if gbps < 7 || gbps > 12 {
		t.Fatalf("throughput = %.2f Gb/s, want near 12", gbps)
	}
}

func TestLossRecovery(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 256, 0.02, true)
	var got []int
	p.server.Listen(func(c *Conn) {
		c.OnMessage = func(payload any, n int) { got = append(got, payload.(int)) }
	})
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	const n = 200
	for i := 0; i < n; i++ {
		c.Send(4000, i)
	}
	p.eng.Run()
	if len(got) != n {
		t.Fatalf("delivered %d/%d under 2%% loss", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordered delivery at %d: %d", i, v)
		}
	}
	if p.client.Retransmits.N == 0 {
		t.Fatal("no retransmissions under loss?")
	}
}

func TestFastRetransmit(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 256, 0.05, true)
	received := 0
	p.server.Listen(func(c *Conn) {
		c.OnMessage = func(payload any, n int) { received++ }
	})
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	for i := 0; i < 300; i++ {
		c.Send(4000, i)
	}
	p.eng.Run()
	if received != 300 {
		t.Fatalf("received %d/300", received)
	}
	if p.client.FastRetx.N == 0 {
		t.Fatal("expected at least one fast retransmit with 5% loss and deep windows")
	}
}

func TestRTOBackoffAndRecovery(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 64, 0, true)
	received := 0
	p.server.Listen(func(c *Conn) {
		c.OnMessage = func(payload any, n int) { received++ }
	})
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	// Let the handshake finish, then black-hole the server for 5 seconds.
	p.eng.At(10*sim.Millisecond, func() {
		p.net.SetBlackhole(p.server.ch.Dev.Node, true)
		c.Send(4000, "x")
	})
	p.eng.At(5*sim.Second+10*sim.Millisecond, func() {
		p.net.SetBlackhole(p.server.ch.Dev.Node, false)
	})
	p.eng.Run()
	if received != 1 {
		t.Fatalf("received %d, want 1 after recovery", received)
	}
	if p.client.Timeouts.N < 2 {
		t.Fatalf("timeouts = %d, want >=2 (exponential backoff rounds)", p.client.Timeouts.N)
	}
	if c.State() != StateEstablished {
		t.Fatalf("state = %v", c.State())
	}
}

func TestConnectionFailsAfterMaxRetries(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 64, 0, true)
	p.server.Listen(func(c *Conn) {})
	// Shrink retry budget so the test completes quickly.
	p.client.Cfg.MaxRetries = 4
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	var failure error
	c.OnFail = func(err error) { failure = err }
	p.eng.At(10*sim.Millisecond, func() {
		p.net.SetBlackhole(p.server.ch.Dev.Node, true)
		c.Send(4000, "doomed")
	})
	p.eng.Run()
	if !errors.Is(failure, ErrTooManyRetries) {
		t.Fatalf("failure = %v", failure)
	}
	if c.State() != StateFailed {
		t.Fatalf("state = %v", c.State())
	}
}

func TestSynRetryThenConnect(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 64, 0, true)
	p.server.Listen(func(c *Conn) {})
	p.net.SetBlackhole(p.server.ch.Dev.Node, true)
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	var connectedAt sim.Time
	c.OnConnect = func() { connectedAt = p.eng.Now() }
	p.eng.At(2500*sim.Millisecond, func() { p.net.SetBlackhole(p.server.ch.Dev.Node, false) })
	p.eng.Run()
	if c.State() != StateEstablished {
		t.Fatalf("state = %v", c.State())
	}
	// SYN at 0 and 1s lost; the 3s retry lands (1s + 2s backoff).
	if connectedAt < 2900*sim.Millisecond || connectedAt > 3500*sim.Millisecond {
		t.Fatalf("connected at %v, want ≈3s (SYN backoff)", connectedAt)
	}
}

func TestSynGivesUp(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 64, 0, true)
	p.client.Cfg.SynMaxRetries = 2
	p.net.SetBlackhole(p.server.ch.Dev.Node, true)
	c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	var failed bool
	c.OnFail = func(error) { failed = true }
	p.eng.Run()
	if !failed || c.State() != StateFailed {
		t.Fatalf("failed=%v state=%v", failed, c.State())
	}
}

func TestColdRingDropVsBackup(t *testing.T) {
	run := func(policy nic.FaultPolicy) (sim.Time, bool) {
		p := newPair(t, policy, 16, 0, false) // cold server ring
		received := 0
		var done sim.Time
		p.server.Listen(func(c *Conn) {
			c.OnMessage = func(payload any, n int) {
				received++
				if received == 20 {
					done = p.eng.Now()
				}
			}
		})
		c := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
		for i := 0; i < 20; i++ {
			c.Send(4000, i)
		}
		p.eng.RunUntil(120 * sim.Second)
		return done, received == 20
	}
	dropTime, dropOK := run(nic.PolicyDrop)
	backupTime, backupOK := run(nic.PolicyBackup)
	if !backupOK {
		t.Fatal("backup ring failed to deliver on a cold ring")
	}
	if backupTime > sim.Second {
		t.Fatalf("backup cold-ring time = %v, want well under a second", backupTime)
	}
	if !dropOK {
		// Acceptable: with drop the connection may be starved that long.
		t.Logf("drop policy did not finish within 120s (cold-ring deadlock)")
		return
	}
	if dropTime < 10*backupTime {
		t.Fatalf("drop=%v backup=%v: drop should be at least an order of magnitude slower",
			dropTime, backupTime)
	}
}

func TestTwoConnectionsInterleave(t *testing.T) {
	p := newPair(t, nic.PolicyPinned, 256, 0, true)
	got := map[uint64][]int{}
	p.server.Listen(func(c *Conn) {
		id := c.ID()
		c.OnMessage = func(payload any, n int) {
			got[id] = append(got[id], payload.(int))
		}
	})
	c1 := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	c2 := p.client.Dial(p.server.ch.Dev.Node, p.server.ch.Flow)
	for i := 0; i < 30; i++ {
		c1.Send(4000, i)
		c2.Send(4000, 1000+i)
	}
	p.eng.Run()
	if len(got) != 2 {
		t.Fatalf("connections seen: %d", len(got))
	}
	for id, msgs := range got {
		if len(msgs) != 30 {
			t.Fatalf("conn %d got %d messages", id, len(msgs))
		}
		for i := 1; i < len(msgs); i++ {
			if msgs[i] != msgs[i-1]+1 {
				t.Fatalf("conn %d out of order: %v", id, msgs)
			}
		}
	}
}
