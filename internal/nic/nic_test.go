package nic

import (
	"testing"
	"testing/quick"

	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/sim"
)

// testEnv wires a device to a machine and one channel, with a scripted
// driver standing in for internal/core.
type testEnv struct {
	eng *sim.Engine
	net *fabric.Network
	m   *mem.Machine
	dev *Device
	as  *mem.AddressSpace
	ch  *Channel
	drv *testDriver

	completions []RxCompletion
	txDone      []TxCompletion
}

func (e *testEnv) RxComplete(ch *Channel, comps []RxCompletion) {
	e.completions = append(e.completions, comps...)
}

func (e *testEnv) TxComplete(ch *Channel, comps []TxCompletion) {
	e.txDone = append(e.txDone, comps...)
}

// testDriver resolves NPFs immediately: fault pages in, map them, merge
// parked packets.
type testDriver struct {
	env      *testEnv
	rxEvents int
	txEvents int
	// manual, when set, queues events instead of resolving.
	manual  bool
	pending []RxNPFEntry
}

func (d *testDriver) HandleRxNPF(entries []RxNPFEntry) {
	d.rxEvents++
	if d.manual {
		d.pending = append(d.pending, entries...)
		return
	}
	for _, e := range entries {
		d.Resolve(e)
	}
}

func (d *testDriver) Resolve(e RxNPFEntry) {
	ring := e.Channel.Rx
	for _, pn := range e.Missing {
		if _, err := e.Channel.AS.TouchPages(pn, 1, true); err != nil {
			panic(err)
		}
		e.Channel.Domain.Map(pn, 1)
	}
	if e.Packet == nil { // drop policy: pages mapped, packet lost
		ring.ClearInflight(e.Index)
		return
	}
	ring.FillResolved(e.Index, e.Packet)
	ring.ResolveRNPF(e.BitIndex)
}

func (d *testDriver) HandleTxNPF(ev TxNPF) {
	d.txEvents++
	for _, pn := range ev.Missing {
		if _, err := ev.Channel.AS.TouchPages(pn, 1, false); err != nil {
			panic(err)
		}
		ev.Channel.Domain.Map(pn, 1)
	}
	ev.Resume()
}

func newEnv(t *testing.T, policy FaultPolicy, ringSize, bmSize int) *testEnv {
	t.Helper()
	eng := sim.NewEngine(1)
	net := fabric.New(eng, fabric.DefaultEthernet())
	cfg := DefaultConfig()
	cfg.FirmwareJitterSigma = 0 // deterministic latencies in unit tests
	e := &testEnv{
		eng: eng,
		net: net,
		m:   mem.NewMachine(eng, 1<<30),
		dev: NewDevice(eng, net, cfg),
	}
	e.as = e.m.NewAddressSpace("iouser", nil)
	e.as.MapBytes(64 << 20)
	e.ch = e.dev.NewChannel("ch0", e.as, ringSize, policy, bmSize)
	e.ch.SetRxHandler(e)
	e.ch.SetTxHandler(e)
	e.drv = &testDriver{env: e}
	e.dev.SetNPFSink(e.drv)
	return e
}

// postRx posts n one-page descriptors starting at page base.
func (e *testEnv) postRx(base mem.PageNum, n int) {
	for i := 0; i < n; i++ {
		e.ch.Rx.PostRx(Descriptor{Buffer: (base + mem.PageNum(i)).Base(), Len: mem.PageSize})
	}
}

// prefault makes pages resident and mapped (warm ring).
func (e *testEnv) prefault(base mem.PageNum, n int) {
	if _, err := e.as.TouchPages(base, n, true); err != nil {
		panic(err)
	}
	e.ch.Domain.Map(base, n)
}

func (e *testEnv) inject(payload any, size int) {
	e.dev.Deliver(&fabric.Packet{Dst: e.dev.Node, Flow: e.ch.Flow, Size: size, Payload: payload})
}

func TestWarmRingDelivery(t *testing.T) {
	e := newEnv(t, PolicyBackup, 8, 8)
	e.prefault(0, 8)
	e.postRx(0, 8)
	for i := 0; i < 5; i++ {
		e.inject(i, 1000)
	}
	e.eng.Run()
	if len(e.completions) != 5 {
		t.Fatalf("completions = %d, want 5", len(e.completions))
	}
	for i, c := range e.completions {
		if c.Payload.(int) != i || c.Index != int64(i) {
			t.Fatalf("completion %d = %+v", i, c)
		}
	}
	if e.dev.RxToBackup.N != 0 {
		t.Fatal("warm ring used backup")
	}
}

func TestDropPolicyLosesPacketButMapsPage(t *testing.T) {
	e := newEnv(t, PolicyDrop, 8, 8)
	e.postRx(0, 8) // cold: nothing resident/mapped
	e.inject("lost", 1000)
	e.eng.Run()
	if len(e.completions) != 0 {
		t.Fatal("dropped packet was delivered")
	}
	if e.dev.RxDroppedFault.N != 1 {
		t.Fatalf("RxDroppedFault = %d", e.dev.RxDroppedFault.N)
	}
	if !e.ch.Domain.Present(0) {
		t.Fatal("driver did not map the faulted page")
	}
	// Retransmission now lands.
	e.inject("retry", 1000)
	e.eng.Run()
	if len(e.completions) != 1 || e.completions[0].Payload != "retry" {
		t.Fatalf("completions = %+v", e.completions)
	}
}

func TestDropPolicyInflightDedupe(t *testing.T) {
	e := newEnv(t, PolicyDrop, 8, 8)
	e.drv.manual = true
	e.postRx(0, 8)
	e.inject("a", 1000)
	e.inject("b", 1000) // same descriptor, fault already in flight
	e.eng.Run()
	if e.drv.rxEvents != 1 {
		t.Fatalf("NPF events = %d, want 1 (bitmap suppression)", e.drv.rxEvents)
	}
	if e.dev.RxDroppedFault.N != 2 {
		t.Fatalf("drops = %d, want 2", e.dev.RxDroppedFault.N)
	}
}

func TestDropPolicyInflightDedupDisabled(t *testing.T) {
	e := newEnv(t, PolicyDrop, 8, 8)
	e.dev.Cfg.DisableInflightBitmap = true
	e.drv.manual = true
	e.postRx(0, 8)
	e.inject("a", 1000)
	e.inject("b", 1000)
	e.eng.Run()
	if e.drv.rxEvents != 2 {
		t.Fatalf("NPF events = %d, want 2 without suppression", e.drv.rxEvents)
	}
}

func TestBackupPolicyPreservesPacket(t *testing.T) {
	e := newEnv(t, PolicyBackup, 8, 8)
	e.postRx(0, 8) // cold
	e.inject("precious", 1000)
	e.eng.Run()
	if len(e.completions) != 1 || e.completions[0].Payload != "precious" {
		t.Fatalf("completions = %+v", e.completions)
	}
	if e.dev.RxToBackup.N != 1 {
		t.Fatalf("RxToBackup = %d", e.dev.RxToBackup.N)
	}
	if e.dev.RxDroppedFault.N != 0 {
		t.Fatal("backup policy dropped")
	}
}

func TestBackupOrderingAcrossFault(t *testing.T) {
	// Packet 0 faults; packets 1 and 2 land in present descriptors while
	// the fault is pending. The IOuser must see 0,1,2 in order, and only
	// after the fault resolves.
	e := newEnv(t, PolicyBackup, 8, 8)
	e.drv.manual = true
	e.prefault(1, 2) // descriptors 1,2 warm; 0 cold
	e.postRx(0, 8)
	e.inject(0, 1000)
	e.inject(1, 1000)
	e.inject(2, 1000)
	e.eng.Run()
	if len(e.completions) != 0 {
		t.Fatalf("completions before resolution: %+v", e.completions)
	}
	if got := e.ch.Rx.PendingFaults(); got != 3 {
		t.Fatalf("headOffset = %d, want 3 (1 parked + 2 stored past head)", got)
	}
	for _, entry := range e.drv.pending {
		e.drv.Resolve(entry)
	}
	e.eng.Run()
	if len(e.completions) != 3 {
		t.Fatalf("completions = %d, want 3", len(e.completions))
	}
	for i, c := range e.completions {
		if c.Payload.(int) != i {
			t.Fatalf("out of order: %+v", e.completions)
		}
	}
}

func TestBackupInterleavedFaults(t *testing.T) {
	// Descriptors 0 and 2 cold, 1 warm. Resolving the *second* fault first
	// must not release anything; resolving the first releases all three.
	e := newEnv(t, PolicyBackup, 8, 8)
	e.drv.manual = true
	e.prefault(1, 1)
	e.postRx(0, 8)
	e.inject(0, 1000)
	e.inject(1, 1000)
	e.inject(2, 1000)
	e.eng.Run()
	if len(e.drv.pending) != 2 {
		t.Fatalf("parked = %d, want 2", len(e.drv.pending))
	}
	// Resolve out of order: descriptor 2 first.
	e.drv.Resolve(e.drv.pending[1])
	e.eng.Run()
	if len(e.completions) != 0 {
		t.Fatal("later fault resolution released earlier packets")
	}
	e.drv.Resolve(e.drv.pending[0])
	e.eng.Run()
	if len(e.completions) != 3 {
		t.Fatalf("completions = %d, want 3", len(e.completions))
	}
	for i, c := range e.completions {
		if c.Payload.(int) != i {
			t.Fatalf("out of order: %+v", e.completions)
		}
	}
}

func TestBackupRingFullPark(t *testing.T) {
	// No descriptors posted at all: backup policy parks (ring-full case of
	// Figure 6); the resolver waits for PostRx.
	e := newEnv(t, PolicyBackup, 4, 8)
	e.drv.manual = true
	e.inject("early", 1000)
	e.eng.Run()
	if len(e.drv.pending) != 1 {
		t.Fatalf("parked = %d, want 1", len(e.drv.pending))
	}
	entry := e.drv.pending[0]
	if entry.Missing != nil {
		t.Fatalf("ring-full park should have no missing pages, got %v", entry.Missing)
	}
	// Driver waits for the tail to move.
	e.ch.Rx.WatchTail(func() {
		e.ch.Rx.WatchTail(nil)
		e.prefault(0, 1)
		e.drv.Resolve(entry)
	})
	e.postRx(0, 4)
	e.eng.Run()
	if len(e.completions) != 1 || e.completions[0].Payload != "early" {
		t.Fatalf("completions = %+v", e.completions)
	}
}

func TestBmSizeBoundsParkedPackets(t *testing.T) {
	e := newEnv(t, PolicyBackup, 8, 2) // bitmap of 2
	e.drv.manual = true
	e.postRx(0, 8) // cold descriptors
	e.inject(0, 1000)
	e.inject(1, 1000)
	e.inject(2, 1000) // exceeds bm_size
	e.eng.Run()
	if e.dev.RxToBackup.N != 2 {
		t.Fatalf("parked = %d, want 2", e.dev.RxToBackup.N)
	}
	if e.dev.RxDroppedFault.N != 1 {
		t.Fatalf("dropped = %d, want 1", e.dev.RxDroppedFault.N)
	}
}

func TestBackupRingOverflowDrops(t *testing.T) {
	e := newEnv(t, PolicyBackup, 64, 64)
	e.drv.manual = true
	e.dev.Backup.Resize(3)
	e.postRx(0, 64)
	for i := 0; i < 6; i++ {
		e.inject(i, 1000)
	}
	// Interrupt drains the queue asynchronously; inject before running.
	e.eng.Run()
	if e.dev.RxToBackup.N >= 6 {
		t.Fatalf("backup accepted all %d packets despite capacity 3", e.dev.RxToBackup.N)
	}
	if e.dev.RxDroppedFault.N == 0 {
		t.Fatal("backup overflow did not drop")
	}
}

func TestPinnedPolicyPanicsOnFault(t *testing.T) {
	e := newEnv(t, PolicyPinned, 8, 8)
	e.postRx(0, 8) // cold buffers under pinned policy: invariant violation
	defer func() {
		if recover() == nil {
			t.Fatal("pinned-policy fault did not panic")
		}
	}()
	e.inject("x", 1000)
	e.eng.Run()
}

func TestMultiPageBufferFaults(t *testing.T) {
	e := newEnv(t, PolicyBackup, 4, 4)
	// One descriptor spanning 4 pages, pages 1-2 resident only.
	e.prefault(1, 2)
	e.ch.Rx.PostRx(Descriptor{Buffer: 0, Len: 4 * mem.PageSize})
	e.drv.manual = true
	e.inject("big", 4*mem.PageSize)
	e.eng.Run()
	if len(e.drv.pending) != 1 {
		t.Fatalf("pending = %d", len(e.drv.pending))
	}
	miss := e.drv.pending[0].Missing
	if len(miss) != 2 || miss[0] != 0 || miss[1] != 3 {
		t.Fatalf("missing = %v, want [0 3]", miss)
	}
	e.drv.Resolve(e.drv.pending[0])
	e.eng.Run()
	if len(e.completions) != 1 {
		t.Fatalf("completions = %d", len(e.completions))
	}
}

func TestTxFaultSuspendsAndResumes(t *testing.T) {
	// Two devices on one fabric; send from cold TX buffer.
	eng := sim.NewEngine(1)
	net := fabric.New(eng, fabric.DefaultEthernet())
	cfg := DefaultConfig()
	cfg.FirmwareJitterSigma = 0
	m := mem.NewMachine(eng, 1<<30)

	src := NewDevice(eng, net, cfg)
	dst := NewDevice(eng, net, cfg)
	srcAS := m.NewAddressSpace("src", nil)
	srcAS.MapBytes(1 << 20)
	dstAS := m.NewAddressSpace("dst", nil)
	dstAS.MapBytes(1 << 20)

	srcCh := src.NewChannel("src0", srcAS, 8, PolicyBackup, 8)
	dstCh := dst.NewChannel("dst0", dstAS, 8, PolicyBackup, 8)

	recv := &testEnv{eng: eng}
	dstCh.SetRxHandler(recv)
	drv := &testDriver{}
	src.SetNPFSink(drv)
	dst.SetNPFSink(&testDriver{})

	// Warm destination ring.
	dstAS.TouchPages(0, 8, true)
	dstCh.Domain.Map(0, 8)
	for i := 0; i < 8; i++ {
		dstCh.Rx.PostRx(Descriptor{Buffer: mem.PageNum(i).Base(), Len: mem.PageSize})
	}

	srcCh.Tx.Post(
		TxDesc{Buffer: 0, Len: 2000, Dst: dst.Node, DstFlow: dstCh.Flow, Payload: "one"},
		TxDesc{Buffer: mem.PageNum(4).Base(), Len: 2000, Dst: dst.Node, DstFlow: dstCh.Flow, Payload: "two"},
	)
	if !srcCh.Tx.Suspended() {
		t.Fatal("cold TX buffer did not suspend the queue")
	}
	eng.Run()
	if drv.txEvents != 2 {
		t.Fatalf("tx NPF events = %d, want 2 (both descriptors cold)", drv.txEvents)
	}
	if len(recv.completions) != 2 {
		t.Fatalf("delivered = %d, want 2", len(recv.completions))
	}
	if recv.completions[0].Payload != "one" || recv.completions[1].Payload != "two" {
		t.Fatalf("order broken: %+v", recv.completions)
	}
	if src.TxFaults.N != 2 {
		t.Fatalf("TxFaults = %d", src.TxFaults.N)
	}
}

func TestTxWarmNoFault(t *testing.T) {
	e := newEnv(t, PolicyBackup, 8, 8)
	peer := NewDevice(e.eng, e.net, e.dev.Cfg)
	peerAS := e.m.NewAddressSpace("peer", nil)
	peerAS.MapBytes(1 << 20)
	peerCh := peer.NewChannel("p0", peerAS, 8, PolicyBackup, 8)
	peer.SetNPFSink(&testDriver{})
	sink := &testEnv{eng: e.eng}
	peerCh.SetRxHandler(sink)
	peerAS.TouchPages(0, 8, true)
	peerCh.Domain.Map(0, 8)
	for i := 0; i < 8; i++ {
		peerCh.Rx.PostRx(Descriptor{Buffer: mem.PageNum(i).Base(), Len: mem.PageSize})
	}

	e.prefault(0, 1)
	e.ch.Tx.Post(TxDesc{Buffer: 0, Len: 1500, Dst: peer.Node, DstFlow: peerCh.Flow, Payload: "hi", Cookie: 7})
	e.eng.Run()
	if e.dev.TxFaults.N != 0 {
		t.Fatal("warm TX faulted")
	}
	if len(e.txDone) != 1 || e.txDone[0].Cookie != 7 {
		t.Fatalf("tx completions = %+v", e.txDone)
	}
	if len(sink.completions) != 1 || sink.completions[0].Payload != "hi" {
		t.Fatalf("peer completions = %+v", sink.completions)
	}
}

// Property: with the backup policy and an auto-resolving driver, every
// injected packet is eventually delivered exactly once, in order, no matter
// which descriptors start cold — provided parking never exceeds bm_size or
// backup capacity (sized generously here).
func TestBackupNeverLosesProperty(t *testing.T) {
	f := func(coldMask uint16, n uint8) bool {
		count := int(n%16) + 1
		e := newEnv(t, PolicyBackup, 32, 32)
		for i := 0; i < 16; i++ {
			if coldMask&(1<<i) == 0 {
				e.prefault(mem.PageNum(i), 1)
			}
		}
		e.postRx(0, 16)
		for i := 0; i < count; i++ {
			e.inject(i, 1000)
		}
		e.eng.Run()
		if len(e.completions) != count {
			return false
		}
		for i, c := range e.completions {
			if c.Payload.(int) != i {
				return false
			}
		}
		return e.dev.RxDroppedFault.N == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
