package nic

import (
	"fmt"

	"npf/internal/fabric"
	"npf/internal/mem"
)

// Descriptor is one receive descriptor: a buffer in the IOuser's address
// space.
type Descriptor struct {
	Buffer mem.VAddr
	Len    int
}

type rxSlot struct {
	desc    Descriptor
	posted  bool
	filled  bool
	payload any
	size    int
}

// RxRing is the hardware receive ring of one IOchannel, implementing the
// paper's Figure 6 state machine. All indexes (head, tail, ...) are
// absolute (monotonically increasing); slot storage wraps modulo size.
//
//   - tail: descriptors posted by the IOuser (producer index).
//   - head: first descriptor not yet consumable by the IOuser — it points
//     at the oldest unresolved rNPF while faults are pending.
//   - headOffset: packets stored or parked beyond head while faults are
//     pending; head+headOffset is where the next packet lands.
//   - bitmap/bmIndex: which of the parked entries still await resolution;
//     bmIndex is the bitmap position corresponding to head.
type RxRing struct {
	ch     *Channel
	size   int
	bmSize int
	policy FaultPolicy

	slots      []rxSlot
	tail       int64
	head       int64
	headOffset int64
	bmIndex    int64
	bitmap     []bool

	reported   int64
	intPending bool

	// inflight tracks descriptor indexes whose fault was already reported
	// and not yet resolved — the firmware bitmap optimization (§4) that
	// suppresses duplicate reports. Used by PolicyDrop, where the ring
	// state does not otherwise remember the fault.
	inflight map[int64]bool

	tailWatch func()
}

func newRxRing(ch *Channel, size, bmSize int, policy FaultPolicy) *RxRing {
	return &RxRing{
		ch:       ch,
		size:     size,
		bmSize:   bmSize,
		policy:   policy,
		slots:    make([]rxSlot, size),
		bitmap:   make([]bool, bmSize),
		inflight: make(map[int64]bool),
	}
}

// Policy returns the ring's fault policy.
func (r *RxRing) Policy() FaultPolicy { return r.policy }

// Size returns the ring's entry count.
func (r *RxRing) Size() int { return r.size }

// Posted reports how many descriptors are currently posted and unconsumed.
func (r *RxRing) Posted() int { return int(r.tail - r.reported) }

// PendingFaults reports parked packets awaiting resolution.
func (r *RxRing) PendingFaults() int64 { return r.headOffset }

func (r *RxRing) slot(idx int64) *rxSlot { return &r.slots[idx%int64(r.size)] }

// Tail returns the absolute producer index (descriptors posted so far).
func (r *RxRing) Tail() int64 { return r.tail }

// DescriptorAt returns the descriptor at absolute index idx, if posted.
func (r *RxRing) DescriptorAt(idx int64) (Descriptor, bool) {
	if idx < r.reported || idx >= r.tail {
		return Descriptor{}, false
	}
	return r.slot(idx).desc, true
}

// ForEachPosted visits every posted, unconsumed descriptor (driver-side
// ring prefaulting walks these).
func (r *RxRing) ForEachPosted(fn func(idx int64, d Descriptor)) {
	for i := r.reported; i < r.tail; i++ {
		fn(i, r.slot(i).desc)
	}
}

// PostRx posts receive descriptors. The IOuser may keep at most size
// descriptors outstanding; exceeding that is a stack bug and panics.
func (r *RxRing) PostRx(descs ...Descriptor) {
	for _, d := range descs {
		if r.tail-r.reported >= int64(r.size) {
			panic(fmt.Sprintf("nic: %s posted beyond ring size %d", r.ch.Name, r.size))
		}
		s := r.slot(r.tail)
		*s = rxSlot{desc: d, posted: true}
		r.tail++
	}
	if r.tailWatch != nil && len(descs) > 0 {
		r.tailWatch()
	}
}

// WatchTail installs fn to run whenever the IOuser posts descriptors; the
// backup-ring resolver uses this to wake up when room appears (§5 "T asks
// the NIC to raise an interrupt whenever the IOuser changes the tail").
// A nil fn clears the watch.
func (r *RxRing) WatchTail(fn func()) { r.tailWatch = fn }

// recv is the paper's Figure 6 recv(): store pkt at head+headOffset, or
// park it in the backup ring, or drop it.
func (r *RxRing) recv(pkt *fabric.Packet) {
	dev := r.ch.Dev
	idx := r.head + r.headOffset
	if idx < r.tail { // a descriptor is posted at the target index
		s := r.slot(idx)
		if r.ch.Domain.Blocked(s.desc.Buffer, pkt.Size) {
			// Guest-table protection violation (§2.4): not an NPF — the
			// IOprovider cannot make this access legal. Drop.
			dev.RxDroppedProtect.Inc()
			return
		}
		_, missing := r.ch.Domain.TranslateAccess(s.desc.Buffer, pkt.Size, true)
		if len(missing) == 0 {
			// Store in the IOuser ring.
			r.ch.dmaTouch(s.desc.Buffer, pkt.Size, true)
			s.filled = true
			s.payload = pkt.Payload
			s.size = pkt.Size
			dev.RxDelivered.Inc()
			if r.headOffset > 0 {
				r.headOffset++
			} else {
				r.head++
				r.raiseRxInterrupt()
			}
			return
		}
		// rNPF.
		switch r.policy {
		case PolicyPinned:
			panic(fmt.Sprintf("nic: rNPF on pinned ring %s pages %v", r.ch.Name, missing))
		case PolicyDrop:
			dev.RxDroppedFault.Inc()
			if r.inflight[idx] && !dev.Cfg.DisableInflightBitmap {
				return // firmware already reported this descriptor's fault
			}
			r.inflight[idx] = true
			entry := RxNPFEntry{Channel: r.ch, Index: idx, Missing: missing, Start: dev.Eng.Now(), Fault: dev.mintFault()}
			// The drop path goes through the slow firmware error path.
			lat := dev.firmwareFaultLatency() + dev.Cfg.IntLatency
			dev.Tracer.FaultMinted(entry.Fault, "rx-drop", entry.Start, int64(pkt.Src), idx, len(missing))
			if dev.Tracer.Enabled() {
				now := dev.Eng.Now()
				entry.Span = dev.Tracer.BeginAt(0, "npf", "rx-drop", now)
				dev.Tracer.ArgInt(entry.Span, "idx", idx)
				dev.Tracer.ArgInt(entry.Span, "pages", int64(len(missing)))
				dev.Tracer.Span(entry.Span, "npf.stage", "firmware", now, now+lat)
			}
			dev.Eng.After(lat, func() {
				dev.sink.HandleRxNPF([]RxNPFEntry{entry})
			})
			return
		case PolicyBackup:
			r.parkInBackup(pkt, idx, missing)
			return
		}
	}
	// No descriptor posted at the target index.
	if r.policy == PolicyBackup {
		// Figure 6 treats ring-full like a fault: park it, bounded by
		// bm_size, and let the resolver wait for the IOuser to post.
		r.parkInBackup(pkt, idx, nil)
		return
	}
	dev.RxDroppedNoBuf.Inc()
}

// parkInBackup implements Figure 6's backup-ring arm.
func (r *RxRing) parkInBackup(pkt *fabric.Packet, idx int64, missing []mem.PageNum) {
	dev := r.ch.Dev
	if r.headOffset >= int64(r.bmSize) || !dev.Backup.hasRoom() {
		dev.RxDroppedFault.Inc() // otherwise drop packet
		return
	}
	bitIndex := r.bmIndex + r.headOffset
	r.bitmap[bitIndex%int64(r.bmSize)] = true
	r.headOffset++
	dev.RxToBackup.Inc()
	e := RxNPFEntry{
		Channel:  r.ch,
		Index:    idx,
		BitIndex: bitIndex,
		Missing:  missing,
		Packet:   pkt,
		Start:    dev.Eng.Now(),
		Fault:    dev.mintFault(),
	}
	name := "rx-backup"
	if missing == nil {
		name = "rx-ringfull" // parked for ring room, not for paging
	}
	dev.Tracer.FaultMinted(e.Fault, name, e.Start, int64(pkt.Src), idx, len(missing))
	if dev.Tracer.Enabled() {
		now := dev.Eng.Now()
		e.Span = dev.Tracer.BeginAt(0, "npf", name, now)
		dev.Tracer.ArgInt(e.Span, "idx", idx)
		dev.Tracer.ArgInt(e.Span, "pages", int64(len(missing)))
		// The backup path is an ordinary receive flow: the "firmware" stage
		// is just the coalesced backup interrupt.
		dev.Tracer.Span(e.Span, "npf.stage", "firmware", now, now+dev.Cfg.IntLatency)
		e.Parked = dev.Tracer.BeginAt(e.Span, "npf.stage", "parked", now)
	}
	dev.Backup.store(e)
}

// FillResolved is called by the driver after it faulted the buffer in and
// copied the parked packet into descriptor idx (Figure 5 step 4).
func (r *RxRing) FillResolved(idx int64, pkt *fabric.Packet) {
	s := r.slot(idx)
	if !s.posted {
		panic(fmt.Sprintf("nic: FillResolved(%d) on unposted descriptor of %s", idx, r.ch.Name))
	}
	r.ch.dmaTouch(s.desc.Buffer, pkt.Size, true)
	s.filled = true
	s.payload = pkt.Payload
	s.size = pkt.Size
	r.ch.Dev.RxDelivered.Inc()
}

// ResolveRNPF is the paper's resolve_rNPFs(): clear the bitmap bit and
// advance head past consecutively resolved entries, then report newly
// visible packets.
func (r *RxRing) ResolveRNPF(bitIndex int64) {
	r.bitmap[bitIndex%int64(r.bmSize)] = false
	for r.headOffset > 0 && !r.bitmap[r.bmIndex%int64(r.bmSize)] {
		r.headOffset--
		r.head++
		r.bmIndex++
	}
	r.raiseRxInterrupt()
}

// ClearInflight tells the firmware a drop-policy fault was resolved so new
// faults on the descriptor are reported again.
func (r *RxRing) ClearInflight(idx int64) { delete(r.inflight, idx) }

// raiseRxInterrupt delivers completions [reported, head) to the IOuser
// after the interrupt latency, coalescing bursts into one callback.
func (r *RxRing) raiseRxInterrupt() {
	if r.intPending || r.reported >= r.head {
		return
	}
	r.intPending = true
	dev := r.ch.Dev
	dev.Eng.After(dev.Cfg.IntLatency, func() {
		r.intPending = false
		var comps []RxCompletion
		for r.reported < r.head {
			s := r.slot(r.reported)
			if !s.filled {
				panic(fmt.Sprintf("nic: reporting unfilled slot %d on %s", r.reported, r.ch.Name))
			}
			comps = append(comps, RxCompletion{Index: r.reported, Size: s.size, Payload: s.payload})
			*s = rxSlot{}
			r.reported++
		}
		if r.ch.rxHandler != nil {
			r.ch.rxHandler.RxComplete(r.ch, comps)
		}
	})
}
