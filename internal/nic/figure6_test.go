package nic

import (
	"testing"
	"testing/quick"

	"npf/internal/mem"
)

// checkRingInvariants asserts the Figure 6 structural invariants.
func checkRingInvariants(t *testing.T, r *RxRing) {
	t.Helper()
	if r.reported > r.head {
		t.Fatalf("reported %d > head %d", r.reported, r.head)
	}
	if r.head+r.headOffset > r.tail+int64(r.bmSize) {
		t.Fatalf("store point %d beyond tail+bm %d", r.head+r.headOffset, r.tail+int64(r.bmSize))
	}
	if r.headOffset < 0 {
		t.Fatalf("negative headOffset %d", r.headOffset)
	}
	// head never points past a pending fault: if headOffset > 0 the bit at
	// bmIndex must be set (head parked at the oldest unresolved fault) or
	// the entry is merely stored-not-reportable.
	set := 0
	for _, b := range r.bitmap {
		if b {
			set++
		}
	}
	if int64(set) > r.headOffset {
		t.Fatalf("bitmap bits %d exceed headOffset %d", set, r.headOffset)
	}
}

// Property: park packets on a cold ring, resolve them in an arbitrary
// permutation order; delivery is always complete and in order, and the
// structural invariants hold at every step.
func TestFigure6ResolutionOrderProperty(t *testing.T) {
	f := func(permSeed int64, n uint8) bool {
		count := int(n%12) + 2
		e := newEnv(t, PolicyBackup, 32, 32)
		e.drv.manual = true
		e.postRx(0, 32) // all cold
		for i := 0; i < count; i++ {
			e.inject(i, 1000)
		}
		e.eng.Run()
		if len(e.drv.pending) != count {
			return false
		}
		// Resolve in a random permutation.
		perm := permOf(permSeed, count)
		for _, idx := range perm {
			e.drv.Resolve(e.drv.pending[idx])
			checkRingInvariants(t, e.ch.Rx)
			e.eng.Run()
			// Deliveries so far must be a strict in-order prefix.
			for j, c := range e.completions {
				if c.Payload.(int) != j {
					return false
				}
			}
		}
		if len(e.completions) != count {
			return false
		}
		return e.dev.RxDroppedFault.N == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func permOf(seed int64, n int) []int {
	r := newRandForTest(seed)
	p := make([]int, n)
	for i := range p {
		j := int(r.Uint64() % uint64(i+1))
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// TestFigure6MixedStoreAndPark interleaves warm and cold descriptors with
// out-of-order resolution, the hardest pattern for head/bitmap bookkeeping.
func TestFigure6MixedStoreAndPark(t *testing.T) {
	f := func(coldMask uint32, permSeed int64) bool {
		e := newEnv(t, PolicyBackup, 32, 32)
		e.drv.manual = true
		for i := 0; i < 24; i++ {
			if coldMask&(1<<i) == 0 {
				e.prefault(mem.PageNum(i), 1)
			}
		}
		e.postRx(0, 24)
		for i := 0; i < 24; i++ {
			e.inject(i, 1000)
		}
		e.eng.Run()
		checkRingInvariants(t, e.ch.Rx)
		pending := e.drv.pending
		for _, idx := range permOf(permSeed, len(pending)) {
			e.drv.Resolve(pending[idx])
			checkRingInvariants(t, e.ch.Rx)
		}
		e.eng.Run()
		if len(e.completions) != 24 {
			return false
		}
		for j, c := range e.completions {
			if c.Payload.(int) != j {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// newRandForTest is a tiny splitmix64 for permutation generation in
// property tests (independent of the engine's RNG).
type testRand struct{ state uint64 }

func newRandForTest(seed int64) *testRand {
	return &testRand{state: uint64(seed)*0x9E3779B97F4A7C15 + 1}
}

func (r *testRand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
