package nic

// defaultBackupEntries sizes the IOprovider's pinned backup ring. The paper
// keeps it "small": it only needs to absorb packets for the fault-resolution
// window, because the driver drains it promptly (interrupt coalescing +
// NAPI-style polling).
const defaultBackupEntries = 256

// BackupRing is the device side of the paper's §5 design: a single pinned
// ring owned by the IOprovider into which the NIC steers packets that
// cannot be stored in their IOuser ring. Entries carry the NIC-added
// metadata (channel, target index, bitmap index) that lets the driver merge
// them back.
type BackupRing struct {
	dev        *Device
	size       int
	queue      []RxNPFEntry
	intPending bool
}

func newBackupRing(dev *Device, size int) *BackupRing {
	return &BackupRing{dev: dev, size: size}
}

// Resize changes the ring capacity (experiment knob).
func (b *BackupRing) Resize(size int) { b.size = size }

// Len reports entries awaiting the driver.
func (b *BackupRing) Len() int { return len(b.queue) }

func (b *BackupRing) hasRoom() bool { return len(b.queue) < b.size }

// store appends an entry and raises the (coalesced) backup interrupt. The
// backup path is an ordinary hardware receive flow — unlike the drop
// policy's firmware error path, it costs only the interrupt latency.
func (b *BackupRing) store(e RxNPFEntry) {
	b.queue = append(b.queue, e)
	if b.intPending {
		return
	}
	b.intPending = true
	b.dev.Eng.After(b.dev.Cfg.IntLatency, func() {
		b.intPending = false
		entries := b.queue
		b.queue = nil // driver replenishes the ring promptly
		if b.dev.sink == nil {
			panic("nic: backup ring used without an NPF sink (driver not attached)")
		}
		b.dev.sink.HandleRxNPF(entries)
	})
}
