package nic

import (
	"npf/internal/fabric"
	"npf/internal/mem"
)

// TxDesc is one send descriptor: read Len bytes from Buffer and transmit
// them to (Dst, DstFlow). Payload is the simulated wire content; Cookie is
// returned in the TX completion so the stack can recycle the buffer.
type TxDesc struct {
	Buffer  mem.VAddr
	Len     int
	Dst     fabric.NodeID
	DstFlow fabric.FlowID
	Payload any
	Cookie  any
}

// TxQueue is the send side of an IOchannel. Descriptors are processed in
// order; a send-side NPF suspends the queue until the driver resolves it
// (§4: "when a sender encounters an NPF, it can simply stop sending and
// wait until the NPF is resolved, as the faulting data is local").
type TxQueue struct {
	ch        *Channel
	queue     []TxDesc
	suspended bool

	compPending bool
	completions []TxCompletion
}

func newTxQueue(ch *Channel) *TxQueue {
	return &TxQueue{ch: ch}
}

// Suspended reports whether the queue is stalled on an NPF.
func (q *TxQueue) Suspended() bool { return q.suspended }

// QueuedPackets reports descriptors awaiting transmission.
func (q *TxQueue) QueuedPackets() int { return len(q.queue) }

// Post enqueues descriptors for transmission.
func (q *TxQueue) Post(descs ...TxDesc) {
	q.queue = append(q.queue, descs...)
	q.kick()
}

// kick drains the queue until it is empty or a fault suspends it.
func (q *TxQueue) kick() {
	dev := q.ch.Dev
	for !q.suspended && len(q.queue) > 0 {
		d := q.queue[0]
		if q.ch.Domain.Blocked(d.Buffer, d.Len) {
			// Guest-table protection violation: the descriptor is
			// discarded (the IOuser misprogrammed its own table).
			q.queue = q.queue[1:]
			dev.TxDroppedProtect.Inc()
			continue
		}
		_, missing := q.ch.Domain.Translate(d.Buffer, d.Len)
		if len(missing) > 0 {
			if q.ch.Rx.policy == PolicyPinned {
				panic("nic: TX NPF on pinned channel " + q.ch.Name)
			}
			q.suspended = true
			dev.TxFaults.Inc()
			ev := TxNPF{
				Channel: q.ch,
				Missing: missing,
				Start:   dev.Eng.Now(),
				Resume: func() {
					// Figure 3a component (v): the NIC notices the
					// page-table update and resumes.
					dev.Eng.After(dev.Cfg.FirmwareResume, func() {
						q.suspended = false
						q.kick()
					})
				},
			}
			// Firmware detects the fault and raises the NPF interrupt
			// (components i–ii).
			ev.Fault = dev.mintFault()
			lat := dev.firmwareFaultLatency() + dev.Cfg.IntLatency
			dev.Tracer.FaultMinted(ev.Fault, "tx", ev.Start, -1, int64(d.Dst), len(missing))
			if dev.Tracer.Enabled() {
				now := dev.Eng.Now()
				ev.Span = dev.Tracer.BeginAt(0, "npf", "tx", now)
				dev.Tracer.ArgInt(ev.Span, "pages", int64(len(missing)))
				dev.Tracer.Span(ev.Span, "npf.stage", "firmware", now, now+lat)
			}
			dev.Eng.After(lat, func() {
				dev.sink.HandleTxNPF(ev)
			})
			return
		}
		q.queue = q.queue[1:]
		q.ch.dmaTouch(d.Buffer, d.Len, false)
		dev.Net.Send(&fabric.Packet{
			Src:     dev.Node,
			Dst:     d.Dst,
			Flow:    d.DstFlow,
			Size:    d.Len,
			Payload: d.Payload,
		})
		dev.TxSent.Inc()
		q.complete(TxCompletion{Cookie: d.Cookie})
	}
}

// complete queues a TX completion, delivered coalesced after the interrupt
// latency.
func (q *TxQueue) complete(c TxCompletion) {
	q.completions = append(q.completions, c)
	if q.compPending {
		return
	}
	q.compPending = true
	dev := q.ch.Dev
	dev.Eng.After(dev.Cfg.IntLatency, func() {
		q.compPending = false
		comps := q.completions
		q.completions = nil
		if q.ch.txHandler != nil {
			q.ch.txHandler.TxComplete(q.ch, comps)
		}
	})
}
