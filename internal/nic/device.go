// Package nic models an Ethernet NIC with direct I/O channels and network
// page fault (NPF) support: per-IOuser descriptor rings, an RX engine that
// implements the paper's Figure 6 backup-ring pseudo-code, a TX engine that
// can suspend on send-side faults, interrupt delivery with coalescing, and
// an on-NIC IOMMU (internal/iommu).
//
// The package is hardware only. Fault resolution — the driver and OS side
// of Figure 2 — lives in internal/core, which the NIC reaches through the
// NPFSink and RxHandler callback interfaces, mirroring the real split
// between firmware and the IOprovider.
package nic

import (
	"fmt"

	"npf/internal/fabric"
	"npf/internal/iommu"
	"npf/internal/mem"
	"npf/internal/sim"
	"npf/internal/trace"
)

// FaultPolicy selects how the RX engine handles receive NPFs, matching the
// paper's evaluated configurations.
type FaultPolicy int

const (
	// PolicyPinned assumes buffers never fault (static pinning); a fault
	// under this policy is a model violation and panics.
	PolicyPinned FaultPolicy = iota
	// PolicyDrop discards faulting packets but still reports the fault so
	// the driver can demand-page the buffer ("drop" in Figures 4 and 10).
	PolicyDrop
	// PolicyBackup stores faulting packets in the IOprovider's pinned
	// backup ring ("backup"/"brng").
	PolicyBackup
)

func (p FaultPolicy) String() string {
	switch p {
	case PolicyPinned:
		return "pin"
	case PolicyDrop:
		return "drop"
	case PolicyBackup:
		return "backup"
	}
	return "invalid"
}

// RxCompletion reports one received packet to the IOuser's stack.
type RxCompletion struct {
	Index   int64 // absolute descriptor index
	Size    int
	Payload any
}

// RxHandler is the IOuser-side completion callback (the channel's network
// stack). Invoked from interrupt context (an engine event), once per
// interrupt with all newly visible completions.
type RxHandler interface {
	RxComplete(ch *Channel, completions []RxCompletion)
}

// TxCompletion tells the stack a send buffer may be reused.
type TxCompletion struct {
	Cookie any
}

// TxHandler receives TX completions.
type TxHandler interface {
	TxComplete(ch *Channel, completions []TxCompletion)
}

// RxNPFEntry describes one faulting (or ring-full) packet parked in the
// backup ring, with the metadata the NIC attaches so the IOprovider can
// resolve it (§5 "they are steered according to meta data").
type RxNPFEntry struct {
	Channel  *Channel
	Index    int64 // target descriptor index in the IOuser ring
	BitIndex int64 // position in the ring's fault bitmap
	Missing  []mem.PageNum
	Packet   *fabric.Packet // nil under PolicyDrop
	Start    sim.Time       // when the device hit the fault
	// Span is the NPF lifecycle span the device opened for this fault, and
	// Parked the backup-ring residency child span; both 0 when tracing is
	// off. The hardware tags its fault report with the span the way real
	// firmware tags it with a fault token the driver echoes back.
	Span   trace.SpanID
	Parked trace.SpanID
	// Fault is the causal FaultID minted at detection (always set; the
	// recorder ignores it when tracing is off).
	Fault trace.FaultID
}

// TxNPF describes a send-side fault: the TX queue is suspended until the
// driver calls Resume.
type TxNPF struct {
	Channel *Channel
	Missing []mem.PageNum
	Resume  func()
	Start   sim.Time // when the device hit the fault
	// Span is the NPF lifecycle span opened by the device (0 = tracing off).
	Span trace.SpanID
	// Fault is the causal FaultID minted at detection.
	Fault trace.FaultID
}

// NPFSink is the driver (IOprovider) interface for fault events. Both
// methods are invoked from interrupt context after the device's interrupt
// latency.
type NPFSink interface {
	HandleRxNPF(entries []RxNPFEntry)
	HandleTxNPF(ev TxNPF)
}

// Config holds device latency parameters.
type Config struct {
	// IntLatency is interrupt delivery latency (MSI-X write + handler
	// dispatch).
	IntLatency sim.Time
	// FirmwareFault is the firmware-side cost of detecting an NPF and
	// raising the fault interrupt — the dominant hardware component of the
	// paper's Figure 3a ("this duration is typical for Mellanox NIC
	// firmware activity").
	FirmwareFault sim.Time
	// FirmwareResume is the hardware cost from page-table update to the
	// NIC resuming the faulted operation (Figure 3a component v).
	FirmwareResume sim.Time
	// FirmwareJitterSigma adds log-normal jitter to FirmwareFault,
	// producing Table 4's tail. Zero disables jitter.
	FirmwareJitterSigma float64
	// IOTLBEntries sizes the device IOTLB (0 = no IOTLB model).
	IOTLBEntries int
	// DisableInflightBitmap turns off the firmware optimization that
	// suppresses duplicate fault reports for descriptors already being
	// resolved (§4 "Optimizations"; ablation).
	DisableInflightBitmap bool
}

// DefaultConfig returns parameters calibrated to Figure 3/Table 4.
func DefaultConfig() Config {
	return Config{
		IntLatency:          3 * sim.Microsecond,
		FirmwareFault:       130 * sim.Microsecond,
		FirmwareResume:      40 * sim.Microsecond,
		FirmwareJitterSigma: 0.12,
		IOTLBEntries:        1024,
	}
}

// Device is one NIC. It implements fabric.Endpoint.
type Device struct {
	Eng  *sim.Engine
	Net  *fabric.Network
	Node fabric.NodeID
	MMU  *iommu.Unit
	Cfg  Config

	rng       *sim.Rand
	channels  map[fabric.FlowID]*Channel
	nextFlow  fabric.FlowID
	Backup    *BackupRing
	sink      NPFSink
	faultHook func(sim.Time) sim.Time
	faultSeq  uint64 // per-device FaultID sequence (fault.go)

	// Tracer records NPF lifecycle spans; nil disables tracing.
	Tracer *trace.Tracer

	// Counters.
	RxDelivered      sim.Counter
	RxToBackup       sim.Counter
	RxDroppedFault   sim.Counter // faulting packets lost (drop policy / backup overflow)
	RxDroppedNoBuf   sim.Counter
	RxDroppedProtect sim.Counter // guest-table protection violations (§2.4)
	TxSent           sim.Counter
	TxFaults         sim.Counter
	TxDroppedProtect sim.Counter
}

// NewDevice creates a NIC on eng, attaches it to net, and returns it.
func NewDevice(eng *sim.Engine, net *fabric.Network, cfg Config) *Device {
	d := &Device{
		Eng:      eng,
		Net:      net,
		MMU:      iommu.New(cfg.IOTLBEntries),
		Cfg:      cfg,
		rng:      eng.Rand().Split(),
		channels: make(map[fabric.FlowID]*Channel),
	}
	d.Node = net.AttachOn(d, eng)
	d.Backup = newBackupRing(d, defaultBackupEntries)
	return d
}

// SetNPFSink installs the driver-side fault handler. Required before any
// channel uses PolicyDrop or PolicyBackup.
func (d *Device) SetNPFSink(s NPFSink) { d.sink = s }

// SetTracer wires telemetry into the device and its on-NIC IOMMU. The
// device opens the root span of each NPF at fault-detection time and
// threads it to the driver through the fault event. Safe to call with nil.
// It also registers the device's time-series probes: ring occupancy, backup
// residency, and firmware fault-queue depth — the transients the paper's
// Fig. 7 and the chaos scenarios reason about.
func (d *Device) SetTracer(tr *trace.Tracer) {
	d.Tracer = tr
	d.MMU.SetTracer(tr)
	tr.Probe("nic.backup_ring_len", func() float64 {
		return float64(d.Backup.Len())
	})
	tr.Probe("nic.rx_ring_occupancy", func() float64 {
		sum := 0.0
		//npf:orderinvariant — summing per-channel occupancy is commutative
		for _, ch := range d.channels {
			sum += float64(ch.Rx.Posted())
		}
		return sum
	})
	tr.Probe("nic.fault_queue_depth", func() float64 {
		sum := 0.0
		//npf:orderinvariant — summing per-channel fault backlogs is commutative
		for _, ch := range d.channels {
			sum += float64(ch.Rx.PendingFaults()) + float64(len(ch.Rx.inflight))
		}
		return sum
	})
}

// SetFaultDelayHook installs a transformation on the sampled firmware
// fault-path latency — the injection point fault injectors (internal/chaos)
// use to model firmware stalls. nil removes it.
func (d *Device) SetFaultDelayHook(fn func(sim.Time) sim.Time) { d.faultHook = fn }

// mintFault issues the next causal FaultID for this device. Minting is
// unconditional (a shift and an add) so IDs are identical whether or not a
// tracer is attached — determinism does not depend on observability.
func (d *Device) mintFault() trace.FaultID {
	d.faultSeq++
	return trace.MintFaultID(int64(d.Node), d.faultSeq)
}

// firmwareFaultLatency samples the firmware fault-path latency, with the
// long-tailed jitter that produces Table 4.
func (d *Device) firmwareFaultLatency() sim.Time {
	lat := d.Cfg.FirmwareFault
	if d.Cfg.FirmwareJitterSigma > 0 {
		f := d.rng.LogNormal(0, d.Cfg.FirmwareJitterSigma)
		// Occasional scheduling hiccup in the firmware's slow error path: a
		// heavy tail reaching ~2x the median, as in Table 4's max column.
		if d.rng.Bernoulli(0.003) {
			f *= 1.7 + 1.3*d.rng.Float64()
		}
		lat = sim.Time(float64(lat) * f)
	}
	if d.faultHook != nil {
		lat = d.faultHook(lat)
	}
	return lat
}

// Channel is one hardware-provided virtual NIC instance (the paper's
// IOchannel) bound to an IOuser address space.
type Channel struct {
	Dev    *Device
	Name   string
	AS     *mem.AddressSpace
	Domain *iommu.Domain
	Flow   fabric.FlowID
	Rx     *RxRing
	Tx     *TxQueue

	rxHandler RxHandler
	txHandler TxHandler
}

// NewChannel creates an IOchannel with an RX ring of ringSize entries under
// the given fault policy. bmSize bounds in-flight rNPFs per the paper's
// bitmap (<=0 defaults to ringSize).
func (d *Device) NewChannel(name string, as *mem.AddressSpace, ringSize int, policy FaultPolicy, bmSize int) *Channel {
	if bmSize <= 0 {
		bmSize = ringSize
	}
	d.nextFlow++
	ch := &Channel{
		Dev:    d,
		Name:   name,
		AS:     as,
		Domain: d.MMU.NewDomain(),
		Flow:   d.nextFlow,
	}
	ch.Rx = newRxRing(ch, ringSize, bmSize, policy)
	ch.Tx = newTxQueue(ch)
	d.channels[ch.Flow] = ch
	return ch
}

// SetRxHandler installs the IOuser stack's receive callback.
func (ch *Channel) SetRxHandler(h RxHandler) { ch.rxHandler = h }

// SetTxHandler installs the IOuser stack's transmit-completion callback.
func (ch *Channel) SetTxHandler(h TxHandler) { ch.txHandler = h }

// Deliver implements fabric.Endpoint: steer the packet to its channel's RX
// ring.
func (d *Device) Deliver(pkt *fabric.Packet) {
	ch, ok := d.channels[pkt.Flow]
	if !ok {
		d.RxDroppedNoBuf.Inc()
		return
	}
	ch.Rx.recv(pkt)
}

// dmaTouch marks pages as accessed by device DMA. The IOMMU said the pages
// translate, so they must be resident; a fault here means the driver broke
// the notifier/unmap invariant.
func (ch *Channel) dmaTouch(addr mem.VAddr, length int, write bool) {
	res, err := ch.AS.Touch(addr, length, write)
	if err != nil || res.Kind() != mem.NoFault {
		panic(fmt.Sprintf("nic: DMA to non-resident memory on %s (res=%+v err=%v): IOMMU/OS invariant broken",
			ch.Name, res, err))
	}
}
