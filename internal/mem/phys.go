package mem

import (
	"errors"
	"fmt"

	"npf/internal/sim"
	"npf/internal/trace"
)

// ErrOutOfMemory is returned when an allocation cannot be satisfied even
// after reclaim: every page charged to the constraining group is pinned.
var ErrOutOfMemory = errors.New("mem: out of memory (all reclaimable pages pinned)")

// ErrMemlockLimit is returned by Pin when the address space would exceed its
// RLIMIT_MEMLOCK.
var ErrMemlockLimit = errors.New("mem: RLIMIT_MEMLOCK exceeded")

// SwapDevice models secondary storage used for swapped-out anonymous pages
// and for file-backed reads (the storage experiments' disk). Reads are
// synchronous from the faulting context's perspective — they are what makes
// a fault "major".
type SwapDevice struct {
	// ReadLatency is the fixed cost of one page-granularity read.
	ReadLatency sim.Time
	// ReadBandwidth, in bytes per second, adds size/bandwidth for bulk
	// reads. Zero means infinite.
	ReadBandwidth int64

	Reads  sim.Counter
	Writes sim.Counter
}

// DefaultSwap returns a device with the paper's example 10 ms major-fault
// latency (§3: "T is 10 milliseconds (major page fault)").
func DefaultSwap() *SwapDevice {
	return &SwapDevice{ReadLatency: 10 * sim.Millisecond}
}

// ReadCost returns the time to read n bytes.
func (d *SwapDevice) ReadCost(n int) sim.Time {
	d.Reads.Inc()
	c := d.ReadLatency
	if d.ReadBandwidth > 0 {
		c += sim.Time(int64(n) * int64(sim.Second) / d.ReadBandwidth)
	}
	return c
}

// WriteCost accounts a writeback. Writebacks are asynchronous in the model,
// so they cost the evicting context nothing; the counter still records them.
func (d *SwapDevice) WriteCost(n int) sim.Time {
	d.Writes.Inc()
	return 0
}

// evictable is implemented by anything whose pages can be reclaimed: address
// spaces and page caches. The reclaimer picks the member with the oldest
// least-recently-used page, approximating a machine-wide LRU.
type evictable interface {
	// oldestAccess reports the access stamp of the member's coldest
	// reclaimable page, and whether one exists.
	oldestAccess() (sim.Time, bool)
	// evictOldest reclaims the coldest page, returning the bytes freed and
	// the synchronous cost (MMU-notifier invalidations). ok is false when
	// nothing was reclaimable.
	evictOldest() (bytes int64, cost sim.Time, ok bool)
}

// Group is a memory-accounting domain with an optional byte limit: the
// machine itself is a Group (limit = physical RAM), and cgroup-style
// containers are Groups nested inside experiments. Members charge and
// uncharge resident bytes; charging past the limit reclaims the
// least-recently-used pages of the group's members.
type Group struct {
	Name  string
	Limit int64 // bytes; 0 means unlimited

	used    int64
	members []evictable

	Evictions sim.Counter
	// OOMs counts charge attempts that failed even after reclaim.
	OOMs sim.Counter
}

// NewGroup returns a group with the given byte limit (0 = unlimited).
func NewGroup(name string, limit int64) *Group {
	return &Group{Name: name, Limit: limit}
}

// Used reports the group's current resident bytes.
func (g *Group) Used() int64 { return g.used }

// SetLimit changes the group's byte limit at runtime and synchronously
// reclaims LRU pages until usage fits under the new limit (the kernel's
// behaviour when a cgroup limit is lowered). It returns the reclaim cost
// and how many bytes could not be reclaimed (unreclaimable pinned overhang
// — the memory.max analogue of an OOM). Fault injectors use this to model
// memory-pressure waves; raising the limit never reclaims.
func (g *Group) SetLimit(limit int64) (cost sim.Time, overhang int64) {
	g.Limit = limit
	for g.Limit > 0 && g.used > g.Limit {
		_, c, ok := g.evictLRU()
		if !ok {
			return cost, g.used - g.Limit
		}
		g.Evictions.Inc()
		cost += c
	}
	return cost, 0
}

func (g *Group) addMember(m evictable) { g.members = append(g.members, m) }

// charge accounts n more resident bytes, reclaiming if needed. It returns
// the synchronous reclaim cost. n must be a multiple of PageSize.
func (g *Group) charge(n int64) (sim.Time, error) {
	var cost sim.Time
	for g.Limit > 0 && g.used+n > g.Limit {
		freed, c, ok := g.evictLRU()
		if !ok {
			g.OOMs.Inc()
			return cost, fmt.Errorf("%w (group %q, limit %d)", ErrOutOfMemory, g.Name, g.Limit)
		}
		g.Evictions.Inc()
		cost += c
		_ = freed // uncharge happened inside the member's evictOldest path
	}
	g.used += n
	return cost, nil
}

func (g *Group) uncharge(n int64) {
	g.used -= n
	if g.used < 0 {
		panic("mem: group usage went negative")
	}
}

// evictLRU reclaims the coldest page among all members.
func (g *Group) evictLRU() (int64, sim.Time, bool) {
	var victim evictable
	var oldest sim.Time
	for _, m := range g.members {
		if ts, ok := m.oldestAccess(); ok && (victim == nil || ts < oldest) {
			victim, oldest = m, ts
		}
	}
	if victim == nil {
		return 0, 0, false
	}
	return victim.evictOldest()
}

// Machine bundles the per-host memory substrate: the RAM group, the swap
// device, and the engine. All address spaces and page caches of a host hang
// off its Machine.
type Machine struct {
	Eng   *sim.Engine
	RAM   *Group
	Swap  *SwapDevice
	Costs Costs

	// spaces lists every address space created on this machine, in
	// creation order — the walk set for machine-wide residency probes.
	spaces []*AddressSpace

	// Metric handles (nil = disabled; nil handles are inert). tr feeds
	// reclaim context events into the fault flight recorder.
	tr     *trace.Tracer
	cMinor *trace.Counter
	cMajor *trace.Counter
	cEvict *trace.Counter
	cInval *trace.Counter
	lFault *trace.LatencyHist
}

// SetTracer mirrors machine-wide paging activity (across every address
// space on the machine) into the metrics registry, and registers the
// residency probes the sampler snapshots each tick. Safe to call with nil.
func (m *Machine) SetTracer(tr *trace.Tracer) {
	m.tr = tr
	m.cMinor = tr.Counter("mem.minor_faults")
	m.cMajor = tr.Counter("mem.major_faults")
	m.cEvict = tr.Counter("mem.evictions")
	m.cInval = tr.Counter("mem.invalidations")
	m.lFault = tr.Latency("mem.fault_us")
	tr.Probe("mem.resident_pages", func() float64 {
		sum := 0.0
		for _, as := range m.spaces {
			sum += float64(as.ResidentBytes() / PageSize)
		}
		return sum
	})
	tr.Probe("mem.pinned_bytes", func() float64 {
		sum := 0.0
		for _, as := range m.spaces {
			sum += float64(as.PinnedBytes())
		}
		return sum
	})
}

// NewMachine returns a machine with ramBytes of physical memory and a
// default swap device.
func NewMachine(eng *sim.Engine, ramBytes int64) *Machine {
	return &Machine{
		Eng:   eng,
		RAM:   NewGroup("ram", ramBytes),
		Swap:  DefaultSwap(),
		Costs: DefaultCosts(),
	}
}

// FreeBytes reports unallocated physical memory.
func (m *Machine) FreeBytes() int64 { return m.RAM.Limit - m.RAM.Used() }
