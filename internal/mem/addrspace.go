package mem

import (
	"container/list"
	"errors"
	"fmt"

	"npf/internal/sim"
	"npf/internal/trace"
)

// ErrSegv is returned when touching an address that no VMA covers.
var ErrSegv = errors.New("mem: segmentation fault (address not mapped)")

// pte is the state of one virtual page.
type pte struct {
	pn      PageNum
	present bool
	pinned  bool
	dirty   bool // content exists; eviction must swap out, not drop
	inSwap  bool // next fault-in must read the swap device (major)
	wp      bool // write-protected (COW-shared after Fork)
	cowCopy bool // first materialisation must copy from the fork parent
	access  sim.Time
	lruElem *list.Element // non-nil iff present && !pinned
}

// TouchResult summarises the outcome of an access.
type TouchResult struct {
	// Cost is the synchronous time the access spent in the memory
	// subsystem (fault service, reclaim, swap reads). Zero for hits.
	Cost sim.Time
	// Minor and Major count the page faults taken.
	Minor, Major int
}

// Kind reports the most severe fault taken, for single-page touches.
func (r TouchResult) Kind() FaultKind {
	switch {
	case r.Major > 0:
		return MajorFault
	case r.Minor > 0:
		return MinorFault
	default:
		return NoFault
	}
}

// AddressSpace is the virtual address space of one IOuser (process or VM).
// All state mutation happens on the simulation thread; no locking.
type AddressSpace struct {
	Name string
	m    *Machine
	// groups lists the accounting domains this space charges, innermost
	// first (cgroup, then machine RAM).
	groups []*Group

	pages map[PageNum]*pte
	// lru holds resident, unpinned pages; front is coldest.
	lru *list.List

	// vmas is a bump allocator: pages [0, mappedPages) are mapped.
	mappedPages PageNum

	pinnedBytes   int64
	residentBytes int64
	// MemlockLimit caps pinnedBytes (RLIMIT_MEMLOCK). 0 means unlimited.
	MemlockLimit int64

	notifiers []Notifier

	MinorFaults sim.Counter
	MajorFaults sim.Counter
	Evicted     sim.Counter
	CowBreaks   sim.Counter
	Migrations  sim.Counter
}

// NewAddressSpace creates an address space on machine m, optionally confined
// to a cgroup. It registers with every group for reclaim.
func (m *Machine) NewAddressSpace(name string, cgroup *Group) *AddressSpace {
	as := &AddressSpace{
		Name:  name,
		m:     m,
		pages: make(map[PageNum]*pte),
		lru:   list.New(),
	}
	if cgroup != nil {
		as.groups = append(as.groups, cgroup)
	}
	as.groups = append(as.groups, m.RAM)
	for _, g := range as.groups {
		g.addMember(as)
	}
	m.spaces = append(m.spaces, as)
	return as
}

// Machine returns the host machine this space lives on.
func (as *AddressSpace) Machine() *Machine { return as.m }

// MapBytes maps a fresh, zero-filled, demand-paged region of at least n
// bytes and returns its base address. Nothing becomes resident until
// touched (delayed allocation).
func (as *AddressSpace) MapBytes(n int64) VAddr {
	pages := PageNum((n + PageSize - 1) / PageSize)
	base := as.mappedPages.Base()
	as.mappedPages += pages
	return base
}

// Mapped reports whether page pn is covered by a VMA.
func (as *AddressSpace) Mapped(pn PageNum) bool { return pn >= 0 && pn < as.mappedPages }

// MappedBytes reports the total bytes covered by VMAs (the address-space
// size static pinning must lock down).
func (as *AddressSpace) MappedBytes() int64 { return int64(as.mappedPages) * PageSize }

// ResidentBytes reports bytes currently backed by physical frames.
func (as *AddressSpace) ResidentBytes() int64 { return as.residentBytes }

// PinnedBytes reports bytes currently pinned.
func (as *AddressSpace) PinnedBytes() int64 { return as.pinnedBytes }

// PTEs reports how many page-table entries the space has materialised.
// PTEs are allocated lazily on first touch, so this is the model-state
// footprint a scale-out host actually pays for this space — the number the
// topology layer's bytes-per-host accounting folds in.
func (as *AddressSpace) PTEs() int { return len(as.pages) }

// RegisterNotifier adds an MMU notifier invoked on invalidations.
func (as *AddressSpace) RegisterNotifier(n Notifier) { as.notifiers = append(as.notifiers, n) }

func (as *AddressSpace) pte(pn PageNum) *pte {
	p := as.pages[pn]
	if p == nil {
		p = &pte{pn: pn}
		as.pages[pn] = p
	}
	return p
}

// Resident reports whether page pn is currently backed by a frame.
func (as *AddressSpace) Resident(pn PageNum) bool {
	p := as.pages[pn]
	return p != nil && p.present
}

// Pinned reports whether page pn is pinned.
func (as *AddressSpace) Pinned(pn PageNum) bool {
	p := as.pages[pn]
	return p != nil && p.pinned
}

// Touch accesses the byte range [addr, addr+length), faulting pages in on
// demand. write marks the pages dirty (their content must survive
// eviction).
func (as *AddressSpace) Touch(addr VAddr, length int, write bool) (TouchResult, error) {
	if length <= 0 {
		return TouchResult{}, nil
	}
	return as.TouchPages(addr.Page(), PagesSpanned(addr, length), write)
}

// TouchPages is Touch at page granularity.
func (as *AddressSpace) TouchPages(first PageNum, count int, write bool) (TouchResult, error) {
	var res TouchResult
	now := as.m.Eng.Now()
	for i := 0; i < count; i++ {
		pn := first + PageNum(i)
		if !as.Mapped(pn) {
			return res, fmt.Errorf("%w: page %d in %s", ErrSegv, pn, as.Name)
		}
		p := as.pte(pn)
		if p.present {
			p.access = now
			if write {
				if p.wp {
					// COW break: a write fault plus the page copy.
					res.Cost += as.m.Costs.MinorFault + as.cowBreak(p)
					res.Minor++
				}
				p.dirty = true
			}
			if p.lruElem != nil {
				as.lru.MoveToBack(p.lruElem)
			}
			continue
		}
		cost, major, err := as.faultIn(p)
		if err != nil {
			return res, err
		}
		if write {
			p.dirty = true
		}
		res.Cost += cost
		if major {
			res.Major++
		} else {
			res.Minor++
		}
	}
	return res, nil
}

// FaultInRange populates count pages starting at first in one batched
// operation, as a driver resolving a DMA page fault does: the trap cost is
// paid once and each page adds only the allocation increment (plus swap
// reads for major pages). CPU touches should use TouchPages instead, which
// pays a full fault per page.
func (as *AddressSpace) FaultInRange(first PageNum, count int, write bool) (TouchResult, error) {
	var res TouchResult
	trapPaid := false
	for i := 0; i < count; i++ {
		pn := first + PageNum(i)
		if !as.Mapped(pn) {
			return res, fmt.Errorf("%w: page %d in %s", ErrSegv, pn, as.Name)
		}
		p := as.pte(pn)
		if p.present {
			p.access = as.m.Eng.Now()
			if write {
				if p.wp {
					res.Cost += as.m.Costs.MinorFault + as.cowBreak(p)
					res.Minor++
				}
				p.dirty = true
			}
			if p.lruElem != nil {
				as.lru.MoveToBack(p.lruElem)
			}
			continue
		}
		cost, major, err := as.faultIn(p)
		if err != nil {
			return res, err
		}
		// Replace the per-page trap cost with the batched increment for
		// all pages after the first fault.
		if trapPaid {
			cost -= as.m.Costs.MinorFault
		}
		trapPaid = true
		cost += as.m.Costs.PerPageAlloc
		if write {
			p.dirty = true
		}
		res.Cost += cost
		if major {
			res.Major++
		} else {
			res.Minor++
		}
	}
	return res, nil
}

// faultIn makes page p resident, charging groups (which may reclaim) and
// reading swap if needed. The page ends up unpinned and on the LRU.
func (as *AddressSpace) faultIn(p *pte) (cost sim.Time, major bool, err error) {
	charged, err := as.chargeGroups(PageSize)
	if err != nil {
		return 0, false, err
	}
	cost = charged + as.m.Costs.MinorFault
	if p.inSwap {
		cost += as.m.Swap.ReadCost(PageSize)
		p.inSwap = false
		major = true
		as.MajorFaults.Inc()
		as.m.cMajor.Inc()
	} else {
		as.MinorFaults.Inc()
		as.m.cMinor.Inc()
	}
	if p.cowCopy {
		// Materialising a forked page copies it from the parent.
		cost += CowCopyCost
		p.cowCopy = false
	}
	as.m.lFault.Observe(cost)
	p.present = true
	p.access = as.m.Eng.Now()
	p.lruElem = as.lru.PushBack(p)
	as.residentBytes += PageSize
	return cost, major, nil
}

func (as *AddressSpace) chargeGroups(n int64) (sim.Time, error) {
	var cost sim.Time
	for i, g := range as.groups {
		c, err := g.charge(n)
		cost += c
		if err != nil {
			for j := 0; j < i; j++ {
				as.groups[j].uncharge(n)
			}
			return cost, err
		}
	}
	return cost, nil
}

func (as *AddressSpace) unchargeGroups(n int64) {
	for _, g := range as.groups {
		g.uncharge(n)
	}
}

// Pin faults in and pins count pages starting at first. Pinned pages are
// immune to reclaim. Fails with ErrMemlockLimit if the space's
// RLIMIT_MEMLOCK would be exceeded; in that case no pages are pinned.
func (as *AddressSpace) Pin(first PageNum, count int) (TouchResult, error) {
	need := int64(0)
	for i := 0; i < count; i++ {
		if p := as.pages[first+PageNum(i)]; p == nil || !p.pinned {
			need += PageSize
		}
	}
	if as.MemlockLimit > 0 && as.pinnedBytes+need > as.MemlockLimit {
		return TouchResult{}, fmt.Errorf("%w: %s pinned %d + %d > limit %d",
			ErrMemlockLimit, as.Name, as.pinnedBytes, need, as.MemlockLimit)
	}
	// Touch and pin page by page: pinning immediately protects each page
	// from being reclaimed by the faults the rest of this very call takes.
	var res TouchResult
	var pinnedHere []PageNum
	for i := 0; i < count; i++ {
		pn := first + PageNum(i)
		p := as.pte(pn)
		if p.pinned {
			continue
		}
		tr, err := as.TouchPages(pn, 1, false)
		res.Cost += tr.Cost
		res.Minor += tr.Minor
		res.Major += tr.Major
		if err != nil {
			// Unwind: a failed pin must not leave partial pins behind.
			for _, upn := range pinnedHere {
				as.Unpin(upn, 1)
			}
			return res, err
		}
		p.pinned = true
		if p.lruElem != nil {
			as.lru.Remove(p.lruElem)
			p.lruElem = nil
		}
		as.pinnedBytes += PageSize
		res.Cost += as.m.Costs.PinPage
		pinnedHere = append(pinnedHere, pn)
	}
	return res, nil
}

// Unpin releases the pin on count pages starting at first; they rejoin the
// LRU and become reclaimable.
func (as *AddressSpace) Unpin(first PageNum, count int) sim.Time {
	var cost sim.Time
	for i := 0; i < count; i++ {
		p := as.pages[first+PageNum(i)]
		if p == nil || !p.pinned {
			continue
		}
		p.pinned = false
		as.pinnedBytes -= PageSize
		if p.present && p.lruElem == nil {
			p.access = as.m.Eng.Now()
			p.lruElem = as.lru.PushBack(p)
		}
		cost += as.m.Costs.UnpinPage
	}
	return cost
}

// evictable interface -------------------------------------------------------

func (as *AddressSpace) oldestAccess() (sim.Time, bool) {
	front := as.lru.Front()
	if front == nil {
		return 0, false
	}
	return front.Value.(*pte).access, true
}

func (as *AddressSpace) evictOldest() (int64, sim.Time, bool) {
	front := as.lru.Front()
	if front == nil {
		return 0, 0, false
	}
	p := front.Value.(*pte)
	cost := as.invalidate(p)
	if p.dirty {
		as.m.Swap.WriteCost(PageSize)
		p.inSwap = true
		p.dirty = false
	}
	as.Evicted.Inc()
	as.m.cEvict.Inc()
	// Reclaim context for the fault flight recorder: an eviction (and its
	// invalidation sync) is exactly what tail-fault excerpts need to show.
	as.m.tr.FaultContext(trace.FSReclaim, as.m.Eng.Now(), cost, int64(p.pn), 0)
	return PageSize, cost, true
}

// invalidate removes page p's frame: MMU notifiers run first (Figure 2,
// steps a–d: the OS must not reuse the frame until devices stop using the
// IOVA), then the frame is freed.
func (as *AddressSpace) invalidate(p *pte) sim.Time {
	var cost sim.Time
	as.m.cInval.Inc()
	for _, n := range as.notifiers {
		cost += n.InvalidatePages(p.pn, 1)
	}
	p.present = false
	if p.lruElem != nil {
		as.lru.Remove(p.lruElem)
		p.lruElem = nil
	}
	as.residentBytes -= PageSize
	as.unchargeGroups(PageSize)
	return cost
}

// DiscardPages drops count resident unpinned pages starting at first
// without writing them to swap: the next touch is a minor fault. Fault
// injectors use this to synthesize minor rNPFs (§6.4); it models events
// like page migration or COW breaking that leave content reconstructible
// without device I/O.
func (as *AddressSpace) DiscardPages(first PageNum, count int) (int, sim.Time) {
	discarded := 0
	var cost sim.Time
	for i := 0; i < count; i++ {
		p := as.pages[first+PageNum(i)]
		if p == nil || !p.present || p.pinned {
			continue
		}
		cost += as.invalidate(p)
		p.dirty = false
		p.inSwap = false
		as.Evicted.Inc()
		discarded++
	}
	return discarded, cost
}

// EvictPages forcibly reclaims count resident unpinned pages starting at
// first (used to construct cold-memory scenarios and by tests). It returns
// how many were evicted and the notifier cost.
func (as *AddressSpace) EvictPages(first PageNum, count int) (int, sim.Time) {
	evicted := 0
	var cost sim.Time
	for i := 0; i < count; i++ {
		p := as.pages[first+PageNum(i)]
		if p == nil || !p.present || p.pinned {
			continue
		}
		cost += as.invalidate(p)
		if p.dirty {
			as.m.Swap.WriteCost(PageSize)
			p.inSwap = true
			p.dirty = false
		}
		as.Evicted.Inc()
		evicted++
	}
	return evicted, cost
}
