package mem

import (
	"testing"

	"npf/internal/sim"
)

func TestForkChildLazyCopy(t *testing.T) {
	m := newTestMachine(1 << 30)
	parent := m.NewAddressSpace("parent", nil)
	parent.MapBytes(1 << 20)
	parent.TouchPages(0, 8, true)
	child, _ := parent.Fork("child", nil)
	if child.ResidentBytes() != 0 {
		t.Fatalf("child resident = %d, want lazy", child.ResidentBytes())
	}
	if child.MappedBytes() != parent.MappedBytes() {
		t.Fatal("child VMA mismatch")
	}
	res, err := child.TouchPages(0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Minor != 1 {
		t.Fatalf("child first touch: %+v", res)
	}
	// Materialisation includes the page copy.
	if res.Cost < m.Costs.MinorFault+CowCopyCost {
		t.Fatalf("cost %v below fault+copy", res.Cost)
	}
}

func TestForkWriteProtectsParent(t *testing.T) {
	m := newTestMachine(1 << 30)
	parent := m.NewAddressSpace("parent", nil)
	parent.MapBytes(1 << 20)
	parent.TouchPages(0, 4, true)
	var invalidated int
	parent.RegisterNotifier(NotifierFunc(func(first PageNum, count int) sim.Time {
		invalidated += count
		return 0
	}))
	parent.Fork("child", nil)
	if invalidated != 4 {
		t.Fatalf("fork invalidated %d pages, want all 4 present ones", invalidated)
	}
	// Reads stay free.
	res, _ := parent.TouchPages(0, 1, false)
	if res.Minor != 0 || res.Cost != 0 {
		t.Fatalf("read after fork: %+v", res)
	}
	// First write breaks COW: a minor fault with copy cost.
	res, _ = parent.TouchPages(0, 1, true)
	if res.Minor != 1 || res.Cost < CowCopyCost {
		t.Fatalf("COW break: %+v", res)
	}
	if parent.CowBreaks.N != 1 {
		t.Fatalf("cow breaks = %d", parent.CowBreaks.N)
	}
	// Second write is free.
	res, _ = parent.TouchPages(0, 1, true)
	if res.Minor != 0 {
		t.Fatalf("second write: %+v", res)
	}
}

func TestForkSkipsPinnedPages(t *testing.T) {
	m := newTestMachine(1 << 30)
	parent := m.NewAddressSpace("parent", nil)
	parent.MapBytes(1 << 20)
	parent.Pin(0, 2)
	parent.TouchPages(2, 2, true)
	parent.Fork("child", nil)
	// Pinned pages stay writable (DMA-targeted memory cannot be
	// write-protected under static pinning).
	res, _ := parent.TouchPages(0, 1, true)
	if res.Minor != 0 {
		t.Fatalf("pinned page write-protected by fork: %+v", res)
	}
}

func TestMigratePagesInvalidates(t *testing.T) {
	m := newTestMachine(1 << 30)
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(1 << 20)
	as.TouchPages(0, 8, true)
	var invalidated int
	as.RegisterNotifier(NotifierFunc(func(first PageNum, count int) sim.Time {
		invalidated += count
		return 2 * sim.Microsecond
	}))
	as.Pin(7, 1)
	n, cost := as.MigratePages(0, 8)
	if n != 7 {
		t.Fatalf("migrated %d, want 7 (pinned skipped)", n)
	}
	if invalidated != 7 {
		t.Fatalf("invalidated %d", invalidated)
	}
	if cost < 7*(MigratePerPage+2*sim.Microsecond) {
		t.Fatalf("cost %v too low", cost)
	}
	// Content survives: CPU touch is free, pages still resident.
	res, _ := as.TouchPages(0, 7, false)
	if res.Minor+res.Major != 0 {
		t.Fatalf("migration lost content: %+v", res)
	}
	if as.Migrations.N != 7 {
		t.Fatalf("migrations = %d", as.Migrations.N)
	}
}
