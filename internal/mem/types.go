// Package mem simulates the host virtual-memory subsystem that the paper's
// NPF mechanism leans on: physical frames, per-IOuser address spaces with
// demand paging, pinning (mlock with RLIMIT_MEMLOCK), LRU reclaim under
// cgroup-style memory limits, a swap device, MMU notifiers, and a page
// cache.
//
// Memory is accounting-only: the simulator tracks presence, pinning, dirty
// and reference state per page, not byte contents. That is exactly the
// granularity at which the paper's mechanisms operate.
package mem

import "npf/internal/sim"

// PageSize is the (only) page size of the simulated machine, 4 KiB, matching
// the paper's testbeds.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// VAddr is a virtual address within some address space.
type VAddr uint64

// PageNum is a virtual page number: VAddr >> PageShift.
type PageNum int64

// Page returns the page containing a.
func (a VAddr) Page() PageNum { return PageNum(a >> PageShift) }

// Offset returns the offset of a within its page.
func (a VAddr) Offset() uint64 { return uint64(a) & (PageSize - 1) }

// Base returns the first address of page pn.
func (pn PageNum) Base() VAddr { return VAddr(pn) << PageShift }

// PagesSpanned reports how many pages the byte range [addr, addr+length)
// touches.
func PagesSpanned(addr VAddr, length int) int {
	if length <= 0 {
		return 0
	}
	first := addr.Page()
	last := (addr + VAddr(length) - 1).Page()
	return int(last-first) + 1
}

// FaultKind classifies the outcome of touching a page.
type FaultKind int

const (
	// NoFault: the page was resident.
	NoFault FaultKind = iota
	// MinorFault: the page had to be allocated (first touch / demand zero)
	// or was resident but unmapped; no device access was needed.
	MinorFault
	// MajorFault: the page had to be read back from the swap device.
	MajorFault
)

func (k FaultKind) String() string {
	switch k {
	case NoFault:
		return "none"
	case MinorFault:
		return "minor"
	case MajorFault:
		return "major"
	}
	return "invalid"
}

// Notifier is the simulated counterpart of a Linux MMU notifier: it is
// invoked when pages of an address space are invalidated (evicted, unmapped
// or remapped), before their frames are reused. The returned duration is the
// time the invalidation took (e.g. IOMMU page-table update plus IOTLB flush,
// the paper's Figure 2 steps a–d); it is charged to the eviction path.
type Notifier interface {
	InvalidatePages(first PageNum, count int) sim.Time
}

// NotifierFunc adapts a function to the Notifier interface.
type NotifierFunc func(first PageNum, count int) sim.Time

// InvalidatePages implements Notifier.
func (f NotifierFunc) InvalidatePages(first PageNum, count int) sim.Time {
	return f(first, count)
}

// Costs models CPU-side memory-management latencies. The defaults are
// typical of the paper's Linux 3.x testbed.
type Costs struct {
	// MinorFault is the CPU cost of servicing one minor page fault.
	MinorFault sim.Time
	// PerPageAlloc is the incremental cost per additional page when a
	// single fault populates many pages (batched fault-around).
	PerPageAlloc sim.Time
	// PinPage / UnpinPage are per-page get_user_pages/put_page costs.
	PinPage   sim.Time
	UnpinPage sim.Time
}

// DefaultCosts returns the calibrated defaults.
func DefaultCosts() Costs {
	return Costs{
		MinorFault:   1 * sim.Microsecond,
		PerPageAlloc: 60 * sim.Nanosecond,
		PinPage:      250 * sim.Nanosecond,
		UnpinPage:    150 * sim.Nanosecond,
	}
}
