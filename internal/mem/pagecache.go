package mem

import (
	"container/list"

	"npf/internal/sim"
)

// PageCache models an OS page cache in front of a disk: reads of cached
// blocks are free, misses pay the disk and insert the block, and cached
// blocks compete for memory with everything else in the same groups (which
// is exactly the competition Figure 8a measures between tgt's pinned
// communication buffers and the cache).
type PageCache struct {
	Name      string
	m         *Machine
	groups    []*Group
	Disk      *SwapDevice
	BlockSize int64

	blocks map[int64]*cacheBlock
	lru    *list.List

	Hits   sim.Counter
	Misses sim.Counter
}

type cacheBlock struct {
	id      int64
	access  sim.Time
	lruElem *list.Element
}

// NewPageCache creates a page cache on machine m charging the given cgroup
// (may be nil) and machine RAM, reading from disk with the given block size.
func (m *Machine) NewPageCache(name string, cgroup *Group, disk *SwapDevice, blockSize int64) *PageCache {
	pc := &PageCache{
		Name:      name,
		m:         m,
		Disk:      disk,
		BlockSize: blockSize,
		blocks:    make(map[int64]*cacheBlock),
		lru:       list.New(),
	}
	if cgroup != nil {
		pc.groups = append(pc.groups, cgroup)
	}
	pc.groups = append(pc.groups, m.RAM)
	for _, g := range pc.groups {
		g.addMember(pc)
	}
	return pc
}

// ResidentBytes reports the cache's current footprint.
func (pc *PageCache) ResidentBytes() int64 { return int64(len(pc.blocks)) * pc.BlockSize }

// Read reads one block, returning its synchronous cost and whether it hit.
// A miss pays the disk and inserts the block, reclaiming cold memory from
// the cache's groups if needed; if even reclaim cannot make room the read
// still succeeds but the block is not cached (uncached I/O).
func (pc *PageCache) Read(block int64) (cost sim.Time, hit bool) {
	if b := pc.blocks[block]; b != nil {
		b.access = pc.m.Eng.Now()
		pc.lru.MoveToBack(b.lruElem)
		pc.Hits.Inc()
		return 0, true
	}
	pc.Misses.Inc()
	cost = pc.Disk.ReadCost(int(pc.BlockSize))
	chargeCost, err := pc.charge(pc.BlockSize)
	cost += chargeCost
	if err != nil {
		return cost, false // uncached read; nothing to evict anywhere
	}
	b := &cacheBlock{id: block, access: pc.m.Eng.Now()}
	b.lruElem = pc.lru.PushBack(b)
	pc.blocks[block] = b
	return cost, false
}

func (pc *PageCache) charge(n int64) (sim.Time, error) {
	var cost sim.Time
	for i, g := range pc.groups {
		c, err := g.charge(n)
		cost += c
		if err != nil {
			for j := 0; j < i; j++ {
				pc.groups[j].uncharge(n)
			}
			return cost, err
		}
	}
	return cost, nil
}

// evictable interface.

func (pc *PageCache) oldestAccess() (sim.Time, bool) {
	front := pc.lru.Front()
	if front == nil {
		return 0, false
	}
	return front.Value.(*cacheBlock).access, true
}

func (pc *PageCache) evictOldest() (int64, sim.Time, bool) {
	front := pc.lru.Front()
	if front == nil {
		return 0, 0, false
	}
	b := front.Value.(*cacheBlock)
	pc.lru.Remove(b.lruElem)
	delete(pc.blocks, b.id)
	for _, g := range pc.groups {
		g.uncharge(pc.BlockSize)
	}
	return pc.BlockSize, 0, true
}
