package mem

import (
	"sort"

	"npf/internal/sim"
)

// This file implements the canonical memory optimizations from the paper's
// Table 1 that interact with device DMA beyond plain demand paging: fork
// with copy-on-write semantics, and page migration (NUMA balancing /
// compaction / hot-unplug). §5 names both as sources of "cold sequences"
// on otherwise warm rings: they strip device mappings from resident pages,
// so the next DMA faults even though the application never unmapped
// anything.

// CowCopyCost is the CPU cost of copying one page when breaking COW or
// materialising a forked page.
const CowCopyCost = 450 * sim.Nanosecond

// MigratePerPage is the kernel cost of migrating one page (allocation,
// copy, remap).
const MigratePerPage = 900 * sim.Nanosecond

// Fork creates a copy-on-write child of the address space, as fork(2)
// does:
//
//   - the child covers the same virtual range; its pages materialise
//     lazily on first touch (minor fault + page copy);
//   - every present parent page becomes write-protected; the parent's (and
//     its devices') first write must break COW, so all device mappings are
//     invalidated through the MMU notifiers — exactly the event that
//     re-colds a warm receive ring.
//
// The child is charged for its pages as it touches them (no shared-frame
// accounting: content-free simulation makes sharing invisible except
// through the faults and invalidations modelled here, which are what the
// paper cares about).
func (as *AddressSpace) Fork(name string, cgroup *Group) (*AddressSpace, sim.Time) {
	child := as.m.NewAddressSpace(name, cgroup)
	child.mappedPages = as.mappedPages
	child.MemlockLimit = as.MemlockLimit
	var cost sim.Time
	// Walk pages in sorted order: the write-protect notifiers below reach
	// the driver, which can schedule engine events (e.g. chaos-duplicated
	// invalidations) — map order would reorder same-timestamp events and
	// break replay.
	pns := make([]PageNum, 0, len(as.pages))
	for pn := range as.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	for _, pn := range pns {
		p := as.pages[pn]
		if !p.present {
			continue
		}
		// Child: lazily copied on first touch.
		cp := child.pte(pn)
		cp.cowCopy = true
		// Parent: write-protect; devices must stop writing through stale
		// mappings immediately.
		if !p.wp && !p.pinned {
			p.wp = true
			for _, n := range as.notifiers {
				cost += n.InvalidatePages(pn, 1)
			}
		}
	}
	return child, cost
}

// cowBreak clears write protection on p, paying the copy.
func (as *AddressSpace) cowBreak(p *pte) sim.Time {
	p.wp = false
	as.CowBreaks.Inc()
	return CowCopyCost
}

// MigratePages moves count resident, unpinned pages to new frames (NUMA
// migration, compaction, hot-unplug). Content survives — the next CPU
// touch is free — but device mappings become stale and are invalidated, so
// the next DMA faults. Returns pages migrated and the synchronous cost.
func (as *AddressSpace) MigratePages(first PageNum, count int) (int, sim.Time) {
	migrated := 0
	var cost sim.Time
	for i := 0; i < count; i++ {
		p := as.pages[first+PageNum(i)]
		if p == nil || !p.present || p.pinned {
			continue
		}
		for _, n := range as.notifiers {
			cost += n.InvalidatePages(p.pn, 1)
		}
		cost += MigratePerPage
		as.Migrations.Inc()
		migrated++
	}
	return migrated, cost
}
