package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"npf/internal/sim"
)

func newTestMachine(ramBytes int64) *Machine {
	return NewMachine(sim.NewEngine(1), ramBytes)
}

func TestPagesSpanned(t *testing.T) {
	cases := []struct {
		addr   VAddr
		length int
		want   int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, PageSize, 1},
		{0, PageSize + 1, 2},
		{PageSize - 1, 2, 2},
		{100, 4 << 20, 1025},
		{0, 4 << 20, 1024},
	}
	for _, c := range cases {
		if got := PagesSpanned(c.addr, c.length); got != c.want {
			t.Errorf("PagesSpanned(%d,%d) = %d, want %d", c.addr, c.length, got, c.want)
		}
	}
}

func TestDemandPaging(t *testing.T) {
	m := newTestMachine(1 << 20)
	as := m.NewAddressSpace("p", nil)
	base := as.MapBytes(64 * PageSize)
	if as.ResidentBytes() != 0 {
		t.Fatal("mapping should not allocate (delayed allocation)")
	}
	res, err := as.Touch(base, PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Minor != 1 || res.Major != 0 {
		t.Fatalf("first touch: %+v, want one minor fault", res)
	}
	if as.ResidentBytes() != PageSize {
		t.Fatalf("resident = %d, want one page", as.ResidentBytes())
	}
	res, err = as.Touch(base, PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind() != NoFault || res.Cost != 0 {
		t.Fatalf("second touch should hit: %+v", res)
	}
}

func TestSegv(t *testing.T) {
	m := newTestMachine(1 << 20)
	as := m.NewAddressSpace("p", nil)
	_ = as.MapBytes(PageSize)
	if _, err := as.Touch(5*PageSize, 1, false); !errors.Is(err, ErrSegv) {
		t.Fatalf("err = %v, want ErrSegv", err)
	}
}

func TestEvictionAndMajorFault(t *testing.T) {
	m := newTestMachine(4 * PageSize)
	as := m.NewAddressSpace("p", nil)
	base := as.MapBytes(16 * PageSize)
	// Dirty 4 pages, filling RAM.
	for i := PageNum(0); i < 4; i++ {
		if _, err := as.TouchPages(i, 1, true); err != nil {
			t.Fatal(err)
		}
	}
	// A 5th page forces eviction of page 0 (LRU).
	if _, err := as.TouchPages(4, 1, true); err != nil {
		t.Fatal(err)
	}
	if as.Resident(0) {
		t.Fatal("LRU page 0 should have been evicted")
	}
	if m.RAM.Used() != 4*PageSize {
		t.Fatalf("RAM used = %d, want full", m.RAM.Used())
	}
	// Touching page 0 again is a major fault (it was dirty → swapped).
	res, err := as.TouchPages(0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Major != 1 {
		t.Fatalf("re-touch: %+v, want major fault", res)
	}
	if res.Cost < m.Swap.ReadLatency {
		t.Fatalf("major fault cost %v < swap latency %v", res.Cost, m.Swap.ReadLatency)
	}
	_ = base
}

func TestCleanPagesDroppedNotSwapped(t *testing.T) {
	m := newTestMachine(2 * PageSize)
	as := m.NewAddressSpace("p", nil)
	_ = as.MapBytes(16 * PageSize)
	// Read-only touches: clean pages.
	as.TouchPages(0, 1, false)
	as.TouchPages(1, 1, false)
	as.TouchPages(2, 1, false) // evicts page 0, clean → dropped
	res, err := as.TouchPages(0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Minor != 1 || res.Major != 0 {
		t.Fatalf("clean page should re-fault minor: %+v", res)
	}
}

func TestPinBlocksEviction(t *testing.T) {
	m := newTestMachine(2 * PageSize)
	as := m.NewAddressSpace("p", nil)
	_ = as.MapBytes(16 * PageSize)
	if _, err := as.Pin(0, 2); err != nil {
		t.Fatal(err)
	}
	// RAM is full of pinned pages: next fault must OOM.
	if _, err := as.TouchPages(2, 1, false); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	as.Unpin(0, 1)
	if _, err := as.TouchPages(2, 1, false); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
	if as.Resident(0) {
		t.Fatal("unpinned page should have been the eviction victim")
	}
}

func TestMemlockLimit(t *testing.T) {
	m := newTestMachine(1 << 20)
	as := m.NewAddressSpace("p", nil)
	_ = as.MapBytes(1 << 20)
	as.MemlockLimit = 64 * 1024 // Linux's default RLIMIT_MEMLOCK (§3)
	if _, err := as.Pin(0, 16); err != nil {
		t.Fatalf("pin within limit: %v", err)
	}
	if _, err := as.Pin(16, 1); !errors.Is(err, ErrMemlockLimit) {
		t.Fatalf("err = %v, want ErrMemlockLimit", err)
	}
	if as.PinnedBytes() != 64*1024 {
		t.Fatalf("failed pin must not change pinnedBytes: %d", as.PinnedBytes())
	}
}

func TestPinIdempotent(t *testing.T) {
	m := newTestMachine(1 << 20)
	as := m.NewAddressSpace("p", nil)
	_ = as.MapBytes(1 << 20)
	as.Pin(0, 4)
	as.Pin(0, 4)
	if as.PinnedBytes() != 4*PageSize {
		t.Fatalf("double pin counted twice: %d", as.PinnedBytes())
	}
	as.Unpin(0, 4)
	as.Unpin(0, 4)
	if as.PinnedBytes() != 0 {
		t.Fatalf("pinned after unpin: %d", as.PinnedBytes())
	}
}

func TestCgroupLimit(t *testing.T) {
	m := newTestMachine(1 << 30)
	cg := NewGroup("container", 4*PageSize)
	as := m.NewAddressSpace("p", cg)
	_ = as.MapBytes(1 << 20)
	for i := PageNum(0); i < 8; i++ {
		if _, err := as.TouchPages(i, 1, true); err != nil {
			t.Fatal(err)
		}
	}
	if as.ResidentBytes() != 4*PageSize {
		t.Fatalf("resident = %d, want cgroup limit", as.ResidentBytes())
	}
	if cg.Used() != 4*PageSize {
		t.Fatalf("cgroup used = %d", cg.Used())
	}
	if m.RAM.Used() != 4*PageSize {
		t.Fatalf("RAM used = %d, must mirror cgroup", m.RAM.Used())
	}
	if as.Evicted.N != 4 {
		t.Fatalf("evictions = %d, want 4", as.Evicted.N)
	}
}

func TestNotifierRunsOnEviction(t *testing.T) {
	m := newTestMachine(2 * PageSize)
	as := m.NewAddressSpace("p", nil)
	_ = as.MapBytes(1 << 20)
	var invalidated []PageNum
	as.RegisterNotifier(NotifierFunc(func(first PageNum, count int) sim.Time {
		for i := 0; i < count; i++ {
			invalidated = append(invalidated, first+PageNum(i))
		}
		return 5 * sim.Microsecond
	}))
	as.TouchPages(0, 2, true)
	res, err := as.TouchPages(2, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(invalidated) != 1 || invalidated[0] != 0 {
		t.Fatalf("invalidated = %v, want [0]", invalidated)
	}
	if res.Cost < 5*sim.Microsecond {
		t.Fatalf("notifier cost not charged: %v", res.Cost)
	}
}

func TestLRUOrderRespectsTouches(t *testing.T) {
	m := newTestMachine(3 * PageSize)
	as := m.NewAddressSpace("p", nil)
	_ = as.MapBytes(1 << 20)
	as.TouchPages(0, 1, false)
	m.Eng.RunUntil(m.Eng.Now() + sim.Microsecond)
	as.TouchPages(1, 1, false)
	m.Eng.RunUntil(m.Eng.Now() + sim.Microsecond)
	as.TouchPages(2, 1, false)
	m.Eng.RunUntil(m.Eng.Now() + sim.Microsecond)
	as.TouchPages(0, 1, false) // refresh page 0: page 1 is now coldest
	as.TouchPages(3, 1, false)
	if as.Resident(1) {
		t.Fatal("page 1 should have been evicted (coldest)")
	}
	if !as.Resident(0) {
		t.Fatal("recently touched page 0 must survive")
	}
}

func TestTwoSpacesCompeteForRAM(t *testing.T) {
	m := newTestMachine(4 * PageSize)
	a := m.NewAddressSpace("a", nil)
	b := m.NewAddressSpace("b", nil)
	_ = a.MapBytes(1 << 20)
	_ = b.MapBytes(1 << 20)
	a.TouchPages(0, 4, true) // a fills RAM
	m.Eng.RunUntil(sim.Microsecond)
	if _, err := b.TouchPages(0, 2, true); err != nil {
		t.Fatal(err)
	}
	if a.ResidentBytes() != 2*PageSize || b.ResidentBytes() != 2*PageSize {
		t.Fatalf("resident a=%d b=%d, want memory to move to b",
			a.ResidentBytes(), b.ResidentBytes())
	}
}

func TestEvictPagesForced(t *testing.T) {
	m := newTestMachine(1 << 20)
	as := m.NewAddressSpace("p", nil)
	_ = as.MapBytes(1 << 20)
	as.TouchPages(0, 8, true)
	as.Pin(3, 1)
	n, _ := as.EvictPages(0, 8)
	if n != 7 {
		t.Fatalf("evicted %d, want 7 (pinned page skipped)", n)
	}
	if !as.Resident(3) {
		t.Fatal("pinned page evicted")
	}
}

func TestPageCache(t *testing.T) {
	m := newTestMachine(4 << 20)
	disk := &SwapDevice{ReadLatency: sim.Millisecond}
	pc := m.NewPageCache("pc", nil, disk, 1<<20)
	cost, hit := pc.Read(1)
	if hit || cost < sim.Millisecond {
		t.Fatalf("first read: cost=%v hit=%v", cost, hit)
	}
	cost, hit = pc.Read(1)
	if !hit || cost != 0 {
		t.Fatalf("second read: cost=%v hit=%v", cost, hit)
	}
	// Fill past RAM: 4 distinct blocks fit, the 5th evicts block 1.
	pc.Read(2)
	pc.Read(3)
	pc.Read(4)
	pc.Read(5)
	if _, hit := pc.Read(1); hit {
		t.Fatal("block 1 should have been evicted")
	}
	if pc.ResidentBytes() > 4<<20 {
		t.Fatalf("cache exceeds RAM: %d", pc.ResidentBytes())
	}
}

func TestPageCacheCompetesWithPinnedMemory(t *testing.T) {
	m := newTestMachine(4 << 20)
	as := m.NewAddressSpace("tgt", nil)
	_ = as.MapBytes(8 << 20)
	if _, err := as.Pin(0, 768); err != nil { // pin 3 MiB of 4 MiB
		t.Fatal(err)
	}
	disk := &SwapDevice{ReadLatency: sim.Millisecond}
	pc := m.NewPageCache("pc", nil, disk, 1<<20)
	pc.Read(1)
	if pc.ResidentBytes() != 1<<20 {
		t.Fatalf("cache resident = %d", pc.ResidentBytes())
	}
	// Second block cannot fit: pinned pages are unreclaimable, so the read
	// succeeds uncached.
	pc.Read(2)
	if pc.ResidentBytes() > 1<<20 {
		t.Fatalf("cache grew past available memory: %d", pc.ResidentBytes())
	}
}

// Property: resident bytes never exceed any group limit, under random
// touch/pin/unpin/evict sequences.
func TestAccountingInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		m := newTestMachine(8 * PageSize)
		cg := NewGroup("cg", 6*PageSize)
		as := m.NewAddressSpace("p", cg)
		_ = as.MapBytes(64 * PageSize)
		as.MemlockLimit = 4 * PageSize
		for _, op := range ops {
			pn := PageNum(op % 32)
			switch op % 4 {
			case 0:
				as.TouchPages(pn, 1, false)
			case 1:
				as.TouchPages(pn, 1, true)
			case 2:
				as.Pin(pn, 1)
			case 3:
				as.Unpin(pn, 1)
			}
			if m.RAM.Used() > m.RAM.Limit || cg.Used() > cg.Limit {
				return false
			}
			if as.PinnedBytes() > as.MemlockLimit {
				return false
			}
			if as.ResidentBytes() != cg.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
