package mem

import (
	"errors"
	"testing"
)

func TestFaultInRangeBatchesCheaperThanTouch(t *testing.T) {
	m := newTestMachine(1 << 30)
	asA := m.NewAddressSpace("touch", nil)
	asA.MapBytes(8 << 20)
	asB := m.NewAddressSpace("batch", nil)
	asB.MapBytes(8 << 20)

	resTouch, err := asA.TouchPages(0, 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	resBatch, err := asB.FaultInRange(0, 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	if resBatch.Minor != 1024 || resTouch.Minor != 1024 {
		t.Fatalf("minor counts: touch=%d batch=%d", resTouch.Minor, resBatch.Minor)
	}
	if resBatch.Cost >= resTouch.Cost {
		t.Fatalf("batched fault-in %v should be cheaper than per-page touches %v",
			resBatch.Cost, resTouch.Cost)
	}
}

func TestFaultInRangeMajor(t *testing.T) {
	m := newTestMachine(1 << 30)
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(1 << 20)
	as.TouchPages(0, 4, true)
	as.EvictPages(0, 4)
	res, err := as.FaultInRange(0, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Major != 4 || res.Minor != 4 {
		t.Fatalf("major=%d minor=%d, want 4/4", res.Major, res.Minor)
	}
	if res.Cost < 4*m.Swap.ReadLatency {
		t.Fatalf("cost %v below 4 swap reads", res.Cost)
	}
}

func TestDiscardPagesMakesMinorRefaults(t *testing.T) {
	m := newTestMachine(1 << 30)
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(1 << 20)
	as.TouchPages(0, 2, true) // dirty
	n, _ := as.DiscardPages(0, 2)
	if n != 2 {
		t.Fatalf("discarded %d", n)
	}
	res, err := as.TouchPages(0, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Major != 0 || res.Minor != 2 {
		t.Fatalf("refault major=%d minor=%d, want minor only", res.Major, res.Minor)
	}
}

func TestDiscardSkipsPinned(t *testing.T) {
	m := newTestMachine(1 << 30)
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(1 << 20)
	as.Pin(0, 1)
	if n, _ := as.DiscardPages(0, 1); n != 0 {
		t.Fatalf("discarded pinned page")
	}
}

func TestPinUnwindOnOOM(t *testing.T) {
	m := newTestMachine(4 * PageSize)
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(1 << 20)
	// Pinning 6 pages into 4 pages of RAM must fail and leave nothing
	// pinned behind.
	_, err := as.Pin(0, 6)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v", err)
	}
	if as.PinnedBytes() != 0 {
		t.Fatalf("failed pin left %d bytes pinned", as.PinnedBytes())
	}
	// The space is still usable afterwards.
	if _, err := as.Pin(0, 4); err != nil {
		t.Fatalf("subsequent pin: %v", err)
	}
}

func TestPinnedImpliesResidentInvariant(t *testing.T) {
	m := newTestMachine(8 * PageSize)
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(1 << 20)
	if _, err := as.Pin(0, 8); err != nil {
		t.Fatal(err)
	}
	for i := PageNum(0); i < 8; i++ {
		if as.Pinned(i) && !as.Resident(i) {
			t.Fatalf("page %d pinned but not resident", i)
		}
	}
}

func TestGroupOOMCounter(t *testing.T) {
	m := newTestMachine(2 * PageSize)
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(1 << 20)
	as.Pin(0, 2)
	if _, err := as.TouchPages(4, 1, false); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v", err)
	}
	if m.RAM.OOMs.N != 1 {
		t.Fatalf("OOM counter = %d", m.RAM.OOMs.N)
	}
}

func TestSwapBandwidthCost(t *testing.T) {
	d := &SwapDevice{ReadLatency: 0, ReadBandwidth: 1 << 30} // 1 GiB/s
	cost := d.ReadCost(1 << 20)                              // 1 MiB
	wantNs := int64(1<<20) * 1e9 / (1 << 30)
	if int64(cost) != wantNs {
		t.Fatalf("cost = %v, want %dns", cost, wantNs)
	}
}
