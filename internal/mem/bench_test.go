package mem

import (
	"testing"

	"npf/internal/sim"
)

func BenchmarkTouchWarm(b *testing.B) {
	m := NewMachine(sim.NewEngine(1), 1<<30)
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(1 << 20)
	as.TouchPages(0, 256, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as.TouchPages(PageNum(i&255), 1, false)
	}
}

func BenchmarkFaultInEvictCycle(b *testing.B) {
	// Steady-state paging: every fault-in evicts another page.
	m := NewMachine(sim.NewEngine(1), 256*PageSize)
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(1 << 30)
	as.TouchPages(0, 256, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := as.TouchPages(256+PageNum(i%4096), 1, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultInRangeBatch(b *testing.B) {
	m := NewMachine(sim.NewEngine(1), 1<<34)
	as := m.NewAddressSpace("p", nil)
	as.MapBytes(1 << 33)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := as.FaultInRange(PageNum(i*64)%(1<<20), 64, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageCacheHit(b *testing.B) {
	m := NewMachine(sim.NewEngine(1), 1<<30)
	pc := m.NewPageCache("pc", nil, DefaultSwap(), 1<<20)
	for i := int64(0); i < 64; i++ {
		pc.Read(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc.Read(int64(i & 63))
	}
}
