package iommu

import (
	"npf/internal/mem"
	"npf/internal/sim"
)

// GuestTable is the IOuser-managed first level of a two-dimensional IOMMU
// translation (§2.4): the guest table translates guest-virtual to
// guest-physical (and is how an IOuser enforces "strict" protection on its
// own channel), while the host-level Domain — the IOprovider's table — is
// where NPFs and the canonical memory optimizations live. The hardware
// concatenates the two walks.
//
// The simulation models the guest level as a permission filter: accesses
// outside the allowed set are protection violations the device must drop,
// *not* NPFs — no amount of IOprovider paging can make them legal.
type GuestTable struct {
	allowed map[mem.PageNum]bool

	// Violations counts accesses the guest table blocked.
	Violations sim.Counter
}

// NewGuestTable returns an empty (all-blocking) guest table.
func NewGuestTable() *GuestTable {
	return &GuestTable{allowed: make(map[mem.PageNum]bool)}
}

// Allow grants DMA access to count pages starting at first.
func (g *GuestTable) Allow(first mem.PageNum, count int) {
	for i := 0; i < count; i++ {
		g.allowed[first+mem.PageNum(i)] = true
	}
}

// Revoke removes DMA access (the IOuser's fine-grained unmap).
func (g *GuestTable) Revoke(first mem.PageNum, count int) {
	for i := 0; i < count; i++ {
		delete(g.allowed, first+mem.PageNum(i))
	}
}

// Allowed reports whether pn may be DMAed.
func (g *GuestTable) Allowed(pn mem.PageNum) bool { return g.allowed[pn] }

// AllowedPages reports the grant count.
func (g *GuestTable) AllowedPages() int { return len(g.allowed) }

// SetGuestTable installs (or clears, with nil) the guest level on this
// domain. With a guest table set, every device walk pays a second-level
// walk cost, and Blocked must be consulted before the fault path.
func (d *Domain) SetGuestTable(g *GuestTable) { d.guest = g }

// GuestTable returns the installed guest table, if any.
func (d *Domain) GuestTable() *GuestTable { return d.guest }

// Blocked reports whether any page of the access [addr, addr+length) is
// forbidden by the guest table. Blocked accesses are protection violations:
// the device drops them and no NPF is raised.
func (d *Domain) Blocked(addr mem.VAddr, length int) bool {
	if d.guest == nil || length <= 0 {
		return false
	}
	first := addr.Page()
	n := mem.PagesSpanned(addr, length)
	for i := 0; i < n; i++ {
		if !d.guest.allowed[first+mem.PageNum(i)] {
			d.guest.Violations.Inc()
			return true
		}
	}
	return false
}
