package iommu

import (
	"testing"

	"npf/internal/mem"
)

func TestMapBatchSingleSync(t *testing.T) {
	u := New(0)
	a, b := u.NewDomain(), u.NewDomain()
	pages := []mem.PageNum{3, 7, 100, 101}
	costBatch := a.MapBatch(pages)
	var costSingles int64
	for _, pn := range pages {
		costSingles += int64(b.Map(pn, 1))
	}
	if int64(costBatch) >= costSingles {
		t.Fatalf("batch %v not cheaper than singles %v", costBatch, costSingles)
	}
	for _, pn := range pages {
		if !a.Present(pn) {
			t.Fatalf("page %d missing after batch", pn)
		}
	}
	if a.MappedPages() != 4 {
		t.Fatalf("mapped = %d", a.MappedPages())
	}
}

func TestMapBatchEmpty(t *testing.T) {
	u := New(0)
	d := u.NewDomain()
	if cost := d.MapBatch(nil); cost != 0 {
		t.Fatalf("empty batch cost %v", cost)
	}
}

func TestUnmapBatch(t *testing.T) {
	u := New(16)
	d := u.NewDomain()
	d.MapBatch([]mem.PageNum{1, 2, 3, 50})
	d.Translate(mem.PageNum(1).Base(), 3*mem.PageSize) // fill IOTLB
	cost, removed := d.UnmapBatch([]mem.PageNum{1, 3, 50, 99})
	if removed != 3 {
		t.Fatalf("removed = %d, want 3", removed)
	}
	if cost < u.Costs.InvalidateSync || cost > u.Costs.InvalidateSync+10*u.Costs.InvalidatePerPage {
		t.Fatalf("cost = %v", cost)
	}
	if d.MappedPages() != 1 || !d.Present(2) {
		t.Fatalf("wrong survivors: mapped=%d", d.MappedPages())
	}
	// IOTLB must not serve stale entries.
	_, missing := d.Translate(mem.PageNum(1).Base(), 1)
	if len(missing) != 1 {
		t.Fatal("stale IOTLB entry after UnmapBatch")
	}
}

func TestUnmapBatchAllAbsent(t *testing.T) {
	u := New(0)
	d := u.NewDomain()
	cost, removed := d.UnmapBatch([]mem.PageNum{5, 6})
	if cost != 0 || removed != 0 {
		t.Fatalf("absent batch: cost=%v removed=%d", cost, removed)
	}
}
