// Package iommu models the I/O memory management unit that translates
// device DMA addresses (IOVAs) to physical frames. In the paper's prototype
// the IOMMU lives on the NIC (Connect-IB's own translation tables are used
// in place of ATS/PRI); here a Unit holds per-IOchannel Domains whose page
// tables may contain non-present entries — the prerequisite for network
// page faults.
//
// The Unit does not resolve faults; it only reports missing translations.
// The driver (internal/core) maps pages after the OS faults them in, and
// unmaps them from MMU-notifier callbacks, paying the modelled costs for
// page-table updates and IOTLB invalidations.
package iommu

import (
	"fmt"

	"npf/internal/mem"
	"npf/internal/sim"
	"npf/internal/trace"
)

// DomainID identifies a translation domain (one per IOchannel).
type DomainID int32

// Costs models hardware/software interaction latencies of the on-NIC IOMMU.
// The paper notes (§4) that driver updates to the NIC's DRAM-resident page
// tables require explicit communication with the device due to coherency,
// which is why "update hw PT" is tagged [sw + hw] in Figure 3.
type Costs struct {
	// MapSync is the fixed cost of one page-table update transaction with
	// the device (doorbell + coherency sync).
	MapSync sim.Time
	// MapPerPage is the incremental cost per PTE written in a batch.
	MapPerPage sim.Time
	// InvalidateSync is the fixed cost of an IOTLB invalidation handshake
	// (Figure 2 steps b–c: driver issues invalidation, NIC acknowledges).
	InvalidateSync sim.Time
	// InvalidatePerPage is the incremental cost per invalidated PTE.
	InvalidatePerPage sim.Time
	// WalkLatency is the device-side cost of a page-table walk on an IOTLB
	// miss.
	WalkLatency sim.Time
}

// DefaultCosts returns values calibrated against the paper's Figure 3.
func DefaultCosts() Costs {
	return Costs{
		MapSync:           35 * sim.Microsecond,
		MapPerPage:        35 * sim.Nanosecond,
		InvalidateSync:    30 * sim.Microsecond,
		InvalidatePerPage: 40 * sim.Nanosecond,
		WalkLatency:       200 * sim.Nanosecond,
	}
}

// Unit is one IOMMU instance (one per NIC).
type Unit struct {
	Costs   Costs
	domains map[DomainID]*Domain
	nextID  DomainID

	iotlb *iotlb

	// Faults counts translation misses observed by devices.
	Faults sim.Counter

	// Metric handles (nil = disabled; nil handles are inert).
	cHits       *trace.Counter
	cMisses     *trace.Counter
	cWalks      *trace.Counter
	cFaults     *trace.Counter
	cMapPages   *trace.Counter
	cUnmapPages *trace.Counter
	cMapBatch   *trace.Counter
	cInvBatch   *trace.Counter
}

// SetTracer mirrors the unit's IOTLB/walk/map/invalidate activity into the
// metrics registry. Safe to call with nil.
func (u *Unit) SetTracer(tr *trace.Tracer) {
	u.cHits = tr.Counter("iommu.iotlb_hits")
	u.cMisses = tr.Counter("iommu.iotlb_misses")
	u.cWalks = tr.Counter("iommu.walks")
	u.cFaults = tr.Counter("iommu.faults")
	u.cMapPages = tr.Counter("iommu.map_pages")
	u.cUnmapPages = tr.Counter("iommu.unmap_pages")
	u.cMapBatch = tr.Counter("iommu.map_batches")
	u.cInvBatch = tr.Counter("iommu.inv_batches")
}

// New returns a Unit with default costs and an IOTLB of the given capacity
// in entries (0 disables IOTLB modelling: every access walks).
func New(iotlbEntries int) *Unit {
	u := &Unit{
		Costs:   DefaultCosts(),
		domains: make(map[DomainID]*Domain),
	}
	if iotlbEntries > 0 {
		u.iotlb = newIOTLB(iotlbEntries)
	}
	return u
}

// Domain is one I/O page table: the set of IOVAs a device may currently DMA
// to. Page numbers are in the owning IOuser's virtual address space (the
// paper's IOVAs equal process virtual addresses for RDMA memory regions).
type Domain struct {
	ID      DomainID
	unit    *Unit
	present map[mem.PageNum]bool // page → writable
	// guest is the optional IOuser-managed first translation level (§2.4).
	guest *GuestTable
	// Mapped counts currently present PTEs.
	Mapped int
}

// NewDomain allocates a fresh, empty translation domain.
func (u *Unit) NewDomain() *Domain {
	u.nextID++
	d := &Domain{ID: u.nextID, unit: u, present: make(map[mem.PageNum]bool)}
	u.domains[d.ID] = d
	return d
}

// Present reports whether page pn currently translates (for at least read
// access).
func (d *Domain) Present(pn mem.PageNum) bool { _, ok := d.present[pn]; return ok }

// Writable reports whether page pn translates for device writes.
func (d *Domain) Writable(pn mem.PageNum) bool { return d.present[pn] }

// MappedPages returns the number of present PTEs.
func (d *Domain) MappedPages() int { return d.Mapped }

// Map installs translations for count pages starting at first, returning
// the modelled driver+hardware cost. Already-present pages cost only the
// per-page increment (the sync is paid once per batch).
func (d *Domain) Map(first mem.PageNum, count int) sim.Time {
	if count <= 0 {
		return 0
	}
	cost := d.unit.Costs.MapSync
	d.unit.cMapBatch.Inc()
	for i := 0; i < count; i++ {
		cost += d.mapOne(first+mem.PageNum(i), true)
	}
	return cost
}

// mapOne installs or upgrades one PTE, returning the per-page increment.
func (d *Domain) mapOne(pn mem.PageNum, writable bool) sim.Time {
	d.unit.cMapPages.Inc()
	w, ok := d.present[pn]
	if !ok {
		d.present[pn] = writable
		d.Mapped++
	} else if writable && !w {
		d.present[pn] = true // permission upgrade
		if d.unit.iotlb != nil {
			d.unit.iotlb.invalidate(d.ID, pn) // stale read-only entry
		}
	}
	return d.unit.Costs.MapPerPage
}

// MapBatch installs translations for an arbitrary set of pages in one
// device transaction: the sync cost is paid once (the paper's batched
// page-table update, §4's third optimization; ATS/PRI would force one
// transaction per page).
func (d *Domain) MapBatch(pages []mem.PageNum) sim.Time {
	return d.MapBatchPerm(pages, true)
}

// MapBatchPerm is MapBatch with explicit write permission — the driver maps
// pages it resolved without write intent as read-only (the memory region's
// COW protection stays intact), so a later device write faults again and
// upgrades.
func (d *Domain) MapBatchPerm(pages []mem.PageNum, writable bool) sim.Time {
	if len(pages) == 0 {
		return 0
	}
	cost := d.unit.Costs.MapSync
	d.unit.cMapBatch.Inc()
	for _, pn := range pages {
		cost += d.mapOne(pn, writable)
	}
	return cost
}

// Unmap removes translations for count pages starting at first and flushes
// the IOTLB for them. It returns the cost and how many PTEs were actually
// present. Unmapping nothing costs nothing beyond the check (the paper's
// Figure 3b fast path: lazily mapped pages are often absent).
func (d *Domain) Unmap(first mem.PageNum, count int) (sim.Time, int) {
	removed := 0
	for i := 0; i < count; i++ {
		pn := first + mem.PageNum(i)
		if _, ok := d.present[pn]; ok {
			delete(d.present, pn)
			d.Mapped--
			removed++
			if d.unit.iotlb != nil {
				d.unit.iotlb.invalidate(d.ID, pn)
			}
		}
	}
	if removed == 0 {
		return 0, 0
	}
	d.unit.cUnmapPages.Add(uint64(removed))
	d.unit.cInvBatch.Inc()
	cost := d.unit.Costs.InvalidateSync + sim.Time(removed)*d.unit.Costs.InvalidatePerPage
	return cost, removed
}

// UnmapBatch removes an arbitrary set of translations in one invalidation
// transaction: the sync cost is paid once for the whole batch.
func (d *Domain) UnmapBatch(pages []mem.PageNum) (sim.Time, int) {
	removed := 0
	for _, pn := range pages {
		if _, ok := d.present[pn]; ok {
			delete(d.present, pn)
			d.Mapped--
			removed++
			if d.unit.iotlb != nil {
				d.unit.iotlb.invalidate(d.ID, pn)
			}
		}
	}
	if removed == 0 {
		return 0, 0
	}
	d.unit.cUnmapPages.Add(uint64(removed))
	d.unit.cInvBatch.Inc()
	return d.unit.Costs.InvalidateSync + sim.Time(removed)*d.unit.Costs.InvalidatePerPage, removed
}

// Translate checks translations for the byte range [addr, addr+length) on
// behalf of a device access. It returns the device-side lookup cost and the
// page numbers that failed to translate (in order, deduplicated). A
// non-empty miss list is a DMA page fault.
func (d *Domain) Translate(addr mem.VAddr, length int) (cost sim.Time, missing []mem.PageNum) {
	return d.TranslateAccess(addr, length, false)
}

// TranslateAccess checks translations for a device access with the given
// intent: with write=true, present-but-read-only pages count as missing (a
// permission fault — indistinguishable from a presence fault at the device,
// both are NPFs).
func (d *Domain) TranslateAccess(addr mem.VAddr, length int, write bool) (cost sim.Time, missing []mem.PageNum) {
	if length <= 0 {
		return 0, nil
	}
	first := addr.Page()
	n := mem.PagesSpanned(addr, length)
	walk := d.unit.Costs.WalkLatency
	if d.guest != nil {
		walk *= 2 // two-dimensional translation: both levels walked
	}
	for i := 0; i < n; i++ {
		pn := first + mem.PageNum(i)
		if d.unit.iotlb != nil {
			if d.unit.iotlb.lookup(d.ID, pn, write) {
				// IOTLB hit: translation cached with sufficient permission,
				// and cached entries are always valid (invalidated on unmap
				// and on permission upgrades).
				d.unit.cHits.Inc()
				continue
			}
			d.unit.cMisses.Inc()
			d.unit.cWalks.Inc()
			cost += walk
			if w, ok := d.present[pn]; ok && (!write || w) {
				d.unit.iotlb.insert(d.ID, pn, w)
			} else {
				d.unit.Faults.Inc()
				d.unit.cFaults.Inc()
				missing = append(missing, pn)
			}
			continue
		}
		cost += walk
		d.unit.cWalks.Inc()
		if w, ok := d.present[pn]; !ok || (write && !w) {
			d.unit.Faults.Inc()
			d.unit.cFaults.Inc()
			missing = append(missing, pn)
		}
	}
	return cost, missing
}

// String implements fmt.Stringer for diagnostics.
func (d *Domain) String() string {
	return fmt.Sprintf("iommu-domain %d (%d mapped)", d.ID, d.Mapped)
}
