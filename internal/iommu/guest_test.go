package iommu

import (
	"testing"

	"npf/internal/mem"
)

func TestGuestTableAllowRevoke(t *testing.T) {
	g := NewGuestTable()
	g.Allow(4, 4)
	if !g.Allowed(5) || g.Allowed(8) {
		t.Fatal("allow range wrong")
	}
	g.Revoke(5, 1)
	if g.Allowed(5) || !g.Allowed(4) {
		t.Fatal("revoke wrong")
	}
	if g.AllowedPages() != 3 {
		t.Fatalf("allowed = %d", g.AllowedPages())
	}
}

func TestDomainBlocked(t *testing.T) {
	u := New(0)
	d := u.NewDomain()
	if d.Blocked(0, mem.PageSize) {
		t.Fatal("no guest table: nothing is blocked")
	}
	g := NewGuestTable()
	d.SetGuestTable(g)
	if !d.Blocked(0, mem.PageSize) {
		t.Fatal("empty guest table must block everything")
	}
	g.Allow(0, 2)
	if d.Blocked(0, 2*mem.PageSize) {
		t.Fatal("allowed range blocked")
	}
	// Range spilling past the grant is blocked.
	if !d.Blocked(mem.PageNum(1).Base(), 2*mem.PageSize) {
		t.Fatal("partially allowed range must block")
	}
	if g.Violations.N == 0 {
		t.Fatal("violations not counted")
	}
}

func TestNestedWalkCostsMore(t *testing.T) {
	u := New(0) // no IOTLB: every access walks
	flat := u.NewDomain()
	flat.Map(0, 1)
	costFlat, _ := flat.TranslateAccess(0, mem.PageSize, false)

	nested := u.NewDomain()
	nested.Map(0, 1)
	g := NewGuestTable()
	g.Allow(0, 1)
	nested.SetGuestTable(g)
	costNested, _ := nested.TranslateAccess(0, mem.PageSize, false)
	if costNested != 2*costFlat {
		t.Fatalf("nested walk %v, want 2× flat %v", costNested, costFlat)
	}
}
