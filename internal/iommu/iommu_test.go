package iommu

import (
	"testing"
	"testing/quick"

	"npf/internal/mem"
)

func TestMapTranslateUnmap(t *testing.T) {
	u := New(0)
	d := u.NewDomain()
	if cost := d.Map(10, 4); cost < u.Costs.MapSync {
		t.Fatalf("map cost %v below sync floor", cost)
	}
	if d.MappedPages() != 4 {
		t.Fatalf("mapped = %d, want 4", d.MappedPages())
	}
	_, missing := d.Translate(mem.PageNum(10).Base(), 4*mem.PageSize)
	if len(missing) != 0 {
		t.Fatalf("missing = %v, want none", missing)
	}
	cost, n := d.Unmap(10, 4)
	if n != 4 || cost < u.Costs.InvalidateSync {
		t.Fatalf("unmap: n=%d cost=%v", n, cost)
	}
	_, missing = d.Translate(mem.PageNum(10).Base(), 1)
	if len(missing) != 1 || missing[0] != 10 {
		t.Fatalf("missing = %v, want [10]", missing)
	}
	if u.Faults.N != 1 {
		t.Fatalf("faults = %d, want 1", u.Faults.N)
	}
}

func TestUnmapAbsentIsFastPath(t *testing.T) {
	u := New(0)
	d := u.NewDomain()
	cost, n := d.Unmap(100, 16)
	if n != 0 || cost != 0 {
		t.Fatalf("absent unmap: n=%d cost=%v, want free no-op", n, cost)
	}
}

func TestTranslatePartialMiss(t *testing.T) {
	u := New(0)
	d := u.NewDomain()
	d.Map(0, 1)
	d.Map(2, 1)
	// Range spanning pages 0..3 with 1 and 3 missing.
	_, missing := d.Translate(0, 4*mem.PageSize)
	if len(missing) != 2 || missing[0] != 1 || missing[1] != 3 {
		t.Fatalf("missing = %v, want [1 3]", missing)
	}
}

func TestTranslateMidPageRange(t *testing.T) {
	u := New(0)
	d := u.NewDomain()
	d.Map(0, 1)
	// 100 bytes starting near the end of page 0 spill into page 1.
	addr := mem.VAddr(mem.PageSize - 10)
	_, missing := d.Translate(addr, 100)
	if len(missing) != 1 || missing[0] != 1 {
		t.Fatalf("missing = %v, want [1]", missing)
	}
}

func TestIOTLBHitSkipsWalk(t *testing.T) {
	u := New(64)
	d := u.NewDomain()
	d.Map(5, 1)
	c1, _ := d.Translate(mem.PageNum(5).Base(), 1) // miss, walks, fills
	c2, _ := d.Translate(mem.PageNum(5).Base(), 1) // hit
	if c2 >= c1 {
		t.Fatalf("IOTLB hit cost %v not below miss cost %v", c2, c1)
	}
	if u.iotlb.Hits.N != 1 || u.iotlb.Misses.N != 1 {
		t.Fatalf("hits=%d misses=%d", u.iotlb.Hits.N, u.iotlb.Misses.N)
	}
}

func TestIOTLBInvalidatedOnUnmap(t *testing.T) {
	u := New(64)
	d := u.NewDomain()
	d.Map(7, 1)
	d.Translate(mem.PageNum(7).Base(), 1) // fill IOTLB
	d.Unmap(7, 1)
	_, missing := d.Translate(mem.PageNum(7).Base(), 1)
	if len(missing) != 1 {
		t.Fatal("stale IOTLB entry served an unmapped page")
	}
}

func TestIOTLBCapacityEviction(t *testing.T) {
	u := New(2)
	d := u.NewDomain()
	d.Map(0, 3)
	d.Translate(0, 3*mem.PageSize) // fills 3 > capacity 2
	if len(u.iotlb.entries) != 2 {
		t.Fatalf("iotlb entries = %d, want 2", len(u.iotlb.entries))
	}
	// Page 0 was evicted (oldest): translating it again misses.
	before := u.iotlb.Misses.N
	d.Translate(0, 1)
	if u.iotlb.Misses.N != before+1 {
		t.Fatal("expected IOTLB miss after capacity eviction")
	}
}

func TestDomainsAreIsolated(t *testing.T) {
	u := New(0)
	a, b := u.NewDomain(), u.NewDomain()
	a.Map(3, 1)
	if b.Present(3) {
		t.Fatal("mapping leaked across domains")
	}
	_, missing := b.Translate(mem.PageNum(3).Base(), 1)
	if len(missing) != 1 {
		t.Fatal("domain b should fault on domain a's mapping")
	}
}

// Property: after an arbitrary interleaving of Map/Unmap, Present matches a
// reference model, and Mapped equals the reference count.
func TestMapUnmapModelProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		u := New(8) // small IOTLB to exercise invalidation paths
		d := u.NewDomain()
		ref := make(map[mem.PageNum]bool)
		for _, op := range ops {
			pn := mem.PageNum(op % 64)
			cnt := int(op%5) + 1
			if op%2 == 0 {
				d.Map(pn, cnt)
				for i := 0; i < cnt; i++ {
					ref[pn+mem.PageNum(i)] = true
				}
			} else {
				d.Unmap(pn, cnt)
				for i := 0; i < cnt; i++ {
					delete(ref, pn+mem.PageNum(i))
				}
			}
		}
		count := 0
		for pn := mem.PageNum(0); pn < 80; pn++ {
			if d.Present(pn) != ref[pn] {
				return false
			}
			_, missing := d.Translate(pn.Base(), 1)
			if (len(missing) == 0) != ref[pn] {
				return false
			}
			if ref[pn] {
				count++
			}
		}
		return d.MappedPages() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
