package iommu

import (
	"testing"

	"npf/internal/mem"
)

func BenchmarkTranslateIOTLBHit(b *testing.B) {
	u := New(1024)
	d := u.NewDomain()
	d.Map(0, 256)
	d.Translate(0, 256*mem.PageSize) // warm the IOTLB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.TranslateAccess(mem.VAddr(i&255)*mem.PageSize, mem.PageSize, false)
	}
}

func BenchmarkTranslateWalk(b *testing.B) {
	u := New(0) // no IOTLB: every access walks
	d := u.NewDomain()
	d.Map(0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.TranslateAccess(mem.VAddr(i&255)*mem.PageSize, mem.PageSize, false)
	}
}

func BenchmarkMapUnmapCycle(b *testing.B) {
	u := New(1024)
	d := u.NewDomain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pn := mem.PageNum(i & 1023)
		d.Map(pn, 1)
		d.Unmap(pn, 1)
	}
}

func BenchmarkMapBatch64(b *testing.B) {
	u := New(1024)
	d := u.NewDomain()
	pages := make([]mem.PageNum, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pages {
			pages[j] = mem.PageNum(i*64 + j)
		}
		d.MapBatch(pages)
	}
}
