package iommu

import (
	"container/list"

	"npf/internal/mem"
	"npf/internal/sim"
)

// iotlbKey identifies one cached translation.
type iotlbKey struct {
	dom DomainID
	pn  mem.PageNum
}

// iotlb is a fully associative LRU translation cache. Real IOTLBs are
// set-associative, but for fault-behaviour studies only capacity misses and
// invalidations matter.
type iotlb struct {
	capacity int
	entries  map[iotlbKey]*list.Element
	// writable records the cached entry's permission.
	writable map[iotlbKey]bool
	lru      *list.List // front = oldest

	Hits   sim.Counter
	Misses sim.Counter
}

func newIOTLB(capacity int) *iotlb {
	return &iotlb{
		capacity: capacity,
		entries:  make(map[iotlbKey]*list.Element),
		writable: make(map[iotlbKey]bool),
		lru:      list.New(),
	}
}

// lookup reports whether the translation is cached with sufficient
// permission, refreshing its LRU position on a hit.
func (t *iotlb) lookup(dom DomainID, pn mem.PageNum, write bool) bool {
	key := iotlbKey{dom, pn}
	if el, ok := t.entries[key]; ok && (!write || t.writable[key]) {
		t.lru.MoveToBack(el)
		t.Hits.Inc()
		return true
	}
	t.Misses.Inc()
	return false
}

// insert caches a translation, evicting the LRU entry at capacity.
func (t *iotlb) insert(dom DomainID, pn mem.PageNum, writable bool) {
	key := iotlbKey{dom, pn}
	if _, ok := t.entries[key]; ok {
		t.writable[key] = writable
		return
	}
	if t.lru.Len() >= t.capacity {
		front := t.lru.Front()
		victim := front.Value.(iotlbKey)
		t.lru.Remove(front)
		delete(t.entries, victim)
		delete(t.writable, victim)
	}
	t.entries[key] = t.lru.PushBack(key)
	t.writable[key] = writable
}

// invalidate drops one cached translation if present.
func (t *iotlb) invalidate(dom DomainID, pn mem.PageNum) {
	key := iotlbKey{dom, pn}
	if el, ok := t.entries[key]; ok {
		t.lru.Remove(el)
		delete(t.entries, key)
		delete(t.writable, key)
	}
}
