package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"npf/internal/apps"
	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/iommu"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
)

// AblateResult collects the design-choice ablations called out in §4's
// "Optimizations" discussion.
type AblateResult struct {
	// Batched vs ATS/PRI-style one-page-per-request faulting of a cold
	// 4 MB message: fault events and total transfer latency.
	BatchedEvents, BatchedMs   float64
	PagewiseEvents, PagewiseMs float64
	// Pin-down cache capacity sweep: alltoall runtime (ms) per capacity.
	PinCapsMB []int
	PinMs     []float64
	// RNR timeout sweep: cold-buffer message latency (ms) per timeout.
	RNRTimeoutsUs []int
	RNRMs         []float64
	// In-flight bitmap suppression (§4): driver fault reports for one
	// cold-ring burst with the firmware optimization on vs off.
	BitmapOnReports, BitmapOffReports float64
	// 2D translation (§2.4): IB stream throughput with and without a guest
	// table (Gb/s).
	FlatGbps, NestedGbps float64
	// §4 future-work extension: read-RNR vs baseline drop+rewind on
	// cold-destination RDMA reads — wasted (dropped) response chunks and
	// total time (ms).
	ReadBaseDrops, ReadExtDrops float64
	ReadBaseMs, ReadExtMs       float64
}

// RunAblate runs the ablations. Every sub-measurement is an independent,
// seed-isolated job executed through the sweep runner; each writes only its
// own result fields, so output does not depend on the Workers fan-out.
func RunAblate() *AblateResult {
	res := &AblateResult{}
	res.PinCapsMB = []int{1, 4, 16, 64}
	res.PinMs = make([]float64, len(res.PinCapsMB))
	res.RNRTimeoutsUs = []int{50, 280, 1000, 5000}
	res.RNRMs = make([]float64, len(res.RNRTimeoutsUs))
	var jobs []func()

	// 1. Scatter-gather batching/prefetch vs one-page-per-request (§4:
	// "minor page fault overhead induced by sending a cold 4MB message
	// would have been prohibitive").
	jobs = append(jobs,
		func() { res.BatchedEvents, res.BatchedMs = ablateColdSend(true) },
		func() { res.PagewiseEvents, res.PagewiseMs = ablateColdSend(false) },
	)

	// 2. Pin-down cache capacity: shrink it below the off-cache working
	// set and watch eviction thrash (the coarse-grained pinning tradeoff
	// of Table 3).
	for i, mb := range res.PinCapsMB {
		i, mb := i, mb
		jobs = append(jobs, func() {
			eng := newBenchEngine(29)
			net := fabric.New(eng, fabric.DefaultInfiniBand())
			job := apps.NewMPIJob(eng, mkMPIHosts(eng, net), apps.MPIConfig{
				Ranks: 4, Mode: apps.RegPin, OffCacheBuffers: 16,
				PinCacheBytes: int64(mb) << 20,
			})
			var elapsed sim.Time
			job.RunAlltoall(128<<10, 50, func(e sim.Time) { elapsed = e })
			eng.Run()
			res.PinMs[i] = float64(elapsed) / float64(sim.Millisecond)
		})
	}

	// 3. RNR timeout: the pause the firmware asks of senders on rNPFs.
	for i, us := range res.RNRTimeoutsUs {
		i, us := i, us
		jobs = append(jobs, func() {
			e := NewIBEnv(IBOpts{Seed: 5, Tweak: func(c *rc.Config) {
				c.RNRTimeout = sim.Time(us) * sim.Microsecond
			}})
			const msg = 64 << 10
			Warm(e.QPA, 0, 2*msg/mem.PageSize)
			done := 0
			var doneAt sim.Time
			e.QPB.OnRecv = func(rc.RecvCompletion) {
				done++
				doneAt = e.EngB.Now()
				if done < 50 {
					// Next message into a fresh cold buffer.
					id := int64(done)
					base := mem.VAddr(done*msg/mem.PageSize) * mem.PageSize
					e.QPB.PostRecv(rc.RecvWQE{ID: id, Addr: base, Len: msg})
					e.EngB.Call(e.Eng, func() {
						e.QPA.PostSend(rc.SendWQE{ID: id, Laddr: 0, Len: msg})
					})
				}
			}
			e.QPB.PostRecv(rc.RecvWQE{ID: 0, Addr: 0, Len: msg})
			e.QPA.PostSend(rc.SendWQE{ID: 0, Laddr: 0, Len: msg})
			e.RunUntil(30 * sim.Second)
			res.RNRMs[i] = float64(doneAt) / float64(sim.Millisecond) / 50
		})
	}

	// 4. In-flight bitmap: suppress duplicate fault reports while a
	// descriptor's resolution is pending (drop policy makes duplicates
	// visible: a burst repeatedly hits the same faulting descriptor).
	jobs = append(jobs,
		func() { res.BitmapOnReports = ablateDropBurst(false) },
		func() { res.BitmapOffReports = ablateDropBurst(true) },
	)

	// 5. 2D translation overhead: a warm IB stream with and without a
	// guest table (strict protection costs a second-level walk, nothing
	// else).
	jobs = append(jobs,
		func() { res.FlatGbps = ablateStream(false) },
		func() { res.NestedGbps = ablateStream(true) },
	)

	// 6. The paper's §4 recommendation: extend RC end-to-end flow control
	// to remote reads. Cold-destination reads with the extension suspend
	// the responder; the baseline drops the in-flight stream and rewinds.
	jobs = append(jobs,
		func() { res.ReadBaseDrops, res.ReadBaseMs = ablateReadRNR(false) },
		func() { res.ReadExtDrops, res.ReadExtMs = ablateReadRNR(true) },
	)

	runJobs(jobs)
	return res
}

// ablateColdSend measures a cold 4MB receive with and without scatter-gather
// prefetch, returning fault events and delivery time.
func ablateColdSend(prefetch bool) (events float64, ms float64) {
	e := NewIBEnv(IBOpts{Seed: 3, Tweak: func(c *rc.Config) { c.PrefetchWQE = prefetch }})
	const msg = 4 << 20
	Warm(e.QPA, 0, msg/mem.PageSize) // sender warm; receiver cold
	var doneAt sim.Time
	e.QPB.OnRecv = func(rc.RecvCompletion) { doneAt = e.EngB.Now() }
	e.QPB.PostRecv(rc.RecvWQE{ID: 1, Addr: 0, Len: msg})
	e.QPA.PostSend(rc.SendWQE{ID: 1, Laddr: 0, Len: msg})
	e.RunUntil(10 * sim.Second)
	return float64(e.HCAB.Faults.N), float64(doneAt) / float64(sim.Millisecond)
}

// ablateDropBurst counts driver fault reports for one cold-ring burst under
// the drop policy, with the in-flight bitmap on or off.
func ablateDropBurst(disable bool) float64 {
	eng := newBenchEngine(31)
	net := fabric.New(eng, fabric.DefaultEthernet())
	m := mem.NewMachine(eng, 8<<30)
	drv := core.NewDriver(eng, core.DefaultConfig())
	dcfg := nic.DefaultConfig()
	dcfg.FirmwareJitterSigma = 0
	dcfg.DisableInflightBitmap = disable
	dev := nic.NewDevice(eng, net, dcfg)
	drv.AttachDevice(dev)
	as := m.NewAddressSpace("u", nil)
	as.MapBytes(1 << 20)
	ch := dev.NewChannel("u", as, 64, nic.PolicyDrop, 64)
	drv.EnableODP(ch)
	for i := 0; i < 64; i++ {
		ch.Rx.PostRx(nic.Descriptor{Buffer: mem.VAddr(i) * mem.PageSize, Len: mem.PageSize})
	}
	src := nic.NewDevice(eng, net, dcfg) // traffic source
	drv.AttachDevice(src)
	for i := 0; i < 200; i++ {
		net.Send(&fabric.Packet{Src: src.Node, Dst: dev.Node, Flow: ch.Flow, Size: 4096})
	}
	eng.RunUntil(sim.Second)
	return float64(drv.RxReports.N)
}

// ablateReadRNR measures repeated 512KB RDMA reads into cold destinations.
func ablateReadRNR(ext bool) (drops, ms float64) {
	e := NewIBEnv(IBOpts{Seed: 13, Tweak: func(c *rc.Config) {
		c.ReadRNRExtension = ext
		c.ReadWindow = 128
	}})
	Warm(e.QPB, 4096, 1024)
	const reads = 8
	const size = 512 << 10
	done := 0
	var doneAt sim.Time
	var next func()
	next = func() {
		if done >= reads {
			doneAt = e.Eng.Now()
			return
		}
		e.QPA.PostRead(rc.ReadWQE{
			ID:    int64(done),
			Laddr: mem.VAddr(done) * size,
			Raddr: mem.PageNum(4096).Base(),
			Len:   size,
		})
	}
	e.QPA.OnReadComplete = func(int64) { done++; next() }
	next()
	e.RunUntil(10 * sim.Second)
	return float64(e.HCAA.DroppedRNPF.N), float64(doneAt) / float64(sim.Millisecond)
}

// ablateStream measures a warm 64KB IB stream, optionally behind a
// permissive guest table.
func ablateStream(nested bool) float64 {
	e := NewIBEnv(IBOpts{Seed: 9})
	if nested {
		g := iommu.NewGuestTable()
		g.Allow(0, 4096)
		e.QPA.Domain.SetGuestTable(g)
		e.QPB.Domain.SetGuestTable(g)
	}
	const msg = 64 << 10
	Warm(e.QPA, 0, 16*msg/mem.PageSize)
	Warm(e.QPB, 0, 16*msg/mem.PageSize)
	received := 0
	var lastAt sim.Time
	e.QPB.OnRecv = func(rc.RecvCompletion) { received++; lastAt = e.EngB.Now() }
	const count = 200
	for i := 0; i < count; i++ {
		e.QPB.PostRecv(rc.RecvWQE{ID: int64(i), Addr: mem.VAddr(i%16) * msg, Len: msg})
		e.QPA.PostSend(rc.SendWQE{ID: int64(i), Laddr: mem.VAddr(i%16) * msg, Len: msg})
	}
	e.Run()
	if received != count || lastAt == 0 {
		return -1
	}
	return float64(count*msg) * 8 / lastAt.Seconds() / 1e9
}

// Render prints the ablations.
func (r *AblateResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablations (§4 design choices)\n\n")
	b.WriteString("1. Cold 4MB message: batched scatter-gather faulting vs ATS/PRI-style\n")
	fmt.Fprintf(&b, "   batched:   %4.0f fault events, %8.2f ms to deliver\n", r.BatchedEvents, r.BatchedMs)
	fmt.Fprintf(&b, "   page-wise: %4.0f fault events, %8.2f ms to deliver\n", r.PagewiseEvents, r.PagewiseMs)
	b.WriteString("   (paper: one page per PRI request would cost >220 ms)\n\n")
	b.WriteString("2. Pin-down cache capacity vs alltoall(128KB, off-cache) runtime:\n")
	for i, mb := range r.PinCapsMB {
		fmt.Fprintf(&b, "   %3d MB: %8.2f ms\n", mb, r.PinMs[i])
	}
	b.WriteString("   (small caches thrash: the coarse-grained pinning tradeoff of Table 3)\n\n")
	b.WriteString("3. RNR timeout vs per-message latency on always-cold buffers:\n")
	for i, us := range r.RNRTimeoutsUs {
		fmt.Fprintf(&b, "   %5d µs: %8.3f ms/msg\n", us, r.RNRMs[i])
	}
	b.WriteString("   (too short: wasted retries; too long: idle link after resolution)\n\n")
	b.WriteString("4. In-flight fault bitmap (drop policy, 200-packet burst on a cold ring):\n")
	fmt.Fprintf(&b, "   suppression on:  %4.0f driver fault reports\n", r.BitmapOnReports)
	fmt.Fprintf(&b, "   suppression off: %4.0f driver fault reports\n", r.BitmapOffReports)
	b.WriteString("   (the firmware bitmap keeps duplicate reports off the slow path)\n\n")
	b.WriteString("5. 2D IOMMU translation (guest table for strict protection, §2.4):\n")
	fmt.Fprintf(&b, "   flat:   %6.2f Gb/s\n", r.FlatGbps)
	fmt.Fprintf(&b, "   nested: %6.2f Gb/s\n", r.NestedGbps)
	b.WriteString("   (protection via the guest level is nearly free at stream rates)\n\n")
	b.WriteString("6. §4 future-work: RC flow control extended to remote reads\n")
	b.WriteString("   (8 × 512KB reads into cold destinations):\n")
	fmt.Fprintf(&b, "   baseline (drop + rewind): %5.0f wasted chunks, %7.2f ms\n", r.ReadBaseDrops, r.ReadBaseMs)
	fmt.Fprintf(&b, "   read-RNR extension:       %5.0f wasted chunks, %7.2f ms\n", r.ReadExtDrops, r.ReadExtMs)
	b.WriteString("   (the initiator suspends the responder like an RNR NACK, so only\n")
	b.WriteString("   the in-flight round trip is wasted)\n")
	return b.String()
}

// LOCResult is the §6.3 programming-complexity comparison, measured on this
// repository's own implementations.
type LOCResult struct {
	PinDownCacheLOC int
	FineGrainedLOC  int
	ODPCallSites    int
}

// RunLOC counts lines of code the way §6.3 does: what the pin-down cache
// machinery costs middleware vs what ODP asks of an application.
func RunLOC(repoRoot string) (*LOCResult, error) {
	res := &LOCResult{}
	src, err := os.ReadFile(filepath.Join(repoRoot, "internal", "core", "pinning.go"))
	if err != nil {
		return nil, err
	}
	inPDC := false
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "// PinDownCache") {
			inPDC = true
		}
		if strings.HasPrefix(trimmed, "// CopyCost") {
			inPDC = false
		}
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		if inPDC {
			res.PinDownCacheLOC++
		}
		if strings.Contains(line, "FineGrainedPin") {
			res.FineGrainedLOC++
		}
	}
	// ODP usage in the MPI app: EnableODPQP call sites.
	mpi, err := os.ReadFile(filepath.Join(repoRoot, "internal", "apps", "mpi.go"))
	if err != nil {
		return nil, err
	}
	res.ODPCallSites = strings.Count(string(mpi), "EnableODP")
	return res, nil
}

// Render prints the comparison.
func (r *LOCResult) Render() string {
	var b strings.Builder
	b.WriteString("§6.3 programming complexity (measured on this repository)\n")
	fmt.Fprintf(&b, "  pin-down cache implementation: %d LOC (plus every policy decision)\n", r.PinDownCacheLOC)
	fmt.Fprintf(&b, "  ODP usage in the MPI middleware: %d call site(s) — register once, done\n", r.ODPCallSites)
	b.WriteString("  paper: tgt port to NPFs ≈ 40 LOC changed; pin-down caches cost\n")
	b.WriteString("  thousands of LOC (Firehose: ≈8.5K LOC)\n")
	return b.String()
}
