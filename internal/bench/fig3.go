package bench

import (
	"fmt"
	"strings"

	"npf/internal/core"
	"npf/internal/mem"
	"npf/internal/rc"
	"npf/internal/sim"
)

// Fig3Result holds the NPF and invalidation execution breakdowns of
// Figure 3 (µs, means).
type Fig3Result struct {
	// NPF breakdown per message size.
	NPF map[string]Fig3Breakdown
	// InvalidationMapped / InvalidationFast are the Figure 3b components.
	InvalidationMapped float64
	InvalidationFast   float64
}

// Fig3Breakdown is one bar of Figure 3a.
type Fig3Breakdown struct {
	Trigger, Driver, Update, Resume, Total float64
}

// Fig3Opts configures the Figure 3 reproduction.
type Fig3Opts struct {
	// Trials is the number of minor NPFs measured per message size.
	Trials int
	// Seed is the base seed for the IB testbeds. Zero means the historical
	// default (7), so existing results do not move.
	Seed int64
	// Replicas splits Trials across this many seed-isolated engines (seeds
	// Seed, Seed+1, ...), whose histograms are merged in replica order.
	// The default (1) reproduces the original single-engine run; any value
	// gives output independent of the Workers fan-out.
	Replicas int
}

// fig3DefaultSeed is the seed RunFig3 has always used.
const fig3DefaultSeed = 7

var fig3Sizes = []struct {
	name  string
	bytes int
}{{"4KB", 4 << 10}, {"4MB", 4 << 20}}

// RunFig3 reproduces Figure 3: repeated minor NPFs on 4KB and 4MB messages,
// plus the invalidation flow.
func RunFig3(trials int) *Fig3Result {
	return RunFig3Opts(Fig3Opts{Trials: trials})
}

// fig3Replica measures `trials` minor NPFs of one message size on a private
// engine and returns the driver's execution breakdown.
func fig3Replica(seed int64, bytes, trials int) *core.Breakdown {
	e := NewIBEnv(IBOpts{Seed: seed})
	pages := (bytes + mem.PageSize - 1) / mem.PageSize
	// Sender warm; receive buffers cycle through a window, discarded
	// after each trial so every receive faults cold (minor).
	Warm(e.QPA, 0, pages*2)
	const window = 8
	done := 0
	// runTrial is always invoked on side B; the next send is handed to
	// side A through Engine.Call (inline on a shared engine, mailbox mail
	// in partitioned mode).
	var runTrial func()
	runTrial = func() {
		if done >= trials {
			e.EngB.Stop()
			return
		}
		id := int64(done)
		base := mem.VAddr(done%window*pages) * mem.PageSize
		e.QPB.PostRecv(rc.RecvWQE{ID: id, Addr: base, Len: bytes})
		e.EngB.Call(e.Eng, func() {
			e.QPA.PostSend(rc.SendWQE{ID: id, Laddr: 0, Len: bytes})
		})
	}
	e.QPB.OnRecv = func(rc.RecvCompletion) {
		base := mem.PageNum(done % window * pages)
		e.ASB.DiscardPages(base, pages)
		done++
		runTrial()
	}
	runTrial()
	e.Run()
	return &e.DrvB.Hist
}

// RunFig3Opts is RunFig3 with explicit seeding and replica fan-out. Every
// (size, replica) pair and the invalidation flow is an independent job on
// its own engine, executed through the sweep runner; results are merged in
// job order, so output does not depend on Workers.
func RunFig3Opts(o Fig3Opts) *Fig3Result {
	if o.Seed == 0 {
		o.Seed = fig3DefaultSeed
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	res := &Fig3Result{NPF: make(map[string]Fig3Breakdown)}

	hists := make([][]*core.Breakdown, len(fig3Sizes))
	var jobs []func()
	for si, size := range fig3Sizes {
		si, size := si, size
		hists[si] = make([]*core.Breakdown, o.Replicas)
		for rep := 0; rep < o.Replicas; rep++ {
			rep := rep
			trials := o.Trials / o.Replicas
			if rep < o.Trials%o.Replicas {
				trials++
			}
			jobs = append(jobs, func() {
				hists[si][rep] = fig3Replica(o.Seed+int64(rep), size.bytes, trials)
			})
		}
	}

	// Figure 3b: invalidations of mapped pages (evicting DMA-mapped
	// buffers) vs the unmapped fast path.
	jobs = append(jobs, func() {
		e := NewIBEnv(IBOpts{Seed: o.Seed})
		Warm(e.QPB, 0, 256)
		var mappedCost, fastCost sim.Time
		for i := 0; i < 256; i++ {
			_, c := e.ASB.EvictPages(mem.PageNum(i), 1)
			mappedCost += c
		}
		// Fast path: pages resident but never device-mapped.
		e.ASB.TouchPages(1024, 256, true)
		for i := 0; i < 256; i++ {
			_, c := e.ASB.EvictPages(1024+mem.PageNum(i), 1)
			fastCost += c
		}
		res.InvalidationMapped = (mappedCost / 256).Micros()
		res.InvalidationFast = (fastCost / 256).Micros()
	})

	runJobs(jobs)

	for si, size := range fig3Sizes {
		var h core.Breakdown
		for _, rep := range hists[si] {
			h.Merge(rep)
		}
		res.NPF[size.name] = Fig3Breakdown{
			Trigger: h.Trigger.Mean(),
			Driver:  h.DriverSW.Mean(),
			Update:  h.UpdateHW.Mean(),
			Resume:  h.Resume.Mean(),
			Total:   h.Total.Mean(),
		}
	}
	return res
}

// Render prints the breakdown tables with the paper's reference values.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3(a): NPF execution breakdown (minor faults, µs)\n")
	rows := [][]string{}
	for _, name := range []string{"4KB", "4MB"} {
		v := r.NPF[name]
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", v.Trigger),
			fmt.Sprintf("%.1f", v.Driver),
			fmt.Sprintf("%.1f", v.Update),
			fmt.Sprintf("%.1f", v.Resume),
			fmt.Sprintf("%.1f", v.Total),
		})
	}
	b.WriteString(table(
		[]string{"msg", "trigger[hw]", "driver[sw]", "updatePT[sw+hw]", "resume[hw]", "total"},
		rows))
	b.WriteString("paper: 4KB ≈ 220 µs (~90% hardware), 4MB ≈ 350 µs\n\n")
	b.WriteString("Figure 3(b): invalidation flow (µs)\n")
	fmt.Fprintf(&b, "  mapped page:   %.1f   (paper: ≈55-60)\n", r.InvalidationMapped)
	fmt.Fprintf(&b, "  unmapped page: %.1f   (paper: ≈10, fast path)\n", r.InvalidationFast)
	return b.String()
}

// Table4Result holds the NPF tail latencies (µs).
type Table4Result struct {
	Rows map[string]Table4Row
}

// Table4Row is one row of Table 4.
type Table4Row struct {
	P50, P95, P99, Max float64
}

// RunTable4 reproduces Table 4: NPF latency percentiles with firmware
// jitter enabled. Each message size runs as an independent job.
func RunTable4(trials int) *Table4Result {
	res := &Table4Result{Rows: make(map[string]Table4Row)}
	rows := make([]Table4Row, len(fig3Sizes))
	jobs := make([]func(), len(fig3Sizes))
	for si, size := range fig3Sizes {
		si, size := si, size
		jobs[si] = func() {
			e := NewIBEnv(IBOpts{Seed: 11, Jitter: true})
			pages := (size.bytes + mem.PageSize - 1) / mem.PageSize
			Warm(e.QPA, 0, pages*2)
			const window = 8
			done := 0
			var runTrial func()
			runTrial = func() {
				if done >= trials {
					e.EngB.Stop()
					return
				}
				id := int64(done)
				base := mem.VAddr(done%window*pages) * mem.PageSize
				e.QPB.PostRecv(rc.RecvWQE{ID: id, Addr: base, Len: size.bytes})
				e.EngB.Call(e.Eng, func() {
					e.QPA.PostSend(rc.SendWQE{ID: id, Laddr: 0, Len: size.bytes})
				})
			}
			e.QPB.OnRecv = func(rc.RecvCompletion) {
				base := mem.PageNum(done % window * pages)
				e.ASB.DiscardPages(base, pages)
				done++
				runTrial()
			}
			runTrial()
			e.Run()
			h := &e.DrvB.Hist.Total
			rows[si] = Table4Row{
				P50: h.Percentile(50), P95: h.Percentile(95),
				P99: h.Percentile(99), Max: h.Max(),
			}
		}
	}
	runJobs(jobs)
	for si, size := range fig3Sizes {
		res.Rows[size.name] = rows[si]
	}
	return res
}

// Render prints Table 4.
func (r *Table4Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 4: tail latency of NPFs (µs)\n")
	rows := [][]string{}
	for _, name := range []string{"4KB", "4MB"} {
		v := r.Rows[name]
		rows = append(rows, []string{name,
			fmt.Sprintf("%.0f", v.P50), fmt.Sprintf("%.0f", v.P95),
			fmt.Sprintf("%.0f", v.P99), fmt.Sprintf("%.0f", v.Max)})
	}
	b.WriteString(table([]string{"message size", "50%", "95%", "99%", "max"}, rows))
	b.WriteString("paper: 4KB 215/250/261/464; 4MB 352/431/440/687\n")
	return b.String()
}
