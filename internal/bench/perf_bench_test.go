package bench

import (
	"testing"

	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
)

// BenchmarkFaultPath measures one end-to-end minor rNPF on the IB stack:
// a 4 KB message lands in a cold receive buffer, the HCA raises the fault,
// the driver resolves it, the page table updates, and delivery resumes. The
// page is discarded after every iteration so each receive faults again.
// This is the simulated fault pipeline itself — the figure most sensitive
// to engine-scheduling overhead.
func BenchmarkFaultPath(b *testing.B) {
	e := NewIBEnv(IBOpts{Seed: 1})
	const window = 8
	Warm(e.QPA, 0, 2) // sender warm; receiver always cold
	e.QPB.OnRecv = func(rc.RecvCompletion) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page := mem.PageNum(i % window)
		e.QPB.PostRecv(rc.RecvWQE{ID: int64(i), Addr: mem.VAddr(page) * mem.PageSize, Len: mem.PageSize})
		e.QPA.PostSend(rc.SendWQE{ID: int64(i), Laddr: 0, Len: mem.PageSize})
		e.Eng.Run()
		e.ASB.DiscardPages(page, 1)
	}
}

// BenchmarkBackupReplay measures the Ethernet backup-ring path: a packet
// arrives for a cold descriptor, diverts to the backup ring, and is replayed
// into the original buffer once the driver resolves the fault. Each
// iteration discards the buffer page so the next packet diverts again.
func BenchmarkBackupReplay(b *testing.B) {
	eng := newBenchEngine(2)
	net := fabric.New(eng, fabric.DefaultEthernet())
	m := mem.NewMachine(eng, 8<<30)
	drv := core.NewDriver(eng, core.DefaultConfig())
	dcfg := nic.DefaultConfig()
	dcfg.FirmwareJitterSigma = 0
	dev := nic.NewDevice(eng, net, dcfg)
	drv.AttachDevice(dev)
	as := m.NewAddressSpace("u", nil)
	as.MapBytes(1 << 20)
	ch := dev.NewChannel("u", as, 64, nic.PolicyBackup, 64)
	drv.EnableODP(ch)
	src := nic.NewDevice(eng, net, dcfg) // traffic source
	drv.AttachDevice(src)
	const window = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page := mem.PageNum(i % window)
		ch.Rx.PostRx(nic.Descriptor{Buffer: mem.VAddr(page) * mem.PageSize, Len: mem.PageSize})
		net.Send(&fabric.Packet{Src: src.Node, Dst: dev.Node, Flow: ch.Flow, Size: 4096})
		eng.Run()
		as.DiscardPages(page, 1)
	}
}
