package bench

import (
	"strings"
	"testing"

	"npf/internal/sim"
)

// These tests run every experiment at reduced size and assert the paper's
// qualitative results — the shapes EXPERIMENTS.md documents — so the
// reproduction cannot silently regress.

func TestFig3Shapes(t *testing.T) {
	r := RunFig3(40)
	k4, m4 := r.NPF["4KB"], r.NPF["4MB"]
	if k4.Total < 160 || k4.Total > 280 {
		t.Errorf("4KB NPF = %.1f µs, want ≈220", k4.Total)
	}
	if m4.Total < 280 || m4.Total > 450 {
		t.Errorf("4MB NPF = %.1f µs, want ≈350", m4.Total)
	}
	// Hardware dominates (~90% in the paper; ≥70% here).
	hwShare := (k4.Trigger + k4.Resume) / k4.Total
	if hwShare < 0.7 {
		t.Errorf("hardware share = %.2f", hwShare)
	}
	if r.InvalidationMapped < 30 || r.InvalidationMapped > 90 {
		t.Errorf("mapped invalidation = %.1f µs", r.InvalidationMapped)
	}
	if r.InvalidationFast >= r.InvalidationMapped/2 {
		t.Errorf("fast path %.1f not well below mapped %.1f",
			r.InvalidationFast, r.InvalidationMapped)
	}
	if !strings.Contains(r.Render(), "Figure 3") {
		t.Error("render broken")
	}
}

func TestTable4Shapes(t *testing.T) {
	r := RunTable4(800)
	for _, size := range []string{"4KB", "4MB"} {
		row := r.Rows[size]
		if !(row.P50 < row.P95 && row.P95 < row.P99 && row.P99 < row.Max) {
			t.Errorf("%s percentiles not increasing: %+v", size, row)
		}
		if row.Max < 1.5*row.P50 {
			t.Errorf("%s tail too light: p50=%.0f max=%.0f", size, row.P50, row.Max)
		}
	}
	if r.Rows["4MB"].P50 <= r.Rows["4KB"].P50 {
		t.Error("4MB should be slower than 4KB")
	}
}

func TestFig4aShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped in -short mode")
	}
	r := RunFig4a(20 * sim.Second)
	early := func(name string) float64 {
		total := 0.0
		for _, p := range r.Series[name] {
			if p[0] < 5 {
				total += p[1]
			}
		}
		return total
	}
	pin, backup, drop := early("pin"), early("backup"), early("drop")
	if backup < pin/2 {
		t.Errorf("backup early throughput %.1f far below pin %.1f", backup, pin)
	}
	if drop > backup/5 {
		t.Errorf("drop early throughput %.1f not collapsed vs backup %.1f", drop, backup)
	}
}

func TestFig4bShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped in -short mode")
	}
	r := RunFig4b(1000, []int{16, 256}, 300*sim.Second)
	d16, d256 := r.Seconds["drop"][0], r.Seconds["drop"][1]
	b16, b256 := r.Seconds["backup"][0], r.Seconds["backup"][1]
	if d16 > 0 && d256 > 0 && d256 < d16 {
		t.Errorf("drop should worsen with ring size: %v vs %v", d16, d256)
	}
	if b16 < 0 || b256 < 0 {
		t.Fatal("backup failed")
	}
	if d16 > 0 && d16 < 5*b16 {
		t.Errorf("drop %v should be far slower than backup %v", d16, b16)
	}
}

func TestTable5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped in -short mode")
	}
	r := RunTable5()
	npf := r.KTPS["NPF"]
	pin := r.KTPS["pinning"]
	for n := 0; n < 4; n++ {
		if npf[n] <= 0 {
			t.Fatalf("NPF with %d instances failed", n+1)
		}
	}
	// Near-linear scaling.
	if npf[3] < 3*npf[0] {
		t.Errorf("NPF scaling: %v", npf)
	}
	if pin[0] <= 0 || pin[1] <= 0 {
		t.Errorf("pinning should run 1-2 instances: %v", pin)
	}
	if pin[2] >= 0 || pin[3] >= 0 {
		t.Errorf("pinning must be N/A at 3-4 instances: %v", pin)
	}
}

func TestFig8aShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped in -short mode")
	}
	r := RunFig8a()
	if r.NPF[0] <= 0 {
		t.Fatal("NPF should run at the smallest memory point")
	}
	if r.Pin[0] >= 0 || r.Pin[1] >= 0 {
		t.Errorf("pin must fail below 5GB: %v", r.Pin[:2])
	}
	// NPF ahead mid-range, converged at the top.
	mid := 2 // 5.0 GB
	if r.NPF[mid] < 1.3*r.Pin[mid] {
		t.Errorf("NPF %.2f not well ahead of pin %.2f at 5GB", r.NPF[mid], r.Pin[mid])
	}
	last := len(r.MemGB) - 1
	ratio := r.NPF[last] / r.Pin[last]
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("NPF and pin should converge at 8GB: %.2f vs %.2f", r.NPF[last], r.Pin[last])
	}
}

func TestFig8bShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped in -short mode")
	}
	r := RunFig8b()
	last := len(r.Sessions) - 1
	if r.Pin[0] < 0.99 || r.Pin[last] < 0.99 {
		t.Errorf("pin not flat at 1GB: %v", r.Pin)
	}
	if r.NPF512KB[0] > 0.2 {
		t.Errorf("npf-512KB with 1 session = %.2f, want tiny", r.NPF512KB[0])
	}
	if r.NPF512KB[last] < 0.8 {
		t.Errorf("npf-512KB at 80 sessions = %.2f, want near 1GB", r.NPF512KB[last])
	}
	if r.NPF64KB[last] > r.NPF512KB[last]/3 {
		t.Errorf("npf-64KB %.2f should stay far below npf-512KB %.2f",
			r.NPF64KB[last], r.NPF512KB[last])
	}
}

func TestFig9Shapes(t *testing.T) {
	r := RunFig9(4, 40)
	for _, bench := range r.Benchmarks {
		last := len(r.SizesKB) - 1
		cp := r.Seconds[bench]["copy"]
		pin := r.Seconds[bench]["pin"]
		npf := r.Seconds[bench]["npf"]
		if cp[last] <= pin[last] {
			t.Errorf("%s: copy %.4f should lose to pin %.4f at 128KB", bench, cp[last], pin[last])
		}
		ratio := npf[last] / pin[last]
		if ratio > 1.2 || ratio < 0.8 {
			t.Errorf("%s: npf/pin = %.2f, want ≈1", bench, ratio)
		}
		// copy/pin grows with message size.
		if cp[last]/pin[last] <= cp[0]/pin[0]*0.95 {
			t.Errorf("%s: copy/pin should grow with size: %.2f -> %.2f",
				bench, cp[0]/pin[0], cp[last]/pin[last])
		}
	}
}

func TestTable6Shapes(t *testing.T) {
	r := RunTable6(4)
	if r.MBps["npf"] < 0.9*r.MBps["pin"] || r.MBps["npf"] > 1.1*r.MBps["pin"] {
		t.Errorf("npf %.0f should match pin %.0f", r.MBps["npf"], r.MBps["pin"])
	}
	if r.MBps["copy"] > 0.85*r.MBps["pin"] {
		t.Errorf("copy %.0f should clearly lose to pin %.0f", r.MBps["copy"], r.MBps["pin"])
	}
}

func TestFig10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped in -short mode")
	}
	r := RunFig10()
	for i := range r.Exps {
		if r.MinorBrng[i] < r.MinorDrop[i] {
			t.Errorf("freq 2^-%d: backup %.2f below drop %.2f",
				r.Exps[i], r.MinorBrng[i], r.MinorDrop[i])
		}
		// Drop: fault type irrelevant (RTO dominates).
		if d := r.MinorDrop[i] - r.MajorDrop[i]; d > 0.5 || d < -0.5 {
			t.Errorf("freq 2^-%d: drop minor %.2f vs major %.2f should match",
				r.Exps[i], r.MinorDrop[i], r.MajorDrop[i])
		}
	}
	// Backup degrades with major faults at high frequency.
	if r.MajorBrng[0] >= r.MinorBrng[0] {
		t.Errorf("major brng %.2f should trail minor brng %.2f",
			r.MajorBrng[0], r.MinorBrng[0])
	}
	// IB throughput increases as faults get rarer, reaching the optimum.
	if r.IBMinor[0] >= r.IBMinor[len(r.IBMinor)-1] {
		t.Errorf("IB curve not rising: %v", r.IBMinor)
	}
	if r.IBMinor[len(r.IBMinor)-1] < 0.95*r.IBOptimum {
		t.Errorf("IB should reach optimum at rare faults: %.1f vs %.1f",
			r.IBMinor[len(r.IBMinor)-1], r.IBOptimum)
	}
}

func TestAblateShapes(t *testing.T) {
	r := RunAblate()
	if r.PagewiseMs < 5*r.BatchedMs {
		t.Errorf("page-wise %.2fms should dwarf batched %.2fms", r.PagewiseMs, r.BatchedMs)
	}
	if r.PagewiseEvents <= r.BatchedEvents {
		t.Error("page-wise must take more fault events")
	}
	// Small pin-down caches thrash.
	if r.PinMs[0] < 1.3*r.PinMs[len(r.PinMs)-1] {
		t.Errorf("1MB cache %.2fms should thrash vs 64MB %.2fms",
			r.PinMs[0], r.PinMs[len(r.PinMs)-1])
	}
	// Long RNR timeouts hurt.
	if r.RNRMs[len(r.RNRMs)-1] < 2*r.RNRMs[1] {
		t.Errorf("5ms RNR timeout %.3f should hurt vs 280µs %.3f",
			r.RNRMs[len(r.RNRMs)-1], r.RNRMs[1])
	}
	// The in-flight bitmap suppresses duplicate reports by an order of
	// magnitude.
	if r.BitmapOffReports < 10*r.BitmapOnReports {
		t.Errorf("bitmap suppression: on=%.0f off=%.0f", r.BitmapOnReports, r.BitmapOffReports)
	}
	// Guest-table protection is nearly free at stream rates.
	if r.NestedGbps < 0.97*r.FlatGbps {
		t.Errorf("nested translation too costly: %.2f vs %.2f", r.NestedGbps, r.FlatGbps)
	}
	// The read-RNR extension wastes an order of magnitude fewer chunks.
	if r.ReadExtDrops*5 > r.ReadBaseDrops {
		t.Errorf("read-RNR waste: ext=%.0f base=%.0f", r.ReadExtDrops, r.ReadBaseDrops)
	}
}

func TestLOC(t *testing.T) {
	r, err := RunLOC("../..")
	if err != nil {
		t.Fatal(err)
	}
	if r.PinDownCacheLOC < 30 {
		t.Errorf("pin-down cache LOC = %d, suspiciously small", r.PinDownCacheLOC)
	}
	if r.ODPCallSites < 1 {
		t.Error("no ODP call sites found")
	}
}

func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped in -short mode")
	}
	r := RunFig7()
	// Compare combined steady-state throughput after the flip.
	tail := func(mode string) float64 {
		pair := r.Series[mode]
		n := len(pair[0])
		if len(pair[1]) < n {
			n = len(pair[1])
		}
		total, cnt := 0.0, 0
		for i := n - 10; i < n; i++ {
			if i < 0 {
				continue
			}
			total += pair[0][i][1] + pair[1][i][1]
			cnt++
		}
		return total / float64(cnt)
	}
	npf, pin := tail("npf"), tail("pin")
	if npf < 1.15*pin {
		t.Errorf("combined NPF %.1f should clearly beat pin %.1f after the flip", npf, pin)
	}
	// Under NPF both instances converge to roughly equal rates.
	pair := r.Series["npf"]
	n := len(pair[0]) - 1
	g, s := pair[0][n][1], pair[1][n][1]
	if g < 0.8*s || s < 0.8*g {
		t.Errorf("NPF instances did not converge: %.1f vs %.1f", g, s)
	}
}
