package bench

import (
	"fmt"
	"strings"

	"npf/internal/apps"
	"npf/internal/nic"
	"npf/internal/sim"
)

// Table 5 runs at 1/32 of the paper's memory scale to keep event counts
// tractable: host 8 GB → 256 MB, VM 3 GB → 96 MB, working set <2 GB →
// 48 MB. Shapes (who fits, who fails) are scale-invariant.
const (
	t5HostRAM = 256 << 20
	t5VMBytes = 96 << 20
	t5Keys    = 12000 // × 4 KB values = 48 MB working set
	t5ValueSz = 4096
	t5Conns   = 2
	t5Measure = 4 * sim.Second
	t5Prepop  = 3 * sim.Second
)

// Table5Result holds aggregated throughput for 1–4 memcached VMs.
type Table5Result struct {
	// KTPS[mode][n-1] is the aggregated throughput with n instances;
	// negative means the configuration could not run (pinning OOM).
	KTPS map[string][]float64
}

// RunTable5 reproduces Table 5: overcommitment with static working sets.
// Every (mode, instance-count) cell is an independent job on its own
// engine, executed through the sweep runner and merged in fixed order, so
// output does not depend on the fan-out.
func RunTable5() *Table5Result {
	modes := []struct {
		name   string
		policy nic.FaultPolicy
	}{{"NPF", nic.PolicyBackup}, {"pinning", nic.PolicyPinned}}
	cols := make([][]float64, len(modes))
	var jobs []func()
	for mi, mode := range modes {
		mi, mode := mi, mode
		cols[mi] = make([]float64, 4)
		for n := 1; n <= 4; n++ {
			mi, n := mi, n
			jobs = append(jobs, func() {
				ktps, ok := runTable5Config(mode.policy, n)
				if !ok {
					ktps = -1
				}
				cols[mi][n-1] = ktps
			})
		}
	}
	runJobs(jobs)
	res := &Table5Result{KTPS: make(map[string][]float64)}
	for mi, mode := range modes {
		res.KTPS[mode.name] = cols[mi]
	}
	return res
}

func runTable5Config(policy nic.FaultPolicy, instances int) (float64, bool) {
	e := NewEthEnv(EthOpts{Seed: 13, ServerRAM: t5HostRAM, Policy: nic.PolicyBackup, RingSize: 64})
	var slaps []*apps.Memaslap
	for i := 0; i < instances; i++ {
		name := fmt.Sprintf("vm%d", i)
		srv, err := e.AddServerInstance(name, policy, 64, nil, t5VMBytes)
		if err != nil {
			return 0, false // Table 5's N/A: the VMs' memory does not fit pinned
		}
		store := apps.NewKVStore(srv.AS, 0)
		store.SetArena(0, t5VMBytes)
		apps.NewKVServer(srv.Stack, store, memcachedService)
		cli := e.AddClientInstance("cli" + name)
		slap := apps.NewMemaslap(cli.Stack, apps.MemaslapConfig{
			Conns: t5Conns, GetRatio: 0.9, ValueSize: t5ValueSz, Keys: t5Keys,
			KeyPrefix: name, Prepopulate: true,
		}, sim.Second)
		slap.Start(srv.Chan.Dev.Node, srv.Chan.Flow)
		slaps = append(slaps, slap)
	}
	// Warm-up/prepopulation phase, then measure.
	e.RunUntil(t5Prepop)
	var opsBefore uint64
	for _, s := range slaps {
		opsBefore += s.Ops.N
	}
	e.RunUntil(t5Prepop + t5Measure)
	var opsAfter uint64
	for _, s := range slaps {
		opsAfter += s.Ops.N
	}
	return float64(opsAfter-opsBefore) / t5Measure.Seconds() / 1000, true
}

// Render prints Table 5.
func (r *Table5Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 5: aggregated memcached throughput [KTPS, scaled] vs #instances\n")
	b.WriteString("(8 GB host, 3 GB VMs, <2 GB working sets; all sizes scaled 1/32)\n")
	header := []string{"memcached instances", "1", "2", "3", "4"}
	var rows [][]string
	for _, mode := range []string{"NPF", "pinning"} {
		row := []string{mode}
		for _, v := range r.KTPS[mode] {
			if v < 0 {
				row = append(row, "N/A")
			} else {
				row = append(row, fmt.Sprintf("%.0f", v))
			}
		}
		rows = append(rows, row)
	}
	b.WriteString(table(header, rows))
	b.WriteString("paper: NPF 186/311/407/484; pinning 185/310/N/A/N/A\n")
	b.WriteString("shape: NPF scales to 4 VMs; pinning cannot start >2 (9 GB virtual > 8 GB)\n")
	return b.String()
}
