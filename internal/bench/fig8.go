package bench

import (
	"errors"
	"fmt"
	"strings"

	"npf/internal/apps"
	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/rc"
	"npf/internal/sim"
)

// Figure 8 runs at 1/8 of the paper's memory scale: 4 GB LUN → 512 MB, 1 GB
// communication buffers → 128 MB, 4–8 GB RAM → 512–1024 MB, OS/tgt baseline
// 2 GB → 256 MB. The locked-memory budget (20% of RAM) reproduces the
// paper's "fails to load below 5 GB" threshold at the scaled 640 MB point.
const (
	f8Scale    = 8
	f8LUN      = (4 << 30) / f8Scale
	f8CommBuf  = (1 << 30) / f8Scale
	f8Baseline = (2 << 30) / f8Scale
	f8Slot     = 512 << 10 // tgt's fixed per-transaction chunk is NOT scaled
)

// storageRig is one configured target+initiators instance.
type storageRig struct {
	eng    *sim.Engine
	target *apps.StorageTarget
	fios   []*apps.FioInitiator
}

// buildStorageRig assembles the testbed; returns an error when the pinned
// configuration is refused.
func buildStorageRig(seed int64, ramBytes int64, pinned bool, blockSize int, sessions, iodepth int, targetBytes int64) (*storageRig, error) {
	eng := newBenchEngine(seed)
	cfg := rc.DefaultConfig()
	cfg.FirmwareJitterSigma = 0
	cfg.MTU = 64 << 10 // jumbo IB MTU keeps event counts tractable
	net := fabric.New(eng, fabric.DefaultInfiniBand())
	m := mem.NewMachine(eng, ramBytes)
	mI := mem.NewMachine(eng, 8<<30)
	drv := core.NewDriver(eng, core.DefaultConfig())
	hcaT, hcaI := rc.NewHCA(eng, net, cfg), rc.NewHCA(eng, net, cfg)
	drv.AttachHCA(hcaT)
	drv.AttachHCA(hcaI)

	// OS + tgt baseline footprint (unreclaimable).
	baseline := m.NewAddressSpace("baseline", nil)
	baseline.MapBytes(f8Baseline)
	if _, err := baseline.Pin(0, int(f8Baseline/mem.PageSize)); err != nil {
		return nil, fmt.Errorf("baseline does not fit: %w", err)
	}

	asT := m.NewAddressSpace("tgt", nil)
	disk := &mem.SwapDevice{ReadLatency: 400 * sim.Microsecond, ReadBandwidth: 1200e6}
	cache := m.NewPageCache("lun", nil, disk, int64(blockSize))
	tcfg := apps.DefaultStorageTargetConfig()
	tcfg.CommBufBytes = f8CommBuf
	tcfg.SlotBytes = f8Slot
	tcfg.SlotsPerSession = 4
	tcfg.Pinned = pinned
	target, err := apps.NewStorageTarget(asT, cache, tcfg)
	if err != nil {
		return nil, err
	}
	rig := &storageRig{eng: eng, target: target}
	for s := 0; s < sessions; s++ {
		qpT := hcaT.NewQP(asT)
		asI := mI.NewAddressSpace(fmt.Sprintf("fio%d", s), nil)
		qpI := hcaI.NewQP(asI)
		rc.Connect(qpT, qpI)
		if !pinned {
			drv.EnableODPQP(qpT)
		}
		drv.EnableODPQP(qpI)
		target.AddSession(qpT)
		fio := apps.NewFioInitiator(qpI, asI, apps.FioConfig{
			BlockSize: blockSize, IODepth: iodepth,
			LUNBytes: f8LUN, TargetBytes: targetBytes,
		})
		rig.fios = append(rig.fios, fio)
	}
	return rig, nil
}

// Fig8aResult holds bandwidth versus memory size.
type Fig8aResult struct {
	MemGB []float64 // paper-scale GB labels
	NPF   []float64 // GB/s; negative = failed to start
	Pin   []float64
}

// RunFig8a reproduces Figure 8(a): random 512 KB read bandwidth vs memory.
// Each (memory size, pinned) point is an independent job on its own rig.
func RunFig8a() *Fig8aResult {
	res := &Fig8aResult{}
	var rams []int64
	for ram := int64(512 << 20); ram <= 1024<<20; ram += 64 << 20 {
		rams = append(rams, ram)
		res.MemGB = append(res.MemGB, float64(ram*f8Scale)/float64(1<<30))
	}
	res.NPF = make([]float64, len(rams))
	res.Pin = make([]float64, len(rams))
	var jobs []func()
	for ri, ram := range rams {
		ri, ram := ri, ram
		for _, pinned := range []bool{false, true} {
			pinned := pinned
			jobs = append(jobs, func() {
				rig, err := buildStorageRig(31, ram, pinned, 512<<10, 1, 16, 0)
				bw := -1.0
				if err == nil {
					rig.fios[0].Start()
					// Warm the page cache to steady state, then measure.
					rig.eng.RunUntil(3 * sim.Second)
					bytesBefore := rig.fios[0].Bytes.N
					rig.eng.RunUntil(6 * sim.Second)
					bw = float64(rig.fios[0].Bytes.N-bytesBefore) / 3 / 1e9
				} else if !errors.Is(err, apps.ErrPinnedTooLarge) {
					panic(err)
				}
				if pinned {
					res.Pin[ri] = bw
				} else {
					res.NPF[ri] = bw
				}
			})
		}
	}
	runJobs(jobs)
	return res
}

// Render prints the bandwidth table.
func (r *Fig8aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8(a): storage bandwidth [GB/s] vs memory (sizes at paper scale; run at 1/8)\n")
	var rows [][]string
	for i := range r.MemGB {
		row := []string{fmt.Sprintf("%.1f GB", r.MemGB[i])}
		for _, v := range []float64{r.NPF[i], r.Pin[i]} {
			if v < 0 {
				row = append(row, "N/A (failed to load)")
			} else {
				row = append(row, fmt.Sprintf("%.2f", v))
			}
		}
		rows = append(rows, row)
	}
	b.WriteString(table([]string{"memory", "npf", "pin"}, rows))
	b.WriteString("paper shape: pin fails below 5 GB; NPF runs at 4 GB; NPF up to 1.9x\n")
	b.WriteString("faster until the pinned config finally caches the whole disk (≥7 GB)\n")
	return b.String()
}

// Fig8bResult holds tgt resident memory versus initiator sessions.
type Fig8bResult struct {
	Sessions []int
	// GB at paper scale, by configuration.
	Pin      []float64
	NPF512KB []float64
	NPF64KB  []float64
}

// RunFig8b reproduces Figure 8(b): tgt memory usage vs #initiators at a
// fixed memory limit, 64 KB vs 512 KB blocks.
func RunFig8b() *Fig8bResult {
	res := &Fig8bResult{Sessions: []int{1, 10, 20, 40, 60, 80}}
	ram := int64((6 << 30) / f8Scale)
	res.Pin = make([]float64, len(res.Sessions))
	res.NPF512KB = make([]float64, len(res.Sessions))
	res.NPF64KB = make([]float64, len(res.Sessions))
	var jobs []func()
	for si, sessions := range res.Sessions {
		si, sessions := si, sessions
		for _, cfg := range []struct {
			pinned bool
			block  int
			out    []float64
		}{
			{true, 512 << 10, res.Pin},
			{false, 512 << 10, res.NPF512KB},
			{false, 64 << 10, res.NPF64KB},
		} {
			cfg := cfg
			jobs = append(jobs, func() {
				rig, err := buildStorageRig(37, ram, cfg.pinned, cfg.block, sessions, 4,
					int64(sessions)*8<<20)
				if err != nil {
					// Pinned at 6 GB (scaled 768 MB): 128 MB < 20% → loads.
					panic(err)
				}
				for _, f := range rig.fios {
					f.Start()
				}
				rig.eng.RunUntil(20 * sim.Second)
				cfg.out[si] = float64(rig.target.CommBufResident()) * f8Scale / float64(1<<30)
			})
		}
	}
	runJobs(jobs)
	return res
}

// Render prints the memory-usage table.
func (r *Fig8bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8(b): tgt communication-buffer memory [GB at paper scale] vs sessions\n")
	var rows [][]string
	for i, s := range r.Sessions {
		rows = append(rows, []string{
			fmt.Sprintf("%d", s),
			fmt.Sprintf("%.2f", r.Pin[i]),
			fmt.Sprintf("%.2f", r.NPF512KB[i]),
			fmt.Sprintf("%.2f", r.NPF64KB[i]),
		})
	}
	b.WriteString(table([]string{"sessions", "pin (any block)", "npf 512KB", "npf 64KB"}, rows))
	b.WriteString("paper shape: pin flat at 1 GB; npf grows with use; 64 KB blocks touch\n")
	b.WriteString("only 1/8 of each fixed 512 KB chunk, so npf-64KB stays far below\n")
	return b.String()
}
