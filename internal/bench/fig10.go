package bench

import (
	"fmt"
	"math"
	"strings"

	"npf/internal/apps"
	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/tcp"
)

// Fig10Result holds stream throughput versus synthetic rNPF frequency.
// Frequency is per received page (4 KB), expressed as 2^-Exp.
type Fig10Result struct {
	Exps []int // x axis: fault probability 2^-exp per page
	// Ethernet Gb/s by configuration.
	MinorBrng, MajorBrng, MinorDrop, MajorDrop []float64
	// InfiniBand Gb/s (minor faults) and the optimum for the % axis.
	IBMinor   []float64
	IBOptimum float64
}

// RunFig10 reproduces Figure 10: the what-if analysis under synthetic rNPFs.
// Every (frequency, configuration) stream is an independent job on its own
// engine.
func RunFig10() *Fig10Result {
	res := &Fig10Result{Exps: []int{8, 10, 12, 14, 16, 18, 20}}
	n := len(res.Exps)
	res.MinorBrng = make([]float64, n)
	res.MajorBrng = make([]float64, n)
	res.MinorDrop = make([]float64, n)
	res.MajorDrop = make([]float64, n)
	res.IBMinor = make([]float64, n)
	var jobs []func()
	for i, exp := range res.Exps {
		i := i
		perByte := math.Pow(2, -float64(exp)) / float64(mem.PageSize)
		jobs = append(jobs,
			func() { res.MinorBrng[i] = runEthStream(perByte, false, true) },
			func() { res.MajorBrng[i] = runEthStream(perByte, true, true) },
			func() { res.MinorDrop[i] = runEthStream(perByte, false, false) },
			func() { res.MajorDrop[i] = runEthStream(perByte, true, false) },
			func() { res.IBMinor[i] = runIBStream(perByte) },
		)
	}
	jobs = append(jobs, func() { res.IBOptimum = runIBStream(0) })
	runJobs(jobs)
	return res
}

// runEthStream measures one Ethernet stream configuration (Gb/s).
func runEthStream(freqPerByte float64, major, backup bool) float64 {
	eng := newBenchEngine(41)
	net := fabric.New(eng, fabric.DefaultEthernet())
	m := mem.NewMachine(eng, 8<<30)
	drv := core.NewDriver(eng, core.DefaultConfig())
	mkStack := func(name string, pol nic.FaultPolicy) *tcp.Stack {
		dcfg := nic.DefaultConfig()
		dcfg.FirmwareJitterSigma = 0
		dev := nic.NewDevice(eng, net, dcfg)
		drv.AttachDevice(dev)
		as := m.NewAddressSpace(name, nil)
		ch := dev.NewChannel(name, as, 256, pol, 256)
		drv.EnableODP(ch)
		st := tcp.NewStack(ch, tcp.DefaultConfig())
		WarmStack(st) // pre-fault the ring: no cold-ring effects here
		return st
	}
	pol := nic.PolicyDrop
	if backup {
		pol = nic.PolicyBackup
	}
	recv := mkStack("recv", pol)
	send := mkStack("send", nic.PolicyBackup)
	s := apps.NewEthStream(send, recv, 64<<10, 64<<20)
	if freqPerByte > 0 {
		rxBase, rxLen := recv.RxBuffers()
		s.Injector = apps.NewFaultInjector(recv.Channel().AS, rxBase.Page(),
			int(rxLen/mem.PageSize), freqPerByte, major)
	}
	s.Start()
	eng.RunUntil(120 * sim.Second)
	return s.ThroughputGbps(eng.Now())
}

// runIBStream measures the ib_send_bw-style configuration (Gb/s).
func runIBStream(freqPerByte float64) float64 {
	eng := newBenchEngine(43)
	net := fabric.New(eng, fabric.DefaultInfiniBand())
	m := mem.NewMachine(eng, 8<<30)
	cfg := rc.DefaultConfig()
	cfg.FirmwareJitterSigma = 0
	drv := core.NewDriver(eng, core.DefaultConfig())
	hcaS, hcaR := rc.NewHCA(eng, net, cfg), rc.NewHCA(eng, net, cfg)
	drv.AttachHCA(hcaS)
	drv.AttachHCA(hcaR)
	asS := m.NewAddressSpace("s", nil)
	asR := m.NewAddressSpace("r", nil)
	snd, rcv := hcaS.NewQP(asS), hcaR.NewQP(asR)
	rc.Connect(snd, rcv)
	drv.EnableODPQP(snd)
	drv.EnableODPQP(rcv)
	s := apps.NewIBStream(snd, rcv, 64<<10, 128<<20)
	if freqPerByte > 0 {
		base, pages := s.RecvRegion()
		s.Injector = apps.NewFaultInjector(asR, base, pages, freqPerByte, false)
	}
	s.Start()
	eng.RunUntil(120 * sim.Second)
	return s.ThroughputGbps(eng.Now())
}

// Render prints both panels.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: stream throughput vs synthetic rNPF frequency (per 4KB page)\n\n")
	b.WriteString("Ethernet [Gb/s]:\n")
	var rows [][]string
	for i, exp := range r.Exps {
		rows = append(rows, []string{
			fmt.Sprintf("2^-%d", exp),
			fmt.Sprintf("%.2f", r.MinorBrng[i]),
			fmt.Sprintf("%.2f", r.MajorBrng[i]),
			fmt.Sprintf("%.2f", r.MinorDrop[i]),
			fmt.Sprintf("%.2f", r.MajorDrop[i]),
		})
	}
	b.WriteString(table([]string{"freq", "minor brng", "major brng", "minor drop", "major drop"}, rows))
	b.WriteString("\nInfiniBand [Gb/s and % of optimum], minor faults:\n")
	rows = nil
	for i, exp := range r.Exps {
		rows = append(rows, []string{
			fmt.Sprintf("2^-%d", exp),
			fmt.Sprintf("%.1f", r.IBMinor[i]),
			fmt.Sprintf("%.0f%%", 100*r.IBMinor[i]/r.IBOptimum),
		})
	}
	b.WriteString(table([]string{"freq", "Gb/s", "% optimum"}, rows))
	fmt.Fprintf(&b, "optimum (no faults): %.1f Gb/s\n", r.IBOptimum)
	b.WriteString("paper shape: backup ring >> drop at every frequency; drop is equally\n")
	b.WriteString("bad for minor and major (TCP's RTO dwarfs the fault type); backup\n")
	b.WriteString("degrades with major faults; IB's RNR-based hardware solution recovers\n")
	b.WriteString("quickly but wastes more of the link than the backup ring\n")
	return b.String()
}
