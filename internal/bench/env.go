// Package bench regenerates every table and figure of the paper's
// evaluation (§6) on the simulated stack. Each experiment has a Run
// function returning a result struct with a Render method that prints the
// same rows/series the paper reports, plus paper-reference values where
// useful. EXPERIMENTS.md records paper-vs-measured for each.
package bench

import (
	"fmt"
	"strings"

	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/tcp"
	"npf/internal/topo"
	"npf/internal/trace"
)

// MaxEngineEvents bounds every experiment engine: the heaviest shipped
// experiments execute a few tens of millions of events, so a runaway
// scenario (a stuck retransmission loop, an event chain that never
// converges) trips the engine's diagnostic panic instead of hanging CI.
const MaxEngineEvents = 2_000_000_000

// TraceFactory, when non-nil, is called for every engine the env
// constructors build and its tracer is wired through the whole stack
// (drivers, machines, devices/HCAs). cmd/npfbench sets this for -trace so
// experiments whose envs are built deep inside Run functions get traced;
// direct env users pass EthOpts.Trace/IBOpts.Trace instead. With Workers >
// 1 envs are built from worker goroutines, so the factory must be safe for
// concurrent calls.
var TraceFactory func(*sim.Engine) *trace.Tracer

func newEnvEngine(seed int64) (*sim.Engine, *trace.Tracer) {
	eng := newBenchEngine(seed)
	var tr *trace.Tracer
	if TraceFactory != nil {
		tr = TraceFactory(eng)
	}
	return eng, tr
}

// EthHost bundles one Ethernet endpoint: device, channel, stack, driver.
type EthHost struct {
	Dev   *nic.Device
	AS    *mem.AddressSpace
	Chan  *nic.Channel
	Stack *tcp.Stack
}

// EthEnv is a two-host Ethernet testbed like the paper's (§6 setup): a
// server with the NPF-supporting prototype NIC and an unmodified client.
type EthEnv struct {
	Eng     *sim.Engine
	Net     *fabric.Network
	M       *mem.Machine // server machine
	ClientM *mem.Machine
	Drv     *core.Driver
	Server  *EthHost
	Client  *EthHost
	// G is the PDES group when the env was built with Engines >= 1
	// (server = partition 0, client = partition 1); nil in single-engine
	// mode. ClientEng/ClientDrv are the client host's engine and driver;
	// in single-engine mode they alias Eng/Drv, so callers can address
	// the client side unconditionally.
	G         *sim.Group
	ClientEng *sim.Engine
	ClientDrv *core.Driver
	// Tracer is non-nil when the env was built with EthOpts.Trace or a
	// TraceFactory. It lives on the server engine; the client host runs
	// untraced, exactly as in the single-engine env.
	Tracer *trace.Tracer
}

// Run drives the env to quiescence and returns the end time.
func (e *EthEnv) Run() sim.Time {
	if e.G != nil {
		return e.G.Run()
	}
	return e.Eng.Run()
}

// RunUntil advances every host of the env to t.
func (e *EthEnv) RunUntil(t sim.Time) sim.Time {
	if e.G != nil {
		return e.G.RunUntil(t)
	}
	return e.Eng.RunUntil(t)
}

// EthOpts configures the testbed.
type EthOpts struct {
	Seed         int64
	ServerRAM    int64
	Policy       nic.FaultPolicy // server ring policy
	RingSize     int
	ServerCgroup *mem.Group
	PrefaultRing bool
	Jitter       bool
	Trace        bool // attach a trace.Tracer even without a TraceFactory
}

// NewEthEnv builds the testbed. The client is always statically pinned
// (unmodified); the server is pinned or ODP per Policy.
func NewEthEnv(o EthOpts) *EthEnv {
	if o.ServerRAM == 0 {
		o.ServerRAM = 8 << 30
	}
	if o.RingSize == 0 {
		o.RingSize = 64
	}
	dcfg := core.DefaultConfig()
	dcfg.PrefaultRing = o.PrefaultRing
	var e *EthEnv
	if Engines >= 1 {
		fcfg := fabric.DefaultEthernet()
		g := newBenchGroup(o.Seed+1, 2, fcfg.Lookahead())
		eng, ceng := g.Engine(0), g.Engine(1)
		var tr *trace.Tracer
		if TraceFactory != nil {
			tr = TraceFactory(eng)
		}
		if o.Trace && tr == nil {
			tr = trace.New(eng)
		}
		net := fabric.NewOnGroup(g, fcfg)
		// One spec stamps out both substrates (machines and drivers don't
		// split RNGs, so the per-host grouping preserves seeded results).
		spec := topo.HostSpec{RAM: o.ServerRAM, Driver: dcfg}
		srv := spec.Build(eng, net, tr, "server")
		spec.RAM = 8 << 30
		cli := spec.Build(ceng, net, nil, "client")
		e = &EthEnv{Eng: eng, G: g, ClientEng: ceng, Net: net, M: srv.M,
			ClientM: cli.M, Drv: srv.Drv, ClientDrv: cli.Drv, Tracer: tr}
	} else {
		eng, tr := newEnvEngine(o.Seed + 1)
		if o.Trace && tr == nil {
			tr = trace.New(eng)
		}
		net := fabric.New(eng, fabric.DefaultEthernet())
		srv := topo.HostSpec{RAM: o.ServerRAM, Driver: dcfg}.Build(eng, net, tr, "server")
		// Single-engine mode shares the server driver with the client host
		// (two devices, one driver) — only the client machine is separate.
		cm := mem.NewMachine(eng, 8<<30)
		e = &EthEnv{Eng: eng, ClientEng: eng, Net: net, M: srv.M,
			ClientM: cm, Drv: srv.Drv, ClientDrv: srv.Drv, Tracer: tr}
	}
	e.Server = e.newHost(e.Eng, e.Drv, e.M, "server", o.Policy, o.RingSize, o.ServerCgroup, o.Jitter)
	e.Client = e.newHost(e.ClientEng, e.ClientDrv, e.ClientM, "client", nic.PolicyPinned, 256, nil, o.Jitter)
	return e
}

// AddServerInstance adds another IOuser (channel+stack) on the server NIC —
// one more "VM" for the overcommitment experiments. vmBytes maps the VM's
// guest-physical memory in its address space before the stack's buffers.
// Pinned instances whose memory does not fit return an error (the paper's
// Table 5 "N/A").
func (e *EthEnv) AddServerInstance(name string, policy nic.FaultPolicy, ringSize int, cgroup *mem.Group, vmBytes int64) (*EthHost, error) {
	h := &EthHost{Dev: e.Server.Dev}
	h.AS = e.M.NewAddressSpace(name, cgroup)
	if vmBytes > 0 {
		h.AS.MapBytes(vmBytes)
	}
	h.Chan = h.Dev.NewChannel(name, h.AS, ringSize, policy, ringSize)
	if policy != nic.PolicyPinned {
		e.Drv.EnableODP(h.Chan)
	}
	h.Stack = tcp.NewStack(h.Chan, tcp.DefaultConfig())
	if policy == nic.PolicyPinned {
		if _, err := core.StaticPinAll(h.AS, h.Chan.Domain); err != nil {
			return nil, fmt.Errorf("bench: pinning %s: %w", name, err)
		}
	}
	return h, nil
}

// AddClientInstance adds another (pinned) client stack on the client NIC.
func (e *EthEnv) AddClientInstance(name string) *EthHost {
	h := &EthHost{Dev: e.Client.Dev}
	h.AS = e.ClientM.NewAddressSpace(name, nil)
	h.Chan = h.Dev.NewChannel(name, h.AS, 256, nic.PolicyPinned, 256)
	h.Stack = tcp.NewStack(h.Chan, tcp.DefaultConfig())
	if _, err := core.StaticPinAll(h.AS, h.Chan.Domain); err != nil {
		panic(err)
	}
	return h
}

func (e *EthEnv) newHost(eng *sim.Engine, drv *core.Driver, m *mem.Machine, name string, policy nic.FaultPolicy, ringSize int, cgroup *mem.Group, jitter bool) *EthHost {
	dcfg := nic.DefaultConfig()
	if !jitter {
		dcfg.FirmwareJitterSigma = 0
	}
	dev := nic.NewDevice(eng, e.Net, dcfg)
	// The server device is the traced one; stacks inherit the tracer from
	// their device at construction, so set it before tcp.NewStack below.
	if name == "server" {
		dev.SetTracer(e.Tracer)
	}
	drv.AttachDevice(dev)
	h := &EthHost{Dev: dev}
	h.AS = m.NewAddressSpace(name, cgroup)
	h.Chan = dev.NewChannel(name, h.AS, ringSize, policy, ringSize)
	if policy != nic.PolicyPinned {
		drv.EnableODP(h.Chan)
	}
	h.Stack = tcp.NewStack(h.Chan, tcp.DefaultConfig())
	if policy == nic.PolicyPinned {
		if _, err := core.StaticPinAll(h.AS, h.Chan.Domain); err != nil {
			panic(fmt.Sprintf("bench: pinning %s: %v", name, err))
		}
	}
	return h
}

// WarmStack pre-faults and maps a stack's RX and TX buffer regions (used
// for ODP stacks that must start warm).
func WarmStack(st *tcp.Stack) {
	ch := st.Channel()
	for _, r := range [][2]int64{rxRange(st), txRange(st)} {
		base, pages := mem.PageNum(r[0]), int(r[1])
		if _, err := ch.AS.TouchPages(base, pages, true); err != nil {
			panic(err)
		}
		ch.Domain.Map(base, pages)
	}
}

func rxRange(st *tcp.Stack) [2]int64 {
	base, n := st.RxBuffers()
	return [2]int64{int64(base.Page()), n / mem.PageSize}
}

func txRange(st *tcp.Stack) [2]int64 {
	base, n := st.TxBuffers()
	return [2]int64{int64(base.Page()), n / mem.PageSize}
}

// IBEnv is a pair of InfiniBand hosts with ODP drivers.
type IBEnv struct {
	Eng        *sim.Engine
	Net        *fabric.Network
	MA, MB     *mem.Machine
	DrvA, DrvB *core.Driver
	HCAA, HCAB *rc.HCA
	ASA, ASB   *mem.AddressSpace
	QPA, QPB   *rc.QP
	// G is the PDES group when the env was built with Engines >= 1
	// (side A = partition 0, side B = partition 1); nil in single-engine
	// mode. EngB is side B's engine; in single-engine mode it aliases
	// Eng, so side-B callbacks can stop/inspect their own engine
	// unconditionally.
	G    *sim.Group
	EngB *sim.Engine
	// Tracer is non-nil when the env was built with IBOpts.Trace or a
	// TraceFactory; in partitioned mode it belongs to side A and TracerB
	// to side B (single-engine mode shares one tracer, TracerB aliases
	// it).
	Tracer  *trace.Tracer
	TracerB *trace.Tracer
}

// Run drives the env to quiescence and returns the end time.
func (e *IBEnv) Run() sim.Time {
	if e.G != nil {
		return e.G.Run()
	}
	return e.Eng.Run()
}

// RunUntil advances both sides of the env to t.
func (e *IBEnv) RunUntil(t sim.Time) sim.Time {
	if e.G != nil {
		return e.G.RunUntil(t)
	}
	return e.Eng.RunUntil(t)
}

// IBOpts configures the IB testbed.
type IBOpts struct {
	Seed   int64
	Jitter bool
	MTU    int
	Tweak  func(*rc.Config)
	Trace  bool // attach a trace.Tracer even without a TraceFactory
}

// NewIBEnv builds a two-node IB testbed with a connected, ODP-enabled QP
// pair.
func NewIBEnv(o IBOpts) *IBEnv {
	cfg := rc.DefaultConfig()
	if !o.Jitter {
		cfg.FirmwareJitterSigma = 0
	}
	if o.MTU != 0 {
		cfg.MTU = o.MTU
	}
	if o.Tweak != nil {
		o.Tweak(&cfg)
	}
	var e *IBEnv
	if Engines >= 1 {
		fcfg := fabric.DefaultInfiniBand()
		g := newBenchGroup(o.Seed+1, 2, fcfg.Lookahead())
		eng, engB := g.Engine(0), g.Engine(1)
		var tr, trB *trace.Tracer
		if TraceFactory != nil {
			tr, trB = TraceFactory(eng), TraceFactory(engB)
		}
		if o.Trace && tr == nil {
			tr, trB = trace.New(eng), trace.New(engB)
		}
		net := fabric.NewOnGroup(g, fcfg)
		e = &IBEnv{Eng: eng, G: g, EngB: engB, Net: net, Tracer: tr, TracerB: trB}
		spec := topo.HostSpec{RAM: 128 << 30, HCA: &cfg}
		a, b := spec.Build(eng, net, tr, "a"), spec.Build(engB, net, trB, "b")
		e.MA, e.MB = a.M, b.M
		e.DrvA, e.DrvB = a.Drv, b.Drv
		e.HCAA, e.HCAB = a.HCA, b.HCA
	} else {
		eng, tr := newEnvEngine(o.Seed + 1)
		if o.Trace && tr == nil {
			tr = trace.New(eng)
		}
		net := fabric.New(eng, fabric.DefaultInfiniBand())
		e = &IBEnv{Eng: eng, EngB: eng, Net: net, Tracer: tr, TracerB: tr}
		// Both sides share one engine: the spec builds them back to back in
		// the historical order (HCA A's RNG splits before HCA B's).
		spec := topo.HostSpec{RAM: 128 << 30, HCA: &cfg}
		a, b := spec.Build(eng, net, tr, "a"), spec.Build(eng, net, tr, "b")
		e.MA, e.MB = a.M, b.M
		e.DrvA, e.DrvB = a.Drv, b.Drv
		e.HCAA, e.HCAB = a.HCA, b.HCA
	}
	e.ASA = e.MA.NewAddressSpace("a", nil)
	e.ASA.MapBytes(8 << 30)
	e.ASB = e.MB.NewAddressSpace("b", nil)
	e.ASB.MapBytes(8 << 30)
	e.QPA, e.QPB = e.HCAA.NewQP(e.ASA), e.HCAB.NewQP(e.ASB)
	rc.Connect(e.QPA, e.QPB)
	e.DrvA.EnableODPQP(e.QPA)
	e.DrvB.EnableODPQP(e.QPB)
	return e
}

// Warm makes a page range resident and mapped on one side.
func Warm(qp *rc.QP, first mem.PageNum, pages int) {
	if _, err := qp.AS.TouchPages(first, pages, true); err != nil {
		panic(err)
	}
	qp.Domain.Map(first, pages)
}

// ---------------------------------------------------------------------------
// Rendering helpers.

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	all := append([][]string{header}, rows...)
	widths := make([]int, len(header))
	for _, row := range all {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for r, row := range all {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if r == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
