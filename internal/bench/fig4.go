package bench

import (
	"fmt"
	"strings"

	"npf/internal/apps"
	"npf/internal/nic"
	"npf/internal/sim"
)

// memcachedService is the per-request CPU time of the simulated memcached.
// The simulation is time-scaled (see EXPERIMENTS.md): absolute KTPS values
// are lower than the paper's testbed, shapes are preserved.
const memcachedService = 50 * sim.Microsecond

var fig4Policies = []nic.FaultPolicy{nic.PolicyDrop, nic.PolicyBackup, nic.PolicyPinned}

// Fig4aResult holds throughput-vs-time series for each policy during a
// cold-ring startup.
type Fig4aResult struct {
	// Series maps policy name to (seconds, KTPS) points.
	Series map[string][][2]float64
}

// RunFig4a reproduces Figure 4(a): memcached startup with a 64-entry cold
// receive ring under drop/backup/pin. Each policy runs as an independent
// job on its own engine.
func RunFig4a(duration sim.Time) *Fig4aResult {
	res := &Fig4aResult{Series: make(map[string][][2]float64)}
	series := make([][][2]float64, len(fig4Policies))
	jobs := make([]func(), len(fig4Policies))
	for pi, pol := range fig4Policies {
		pi, pol := pi, pol
		jobs[pi] = func() {
			e := NewEthEnv(EthOpts{Seed: 3, Policy: pol, RingSize: 64})
			store := apps.NewKVStore(e.Server.AS, 0)
			apps.NewKVServer(e.Server.Stack, store, memcachedService)
			slap := apps.NewMemaslap(e.Client.Stack, apps.MemaslapConfig{
				Conns: 8, GetRatio: 0.9, ValueSize: 1024, Keys: 500,
				KeyPrefix: "k", Prepopulate: true,
			}, sim.Second)
			slap.Start(e.Server.Chan.Dev.Node, e.Server.Chan.Flow)
			e.RunUntil(duration)
			times, rates := slap.OpsTS.RatePoints()
			pts := make([][2]float64, len(times))
			for i := range times {
				pts[i] = [2]float64{times[i], rates[i] / 1000}
			}
			series[pi] = pts
		}
	}
	runJobs(jobs)
	for pi, pol := range fig4Policies {
		res.Series[pol.String()] = series[pi]
	}
	return res
}

// Render prints the three startup series.
func (r *Fig4aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4(a): startup throughput [KTPS, scaled] vs time, 64-entry cold ring\n")
	maxRate := 0.0
	//npf:orderinvariant — max over all points is commutative
	for _, pts := range r.Series {
		for _, p := range pts {
			if p[1] > maxRate {
				maxRate = p[1]
			}
		}
	}
	for _, name := range []string{"pin", "backup", "drop"} {
		pts := r.Series[name]
		fmt.Fprintf(&b, "%s:\n", name)
		for _, p := range pts {
			width := 0
			if maxRate > 0 {
				width = int(p[1] / maxRate * 50)
			}
			fmt.Fprintf(&b, "  t=%4.0fs  %8.2f  %s\n", p[0], p[1], strings.Repeat("#", width))
		}
	}
	b.WriteString("paper shape: pin reaches steady state immediately; backup matches pin;\n")
	b.WriteString("drop is ~zero for tens of seconds (cold-ring near-deadlock)\n")
	return b.String()
}

// Fig4bResult holds time-to-10K-ops versus ring size.
type Fig4bResult struct {
	RingSizes []int
	// Seconds[policy][i] is the completion time for RingSizes[i];
	// negative means the run failed (connection aborted) or timed out.
	Seconds map[string][]float64
}

// RunFig4b reproduces Figure 4(b): time to perform 10 000 operations as a
// function of receive ring size.
func RunFig4b(ops int, ringSizes []int, timeout sim.Time) *Fig4bResult {
	if len(ringSizes) == 0 {
		ringSizes = []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	}
	res := &Fig4bResult{RingSizes: ringSizes, Seconds: make(map[string][]float64)}
	// One job per (policy, ring size) point, each on a private engine.
	cols := make([][]float64, len(fig4Policies))
	var jobs []func()
	for pi, pol := range fig4Policies {
		pi, pol := pi, pol
		cols[pi] = make([]float64, len(ringSizes))
		for ri, ring := range ringSizes {
			ri, ring := ri, ring
			jobs = append(jobs, func() {
				e := NewEthEnv(EthOpts{Seed: 5, Policy: pol, RingSize: ring})
				store := apps.NewKVStore(e.Server.AS, 0)
				apps.NewKVServer(e.Server.Stack, store, memcachedService)
				slap := apps.NewMemaslap(e.Client.Stack, apps.MemaslapConfig{
					Conns: 8, GetRatio: 0.9, ValueSize: 1024, Keys: 500,
					KeyPrefix: "k", Prepopulate: true, TargetOps: ops,
				}, sim.Second)
				// OnDone fires from a client-side event, so the stop must
				// target the client's engine.
				slap.OnDone = func() { e.ClientEng.Stop() }
				slap.Start(e.Server.Chan.Dev.Node, e.Server.Chan.Flow)
				e.RunUntil(timeout)
				switch {
				case slap.Failed && slap.DoneAt == 0:
					cols[pi][ri] = -1 // TCP gave up (paper: ring >= 128)
				case slap.DoneAt == 0:
					cols[pi][ri] = -2 // timed out
				default:
					cols[pi][ri] = slap.DoneAt.Seconds()
				}
			})
		}
	}
	runJobs(jobs)
	for pi, pol := range fig4Policies {
		res.Seconds[pol.String()] = cols[pi]
	}
	return res
}

// Render prints the ring-size sweep.
func (r *Fig4bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4(b): time to perform 10,000 operations vs receive ring size [s]\n")
	header := []string{"ring"}
	for _, p := range []string{"drop", "backup", "pin"} {
		header = append(header, p)
	}
	var rows [][]string
	for i, ring := range r.RingSizes {
		row := []string{fmt.Sprintf("%d", ring)}
		for _, p := range []string{"drop", "backup", "pin"} {
			v := r.Seconds[p][i]
			switch {
			case v == -1:
				row = append(row, "FAILED")
			case v == -2:
				row = append(row, "timeout")
			default:
				row = append(row, fmt.Sprintf("%.2f", v))
			}
		}
		rows = append(rows, row)
	}
	b.WriteString(table(header, rows))
	b.WriteString("paper shape: drop >10s even at 16 entries and fails (TCP retry limit)\n")
	b.WriteString("at >=128; backup degrades gracefully with ring size; pin is flat\n")
	return b.String()
}
