package bench

import (
	"fmt"
	"strings"

	"npf/internal/fabric"
	"npf/internal/kv"
	"npf/internal/sim"
	"npf/internal/trace"
)

// AnatomyResult is the fault-anatomy profile: the distributed-KV deployment
// of RunKV re-run per registration policy with the causal fault recorder
// always on, post-processed into the paper's per-stage anatomy table and a
// critical-path extraction for the tail. Unlike the other experiments it
// does not depend on TraceFactory — the recorder is the experiment.
type AnatomyResult struct {
	Policies []kv.RegPolicy
	Stages   []map[string]*sim.Histogram // per-policy stage -> latency (µs)
	Paths    [][]trace.PathCount         // per-policy fault-path provenance
	Crit     []*trace.CritPath           // per-policy p99 critical path (nil: no faults)
	Faults   []int                       // completed fault records
	Pending  []int                       // minted but never resumed by run end
	NPFs     []uint64                    // driver NPF count, for cross-checking
	EvDrop   []uint64                    // flight-ring events overwritten
	RecDrop  []uint64                    // records dropped at the cap
	SpanDrop []uint64                    // spans dropped at MaxSpans
}

// AnatomyRow is the fault_anatomy artifact section: one row per policy with
// the headline numbers npfstat gates (see cmd/npfbench, cmd/npfstat).
type AnatomyRow struct {
	Policy         string  `json:"policy"`
	Faults         int     `json:"faults"`
	Pending        int     `json:"pending"`
	NPFs           uint64  `json:"npfs"`
	TotalP50Us     float64 `json:"total_p50_us"`
	TotalP99Us     float64 `json:"total_p99_us"`
	CritStage      string  `json:"crit_stage"` // dominant stage of the p99 tail
	CritLayer      string  `json:"crit_layer"`
	CritHost       int64   `json:"crit_host"`
	CritShare      float64 `json:"crit_share"` // mean share of tail-fault totals
	DroppedEvents  uint64  `json:"dropped_fault_events"`
	DroppedRecords uint64  `json:"dropped_fault_records"`
	DroppedSpans   uint64  `json:"dropped_spans"`
}

// RunAnatomy profiles the NPF lifecycle per registration policy. Each
// policy is an independent, seed-isolated job through the sweep runner and
// writes only its own row, so output is byte-identical for any Workers
// fan-out; in PDES mode the partition count is fixed at two, so it is also
// byte-identical for every Engines value.
func RunAnatomy(quick bool) *AnatomyResult {
	ops := 4000
	if quick {
		ops = 1200
	}
	policies := []kv.RegPolicy{kv.RegODP, kv.RegPinDown, kv.RegPinned}
	n := len(policies)
	res := &AnatomyResult{
		Policies: policies,
		Stages:   make([]map[string]*sim.Histogram, n),
		Paths:    make([][]trace.PathCount, n),
		Crit:     make([]*trace.CritPath, n),
		Faults:   make([]int, n),
		Pending:  make([]int, n),
		NPFs:     make([]uint64, n),
		EvDrop:   make([]uint64, n),
		RecDrop:  make([]uint64, n),
		SpanDrop: make([]uint64, n),
	}
	var jobs []func()
	for i, pol := range policies {
		i, pol := i, pol
		jobs = append(jobs, func() { anatomyJob(res, i, pol, ops) })
	}
	runJobs(jobs)
	return res
}

// anatomyJob is kvSweepJob with the recorder on: same deployment, same
// reclaim waves, a different seed, and a server-tier tracer created
// unconditionally. All fault lifecycle events land on the server partition
// in every engine mode, which is what keeps the extraction identical.
func anatomyJob(res *AnatomyResult, i int, pol kv.RegPolicy, ops int) {
	fcfg := fabric.DefaultEthernet()
	cfg := kv.Config{
		ServerHosts: 3, ClientHosts: 1, Shards: 4, Replicas: 2,
		Reg: pol, ExpectedKeys: 1024,
	}
	var (
		eng *sim.Engine
		g   *sim.Group
		net *fabric.Network
		tr  *trace.Tracer
	)
	if Engines >= 1 {
		g = newBenchGroup(47, 2, fcfg.Lookahead())
		eng = g.Engine(0)
		tr = trace.New(eng)
		// The client tier records on its own partition's clock; its spans
		// never enter the anatomy (faults are a server-tier phenomenon).
		cfg.ClientTracer = trace.New(g.Engine(1))
		net = fabric.NewOnGroup(g, fcfg)
	} else {
		eng = newBenchEngine(47)
		tr = trace.New(eng)
		net = fabric.New(eng, fcfg)
	}
	svc := kv.New(eng, net, tr, cfg)
	for _, h := range svc.Hosts {
		h.M.Swap.ReadLatency = 200 * sim.Microsecond
	}
	groups := svc.Groups()
	for w := 0; w < kvWaves; w++ {
		at := kvWaveStart + sim.Time(w)*kvWavePeriod
		eng.At(at, func() {
			for _, g := range groups {
				g.SetLimit(kvWaveFloor)
			}
		})
		eng.At(at+kvWaveHold, func() {
			for _, g := range groups {
				g.SetLimit(0)
			}
		})
	}
	wl := svc.NewWorkload(kv.WorkloadConfig{
		TargetOps: ops, Keys: 1024, ZipfS: 1.1, GetRatio: 0.9,
		Prepopulate: true, FrontCacheEntries: 32,
	})
	wl.OnDone = func() {
		svc.ClientEngine().After(300*sim.Millisecond, func() { svc.Stop() })
	}
	wl.Start()
	if g != nil {
		g.RunUntil(120 * sim.Second)
	} else {
		eng.RunUntil(120 * sim.Second)
	}

	recs := tr.FaultRecords()
	res.Stages[i] = trace.FaultStageBreakdown(recs)
	res.Paths[i] = trace.FaultPathCounts(recs)
	res.Crit[i] = trace.CriticalPath(recs, 99)
	res.Faults[i] = len(recs)
	res.Pending[i] = tr.PendingFaults()
	res.NPFs[i] = svc.NPFs()
	res.EvDrop[i] = tr.DroppedFaultEvents()
	res.RecDrop[i] = tr.DroppedFaultRecords()
	res.SpanDrop[i] = tr.DroppedSpans()
}

// Rows flattens the result into the fault_anatomy artifact section.
func (r *AnatomyResult) Rows() []AnatomyRow {
	rows := make([]AnatomyRow, len(r.Policies))
	for i, pol := range r.Policies {
		row := AnatomyRow{
			Policy: pol.String(), Faults: r.Faults[i], Pending: r.Pending[i],
			NPFs:      r.NPFs[i],
			CritStage: "-", CritLayer: "-", CritHost: -1,
			DroppedEvents: r.EvDrop[i], DroppedRecords: r.RecDrop[i],
			DroppedSpans: r.SpanDrop[i],
		}
		if tot := r.Stages[i]["total"]; tot != nil && tot.Count() > 0 {
			row.TotalP50Us = tot.Percentile(50)
			row.TotalP99Us = tot.Percentile(99)
		}
		if c := r.Crit[i]; c != nil && len(c.Stages) > 0 {
			row.CritStage = c.Stages[0].Stage
			row.CritLayer = c.Stages[0].Layer
			row.CritHost = c.Stages[0].Host
			row.CritShare = c.Stages[0].MeanShare
		}
		rows[i] = row
	}
	return rows
}

// Render prints the per-policy anatomy tables and critical paths. No wall
// clock, no map order: the output is byte-identical for any -parallel and
// -engines budget (the acceptance bar npftrace anatomy is gated on).
func (r *AnatomyResult) Render() string {
	var b strings.Builder
	b.WriteString("Fault anatomy: causal NPF lifecycle per registration policy\n")
	fmt.Fprintf(&b, "(3 servers x 4 shards x 2 replicas; %d reclaim waves to %d KB per group)\n",
		kvWaves, kvWaveFloor>>10)
	for i, pol := range r.Policies {
		fmt.Fprintf(&b, "\n== policy %s ==\n", pol)
		fmt.Fprintf(&b, "faults %d completed, %d pending; driver NPFs %d\n",
			r.Faults[i], r.Pending[i], r.NPFs[i])
		if len(r.Paths[i]) > 0 {
			b.WriteString("paths:")
			for _, p := range r.Paths[i] {
				fmt.Fprintf(&b, " %s:%d", p.Name, p.N)
			}
			b.WriteString("\n")
		}
		if r.EvDrop[i]+r.RecDrop[i]+r.SpanDrop[i] > 0 {
			fmt.Fprintf(&b, "dropped: %d flight events, %d records, %d spans\n",
				r.EvDrop[i], r.RecDrop[i], r.SpanDrop[i])
		}
		if r.Faults[i] == 0 {
			b.WriteString("(no faults: nothing to dissect)\n")
			continue
		}
		trace.WriteStageTable(&b, r.Stages[i])
		r.Crit[i].Write(&b)
	}
	return b.String()
}

// RenderCritPath prints only the per-policy critical paths (npftrace
// critpath).
func (r *AnatomyResult) RenderCritPath() string {
	var b strings.Builder
	b.WriteString("Critical path of tail faults per registration policy\n")
	for i, pol := range r.Policies {
		fmt.Fprintf(&b, "\n== policy %s ==\n", pol)
		if r.Crit[i] == nil {
			b.WriteString("(no faults: nothing to dissect)\n")
			continue
		}
		r.Crit[i].Write(&b)
	}
	return b.String()
}
