package bench

import (
	"runtime"
	"sync"
	"sync/atomic"

	"npf/internal/sim"
)

// Workers is the fan-out for RunParallel when an experiment does not pass an
// explicit count: the number of goroutines the figure/ablation sweeps spread
// their independent sub-runs across. 1 (the default) runs everything
// serially on the calling goroutine; cmd/npfbench sets it from -parallel.
//
// Parallelism never changes results: every job owns a private sim.Engine
// (seed-isolated by construction), jobs write only their own result slots,
// and all cross-job merging happens after the pool drains, in job order. So
// output is byte-identical for any Workers value.
var Workers = 1

// DefaultWorkers reports the worker count for "use all cores": GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// RunParallel executes every job, fanning them across min(workers, len(jobs))
// goroutines. Jobs must be independent: each builds its own engines and
// writes only to result slots no other job touches. RunParallel returns only
// after every job has finished, so callers may read all slots (and merge
// them in job order) immediately after it returns.
func RunParallel(workers int, jobs []func()) {
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, job := range jobs {
			job()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				jobs[i]()
			}
		}()
	}
	wg.Wait()
}

// runJobs is the sweep-internal shorthand: fan jobs across the global
// Workers setting.
func runJobs(jobs []func()) { RunParallel(Workers, jobs) }

// ---------------------------------------------------------------------------
// Engine statistics registry. cmd/npfbench -json uses it to report how many
// engines an experiment built and how many events they executed, without
// threading a collector through every Run function.

var engineReg struct {
	mu      sync.Mutex
	enabled bool
	engines []*sim.Engine
}

// StartEngineStats begins collecting every engine built through the bench
// package's constructors.
func StartEngineStats() {
	engineReg.mu.Lock()
	engineReg.enabled = true
	engineReg.engines = nil
	engineReg.mu.Unlock()
}

// StopEngineStats ends collection and reports the engines registered since
// StartEngineStats and the total events they executed. Call it only after
// the experiment's Run function has returned: RunParallel's barrier makes
// every engine's counters safe to read then.
func StopEngineStats() (engines int, events uint64) {
	engineReg.mu.Lock()
	defer engineReg.mu.Unlock()
	for _, e := range engineReg.engines {
		events += e.Executed()
	}
	engines = len(engineReg.engines)
	engineReg.enabled = false
	engineReg.engines = nil
	return engines, events
}

func registerEngine(eng *sim.Engine) {
	engineReg.mu.Lock()
	if engineReg.enabled {
		engineReg.engines = append(engineReg.engines, eng)
	}
	engineReg.mu.Unlock()
}

// newBenchEngine is the constructor every experiment engine goes through:
// it applies the runaway-event guard and registers the engine for -json
// statistics. Env constructors layer the trace factory on top.
func newBenchEngine(seed int64) *sim.Engine {
	eng := sim.NewEngine(seed)
	eng.MaxEvents = MaxEngineEvents
	registerEngine(eng)
	return eng
}
