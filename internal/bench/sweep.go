package bench

import (
	"runtime"
	"sync"
	"sync/atomic"

	"npf/internal/sim"
)

// Workers is the fan-out for RunParallel when an experiment does not pass an
// explicit count: the number of goroutines the figure/ablation sweeps spread
// their independent sub-runs across. 1 (the default) runs everything
// serially on the calling goroutine; cmd/npfbench sets it from -parallel.
//
// Parallelism never changes results: every job owns a private sim.Engine
// (seed-isolated by construction), jobs write only their own result slots,
// and all cross-job merging happens after the pool drains, in job order. So
// output is byte-identical for any Workers value.
var Workers = 1

// Engines selects the engine topology the env constructors build. 0 (the
// default) is the historical single-engine mode: one sim.Engine carries
// every host of an env. Any value >= 1 switches the constructors to
// partitioned PDES mode — each env becomes a sim.Group with one engine
// per host side, synchronized conservatively through the fabric's
// propagation-latency lookahead — and is the TOTAL worker-thread budget
// for a sweep: runJobs fans jobs across min(len(jobs), Engines)
// goroutines and gives each env's group the remaining budget,
// max(1, Engines/workers) threads (capped at GOMAXPROCS — see
// pdesThreads). The partition structure is fixed by the env shape, never
// by the thread budget, so results are byte-identical for every
// Engines >= 1; only wall-clock changes. cmd/npfbench sets it from
// -engines.
var Engines = 0

// envThreads is the per-env thread allotment while a PDES runJobs pool
// drains. Written single-threadedly before the pool spawns, read by jobs
// through pdesThreads, reset after the pool joins.
var envThreads int

// pdesThreads reports the worker-thread budget the next env group gets.
// The allotment is capped at the host's GOMAXPROCS: a group granted more
// threads than the scheduler has processors just ping-pongs goroutines
// through the conservative-sync windows (strictly slower than sweeping
// the partitions on one thread). Results are identical either way — the
// cap, like every thread setting, only changes wall-clock.
func pdesThreads() int {
	t := envThreads
	if t <= 0 {
		t = 1
		if Engines > 1 {
			t = Engines
		}
	}
	if c := runtime.GOMAXPROCS(0); t > c {
		t = c
	}
	return t
}

// DefaultWorkers reports the worker count for "use all cores": GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// RunParallel executes every job, fanning them across min(workers, len(jobs))
// goroutines. Jobs must be independent: each builds its own engines and
// writes only to result slots no other job touches. RunParallel returns only
// after every job has finished, so callers may read all slots (and merge
// them in job order) immediately after it returns.
func RunParallel(workers int, jobs []func()) {
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, job := range jobs {
			job()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				jobs[i]()
			}
		}()
	}
	wg.Wait()
}

// runJobs is the sweep-internal shorthand. In single-engine mode it fans
// jobs across the global Workers setting. In PDES mode (Engines >= 1) the
// engine budget drives the fan-out instead: min(len(jobs), Engines) job
// goroutines, with the leftover budget handed to each job's env group as
// intra-env worker threads.
func runJobs(jobs []func()) {
	if Engines >= 1 {
		workers := Engines
		if workers > len(jobs) {
			workers = len(jobs)
		}
		envThreads = Engines / workers
		if envThreads < 1 {
			envThreads = 1
		}
		RunParallel(workers, jobs)
		envThreads = 0
		return
	}
	RunParallel(Workers, jobs)
}

// ---------------------------------------------------------------------------
// Engine statistics registry. cmd/npfbench -json uses it to report how many
// engines an experiment built and how many events they executed, without
// threading a collector through every Run function.

var engineReg struct {
	mu      sync.Mutex
	enabled bool
	engines []*sim.Engine
	groups  []*sim.Group
}

// StartEngineStats begins collecting every engine built through the bench
// package's constructors.
func StartEngineStats() {
	engineReg.mu.Lock()
	engineReg.enabled = true
	engineReg.engines = nil
	engineReg.groups = nil
	engineReg.mu.Unlock()
}

// StopEngineStats ends collection and reports the engines registered since
// StartEngineStats and the total events they executed. Call it only after
// the experiment's Run function has returned: RunParallel's barrier makes
// every engine's counters safe to read then.
func StopEngineStats() (engines int, events uint64) {
	engineReg.mu.Lock()
	defer engineReg.mu.Unlock()
	for _, e := range engineReg.engines {
		events += e.Executed()
	}
	engines = len(engineReg.engines)
	for _, g := range engineReg.groups {
		// Group.Executed folds in cross-partition mail injections, which
		// are not engine events, so the total is stable across thread
		// budgets.
		events += g.Executed()
		engines += g.Parts()
	}
	engineReg.enabled = false
	engineReg.engines = nil
	engineReg.groups = nil
	return engines, events
}

func registerEngine(eng *sim.Engine) {
	engineReg.mu.Lock()
	if engineReg.enabled {
		engineReg.engines = append(engineReg.engines, eng)
	}
	engineReg.mu.Unlock()
}

func registerGroup(g *sim.Group) {
	engineReg.mu.Lock()
	if engineReg.enabled {
		engineReg.groups = append(engineReg.groups, g)
	}
	engineReg.mu.Unlock()
}

// newBenchEngine is the constructor every experiment engine goes through:
// it applies the runaway-event guard and registers the engine for -json
// statistics. Env constructors layer the trace factory on top.
func newBenchEngine(seed int64) *sim.Engine {
	eng := sim.NewEngine(seed)
	eng.MaxEvents = MaxEngineEvents
	registerEngine(eng)
	return eng
}

// newBenchGroup is newBenchEngine's PDES counterpart: a conservative-sync
// group of `parts` engines with the runaway guard applied per engine, the
// current thread budget installed, and the whole group registered once
// for -json statistics.
func newBenchGroup(seed int64, parts int, lookahead sim.Time) *sim.Group {
	g := sim.NewGroup(seed, parts, lookahead)
	for _, e := range g.Engines() {
		e.MaxEvents = MaxEngineEvents
	}
	g.SetThreads(pdesThreads())
	registerGroup(g)
	return g
}
