package bench

import (
	"fmt"
	"strings"

	"npf/internal/fabric"
	"npf/internal/topo"
	"npf/internal/workload"
)

// ScaleoutResult is the million-user cluster sweep: one fleet per transport
// (Ethernet rings, IB UD datagrams), each instantiating O(10^3) hosts and
// O(10^5) logical clients on one deterministic simulation, with the three
// registration policies split across tenants so policy shows up as
// fleet-wide tail latency. One row per transport.
type ScaleoutResult struct {
	Quick   bool
	Results []topo.Result // indexed like scaleoutTransports
}

// scaleoutTransports fixes the sweep order (and the result row order).
var scaleoutTransports = []topo.Transport{topo.TransportEth, topo.TransportUD}

// scaleoutParts is the sweep's partition count. It is fixed by the fleet
// shape — racks deal onto partitions via topo.Topology.Partition — and
// never by the -engines budget, so the Result (fingerprint included) is
// byte-identical for every Engines and Workers value; budgets only move
// wall-clock. Engines == 0 runs the same 8-partition group on one thread.
const scaleoutParts = 8

// scaleoutSeed seeds both fleets. Each transport's job builds a private
// group from it, so jobs are seed-isolated and order-independent.
const scaleoutSeed = 42

// ScaleoutConfig is the canonical fleet: 1,008 hosts (64 servers + 944
// swarm hosts) and 101,000 logical clients split over the three-policy
// tenant spectrum, 202,000 ops against a 64Ki key space, with three
// fleet-wide reclaim waves squeezing every tenant group. quick shrinks it
// to a 64-host/3,600-client smoke with the same shape.
func ScaleoutConfig(tr topo.Transport, quick bool) topo.SweepConfig {
	cfg := topo.SweepConfig{
		Servers:    64,
		SwarmHosts: 944,
		Transport:  tr,
		Tenants: []topo.TenantSpec{
			{Workload: workload.Config{Tenant: "odp", Clients: 34000, TargetOps: 68000, Keys: 65536, Prepopulate: true}, Reg: topo.RegODP},
			{Workload: workload.Config{Tenant: "pindown", Clients: 34000, TargetOps: 68000, Keys: 65536, Prepopulate: true}, Reg: topo.RegPinDown},
			{Workload: workload.Config{Tenant: "pinned", Clients: 33000, TargetOps: 66000, Keys: 65536, Prepopulate: true}, Reg: topo.RegPinned},
		},
		ReclaimWaves: 3,
	}
	if quick {
		cfg.Servers, cfg.SwarmHosts = 8, 56
		cfg.ReclaimWaves = 2
		for i := range cfg.Tenants {
			cfg.Tenants[i].Workload.Clients = 1200
			cfg.Tenants[i].Workload.TargetOps = 2400
			cfg.Tenants[i].Workload.Keys = 4096
		}
	}
	return cfg
}

// RunScaleout runs the sweep on both transports, each an independent
// seed-isolated job through the sweep runner.
func RunScaleout(quick bool) *ScaleoutResult {
	res := &ScaleoutResult{Quick: quick, Results: make([]topo.Result, len(scaleoutTransports))}
	var jobs []func()
	for i, tr := range scaleoutTransports {
		i, tr := i, tr
		jobs = append(jobs, func() { scaleoutJob(res, i, tr, quick) })
	}
	runJobs(jobs)
	return res
}

// scaleoutJob builds one transport's fleet on a fixed-partition group and
// runs it to quiescence. Unlike the figure envs there is no single-engine
// fallback: the group is the topology, so -engines 0, 1, and 8 all execute
// the identical partition structure.
func scaleoutJob(res *ScaleoutResult, i int, tr topo.Transport, quick bool) {
	fcfg := fabric.DefaultEthernet()
	if tr == topo.TransportUD {
		fcfg = fabric.DefaultInfiniBand()
	}
	g := newBenchGroup(scaleoutSeed, scaleoutParts, fcfg.Lookahead())
	net := fabric.NewOnGroup(g, fcfg)
	s, err := topo.New(g.Engine(0), net, ScaleoutConfig(tr, quick))
	if err != nil {
		panic("bench: scaleout config: " + err.Error())
	}
	s.Run()
	res.Results[i] = s.Result()
}

// Render prints the fleet table plus the per-tenant policy spectrum.
func (r *ScaleoutResult) Render() string {
	var b strings.Builder
	b.WriteString("Cluster sweep: registration policy as fleet-wide tail latency\n")
	cfg := ScaleoutConfig(topo.TransportEth, r.Quick)
	total := 0
	for _, t := range cfg.Tenants {
		total += t.Workload.Clients
	}
	fmt.Fprintf(&b, "(%d hosts = %d servers + %d swarm; %d logical clients; %d reclaim waves)\n\n",
		cfg.Servers+cfg.SwarmHosts, cfg.Servers, cfg.SwarmHosts, total, cfg.ReclaimWaves)
	var rows [][]string
	for _, res := range r.Results {
		rows = append(rows, []string{
			res.Transport,
			fmt.Sprintf("%d", res.Hosts),
			fmt.Sprintf("%d", res.Clients),
			fmt.Sprintf("%d", res.Ops),
			fmt.Sprintf("%d", res.NPFs),
			fmt.Sprintf("%d", res.Evictions),
			fmt.Sprintf("%d", res.DropsFault),
			fmt.Sprintf("%d", res.BytesPerHost),
			fmt.Sprintf("%016x", res.Fingerprint),
		})
	}
	b.WriteString(table(
		[]string{"transport", "hosts", "clients", "ops", "npfs", "evictions", "drops", "bytes/host", "fingerprint"},
		rows))
	b.WriteString("\n")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%s tenants:\n", res.Transport)
		var trows [][]string
		for _, tn := range res.Tenants {
			trows = append(trows, []string{
				tn.Tenant,
				tn.Reg,
				fmt.Sprintf("%d", tn.Clients),
				fmt.Sprintf("%d", tn.Ops),
				fmt.Sprintf("%d", tn.Timeouts),
				fmt.Sprintf("%d", tn.Lost),
				fmt.Sprintf("%.0f", tn.P50us),
				fmt.Sprintf("%.0f", tn.P99us),
				fmt.Sprintf("%.0f", tn.P999us),
			})
		}
		b.WriteString(table(
			[]string{"tenant", "reg", "clients", "ops", "timeouts", "lost", "p50us", "p99us", "p999us"},
			trows))
		b.WriteString("\n")
	}
	b.WriteString("(same fleet, same load: the pinned tenant's tail is flat while the ODP\n")
	b.WriteString("tenant absorbs reclaim waves as page faults; bytes/host is the modelled\n")
	b.WriteString("per-host state — the cheap-per-host gate that makes 10^3 hosts fit)\n")
	return b.String()
}
