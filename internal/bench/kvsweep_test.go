package bench

import (
	"strings"
	"testing"

	"npf/internal/kv"
)

// TestRunKVQuick runs the quick sweep once and sanity-checks the ablation's
// shape: every policy completes the workload, the reclaim waves actually
// evict on reclaimable arenas, and pinned arenas are untouched by them.
func TestRunKVQuick(t *testing.T) {
	r := RunKV(true)
	for i, pol := range r.Policies {
		if r.Ops[i] != 1200 {
			t.Errorf("%s: completed %d of 1200 ops", pol, r.Ops[i])
		}
		if r.P99Us[i] <= 0 {
			t.Errorf("%s: empty latency histogram", pol)
		}
		if r.Failover[i] != 0 {
			t.Errorf("%s: %d spurious failovers in a fault-free sweep", pol, r.Failover[i])
		}
	}
	odp := 0
	if r.Evicts[odp] == 0 {
		t.Error("odp: reclaim waves evicted nothing")
	}
	pinned := len(r.Policies) - 1
	if r.Policies[pinned] != kv.RegPinned {
		t.Fatalf("row order changed: last policy is %s", r.Policies[pinned])
	}
	if r.Evicts[pinned] != 0 {
		t.Errorf("pinned: %d evictions from a fully pinned arena", r.Evicts[pinned])
	}
	if !strings.Contains(r.Render(), "registration") {
		t.Error("Render lost its header")
	}
}

// TestRunParallelKVDeterminism extends the sweep runner's byte-identity
// promise to the KV ablation: three whole cluster deployments fanned across
// workers must render identically to the serial run.
func TestRunParallelKVDeterminism(t *testing.T) {
	var serial, fanned string
	withWorkers(1, func() { serial = RunKV(true).Render() })
	withWorkers(8, func() { fanned = RunKV(true).Render() })
	if serial != fanned {
		t.Fatalf("kv output depends on Workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, fanned)
	}
}
