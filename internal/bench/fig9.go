package bench

import (
	"fmt"
	"strings"

	"npf/internal/apps"
	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/mem"
	"npf/internal/rc"
	"npf/internal/sim"
)

// mkMPIHosts returns a host factory on a shared fabric: one machine, HCA,
// and ODP driver per rank (the paper's eight DL380p nodes).
func mkMPIHosts(eng *sim.Engine, net *fabric.Network) func(int) (*mem.AddressSpace, *rc.HCA, *core.Driver) {
	cfg := rc.DefaultConfig()
	cfg.FirmwareJitterSigma = 0
	cfg.MTU = 16 << 10 // jumbo MTU keeps event counts tractable
	return func(rank int) (*mem.AddressSpace, *rc.HCA, *core.Driver) {
		m := mem.NewMachine(eng, 128<<30)
		drv := core.NewDriver(eng, core.DefaultConfig())
		hca := rc.NewHCA(eng, net, cfg)
		drv.AttachHCA(hca)
		as := m.NewAddressSpace(fmt.Sprintf("rank%d", rank), nil)
		return as, hca, drv
	}
}

var fig9Modes = []apps.RegMode{apps.RegCopy, apps.RegPin, apps.RegODP}

// runIMB runs one IMB-style benchmark and returns the measured elapsed
// virtual time. Like IMB, a warm-up pass runs untimed first (the paper's
// registration caches and ODP mappings are warm in steady state).
func runIMB(kind string, mode apps.RegMode, ranks, msgSize, iters int) sim.Time {
	eng := newBenchEngine(19)
	net := fabric.New(eng, fabric.DefaultInfiniBand())
	job := apps.NewMPIJob(eng, mkMPIHosts(eng, net), apps.MPIConfig{
		Ranks: ranks, Mode: mode,
		OffCacheBuffers: 16, // IMB "off_cache": defeat registration reuse
		PinCacheBytes:   512 << 20,
	})
	run := func(n int, done func(sim.Time)) {
		switch kind {
		case "sendrecv":
			job.RunSendRecv(msgSize, n, done)
		case "bcast":
			job.RunBcast(msgSize, n, done)
		case "alltoall":
			job.RunAlltoall(msgSize, n, done)
		}
	}
	var elapsed sim.Time
	// A full pass over the off-cache buffer rotation, even for patterns
	// that consume only one buffer per rank per iteration (bcast leaves).
	warmup := 16
	run(warmup, func(sim.Time) {
		run(iters, func(e sim.Time) { elapsed = e })
	})
	eng.Run()
	return elapsed
}

// Fig9Result holds IMB runtimes (seconds) per benchmark, message size, and
// mode.
type Fig9Result struct {
	Benchmarks []string
	SizesKB    []int
	// Seconds[bench][mode][sizeIdx]
	Seconds map[string]map[string][]float64
}

// RunFig9 reproduces Figure 9: IMB sendrecv/bcast/alltoall runtime vs
// message size for copy, pin-down cache, and NPF.
func RunFig9(ranks, iters int) *Fig9Result {
	res := &Fig9Result{
		Benchmarks: []string{"sendrecv", "bcast", "alltoall"},
		SizesKB:    []int{16, 32, 64, 128},
		Seconds:    make(map[string]map[string][]float64),
	}
	// One job per (benchmark, mode, size) IMB run, each on a private engine.
	var jobs []func()
	for _, bench := range res.Benchmarks {
		bench := bench
		res.Seconds[bench] = make(map[string][]float64)
		for _, mode := range fig9Modes {
			mode := mode
			col := make([]float64, len(res.SizesKB))
			res.Seconds[bench][mode.String()] = col
			for ki, kb := range res.SizesKB {
				ki, kb := ki, kb
				jobs = append(jobs, func() {
					col[ki] = runIMB(bench, mode, ranks, kb<<10, iters).Seconds()
				})
			}
		}
	}
	runJobs(jobs)
	return res
}

// Render prints runtimes with the copy/pin ratio labels the paper annotates.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: IMB runtime [s] vs message size (off_cache mode)\n")
	for _, bench := range r.Benchmarks {
		fmt.Fprintf(&b, "%s:\n", bench)
		var rows [][]string
		for i, kb := range r.SizesKB {
			cp := r.Seconds[bench]["copy"][i]
			pin := r.Seconds[bench]["pin"][i]
			npf := r.Seconds[bench]["npf"][i]
			rows = append(rows, []string{
				fmt.Sprintf("%dKB", kb),
				fmt.Sprintf("%.4f", cp),
				fmt.Sprintf("%.4f", pin),
				fmt.Sprintf("%.4f", npf),
				fmt.Sprintf("%.2fx", cp/pin),
				fmt.Sprintf("%.2f", npf/pin),
			})
		}
		b.WriteString(table([]string{"msg", "copy", "pin", "npf", "copy/pin", "npf/pin"}, rows))
	}
	b.WriteString("paper shape: copy/pin grows with message size (sendrecv 1.1→2.1x,\n")
	b.WriteString("alltoall 1.2→2.2x); npf tracks the pin-down cache (npf/pin ≈ 1)\n")
	return b.String()
}

// Table6Result holds the beff-style aggregate bandwidth per mode.
type Table6Result struct {
	MBps map[string]float64
}

// RunTable6 reproduces Table 6: a beff-style mixed sweep (several message
// sizes and patterns) reporting accumulated bandwidth.
func RunTable6(ranks int) *Table6Result {
	res := &Table6Result{MBps: make(map[string]float64)}
	sizes := []int{64 << 10, 256 << 10, 1 << 20}
	iters := 30
	for _, mode := range fig9Modes {
		eng := newBenchEngine(23)
		net := fabric.New(eng, fabric.DefaultInfiniBand())
		job := apps.NewMPIJob(eng, mkMPIHosts(eng, net), apps.MPIConfig{
			Ranks: ranks, Mode: mode, OffCacheBuffers: 16, PinCacheBytes: 512 << 20,
		})
		totalBytes := int64(0)
		var measureStart, elapsed sim.Time
		// Sequence: for each size run sendrecv then alltoall; the whole
		// sweep runs twice and only the second (warm) pass is measured.
		type phase struct {
			kind string
			size int
		}
		var phases []phase
		for pass := 0; pass < 2; pass++ {
			for _, sz := range sizes {
				phases = append(phases, phase{"sendrecv", sz}, phase{"alltoall", sz})
			}
		}
		half := len(phases) / 2
		idx := 0
		var runNext func()
		runNext = func() {
			if idx == half {
				measureStart = eng.Now()
			}
			if idx >= len(phases) {
				elapsed = eng.Now() - measureStart
				return
			}
			p := phases[idx]
			idx++
			measured := idx > half
			switch p.kind {
			case "sendrecv":
				if measured {
					totalBytes += int64(p.size) * int64(ranks) * int64(iters)
				}
				job.RunSendRecv(p.size, iters, func(sim.Time) { runNext() })
			case "alltoall":
				if measured {
					totalBytes += int64(p.size) * int64(ranks) * int64(ranks-1) * int64(iters)
				}
				job.RunAlltoall(p.size, iters, func(sim.Time) { runNext() })
			}
		}
		runNext()
		eng.Run()
		res.MBps[mode.String()] = float64(totalBytes) / elapsed.Seconds() / 1e6
	}
	return res
}

// Render prints Table 6.
func (r *Table6Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 6: beff-style accumulated bandwidth [MB/s]\n")
	rows := [][]string{{
		fmt.Sprintf("%.0f", r.MBps["pin"]),
		fmt.Sprintf("%.0f", r.MBps["npf"]),
		fmt.Sprintf("%.0f", r.MBps["copy"]),
	}}
	b.WriteString(table([]string{"pinning", "NPF", "copying"}, rows))
	b.WriteString("paper: 16410 / 16440 / 8020 — pin ≈ NPF ≈ 2x copy\n")
	return b.String()
}
