package bench

import (
	"fmt"
	"strings"

	"npf/internal/apps"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/sim"
)

// Figure 7 runs at 1/16 of the paper's memory scale: 1 GB shared budget →
// 64 MB (+ slop for ring buffers), 100↔900 MB working sets → 6.25↔56.25 MB,
// 20 KB items → 16 KB.
const (
	// fig7Service is heavier than the Figure 4 server so the 60-second
	// runs stay tractable; hits/s are scaled accordingly.
	fig7Service   = 150 * sim.Microsecond
	fig7Cgroup    = 72 << 20
	fig7ItemSize  = 16 << 10
	fig7SmallKeys = 400  // ≈ 6.25 MB
	fig7BigKeys   = 3600 // ≈ 56.25 MB
	fig7Flip      = 20 * sim.Second
	fig7End       = 60 * sim.Second
	fig7VMBytes   = 160 << 20 // NPF VMs' virtual size (overcommitted)
	fig7PinBytes  = 36 << 20  // pinned VMs: half the physical budget each
	fig7PinCap    = 30 << 20  // memcached -m within the pinned VM
)

// Fig7Result holds per-instance and combined hits/s series for both modes.
type Fig7Result struct {
	// Series[mode][instance] is (seconds, KHPS) points; instance 0 grows
	// 100→900, instance 1 shrinks 900→100.
	Series map[string][2][][2]float64
}

// RunFig7 reproduces Figure 7: two memcached instances whose working sets
// flip at t=20s (paper: t=50s), under NPF (shared physical budget, demand
// paged) vs pinning (static 50/50 split).
func RunFig7() *Fig7Result {
	res := &Fig7Result{Series: make(map[string][2][][2]float64)}
	modes := []string{"npf", "pin"}
	pairs := make([][2][][2]float64, len(modes))
	jobs := make([]func(), len(modes))
	for mi, mode := range modes {
		mi, mode := mi, mode
		jobs[mi] = func() { pairs[mi] = runFig7Mode(mode) }
	}
	runJobs(jobs)
	for mi, mode := range modes {
		res.Series[mode] = pairs[mi]
	}
	return res
}

// runFig7Mode runs one configuration (shared-budget NPF or static pinning)
// on a private engine and returns the two instances' hit-rate series.
func runFig7Mode(mode string) [2][][2]float64 {
	e := NewEthEnv(EthOpts{Seed: 17, ServerRAM: 1 << 30, Policy: nic.PolicyBackup, RingSize: 64})
	var cgroup *mem.Group
	if mode == "npf" {
		// One shared budget: memory moves to whoever needs it.
		cgroup = mem.NewGroup("shared", fig7Cgroup)
	}
	var slaps [2]*apps.Memaslap
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("inst%d", i)
		var srv *EthHost
		var err error
		var capacity int64
		if mode == "npf" {
			srv, err = e.AddServerInstance(name, nic.PolicyBackup, 64, cgroup, fig7VMBytes)
			capacity = 0 // bounded by the arena/cgroup, not memcached
		} else {
			srv, err = e.AddServerInstance(name, nic.PolicyPinned, 64, nil, fig7PinBytes)
			capacity = fig7PinCap
		}
		if err != nil {
			panic(err)
		}
		store := apps.NewKVStore(srv.AS, capacity)
		if mode == "npf" {
			store.SetArena(0, fig7VMBytes)
		} else {
			store.SetArena(0, fig7PinBytes-2<<20)
		}
		apps.NewKVServer(srv.Stack, store, fig7Service)
		cli := e.AddClientInstance("cli" + name)
		startKeys := fig7SmallKeys
		if i == 1 {
			startKeys = fig7BigKeys
		}
		slap := apps.NewMemaslap(cli.Stack, apps.MemaslapConfig{
			Conns: 2, GetRatio: 0.9, ValueSize: fig7ItemSize, Keys: startKeys,
			KeyPrefix: name, Prepopulate: true,
		}, sim.Second)
		slap.Start(srv.Chan.Dev.Node, srv.Chan.Flow)
		slaps[i] = slap
	}
	// The flip: instance 0 grows ×9, instance 1 shrinks ×9. The slaps are
	// client-side state, so the flip event runs on the client engine.
	e.ClientEng.At(fig7Flip, func() {
		slaps[0].SetWorkingSet(fig7BigKeys)
		slaps[1].SetWorkingSet(fig7SmallKeys)
	})
	e.RunUntil(fig7End)
	var pair [2][][2]float64
	for i, s := range slaps {
		times, rates := s.HitsTS.RatePoints()
		pts := make([][2]float64, len(times))
		for j := range times {
			pts[j] = [2]float64{times[j], rates[j] / 1000}
		}
		pair[i] = pts
	}
	return pair
}

// Render prints the per-instance and combined series.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: hits/s [KHPS, scaled] with working sets flipping at t=20s\n")
	b.WriteString("(paper flips at t=50s; sizes scaled 1/16)\n")
	for _, mode := range []string{"npf", "pin"} {
		pair := r.Series[mode]
		fmt.Fprintf(&b, "(%s)  t[s]  grow(100->900)  shrink(900->100)  combined\n", mode)
		n := len(pair[0])
		if len(pair[1]) < n {
			n = len(pair[1])
		}
		for i := 0; i < n; i++ {
			c := pair[0][i][1] + pair[1][i][1]
			fmt.Fprintf(&b, "  %4.0f  %8.2f  %8.2f  %8.2f\n",
				pair[0][i][0], pair[0][i][1], pair[1][i][1], c)
		}
	}
	b.WriteString("paper shape: with NPF both instances converge to equal full-rate service\n")
	b.WriteString("after the flip; with pinning the 900MB-working-set instance always\n")
	b.WriteString("suffers (its static 500MB cannot hold it), so combined NPF > pin\n")
	return b.String()
}
