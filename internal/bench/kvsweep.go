package bench

import (
	"fmt"
	"strings"

	"npf/internal/fabric"
	"npf/internal/kv"
	"npf/internal/sim"
	"npf/internal/trace"
)

// KVResult is the distributed-KV registration ablation: the same deployment
// and the same Zipf-skewed workload run under each registration policy while
// periodic reclaim waves squeeze the per-shard cgroups. ODP arenas bend
// (evictions, refaults, NPFs on the rings) and recover; the pin-down cache
// pays churn on its capacity edge; full pinning is immune to reclaim but
// holds every byte forever. One row per policy.
type KVResult struct {
	Policies []kv.RegPolicy
	Ops      []int
	P50Us    []float64
	P99Us    []float64
	P999Us   []float64
	NPFs     []uint64
	Evicts   []uint64 // cgroup evictions across shard groups
	Majors   []uint64 // host major faults (refault cost of the squeezes)
	Shed     []uint64 // sets shed at arena exhaustion
	Failover []uint64 // spurious failovers (should stay 0: no link faults)
}

// kvSweepWaves is the reclaim schedule every job shares: squeeze all shard
// groups to the floor, hold, release. The floor is far below a shard's
// working set, so each wave forces real evictions on reclaimable arenas.
const (
	kvWaves      = 4
	kvWaveStart  = 5 * sim.Millisecond
	kvWavePeriod = 15 * sim.Millisecond
	kvWaveHold   = 5 * sim.Millisecond
	kvWaveFloor  = 64 << 10
)

// RunKV runs the tail-latency ablation. Each policy is an independent,
// seed-isolated job through the sweep runner; each writes only its own row,
// so output is byte-identical for any Workers fan-out.
func RunKV(quick bool) *KVResult {
	ops := 4000
	if quick {
		ops = 1200
	}
	policies := []kv.RegPolicy{kv.RegODP, kv.RegPinDown, kv.RegPinned}
	res := &KVResult{
		Policies: policies,
		Ops:      make([]int, len(policies)),
		P50Us:    make([]float64, len(policies)),
		P99Us:    make([]float64, len(policies)),
		P999Us:   make([]float64, len(policies)),
		NPFs:     make([]uint64, len(policies)),
		Evicts:   make([]uint64, len(policies)),
		Majors:   make([]uint64, len(policies)),
		Shed:     make([]uint64, len(policies)),
		Failover: make([]uint64, len(policies)),
	}
	var jobs []func()
	for i, pol := range policies {
		i, pol := i, pol
		jobs = append(jobs, func() { kvSweepJob(res, i, pol, ops) })
	}
	runJobs(jobs)
	return res
}

// kvSweepJob runs one policy's deployment to completion and fills row i.
// With Engines >= 1 the cluster is partitioned server-tier/client-tier
// across a two-engine PDES group; the partition count is fixed, so results
// are byte-identical for every Engines value.
func kvSweepJob(res *KVResult, i int, pol kv.RegPolicy, ops int) {
	fcfg := fabric.DefaultEthernet()
	cfg := kv.Config{
		ServerHosts: 3, ClientHosts: 1, Shards: 4, Replicas: 2,
		Reg: pol, ExpectedKeys: 1024,
	}
	var (
		eng *sim.Engine
		g   *sim.Group
		tr  *trace.Tracer
		net *fabric.Network
	)
	if Engines >= 1 {
		g = newBenchGroup(43, 2, fcfg.Lookahead())
		eng = g.Engine(0)
		if TraceFactory != nil {
			tr = TraceFactory(eng)
			cfg.ClientTracer = TraceFactory(g.Engine(1))
		}
		net = fabric.NewOnGroup(g, fcfg)
	} else {
		eng, tr = newEnvEngine(43)
		net = fabric.New(eng, fcfg)
	}
	svc := kv.New(eng, net, tr, cfg)
	// NVMe-class swap: the sweep measures reclaim racing the data path in
	// the tail, not disk seek times drowning everything.
	for _, h := range svc.Hosts {
		h.M.Swap.ReadLatency = 200 * sim.Microsecond
	}
	groups := svc.Groups()
	for w := 0; w < kvWaves; w++ {
		at := kvWaveStart + sim.Time(w)*kvWavePeriod
		eng.At(at, func() {
			for _, g := range groups {
				g.SetLimit(kvWaveFloor)
			}
		})
		eng.At(at+kvWaveHold, func() {
			for _, g := range groups {
				g.SetLimit(0)
			}
		})
	}
	wl := svc.NewWorkload(kv.WorkloadConfig{
		TargetOps: ops, Keys: 1024, ZipfS: 1.1, GetRatio: 0.9,
		Prepopulate: true, FrontCacheEntries: 32,
	})
	wl.OnDone = func() {
		// OnDone fires from a client-side event; the delayed Stop must run
		// on the client engine too (it forwards the server side's flag).
		svc.ClientEngine().After(300*sim.Millisecond, func() { svc.Stop() })
	}
	wl.Start()
	if g != nil {
		g.RunUntil(120 * sim.Second)
	} else {
		eng.RunUntil(120 * sim.Second)
	}

	res.Ops[i] = wl.Completed()
	res.P50Us[i] = wl.Lat.Percentile(50)
	res.P99Us[i] = wl.Lat.Percentile(99)
	res.P999Us[i] = wl.Lat.Percentile(99.9)
	res.NPFs[i] = svc.NPFs()
	res.Evicts[i] = svc.GroupEvictions()
	res.Majors[i] = svc.MajorFaults()
	res.Shed[i] = svc.Shed.N
	res.Failover[i] = svc.Failovers.N
}

// Render prints the ablation table.
func (r *KVResult) Render() string {
	var b strings.Builder
	b.WriteString("Distributed KV: registration policy vs tail latency under reclaim\n")
	fmt.Fprintf(&b, "(3 servers x 4 shards x 2 replicas; %d reclaim waves to %d KB per group)\n\n",
		kvWaves, kvWaveFloor>>10)
	rows := make([][]string, len(r.Policies))
	for i, pol := range r.Policies {
		rows[i] = []string{
			pol.String(),
			fmt.Sprintf("%d", r.Ops[i]),
			fmt.Sprintf("%.0f", r.P50Us[i]),
			fmt.Sprintf("%.0f", r.P99Us[i]),
			fmt.Sprintf("%.0f", r.P999Us[i]),
			fmt.Sprintf("%d", r.NPFs[i]),
			fmt.Sprintf("%d", r.Evicts[i]),
			fmt.Sprintf("%d", r.Majors[i]),
			fmt.Sprintf("%d", r.Shed[i]),
		}
	}
	b.WriteString(table(
		[]string{"registration", "ops", "p50us", "p99us", "p999us", "npfs", "evictions", "majflt", "shed"},
		rows))
	b.WriteString("\n(pinned arenas ignore the squeeze: no evictions, no refaults, but the\n")
	b.WriteString("memory is never reclaimable; ODP pays the tail and gives it back)\n")
	return b.String()
}
