package bench

import (
	"testing"

	"npf/internal/sim"
)

// EngineBenchResult summarizes the sim-engine hot-path microbenchmark for
// the machine-readable artifact written by cmd/npfbench -json.
type EngineBenchResult struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// EngineMicrobench runs the same steady-state schedule-and-dispatch loop as
// BenchmarkEngineEventThroughput in internal/sim and returns its figures.
// Steady state must be allocation-free (the engine's free list absorbs all
// event churn); the perf gate in scripts/ci.sh asserts AllocsPerOp == 0.
func EngineMicrobench() EngineBenchResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine(1)
		n := 0
		var step func()
		step = func() {
			n++
			if n < b.N {
				e.After(10, step)
			}
		}
		b.ResetTimer()
		e.After(1, step)
		e.Run()
	})
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	res := EngineBenchResult{
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if ns > 0 {
		res.EventsPerSec = 1e9 / ns
	}
	return res
}
