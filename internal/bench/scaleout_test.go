package bench

import (
	"testing"

	"npf/internal/sim"
	"npf/internal/workload"
)

// TestScaleoutDeterminism is the fleet-scale byte-identity pin: the same
// cluster sweep rendered under engine-thread budgets 1, 2, and 8 — the
// budgets only move wall-clock, never the partition structure — must agree
// to the byte on both transports, fingerprints included. The full run is
// the 1,008-host / 101,000-client fleet; -short (the CI race pass) shrinks
// it to the quick fleet with the same shape.
func TestScaleoutDeterminism(t *testing.T) {
	quick := testing.Short()
	var ref *ScaleoutResult
	outs := map[int]string{}
	for _, n := range []int{1, 2, 8} {
		withEngines(n, func() {
			r := RunScaleout(quick)
			if ref == nil {
				ref = r
			}
			outs[n] = r.Render()
		})
	}
	for _, n := range []int{2, 8} {
		if outs[n] != outs[1] {
			t.Fatalf("sweep output depends on the engine budget:\n--- engines=1 ---\n%s\n--- engines=%d ---\n%s",
				outs[1], n, outs[n])
		}
	}
	wantOps := uint64(202000)
	if quick {
		wantOps = 7200
	}
	for _, res := range ref.Results {
		if res.Ops != wantOps {
			t.Errorf("[%s] completed %d of %d ops", res.Transport, res.Ops, wantOps)
		}
		for _, tn := range res.Tenants {
			if tn.Lost != 0 {
				t.Errorf("[%s] tenant %s lost %d ops", res.Transport, tn.Tenant, tn.Lost)
			}
		}
		if res.BytesPerHost <= 0 || res.BytesPerHost > 1<<20 {
			t.Errorf("[%s] bytes/host = %d, outside the cheap-per-host budget", res.Transport, res.BytesPerHost)
		}
	}
}

// TestScaleoutClientHotPathAllocs gates the per-client steady-state hot
// path at zero allocations: one op draw, one interned key lookup, one
// open-loop arrival draw. At 10^5 logical clients any per-op allocation
// here dominates the heap profile, so this is a hard floor, not a budget.
func TestScaleoutClientHotPathAllocs(t *testing.T) {
	cfg := workload.Config{Keys: 4096, OpenLoop: true}.WithDefaults(4096)
	eng := sim.NewEngine(7)
	src := workload.NewSource(cfg, eng.Rand().Split())
	var keys workload.KeyTable
	keys.Name(cfg.Keys - 1) // warm the intern table end-to-end
	now := sim.Time(0)
	allocs := testing.AllocsPerRun(2000, func() {
		_, k := src.NextOp()
		_ = keys.Name(k)
		now += src.NextArrival(now)
	})
	if allocs != 0 {
		t.Fatalf("per-client steady-state hot path allocates %.1f/op; want 0", allocs)
	}
}
