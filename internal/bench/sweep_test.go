package bench

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"npf/internal/sim"
	"npf/internal/trace"
)

// withWorkers runs fn with the package-level Workers fan-out temporarily set
// to n.
func withWorkers(n int, fn func()) {
	old := Workers
	Workers = n
	defer func() { Workers = old }()
	fn()
}

// withEngines runs fn with the package-level PDES engine-thread budget
// temporarily set to n (0 restores the historical single-engine mode).
func withEngines(n int, fn func()) {
	old := Engines
	Engines = n
	defer func() { Engines = old }()
	fn()
}

func TestRunParallelRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 64} {
		const n = 100
		counts := make([]atomic.Int32, n)
		jobs := make([]func(), n)
		for i := range jobs {
			i := i
			jobs[i] = func() { counts[i].Add(1) }
		}
		RunParallel(workers, jobs)
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestRunParallelEmpty(t *testing.T) {
	RunParallel(8, nil) // must not hang or panic
}

// TestRunParallelSlotWrites is the worker-pool exercise for the -race pass:
// concurrent jobs writing disjoint result slots must be race-free, and the
// slots must hold the same values regardless of fan-out.
func TestRunParallelSlotWrites(t *testing.T) {
	const n = 256
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 8} {
		got := make([]int, n)
		jobs := make([]func(), n)
		for i := range jobs {
			i := i
			jobs[i] = func() { got[i] = i * i }
		}
		RunParallel(workers, jobs)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRunParallelFig3Determinism is the regression test for the sweep
// runner's core promise: fanning a figure's jobs across 8 workers renders
// byte-identical output to the serial run.
func TestRunParallelFig3Determinism(t *testing.T) {
	opts := Fig3Opts{Trials: 8, Replicas: 4}
	var serial, fanned string
	withWorkers(1, func() { serial = RunFig3Opts(opts).Render() })
	withWorkers(8, func() { fanned = RunFig3Opts(opts).Render() })
	if serial != fanned {
		t.Fatalf("fig3 output depends on Workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, fanned)
	}
}

// TestRunParallelAblateDeterminism checks the ablation suite — the most
// heterogeneous job mix (twelve sub-experiments across five stacks) — renders
// identically under serial and parallel execution.
func TestRunParallelAblateDeterminism(t *testing.T) {
	var serial, fanned string
	withWorkers(1, func() { serial = RunAblate().Render() })
	withWorkers(8, func() { fanned = RunAblate().Render() })
	if serial != fanned {
		t.Fatalf("ablate output depends on Workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, fanned)
	}
}

// TestEnginesFig3Determinism is the PDES counterpart of the Workers pins,
// on the RC/InfiniBand transport: the same fig3 sweep must render
// byte-identically for every engine-thread budget. (Engines 0 — the legacy
// single-engine topology — is a different RNG split and legitimately
// differs; the identity promise covers every Engines >= 1.)
func TestEnginesFig3Determinism(t *testing.T) {
	opts := Fig3Opts{Trials: 6, Replicas: 2}
	outs := map[int]string{}
	for _, n := range []int{1, 2, 8} {
		withEngines(n, func() { outs[n] = RunFig3Opts(opts).Render() })
	}
	for _, n := range []int{2, 8} {
		if outs[n] != outs[1] {
			t.Fatalf("fig3 output depends on Engines:\n--- engines=1 ---\n%s\n--- engines=%d ---\n%s", outs[1], n, outs[n])
		}
	}
}

// TestEnginesFig4aDeterminism covers the Ethernet transport: a shortened
// fig4a startup sweep (ring refills, NPF backup path, memaslap load) must
// render byte-identically for Engines 1, 2, and 8.
func TestEnginesFig4aDeterminism(t *testing.T) {
	outs := map[int]string{}
	for _, n := range []int{1, 2, 8} {
		withEngines(n, func() { outs[n] = RunFig4a(sim.Second).Render() })
	}
	for _, n := range []int{2, 8} {
		if outs[n] != outs[1] {
			t.Fatalf("fig4a output depends on Engines:\n--- engines=1 ---\n%s\n--- engines=%d ---\n%s", outs[1], n, outs[n])
		}
	}
}

// captureSeriesUnder runs a sweep with a sampling trace factory installed
// (wrapped by the caller-supplied budget setter) and returns the rendered
// WriteSeriesSet stream — the byte string the determinism pins compare.
func captureSeriesUnder(t *testing.T, wrap func(func()), run func()) string {
	t.Helper()
	old := TraceFactory
	defer func() { TraceFactory = old }()
	var mu sync.Mutex
	var tracers []*trace.Tracer
	TraceFactory = func(eng *sim.Engine) *trace.Tracer {
		tr := trace.New(eng)
		tr.StartSampler(100 * sim.Microsecond)
		mu.Lock()
		tracers = append(tracers, tr)
		mu.Unlock()
		return tr
	}
	wrap(run)
	var set []*trace.Series
	for _, tr := range tracers {
		if s := tr.Sampler().Series(); s != nil && len(s.Names) > 0 {
			set = append(set, s)
		}
	}
	if len(set) == 0 {
		t.Fatal("no series captured — did the sweep build any engines?")
	}
	var b strings.Builder
	if err := trace.WriteSeriesSet(&b, set); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// captureSeries is captureSeriesUnder with a Workers budget.
func captureSeries(t *testing.T, workers int, run func()) string {
	t.Helper()
	return captureSeriesUnder(t, func(f func()) { withWorkers(workers, f) }, run)
}

// TestRunParallelSeriesDeterminism extends the sweep runner's byte-identity
// promise to time-series output: the content-sorted WriteSeriesSet stream
// (and its order-invariant digest) must not depend on the worker count,
// even though engines — and thus samplers — register in scheduling order.
func TestRunParallelSeriesDeterminism(t *testing.T) {
	opts := Fig3Opts{Trials: 6, Replicas: 2}
	serial := captureSeries(t, 1, func() { RunFig3Opts(opts) })
	fanned := captureSeries(t, 8, func() { RunFig3Opts(opts) })
	if serial != fanned {
		t.Fatalf("series output depends on Workers:\n--- workers=1 ---\n%.2000s\n--- workers=8 ---\n%.2000s", serial, fanned)
	}
}

// TestEnginesSeriesDeterminism extends the byte-identity promise of
// partitioned runs to sampler output: the WriteSeriesSet stream (the
// instrumented server partition of every env) must not depend on the
// engine-thread budget.
func TestEnginesSeriesDeterminism(t *testing.T) {
	opts := Fig3Opts{Trials: 4, Replicas: 2}
	outs := map[int]string{}
	for _, n := range []int{1, 2, 8} {
		outs[n] = captureSeriesUnder(t,
			func(f func()) { withEngines(n, f) },
			func() { RunFig3Opts(opts) })
	}
	for _, n := range []int{2, 8} {
		if outs[n] != outs[1] {
			t.Fatalf("series output depends on Engines:\n--- engines=1 ---\n%.2000s\n--- engines=%d ---\n%.2000s", outs[1], n, outs[n])
		}
	}
}

// TestFig3OptsDefaultsMatchRunFig3 pins the satellite requirement that the
// hoisted seed option preserves the historical results: RunFig3 must be
// exactly RunFig3Opts with the default seed and a single replica.
func TestFig3OptsDefaultsMatchRunFig3(t *testing.T) {
	a := RunFig3(6).Render()
	b := RunFig3Opts(Fig3Opts{Trials: 6, Seed: fig3DefaultSeed, Replicas: 1}).Render()
	if a != b {
		t.Fatalf("RunFig3 and explicit-default RunFig3Opts diverge:\n%s\nvs\n%s", a, b)
	}
}
