package bench

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"npf/internal/sim"
	"npf/internal/trace"
)

// withWorkers runs fn with the package-level Workers fan-out temporarily set
// to n.
func withWorkers(n int, fn func()) {
	old := Workers
	Workers = n
	defer func() { Workers = old }()
	fn()
}

func TestRunParallelRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 64} {
		const n = 100
		counts := make([]atomic.Int32, n)
		jobs := make([]func(), n)
		for i := range jobs {
			i := i
			jobs[i] = func() { counts[i].Add(1) }
		}
		RunParallel(workers, jobs)
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestRunParallelEmpty(t *testing.T) {
	RunParallel(8, nil) // must not hang or panic
}

// TestRunParallelSlotWrites is the worker-pool exercise for the -race pass:
// concurrent jobs writing disjoint result slots must be race-free, and the
// slots must hold the same values regardless of fan-out.
func TestRunParallelSlotWrites(t *testing.T) {
	const n = 256
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 8} {
		got := make([]int, n)
		jobs := make([]func(), n)
		for i := range jobs {
			i := i
			jobs[i] = func() { got[i] = i * i }
		}
		RunParallel(workers, jobs)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRunParallelFig3Determinism is the regression test for the sweep
// runner's core promise: fanning a figure's jobs across 8 workers renders
// byte-identical output to the serial run.
func TestRunParallelFig3Determinism(t *testing.T) {
	opts := Fig3Opts{Trials: 8, Replicas: 4}
	var serial, fanned string
	withWorkers(1, func() { serial = RunFig3Opts(opts).Render() })
	withWorkers(8, func() { fanned = RunFig3Opts(opts).Render() })
	if serial != fanned {
		t.Fatalf("fig3 output depends on Workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, fanned)
	}
}

// TestRunParallelAblateDeterminism checks the ablation suite — the most
// heterogeneous job mix (twelve sub-experiments across five stacks) — renders
// identically under serial and parallel execution.
func TestRunParallelAblateDeterminism(t *testing.T) {
	var serial, fanned string
	withWorkers(1, func() { serial = RunAblate().Render() })
	withWorkers(8, func() { fanned = RunAblate().Render() })
	if serial != fanned {
		t.Fatalf("ablate output depends on Workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, fanned)
	}
}

// captureSeries runs a sweep with a sampling trace factory installed and
// returns the rendered WriteSeriesSet stream — the byte string the series
// determinism pins compare across worker counts.
func captureSeries(t *testing.T, workers int, run func()) string {
	t.Helper()
	old := TraceFactory
	defer func() { TraceFactory = old }()
	var mu sync.Mutex
	var tracers []*trace.Tracer
	TraceFactory = func(eng *sim.Engine) *trace.Tracer {
		tr := trace.New(eng)
		tr.StartSampler(100 * sim.Microsecond)
		mu.Lock()
		tracers = append(tracers, tr)
		mu.Unlock()
		return tr
	}
	withWorkers(workers, run)
	var set []*trace.Series
	for _, tr := range tracers {
		if s := tr.Sampler().Series(); s != nil && len(s.Names) > 0 {
			set = append(set, s)
		}
	}
	if len(set) == 0 {
		t.Fatal("no series captured — did the sweep build any engines?")
	}
	var b strings.Builder
	if err := trace.WriteSeriesSet(&b, set); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestRunParallelSeriesDeterminism extends the sweep runner's byte-identity
// promise to time-series output: the content-sorted WriteSeriesSet stream
// (and its order-invariant digest) must not depend on the worker count,
// even though engines — and thus samplers — register in scheduling order.
func TestRunParallelSeriesDeterminism(t *testing.T) {
	opts := Fig3Opts{Trials: 6, Replicas: 2}
	serial := captureSeries(t, 1, func() { RunFig3Opts(opts) })
	fanned := captureSeries(t, 8, func() { RunFig3Opts(opts) })
	if serial != fanned {
		t.Fatalf("series output depends on Workers:\n--- workers=1 ---\n%.2000s\n--- workers=8 ---\n%.2000s", serial, fanned)
	}
}

// TestFig3OptsDefaultsMatchRunFig3 pins the satellite requirement that the
// hoisted seed option preserves the historical results: RunFig3 must be
// exactly RunFig3Opts with the default seed and a single replica.
func TestFig3OptsDefaultsMatchRunFig3(t *testing.T) {
	a := RunFig3(6).Render()
	b := RunFig3Opts(Fig3Opts{Trials: 6, Seed: fig3DefaultSeed, Replicas: 1}).Render()
	if a != b {
		t.Fatalf("RunFig3 and explicit-default RunFig3Opts diverge:\n%s\nvs\n%s", a, b)
	}
}
