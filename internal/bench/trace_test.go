package bench

import (
	"bytes"
	"math"
	"testing"

	"npf/internal/mem"
	"npf/internal/rc"
	"npf/internal/trace"
)

// runTracedNPFs drives the Figure 3a scenario (warm sender, cold receive
// buffers, minor rNPFs on the responder) on a traced IB env.
func runTracedNPFs(seed int64, trials int, traced, jitter bool) *IBEnv {
	e := NewIBEnv(IBOpts{Seed: seed, Trace: traced, Jitter: jitter})
	const pages, window = 1, 8
	Warm(e.QPA, 0, pages*2)
	done := 0
	var runTrial func()
	runTrial = func() {
		if done >= trials {
			e.Eng.Stop()
			return
		}
		base := mem.VAddr(done%window*pages) * mem.PageSize
		e.QPB.PostRecv(rc.RecvWQE{ID: int64(done), Addr: base, Len: 4096})
		e.QPA.PostSend(rc.SendWQE{ID: int64(done), Laddr: 0, Len: 4096})
	}
	e.QPB.OnRecv = func(rc.RecvCompletion) {
		base := mem.PageNum(done % window * pages)
		e.ASB.DiscardPages(base, pages)
		done++
		runTrial()
	}
	runTrial()
	e.Eng.Run()
	return e
}

// TestTraceDeterminism is the subsystem's headline property: the same
// seeded scenario run twice produces byte-identical Chrome JSON and metric
// snapshots.
func TestTraceDeterminism(t *testing.T) {
	var exports [2][]byte
	var snaps [2]string
	for i := range exports {
		e := runTracedNPFs(7, 30, true, true)
		var buf bytes.Buffer
		if err := e.Tracer.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		exports[i] = buf.Bytes()
		snaps[i] = e.Tracer.MetricsSnapshot()
	}
	if !bytes.Equal(exports[0], exports[1]) {
		t.Error("Chrome trace JSON differs between identical seeded runs")
	}
	if snaps[0] != snaps[1] {
		t.Errorf("metric snapshots differ:\n--- run 1\n%s\n--- run 2\n%s", snaps[0], snaps[1])
	}
	if len(exports[0]) == 0 || snaps[0] == "" {
		t.Fatal("empty export")
	}
}

// TestTracingDoesNotPerturb checks the RNG-order-preservation discipline:
// enabling tracing must not change what the simulation itself does, even
// with firmware jitter drawing from the engine RNG on every fault.
func TestTracingDoesNotPerturb(t *testing.T) {
	plain := runTracedNPFs(11, 30, false, true)
	traced := runTracedNPFs(11, 30, true, true)
	if plain.Tracer != nil {
		t.Fatal("untraced env has a tracer")
	}
	ph, th := &plain.DrvB.Hist, &traced.DrvB.Hist
	if ph.Total.Count() != th.Total.Count() {
		t.Fatalf("fault counts differ: %d vs %d", ph.Total.Count(), th.Total.Count())
	}
	if ph.Total.Mean() != th.Total.Mean() || ph.Total.Max() != th.Total.Max() {
		t.Errorf("NPF totals diverge with tracing on: mean %v vs %v, max %v vs %v",
			ph.Total.Mean(), th.Total.Mean(), ph.Total.Max(), th.Total.Max())
	}
	if plain.Eng.Now() != traced.Eng.Now() {
		t.Errorf("virtual end times diverge: %v vs %v", plain.Eng.Now(), traced.Eng.Now())
	}
}

// TestFig3SpanConsistency cross-checks the two independent observers of the
// same faults: span-derived stage statistics (trace.StageBreakdown) must
// agree with the driver's own Breakdown histograms, and reproduce the
// paper's Figure 3a calibration (≈220µs total, ~90% hardware at 4KB).
func TestFig3SpanConsistency(t *testing.T) {
	e := runTracedNPFs(7, 50, true, false)
	stages := trace.StageBreakdown(e.Tracer.Spans(), "npf")
	h := &e.DrvB.Hist

	if got := stages["total"].Count(); got != h.Total.Count() {
		t.Fatalf("span roots %d != driver faults %d", got, h.Total.Count())
	}
	close := func(name string, spanUs, histUs float64) {
		if math.Abs(spanUs-histUs) > 1.0 {
			t.Errorf("%s: span-derived %.2fµs vs driver histogram %.2fµs", name, spanUs, histUs)
		}
	}
	close("firmware/trigger", stages["firmware"].Mean(), h.Trigger.Mean())
	close("driver", stages["driver"].Mean(), h.DriverSW.Mean())
	close("update", stages["update"].Mean(), h.UpdateHW.Mean())
	close("resume", stages["resume"].Mean(), h.Resume.Mean())
	close("total", stages["total"].Mean(), h.Total.Mean())

	total := stages["total"].Mean()
	if total < 180 || total > 260 {
		t.Errorf("4KB NPF total %.1fµs outside paper calibration [180, 260]", total)
	}
	share := trace.HardwareShare(stages)
	if share < 0.85 || share > 0.99 {
		t.Errorf("hardware share %.3f outside [0.85, 0.99] (paper: ~90%%)", share)
	}
}

// TestEnvEngineGuard verifies the shared experiment envs install the
// runaway-event guard.
func TestEnvEngineGuard(t *testing.T) {
	if e := NewIBEnv(IBOpts{Seed: 1}); e.Eng.MaxEvents != MaxEngineEvents {
		t.Errorf("IB env MaxEvents = %d, want %d", e.Eng.MaxEvents, MaxEngineEvents)
	}
	if e := NewEthEnv(EthOpts{Seed: 1}); e.Eng.MaxEvents != MaxEngineEvents {
		t.Errorf("Eth env MaxEvents = %d, want %d", e.Eng.MaxEvents, MaxEngineEvents)
	}
}
