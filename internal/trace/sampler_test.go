package trace

import (
	"bytes"
	"strings"
	"testing"

	"npf/internal/sim"
)

// buildSampledRun drives a small deterministic workload under a sampler:
// a counter incremented at 3/7/12 µs, a probe mirroring a variable, and a
// gauge registered late (after sampling starts) to exercise zero-backfill.
func buildSampledRun(seed int64) (*Tracer, *Sampler) {
	eng := sim.NewEngine(seed)
	tr := New(eng)
	c := tr.Counter("work.items")
	depth := 0
	tr.Probe("work.depth", func() float64 { return float64(depth) })
	s := tr.StartSampler(5 * sim.Microsecond)
	for _, at := range []sim.Time{us(3), us(7), us(12)} {
		eng.At(at, func() {
			c.Inc()
			depth++
			tr.Gauge("work.late").Set(float64(depth) * 10)
		})
	}
	eng.Run()
	return tr, s
}

func TestSamplerRowsAndParking(t *testing.T) {
	tr, s := buildSampledRun(1)
	// t=0 (synchronous first sample), t=5, t=10, t=15 — and at t=15 the
	// queue is empty so the sampler parks and Run terminates.
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	ser := s.Series()
	if ser == nil {
		t.Fatal("nil series")
	}
	wantTimes := []sim.Time{0, us(5), us(10), us(15)}
	for i, w := range wantTimes {
		if ser.Times[i] != w {
			t.Fatalf("Times[%d] = %v, want %v", i, ser.Times[i], w)
		}
	}
	if got, want := ser.Cols["work.items"], []float64{0, 1, 2, 3}; !eqF(got, want) {
		t.Fatalf("work.items = %v, want %v", got, want)
	}
	if got, want := ser.Cols["work.depth"], []float64{0, 1, 2, 3}; !eqF(got, want) {
		t.Fatalf("work.depth = %v, want %v", got, want)
	}
	// Registered after the t=0 sample: backfilled with 0.
	if got, want := ser.Cols["work.late"], []float64{0, 10, 20, 30}; !eqF(got, want) {
		t.Fatalf("work.late = %v, want %v", got, want)
	}
	if tr.Sampler() != s {
		t.Fatal("Sampler() accessor mismatch")
	}
	if tr.StartSampler(us(99)) != s {
		t.Fatal("StartSampler is not idempotent")
	}
	if s.Interval() != us(5) {
		t.Fatalf("Interval = %v", s.Interval())
	}
}

func eqF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSamplerProbesSumUnderOneName(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	tr.Probe("pool.free", func() float64 { return 3 })
	tr.Probe("pool.free", func() float64 { return 4 })
	s := tr.StartSampler(us(5))
	if got := s.Series().Cols["pool.free"][0]; got != 7 {
		t.Fatalf("summed probe = %v, want 7", got)
	}
}

func TestSamplerMaxSamplesTruncates(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	tr.Counter("c").Inc()
	s := tr.StartSampler(us(1))
	s.MaxSamples = 3
	// Keep the engine busy well past 3 samples.
	for i := 1; i <= 10; i++ {
		eng.At(us(int64(i)), func() {})
	}
	eng.Run()
	if s.Len() != 3 || !s.Truncated() {
		t.Fatalf("Len=%d Truncated=%v, want 3/true", s.Len(), s.Truncated())
	}
}

func TestSamplerExportsByteIdentical(t *testing.T) {
	_, s1 := buildSampledRun(1)
	_, s2 := buildSampledRun(1)
	for _, f := range []struct {
		name  string
		write func(*Series, *bytes.Buffer) error
	}{
		{"csv", func(s *Series, b *bytes.Buffer) error { return s.WriteCSV(b) }},
		{"json", func(s *Series, b *bytes.Buffer) error { return s.WriteJSON(b) }},
		{"openmetrics", func(s *Series, b *bytes.Buffer) error { return s.WriteOpenMetrics(b) }},
	} {
		var b1, b2 bytes.Buffer
		if err := f.write(s1.Series(), &b1); err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if err := f.write(s2.Series(), &b2); err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if b1.String() != b2.String() {
			t.Fatalf("%s export differs between identical runs", f.name)
		}
		if b1.Len() == 0 {
			t.Fatalf("%s export is empty", f.name)
		}
	}
	if s1.Series().Digest() != s2.Series().Digest() {
		t.Fatal("series digests differ between identical runs")
	}
}

func TestSeriesCSVRoundTrip(t *testing.T) {
	_, s := buildSampledRun(1)
	var b bytes.Buffer
	if err := WriteSeriesSet(&b, []*Series{s.Series()}); err != nil {
		t.Fatal(err)
	}
	set, err := ReadSeriesSet(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Fatalf("parsed %d sections, want 1", len(set))
	}
	got, want := set[0], s.Series()
	if got.Interval != want.Interval {
		t.Fatalf("interval %v != %v", got.Interval, want.Interval)
	}
	if !eqStr(got.Names, want.Names) {
		t.Fatalf("names %v != %v", got.Names, want.Names)
	}
	for _, n := range want.Names {
		if !eqF(got.Cols[n], want.Cols[n]) {
			t.Fatalf("col %s: %v != %v", n, got.Cols[n], want.Cols[n])
		}
	}
}

func eqStr(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWriteSeriesSetOrderInvariant(t *testing.T) {
	_, sa := buildSampledRun(1)
	_, sb := buildSampledRun(7)
	a, b := sa.Series(), sb.Series()
	var fwd, rev bytes.Buffer
	if err := WriteSeriesSet(&fwd, []*Series{a, b}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSeriesSet(&rev, []*Series{b, a}); err != nil {
		t.Fatal(err)
	}
	if fwd.String() != rev.String() {
		t.Fatal("WriteSeriesSet output depends on slice order")
	}
	if DigestSeries([]*Series{a, b}) != DigestSeries([]*Series{b, a}) {
		t.Fatal("DigestSeries depends on slice order")
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp sparkline = %q", got)
	}
	// Resampling takes bucket maxima so spikes stay visible.
	spike := Sparkline([]float64{0, 0, 9, 0, 0, 0, 0, 0}, 4)
	if !strings.Contains(spike, "█") {
		t.Fatalf("spike lost in resampling: %q", spike)
	}
	flat := Sparkline([]float64{5, 5, 5}, 3)
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", flat)
	}
}

// TestSamplingDoesNotPerturbWorkload pins the read-only contract: the same
// workload records identical spans and counters with and without a sampler
// (only gauges differ, since probes materialize them).
func TestSamplingDoesNotPerturbWorkload(t *testing.T) {
	run := func(sample bool) (uint64, string) {
		eng := sim.NewEngine(42)
		tr := New(eng)
		c := tr.Counter("work.items")
		if sample {
			tr.Probe("work.probe", func() float64 { return 1 })
			tr.StartSampler(us(5))
		}
		for i := int64(1); i <= 20; i++ {
			i := i
			eng.At(us(3*i), func() {
				id := tr.Begin(0, "npf", "op")
				c.Inc()
				tr.EndAt(id, eng.Now()+us(2))
			})
		}
		eng.Run()
		var spans strings.Builder
		for _, sp := range tr.Spans() {
			if sp.Cat == "npf" { // skip nothing today, but be explicit
				spans.WriteString(sp.Name)
				spans.WriteString(sp.Start.String())
				spans.WriteString(sp.End.String())
			}
		}
		return c.Value(), spans.String()
	}
	cOff, spansOff := run(false)
	cOn, spansOn := run(true)
	if cOff != cOn {
		t.Fatalf("counter perturbed by sampling: %d vs %d", cOff, cOn)
	}
	if spansOff != spansOn {
		t.Fatal("span stream perturbed by sampling")
	}
}
