package trace

import (
	"fmt"
	"io"
	"sort"

	"npf/internal/sim"
)

// Post-processing over completed FaultRecords: the per-stage anatomy table
// (the paper's Table 2 shape) and critical-path extraction for tail faults.
// Everything here is pure and sorted, so renderings are byte-identical for
// any -parallel/-engines budget given the same records.

// FaultStageBreakdown builds one latency histogram (µs) per lifecycle stage
// across the records, plus "total" (detect → resume-complete). A stage
// contributes a sample only when it occurred on that fault, so the n column
// doubles as an occurrence count. Render with WriteStageTable.
func FaultStageBreakdown(records []FaultRecord) map[string]*sim.Histogram {
	out := map[string]*sim.Histogram{"total": {}}
	for i := range records {
		r := &records[i]
		out["total"].AddTime(r.Total())
		for s := FaultStage(0); s < numFaultStages; s++ {
			if r.Stage[s] <= 0 {
				continue
			}
			h := out[s.String()]
			if h == nil {
				h = &sim.Histogram{}
				out[s.String()] = h
			}
			h.AddTime(r.Stage[s])
		}
	}
	return out
}

// critComponent is one disjoint slice of a fault's end-to-end latency.
// Record stages overlap (fault-report contains parked; driver contains
// page-resolve and copy), so critical-path attribution uses this
// decomposition, which sums to ~the fault total.
type critComponent struct {
	name  string
	layer string
}

var critComponents = []critComponent{
	{"fault-report", "hw"}, // firmware detect + interrupt + report queue
	{"parked", "queue"},    // backup-ring residency (Ethernet)
	{"retry", "queue"},     // resolver timeouts + OOM backoff rounds
	{"driver", "sw"},       // driver + OS fault-in (incl. page-resolve, copy, pin)
	{"update", "sw+hw"},    // IOMMU page-table update
	{"resume", "hw"},       // device notices and resumes
}

// components returns the disjoint per-component durations for one record,
// index-aligned with critComponents.
func components(r *FaultRecord) [6]sim.Time {
	parked := r.Stage[FSParked]
	report := r.Stage[FSReport] - parked
	if report < 0 {
		report = 0
	}
	return [6]sim.Time{
		report,
		parked,
		r.Stage[FSResolverTimeout] + r.Stage[FSOOMBackoff],
		r.Stage[FSDriver],
		r.Stage[FSUpdate],
		r.Stage[FSResume],
	}
}

// CritStage aggregates the tail faults dominated by one component.
type CritStage struct {
	Stage     string
	Layer     string
	Count     int     // tail faults whose largest component this is
	Host      int64   // most common detecting node among them (lowest wins ties)
	MeanShare float64 // mean fraction of those faults' totals it accounts for
	MeanUs    float64 // mean duration of the component on those faults
}

// CritPath is the critical-path extraction for the tail at one percentile.
type CritPath struct {
	Pct         float64
	ThresholdUs float64 // the percentile latency; tail = faults at/above it
	Tail        int
	Total       int
	Stages      []CritStage // by Count descending, component order on ties
}

// CriticalPath finds, for faults at or above the pct-th percentile of total
// latency, which lifecycle component dominates each and aggregates the
// answer. Returns nil when there are no completed records.
func CriticalPath(records []FaultRecord, pct float64) *CritPath {
	if len(records) == 0 {
		return nil
	}
	var totals sim.Histogram
	for i := range records {
		totals.AddTime(records[i].Total())
	}
	thr := totals.Percentile(pct)
	cp := &CritPath{Pct: pct, ThresholdUs: thr, Total: len(records)}

	type agg struct {
		count  int
		sumUs  float64
		share  float64
		hosts  []int64 // parallel slices instead of a map: deterministic, tiny
		hostsN []int
	}
	aggs := make([]agg, len(critComponents))
	for i := range records {
		r := &records[i]
		tot := r.Total()
		if tot.Micros() < thr || tot <= 0 {
			continue
		}
		cp.Tail++
		comp := components(r)
		dom, best := 0, sim.Time(-1)
		for c, d := range comp {
			if d > best {
				dom, best = c, d
			}
		}
		a := &aggs[dom]
		a.count++
		a.sumUs += best.Micros()
		a.share += float64(best) / float64(tot)
		found := false
		for h := range a.hosts {
			if a.hosts[h] == r.Node {
				a.hostsN[h]++
				found = true
				break
			}
		}
		if !found {
			a.hosts = append(a.hosts, r.Node)
			a.hostsN = append(a.hostsN, 1)
		}
	}
	for c, a := range aggs {
		if a.count == 0 {
			continue
		}
		host, hostN := int64(-1), 0
		for h := range a.hosts {
			if a.hostsN[h] > hostN || (a.hostsN[h] == hostN && a.hosts[h] < host) {
				host, hostN = a.hosts[h], a.hostsN[h]
			}
		}
		cp.Stages = append(cp.Stages, CritStage{
			Stage: critComponents[c].name, Layer: critComponents[c].layer,
			Count: a.count, Host: host,
			MeanShare: a.share / float64(a.count),
			MeanUs:    a.sumUs / float64(a.count),
		})
	}
	sort.SliceStable(cp.Stages, func(i, j int) bool {
		return cp.Stages[i].Count > cp.Stages[j].Count
	})
	return cp
}

// Write renders the critical path:
//
//	critical path @p99.0 (threshold 1234.5us, 12/1200 faults in tail):
//	  stage          layer      n  share%    mean_us  host
//	  fault-report   hw        10    93.2     1150.2  2
func (c *CritPath) Write(w io.Writer) {
	if c == nil {
		fmt.Fprintln(w, "critical path: no completed faults")
		return
	}
	fmt.Fprintf(w, "critical path @p%.1f (threshold %.1fus, %d/%d faults in tail):\n",
		c.Pct, c.ThresholdUs, c.Tail, c.Total)
	fmt.Fprintf(w, "  %-14s %-6s %5s %7s %10s  %s\n", "stage", "layer", "n", "share%", "mean_us", "host")
	for _, s := range c.Stages {
		fmt.Fprintf(w, "  %-14s %-6s %5d %7.1f %10.1f  %d\n",
			s.Stage, s.Layer, s.Count, 100*s.MeanShare, s.MeanUs, s.Host)
	}
}

// PathCount is one fault-path name and how many completed records took it.
type PathCount struct {
	Name string
	N    int
}

// FaultPathCounts tallies completed records by fault path name, sorted by
// name — the one-line provenance summary under an anatomy table.
func FaultPathCounts(records []FaultRecord) []PathCount {
	byName := map[string]int{}
	for i := range records {
		byName[records[i].Name]++
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]PathCount, len(names))
	for i, n := range names {
		out[i] = PathCount{Name: n, N: byName[n]}
	}
	return out
}
