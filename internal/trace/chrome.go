package trace

import (
	"encoding/json"
	"io"
)

// Chrome trace_event export. The output loads in Perfetto
// (https://ui.perfetto.dev) and chrome://tracing. Virtual time is the
// timebase: the "ts" microseconds in the file are sim.Time microseconds
// since simulation start, so a 220 µs NPF renders as a 220 µs slice.
//
// Layout: each root span becomes one "thread" (track) whose tid is the
// root's SpanID, and every span in that tree renders as a complete ("X")
// event on the track. Children of one NPF nest visually inside it, which is
// exactly the Figure 3a decomposition. With multiple tracers (one engine
// per experiment), each tracer becomes a separate "process".

// chromeEvent is one trace_event entry. Field order and json.Marshal's
// sorted map keys keep the output deterministic.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports this tracer's spans as Chrome trace_event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return ExportChromeTrace(w, []*Tracer{t})
}

// ExportChromeTrace merges several tracers (typically one per experiment
// engine) into one trace file; tracer i becomes process i+1. Nil tracers
// are skipped. The output is byte-identical across runs given a seed.
func ExportChromeTrace(w io.Writer, tracers []*Tracer) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	pid := 0
	for _, t := range tracers {
		if t == nil {
			continue
		}
		pid++
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]string{"name": "npf-sim engine " + itoa(int64(pid))},
		})
		clamp := t.eng.Now()
		// Resolve each span's root so the whole tree shares one track.
		roots := make([]SpanID, len(t.spans)+1)
		for i := range t.spans {
			s := &t.spans[i]
			if s.Parent == 0 || int(s.Parent) > len(t.spans) {
				roots[s.ID] = s.ID
			} else {
				roots[s.ID] = roots[s.Parent]
			}
		}
		named := make(map[SpanID]bool)
		for i := range t.spans {
			s := &t.spans[i]
			root := roots[s.ID]
			if !named[root] {
				named[root] = true
				r := &t.spans[root-1]
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: int64(root),
					Args: map[string]string{"name": r.Cat + ":" + r.Name + " #" + itoa(int64(root))},
				})
			}
			end := s.End
			if end < s.Start {
				end = clamp // open span: clamp to export time
				if end < s.Start {
					end = s.Start
				}
			}
			dur := float64(end-s.Start) / 1e3
			ev := chromeEvent{
				Name: s.Name, Cat: s.Cat, Ph: "X",
				Ts: float64(s.Start) / 1e3, Dur: &dur,
				Pid: pid, Tid: int64(root),
			}
			if len(s.Args) > 0 {
				ev.Args = make(map[string]string, len(s.Args))
				for _, a := range s.Args {
					ev.Args[a.Key] = a.Val
				}
			}
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
