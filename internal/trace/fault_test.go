package trace

import (
	"strings"
	"testing"

	"npf/internal/sim"
)

func TestMintFaultIDRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		node int64
		seq  uint64
	}{{0, 1}, {0, 0}, {3, 17}, {1007, 1 << 39}, {-1 + 1, 42}} {
		id := MintFaultID(tc.node, tc.seq)
		if id.Node() != tc.node || id.Seq() != tc.seq {
			t.Fatalf("MintFaultID(%d, %d) -> (%d, %d)", tc.node, tc.seq, id.Node(), id.Seq())
		}
	}
	if MintFaultID(0, 1) == 0 {
		t.Fatal("node 0 mints the zero (no-fault) ID")
	}
}

// newTestTracer builds an enabled tracer without running an engine; the
// recording methods take explicit times, so no events are needed.
func newTestTracer() *Tracer {
	return New(sim.NewEngine(1))
}

func TestFaultRecordLifecycle(t *testing.T) {
	tr := newTestTracer()
	id := MintFaultID(2, 1)
	tr.FaultMinted(id, "recv-rnpf", us(10), 5, 40, 3)
	if tr.PendingFaults() != 1 || tr.FaultRecordCount() != 0 {
		t.Fatalf("after mint: pending %d done %d", tr.PendingFaults(), tr.FaultRecordCount())
	}
	if got := tr.FaultRecords(); len(got) != 0 {
		t.Fatalf("pending fault visible in FaultRecords: %+v", got)
	}
	tr.FaultStageAt(id, FSReport, us(10), us(4), 0, 3)
	tr.FaultStageAt(id, FSResolverTimeout, us(14), us(6), 0, 3)
	tr.FaultStageAt(id, FSOOMBackoff, us(20), us(2), 1, 3)
	tr.FaultStageAt(id, FSDriver, us(22), us(8), 3, 1)
	tr.FaultStageAt(id, FSDriver, us(30), us(2), 3, 0) // second round accrues
	tr.FaultStageAt(id, FSUpdate, us(32), us(1), 3, 0)
	tr.FaultStageAt(id, FSResume, us(33), us(2), 0, 0)
	tr.FaultDone(id, us(35))

	recs := tr.FaultRecords()
	if len(recs) != 1 || tr.PendingFaults() != 0 || tr.FaultRecordCount() != 1 {
		t.Fatalf("after done: records %d pending %d done %d",
			len(recs), tr.PendingFaults(), tr.FaultRecordCount())
	}
	r := recs[0]
	if r.ID != id || r.Name != "recv-rnpf" || r.Node != 2 || r.Origin != 5 || r.Op != 40 || r.Pages != 3 {
		t.Fatalf("record identity: %+v", r)
	}
	if r.Start != us(10) || r.End != us(35) || r.Total() != us(25) {
		t.Fatalf("record times: start %v end %v total %v", r.Start, r.End, r.Total())
	}
	if r.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (timeout + oom)", r.Retries)
	}
	if r.Stage[FSDriver] != us(10) || r.Stage[FSReport] != us(4) || r.Stage[FSResume] != us(2) {
		t.Fatalf("stage accrual: driver %v report %v resume %v",
			r.Stage[FSDriver], r.Stage[FSReport], r.Stage[FSResume])
	}

	// A late stage on a completed fault is ring-only: no record mutation.
	tr.FaultStageAt(id, FSDriver, us(40), us(5), 0, 0)
	if got := tr.FaultRecords()[0].Stage[FSDriver]; got != us(10) {
		t.Fatalf("stage after done mutated the record: %v", got)
	}
}

func TestFaultRingOverwriteAndRecordCap(t *testing.T) {
	tr := newTestTracer()
	tr.MaxFaultEvents = 4
	tr.MaxFaultRecords = 2
	for i := 0; i < 3; i++ {
		id := MintFaultID(1, uint64(i+1))
		tr.FaultMinted(id, "tx", us(int64(10*i)), -1, 0, 1)
		tr.FaultDone(id, us(int64(10*i+5)))
	}
	// 6 events through a 4-slot ring: the oldest 2 were overwritten.
	if got := tr.DroppedFaultEvents(); got != 2 {
		t.Fatalf("DroppedFaultEvents = %d, want 2", got)
	}
	ev := tr.FaultEvents()
	if len(ev) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatalf("ring not oldest-first: %+v", ev)
		}
	}
	// Third mint exceeded MaxFaultRecords: dropped, and its Done is inert.
	if got := tr.DroppedFaultRecords(); got != 1 {
		t.Fatalf("DroppedFaultRecords = %d, want 1", got)
	}
	if got := tr.FaultRecordCount(); got != 2 {
		t.Fatalf("FaultRecordCount = %d, want 2", got)
	}
}

func TestFlightExcerptSortedAndBounded(t *testing.T) {
	tr := newTestTracer()
	// Record out of time order (two devices interleaving).
	tr.FaultContext(FSReclaim, us(30), us(1), 7, 0)
	tr.FaultContext(FSInvalidate, us(10), us(2), 3, 4)
	tr.FaultContext(FSRetx, us(20), us(5), 1, -1)
	ev := tr.FlightExcerpt(2)
	if len(ev) != 2 {
		t.Fatalf("excerpt len %d, want 2", len(ev))
	}
	if ev[0].At > ev[1].At {
		t.Fatalf("excerpt unsorted: %+v", ev)
	}
	if DigestFaultEvents(ev) == 0 {
		t.Fatal("digest of nonempty excerpt is zero")
	}
	var b strings.Builder
	WriteFlightRecorder(&b, ev)
	out := b.String()
	// The excerpt is the last n *inserted* events (the recent past), then
	// sorted: reclaim@30us was inserted first and falls outside n=2.
	if !strings.Contains(out, "tcp-retx") || !strings.Contains(out, "invalidate") {
		t.Fatalf("rendering lost stages:\n%s", out)
	}
	if strings.Contains(out, "reclaim") {
		t.Fatalf("excerpt kept an event outside the last-n window:\n%s", out)
	}
	if !strings.Contains(out, "fault -") {
		t.Fatalf("context events should render ID '-':\n%s", out)
	}
}

// mkRecord builds a completed record with the given disjoint component
// durations laid end to end from start.
func mkRecord(node int64, seq uint64, name string, start sim.Time, report, parked, driver, update, resume sim.Time) FaultRecord {
	r := FaultRecord{
		ID: MintFaultID(node, seq), Name: name, Node: node, Origin: -1,
		Start: start, End: start + report + driver + update + resume,
	}
	// FSReport contains parked, mirroring the recording overlap.
	r.Stage[FSReport] = report
	r.Stage[FSParked] = parked
	r.Stage[FSDriver] = driver
	r.Stage[FSUpdate] = update
	r.Stage[FSResume] = resume
	return r
}

func TestCriticalPathAttribution(t *testing.T) {
	var recs []FaultRecord
	// 9 fast faults dominated by driver time, 1 huge fault dominated by a
	// long fault-report (hw) interval on node 3.
	for i := 0; i < 9; i++ {
		recs = append(recs, mkRecord(1, uint64(i+1), "tx", us(int64(10*i)),
			us(2), 0, us(5), us(1), us(1)))
	}
	recs = append(recs, mkRecord(3, 1, "rx-backup", us(100),
		us(900), us(200), us(50), us(1), us(1)))

	cp := CriticalPath(recs, 99)
	if cp == nil || cp.Total != 10 {
		t.Fatalf("CriticalPath = %+v", cp)
	}
	if cp.Tail != 1 {
		t.Fatalf("p99 tail = %d, want just the slow fault: %+v", cp.Tail, cp)
	}
	if len(cp.Stages) == 0 || cp.Stages[0].Stage != "fault-report" || cp.Stages[0].Layer != "hw" {
		t.Fatalf("dominant stage = %+v, want fault-report/hw", cp.Stages)
	}
	if cp.Stages[0].Host != 3 {
		t.Fatalf("dominant host = %d, want 3", cp.Stages[0].Host)
	}
	// The disjoint report component excludes parked time: 900-200=700 of
	// the 952us total (report already contains parked, so End does too).
	share := cp.Stages[0].MeanShare
	if share < 0.70 || share > 0.77 {
		t.Fatalf("report share = %.3f, want ~0.735 (parked excluded)", share)
	}
	if CriticalPath(nil, 99) != nil {
		t.Fatal("CriticalPath(nil) != nil")
	}

	// p0: every fault is in the tail; the fast ones are driver-dominated.
	cp0 := CriticalPath(recs, 0)
	if cp0.Tail != 10 {
		t.Fatalf("p0 tail = %d, want 10", cp0.Tail)
	}
	if cp0.Stages[0].Stage != "driver" || cp0.Stages[0].Count != 9 {
		t.Fatalf("p0 dominant = %+v, want driver x9", cp0.Stages[0])
	}
}

func TestFaultStageBreakdownAndPaths(t *testing.T) {
	recs := []FaultRecord{
		mkRecord(1, 1, "tx", us(0), us(2), 0, us(5), us(1), us(1)),
		mkRecord(1, 2, "tx", us(20), us(2), 0, us(7), us(1), us(1)),
		mkRecord(2, 1, "rx-backup", us(40), us(9), us(6), us(5), us(1), us(1)),
	}
	stages := FaultStageBreakdown(recs)
	if got := stages["total"].Count(); got != 3 {
		t.Fatalf("total n = %d, want 3", got)
	}
	if got := stages["parked"].Count(); got != 1 {
		t.Fatalf("parked n = %d, want 1 (zero-duration stages excluded)", got)
	}
	if got := stages["driver"].Count(); got != 3 {
		t.Fatalf("driver n = %d, want 3", got)
	}
	if _, ok := stages["minted"]; ok {
		t.Fatal("zero-duration stage present in breakdown")
	}
	paths := FaultPathCounts(recs)
	if len(paths) != 2 || paths[0].Name != "rx-backup" || paths[0].N != 1 ||
		paths[1].Name != "tx" || paths[1].N != 2 {
		t.Fatalf("FaultPathCounts = %+v", paths)
	}
}
