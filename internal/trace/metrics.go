package trace

import (
	"fmt"
	"sort"
	"strings"

	"npf/internal/sim"
)

// Counter is a monotonically increasing metric handle. A nil *Counter (as
// returned by a disabled tracer) is inert, so call sites resolve handles
// once at construction time and increment unconditionally.
type Counter struct {
	n uint64
}

// Inc adds one. Allocation-free on every path (nil handle or live).
//
//npf:noalloc
func (c *Counter) Inc() {
	if c != nil {
		c.n++
	}
}

// Add adds n. Allocation-free on every path.
//
//npf:noalloc
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.n += n
	}
}

// Value returns the current count (0 for a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge is a last-value-wins metric handle.
type Gauge struct {
	v   float64
	set bool
}

// Set records the current value. Allocation-free on every path.
//
//npf:noalloc
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v, g.set = v, true
	}
}

// Value returns the last set value (0 for a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// LatencyHist is a sim.Histogram-backed latency distribution recorded in
// microseconds.
type LatencyHist struct {
	h sim.Histogram
}

// Observe records one virtual-time span. The disabled (nil-handle) path
// is fenced allocation-free; a live histogram grows its sample slice.
//
//npf:noalloc
func (l *LatencyHist) Observe(d sim.Time) {
	if l != nil {
		l.h.AddTime(d) //npf:allocok — enabled path; the sample slice grows by design
	}
}

// ObserveVal records one raw sample (already in µs).
func (l *LatencyHist) ObserveVal(v float64) {
	if l != nil {
		l.h.Add(v)
	}
}

// Hist exposes the underlying histogram (nil-safe: returns an empty one).
func (l *LatencyHist) Hist() *sim.Histogram {
	if l == nil {
		return &sim.Histogram{}
	}
	return &l.h
}

// Counter returns (creating if needed) the counter registered under name.
// A disabled tracer returns a nil handle, which is safe to use.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	c, ok := t.counters[name]
	if !ok {
		c = &Counter{}
		t.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge registered under name.
func (t *Tracer) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	g, ok := t.gauges[name]
	if !ok {
		g = &Gauge{}
		t.gauges[name] = g
	}
	return g
}

// Latency returns (creating if needed) the latency distribution registered
// under name.
func (t *Tracer) Latency(name string) *LatencyHist {
	if t == nil {
		return nil
	}
	l, ok := t.lats[name]
	if !ok {
		l = &LatencyHist{}
		t.lats[name] = l
	}
	return l
}

// Count is a convenience for one-off increments where keeping a handle is
// not worth it (cold paths only: it pays a map lookup when enabled).
func (t *Tracer) Count(name string, n uint64) {
	if t == nil {
		return
	}
	t.Counter(name).Add(n)
}

// MetricsSnapshot renders every registered metric as one line each, sorted
// by kind then name — byte-reproducible given a seed. Counters that were
// registered but never incremented still appear (value 0), so two runs of
// the same scenario list identical metric sets.
func (t *Tracer) MetricsSnapshot() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, name := range sortedKeys(t.counters) {
		fmt.Fprintf(&b, "counter %-32s %d\n", name, t.counters[name].Value())
	}
	for _, name := range sortedKeys(t.gauges) {
		fmt.Fprintf(&b, "gauge   %-32s %.3f\n", name, t.gauges[name].Value())
	}
	for _, name := range sortedKeys(t.lats) {
		h := t.lats[name].Hist()
		fmt.Fprintf(&b, "latency %-32s n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
			name, h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
