package trace

import (
	"fmt"
	"io"
	"math"
	"sort"

	"npf/internal/sim"
)

// Text reporting: span forest rendering, top-k slowest roots, and per-stage
// percentile breakdowns derived purely from recorded spans (the Fig. 3a
// decomposition, but measured rather than bookkept by the bench runner).

// node is one span plus child indices, used while building the forest.
type node struct {
	span     *Span
	children []int
}

func buildForest(spans []Span) (nodes []node, roots []int) {
	nodes = make([]node, len(spans))
	byID := make(map[SpanID]int, len(spans))
	for i := range spans {
		nodes[i].span = &spans[i]
		byID[spans[i].ID] = i
	}
	for i := range spans {
		p := spans[i].Parent
		if pi, ok := byID[p]; ok && p != 0 {
			nodes[pi].children = append(nodes[pi].children, i)
		} else {
			roots = append(roots, i)
		}
	}
	return nodes, roots
}

// WriteTree renders the span forest as an indented tree with virtual-time
// offsets and durations in microseconds. Output order is recording order,
// hence deterministic.
func WriteTree(w io.Writer, spans []Span) {
	nodes, roots := buildForest(spans)
	for _, r := range roots {
		writeNode(w, nodes, r, 0)
	}
}

func writeNode(w io.Writer, nodes []node, i, depth int) {
	s := nodes[i].span
	for d := 0; d < depth; d++ {
		fmt.Fprint(w, "  ")
	}
	dur := "open"
	if !s.Open() {
		dur = fmt.Sprintf("%8.1fus", float64(s.Dur())/1e3)
	}
	fmt.Fprintf(w, "%-6s %-14s @%10.1fus  %s", s.Cat, s.Name, float64(s.Start)/1e3, dur)
	for _, a := range s.Args {
		fmt.Fprintf(w, "  %s=%s", a.Key, a.Val)
	}
	fmt.Fprintln(w)
	for _, c := range nodes[i].children {
		writeNode(w, nodes, c, depth+1)
	}
}

// RootDur is one root span with its total duration, for top-k reports.
type RootDur struct {
	Span *Span
	Dur  sim.Time
}

// TopSlowest returns the k slowest closed root spans of category cat
// (all categories if cat == ""), slowest first. Ties break on span ID so
// the order is deterministic.
func TopSlowest(spans []Span, cat string, k int) []RootDur {
	var all []RootDur
	for i := range spans {
		s := &spans[i]
		if s.Parent != 0 || s.Open() {
			continue
		}
		if cat != "" && s.Cat != cat {
			continue
		}
		all = append(all, RootDur{Span: s, Dur: s.Dur()})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dur != all[j].Dur {
			return all[i].Dur > all[j].Dur
		}
		return all[i].Span.ID < all[j].Span.ID
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// StageBreakdown aggregates, over every closed root span of category
// rootCat, the duration of each direct-child stage name plus the root
// total. The result maps stage name -> histogram of µs samples, with the
// root total under "total". This is how npftrace reproduces Fig. 3a: the
// firmware/parked/driver/update/resume children of each "npf" root are the
// paper's trigger/sw/hw/resume components.
func StageBreakdown(spans []Span, rootCat string) map[string]*sim.Histogram {
	nodes, roots := buildForest(spans)
	out := make(map[string]*sim.Histogram)
	get := func(name string) *sim.Histogram {
		h, ok := out[name]
		if !ok {
			h = &sim.Histogram{}
			out[name] = h
		}
		return h
	}
	for _, r := range roots {
		root := nodes[r].span
		if root.Cat != rootCat || root.Open() {
			continue
		}
		get("total").AddTime(root.Dur())
		for _, c := range nodes[r].children {
			cs := nodes[c].span
			if cs.Open() {
				continue
			}
			get(cs.Name).AddTime(cs.Dur())
		}
	}
	return out
}

// safeHist shields report rendering from nil map entries: callers may build
// stage maps by hand (tests, tools) and a nil *Histogram must render as an
// empty one, not panic.
func safeHist(h *sim.Histogram) *sim.Histogram {
	if h == nil {
		return &sim.Histogram{}
	}
	return h
}

// finite scrubs NaN and infinities to 0 so report tables and ratios stay
// printable even if a histogram was fed pathological samples.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// WriteStageTable renders a StageBreakdown as a fixed-width percentile
// table, stages sorted by name with "total" last. Empty maps render as a
// header-only table; nil histograms render as zero rows.
func WriteStageTable(w io.Writer, stages map[string]*sim.Histogram) {
	names := make([]string, 0, len(stages))
	for n := range stages {
		if n != "total" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if _, ok := stages["total"]; ok {
		names = append(names, "total")
	}
	fmt.Fprintf(w, "%-14s %8s %10s %10s %10s %10s %10s\n",
		"stage", "n", "mean_us", "p50_us", "p95_us", "p99_us", "max_us")
	for _, n := range names {
		h := safeHist(stages[n])
		fmt.Fprintf(w, "%-14s %8d %10.1f %10.1f %10.1f %10.1f %10.1f\n",
			n, h.Count(), finite(h.Mean()), finite(h.Percentile(50)),
			finite(h.Percentile(95)), finite(h.Percentile(99)), finite(h.Max()))
	}
}

// HardwareShare computes the fraction of mean NPF time spent in
// hardware-side stages (firmware detection, page-table update, resume) —
// the quantity the paper's Fig. 3a reports as ≈90% at 4 KB. Returns 0 if
// there is no total, the total is empty (avoiding a 0/0 NaN), or the map
// holds only nil/zero-count histograms.
func HardwareShare(stages map[string]*sim.Histogram) float64 {
	tot := safeHist(stages["total"])
	if tot.Count() == 0 || tot.Mean() == 0 {
		return 0
	}
	hw := 0.0
	for _, n := range []string{"firmware", "update", "resume"} {
		if h := safeHist(stages[n]); h.Count() > 0 {
			// Sum of per-fault means: stages may not appear on every
			// fault, so weight by occurrence count relative to totals.
			hw += h.Mean() * float64(h.Count()) / float64(tot.Count())
		}
	}
	return finite(hw / tot.Mean())
}
