package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"npf/internal/sim"
)

// Series is one sampler's materialized output: a shared time axis plus one
// equally-long column of float64 values per metric name. All exporters are
// byte-reproducible given a seed: column order is Names (sorted), floats
// are formatted with strconv's shortest round-trip form, and timestamps are
// virtual time.
type Series struct {
	Interval sim.Time             `json:"interval_ns"`
	Times    []sim.Time           `json:"times_ns"`
	Names    []string             `json:"names"`
	Cols     map[string][]float64 `json:"columns"`
}

// formatFloat renders v in the shortest form that round-trips, with NaN and
// infinities scrubbed to 0 so no exporter can emit an unparseable cell.
func formatFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV writes the series as rows of time_us plus one column per metric.
func (s *Series) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("time_us")
	for _, name := range s.Names {
		bw.WriteByte(',')
		bw.WriteString(name)
	}
	bw.WriteByte('\n')
	for i, ts := range s.Times {
		bw.WriteString(formatFloat(ts.Micros()))
		for _, name := range s.Names {
			bw.WriteByte(',')
			bw.WriteString(formatFloat(s.Cols[name][i]))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteJSON writes the series as one indented JSON document. encoding/json
// sorts map keys, so the output is deterministic.
func (s *Series) WriteJSON(w io.Writer) error {
	if s == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// openMetricsName maps a dotted metric name onto the OpenMetrics charset.
func openMetricsName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteOpenMetrics writes a Prometheus/OpenMetrics text snapshot of the
// final sampled value of every metric, suitable for scraping or diffing.
// Dots in metric names become underscores; the snapshot is terminated with
// the mandatory "# EOF" marker.
func (s *Series) WriteOpenMetrics(w io.Writer) error {
	if s == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	last := len(s.Times) - 1
	for _, name := range s.Names {
		om := openMetricsName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", om)
		fmt.Fprintf(bw, "%s %s\n", om, formatFloat(s.Cols[name][last]))
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

// sparkChars is the unicode eighth-block ramp sparklines draw from.
var sparkChars = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a fixed-width unicode sparkline, resampling by
// taking the maximum of each bucket (transients must stay visible). A flat
// series renders as all-low.
func Sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	if width > len(vals) {
		width = len(vals)
	}
	buckets := make([]float64, width)
	for i := range buckets {
		lo := i * len(vals) / width
		hi := (i + 1) * len(vals) / width
		if hi <= lo {
			hi = lo + 1
		}
		m := vals[lo]
		for _, v := range vals[lo+1 : hi] {
			if v > m {
				m = v
			}
		}
		buckets[i] = m
	}
	min, max := buckets[0], buckets[0]
	for _, v := range buckets {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range buckets {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(sparkChars)-1))
		}
		b.WriteRune(sparkChars[idx])
	}
	return b.String()
}

// WriteSparklines renders every column as one sparkline row with its
// min/max/last values — the quick terminal view of a run's dynamics.
func (s *Series) WriteSparklines(w io.Writer, width int) error {
	if s == nil {
		return nil
	}
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d samples, every %s of virtual time\n", len(s.Times), s.Interval)
	for _, name := range s.Names {
		col := s.Cols[name]
		min, max := col[0], col[0]
		for _, v := range col {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		fmt.Fprintf(bw, "%-32s %-*s min=%s max=%s last=%s\n",
			name, width, Sparkline(col, width),
			formatFloat(min), formatFloat(max), formatFloat(col[len(col)-1]))
	}
	return bw.Flush()
}

// Digest condenses the series — axis, names, every cell — into one FNV-1a
// hash, the compact replay-identity check for time-series output.
func (s *Series) Digest() uint64 {
	if s == nil {
		return 0
	}
	h := fnvOffset
	h = fnvInt(h, int64(s.Interval))
	for _, ts := range s.Times {
		h = fnvInt(h, int64(ts))
	}
	for _, name := range s.Names {
		h = fnvStr(h, name)
		for _, v := range s.Cols[name] {
			h = fnvInt(h, int64(math.Float64bits(v)))
		}
	}
	return h
}

// DigestSeries folds several series' digests order-invariantly (sorted
// before folding): under -parallel N the per-engine sampler set is built in
// nondeterministic registration order, and a digest of the set must not
// depend on it.
func DigestSeries(set []*Series) uint64 {
	ds := make([]uint64, 0, len(set))
	for _, s := range set {
		ds = append(ds, s.Digest())
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	h := fnvOffset
	for _, d := range ds {
		h = fnvInt(h, int64(d))
	}
	return h
}

// WriteSeriesSet writes several samplers' series as one CSV stream of
// anonymous sections, each introduced by a "# series" comment line. The
// sections are sorted by their rendered content, not by slice position:
// under -parallel N, engines (and thus samplers) register in scheduling
// order, and the artifact must be byte-identical for any worker count.
// Sections carry no engine index for the same reason.
func WriteSeriesSet(w io.Writer, set []*Series) error {
	sections := make([]string, 0, len(set))
	for _, s := range set {
		if s == nil {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "# series interval_ns=%d samples=%d metrics=%d\n",
			int64(s.Interval), len(s.Times), len(s.Names))
		if err := s.WriteCSV(&b); err != nil {
			return err
		}
		sections = append(sections, b.String())
	}
	sort.Strings(sections)
	for _, sec := range sections {
		if _, err := io.WriteString(w, sec); err != nil {
			return err
		}
	}
	return nil
}

// ReadSeriesSet parses a WriteSeriesSet stream back into its sections, in
// file order. It tolerates a bare single-series CSV (no "# series" header).
func ReadSeriesSet(r io.Reader) ([]*Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var (
		set []*Series
		cur *Series
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# series") {
			cur = &Series{Cols: map[string][]float64{}}
			for _, f := range strings.Fields(line) {
				if v, ok := strings.CutPrefix(f, "interval_ns="); ok {
					n, err := strconv.ParseInt(v, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("series line %d: bad %q", lineNo, f)
					}
					cur.Interval = sim.Time(n)
				}
			}
			set = append(set, cur)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "time_us") {
			if cur == nil { // bare CSV without a section header
				cur = &Series{Cols: map[string][]float64{}}
				set = append(set, cur)
			}
			cur.Names = strings.Split(line, ",")[1:]
			for _, name := range cur.Names {
				cur.Cols[name] = nil
			}
			continue
		}
		if cur == nil || cur.Names == nil {
			return nil, fmt.Errorf("series line %d: data before header", lineNo)
		}
		cells := strings.Split(line, ",")
		if len(cells) != len(cur.Names)+1 {
			return nil, fmt.Errorf("series line %d: %d cells, want %d", lineNo, len(cells), len(cur.Names)+1)
		}
		tv, err := strconv.ParseFloat(cells[0], 64)
		if err != nil {
			return nil, fmt.Errorf("series line %d: bad time %q", lineNo, cells[0])
		}
		cur.Times = append(cur.Times, sim.Time(tv*float64(sim.Microsecond)))
		for i, name := range cur.Names {
			v, err := strconv.ParseFloat(cells[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("series line %d: bad value %q", lineNo, cells[i+1])
			}
			cur.Cols[name] = append(cur.Cols[name], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}
