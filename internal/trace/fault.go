package trace

import (
	"fmt"
	"io"
	"sort"

	"npf/internal/sim"
)

// This file is the causal side of the tracer: every network page fault gets
// a FaultID minted at the device that detected it (NIC or HCA), and the
// stages of its lifecycle — firmware report, backup-ring residency, driver
// service, IOMMU update, resume — are recorded as causally-linked events in
// a bounded ring (a flight recorder). Unlike spans, which describe one
// host's intervals, fault events carry the cross-host edge: the origin node
// of the packet or verb that tripped the fault rides in the record, so a
// post-processing pass (anatomy.go) can answer "which stage, host and layer
// dominated the p99 fault" per registration policy.
//
// The same determinism and cost contracts as spans apply: a nil tracer
// records nothing at zero allocations (//npf:noalloc fences below), event
// order is virtual-time order on one engine, and every export is sorted so
// output is byte-identical for any -parallel/-engines budget.

// FaultID identifies one network page fault end to end. It is minted at the
// detecting device from (node, per-device sequence), so IDs are unique
// across hosts and deterministic given a seed. Zero means "no fault": every
// recording method accepts it and does nothing, so IDs thread through event
// structs unconditionally, exactly like SpanID.
type FaultID uint64

// faultSeqBits is the per-device sequence width; 24 bits of node above it
// comfortably covers the scale-out topologies.
const faultSeqBits = 40

// MintFaultID packs a device node and a per-device sequence number. Node is
// offset by one so node 0's faults are still nonzero IDs.
func MintFaultID(node int64, seq uint64) FaultID {
	return FaultID(uint64(node+1)<<faultSeqBits | (seq & (1<<faultSeqBits - 1)))
}

// Node recovers the minting device's node.
func (f FaultID) Node() int64 { return int64(f>>faultSeqBits) - 1 }

// Seq recovers the per-device sequence number.
func (f FaultID) Seq() uint64 { return uint64(f) & (1<<faultSeqBits - 1) }

// FaultStage enumerates the lifecycle points a fault event can describe.
// The order mirrors the paper's fault anatomy (Figure 2 / Table 2): detect
// and report, park, software service, IOMMU update, resume. The trailing
// context stages (invalidate, reclaim, tcp-retx) are environment events
// recorded with FaultID 0 — they are not part of one fault's path but are
// exactly what a flight-recorder excerpt needs to explain a tail.
type FaultStage uint8

const (
	FSMinted FaultStage = iota
	FSReport
	FSParked
	FSResolverTimeout
	FSOOMBackoff
	FSDriver
	FSPageResolve
	FSCopy
	FSDegradePin
	FSUpdate
	FSResume
	FSDone
	FSInvalidate
	FSReclaim
	FSRetx
	numFaultStages
)

var faultStageNames = [numFaultStages]string{
	"minted", "fault-report", "parked", "resolver-timeout", "oom-backoff",
	"driver", "page-resolve", "copy", "degrade-pin", "update", "resume",
	"done", "invalidate", "reclaim", "tcp-retx",
}

func (s FaultStage) String() string {
	if int(s) < len(faultStageNames) {
		return faultStageNames[s]
	}
	return "?"
}

// FaultEvent is one entry in the flight recorder: a stage of a fault's
// lifecycle (or, with ID 0, a context event such as an invalidation batch,
// a reclaim eviction, or a TCP retransmission episode). A and B are
// stage-specific integer annotations (pages, attempt, descriptor index...).
type FaultEvent struct {
	ID    FaultID
	Stage FaultStage
	At    sim.Time
	Dur   sim.Time
	A, B  int64
}

// FaultRecord accumulates one fault's lifecycle: identity, cross-host
// origin, and the summed duration of every stage. End is -1 while the fault
// is still pending.
type FaultRecord struct {
	ID     FaultID
	Name   string // fault path: recv-rnpf, send-local, rx-drop, rx-backup, tx, ...
	Node   int64  // device node that detected the fault
	Origin int64  // remote node whose op triggered it (-1 when local/unknown)
	Op     int64  // triggering-op annotation: QPN, rx descriptor index, ... (-1 unknown)
	Pages  int
	Start  sim.Time // device detection time
	End    sim.Time // resume-complete time; -1 while pending
	// Retries counts resolver-timeout and OOM-backoff rounds.
	Retries int
	// Stage holds the summed duration recorded per lifecycle stage. Entries
	// overlap by construction (fault-report contains parked; driver contains
	// page-resolve and copy) — anatomy.go does the disjoint attribution.
	Stage [numFaultStages]sim.Time
}

// Total is the detect-to-resume latency (0 while pending).
func (r *FaultRecord) Total() sim.Time {
	if r.End < r.Start {
		return 0
	}
	return r.End - r.Start
}

// Bounds for the lazily-created recorder. The event ring overwrites oldest
// (flight-recorder semantics: the recent past survives); the completed
// record store drops newest beyond the cap, counted, like spans.
const (
	DefaultMaxFaultEvents  = 1 << 16
	DefaultMaxFaultRecords = 1 << 20
)

// flightRecorder is the fault-event side of a tracer, created on first use
// so span-only tracers pay nothing.
type flightRecorder struct {
	maxEvents int
	events    []FaultEvent
	next      int // overwrite cursor once the ring is full
	evDropped uint64

	maxRecords int
	pending    map[FaultID]int // FaultID -> index into records
	records    []FaultRecord   // completion-ordered once finalized; pending interleaved
	done       int             // completed record count
	recDropped uint64
}

func (t *Tracer) rec() *flightRecorder {
	if t.fr == nil {
		me, mr := t.MaxFaultEvents, t.MaxFaultRecords
		if me == 0 {
			me = DefaultMaxFaultEvents
		}
		if mr == 0 {
			mr = DefaultMaxFaultRecords
		}
		t.fr = &flightRecorder{
			maxEvents:  me,
			maxRecords: mr,
			pending:    make(map[FaultID]int),
		}
	}
	return t.fr
}

func (fr *flightRecorder) add(e FaultEvent) {
	if fr.maxEvents > 0 && len(fr.events) >= fr.maxEvents {
		fr.events[fr.next] = e
		fr.next = (fr.next + 1) % fr.maxEvents
		fr.evDropped++
		return
	}
	fr.events = append(fr.events, e)
}

// FaultMinted records a fault's birth at the detecting device and opens its
// record. start is the device's detection time (known before the handler
// runs, like BeginAt); origin is the remote node whose op tripped the fault
// (-1 for local); op is a transport-specific identity annotation.
//
// The fence covers the disabled (nil-tracer) path; the enabled path may
// grow the recorder.
//
//npf:noalloc
func (t *Tracer) FaultMinted(id FaultID, name string, start sim.Time, origin, op int64, pages int) {
	if t == nil || id == 0 {
		return
	}
	t.faultMinted(id, name, start, origin, op, pages) //npf:allocok — enabled path; recorder growth is the tracer's job
}

func (t *Tracer) faultMinted(id FaultID, name string, start sim.Time, origin, op int64, pages int) {
	fr := t.rec()
	fr.add(FaultEvent{ID: id, Stage: FSMinted, At: start, A: origin, B: int64(pages)})
	if fr.maxRecords > 0 && len(fr.records) >= fr.maxRecords {
		fr.recDropped++
		return
	}
	fr.records = append(fr.records, FaultRecord{
		ID: id, Name: name, Node: id.Node(), Origin: origin, Op: op,
		Pages: pages, Start: start, End: -1,
	})
	fr.pending[id] = len(fr.records) - 1
}

// FaultStageAt records one lifecycle stage of fault id: the event enters
// the flight-recorder ring and dur accrues to the fault's record. a and b
// are stage-specific annotations.
//
//npf:noalloc
func (t *Tracer) FaultStageAt(id FaultID, stage FaultStage, at, dur sim.Time, a, b int64) {
	if t == nil || id == 0 {
		return
	}
	t.faultStage(id, stage, at, dur, a, b) //npf:allocok — enabled path; recorder growth is the tracer's job
}

func (t *Tracer) faultStage(id FaultID, stage FaultStage, at, dur sim.Time, a, b int64) {
	fr := t.rec()
	fr.add(FaultEvent{ID: id, Stage: stage, At: at, Dur: dur, A: a, B: b})
	if i, ok := fr.pending[id]; ok {
		r := &fr.records[i]
		r.Stage[stage] += dur
		if stage == FSResolverTimeout || stage == FSOOMBackoff {
			r.Retries++
		}
	}
}

// FaultDone closes fault id's record at the resume-complete time.
//
//npf:noalloc
func (t *Tracer) FaultDone(id FaultID, at sim.Time) {
	if t == nil || id == 0 {
		return
	}
	t.faultDone(id, at) //npf:allocok — enabled path; recorder growth is the tracer's job
}

func (t *Tracer) faultDone(id FaultID, at sim.Time) {
	fr := t.rec()
	fr.add(FaultEvent{ID: id, Stage: FSDone, At: at})
	if i, ok := fr.pending[id]; ok {
		fr.records[i].End = at
		fr.done++
		delete(fr.pending, id)
	}
}

// FaultContext records an environment event (FaultID 0) in the flight
// recorder: IOMMU invalidation batches, reclaim evictions, TCP retx
// episodes. These never accrue to a record but show up in excerpts, which
// is what makes a tail explainable ("the p99 fault sat behind an
// invalidation storm").
//
//npf:noalloc
func (t *Tracer) FaultContext(stage FaultStage, at, dur sim.Time, a, b int64) {
	if t == nil {
		return
	}
	t.rec().add(FaultEvent{Stage: stage, At: at, Dur: dur, A: a, B: b}) //npf:allocok — enabled path; recorder growth is the tracer's job
}

// FaultRecords returns a copy of the completed fault records, in completion
// order (deterministic given a seed). Pending faults are excluded.
func (t *Tracer) FaultRecords() []FaultRecord {
	if t == nil || t.fr == nil {
		return nil
	}
	out := make([]FaultRecord, 0, t.fr.done)
	for i := range t.fr.records {
		if t.fr.records[i].End >= t.fr.records[i].Start {
			out = append(out, t.fr.records[i])
		}
	}
	return out
}

// FaultEvents returns the flight-recorder ring, oldest event first.
func (t *Tracer) FaultEvents() []FaultEvent {
	if t == nil || t.fr == nil {
		return nil
	}
	fr := t.fr
	out := make([]FaultEvent, 0, len(fr.events))
	if len(fr.events) >= fr.maxEvents && fr.maxEvents > 0 {
		out = append(out, fr.events[fr.next:]...)
		out = append(out, fr.events[:fr.next]...)
	} else {
		out = append(out, fr.events...)
	}
	return out
}

// FlightExcerpt returns the last n flight-recorder events sorted by
// (At, ID, Stage, A, B) — the dump attached to failing chaos reports.
func (t *Tracer) FlightExcerpt(n int) []FaultEvent {
	ev := t.FaultEvents()
	if len(ev) > n {
		ev = ev[len(ev)-n:]
	}
	SortFaultEvents(ev)
	return ev
}

// SortFaultEvents orders events by (At, ID, Stage, A, B) — a total order,
// so sorted output is byte-identical across engine budgets.
func SortFaultEvents(ev []FaultEvent) {
	sort.Slice(ev, func(i, j int) bool {
		a, b := ev[i], ev[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
}

// PendingFaults reports faults minted but not yet done.
func (t *Tracer) PendingFaults() int {
	if t == nil || t.fr == nil {
		return 0
	}
	return len(t.fr.pending)
}

// FaultRecordCount reports completed fault records.
func (t *Tracer) FaultRecordCount() int {
	if t == nil || t.fr == nil {
		return 0
	}
	return t.fr.done
}

// DroppedFaultEvents reports ring entries overwritten by newer events.
func (t *Tracer) DroppedFaultEvents() uint64 {
	if t == nil || t.fr == nil {
		return 0
	}
	return t.fr.evDropped
}

// DroppedFaultRecords reports faults whose records were not stored because
// MaxFaultRecords was reached (their ring events still exist).
func (t *Tracer) DroppedFaultRecords() uint64 {
	if t == nil || t.fr == nil {
		return 0
	}
	return t.fr.recDropped
}

// DigestFaultEvents folds an event slice into an FNV-1a hash, the
// flight-dump fingerprint printed with chaos failures.
func DigestFaultEvents(ev []FaultEvent) uint64 {
	h := fnvOffset
	for _, e := range ev {
		h = fnvInt(h, int64(e.ID))
		h = fnvInt(h, int64(e.Stage))
		h = fnvInt(h, int64(e.At))
		h = fnvInt(h, int64(e.Dur))
		h = fnvInt(h, e.A)
		h = fnvInt(h, e.B)
	}
	return h
}

// WriteFlightRecorder renders events one per line:
//
//	@    1234.5us  fault 3:17       driver            dur=     56.0us a=4 b=0
func WriteFlightRecorder(w io.Writer, ev []FaultEvent) {
	for _, e := range ev {
		id := "-"
		if e.ID != 0 {
			id = fmt.Sprintf("%d:%d", e.ID.Node(), e.ID.Seq())
		}
		fmt.Fprintf(w, "@%10.1fus  fault %-10s %-16s dur=%10.1fus a=%d b=%d\n",
			float64(e.At)/1e3, id, e.Stage.String(), float64(e.Dur)/1e3, e.A, e.B)
	}
}
