// Package trace is the deterministic telemetry subsystem every layer of the
// stack reports into: a span recorder keyed off virtual time (sim.Time), a
// metrics registry (counters, gauges, latency histograms), and exporters —
// Chrome trace_event JSON (loadable in Perfetto / chrome://tracing) and text
// summaries.
//
// Design constraints, in order:
//
//   - Determinism. Given a seed, two runs of the same scenario produce
//     byte-identical exports: span IDs are sequential, metric iteration is
//     sorted, timestamps are virtual time, and no wall clock or map-order
//     dependence leaks into any output.
//   - A disabled tracer costs ~zero. "Disabled" is a nil *Tracer: every
//     method is nil-safe and returns before allocating, so instrumented hot
//     paths pay one pointer comparison. Metric handles obtained from a nil
//     tracer are nil and equally inert. BenchmarkTracerDisabled and
//     TestTracerDisabledNoAlloc enforce the no-allocation property.
//   - Hardware/driver layering is preserved: devices (internal/nic,
//     internal/rc) open root spans when they detect a fault and hand the
//     SpanID to the driver inside the fault event, mirroring how the real
//     firmware tags fault reports with a token the driver echoes back.
//
// The span vocabulary for the NPF lifecycle (Figure 2 / Figure 3a):
//
//	npf            root span, one per network page fault, named after the
//	               fault path (recv-rnpf, send-local, rx-drop, rx-backup, ...)
//	└ firmware     device detects the fault and raises the interrupt [hw]
//	└ parked       backup-ring residency of the faulting packet (Ethernet)
//	└ driver       driver + OS produce the pages [sw]
//	  └ page-resolve   the OS fault-in portion, minor or major
//	  └ copy           backup-resolver packet merge (memcpy)
//	└ update       IOMMU page-table update [sw+hw]
//	└ resume       device notices and resumes the operation [hw]
//
// Invalidation flows use cat "inv"; RNR suspension windows and RDMA read
// drop windows use cat "rc"; TCP retransmission episodes use cat "tcp".
package trace

import "npf/internal/sim"

// SpanID identifies a recorded span. Zero means "no span": every Tracer
// method accepts it and does nothing, so IDs can be threaded through event
// structs unconditionally.
type SpanID int64

// Arg is one key/value annotation on a span. Values are strings so export
// needs no reflection; use ArgInt for numbers.
type Arg struct {
	Key string
	Val string
}

// Span is one recorded interval of virtual time. End is -1 while the span
// is open; exporters clamp open spans to the export time.
type Span struct {
	ID     SpanID
	Parent SpanID // 0 for root spans
	Cat    string // coarse grouping: "npf", "npf.stage", "inv", "rc", "tcp", "pin"
	Name   string
	Start  sim.Time
	End    sim.Time
	Args   []Arg
}

// Open reports whether the span has not been ended.
func (s *Span) Open() bool { return s.End < 0 }

// Dur returns the span's duration (0 for open spans).
func (s *Span) Dur() sim.Time {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// DefaultMaxSpans bounds recorded spans per tracer so an unexpectedly hot
// scenario cannot exhaust memory; spans beyond the cap are counted, not
// stored. Raise Tracer.MaxSpans for long captures.
const DefaultMaxSpans = 1 << 21

// Tracer records spans and metrics against one engine's virtual clock. A
// nil Tracer is the disabled state: all methods are no-ops.
type Tracer struct {
	eng *sim.Engine

	// MaxSpans caps stored spans (DefaultMaxSpans unless changed before
	// recording starts). <= 0 means unlimited.
	MaxSpans int

	spans   []Span
	dropped uint64

	// MaxFaultEvents / MaxFaultRecords bound the fault flight recorder
	// (fault.go); 0 means the defaults, < 0 unlimited. fr is created on
	// first fault event so span-only tracers pay nothing.
	MaxFaultEvents  int
	MaxFaultRecords int
	fr              *flightRecorder

	counters map[string]*Counter
	gauges   map[string]*Gauge
	lats     map[string]*LatencyHist

	// probes are read-only gauge callbacks evaluated at every sampler tick
	// (see Probe); sampler is the singleton started by StartSampler.
	probes  map[string][]func() float64
	sampler *Sampler
}

// New returns an enabled tracer recording against eng's clock.
func New(eng *sim.Engine) *Tracer {
	return &Tracer{
		eng:      eng,
		MaxSpans: DefaultMaxSpans,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		lats:     make(map[string]*LatencyHist),
	}
}

// Enabled reports whether the tracer records anything. It is the cheap
// guard instrumentation sites use before doing span-only work (building
// argument strings, translating addresses for annotation, ...).
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the engine's current virtual time (0 when disabled).
func (t *Tracer) Now() sim.Time {
	if t == nil {
		return 0
	}
	return t.eng.Now()
}

// DroppedSpans reports spans discarded because MaxSpans was reached.
func (t *Tracer) DroppedSpans() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// SpanCount reports recorded spans.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns a copy of all recorded spans, in recording order (which is
// deterministic given a seed).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return append([]Span(nil), t.spans...)
}

// Begin opens a span starting now. parent may be 0 for a root span.
//
// The fence covers the disabled (nil-tracer) path — the runtime
// TestTracerDisabledNoAlloc gate in static form; the enabled path is
// allowed to grow the span store.
//
//npf:noalloc
func (t *Tracer) Begin(parent SpanID, cat, name string) SpanID {
	if t == nil {
		return 0
	}
	return t.BeginAt(parent, cat, name, t.eng.Now()) //npf:allocok — enabled path; span store growth is the tracer's job
}

// BeginAt opens a span with an explicit start time (device paths often know
// the fault-detection time before the handler runs).
func (t *Tracer) BeginAt(parent SpanID, cat, name string, start sim.Time) SpanID {
	if t == nil {
		return 0
	}
	if t.MaxSpans > 0 && len(t.spans) >= t.MaxSpans {
		t.dropped++
		return 0
	}
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Cat: cat, Name: name, Start: start, End: -1})
	return id
}

// Span records a closed interval [start, end) in one call — the idiom for
// cost-model layers that compute a duration rather than living through it.
func (t *Tracer) Span(parent SpanID, cat, name string, start, end sim.Time) SpanID {
	id := t.BeginAt(parent, cat, name, start)
	t.EndAt(id, end)
	return id
}

// End closes span id at the current virtual time. Allocation-free on both
// the disabled and the enabled path (EndAt writes in place), so the whole
// body sits inside the fence with no escapes.
//
//npf:noalloc
func (t *Tracer) End(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	t.EndAt(id, t.eng.Now())
}

// EndAt closes span id at an explicit time. Ending an already-closed span
// overwrites its end (last write wins); ending span 0 is a no-op.
func (t *Tracer) EndAt(id SpanID, end sim.Time) {
	if t == nil || id == 0 || int(id) > len(t.spans) {
		return
	}
	t.spans[id-1].End = end
}

// ArgStr annotates span id with a string value.
func (t *Tracer) ArgStr(id SpanID, key, val string) {
	if t == nil || id == 0 || int(id) > len(t.spans) {
		return
	}
	s := &t.spans[id-1]
	s.Args = append(s.Args, Arg{Key: key, Val: val})
}

// ArgInt annotates span id with an integer value.
//
//npf:noalloc
func (t *Tracer) ArgInt(id SpanID, key string, val int64) {
	if t == nil || id == 0 {
		return
	}
	t.ArgStr(id, key, itoa(val)) //npf:allocok — enabled path; formatting and the Args append allocate by design
}

// itoa is strconv.FormatInt(v, 10) without pulling fmt into the hot path.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
