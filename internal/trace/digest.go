package trace

// Digest condenses everything a tracer recorded — every span field, every
// argument, and the full metrics snapshot — into one FNV-1a hash. Two runs
// of the same seeded scenario must produce the same digest; the chaos
// scenario runner uses this as its byte-identical-replay check without
// holding two full span sets in memory.
func (t *Tracer) Digest() uint64 {
	if t == nil {
		return 0
	}
	h := fnvOffset
	for i := range t.spans {
		s := &t.spans[i]
		h = fnvInt(h, int64(s.ID))
		h = fnvInt(h, int64(s.Parent))
		h = fnvStr(h, s.Cat)
		h = fnvStr(h, s.Name)
		h = fnvInt(h, int64(s.Start))
		h = fnvInt(h, int64(s.End))
		for _, a := range s.Args {
			h = fnvStr(h, a.Key)
			h = fnvStr(h, a.Val)
		}
	}
	h = fnvStr(h, t.MetricsSnapshot())
	return h
}

// DigestAll folds several tracers' digests in order (multi-engine runs).
func DigestAll(tracers []*Tracer) uint64 {
	h := fnvOffset
	for _, tr := range tracers {
		h = fnvInt(h, int64(tr.Digest()))
	}
	return h
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvInt(h uint64, v int64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime
	}
	return h
}

func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	// Terminate so ("ab","c") and ("a","bc") differ.
	h ^= 0xff
	h *= fnvPrime
	return h
}
