package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"npf/internal/sim"
)

// TestStageTableGuards pins the report helpers' behaviour on degenerate
// inputs: empty maps, zero-count histograms, and nil entries must render
// zero rows — never divide by zero, NaN, or panic.
func TestStageTableGuards(t *testing.T) {
	cases := map[string]map[string]*sim.Histogram{
		"empty map":       {},
		"nil total":       {"total": nil},
		"nil stage":       {"firmware": nil, "total": &sim.Histogram{}},
		"zero-count hist": {"firmware": {}, "update": {}, "total": {}},
	}
	for name, stages := range cases {
		var b bytes.Buffer
		WriteStageTable(&b, stages) // must not panic
		out := b.String()
		if !strings.HasPrefix(out, "stage") {
			t.Fatalf("%s: missing header: %q", name, out)
		}
		if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
			t.Fatalf("%s: non-finite cell in table:\n%s", name, out)
		}
		if got := HardwareShare(stages); got != 0 {
			t.Fatalf("%s: HardwareShare = %v, want 0", name, got)
		}
	}
}

// TestHardwareShareFinite: even a pathological histogram (NaN samples fed
// directly) must not leak NaN out of HardwareShare or the stage table.
func TestHardwareShareFinite(t *testing.T) {
	bad := &sim.Histogram{}
	bad.Add(math.NaN())
	tot := &sim.Histogram{}
	tot.Add(100)
	stages := map[string]*sim.Histogram{"firmware": bad, "total": tot}
	if got := HardwareShare(stages); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("HardwareShare = %v, want finite", got)
	}
	var b bytes.Buffer
	WriteStageTable(&b, stages)
	if strings.Contains(b.String(), "NaN") {
		t.Fatalf("NaN leaked into stage table:\n%s", b.String())
	}
}

// TestHardwareShareStillComputes sanity-checks the happy path after the
// guards: hw-stage mass over total mean.
func TestHardwareShareStillComputes(t *testing.T) {
	h := func(vals ...float64) *sim.Histogram {
		hh := &sim.Histogram{}
		for _, v := range vals {
			hh.Add(v)
		}
		return hh
	}
	stages := map[string]*sim.Histogram{
		"firmware": h(10, 10),
		"update":   h(20, 20),
		"resume":   h(60, 60),
		"driver":   h(10, 10),
		"total":    h(100, 100),
	}
	if got := HardwareShare(stages); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("HardwareShare = %v, want 0.9", got)
	}
}
