package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"npf/internal/sim"
)

func us(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }

func TestSpanLifecycle(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	var root, child SpanID
	eng.After(us(10), func() {
		root = tr.Begin(0, "npf", "recv-rnpf")
		tr.ArgInt(root, "pages", 4)
	})
	eng.After(us(15), func() {
		child = tr.Begin(root, "npf.stage", "driver")
	})
	eng.After(us(20), func() { tr.End(child) })
	eng.After(us(30), func() { tr.End(root) })
	eng.Run()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	r, c := spans[0], spans[1]
	if r.ID != root || r.Parent != 0 || r.Cat != "npf" || r.Name != "recv-rnpf" {
		t.Errorf("bad root span: %+v", r)
	}
	if r.Start != us(10) || r.End != us(30) || r.Dur() != us(20) {
		t.Errorf("root times: start=%v end=%v", r.Start, r.End)
	}
	if len(r.Args) != 1 || r.Args[0].Key != "pages" || r.Args[0].Val != "4" {
		t.Errorf("root args: %+v", r.Args)
	}
	if c.Parent != root || c.Start != us(15) || c.End != us(20) {
		t.Errorf("bad child span: %+v", c)
	}
}

func TestRetrospectiveSpanAndOpenSpans(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	id := tr.Span(0, "inv", "invalidate", us(5), us(9))
	s := tr.Spans()[0]
	if s.ID != id || s.Start != us(5) || s.End != us(9) {
		t.Fatalf("retrospective span: %+v", s)
	}
	open := tr.Begin(0, "tcp", "retx-episode")
	if got := tr.Spans()[1]; !got.Open() {
		t.Fatalf("span %d should be open: %+v", open, got)
	}
}

func TestSpanCapDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	tr.MaxSpans = 2
	a := tr.Begin(0, "x", "a")
	b := tr.Begin(0, "x", "b")
	c := tr.Begin(0, "x", "c")
	if a == 0 || b == 0 {
		t.Fatalf("first two spans should record: %d %d", a, b)
	}
	if c != 0 {
		t.Fatalf("over-cap Begin should return 0, got %d", c)
	}
	if tr.DroppedSpans() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.DroppedSpans())
	}
	// Operations on the zero ID are no-ops, not panics.
	tr.End(c)
	tr.ArgInt(c, "k", 1)
	tr.ArgStr(c, "k", "v")
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	id := tr.Begin(0, "npf", "x")
	if id != 0 {
		t.Fatalf("nil Begin returned %d", id)
	}
	tr.End(id)
	tr.ArgInt(id, "k", 1)
	tr.Count("c", 3)
	if c := tr.Counter("c"); c != nil {
		t.Fatal("nil tracer returned non-nil counter")
	}
	var cnt *Counter
	cnt.Inc()
	cnt.Add(7)
	if cnt.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	var l *LatencyHist
	l.Observe(us(5))
	if got := tr.MetricsSnapshot(); got != "" {
		t.Fatalf("nil snapshot = %q", got)
	}
	if tr.Spans() != nil || tr.SpanCount() != 0 {
		t.Fatal("nil tracer has spans")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
}

// zeroProbe is a package-level probe fn so the alloc tests below measure
// the nil tracer's Probe path, not closure construction at the call site.
func zeroProbe() float64 { return 0 }

// TestTracerDisabledNoAlloc is the contract the instrumented hot paths rely
// on: a disabled (nil) tracer allocates nothing — including the sampler
// surface, since SetTracer registers probes unconditionally.
func TestTracerDisabledNoAlloc(t *testing.T) {
	var tr *Tracer
	c := tr.Counter("core.npfs")
	g := tr.Gauge("nic.rx_ring_occupancy")
	l := tr.Latency("core.npf_total_us")
	s := tr.StartSampler(us(10))
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			t.Fatal("enabled")
		}
		id := tr.Begin(0, "npf", "recv-rnpf")
		tr.ArgInt(id, "pages", 4)
		tr.End(id)
		c.Inc()
		c.Add(3)
		g.Set(5)
		l.Observe(us(7))
		tr.Count("core.npfs", 1)
		tr.Probe("nic.rx_ring_occupancy", zeroProbe)
		fid := MintFaultID(2, 7)
		tr.FaultMinted(fid, "rx-drop", us(1), 1, 0, 4)
		tr.FaultStageAt(fid, FSReport, us(1), us(2), 0, 0)
		tr.FaultContext(FSInvalidate, us(3), us(1), 0, 0)
		tr.FaultDone(fid, us(9))
		if tr.FaultRecordCount() != 0 || tr.PendingFaults() != 0 {
			t.Fatal("nil tracer recorded a fault")
		}
		if tr.DroppedFaultEvents() != 0 || tr.DroppedFaultRecords() != 0 || tr.DroppedSpans() != 0 {
			t.Fatal("nil tracer dropped something")
		}
		s.SetMaxSamples(4)
		if s.Len() != 0 || s.Truncated() || s.Interval() != 0 || s.Series() != nil {
			t.Fatal("nil sampler is not inert")
		}
		if tr.Sampler() != nil {
			t.Fatal("nil tracer has a sampler")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f per op, want 0", allocs)
	}
}

func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	c := tr.Counter("core.npfs")
	g := tr.Gauge("nic.rx_ring_occupancy")
	l := tr.Latency("core.npf_total_us")
	s := tr.StartSampler(us(10))
	b.ReportAllocs()
	fid := MintFaultID(2, 7)
	for i := 0; i < b.N; i++ {
		id := tr.Begin(0, "npf", "recv-rnpf")
		tr.ArgInt(id, "pages", 4)
		tr.End(id)
		c.Inc()
		g.Set(5)
		l.Observe(us(7))
		tr.Probe("nic.rx_ring_occupancy", zeroProbe)
		tr.FaultMinted(fid, "rx-drop", us(1), 1, 0, 4)
		tr.FaultStageAt(fid, FSReport, us(1), us(2), 0, 0)
		tr.FaultContext(FSInvalidate, us(3), us(1), 0, 0)
		tr.FaultDone(fid, us(9))
		s.SetMaxSamples(4)
	}
}

func BenchmarkTracerEnabled(b *testing.B) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	tr.MaxSpans = 0 // unlimited
	c := tr.Counter("core.npfs")
	l := tr.Latency("core.npf_total_us")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := tr.Begin(0, "npf", "recv-rnpf")
		tr.ArgInt(id, "pages", 4)
		tr.End(id)
		c.Inc()
		l.Observe(us(7))
	}
}

func TestMetricsSnapshotSortedAndStable(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	// Register out of order; snapshot must sort within each kind.
	tr.Counter("z.last").Add(2)
	tr.Counter("a.first").Inc()
	tr.Gauge("m.depth").Set(3.5)
	tr.Latency("k.lat_us").Observe(us(10))
	tr.Latency("k.lat_us").Observe(us(20))
	s1 := tr.MetricsSnapshot()
	s2 := tr.MetricsSnapshot()
	if s1 != s2 {
		t.Fatal("snapshot not stable across calls")
	}
	lines := strings.Split(strings.TrimSpace(s1), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), s1)
	}
	if !strings.HasPrefix(lines[0], "counter a.first") ||
		!strings.HasPrefix(lines[1], "counter z.last") {
		t.Fatalf("counters not sorted:\n%s", s1)
	}
	if !strings.Contains(lines[3], "n=2") || !strings.Contains(lines[3], "mean=15.000") {
		t.Fatalf("latency line wrong: %s", lines[3])
	}
	// Same-name handles share state.
	if tr.Counter("a.first").Value() != 1 {
		t.Fatal("counter handle not shared")
	}
}

// buildScenario records an identical synthetic workload on a fresh tracer;
// used to check byte-reproducibility of the exports.
func buildScenario(t *testing.T) *Tracer {
	t.Helper()
	eng := sim.NewEngine(42)
	tr := New(eng)
	for i := 0; i < 20; i++ {
		base := us(int64(i * 300))
		root := tr.BeginAt(0, "npf", "recv-rnpf", base)
		tr.ArgInt(root, "pages", int64(i%3+1))
		tr.Span(root, "npf.stage", "firmware", base, base+us(133))
		d := tr.Span(root, "npf.stage", "driver", base+us(133), base+us(138))
		tr.ArgInt(d, "pages", int64(i%3+1))
		tr.Span(root, "npf.stage", "update", base+us(138), base+us(173))
		tr.Span(root, "npf.stage", "resume", base+us(173), base+us(213))
		tr.EndAt(root, base+us(213))
		tr.Counter("core.npfs").Inc()
		tr.Latency("core.npf_total_us").Observe(us(213))
	}
	tr.Begin(0, "tcp", "retx-episode") // leave one open
	return tr
}

func TestExportsByteIdentical(t *testing.T) {
	a, b := buildScenario(t), buildScenario(t)
	var ja, jb bytes.Buffer
	if err := a.WriteChromeTrace(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChromeTrace(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatal("Chrome traces differ between identical runs")
	}
	if a.MetricsSnapshot() != b.MetricsSnapshot() {
		t.Fatal("metric snapshots differ between identical runs")
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(ja.Bytes(), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// 20 roots × 5 spans + 1 open + process meta + 21 thread metas.
	if len(decoded.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
	var xs, ms int
	for _, e := range decoded.TraceEvents {
		switch e["ph"] {
		case "X":
			xs++
		case "M":
			ms++
		}
	}
	if xs != 101 {
		t.Errorf("got %d X events, want 101", xs)
	}
	if ms != 22 {
		t.Errorf("got %d M events, want 22", ms)
	}
}

func TestReportHelpers(t *testing.T) {
	tr := buildScenario(t)
	spans := tr.Spans()

	top := TopSlowest(spans, "npf", 3)
	if len(top) != 3 {
		t.Fatalf("top-k returned %d", len(top))
	}
	for _, r := range top {
		if r.Dur != us(213) {
			t.Errorf("slowest NPF dur %v, want 213us", r.Dur)
		}
	}
	// Ties break on span ID: earliest first.
	if top[0].Span.ID > top[1].Span.ID {
		t.Error("tie-break not by span ID")
	}

	stages := StageBreakdown(spans, "npf")
	if got := stages["total"].Count(); got != 20 {
		t.Fatalf("total count %d, want 20", got)
	}
	if got := stages["firmware"].Mean(); got != 133 {
		t.Fatalf("firmware mean %v", got)
	}
	share := HardwareShare(stages)
	want := (133.0 + 35 + 40) / 213
	if share < want-0.001 || share > want+0.001 {
		t.Fatalf("hardware share %.4f, want %.4f", share, want)
	}

	var tree bytes.Buffer
	WriteTree(&tree, spans)
	out := tree.String()
	if !strings.Contains(out, "recv-rnpf") || !strings.Contains(out, "firmware") {
		t.Fatalf("tree missing spans:\n%s", out)
	}
	if !strings.Contains(out, "open") {
		t.Fatalf("tree should mark the open span:\n%s", out)
	}
}
