package trace

import "npf/internal/sim"

// DefaultMaxSamples bounds the rows a Sampler stores so a forgotten sampler
// on a very long run cannot exhaust memory. At the default 10ms interval
// this covers ~3 virtual hours. Raise Sampler.MaxSamples (or call
// SetMaxSamples) before the run for longer captures.
const DefaultMaxSamples = 1 << 20

// Sampler snapshots every registered counter and gauge into per-interval
// columns, driven by the simulation clock: it schedules itself on the
// tracer's engine, so two runs of the same seed sample at identical virtual
// times and produce byte-identical series.
//
// Lifecycle: obtain one via Tracer.StartSampler. The sampler takes one
// sample immediately, then re-arms every Interval. When a tick finds the
// engine otherwise idle (no pending events beyond its own), it parks
// instead of re-arming, so Engine.Run still terminates; the parked tick is
// the final row, taken at the first interval boundary after the last
// workload event.
//
// Sampling is read-only with respect to simulation state: probes observe,
// ticks draw no randomness, and tick events interleave between (never
// reorder) workload events, so a scenario's rendered results are identical
// with sampling on or off — only the engine's executed-event count changes.
//
// A nil *Sampler (as returned by a disabled tracer) is inert: every method
// is nil-safe and returns zero values.
type Sampler struct {
	tr       *Tracer
	interval sim.Time
	tickFn   func() // pre-bound so re-arming allocates nothing per tick

	// MaxSamples caps stored rows (DefaultMaxSamples unless changed before
	// the cap is hit). <= 0 means unlimited. Like Tracer.MaxSpans, direct
	// field access panics on a nil handle; use SetMaxSamples from code that
	// may hold a disabled tracer's sampler.
	MaxSamples int

	times     []sim.Time
	cols      map[string][]float64
	truncated bool
	parked    bool
}

// Probe registers fn to be evaluated at every sampler tick and published as
// gauge name. Multiple probes may share one name: their values are summed,
// which keeps aggregation across hosts/stacks commutative and therefore
// independent of registration order. fn must be read-only with respect to
// simulation state and must not consume randomness. A disabled tracer
// discards the registration.
func (t *Tracer) Probe(name string, fn func() float64) {
	if t == nil {
		return
	}
	if t.probes == nil {
		t.probes = make(map[string][]func() float64)
	}
	t.probes[name] = append(t.probes[name], fn)
}

// StartSampler starts (or returns the already-running) sampler for this
// tracer, ticking every interval of virtual time. The first sample is taken
// synchronously. interval must be positive. A disabled tracer returns nil,
// which is safe to use.
func (t *Tracer) StartSampler(interval sim.Time) *Sampler {
	if t == nil {
		return nil
	}
	if t.sampler != nil {
		return t.sampler
	}
	if interval <= 0 {
		panic("trace: StartSampler interval must be positive")
	}
	s := &Sampler{
		tr:         t,
		interval:   interval,
		MaxSamples: DefaultMaxSamples,
		cols:       make(map[string][]float64),
	}
	s.tickFn = s.tick
	t.sampler = s
	s.sample()
	t.eng.After(interval, s.tickFn)
	return s
}

// Sampler returns the running sampler, or nil if StartSampler has not been
// called (or the tracer is disabled).
func (t *Tracer) Sampler() *Sampler {
	if t == nil {
		return nil
	}
	return t.sampler
}

// SetMaxSamples is the nil-safe way to change MaxSamples.
func (s *Sampler) SetMaxSamples(n int) {
	if s == nil {
		return
	}
	s.MaxSamples = n
}

// Interval returns the sampling interval (0 for a nil sampler).
func (s *Sampler) Interval() sim.Time {
	if s == nil {
		return 0
	}
	return s.interval
}

// Len reports stored rows.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	return len(s.times)
}

// Truncated reports whether rows were dropped because MaxSamples was hit.
func (s *Sampler) Truncated() bool {
	if s == nil {
		return false
	}
	return s.truncated
}

// tick is the event body the sampler schedules on the engine.
func (s *Sampler) tick() {
	s.sample()
	// The engine pops an event before running it, so Pending()==0 here
	// means this tick was the only thing keeping the run alive: park so
	// Run() can terminate. A truncated sampler parks too — it can record
	// nothing more, so re-arming would only perturb Executed().
	if s.truncated || s.tr.eng.Pending() == 0 {
		s.parked = true
		return
	}
	s.tr.eng.After(s.interval, s.tickFn)
}

// sample evaluates probes and appends one row. Iteration over the probe and
// metric maps is sorted, so row construction is deterministic.
func (s *Sampler) sample() {
	t := s.tr
	if s.MaxSamples > 0 && len(s.times) >= s.MaxSamples {
		s.truncated = true
		return
	}
	for _, name := range sortedKeys(t.probes) {
		sum := 0.0
		for _, fn := range t.probes[name] {
			sum += fn()
		}
		t.Gauge(name).Set(sum)
	}
	row := len(s.times)
	s.times = append(s.times, t.eng.Now())
	for _, name := range sortedKeys(t.counters) {
		s.appendCell(name, row, float64(t.counters[name].Value()))
	}
	for _, name := range sortedKeys(t.gauges) {
		s.appendCell(name, row, t.gauges[name].Value())
	}
}

// appendCell writes one value into column name at row, zero-backfilling
// columns for metrics registered after sampling began so every column has
// one cell per row.
func (s *Sampler) appendCell(name string, row int, v float64) {
	col := s.cols[name]
	for len(col) < row {
		col = append(col, 0)
	}
	if len(col) == row {
		col = append(col, v)
	} else {
		// A name registered as both counter and gauge: last write wins
		// (gauges iterate second). Metric naming conventions keep the two
		// namespaces disjoint in practice.
		col[row] = v
	}
	s.cols[name] = col
}

// Series materializes the sampled rows into an exportable Series. Columns
// are sorted by name; the returned value shares no state with the sampler.
func (s *Sampler) Series() *Series {
	if s == nil || len(s.times) == 0 {
		return nil
	}
	out := &Series{
		Interval: s.interval,
		Times:    append([]sim.Time(nil), s.times...),
		Names:    sortedKeys(s.cols),
		Cols:     make(map[string][]float64, len(s.cols)),
	}
	for _, name := range out.Names {
		col := append([]float64(nil), s.cols[name]...)
		for len(col) < len(out.Times) {
			col = append(col, 0)
		}
		out.Cols[name] = col
	}
	return out
}
