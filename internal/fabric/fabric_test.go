package fabric

import (
	"testing"

	"npf/internal/sim"
)

// sink records delivered packets with their arrival times.
type sink struct {
	eng  *sim.Engine
	pkts []*Packet
	at   []sim.Time
}

func (s *sink) Deliver(pkt *Packet) {
	s.pkts = append(s.pkts, pkt)
	s.at = append(s.at, s.eng.Now())
}

func setup(cfg Config) (*sim.Engine, *Network, *sink, *sink, NodeID, NodeID) {
	eng := sim.NewEngine(1)
	net := New(eng, cfg)
	a, b := &sink{eng: eng}, &sink{eng: eng}
	ida := net.Attach(a)
	idb := net.Attach(b)
	return eng, net, a, b, ida, idb
}

func TestDeliveryLatency(t *testing.T) {
	cfg := Config{RateBps: 8e9, Propagation: 2 * sim.Microsecond} // 1 B/ns
	eng, net, _, b, ida, idb := setup(cfg)
	net.Send(&Packet{Src: ida, Dst: idb, Size: 1000})
	eng.Run()
	if len(b.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(b.pkts))
	}
	// 1000 ns egress + 2000 ns prop + 1000 ns ingress.
	if want := sim.Time(4000); b.at[0] != want {
		t.Fatalf("arrival = %v, want %v", b.at[0], want)
	}
}

func TestSerializationQueueing(t *testing.T) {
	cfg := Config{RateBps: 8e9, Propagation: 0}
	eng, net, _, b, ida, idb := setup(cfg)
	for i := 0; i < 3; i++ {
		net.Send(&Packet{Src: ida, Dst: idb, Size: 1000})
	}
	eng.Run()
	if len(b.at) != 3 {
		t.Fatalf("delivered %d", len(b.at))
	}
	// Back-to-back at line rate: one packet per 1000 ns after the pipe
	// fills (egress+ingress for the first = 2000 ns).
	if b.at[0] != 2000 || b.at[1] != 3000 || b.at[2] != 4000 {
		t.Fatalf("arrivals = %v", b.at)
	}
}

func TestOrderingPreserved(t *testing.T) {
	cfg := DefaultEthernet()
	eng, net, _, b, ida, idb := setup(cfg)
	for i := 0; i < 50; i++ {
		net.Send(&Packet{Src: ida, Dst: idb, Size: 1500, Payload: i})
	}
	eng.Run()
	for i, p := range b.pkts {
		if p.Payload.(int) != i {
			t.Fatalf("reordered: got %v at %d", p.Payload, i)
		}
	}
}

func TestIngressOverflowDropsWhenLossy(t *testing.T) {
	cfg := Config{RateBps: 8e9, Propagation: 0, IngressBufferBytes: 3000}
	eng, net, _, b, ida, idb := setup(cfg)
	net.Pause(idb, true) // ingress cannot drain
	for i := 0; i < 10; i++ {
		net.Send(&Packet{Src: ida, Dst: idb, Size: 1000})
	}
	eng.Run()
	if len(b.pkts) != 0 {
		t.Fatal("paused ingress delivered packets")
	}
	if net.Dropped() == 0 {
		t.Fatal("full lossy ingress should drop")
	}
	net.Pause(idb, false)
	eng.Run()
	if len(b.pkts) != 3 {
		t.Fatalf("after unpause delivered %d, want 3 (buffer capacity)", len(b.pkts))
	}
}

func TestLosslessNeverDrops(t *testing.T) {
	cfg := Config{RateBps: 8e9, Propagation: 0, IngressBufferBytes: 2000, Lossless: true}
	eng, net, _, b, ida, idb := setup(cfg)
	net.Pause(idb, true)
	for i := 0; i < 10; i++ {
		net.Send(&Packet{Src: ida, Dst: idb, Size: 1000})
	}
	eng.Run()
	net.Pause(idb, false)
	eng.Run()
	if len(b.pkts) != 10 {
		t.Fatalf("lossless delivered %d, want 10", len(b.pkts))
	}
	if net.Dropped() != 0 {
		t.Fatal("lossless fabric dropped")
	}
}

func TestLossInjection(t *testing.T) {
	cfg := Config{RateBps: 100e9, Propagation: 0, LossProbability: 0.5}
	eng, net, _, b, ida, idb := setup(cfg)
	const n = 2000
	for i := 0; i < n; i++ {
		net.Send(&Packet{Src: ida, Dst: idb, Size: 100})
	}
	eng.Run()
	got := len(b.pkts)
	if got < n/3 || got > 2*n/3 {
		t.Fatalf("delivered %d of %d with p=0.5 loss", got, n)
	}
	if int(net.Dropped())+got != n {
		t.Fatalf("drops+delivered = %d, want %d", int(net.Dropped())+got, n)
	}
}

func TestPerNodeRateOverride(t *testing.T) {
	cfg := Config{RateBps: 8e9, Propagation: 0}
	eng, net, _, b, ida, idb := setup(cfg)
	net.SetNodeRate(idb, 4e9) // ingress at half rate: 2 ns/byte
	net.Send(&Packet{Src: ida, Dst: idb, Size: 1000})
	eng.Run()
	if want := sim.Time(1000 + 2000); b.at[0] != want {
		t.Fatalf("arrival = %v, want %v", b.at[0], want)
	}
}

func TestStreamsShareEgressFairlyEnough(t *testing.T) {
	// Two destinations from one source: both are limited by the shared
	// egress, arriving interleaved.
	cfg := Config{RateBps: 8e9, Propagation: 0}
	eng := sim.NewEngine(1)
	net := New(eng, cfg)
	src := &sink{eng: eng}
	b1, b2 := &sink{eng: eng}, &sink{eng: eng}
	idsrc := net.Attach(src)
	id1, id2 := net.Attach(b1), net.Attach(b2)
	for i := 0; i < 10; i++ {
		net.Send(&Packet{Src: idsrc, Dst: id1, Size: 1000})
		net.Send(&Packet{Src: idsrc, Dst: id2, Size: 1000})
	}
	end := eng.Run()
	if len(b1.pkts) != 10 || len(b2.pkts) != 10 {
		t.Fatalf("delivered %d/%d", len(b1.pkts), len(b2.pkts))
	}
	// 20 KB over a shared 1 B/ns egress ≥ 20 µs.
	if end < 20000 {
		t.Fatalf("finished too fast: %v", end)
	}
}

// echoEP bounces every delivered packet back to its sender a few times,
// recording arrival times — cross-partition ping-pong traffic.
type echoEP struct {
	net  *Network
	id   NodeID
	eng  *sim.Engine
	log  []sim.Time
	hops int
}

func (e *echoEP) Deliver(pkt *Packet) {
	e.log = append(e.log, e.eng.Now())
	if e.hops > 0 {
		e.hops--
		e.net.Send(&Packet{Src: e.id, Dst: pkt.Src, Size: pkt.Size})
	}
}

// TestPartitionedFabricDeterministic: the same two-node exchange over a
// partitioned fabric produces identical delivery timelines for any
// worker-thread count, and matches the per-node counter aggregation.
func TestPartitionedFabricDeterministic(t *testing.T) {
	cfg := Config{RateBps: 8e9, Propagation: 2 * sim.Microsecond}
	run := func(threads int) ([]sim.Time, []sim.Time, uint64) {
		g := sim.NewGroup(1, 2, cfg.Lookahead())
		net := NewOnGroup(g, cfg)
		a := &echoEP{net: net, eng: g.Engine(0), hops: 50}
		b := &echoEP{net: net, eng: g.Engine(1), hops: 50}
		a.id = net.AttachOn(a, g.Engine(0))
		b.id = net.AttachOn(b, g.Engine(1))
		g.Engine(0).After(0, func() {
			net.Send(&Packet{Src: a.id, Dst: b.id, Size: 1000})
		})
		g.SetThreads(threads)
		g.Run()
		return a.log, b.log, net.Delivered()
	}
	a1, b1, d1 := run(1)
	if d1 == 0 || len(b1) == 0 {
		t.Fatalf("no traffic: delivered=%d", d1)
	}
	if d1 != uint64(len(a1)+len(b1)) {
		t.Fatalf("aggregate delivered %d != %d+%d", d1, len(a1), len(b1))
	}
	for _, threads := range []int{2} {
		a2, b2, d2 := run(threads)
		if d2 != d1 || len(a2) != len(a1) || len(b2) != len(b1) {
			t.Fatalf("threads=%d diverged: delivered %d vs %d", threads, d2, d1)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("threads=%d: a[%d] = %v vs %v", threads, i, a2[i], a1[i])
			}
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("threads=%d: b[%d] = %v vs %v", threads, i, b2[i], b1[i])
			}
		}
	}
}
