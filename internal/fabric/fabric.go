// Package fabric simulates the physical network joining the hosts: per-node
// egress and ingress ports with line-rate serialization, propagation delay,
// bounded buffering, optional random loss, and 802.3x-style link-level
// pause (flow control).
//
// The fabric is deliberately dumb: it moves packets and can lose them.
// Reliability is the transports' job (internal/rc, internal/tcp), and NPF
// handling is the NIC's and driver's job — exactly the paper's layering.
package fabric

import (
	"fmt"

	"npf/internal/sim"
)

// NodeID identifies one host/NIC attachment point.
type NodeID int

// FlowID steers packets to a receive ring at the destination NIC. Flow
// assignment is the simulator's stand-in for RSS/flow-steering hardware.
type FlowID int64

// Packet is one frame on the wire. Size covers headers+payload for timing;
// Payload carries the protocol message as a Go value.
type Packet struct {
	Src, Dst NodeID
	Flow     FlowID
	Size     int
	Payload  any
}

// Endpoint receives packets from the fabric — implemented by the NIC.
type Endpoint interface {
	Deliver(pkt *Packet)
}

// Config sets fabric-wide defaults; per-node rates can be overridden with
// SetNodeRate.
type Config struct {
	// RateBps is the default line rate in bits per second.
	RateBps int64
	// Propagation is the one-way wire+switch latency per hop.
	Propagation sim.Time
	// IngressBufferBytes bounds each ingress port's queue. When the queue
	// is full, behaviour depends on Lossless: drop (Ethernet) or
	// backpressure-free infinite buffering (InfiniBand's credit-based
	// lossless fabric, approximated). Zero means a 512 KiB default.
	IngressBufferBytes int
	// Lossless selects InfiniBand-style no-drop behaviour.
	Lossless bool
	// LossProbability drops each delivered packet with this probability
	// (fault injection for transport tests).
	LossProbability float64
}

// DefaultEthernet matches the paper's ConnectX-3 prototype: 12 Gb/s
// effective (packet duplication halves the 24 Gb/s PCIe ceiling), ~2 µs
// switch+wire latency.
func DefaultEthernet() Config {
	return Config{RateBps: 12e9, Propagation: 2 * sim.Microsecond}
}

// DefaultInfiniBand matches the Connect-IB testbed: 56 Gb/s, ~1 µs fabric
// latency, lossless.
func DefaultInfiniBand() Config {
	return Config{RateBps: 56e9, Propagation: sim.Microsecond, Lossless: true}
}

// LossFunc decides the fate of one packet about to be delivered at a node's
// ingress: returning true drops it. Installed per link by fault injectors
// (internal/chaos); nil means no injected loss.
type LossFunc func(pkt *Packet) bool

// Network is the fabric instance. All hosts attach to the same Network.
// In partitioned (PDES) mode — NewOnGroup — each node lives on the engine
// it was attached with, and propagation between nodes crosses partition
// boundaries through the group's deterministic mailboxes.
type Network struct {
	eng   *sim.Engine
	group *sim.Group
	cfg   Config
	rng   *sim.Rand

	nodes   map[NodeID]*node
	nextsID NodeID
}

type node struct {
	id       NodeID
	endpoint Endpoint
	// eng is the engine (partition) this node lives on; every event the
	// node's ports schedule, and every delivery to its endpoint, runs here.
	eng  *sim.Engine
	part int
	// seq numbers this node's in-flight propagations: the deterministic
	// tiebreak for same-timestamp mailbox deliveries from different sources.
	seq     uint64
	egress  *port
	ingress *port
	// rng is this link's private loss stream: each node draws from its own
	// deterministic sequence, so loss outcomes on one link do not depend on
	// how deliveries interleave with other links' traffic.
	rng  *sim.Rand
	loss LossFunc
	// Wire statistics are per-node (single-writer under PDES) and summed
	// by the Network's aggregate accessors after a run.
	delivered      sim.Counter
	deliveredBytes sim.Counter
	dropped        sim.Counter
	injectedDrops  sim.Counter
}

// New creates a network on eng with the given configuration.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.IngressBufferBytes == 0 {
		cfg.IngressBufferBytes = 512 << 10
	}
	return &Network{
		eng:   eng,
		cfg:   cfg,
		rng:   eng.Rand().Split(),
		nodes: make(map[NodeID]*node),
	}
}

// NewOnGroup creates a partitioned network spanning a PDES group. Nodes
// are placed on partitions via AttachOn; cross-node propagation rides the
// group mailboxes with cfg.Propagation as the conservative lookahead
// (Lookahead reports it for group construction).
func NewOnGroup(g *sim.Group, cfg Config) *Network {
	n := New(g.Engine(0), cfg)
	n.group = g
	if cfg.Propagation < g.Lookahead() {
		panic("fabric: propagation below group lookahead")
	}
	return n
}

// Lookahead is the minimum cross-partition latency this fabric guarantees:
// its per-hop propagation delay.
func (cfg Config) Lookahead() sim.Time { return cfg.Propagation }

// Group returns the PDES group this fabric spans, or nil when it runs on a
// single standalone engine. Layers built on top (e.g. kv) use it to decide
// whether to place hosts on per-partition engines.
func (n *Network) Group() *sim.Group { return n.group }

// Attach adds an endpoint to the fabric and returns its node id. Each node
// receives its own RNG stream, split off the fabric's at attach time:
// attachment order is deterministic, so per-link loss sequences are too.
func (n *Network) Attach(ep Endpoint) NodeID {
	return n.AttachOn(ep, n.eng)
}

// AttachOn adds an endpoint that lives on eng — in partitioned mode, the
// per-partition engine of the host that owns it. Attachment must happen
// before the group runs (construction is single-threaded).
func (n *Network) AttachOn(ep Endpoint, eng *sim.Engine) NodeID {
	n.nextsID++
	id := n.nextsID
	nd := &node{id: id, endpoint: ep, eng: eng, part: eng.Partition(), rng: n.rng.Split()}
	nd.egress = newPort(nd, fmt.Sprintf("egress-%d", id), n.cfg.RateBps, 1<<30, true)
	nd.ingress = newPort(nd, fmt.Sprintf("ingress-%d", id), n.cfg.RateBps, n.cfg.IngressBufferBytes, n.cfg.Lossless)
	n.nodes[id] = nd
	return id
}

// Engine returns the engine a node's events run on.
func (n *Network) Engine(id NodeID) *sim.Engine { return n.nodes[id].eng }

// Delivered counts packets delivered to endpoints, across all nodes.
func (n *Network) Delivered() uint64 { return n.sum(func(nd *node) uint64 { return nd.delivered.N }) }

// DeliveredBytes counts payload bytes delivered, across all nodes.
func (n *Network) DeliveredBytes() uint64 {
	return n.sum(func(nd *node) uint64 { return nd.deliveredBytes.N })
}

// Dropped counts packets lost anywhere in the fabric.
func (n *Network) Dropped() uint64 { return n.sum(func(nd *node) uint64 { return nd.dropped.N }) }

// InjectedDrops counts packets dropped by per-link LossFuncs and downed
// links (a subset of Dropped).
func (n *Network) InjectedDrops() uint64 {
	return n.sum(func(nd *node) uint64 { return nd.injectedDrops.N })
}

// sum folds a per-node statistic; addition commutes, so map order is fine.
func (n *Network) sum(f func(*node) uint64) uint64 {
	var total uint64
	//npf:orderinvariant — summation commutes
	for _, nd := range n.nodes {
		total += f(nd)
	}
	return total
}

// SetNodeRate overrides both port rates of one node (e.g. the 12 Gb/s
// duplication-prototype NIC attached to an otherwise 40 Gb/s fabric).
func (n *Network) SetNodeRate(id NodeID, rateBps int64) {
	nd := n.nodes[id]
	nd.egress.rateBps = rateBps
	nd.ingress.rateBps = rateBps
}

// Send injects a packet at its source's egress port. The packet reaches
// Dst's endpoint after egress serialization, propagation, and ingress
// serialization — unless it is dropped by a full ingress buffer or the loss
// injector.
func (n *Network) Send(pkt *Packet) {
	src, ok := n.nodes[pkt.Src]
	if !ok {
		panic(fmt.Sprintf("fabric: send from unattached node %d", pkt.Src))
	}
	if _, ok := n.nodes[pkt.Dst]; !ok {
		panic(fmt.Sprintf("fabric: send to unattached node %d", pkt.Dst))
	}
	src.egress.enqueue(pkt, func(p *Packet) {
		// Egress done; after propagation the packet hits the destination
		// ingress port. In partitioned mode a cross-partition hop rides
		// the group mailbox — (src node id, per-node seq) is the
		// deterministic tiebreak for same-instant arrivals from different
		// senders. A hop between nodes of the same partition must NOT use
		// the mailbox: a partition's execution bound is derived from the
		// other partitions' clocks only, so its local tail could run past
		// a self-posted mail and execute events out of timestamp order.
		// The engine's own queue orders it correctly (and local events
		// deterministically precede same-instant cross-partition mail).
		dst := n.nodes[p.Dst]
		arrive := func() { n.arrive(dst, p) }
		if n.group != nil && dst.eng != src.eng {
			src.seq++
			n.group.Post(dst.part, src.eng.Now().Add(n.cfg.Propagation),
				uint64(src.id), src.seq, arrive)
		} else {
			src.eng.After(n.cfg.Propagation, arrive)
		}
	})
}

// arrive runs on the destination node's partition: ingress serialization,
// then loss decisions drawn from the destination's private stream.
func (n *Network) arrive(dst *node, p *Packet) {
	dst.ingress.enqueue(p, func(p *Packet) {
		if dst.loss != nil && dst.loss(p) {
			dst.dropped.Inc()
			dst.injectedDrops.Inc()
			return
		}
		if n.cfg.LossProbability > 0 && dst.rng.Bernoulli(n.cfg.LossProbability) {
			dst.dropped.Inc()
			return
		}
		dst.delivered.Inc()
		dst.deliveredBytes.Add(uint64(p.Size))
		dst.endpoint.Deliver(p)
	})
}

// SetLossFunc installs (or, with nil, removes) an injected per-link loss
// decision on a node's ingress. The function runs once per packet that
// survives buffering, before the config-level LossProbability draw.
func (n *Network) SetLossFunc(id NodeID, fn LossFunc) {
	n.nodes[id].loss = fn
}

// Rand returns the node's private, deterministic loss stream, so injectors
// can correlate their own draws with the link rather than a global stream.
func (n *Network) Rand(id NodeID) *sim.Rand { return n.nodes[id].rng }

// SetLinkDown severs (or restores) a node's link in both directions:
// while down, everything it sends or should receive is silently dropped —
// a cable pull, unlike Pause which buffers.
func (n *Network) SetLinkDown(id NodeID, down bool) {
	nd := n.nodes[id]
	nd.ingress.blackhole = down
	nd.egress.blackhole = down
}

// NodeIDs returns every attached node id in ascending order (a stable
// enumeration for fault injectors and diagnostics).
func (n *Network) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := NodeID(1); int(id) <= len(n.nodes); id++ {
		if _, ok := n.nodes[id]; ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// SetBlackhole makes a node's ingress silently discard all traffic (on) —
// a true black hole for loss testing, unlike Pause which buffers.
func (n *Network) SetBlackhole(id NodeID, on bool) {
	n.nodes[id].ingress.blackhole = on
}

// Pause asserts or releases link-level flow control on a node's ingress:
// while paused, packets queue at the ingress port (and, if the buffer
// fills, are dropped on lossy fabrics — congestion spreading is out of
// scope, as the paper excludes this mechanism for rNPFs anyway).
func (n *Network) Pause(id NodeID, paused bool) {
	n.nodes[id].ingress.setPaused(paused)
}

// QueuedBytes reports bytes buffered at a node's ingress (visibility for
// tests).
func (n *Network) QueuedBytes(id NodeID) int {
	return n.nodes[id].ingress.queuedBytes
}

// port is a rate-limited FIFO stage. It belongs to one node and schedules
// all of its events on that node's engine.
type port struct {
	owner    *node
	name     string
	rateBps  int64
	capBytes int
	lossless bool

	queue       []portItem
	queuedBytes int
	busy        bool
	paused      bool
	blackhole   bool
}

type portItem struct {
	pkt  *Packet
	done func(*Packet)
}

func newPort(owner *node, name string, rateBps int64, capBytes int, lossless bool) *port {
	return &port{owner: owner, name: name, rateBps: rateBps, capBytes: capBytes, lossless: lossless}
}

func (p *port) enqueue(pkt *Packet, done func(*Packet)) {
	if p.blackhole {
		p.owner.dropped.Inc()
		return
	}
	if !p.lossless && p.queuedBytes+pkt.Size > p.capBytes {
		p.owner.dropped.Inc()
		return
	}
	p.queue = append(p.queue, portItem{pkt, done})
	p.queuedBytes += pkt.Size
	p.kick()
}

func (p *port) setPaused(paused bool) {
	p.paused = paused
	if !paused {
		p.kick()
	}
}

func (p *port) kick() {
	if p.busy || p.paused || len(p.queue) == 0 {
		return
	}
	item := p.queue[0]
	p.queue = p.queue[1:]
	p.queuedBytes -= item.pkt.Size
	p.busy = true
	ser := sim.Time(int64(item.pkt.Size) * 8 * int64(sim.Second) / p.rateBps)
	p.owner.eng.After(ser, func() {
		p.busy = false
		item.done(item.pkt)
		p.kick()
	})
}
