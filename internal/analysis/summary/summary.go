// Package summary is the shared function-summary layer under the
// interprocedural analyzers (detflow, noalloc, probepure). It enumerates a
// package's function declarations, resolves each call site to its static
// callee, and runs the bottom-up taint fixpoint that each analyzer
// instantiates with its own local seed (per-function syntactic findings)
// and external lookup (facts imported from dependency packages, std-lib
// allowlists). Everything is deterministic: declarations in file order,
// call edges in source order, first tainting reason wins.
package summary

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Decl is one analyzed function or method declaration with a body.
type Decl struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
}

// Edge is one call site inside a declaration. Fn is the static callee, or
// nil for dynamic calls (func values, interface methods) — builtins and
// type conversions produce no edge at all.
type Edge struct {
	Pos  token.Pos
	Call *ast.CallExpr
	Fn   *types.Func
}

// Graph is the package-local call structure: Decls in file/source order,
// Edges[i] the call sites of Decls[i] in source order.
type Graph struct {
	Decls []Decl
	Index map[*types.Func]int
	Edges [][]Edge
}

// Build constructs the call graph of files. With foldFuncLits, calls made
// inside function literals are attributed to the enclosing declaration
// (the conservative choice for reachability-style analyses: creating the
// closure pins everything it could do); without it, literal bodies are
// skipped and the caller analyzes them separately.
func Build(info *types.Info, files []*ast.File, foldFuncLits bool) *Graph {
	g := &Graph{Index: make(map[*types.Func]int)}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Index[fn] = len(g.Decls)
			g.Decls = append(g.Decls, Decl{Fn: fn, Decl: fd})
			g.Edges = append(g.Edges, CallEdges(info, fd.Body, foldFuncLits))
		}
	}
	return g
}

// CallEdges collects the call sites under node in source order, resolving
// static callees. See Build for foldFuncLits.
func CallEdges(info *types.Info, node ast.Node, foldFuncLits bool) []Edge {
	var edges []Edge
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && !foldFuncLits && n != node {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, isCall := StaticCallee(info, call)
		if !isCall {
			return true // builtin or type conversion
		}
		edges = append(edges, Edge{Pos: call.Lparen, Call: call, Fn: fn})
		return true
	})
	return edges
}

// StaticCallee resolves call to its compile-time target. isCall is false
// for builtins and type conversions (no function runs); fn is nil, with
// isCall true, for dynamic calls — func values, func-typed fields, and
// interface method calls — whose target cannot be known statically.
func StaticCallee(info *types.Info, call *ast.CallExpr) (fn *types.Func, isCall bool) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil, false // conversion like []byte(s) or T(x)
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return obj, true
		case *types.Builtin:
			return nil, false
		case *types.TypeName:
			return nil, false
		default:
			return nil, true // func-typed variable
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fnObj, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, true // func-typed field
			}
			if types.IsInterface(sel.Recv()) {
				return nil, true // interface method: dynamic
			}
			return fnObj, true
		}
		// Qualified reference: pkg.F, pkg.T (conversion), or pkg.Var.
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return obj, true
		case *types.TypeName:
			return nil, false
		default:
			return nil, true
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is scanned in place by
		// whichever traversal found this call.
		return nil, false
	default:
		return nil, true
	}
}

// Fixpoint computes one taint reason per declaration ("" = clean). seed
// gives Decls[i]'s own syntactic reason; external resolves an edge whose
// callee is not declared in this package (or is dynamic); skip, if
// non-nil, drops individual edges (annotation escapes). Propagation over
// local edges prefixes the callee's name, so reasons read as call chains.
func (g *Graph) Fixpoint(
	seed func(i int) string,
	external func(e Edge) string,
	skip func(i int, e Edge) bool,
) []string {
	reasons := make([]string, len(g.Decls))
	for i := range g.Decls {
		reasons[i] = seed(i)
	}
	for changed := true; changed; {
		changed = false
		for i := range g.Decls {
			if reasons[i] != "" {
				continue
			}
			for _, e := range g.Edges[i] {
				if skip != nil && skip(i, e) {
					continue
				}
				var r string
				if e.Fn != nil {
					if j, ok := g.Index[e.Fn]; ok {
						if reasons[j] != "" {
							r = Chain(FuncLabel(e.Fn), reasons[j])
						}
					} else {
						r = external(e)
					}
				} else {
					r = external(e)
				}
				if r != "" {
					reasons[i] = r
					changed = true
					break
				}
			}
		}
	}
	return reasons
}

// maxChain bounds a propagated reason so diagnostics stay one readable
// line even through deep call chains.
const maxChain = 160

// Chain prefixes a propagated reason with the callee step.
func Chain(step, reason string) string {
	s := step + " → " + reason
	if len(s) > maxChain {
		s = s[:maxChain-1] + "…"
	}
	return s
}

// FuncLabel names fn for diagnostics: "F" for package-level functions,
// "T.M" for methods (pointer receivers dereferenced).
func FuncLabel(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return name
}

// FuncKey names fn the way the driver's fact serialization does: "Name"
// for package-level functions, "Recv.Name" for methods. The noalloc
// required-annotation registry is keyed by this form.
func FuncKey(fn *types.Func) string {
	return FuncLabel(fn)
}
