package npflint_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runNpflint executes the real multichecker binary from the module root
// and returns its exit code and stdout.
func runNpflint(t *testing.T, args ...string) (int, string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", append([]string{"run", "./cmd/npflint"}, args...)...)
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err = cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("running npflint: %v\n%s", err, stderr.String())
		}
		code = ee.ExitCode()
	}
	if code == 2 {
		t.Fatalf("npflint internal error: %s", stderr.String())
	}
	return code, stdout.String()
}

// TestExitCodes pins the gate contract: non-zero on diagnostics, zero on
// a clean package.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binary; skipped in -short")
	}
	code, out := runNpflint(t, "./internal/analysis/npflint/testdata/badpkg")
	if code != 1 {
		t.Fatalf("known-bad package: exit=%d, want 1\n%s", code, out)
	}
	for _, want := range []string{"detwall", "maporder", "bad.go"} {
		if !strings.Contains(out, want) {
			t.Errorf("known-bad output missing %q:\n%s", want, out)
		}
	}

	code, out = runNpflint(t, "./internal/analysis/directive")
	if code != 0 {
		t.Fatalf("clean package: exit=%d, want 0\n%s", code, out)
	}
	if out != "" {
		t.Errorf("clean package: unexpected output:\n%s", out)
	}
}

// TestJSONOutput pins the -json machine-readable format.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binary; skipped in -short")
	}
	code, out := runNpflint(t, "-json", "./internal/analysis/npflint/testdata/badpkg")
	if code != 1 {
		t.Fatalf("known-bad package: exit=%d, want 1\n%s", code, out)
	}
	var doc struct {
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			Pos      string `json:"pos"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("parsing -json output: %v\n%s", err, out)
	}
	if len(doc.Diagnostics) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%s", len(doc.Diagnostics), out)
	}
	byAnalyzer := map[string]bool{}
	for _, d := range doc.Diagnostics {
		byAnalyzer[d.Analyzer] = true
		if d.Pos == "" || d.Message == "" {
			t.Errorf("diagnostic missing pos/message: %+v", d)
		}
		if !strings.Contains(d.Pos, "bad.go:") {
			t.Errorf("diagnostic pos %q does not point into bad.go", d.Pos)
		}
	}
	if !byAnalyzer["detwall"] || !byAnalyzer["maporder"] {
		t.Errorf("expected detwall and maporder diagnostics, got %v", byAnalyzer)
	}
}
