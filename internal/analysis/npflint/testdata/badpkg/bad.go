// Package badpkg is a deliberately contract-violating package: the
// npflint end-to-end test pins that the multichecker exits non-zero on
// it (and zero on a clean package).
package badpkg

import (
	"fmt"
	"time"
)

// Stamp leaks wall-clock time into "sim" state.
func Stamp() int64 { return time.Now().UnixNano() }

// Dump walks a map straight into output.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
