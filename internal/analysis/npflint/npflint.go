// Package npflint assembles the repo's determinism-contract analyzers
// into one suite — the machine-checked form of the invariants every
// figure reproduction, chaos invariant, and byte-identical parallel sweep
// depends on. cmd/npflint runs it; scripts/ci.sh gates on it.
package npflint

import (
	"golang.org/x/tools/go/analysis"

	"npf/internal/analysis/detflow"
	"npf/internal/analysis/detwall"
	"npf/internal/analysis/maporder"
	"npf/internal/analysis/noalloc"
	"npf/internal/analysis/optshim"
	"npf/internal/analysis/probepure"
	"npf/internal/analysis/simtime"
	"npf/internal/analysis/tracesafe"
	"npf/internal/analysis/xengine"
)

// Analyzers returns the npflint suite in stable order. detflow, noalloc,
// and probepure are the interprocedural, facts-based analyzers; the rest
// are per-package syntactic checks.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detflow.Analyzer,
		detwall.Analyzer,
		maporder.Analyzer,
		noalloc.Analyzer,
		optshim.Analyzer,
		probepure.Analyzer,
		simtime.Analyzer,
		tracesafe.Analyzer,
		xengine.Analyzer,
	}
}
