// Package npflint assembles the repo's determinism-contract analyzers
// into one suite — the machine-checked form of the invariants every
// figure reproduction, chaos invariant, and byte-identical parallel sweep
// depends on. cmd/npflint runs it; scripts/ci.sh gates on it.
package npflint

import (
	"golang.org/x/tools/go/analysis"

	"npf/internal/analysis/detwall"
	"npf/internal/analysis/maporder"
	"npf/internal/analysis/optshim"
	"npf/internal/analysis/simtime"
	"npf/internal/analysis/tracesafe"
	"npf/internal/analysis/xengine"
)

// Analyzers returns the npflint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detwall.Analyzer,
		maporder.Analyzer,
		optshim.Analyzer,
		simtime.Analyzer,
		tracesafe.Analyzer,
		xengine.Analyzer,
	}
}
