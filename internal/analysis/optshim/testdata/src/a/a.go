// Package a exercises the optshim analyzer: first-party code must not use
// the deprecated positional shims, however the import is spelled.
package a

import (
	"npf"

	renamed "npf"
)

func bad() {
	c := npf.NewClusterSeed(7)        // want `NewClusterSeed is a deprecated positional shim`
	h := renamed.NewHostRAM(c, 1<<30) // want `NewHostRAM is a deprecated positional shim`
	_ = renamed.
		OpenChannelRing(h, 256) // want `OpenChannelRing is a deprecated positional shim`
	var w npf.KVWorkloadConfig                // want `KVWorkloadConfig is a deprecated alias`
	_ = renamed.KVWorkloadConfig{Tenant: "t"} // want `KVWorkloadConfig is a deprecated alias`
	_ = w
}

func good() {
	c := npf.NewCluster(npf.WithSeed(7))
	h := npf.NewHost(c)
	_ = npf.OpenChannel(h)
	// The replacement type resolves to a different TypeName: never flagged.
	_ = npf.WorkloadConfig{Tenant: "t"}
}
