package a

import "npf"

// Tests pin the shims' delegation behavior on purpose; they are exempt.
func shimStillDelegates() *npf.Cluster { return npf.NewClusterSeed(7) }
