// Package npf stands in for the root package: positional constructor
// shims kept for external migration, plus the functional-options API.
package npf

type Cluster struct{}
type Host struct{}
type Channel struct{}
type Option func(*Cluster)

func WithSeed(seed int64) Option { return func(*Cluster) {} }

func NewCluster(opts ...Option) *Cluster { return &Cluster{} }

// Deprecated: use NewCluster(WithSeed(seed)).
func NewClusterSeed(seed int64) *Cluster { return NewCluster(WithSeed(seed)) }

func NewHost(c *Cluster) *Host { return &Host{} }

// Deprecated: use NewHost with WithRAM.
func NewHostRAM(c *Cluster, ram int64) *Host { return NewHost(c) }

func OpenChannel(h *Host) *Channel { return &Channel{} }

// Deprecated: use OpenChannel with WithRingSize.
func OpenChannelRing(h *Host, ring int) *Channel { return OpenChannel(h) }

// WorkloadConfig shapes one tenant's load generator.
type WorkloadConfig struct {
	Tenant  string
	Clients int
}

// Deprecated: use WorkloadConfig.
type KVWorkloadConfig = WorkloadConfig
