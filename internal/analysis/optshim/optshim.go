// Package optshim defines an analyzer that flags first-party use of the
// deprecated facade shims: positional constructors and superseded type
// aliases.
//
// The functional-options redesign (PR 3) kept NewClusterSeed, NewHostRAM,
// and OpenChannelRing as shims for external users mid-migration, but
// first-party code must use NewCluster/NewHost/OpenChannel with options.
// The workload unification (PR 8) likewise kept KVWorkloadConfig as an
// alias of the shared WorkloadConfig. This replaces the old grep gate in
// ci.sh: being type-aware, it is robust to import aliasing, dot imports,
// and line-wrapping that grep was blind to, and it skips _test.go files
// (which pin the shims' behavior on purpose).
package optshim

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const Doc = `flag first-party use of deprecated facade shims

NewClusterSeed, NewHostRAM, and OpenChannelRing exist only for external
users mid-migration; first-party code uses the functional-options API
(NewCluster/NewHost/OpenChannel + With* options). The KVWorkloadConfig
type alias is likewise deprecated in favor of the shared WorkloadConfig.
_test.go files are exempt: they pin the shims' behavior.`

var Analyzer = &analysis.Analyzer{
	Name:     "optshim",
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// shims maps deprecated constructor → its options-API replacement.
var shims = map[string]string{
	"NewClusterSeed":  "NewCluster(WithSeed(...))",
	"NewHostRAM":      "NewHost(WithRAM(...))",
	"OpenChannelRing": "OpenChannel(WithRingSize(...))",
}

// deprecatedTypes maps deprecated type alias → the type that replaced it.
// Aliases are indistinguishable from their target once resolved, so the
// check keys on the *types.TypeName object declared in the root package —
// spelling the new name never matches, however the import is aliased.
var deprecatedTypes = map[string]string{
	"KVWorkloadConfig": "WorkloadConfig",
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node) {
		id := n.(*ast.Ident)
		if strings.HasSuffix(pass.Fset.Position(id.Pos()).Filename, "_test.go") {
			return
		}
		switch obj := pass.TypesInfo.Uses[id].(type) {
		case *types.Func:
			if obj.Pkg() == nil || obj.Pkg().Path() != "npf" {
				return
			}
			if repl, deprecated := shims[obj.Name()]; deprecated {
				pass.Reportf(id.Pos(), "%s is a deprecated positional shim; use %s", obj.Name(), repl)
			}
		case *types.TypeName:
			if obj.Pkg() == nil || obj.Pkg().Path() != "npf" {
				return
			}
			if repl, deprecated := deprecatedTypes[obj.Name()]; deprecated {
				pass.Reportf(id.Pos(), "%s is a deprecated alias; use %s", obj.Name(), repl)
			}
		}
	})
	return nil, nil
}
