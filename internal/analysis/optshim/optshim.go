// Package optshim defines an analyzer that flags first-party use of the
// deprecated positional constructor shims.
//
// The functional-options redesign (PR 3) kept NewClusterSeed, NewHostRAM,
// and OpenChannelRing as shims for external users mid-migration, but
// first-party code must use NewCluster/NewHost/OpenChannel with options.
// This replaces the old grep gate in ci.sh: being type-aware, it is robust
// to import aliasing, dot imports, and line-wrapping that grep was blind
// to, and it skips _test.go files (which pin the shims' behavior on
// purpose).
package optshim

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const Doc = `flag first-party use of deprecated positional constructor shims

NewClusterSeed, NewHostRAM, and OpenChannelRing exist only for external
users mid-migration; first-party code uses the functional-options API
(NewCluster/NewHost/OpenChannel + With* options). _test.go files are
exempt: they pin the shims' delegation behavior.`

var Analyzer = &analysis.Analyzer{
	Name:     "optshim",
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// shims maps deprecated constructor → its options-API replacement.
var shims = map[string]string{
	"NewClusterSeed":  "NewCluster(WithSeed(...))",
	"NewHostRAM":      "NewHost(WithRAM(...))",
	"OpenChannelRing": "OpenChannel(WithRingSize(...))",
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node) {
		id := n.(*ast.Ident)
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "npf" {
			return
		}
		repl, deprecated := shims[fn.Name()]
		if !deprecated {
			return
		}
		if strings.HasSuffix(pass.Fset.Position(id.Pos()).Filename, "_test.go") {
			return
		}
		pass.Reportf(id.Pos(), "%s is a deprecated positional shim; use %s", fn.Name(), repl)
	})
	return nil, nil
}
