package optshim_test

import (
	"testing"

	"npf/internal/analysis/analysistest"
	"npf/internal/analysis/optshim"
)

func TestOptshim(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), optshim.Analyzer, "a")
}
