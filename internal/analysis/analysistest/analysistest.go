// Package analysistest runs go/analysis analyzers over small fixture
// packages and checks their diagnostics against `// want` expectations —
// the same contract as golang.org/x/tools/go/analysis/analysistest, which
// GOROOT does not vendor, rebuilt on this repo's driver.
//
// Fixture layout mirrors the upstream convention:
//
//	internal/analysis/<name>/testdata/src/<importpath>/*.go
//
// A fixture file marks an expected diagnostic with a trailing comment on
// the offending line:
//
//	start := time.Now() // want `time\.Now is nondeterministic`
//
// The comment may carry several quoted regular expressions; each must be
// matched by a distinct diagnostic on that line. Lines without a want
// comment must produce no diagnostics. Fixture packages may import each
// other (resolved from testdata/src) and the standard library (resolved
// from compiler export data via `go list -export`).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"npf/internal/analysis/driver"
)

// Run loads each fixture package from dir/src/<path> and applies the
// analyzer, reporting expectation mismatches through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	if err := analysis.Validate([]*analysis.Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	ld := &loader{
		srcRoot: filepath.Join(dir, "src"),
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*driver.Package),
		parsed:  make(map[string]*parsedPkg),
	}
	for _, path := range paths {
		if _, err := ld.parse(path); err != nil {
			t.Fatalf("fixture %s: %v", path, err)
		}
	}
	if err := ld.check(); err != nil {
		t.Fatal(err)
	}
	// Run the analyzer over every fixture package in dependency order with
	// one shared fact store, so facts a dependency exports reach the
	// packages under test exactly as they do in a real driver run. Want
	// expectations are only checked for the requested paths; diagnostics
	// in support packages are discarded.
	requested := make(map[string]bool, len(paths))
	for _, path := range paths {
		requested[path] = true
	}
	driver.RegisterFactTypes([]*analysis.Analyzer{a})
	facts := driver.NewFacts()
	for _, p := range ld.order {
		pkg := ld.pkgs[p.path]
		diags, err := driver.RunPackage(pkg, []*analysis.Analyzer{a}, "", facts)
		if err != nil {
			t.Fatalf("fixture %s: %v", p.path, err)
		}
		if requested[p.path] {
			diffWants(t, ld.fset, pkg, diags)
		}
	}
}

// TestData returns the analyzer test's testdata directory, mirroring the
// upstream helper.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

type parsedPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string // fixture-internal imports, in dependency order
}

type loader struct {
	srcRoot string
	fset    *token.FileSet
	parsed  map[string]*parsedPkg
	order   []*parsedPkg
	std     []string
	pkgs    map[string]*driver.Package
}

// parse reads a fixture package and, depth-first, the fixture packages it
// imports, recording non-fixture imports for export-data resolution.
func (ld *loader) parse(path string) (*parsedPkg, error) {
	if p, ok := ld.parsed[path]; ok {
		return p, nil
	}
	ld.parsed[path] = nil // cycle guard
	dir := filepath.Join(ld.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &parsedPkg{path: path, dir: dir}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	imports := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		p.files = append(p.files, f)
		for _, imp := range f.Imports {
			ipath, _ := strconv.Unquote(imp.Path.Value)
			imports[ipath] = true
		}
	}
	// Visit imports in sorted order so fixture load (and therefore
	// type-check error) order is deterministic — npflint's own maporder
	// analyzer caught the unsorted version of this loop.
	ipaths := make([]string, 0, len(imports))
	for ipath := range imports {
		ipaths = append(ipaths, ipath)
	}
	sort.Strings(ipaths)
	for _, ipath := range ipaths {
		if _, err := os.Stat(filepath.Join(ld.srcRoot, ipath)); err == nil {
			if _, err := ld.parse(ipath); err != nil {
				return nil, err
			}
			p.imports = append(p.imports, ipath)
		} else {
			ld.std = append(ld.std, ipath)
		}
	}
	ld.parsed[path] = p
	ld.order = append(ld.order, p) // dependencies precede dependents
	return p, nil
}

// check type-checks every parsed fixture package in dependency order.
func (ld *loader) check() error {
	exports := make(map[string]string)
	if len(ld.std) > 0 {
		listed, err := driver.ListExports(ld.std)
		if err != nil {
			return err
		}
		exports = listed
	}
	imp := driver.NewExportImporter(ld.fset, exports)
	for _, p := range ld.order {
		info := driver.NewTypesInfo()
		conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
		tpkg, err := conf.Check(p.path, ld.fset, p.files, info)
		if err != nil {
			return fmt.Errorf("type-checking fixture %s: %v", p.path, err)
		}
		imp.Register(tpkg)
		ld.pkgs[p.path] = &driver.Package{
			ImportPath: p.path,
			Dir:        p.dir,
			Fset:       ld.fset,
			Files:      p.files,
			Types:      tpkg,
			TypesInfo:  info,
		}
	}
	return nil
}

// wantRx is one unconsumed expectation.
type wantRx struct {
	rx       *regexp.Regexp
	consumed bool
}

// diffWants matches diagnostics against the fixture's want comments.
func diffWants(t *testing.T, fset *token.FileSet, pkg *driver.Package, diags []driver.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*wantRx) // "file:line" → expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rxs, err := parseWant(c.Text)
				if err != nil {
					t.Errorf("%s: %v", fset.Position(c.Pos()), err)
					continue
				}
				if rxs == nil {
					continue
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				for _, rx := range rxs {
					wants[key] = append(wants[key], &wantRx{rx: rx})
				}
			}
		}
	}
	for _, d := range diags {
		key := trimCol(d.Pos)
		matched := false
		for _, w := range wants[key] {
			if !w.consumed && w.rx.MatchString(d.Message) {
				w.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.consumed {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.rx)
			}
		}
	}
}

// parseWant extracts the regexps from a `// want "rx" `+"`rx`"+` ...`
// comment, or nil if the comment is not a want comment.
func parseWant(text string) ([]*regexp.Regexp, error) {
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil, nil
	}
	var rxs []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := strings.Index(rest[1:], `"`)
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", rest)
			}
			lit = rest[:end+2]
			rest = rest[end+2:]
		case '`':
			end := strings.Index(rest[1:], "`")
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", rest)
			}
			lit = rest[:end+2]
			rest = rest[end+2:]
		default:
			return nil, fmt.Errorf("malformed want pattern %q (expected quoted regexp)", rest)
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("want pattern %s: %v", lit, err)
		}
		rx, err := regexp.Compile(unq)
		if err != nil {
			return nil, fmt.Errorf("want pattern %s: %v", lit, err)
		}
		rxs = append(rxs, rx)
		rest = strings.TrimSpace(rest)
	}
	return rxs, nil
}

// trimCol turns "file:line:col" into "file:line".
func trimCol(pos string) string {
	if i := strings.LastIndex(pos, ":"); i >= 0 {
		return pos[:i]
	}
	return pos
}
