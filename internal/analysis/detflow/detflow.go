// Package detflow defines the interprocedural companion to detwall: it
// computes, bottom-up over the package graph, which functions *reach* a
// nondeterminism source (wall clock, global rand, environment, goroutine
// introspection) through any chain of calls, and flags cross-package calls
// to such carriers from sim-layer code.
//
// detwall catches `time.Now()` written directly in a guarded package;
// detflow closes the remaining gap: a helper in another package (including
// cmd/ tooling, where detwall does not report) that wraps the clock, called
// from sim code through any number of hops. Facts are pure reachability —
// an //npf:wallclock annotation suppresses the diagnostic at the annotated
// call site but never launders the fact, so every new caller of a
// clock-reaching helper makes its own reviewed decision.
//
// Intra-package chains are deliberately not re-reported: the direct call
// site is detwall's diagnostic, and doubling it up at every local caller
// would say nothing new. The cross-package edge is where the information
// is lost today, and that is where detflow reports.
package detflow

import (
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"npf/internal/analysis/detwall"
	"npf/internal/analysis/directive"
	"npf/internal/analysis/summary"
)

const Doc = `flag sim-layer calls into functions that transitively reach nondeterminism

A function that calls time.Now, the global rand source, os.Getenv, or
goroutine introspection through ANY chain of helpers — across packages,
including cmd/ — carries that reach as a fact. Calling such a carrier from
a guarded package is flagged with the full chain. Annotate reviewed call
sites with //npf:wallclock; the fact survives the annotation, so each new
caller is reviewed on its own.`

var Analyzer = &analysis.Analyzer{
	Name:      "detflow",
	Doc:       Doc,
	FactTypes: []analysis.Fact{(*Reaches)(nil)},
	Run:       run,
}

// Reaches marks a function that transitively reaches a nondeterminism
// source; Chain is the human-readable call path ("helper → time.Now").
type Reaches struct {
	Chain string
}

// AFact marks Reaches as a serializable analysis fact.
func (*Reaches) AFact() {}

// extraSources extends detwall's banned table with goroutine/process
// introspection that detwall leaves legal (it is harmless in logging) but
// that must not flow into sim state.
var extraSources = map[string]map[string]bool{
	"runtime": {
		"NumGoroutine": true, "Stack": true, "Caller": true,
		"Callers": true, "ReadMemStats": true,
	},
	"os": {
		"Getpid": true, "Hostname": true,
	},
}

func isSource(fn *types.Func) bool {
	if detwall.IsSource(fn) {
		return true
	}
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	names, ok := extraSources[fn.Pkg().Path()]
	return ok && names[fn.Name()]
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := summary.Build(pass.TypesInfo, pass.Files, true)

	external := func(e summary.Edge) string {
		if e.Fn == nil {
			return "" // dynamic calls are out of scope (documented gap)
		}
		if isSource(e.Fn) {
			return e.Fn.Pkg().Path() + "." + e.Fn.Name()
		}
		var r Reaches
		if pass.ImportObjectFact(e.Fn, &r) {
			return summary.Chain(crossLabel(e.Fn), r.Chain)
		}
		return ""
	}
	reasons := g.Fixpoint(func(int) string { return "" }, external, nil)

	// Facts are exported for every package — including cmd/, which is
	// exactly where clock-wrapping helpers live — so carriers are visible
	// wherever they end up being called from.
	for i, d := range g.Decls {
		if reasons[i] != "" {
			pass.ExportObjectFact(d.Fn, &Reaches{Chain: reasons[i]})
		}
	}

	if detwall.AllowlistedPackage(pass.Pkg.Path()) {
		return nil, nil // cmd/ binaries may report wall time to humans
	}
	dirs := directive.ForFiles(pass.Fset, pass.Files)
	for i := range g.Decls {
		for _, e := range g.Edges[i] {
			if e.Fn == nil || e.Fn.Pkg() == nil || e.Fn.Pkg() == pass.Pkg {
				continue // intra-package chains bottom out at detwall's diagnostic
			}
			if isSource(e.Fn) {
				continue // the direct call is detwall's (or out of its scope by choice)
			}
			var r Reaches
			if !pass.ImportObjectFact(e.Fn, &r) {
				continue
			}
			file := pass.Fset.Position(e.Pos).Filename
			if strings.HasSuffix(file, "_test.go") {
				continue
			}
			if dirs.Allows(pass.Fset, "wallclock", e.Pos) {
				continue
			}
			pass.Reportf(e.Pos, "call to %s reaches nondeterminism (%s): sim layers must use virtual time / engine-owned RNG (annotate //npf:wallclock if intentional)",
				crossLabel(e.Fn), r.Chain)
		}
	}
	return nil, nil
}

// crossLabel names an out-of-package function for diagnostics:
// "pkg.F" or "pkg.T.M" with the short package name.
func crossLabel(fn *types.Func) string {
	label := summary.FuncLabel(fn)
	if fn.Pkg() != nil {
		label = fn.Pkg().Name() + "." + label
	}
	return label
}
