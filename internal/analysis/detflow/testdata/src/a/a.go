// Package a is a fixture sim-layer package calling into clock-reaching
// helpers from other packages.
package a

import (
	"cmd/tool"
	"hostutil"
)

// Sim calls a direct carrier across a package boundary.
func Sim() int64 {
	return hostutil.Stamp() // want `call to hostutil\.Stamp reaches nondeterminism \(time\.Now\)`
}

// SimWrapped reaches the clock through a two-hop chain.
func SimWrapped() int64 {
	return hostutil.WrapStamp() // want `call to hostutil\.WrapStamp reaches nondeterminism \(Stamp → time\.Now\)`
}

// SimTool reaches the clock through a cmd/ helper detwall never sees.
func SimTool() int64 {
	return tool.Helper() // want `call to tool\.Helper reaches nondeterminism \(time\.Now\)`
}

// SimMethod reaches the clock through a method fact.
func SimMethod() int64 {
	var c hostutil.Clock
	return c.Read() // want `call to hostutil\.Clock\.Read reaches nondeterminism \(time\.Now\)`
}

// Reviewed is an annotated, intentional use: no diagnostic, but Reviewed
// still carries the fact (pure reachability).
func Reviewed() int64 {
	//npf:wallclock — host-side reporting, reviewed
	return hostutil.Stamp()
}

// UsesCarrier calls an intra-package carrier: not re-reported (the
// cross-package edge inside Sim already was).
func UsesCarrier() int64 { return Sim() }

// Clean only touches pure helpers.
func Clean() int64 { return hostutil.Pure(7) }
