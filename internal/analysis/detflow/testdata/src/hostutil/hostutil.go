// Package hostutil is a fixture helper package: host-side utilities that
// read the wall clock. detflow never reports here — the direct calls are
// detwall's findings, and intra-package chains bottom out there — but it
// exports Reaches facts for every carrier, which the importing fixture
// package consumes.
package hostutil

import "time"

// Stamp reads the clock directly: a carrier by seed.
func Stamp() int64 { return time.Now().UnixNano() }

// WrapStamp is a carrier through a local, intra-package chain.
func WrapStamp() int64 { return Stamp() }

// Clock carries nondeterminism through a method, exercising the
// "Recv.Name" fact key round-trip.
type Clock struct{ last int64 }

// Read samples the wall clock.
func (c *Clock) Read() int64 {
	c.last = time.Now().UnixNano()
	return c.last
}

// Pure is clean: calling it from sim layers is fine.
func Pure(x int64) int64 { return x * 2 }
