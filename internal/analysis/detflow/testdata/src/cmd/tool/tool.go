// Package tool is a fixture cmd/ package: detwall does not report inside
// cmd/ at all, so a clock-wrapping helper here is invisible to the
// per-package analyzer — exactly the gap detflow closes by exporting the
// Reaches fact anyway and flagging the sim-side caller.
package tool

import "time"

// Helper wraps the clock inside an allowlisted package.
func Helper() int64 { return time.Now().UnixNano() }
