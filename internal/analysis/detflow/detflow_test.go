package detflow_test

import (
	"testing"

	"npf/internal/analysis/analysistest"
	"npf/internal/analysis/detflow"
)

// TestDetflow exercises the cross-package reach analysis: facts flow from
// the hostutil and cmd/tool fixture packages (where detflow stays silent)
// into package a, where every unannotated cross-package call to a carrier
// is flagged with its chain. Requesting hostutil asserts the
// no-intra-package-reports policy.
func TestDetflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detflow.Analyzer, "a", "hostutil")
}
