// Package a exercises the //npf:noalloc fence: Hot carries the annotation
// and contains one allocating construct per line, plus calls covering every
// cross-package verdict (fact-carrying, proven-clean, trusted boundary,
// allowlisted, unanalyzed, dynamic).
package a

import (
	"dep"
	"strings"
)

var sink interface{}

// Hot is a fenced hot path.
//
//npf:noalloc
func Hot(f func(), s []int, str, str2 string, m map[string]int) {
	s = append(s, 1)                 // want `append may grow the backing array inside //npf:noalloc fence of Hot`
	_ = make([]byte, 8)              // want `make allocates inside //npf:noalloc fence of Hot`
	_ = new(int)                     // want `new allocates inside //npf:noalloc fence of Hot`
	_ = &dep.T{}                     // want `composite literal escapes to the heap inside //npf:noalloc fence of Hot`
	_ = map[string]int{}             // want `map literal allocates inside //npf:noalloc fence of Hot`
	_ = []int{1, 2}                  // want `slice literal allocates inside //npf:noalloc fence of Hot`
	m[str] = 1                       // want `map assignment may allocate inside //npf:noalloc fence of Hot`
	_ = str + str2                   // want `string concatenation allocates inside //npf:noalloc fence of Hot`
	_ = []byte(str)                  // want `string-to-slice conversion allocates inside //npf:noalloc fence of Hot`
	sink = 42                        // want `interface boxing allocates inside //npf:noalloc fence of Hot`
	_ = func() int { return len(s) } // want `closure captures variables \(allocates\) inside //npf:noalloc fence of Hot`
	give(&s)                         // want `interface boxing allocates inside //npf:noalloc fence of Hot`
	f()                              // want `dynamic call \(allocation behavior unknown\) inside //npf:noalloc fence of Hot`
	_ = strings.ToUpper(str)         // want `call to strings\.ToUpper \(package strings has no allocation summaries\) inside //npf:noalloc fence of Hot`
	s = dep.Grow(s, 3)               // want `call to dep\.Grow allocates: append may grow the backing array inside //npf:noalloc fence of Hot`
	go noop()                        // want `go statement allocates a goroutine inside //npf:noalloc fence of Hot`
	_ = dep.Pure(4)
	_ = dep.Boundary()
	viaHelper()
	buf := make([]byte, 4) //npf:allocok — reviewed: scratch buffer reaches steady state
	_ = buf
}

// viaHelper is pulled into Hot's fence transitively: its construct is a
// finding even though viaHelper itself is unannotated.
func viaHelper() *dep.T {
	return &dep.T{} // want `composite literal escapes to the heap inside //npf:noalloc fence of Hot`
}

// give exists to exercise boxing at argument positions.
func give(v interface{}) { _ = v }

// noop is a clean target for the go-statement fixture line.
func noop() {}

// Cold is unfenced: the same constructs produce facts, not diagnostics.
func Cold() []int {
	m := map[string]int{"k": 1}
	return append([]int(nil), m["k"])
}
