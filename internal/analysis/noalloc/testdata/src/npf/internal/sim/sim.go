// Package sim is a stand-in for the real engine package: the noalloc
// Required registry lists Engine.At/After/Cancel for import path
// npf/internal/sim, so the unannotated methods here are findings — the
// negative test proving a deleted hot-path annotation fails the gate.
package sim

// Engine is a stand-in scheduler.
type Engine struct{ n int }

// At keeps its annotation and a clean body.
//
//npf:noalloc
func (e *Engine) At(t int64) { e.n++ }

// After lost its annotation.
func (e *Engine) After(d int64) { e.n++ } // want `Engine\.After is a runtime-gated hot path and must carry //npf:noalloc`

// Cancel lost its annotation too.
func (e *Engine) Cancel(id int64) { e.n-- } // want `Engine\.Cancel is a runtime-gated hot path and must carry //npf:noalloc`
