// Package dep is a fixture dependency: its Allocates facts and Analyzed
// package fact are what the fenced package imports.
package dep

// T is a payload type for composite-literal fixtures.
type T struct{ N int }

// Grow allocates (growing append): it exports an Allocates fact but no
// diagnostic — dep has no fences of its own.
func Grow(s []int, v int) []int { return append(s, v) }

// Pure is proven allocation-free, so fences may call it.
func Pure(x int) int { return x + 1 }

// Boundary is a trusted boundary: the annotation keeps its allocation out
// of its exported summary, so fences may call it.
//
//npf:allocok — reviewed boundary: one warm-up allocation by design
func Boundary() *T { return &T{} }
